// Package vn implements hash-consed value numbering of subscript
// expressions, the mechanism behind the paper's "value number based data
// flow universe" (§2, [Han93]): two distributed-array references denote
// the same communication item exactly when their subscripts have the
// same value number after normalizing enclosing-loop induction variables
// to their ranges.
//
// This is what lets the Figure 2 placement recognize x(a(k)) in
// "do k = 1, N" and x(a(l)) in "do l = 1, N" as one item — both
// normalize to x(a(⟨1:N⟩)) — and lets x(k+10) become the section
// x(11:N+10).
package vn

import (
	"fmt"

	"givetake/internal/ir"
)

// Num is a value number; equal numbers mean provably equal values.
type Num int

// Invalid is returned for expressions the numberer cannot handle.
const Invalid Num = -1

// Range describes a loop induction variable's value set lo..hi:step
// (inclusive), with bounds and stride given by value numbers.
type Range struct {
	Lo, Hi, Step Num
}

// defKind discriminates the structure of an interned number.
type defKind int

const (
	defConst defKind = iota
	defSym
	defIota
	defBin
	defElem
)

type def struct {
	kind  defKind
	key   string
	cval  int64  // defConst
	op    string // defBin
	x, y  Num    // defBin operands
	subs  []Num  // defElem subscripts
	array string // defElem
}

// Table hash-conses expressions into value numbers and retains their
// structure, so clients (sections) can decompose numbers into affine
// forms without parsing keys.
type Table struct {
	byKey map[string]Num
	defs  []def
	// ranges created by Iota, so sections can recover bounds
	ranges map[Num]Range
}

// NewTable returns an empty value-number table.
func NewTable() *Table {
	return &Table{byKey: map[string]Num{}, ranges: map[Num]Range{}}
}

func (t *Table) intern(d def) Num {
	if n, ok := t.byKey[d.key]; ok {
		return n
	}
	n := Num(len(t.defs))
	t.byKey[d.key] = n
	t.defs = append(t.defs, d)
	return n
}

// Key returns the canonical key of a value number (stable within one
// table; useful for debugging and as map keys across analyses).
func (t *Table) Key(n Num) string {
	if n < 0 || int(n) >= len(t.defs) {
		return "<invalid>"
	}
	return t.defs[n].key
}

// Bin decomposition: Op reports the operator and operands of a binary
// number.
func (t *Table) Op(n Num) (op string, x, y Num, ok bool) {
	if n < 0 || int(n) >= len(t.defs) || t.defs[n].kind != defBin {
		return "", 0, 0, false
	}
	d := t.defs[n]
	return d.op, d.x, d.y, true
}

// Const returns the value number of an integer constant.
func (t *Table) Const(v int64) Num {
	return t.intern(def{kind: defConst, key: fmt.Sprintf("c%d", v), cval: v})
}

// Sym returns the value number of a free symbolic variable (a scalar
// whose value is unknown but fixed, like the paper's N).
func (t *Table) Sym(name string) Num {
	return t.intern(def{kind: defSym, key: "s:" + name})
}

// Iota returns the value number of a loop induction variable ranging
// over lo..hi with the given step: references that differ only in the
// name of such a variable receive equal numbers.
func (t *Table) Iota(lo, hi, step Num) Num {
	n := t.intern(def{kind: defIota, key: fmt.Sprintf("iota(%d,%d,%d)", lo, hi, step)})
	t.ranges[n] = Range{Lo: lo, Hi: hi, Step: step}
	return n
}

// RangeOf returns the range of an Iota number, if n is one.
func (t *Table) RangeOf(n Num) (Range, bool) {
	r, ok := t.ranges[n]
	return r, ok
}

// Bin returns the value number of x op y, normalizing commutative
// operators by ordering operands.
func (t *Table) Bin(op string, x, y Num) Num {
	if x == Invalid || y == Invalid {
		return Invalid
	}
	if (op == "+" || op == "*") && y < x {
		x, y = y, x
	}
	// constant folding for + - * on known constants
	if xv, xok := t.constVal(x); xok {
		if yv, yok := t.constVal(y); yok {
			switch op {
			case "+":
				return t.Const(xv + yv)
			case "-":
				return t.Const(xv - yv)
			case "*":
				return t.Const(xv * yv)
			}
		}
	}
	// x + 0, x - 0, x * 1 identities
	if v, ok := t.constVal(y); ok {
		if (v == 0 && (op == "+" || op == "-")) || (v == 1 && op == "*") {
			return x
		}
	}
	if v, ok := t.constVal(x); ok && v == 0 && op == "+" {
		return y
	}
	return t.intern(def{kind: defBin, key: fmt.Sprintf("(%s %d %d)", op, x, y), op: op, x: x, y: y})
}

// Elem returns the value number of an array element load a(s1, s2, ...).
func (t *Table) Elem(array string, subs ...Num) Num {
	key := array + "["
	for i, sub := range subs {
		if sub == Invalid {
			return Invalid
		}
		if i > 0 {
			key += ","
		}
		key += fmt.Sprintf("%d", sub)
	}
	key += "]"
	return t.intern(def{kind: defElem, key: key, array: array, subs: append([]Num(nil), subs...)})
}

func (t *Table) constVal(n Num) (int64, bool) {
	if n < 0 || int(n) >= len(t.defs) || t.defs[n].kind != defConst {
		return 0, false
	}
	return t.defs[n].cval, true
}

// ConstVal reports the constant value of n, if it is one.
func (t *Table) ConstVal(n Num) (int64, bool) { return t.constVal(n) }

// Affine decomposes n as coeff·iota + offset over a single induction
// variable with constant coefficient and offset. For constants it
// returns (0, c, Invalid, true). Forms it cannot decompose yield
// ok=false.
func (t *Table) Affine(n Num) (coeff, offset int64, iota Num, ok bool) {
	if v, isConst := t.constVal(n); isConst {
		return 0, v, Invalid, true
	}
	if _, isIota := t.ranges[n]; isIota {
		return 1, 0, n, true
	}
	op, x, y, isBin := t.Op(n)
	if !isBin {
		return 0, 0, Invalid, false
	}
	cx, ox, ix, okx := t.Affine(x)
	cy, oy, iy, oky := t.Affine(y)
	if !okx || !oky {
		return 0, 0, Invalid, false
	}
	switch op {
	case "+", "-":
		sign := int64(1)
		if op == "-" {
			sign = -1
		}
		switch {
		case ix == Invalid:
			return sign * cy, ox + sign*oy, iy, true
		case iy == Invalid:
			return cx, ox + sign*oy, ix, true
		default:
			// Two iota terms cannot be combined soundly even when their
			// numbers are equal: value numbering identifies *ranges*, not
			// variables, so "k + j" over identical loops k and j gets the
			// same iota twice yet ranges densely over 2..2n — treating it
			// as 2·iota (stride 2) would prove false disjointness.
			return 0, 0, Invalid, false
		}
	case "*":
		switch {
		case ix == Invalid:
			return ox * cy, ox * oy, iy, true
		case iy == Invalid:
			return cx * oy, ox * oy, ix, true
		default:
			return 0, 0, Invalid, false
		}
	default:
		return 0, 0, Invalid, false
	}
}

// Env binds induction variables in scope to their ranges and remembers
// which scalars have been assigned (killing their symbolic identity).
type Env struct {
	tab    *Table
	loops  map[string]Num // loop var -> iota number
	killed map[string]int // scalar -> generation (for assigned scalars)
}

// NewEnv returns an environment over the given table.
func NewEnv(t *Table) *Env {
	return &Env{tab: t, loops: map[string]Num{}, killed: map[string]int{}}
}

// PushLoop enters a loop over variable v with bound expressions lo, hi
// and optional step (nil means 1), and returns a function that leaves it.
func (e *Env) PushLoop(v string, lo, hi, step ir.Expr) (pop func()) {
	old, had := e.loops[v]
	stepNum := e.tab.Const(1)
	if step != nil {
		stepNum = e.Number(step)
	}
	e.loops[v] = e.tab.Iota(e.Number(lo), e.Number(hi), stepNum)
	return func() {
		if had {
			e.loops[v] = old
		} else {
			delete(e.loops, v)
		}
	}
}

// Kill records an assignment to scalar v: later uses get a fresh
// generation so they no longer compare equal to earlier ones.
func (e *Env) Kill(v string) { e.killed[v]++ }

// Number computes the value number of an expression in this environment.
// Unsupported shapes (ellipsis, comparisons) yield Invalid.
func (e *Env) Number(x ir.Expr) Num {
	switch x := x.(type) {
	case nil:
		return Invalid
	case *ir.IntLit:
		return e.tab.Const(x.Value)
	case *ir.Ident:
		if n, ok := e.loops[x.Name]; ok {
			return n
		}
		if g := e.killed[x.Name]; g > 0 {
			return e.tab.Sym(fmt.Sprintf("%s#%d", x.Name, g))
		}
		return e.tab.Sym(x.Name)
	case *ir.BinExpr:
		switch x.Op {
		case "+", "-", "*", "/":
			return e.tab.Bin(x.Op, e.Number(x.X), e.Number(x.Y))
		default:
			return Invalid
		}
	case *ir.UnaryExpr:
		if x.Op == "-" {
			return e.tab.Bin("-", e.tab.Const(0), e.Number(x.X))
		}
		return Invalid
	case *ir.ArrayRef:
		subs := make([]Num, len(x.Subs))
		for i, sub := range x.Subs {
			subs[i] = e.Number(sub)
		}
		return e.tab.Elem(x.Name, subs...)
	default:
		return Invalid
	}
}
