package vn

import (
	"testing"

	"givetake/internal/frontend"
	"givetake/internal/ir"
)

func parseExpr(t *testing.T, s string) ir.Expr {
	t.Helper()
	stmts, err := frontend.ParseStmts("q = " + s)
	if err != nil {
		t.Fatal(err)
	}
	return stmts[0].(*ir.Assign).RHS
}

func TestConstantsFold(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	a := env.Number(parseExpr(t, "2 + 3"))
	b := env.Number(parseExpr(t, "5"))
	if a != b {
		t.Fatalf("2+3 (%d) != 5 (%d)", a, b)
	}
	if v, ok := tab.ConstVal(a); !ok || v != 5 {
		t.Fatalf("ConstVal = %d, %v", v, ok)
	}
}

func TestCommutativity(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	if env.Number(parseExpr(t, "n + k")) != env.Number(parseExpr(t, "k + n")) {
		t.Fatal("addition should commute")
	}
	if env.Number(parseExpr(t, "n - k")) == env.Number(parseExpr(t, "k - n")) {
		t.Fatal("subtraction should not commute")
	}
}

func TestIdentities(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	n := env.Number(parseExpr(t, "n"))
	if env.Number(parseExpr(t, "n + 0")) != n {
		t.Fatal("n + 0 != n")
	}
	if env.Number(parseExpr(t, "n * 1")) != n {
		t.Fatal("n * 1 != n")
	}
}

// TestLoopVariableNormalization is the Figure 2 caption property:
// x(a(k)) under do k = 1,N and x(a(l)) under do l = 1,N are the same
// item.
func TestLoopVariableNormalization(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	one := &ir.IntLit{Value: 1}
	n := &ir.Ident{Name: "n"}

	pop := env.PushLoop("k", one, n, nil)
	ak := env.Number(parseExpr(t, "a(k)"))
	pop()

	pop = env.PushLoop("l", one, n, nil)
	al := env.Number(parseExpr(t, "a(l)"))
	pop()

	if ak != al {
		t.Fatalf("a(k) (%d) != a(l) (%d) under identical ranges", ak, al)
	}

	// different bounds give different numbers
	pop = env.PushLoop("m", one, &ir.Ident{Name: "p"}, nil)
	am := env.Number(parseExpr(t, "a(m)"))
	pop()
	if am == ak {
		t.Fatal("a(m) over 1..p should differ from a(k) over 1..n")
	}
}

func TestNestedLoopsShadow(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	one := &ir.IntLit{Value: 1}
	n := &ir.Ident{Name: "n"}
	popOuter := env.PushLoop("i", one, n, nil)
	outer := env.Number(parseExpr(t, "i"))
	popInner := env.PushLoop("i", one, &ir.Ident{Name: "m"}, nil)
	inner := env.Number(parseExpr(t, "i"))
	popInner()
	after := env.Number(parseExpr(t, "i"))
	popOuter()
	if outer == inner {
		t.Fatal("shadowed loop variable should renumber")
	}
	if outer != after {
		t.Fatal("popping the inner loop should restore the outer binding")
	}
}

func TestKillInvalidatesScalar(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	before := env.Number(parseExpr(t, "m + 1"))
	env.Kill("m")
	after := env.Number(parseExpr(t, "m + 1"))
	if before == after {
		t.Fatal("assignment to m must invalidate its value number")
	}
	if after != env.Number(parseExpr(t, "m + 1")) {
		t.Fatal("numbering must stay stable between kills")
	}
	_ = tab
}

func TestInvalidShapes(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	if env.Number(&ir.Ellipsis{}) != Invalid {
		t.Fatal("ellipsis should be Invalid")
	}
	if env.Number(parseExpr(t, "a(i, j)")) == Invalid {
		t.Fatal("multi-dim subscripts should number")
	}
	if env.Number(parseExpr(t, "a(i, j)")) == env.Number(parseExpr(t, "a(j, i)")) {
		t.Fatal("subscript order must matter")
	}
	if tab.Bin("+", Invalid, tab.Const(1)) != Invalid {
		t.Fatal("Invalid must propagate")
	}
}
