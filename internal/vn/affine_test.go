package vn

import (
	"testing"

	"givetake/internal/ir"
)

// Affine decomposition underpins stride-based section disjointness.

func affEnv(t *testing.T) (*Table, *Env, func()) {
	t.Helper()
	tab := NewTable()
	env := NewEnv(tab)
	pop := env.PushLoop("k", &ir.IntLit{Value: 1}, &ir.Ident{Name: "n"}, nil)
	return tab, env, pop
}

func TestAffineForms(t *testing.T) {
	tab, env, pop := affEnv(t)
	defer pop()

	cases := []struct {
		src           string
		coeff, offset int64
		hasIota       bool
	}{
		{"7", 0, 7, false},
		{"k", 1, 0, true},
		{"k + 3", 1, 3, true},
		{"3 + k", 1, 3, true},
		{"k - 4", 1, -4, true},
		{"2 * k", 2, 0, true},
		{"k * 2", 2, 0, true},
		{"2 * k + 5", 2, 5, true},
		{"5 - k", -1, 5, true},
	}
	for _, c := range cases {
		n := env.Number(parseExpr(t, c.src))
		coeff, offset, iota, ok := tab.Affine(n)
		if !ok {
			t.Errorf("Affine(%q) failed", c.src)
			continue
		}
		if coeff != c.coeff || offset != c.offset || (iota != Invalid) != c.hasIota {
			t.Errorf("Affine(%q) = (%d, %d, iota=%v), want (%d, %d, iota=%v)",
				c.src, coeff, offset, iota != Invalid, c.coeff, c.offset, c.hasIota)
		}
	}
}

func TestAffineRejects(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	one := &ir.IntLit{Value: 1}
	n := &ir.Ident{Name: "n"}
	popK := env.PushLoop("k", one, n, nil)
	popJ := env.PushLoop("j", one, n, nil)
	defer popJ()
	defer popK()

	for _, src := range []string{
		"k + j",         // two induction variables
		"k * j",         // product of variables
		"m + k",         // free symbol
		"a(k)",          // indirect
		"k / 2",         // division is not affine here
		"3 * k - 2 * k", // ambiguous: could be 3k−2j over equal ranges
	} {
		num := env.Number(parseExpr(t, src))
		if num == Invalid {
			continue // some shapes do not even number; also fine
		}
		if _, _, _, ok := tab.Affine(num); ok {
			t.Errorf("Affine(%q) should fail", src)
		}
	}
}

func TestOpAccessor(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	n := env.Number(parseExpr(t, "m + p"))
	op, x, y, ok := tab.Op(n)
	if !ok || op != "+" {
		t.Fatalf("Op = %q ok=%v", op, ok)
	}
	if tab.Key(x) == tab.Key(y) {
		t.Fatal("operands should differ")
	}
	if _, _, _, ok := tab.Op(tab.Const(3)); ok {
		t.Fatal("constants have no Op")
	}
	if _, _, _, ok := tab.Op(Invalid); ok {
		t.Fatal("Invalid has no Op")
	}
}

func TestRangeOfStep(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	two := &ir.IntLit{Value: 2}
	pop := env.PushLoop("k", &ir.IntLit{Value: 1}, &ir.IntLit{Value: 9}, two)
	defer pop()
	n := env.Number(parseExpr(t, "k"))
	r, ok := tab.RangeOf(n)
	if !ok {
		t.Fatal("iota should have a range")
	}
	if v, _ := tab.ConstVal(r.Step); v != 2 {
		t.Fatalf("step = %d, want 2", v)
	}
	if v, _ := tab.ConstVal(r.Lo); v != 1 {
		t.Fatalf("lo = %d, want 1", v)
	}
}

func TestKeyInvalid(t *testing.T) {
	tab := NewTable()
	if tab.Key(Invalid) != "<invalid>" {
		t.Fatal("Key(Invalid)")
	}
	if tab.Key(999) != "<invalid>" {
		t.Fatal("Key out of range")
	}
}

func TestMultiDimElems(t *testing.T) {
	tab := NewTable()
	env := NewEnv(tab)
	a := env.Number(parseExpr(t, "u(1, 2)"))
	b := env.Number(parseExpr(t, "u(1, 2)"))
	c := env.Number(parseExpr(t, "u(2, 1)"))
	if a != b {
		t.Fatal("identical 2-D refs should share a number")
	}
	if a == c {
		t.Fatal("transposed subscripts must differ")
	}
	if tab.Elem("u", Invalid, tab.Const(1)) != Invalid {
		t.Fatal("Invalid subscript must poison the element")
	}
}

func TestUnaryMinus(t *testing.T) {
	tab, env, pop := affEnv(t)
	defer pop()
	n := env.Number(parseExpr(t, "-k"))
	coeff, offset, iota, ok := tab.Affine(n)
	if !ok || coeff != -1 || offset != 0 || iota == Invalid {
		t.Fatalf("Affine(-k) = (%d,%d,%v,%v)", coeff, offset, iota, ok)
	}
}
