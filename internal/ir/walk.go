package ir

// WalkExpr calls f for e and every sub-expression of e, parents first.
// If f returns false, the walk does not descend into that node.
func WalkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch e := e.(type) {
	case *BinExpr:
		WalkExpr(e.X, f)
		WalkExpr(e.Y, f)
	case *UnaryExpr:
		WalkExpr(e.X, f)
	case *ArrayRef:
		for _, s := range e.Subs {
			WalkExpr(s, f)
		}
	case *RangeExpr:
		WalkExpr(e.Lo, f)
		WalkExpr(e.Hi, f)
		if e.Stride != nil {
			WalkExpr(e.Stride, f)
		}
	}
}

// WalkStmts calls f for every statement in the list and, recursively, in
// all nested bodies, in source order. If f returns false the walk does
// not descend into that statement's bodies.
func WalkStmts(stmts []Stmt, f func(Stmt) bool) {
	for _, s := range stmts {
		if s == nil || !f(s) {
			continue
		}
		switch s := s.(type) {
		case *Do:
			WalkStmts(s.Body, f)
		case *If:
			WalkStmts(s.Then, f)
			WalkStmts(s.Else, f)
		}
	}
}

// ArrayRefs returns every ArrayRef occurring in e (including indirect
// subscript references, innermost last).
func ArrayRefs(e Expr) []*ArrayRef {
	var out []*ArrayRef
	WalkExpr(e, func(x Expr) bool {
		if r, ok := x.(*ArrayRef); ok {
			out = append(out, r)
		}
		return true
	})
	return out
}

// Idents returns every scalar Ident occurring in e.
func Idents(e Expr) []*Ident {
	var out []*Ident
	WalkExpr(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Ident:
		c := *e
		return &c
	case *IntLit:
		c := *e
		return &c
	case *Ellipsis:
		c := *e
		return &c
	case *BinExpr:
		return &BinExpr{Position: e.Position, Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y)}
	case *UnaryExpr:
		return &UnaryExpr{Position: e.Position, Op: e.Op, X: CloneExpr(e.X)}
	case *ArrayRef:
		subs := make([]Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[i] = CloneExpr(s)
		}
		return &ArrayRef{Position: e.Position, Name: e.Name, Subs: subs}
	case *RangeExpr:
		return &RangeExpr{Position: e.Position, Lo: CloneExpr(e.Lo), Hi: CloneExpr(e.Hi), Stride: CloneExpr(e.Stride)}
	default:
		panic("ir: CloneExpr: unknown expression type")
	}
}
