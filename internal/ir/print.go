package ir

import (
	"fmt"
	"strings"
)

// precedence levels for expression printing; higher binds tighter.
func prec(op string) int {
	switch op {
	case ".or.":
		return 1
	case ".and.":
		return 2
	case "<", "<=", ">", ">=", "==", "!=":
		return 3
	case "+", "-":
		return 4
	case "*", "/":
		return 5
	default:
		return 6
	}
}

// ExprString renders an expression in the paper's surface syntax.
func ExprString(e Expr) string {
	return exprString(e, 0)
}

func exprString(e Expr, outer int) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *Ident:
		return e.Name
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *Ellipsis:
		return "..."
	case *UnaryExpr:
		if e.Op == ".not." {
			return ".not. " + exprString(e.X, 6)
		}
		return e.Op + exprString(e.X, 6)
	case *BinExpr:
		p := prec(e.Op)
		s := exprString(e.X, p) + " " + e.Op + " " + exprString(e.Y, p+1)
		if p < outer {
			return "(" + s + ")"
		}
		return s
	case *ArrayRef:
		subs := make([]string, len(e.Subs))
		for i, x := range e.Subs {
			subs[i] = exprString(x, 0)
		}
		return e.Name + "(" + strings.Join(subs, ", ") + ")"
	case *RangeExpr:
		s := exprString(e.Lo, 4) + ":" + exprString(e.Hi, 4)
		if e.Stride != nil {
			s += ":" + exprString(e.Stride, 4)
		}
		return s
	default:
		panic("ir: ExprString: unknown expression type")
	}
}

// Printer renders programs and statement lists as mini-Fortran text.
type Printer struct {
	// Indent is the per-level indentation; defaults to four spaces.
	Indent string
	b      strings.Builder
}

// ProgramString renders a whole program, declarations first.
func ProgramString(p *Program) string {
	var pr Printer
	return pr.Program(p)
}

// StmtsString renders a statement list at indent level 0.
func StmtsString(stmts []Stmt) string {
	var pr Printer
	pr.stmts(stmts, 0)
	return pr.b.String()
}

// Program renders a whole program.
func (pr *Printer) Program(p *Program) string {
	pr.b.Reset()
	for _, d := range p.Decls {
		kw := "real"
		if d.Dist != Local {
			kw = "distributed"
		}
		dims := make([]string, len(d.Dims))
		for i, dim := range d.Dims {
			dims[i] = ExprString(dim)
		}
		fmt.Fprintf(&pr.b, "%s %s(%s)\n", kw, d.Name, strings.Join(dims, ", "))
	}
	if len(p.Decls) > 0 {
		pr.b.WriteByte('\n')
	}
	pr.stmts(p.Body, 0)
	return pr.b.String()
}

func (pr *Printer) indent() string {
	if pr.Indent == "" {
		return "    "
	}
	return pr.Indent
}

func (pr *Printer) line(level int, label, text string) {
	if label != "" {
		// Fortran-style: label flush left, then indentation.
		pr.b.WriteString(label)
		pr.b.WriteByte(' ')
		if pad := len(pr.indent())*level - len(label) - 1; pad > 0 {
			pr.b.WriteString(strings.Repeat(" ", pad))
		}
	} else {
		pr.b.WriteString(strings.Repeat(pr.indent(), level))
	}
	pr.b.WriteString(text)
	pr.b.WriteByte('\n')
}

func (pr *Printer) stmts(stmts []Stmt, level int) {
	for _, s := range stmts {
		pr.stmt(s, level)
	}
}

func (pr *Printer) stmt(s Stmt, level int) {
	switch s := s.(type) {
	case *Assign:
		pr.line(level, s.Label(), ExprString(s.LHS)+" = "+ExprString(s.RHS))
	case *Do:
		hdr := fmt.Sprintf("do %s = %s, %s", s.Var, ExprString(s.Lo), ExprString(s.Hi))
		if s.Step != nil {
			hdr += ", " + ExprString(s.Step)
		}
		pr.line(level, s.Label(), hdr)
		pr.stmts(s.Body, level+1)
		pr.line(level, "", "enddo")
	case *If:
		if len(s.Else) == 0 && len(s.Then) == 1 {
			if g, ok := s.Then[0].(*Goto); ok && s.Then[0].Label() == "" {
				pr.line(level, s.Label(), fmt.Sprintf("if (%s) goto %s", ExprString(s.Cond), g.Target))
				return
			}
		}
		pr.line(level, s.Label(), fmt.Sprintf("if (%s) then", ExprString(s.Cond)))
		pr.stmts(s.Then, level+1)
		if len(s.Else) > 0 {
			pr.line(level, "", "else")
			pr.stmts(s.Else, level+1)
		}
		pr.line(level, "", "endif")
	case *Goto:
		pr.line(level, s.Label(), "goto "+s.Target)
	case *Continue:
		pr.line(level, s.Label(), "continue")
	case *Comm:
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = ExprString(a)
		}
		name := s.Op
		if s.Reduce != "" {
			name += "_" + s.Reduce
		}
		if s.Half != "" {
			name += "_" + s.Half
		}
		pr.line(level, s.Label(), name+"{"+strings.Join(args, ", ")+"}")
	default:
		panic("ir: Printer: unknown statement type")
	}
}
