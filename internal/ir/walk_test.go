package ir

import (
	"strings"
	"testing"
)

func TestCloneExprAllKinds(t *testing.T) {
	exprs := []Expr{
		id("a"),
		lit(3),
		&Ellipsis{},
		bin("+", id("a"), lit(1)),
		&UnaryExpr{Op: "-", X: id("b")},
		&ArrayRef{Name: "x", Subs: []Expr{id("i"), lit(2)}},
		&RangeExpr{Lo: lit(1), Hi: id("n"), Stride: lit(2)},
	}
	for _, e := range exprs {
		c := CloneExpr(e)
		if ExprString(c) != ExprString(e) {
			t.Errorf("clone of %s prints as %s", ExprString(e), ExprString(c))
		}
	}
	if CloneExpr(nil) != nil {
		t.Error("CloneExpr(nil) should be nil")
	}
}

func TestWalkExprPrune(t *testing.T) {
	e := bin("+", &ArrayRef{Name: "x", Subs: []Expr{id("deep")}}, id("top"))
	var names []string
	WalkExpr(e, func(x Expr) bool {
		if r, ok := x.(*ArrayRef); ok {
			names = append(names, r.Name)
			return false // do not descend into the subscript
		}
		if i, ok := x.(*Ident); ok {
			names = append(names, i.Name)
		}
		return true
	})
	joined := strings.Join(names, ",")
	if strings.Contains(joined, "deep") {
		t.Fatalf("prune failed: %s", joined)
	}
	if !strings.Contains(joined, "top") || !strings.Contains(joined, "x") {
		t.Fatalf("walk missed nodes: %s", joined)
	}
}

func TestWalkExprRange(t *testing.T) {
	e := &RangeExpr{Lo: id("a"), Hi: id("b"), Stride: id("c")}
	if got := len(Idents(e)); got != 3 {
		t.Fatalf("Idents over a triplet = %d, want 3", got)
	}
}

func TestStmtPrintingWithStep(t *testing.T) {
	d := NewDo(Pos{}, "i", lit(1), id("n"))
	d.Step = lit(2)
	got := StmtsString([]Stmt{d})
	if !strings.Contains(got, "do i = 1, n, 2") {
		t.Fatalf("step missing: %q", got)
	}
}

func TestIfElsePrinting(t *testing.T) {
	s := NewIf(Pos{}, id("c"),
		[]Stmt{NewAssign(Pos{}, id("a"), lit(1))},
		[]Stmt{NewAssign(Pos{}, id("b"), lit(2))})
	got := StmtsString([]Stmt{s})
	want := "if (c) then\n    a = 1\nelse\n    b = 2\nendif\n"
	if got != want {
		t.Fatalf("printed:\n%q\nwant:\n%q", got, want)
	}
}

func TestProgramStringWithDecls(t *testing.T) {
	p := NewProgram("t")
	p.Declare(&ArrayDecl{Name: "u", Dims: []Expr{lit(10), lit(20)}, Dist: Block})
	p.Body = []Stmt{NewAssign(Pos{}, id("s"), lit(0))}
	got := ProgramString(p)
	if !strings.Contains(got, "distributed u(10, 20)") {
		t.Fatalf("2-D declaration prints wrong:\n%s", got)
	}
}

func TestArrayDeclSize(t *testing.T) {
	d := &ArrayDecl{Name: "x", Dims: []Expr{lit(7), lit(9)}}
	if v := d.Size().(*IntLit).Value; v != 7 {
		t.Fatalf("Size = %d, want first dim 7", v)
	}
	empty := &ArrayDecl{Name: "y"}
	if v := empty.Size().(*IntLit).Value; v != 1 {
		t.Fatalf("empty Size = %d, want 1", v)
	}
}

func TestGotoAndContinuePrinting(t *testing.T) {
	g := NewGoto(Pos{}, "42")
	c := &Continue{}
	c.SetLabel("42")
	got := StmtsString([]Stmt{g, c})
	if got != "goto 42\n42 continue\n" {
		t.Fatalf("printed %q", got)
	}
}
