// Package ir defines the abstract syntax tree of the mini-Fortran dialect
// used throughout the GIVE-N-TAKE paper's figures: DO loops with integer
// bounds, IF/THEN/ELSE, GOTO out of loops with numeric labels, scalar and
// (possibly distributed) array assignments, and indirect array subscripts
// such as x(a(k)).
//
// The IR is deliberately small: GIVE-N-TAKE only consumes a control flow
// graph plus per-node initial sets, so the dialect needs exactly the
// control-flow shapes and reference patterns that appear in the paper
// (Figures 1, 3, 11) and in the communication-generation application.
package ir

import "fmt"

// Pos is a source position (1-based line and column); the zero Pos means
// "unknown", e.g. for synthesized nodes.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string {
	if p.Line == 0 {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Node is implemented by every AST node.
type Node interface {
	Pos() Pos
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Ident is a scalar variable reference, e.g. N or test.
type Ident struct {
	Position Pos
	Name     string
}

// IntLit is an integer literal.
type IntLit struct {
	Position Pos
	Value    int64
}

// BinExpr is a binary operation. Op is one of "+", "-", "*", "/",
// "<", "<=", ">", ">=", "==", "!=", ".and.", ".or.".
type BinExpr struct {
	Position Pos
	Op       string
	X, Y     Expr
}

// UnaryExpr is a unary operation; Op is "-" or ".not.".
type UnaryExpr struct {
	Position Pos
	Op       string
	X        Expr
}

// ArrayRef is an array element reference such as x(k+10) or y(a(i)).
// Subscripts may themselves contain ArrayRefs (indirect references).
type ArrayRef struct {
	Position Pos
	Name     string
	Subs     []Expr
}

// RangeExpr is a Fortran triplet lo:hi[:stride], used when printing
// vectorized communication sets like x(11:N+10). Stride may be nil
// (meaning 1).
type RangeExpr struct {
	Position Pos
	Lo, Hi   Expr
	Stride   Expr
}

// Ellipsis is the "..." placeholder the paper uses for irrelevant
// right-hand sides and loop bodies.
type Ellipsis struct {
	Position Pos
}

func (e *Ident) Pos() Pos     { return e.Position }
func (e *IntLit) Pos() Pos    { return e.Position }
func (e *BinExpr) Pos() Pos   { return e.Position }
func (e *UnaryExpr) Pos() Pos { return e.Position }
func (e *ArrayRef) Pos() Pos  { return e.Position }
func (e *RangeExpr) Pos() Pos { return e.Position }
func (e *Ellipsis) Pos() Pos  { return e.Position }

func (*Ident) exprNode()     {}
func (*IntLit) exprNode()    {}
func (*BinExpr) exprNode()   {}
func (*UnaryExpr) exprNode() {}
func (*ArrayRef) exprNode()  {}
func (*RangeExpr) exprNode() {}
func (*Ellipsis) exprNode()  {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement node. Every statement can carry a numeric label
// (the Fortran "77 continue" style GOTO target).
type Stmt interface {
	Node
	stmtNode()
	// Label returns the statement's numeric label, or "" if unlabeled.
	Label() string
	// SetLabel attaches a numeric label.
	SetLabel(string)
}

// stmtBase provides position and label storage for all statements.
type stmtBase struct {
	Position Pos
	Lab      string
}

func (s *stmtBase) Pos() Pos          { return s.Position }
func (s *stmtBase) Label() string     { return s.Lab }
func (s *stmtBase) SetLabel(l string) { s.Lab = l }
func (s *stmtBase) stmtNode()         {}

// Assign is "lhs = rhs". LHS is an ArrayRef or Ident.
type Assign struct {
	stmtBase
	LHS Expr
	RHS Expr
}

// Do is a Fortran DO loop: do Var = Lo, Hi [, Step] ... enddo.
// Fortran DO loops are zero-trip constructs: if Lo > Hi the body never
// executes, which is exactly the case GIVE-N-TAKE's hoisting treatment
// (paper §1, §3.2 C2) is designed for.
type Do struct {
	stmtBase
	Var  string
	Lo   Expr
	Hi   Expr
	Step Expr // nil means 1
	Body []Stmt
}

// If is "if cond then ... [else ...] endif". A one-armed logical IF
// ("if (c) goto 77") parses into an If with a single-statement Then and
// nil Else.
type If struct {
	stmtBase
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Goto is "goto 77".
type Goto struct {
	stmtBase
	Target string
}

// Continue is the Fortran no-op statement, used mostly as a label anchor.
type Continue struct {
	stmtBase
}

// Comm is a communication statement inserted by the communication
// generator (it never comes from source text): e.g. READ_Send{x(11:N+10)}
// or WRITE_SUM_Recv{x(a(1:N))} for a reduction write-back (paper §6).
type Comm struct {
	stmtBase
	Op     string // "READ" or "WRITE"
	Half   string // "Send", "Recv", or "" for an atomic operation
	Reduce string // "", or a reduction the owner applies: "SUM", "PROD", "MAX", "MIN"
	Args   []Expr // the array sections being communicated
}

// NewAssign, NewDo, ... are small constructors that keep call sites terse
// in tests and the program generator.

// NewAssign returns lhs = rhs at position p.
func NewAssign(p Pos, lhs, rhs Expr) *Assign {
	return &Assign{stmtBase: stmtBase{Position: p}, LHS: lhs, RHS: rhs}
}

// NewDo returns a DO loop statement.
func NewDo(p Pos, v string, lo, hi Expr, body ...Stmt) *Do {
	return &Do{stmtBase: stmtBase{Position: p}, Var: v, Lo: lo, Hi: hi, Body: body}
}

// NewIf returns a two-armed IF statement.
func NewIf(p Pos, cond Expr, then, els []Stmt) *If {
	return &If{stmtBase: stmtBase{Position: p}, Cond: cond, Then: then, Else: els}
}

// NewGoto returns a GOTO statement.
func NewGoto(p Pos, target string) *Goto {
	return &Goto{stmtBase: stmtBase{Position: p}, Target: target}
}

// ---------------------------------------------------------------------------
// Declarations and programs

// Distribution describes how an array is mapped to processors; the
// framework only cares whether references may be non-owned, so the kinds
// are coarse.
type Distribution int

const (
	// Local arrays live entirely on the executing processor; references
	// never induce communication.
	Local Distribution = iota
	// Block-distributed arrays are spread across processors; a reference
	// may be non-owned and consume (READ) or produce (WRITE) communication.
	Block
	// Cyclic distribution; treated like Block by the placement framework.
	Cyclic
)

func (d Distribution) String() string {
	switch d {
	case Local:
		return "local"
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ArrayDecl declares an array and its distribution.
type ArrayDecl struct {
	Position Pos
	Name     string
	// Dims are the declared extents, one per dimension. The paper's
	// codes are one-dimensional; multi-dimensional declarations serve
	// the stencil workloads of the examples and benches.
	Dims []Expr
	Dist Distribution
}

// Size returns the first dimension's extent (the common 1-D case).
func (d *ArrayDecl) Size() Expr {
	if len(d.Dims) == 0 {
		return &IntLit{Value: 1}
	}
	return d.Dims[0]
}

func (d *ArrayDecl) Pos() Pos { return d.Position }

// Program is a parsed compilation unit.
type Program struct {
	Name  string
	Decls []*ArrayDecl
	Body  []Stmt
	decls map[string]*ArrayDecl
}

// NewProgram returns an empty program with the given name.
func NewProgram(name string) *Program {
	return &Program{Name: name, decls: map[string]*ArrayDecl{}}
}

// Declare adds an array declaration; redeclaration replaces the old entry.
func (p *Program) Declare(d *ArrayDecl) {
	if p.decls == nil {
		p.decls = map[string]*ArrayDecl{}
	}
	if _, seen := p.decls[d.Name]; !seen {
		p.Decls = append(p.Decls, d)
	} else {
		for i, old := range p.Decls {
			if old.Name == d.Name {
				p.Decls[i] = d
			}
		}
	}
	p.decls[d.Name] = d
}

// Decl returns the declaration for array name, or nil.
func (p *Program) Decl(name string) *ArrayDecl {
	if p.decls == nil {
		p.decls = map[string]*ArrayDecl{}
		for _, d := range p.Decls {
			p.decls[d.Name] = d
		}
	}
	return p.decls[name]
}

// Distributed reports whether name is declared as a distributed array.
func (p *Program) Distributed(name string) bool {
	d := p.Decl(name)
	return d != nil && d.Dist != Local
}
