package ir

import (
	"strings"
	"testing"
)

func lit(v int64) *IntLit { return &IntLit{Value: v} }
func id(n string) *Ident  { return &Ident{Name: n} }
func bin(op string, x, y Expr) *BinExpr {
	return &BinExpr{Op: op, X: x, Y: y}
}

func TestExprStringPrecedence(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{bin("+", id("a"), bin("*", id("b"), id("c"))), "a + b * c"},
		{bin("*", bin("+", id("a"), id("b")), id("c")), "(a + b) * c"},
		{bin("-", id("a"), bin("-", id("b"), id("c"))), "a - (b - c)"},
		{bin("-", bin("-", id("a"), id("b")), id("c")), "a - b - c"},
		{&UnaryExpr{Op: "-", X: id("a")}, "-a"},
		{&ArrayRef{Name: "x", Subs: []Expr{bin("+", id("k"), lit(10))}}, "x(k + 10)"},
		{&RangeExpr{Lo: lit(1), Hi: id("n")}, "1:n"},
		{&RangeExpr{Lo: lit(1), Hi: id("n"), Stride: lit(2)}, "1:n:2"},
		{&Ellipsis{}, "..."},
		{bin("<", id("i"), id("n")), "i < n"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestStmtPrinting(t *testing.T) {
	d := NewDo(Pos{}, "i", lit(1), id("n"),
		NewAssign(Pos{}, &ArrayRef{Name: "x", Subs: []Expr{id("i")}}, &Ellipsis{}))
	d.SetLabel("77")
	got := StmtsString([]Stmt{d})
	want := "77 do i = 1, n\n    x(i) = ...\nenddo\n"
	if got != want {
		t.Errorf("printed:\n%q\nwant:\n%q", got, want)
	}
}

func TestLogicalIfPrinting(t *testing.T) {
	s := NewIf(Pos{}, id("c"), []Stmt{NewGoto(Pos{}, "9")}, nil)
	if got := StmtsString([]Stmt{s}); got != "if (c) goto 9\n" {
		t.Errorf("logical if prints as %q", got)
	}
}

func TestCommPrinting(t *testing.T) {
	c := &Comm{Op: "READ", Half: "Send", Args: []Expr{
		&ArrayRef{Name: "x", Subs: []Expr{&RangeExpr{Lo: lit(11), Hi: bin("+", id("n"), lit(10))}}},
	}}
	if got := strings.TrimSpace(StmtsString([]Stmt{c})); got != "READ_Send{x(11:n + 10)}" {
		t.Errorf("comm prints as %q", got)
	}
	a := &Comm{Op: "WRITE", Args: []Expr{id("q")}}
	if got := strings.TrimSpace(StmtsString([]Stmt{a})); got != "WRITE{q}" {
		t.Errorf("atomic comm prints as %q", got)
	}
}

func TestWalkAndCollect(t *testing.T) {
	e := bin("+", &ArrayRef{Name: "x", Subs: []Expr{&ArrayRef{Name: "a", Subs: []Expr{id("k")}}}}, id("m"))
	refs := ArrayRefs(e)
	if len(refs) != 2 || refs[0].Name != "x" || refs[1].Name != "a" {
		t.Fatalf("ArrayRefs = %v", refs)
	}
	ids := Idents(e)
	if len(ids) != 2 {
		t.Fatalf("Idents = %v", ids)
	}
}

func TestWalkStmtsPruning(t *testing.T) {
	inner := NewAssign(Pos{}, id("x"), lit(1))
	loop := NewDo(Pos{}, "i", lit(1), id("n"), inner)
	seen := 0
	WalkStmts([]Stmt{loop}, func(s Stmt) bool {
		seen++
		return false // do not descend
	})
	if seen != 1 {
		t.Fatalf("pruned walk visited %d statements, want 1", seen)
	}
}

func TestCloneExprDeep(t *testing.T) {
	orig := &ArrayRef{Name: "x", Subs: []Expr{bin("+", id("k"), lit(1))}}
	c := CloneExpr(orig).(*ArrayRef)
	c.Subs[0].(*BinExpr).Op = "-"
	if orig.Subs[0].(*BinExpr).Op != "+" {
		t.Fatal("CloneExpr aliases sub-expressions")
	}
}

func TestProgramDecls(t *testing.T) {
	p := NewProgram("t")
	p.Declare(&ArrayDecl{Name: "x", Dims: []Expr{lit(10)}, Dist: Block})
	p.Declare(&ArrayDecl{Name: "y", Dims: []Expr{lit(10)}, Dist: Local})
	if !p.Distributed("x") || p.Distributed("y") || p.Distributed("zz") {
		t.Fatal("Distributed lookup wrong")
	}
	// redeclaration replaces
	p.Declare(&ArrayDecl{Name: "x", Dims: []Expr{lit(20)}, Dist: Cyclic})
	if len(p.Decls) != 2 {
		t.Fatalf("redeclaration duplicated: %d decls", len(p.Decls))
	}
	if p.Decl("x").Dist != Cyclic {
		t.Fatal("redeclaration did not replace")
	}
}

func TestDistributionString(t *testing.T) {
	if Local.String() != "local" || Block.String() != "block" || Cyclic.String() != "cyclic" {
		t.Fatal("Distribution strings wrong")
	}
}

func TestPosString(t *testing.T) {
	if (Pos{}).String() != "-" {
		t.Fatal("zero Pos should print as -")
	}
	if (Pos{Line: 3, Col: 7}).String() != "3:7" {
		t.Fatal("Pos format wrong")
	}
}
