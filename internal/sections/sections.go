// Package sections builds the communication universe: each distinct
// (array, value-numbered subscript) pair occurring in a program becomes
// one item of the dataflow lattice, described as a regular section in the
// paper's notation — x(11:N+10) for x(k+10) under do k = 1,N, or
// x(a(1:N)) for the indirect reference x(a(k)).
//
// Items carry enough structure for the two questions communication
// generation asks: may two sections of the same array overlap (for
// STEAL_init), and does a section's subscript depend on an indirection
// array (a definition of that array also steals the section)?
package sections

import (
	"fmt"
	"strings"

	"givetake/internal/ir"
	"givetake/internal/vn"
)

// Item is one element of the communication universe.
type Item struct {
	// ID is the dense universe index.
	ID int
	// Array is the distributed array communicated.
	Array string
	// Subs are the canonical value numbers of the subscripts, one per
	// dimension.
	Subs []vn.Num
	// Reprs are representative subscript expressions (as written at the
	// first occurrence), one per dimension.
	Reprs []ir.Expr
	// Ranges maps induction variables free in Reprs to their loop bounds
	// at the first occurrence, for printing the vectorized section.
	Ranges map[string]LoopRange
	// IndirectArrays lists arrays read inside the subscript (x(a(k))
	// depends on a); a definition of such an array steals this item.
	IndirectArrays []string

	// per-dimension numeric subscript bounds, when derivable.
	lo, hi  []int64
	bounded []bool
}

// LoopRange snapshots a loop's bounds for section printing; Step may be
// nil (meaning 1).
type LoopRange struct {
	Lo, Hi, Step ir.Expr
}

// Universe interns items.
type Universe struct {
	Tab   *vn.Table
	Items []*Item
	byKey map[string]*Item
}

// NewUniverse returns an empty universe over a fresh value-number table.
func NewUniverse() *Universe {
	return &Universe{Tab: vn.NewTable(), byKey: map[string]*Item{}}
}

// Size returns the number of interned items.
func (u *Universe) Size() int { return len(u.Items) }

// ItemFor interns (array, subscripts-under-env) and returns its item.
// ranges snapshots the enclosing loop bounds for printing. Returns nil
// for subscripts the value numberer cannot handle.
func (u *Universe) ItemFor(array string, subs []ir.Expr, env *vn.Env, ranges map[string]LoopRange) *Item {
	if len(subs) == 0 {
		return nil
	}
	nums := make([]vn.Num, len(subs))
	key := array + "|"
	for i, sub := range subs {
		nums[i] = env.Number(sub)
		if nums[i] == vn.Invalid {
			return nil
		}
		key += u.Tab.Key(nums[i]) + "|"
	}
	if it, ok := u.byKey[key]; ok {
		return it
	}
	it := &Item{
		ID:     len(u.Items),
		Array:  array,
		Subs:   nums,
		Ranges: map[string]LoopRange{},
	}
	for _, sub := range subs {
		it.Reprs = append(it.Reprs, ir.CloneExpr(sub))
		for _, ref := range ir.ArrayRefs(sub) {
			it.IndirectArrays = append(it.IndirectArrays, ref.Name)
		}
	}
	for v, r := range ranges {
		it.Ranges[v] = r
	}
	it.lo = make([]int64, len(nums))
	it.hi = make([]int64, len(nums))
	it.bounded = make([]bool, len(nums))
	for i, n := range nums {
		it.lo[i], it.hi[i], it.bounded[i] = bounds(u.Tab, n)
	}
	u.Items = append(u.Items, it)
	u.byKey[key] = it
	return it
}

// bounds derives numeric subscript bounds from the value-number
// structure: constants are exact, iotas use their range when the range
// bounds are constants, sums/differences combine monotonically.
func bounds(t *vn.Table, n vn.Num) (lo, hi int64, ok bool) {
	if v, isConst := t.ConstVal(n); isConst {
		return v, v, true
	}
	if r, isIota := t.RangeOf(n); isIota {
		lov, lok := t.ConstVal(r.Lo)
		hiv, hok := t.ConstVal(r.Hi)
		if lok && hok {
			return lov, hiv, true
		}
		return 0, 0, false
	}
	if op, a, b, isBin := t.Op(n); isBin {
		alo, ahi, aok := bounds(t, a)
		blo, bhi, bok := bounds(t, b)
		if aok && bok {
			switch op {
			case "+":
				return alo + blo, ahi + bhi, true
			case "-":
				return alo - bhi, ahi - blo, true
			}
		}
	}
	return 0, 0, false
}

// strideClass derives (modulus, residue) for a subscript whose values
// all satisfy value ≡ residue (mod modulus): constants give any
// modulus, affine forms coeff·i + offset over a loop i = lo, hi, step
// with constant coeff, lo, and step give modulus |coeff·step|. ok is
// false when no such classification is derivable.
func strideClass(t *vn.Table, n vn.Num, wantMod int64) (residue int64, ok bool) {
	coeff, offset, iota, affOK := t.Affine(n)
	if !affOK || wantMod < 2 {
		return 0, false
	}
	if iota == vn.Invalid { // constant
		return mod(offset, wantMod), true
	}
	r, _ := t.RangeOf(iota)
	lov, lok := t.ConstVal(r.Lo)
	stv, sok := t.ConstVal(r.Step)
	if !lok || !sok {
		return 0, false
	}
	stride := coeff * stv
	if stride < 0 {
		stride = -stride
	}
	if stride%wantMod != 0 {
		return 0, false // values wander across residue classes of wantMod
	}
	return mod(coeff*lov+offset, wantMod), true
}

// modulus returns the natural stride modulus of a subscript, or 0.
func modulus(t *vn.Table, n vn.Num) int64 {
	coeff, _, iota, ok := t.Affine(n)
	if !ok || iota == vn.Invalid {
		return 0
	}
	r, _ := t.RangeOf(iota)
	stv, sok := t.ConstVal(r.Step)
	if !sok {
		return 0
	}
	m := coeff * stv
	if m < 0 {
		m = -m
	}
	return m
}

func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// NumericBounds reports the derived numeric range of dimension d.
func (it *Item) NumericBounds(d int) (lo, hi int64, ok bool) {
	if d >= len(it.bounded) {
		return 0, 0, false
	}
	return it.lo[d], it.hi[d], it.bounded[d]
}

// Dims returns the number of subscript dimensions.
func (it *Item) Dims() int { return len(it.Subs) }

// Indirect reports whether the subscript goes through another array.
func (it *Item) Indirect() bool { return len(it.IndirectArrays) > 0 }

// UsesArray reports whether the subscript reads the named array.
func (it *Item) UsesArray(name string) bool {
	for _, a := range it.IndirectArrays {
		if a == name {
			return true
		}
	}
	return false
}

// MayOverlap reports whether two items can denote overlapping array
// elements. Different arrays never overlap; equal items always do;
// otherwise overlap is assumed unless both have numeric bounds that are
// disjoint. (The Universe method additionally proves stride-based
// disjointness.)
func MayOverlap(a, b *Item) bool {
	if a.Array != b.Array {
		return false
	}
	if a.ID == b.ID {
		return true
	}
	// a single provably disjoint dimension separates the sections
	for d := 0; d < len(a.Subs) && d < len(b.Subs); d++ {
		if a.bounded[d] && b.bounded[d] && (a.hi[d] < b.lo[d] || b.hi[d] < a.lo[d]) {
			return false
		}
	}
	// Unbounded (symbolic or indirect) sections of one array may
	// otherwise overlap.
	return true
}

// MayOverlap is the universe-aware overlap test: besides the bounds of
// the package-level MayOverlap it proves stride disjointness — x(2k)
// and x(2k+1) never collide because their subscripts fall in different
// residue classes of the common stride, even with symbolic loop bounds.
func (u *Universe) MayOverlap(a, b *Item) bool {
	if !MayOverlap(a, b) {
		return false
	}
	if a.ID == b.ID || a.Array != b.Array {
		return a.ID == b.ID
	}
	for d := 0; d < len(a.Subs) && d < len(b.Subs); d++ {
		m := modulus(u.Tab, a.Subs[d])
		if mb := modulus(u.Tab, b.Subs[d]); mb > m {
			m = mb
		}
		if m >= 2 {
			ra, okA := strideClass(u.Tab, a.Subs[d], m)
			rb, okB := strideClass(u.Tab, b.Subs[d], m)
			if okA && okB && ra != rb {
				return false
			}
		}
	}
	return true
}

// String renders the item as the paper writes it: the representative
// subscript with induction variables expanded to range triplets, and
// constant arithmetic folded — x(a(k)) under k=1,N prints as x(a(1:N)).
func (it *Item) String() string {
	return ir.ExprString(it.SectionExpr())
}

// SectionExpr returns the item as an array-section expression, e.g.
// x(11:n + 10) or x(1:n, 2:m+1), for embedding in generated
// communication statements.
func (it *Item) SectionExpr() ir.Expr {
	subs := make([]ir.Expr, len(it.Reprs))
	for i, r := range it.Reprs {
		subs[i] = fold(lift(substitute(r, it.Ranges)))
	}
	return &ir.ArrayRef{Name: it.Array, Subs: subs}
}

// substitute replaces each ranged variable with a RangeExpr over its
// bounds, so x(a(k)) becomes x(a(1:n)) with the triplet inside the
// indirection, as the paper prints it.
func substitute(e ir.Expr, ranges map[string]LoopRange) ir.Expr {
	switch e := e.(type) {
	case *ir.Ident:
		if r, ok := ranges[e.Name]; ok {
			out := &ir.RangeExpr{Lo: ir.CloneExpr(r.Lo), Hi: ir.CloneExpr(r.Hi)}
			if r.Step != nil {
				if lit, isOne := r.Step.(*ir.IntLit); !isOne || lit.Value != 1 {
					out.Stride = ir.CloneExpr(r.Step)
				}
			}
			return out
		}
		return e
	case *ir.BinExpr:
		return &ir.BinExpr{Position: e.Position, Op: e.Op,
			X: substitute(e.X, ranges), Y: substitute(e.Y, ranges)}
	case *ir.UnaryExpr:
		return &ir.UnaryExpr{Position: e.Position, Op: e.Op, X: substitute(e.X, ranges)}
	case *ir.ArrayRef:
		subs := make([]ir.Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[i] = substitute(s, ranges)
		}
		return &ir.ArrayRef{Position: e.Position, Name: e.Name, Subs: subs}
	default:
		return e
	}
}

// lift distributes arithmetic over ranges so (1:n) + 10 becomes
// 11:n+10. Loop bounds are assumed nonnegative and strides positive, so
// +, - and * are monotone; this is a printing aid, not an analysis.
func lift(e ir.Expr) ir.Expr {
	switch e := e.(type) {
	case *ir.BinExpr:
		x, y := lift(e.X), lift(e.Y)
		xr, xok := x.(*ir.RangeExpr)
		yr, yok := y.(*ir.RangeExpr)
		bin := func(a, b ir.Expr) ir.Expr { return &ir.BinExpr{Op: e.Op, X: a, Y: b} }
		switch {
		case xok && yok && e.Op == "+":
			return mkStride(bin(xr.Lo, yr.Lo), bin(xr.Hi, yr.Hi), xr.Stride)
		case xok && (e.Op == "+" || e.Op == "-"):
			return mkStride(bin(xr.Lo, y), bin(xr.Hi, y), xr.Stride)
		case xok && e.Op == "*":
			return mkStride(bin(xr.Lo, y), bin(xr.Hi, y), scaleStride(xr.Stride, y))
		case yok && e.Op == "+":
			return mkStride(bin(x, yr.Lo), bin(x, yr.Hi), yr.Stride)
		case yok && e.Op == "*":
			return mkStride(bin(x, yr.Lo), bin(x, yr.Hi), scaleStride(yr.Stride, x))
		case yok && e.Op == "-":
			return mkStride(bin(x, yr.Hi), bin(x, yr.Lo), yr.Stride)
		default:
			return &ir.BinExpr{Position: e.Position, Op: e.Op, X: x, Y: y}
		}
	case *ir.UnaryExpr:
		return &ir.UnaryExpr{Position: e.Position, Op: e.Op, X: lift(e.X)}
	case *ir.ArrayRef:
		subs := make([]ir.Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[i] = lift(s)
		}
		return &ir.ArrayRef{Position: e.Position, Name: e.Name, Subs: subs}
	default:
		return e
	}
}

// fold evaluates constant integer arithmetic so 1 + 10 prints as 11.
func fold(e ir.Expr) ir.Expr {
	b, ok := e.(*ir.BinExpr)
	if !ok {
		switch e := e.(type) {
		case *ir.ArrayRef:
			subs := make([]ir.Expr, len(e.Subs))
			for i, s := range e.Subs {
				subs[i] = fold(s)
			}
			return &ir.ArrayRef{Position: e.Position, Name: e.Name, Subs: subs}
		case *ir.RangeExpr:
			lo, hi := fold(e.Lo), fold(e.Hi)
			if ir.ExprString(lo) == ir.ExprString(hi) {
				return lo
			}
			return &ir.RangeExpr{Position: e.Position, Lo: lo, Hi: hi, Stride: e.Stride}
		}
		return e
	}
	x, y := fold(b.X), fold(b.Y)
	xl, xok := x.(*ir.IntLit)
	yl, yok := y.(*ir.IntLit)
	if xok && yok {
		var v int64
		switch b.Op {
		case "+":
			v = xl.Value + yl.Value
		case "-":
			v = xl.Value - yl.Value
		case "*":
			v = xl.Value * yl.Value
		default:
			return &ir.BinExpr{Position: b.Position, Op: b.Op, X: x, Y: y}
		}
		return &ir.IntLit{Position: b.Position, Value: v}
	}
	// canonicalize "1 + n" to "n + 1" style? keep as written
	return &ir.BinExpr{Position: b.Position, Op: b.Op, X: x, Y: y}
}

// mkStride builds a range with an optional stride.
func mkStride(lo, hi, stride ir.Expr) ir.Expr {
	return &ir.RangeExpr{Lo: lo, Hi: hi, Stride: stride}
}

// scaleStride multiplies a stride (nil = 1) by a factor.
func scaleStride(stride, factor ir.Expr) ir.Expr {
	if stride == nil {
		return ir.CloneExpr(factor)
	}
	return &ir.BinExpr{Op: "*", X: ir.CloneExpr(stride), Y: ir.CloneExpr(factor)}
}

// CoalesceExprs merges the section expressions of items that form
// contiguous one-dimensional constant ranges of one array — x(1:5) and
// x(6:10) travel as x(1:10) — returning one expression per remaining
// group. Message coalescing reduces startup costs beyond what placement
// alone achieves; items that cannot merge keep their own sections.
func (u *Universe) CoalesceExprs(items []*Item) []ir.Expr {
	type span struct {
		lo, hi int64
		used   bool
	}
	var out []ir.Expr
	byArray := map[string][]span{}
	var order []string
	for _, it := range items {
		lo, hi, ok := int64(0), int64(0), false
		if it.Dims() == 1 {
			lo, hi, ok = it.NumericBounds(0)
		}
		if !ok {
			out = append(out, it.SectionExpr())
			continue
		}
		if _, seen := byArray[it.Array]; !seen {
			order = append(order, it.Array)
		}
		byArray[it.Array] = append(byArray[it.Array], span{lo: lo, hi: hi})
	}
	for _, array := range order {
		spans := byArray[array]
		// merge transitively: O(n²) over the handful of sections at one
		// placement point
		for changed := true; changed; {
			changed = false
			for i := range spans {
				if spans[i].used {
					continue
				}
				for j := i + 1; j < len(spans); j++ {
					if spans[j].used {
						continue
					}
					if spans[i].hi+1 >= spans[j].lo && spans[j].hi+1 >= spans[i].lo {
						if spans[j].lo < spans[i].lo {
							spans[i].lo = spans[j].lo
						}
						if spans[j].hi > spans[i].hi {
							spans[i].hi = spans[j].hi
						}
						spans[j].used = true
						changed = true
					}
				}
			}
		}
		for _, sp := range spans {
			if sp.used {
				continue
			}
			var sub ir.Expr
			if sp.lo == sp.hi {
				sub = &ir.IntLit{Value: sp.lo}
			} else {
				sub = &ir.RangeExpr{Lo: &ir.IntLit{Value: sp.lo}, Hi: &ir.IntLit{Value: sp.hi}}
			}
			out = append(out, &ir.ArrayRef{Name: array, Subs: []ir.Expr{sub}})
		}
	}
	return out
}

// Describe renders all items, one per line, for debugging.
func (u *Universe) Describe() string {
	var sb strings.Builder
	for _, it := range u.Items {
		fmt.Fprintf(&sb, "%2d: %s\n", it.ID, it)
	}
	return sb.String()
}
