package sections

import (
	"testing"

	"givetake/internal/frontend"
	"givetake/internal/ir"
	"givetake/internal/vn"
)

func sub(t *testing.T, s string) ir.Expr {
	t.Helper()
	stmts, err := frontend.ParseStmts("q = " + s)
	if err != nil {
		t.Fatal(err)
	}
	return stmts[0].(*ir.Assign).RHS
}

func loopRanges() map[string]LoopRange {
	one := &ir.IntLit{Value: 1}
	n := &ir.Ident{Name: "n"}
	return map[string]LoopRange{"k": {Lo: one, Hi: n}}
}

func TestItemInterning(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)
	one := &ir.IntLit{Value: 1}
	n := &ir.Ident{Name: "n"}

	pop := env.PushLoop("k", one, n, nil)
	a := u.ItemFor("x", []ir.Expr{sub(t, "a(k)")}, env, map[string]LoopRange{"k": {Lo: one, Hi: n}})
	pop()

	pop = env.PushLoop("l", one, n, nil)
	b := u.ItemFor("x", []ir.Expr{sub(t, "a(l)")}, env, map[string]LoopRange{"l": {Lo: one, Hi: n}})
	pop()

	if a == nil || b == nil || a.ID != b.ID {
		t.Fatalf("x(a(k)) and x(a(l)) should intern to one item: %v vs %v", a, b)
	}
	if u.Size() != 1 {
		t.Fatalf("universe size = %d, want 1", u.Size())
	}
	if got := a.String(); got != "x(a(1:n))" {
		t.Fatalf("item prints as %q, want x(a(1:n))", got)
	}
	if !a.Indirect() || !a.UsesArray("a") || a.UsesArray("b") {
		t.Fatal("indirection tracking wrong")
	}
}

// TestSectionPrinting reproduces the paper's notations: x(k+10) under
// do k=1,N prints x(11:n + 10) (Figure 14's x(11:N+10)).
func TestSectionPrinting(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)
	pop := env.PushLoop("k", &ir.IntLit{Value: 1}, &ir.Ident{Name: "n"}, nil)
	it := u.ItemFor("x", []ir.Expr{sub(t, "k + 10")}, env, loopRanges())
	pop()
	if got := it.String(); got != "x(11:n + 10)" {
		t.Fatalf("item prints as %q, want x(11:n + 10)", got)
	}
	// scalar subscript: no triplet
	it2 := u.ItemFor("x", []ir.Expr{sub(t, "7")}, vn.NewEnv(u.Tab), nil)
	if got := it2.String(); got != "x(7)" {
		t.Fatalf("item prints as %q, want x(7)", got)
	}
}

func TestNumericBounds(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)
	pop := env.PushLoop("k", &ir.IntLit{Value: 1}, &ir.IntLit{Value: 10}, nil)
	it := u.ItemFor("x", []ir.Expr{sub(t, "k + 5")}, env, nil)
	pop()
	lo, hi, ok := it.NumericBounds(0)
	if !ok || lo != 6 || hi != 15 {
		t.Fatalf("bounds = %d..%d ok=%v, want 6..15", lo, hi, ok)
	}
}

func TestMayOverlap(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)

	x1 := u.ItemFor("x", []ir.Expr{sub(t, "1")}, env, nil)
	x2 := u.ItemFor("x", []ir.Expr{sub(t, "2")}, env, nil)
	y1 := u.ItemFor("y", []ir.Expr{sub(t, "1")}, env, nil)
	xs := u.ItemFor("x", []ir.Expr{sub(t, "m")}, env, nil) // symbolic

	pop := env.PushLoop("k", &ir.IntLit{Value: 1}, &ir.IntLit{Value: 5}, nil)
	xlo := u.ItemFor("x", []ir.Expr{sub(t, "k")}, env, nil) // x(1:5)
	pop()
	pop = env.PushLoop("k", &ir.IntLit{Value: 10}, &ir.IntLit{Value: 20}, nil)
	xhi := u.ItemFor("x", []ir.Expr{sub(t, "k")}, env, nil) // x(10:20)
	pop()

	cases := []struct {
		a, b *Item
		want bool
	}{
		{x1, x1, true},    // same item
		{x1, x2, false},   // disjoint constants
		{x1, y1, false},   // different arrays
		{x1, xs, true},    // symbolic may overlap
		{xlo, xhi, false}, // disjoint constant ranges
		{xlo, x2, true},   // 2 ∈ 1..5
	}
	for _, c := range cases {
		if got := MayOverlap(c.a, c.b); got != c.want {
			t.Errorf("MayOverlap(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestInvalidSubscript(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)
	if it := u.ItemFor("x", []ir.Expr{&ir.Ellipsis{}}, env, nil); it != nil {
		t.Fatal("ellipsis subscript should yield no item")
	}
	if it := u.ItemFor("x", nil, env, nil); it != nil {
		t.Fatal("empty subscript list should yield no item")
	}
}

// --- stride-aware behavior -------------------------------------------------

func TestStridedSectionPrinting(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)
	two := &ir.IntLit{Value: 2}
	pop := env.PushLoop("k", &ir.IntLit{Value: 1}, &ir.Ident{Name: "n"}, two)
	it := u.ItemFor("x", []ir.Expr{sub(t, "k")}, env,
		map[string]LoopRange{"k": {Lo: &ir.IntLit{Value: 1}, Hi: &ir.Ident{Name: "n"}, Step: two}})
	pop()
	if got := it.String(); got != "x(1:n:2)" {
		t.Fatalf("strided section prints as %q, want x(1:n:2)", got)
	}
}

func TestScaledStridePrinting(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)
	pop := env.PushLoop("k", &ir.IntLit{Value: 1}, &ir.Ident{Name: "n"}, nil)
	it := u.ItemFor("x", []ir.Expr{sub(t, "2 * k")}, env,
		map[string]LoopRange{"k": {Lo: &ir.IntLit{Value: 1}, Hi: &ir.Ident{Name: "n"}}})
	pop()
	if got := it.String(); got != "x(2:2 * n:2)" {
		t.Fatalf("scaled section prints as %q", got)
	}
}

// TestStrideDisjointness: x(2k) and x(2k+1) never collide, even with a
// symbolic bound n — different residues of the common stride 2.
func TestStrideDisjointness(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)
	one := &ir.IntLit{Value: 1}
	n := &ir.Ident{Name: "n"}

	pop := env.PushLoop("k", one, n, nil)
	even := u.ItemFor("x", []ir.Expr{sub(t, "2 * k")}, env, nil)
	odd := u.ItemFor("x", []ir.Expr{sub(t, "2 * k + 1")}, env, nil)
	alsoEven := u.ItemFor("x", []ir.Expr{sub(t, "2 * k + 4")}, env, nil)
	dense := u.ItemFor("x", []ir.Expr{sub(t, "k")}, env, nil)
	pop()

	if u.MayOverlap(even, odd) {
		t.Fatal("x(2k) and x(2k+1) should be provably disjoint")
	}
	if !u.MayOverlap(even, alsoEven) {
		t.Fatal("x(2k) and x(2k+4) share residue class 0: may overlap")
	}
	if !u.MayOverlap(even, dense) {
		t.Fatal("x(2k) and x(k) may overlap (stride 1 covers everything)")
	}
	if !u.MayOverlap(even, even) {
		t.Fatal("an item overlaps itself")
	}
}

// TestStrideDisjointnessConstVsStrided: x(2k) vs the constant x(7).
func TestStrideDisjointnessConstVsStrided(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)
	pop := env.PushLoop("k", &ir.IntLit{Value: 1}, &ir.Ident{Name: "n"}, nil)
	even := u.ItemFor("x", []ir.Expr{sub(t, "2 * k")}, env, nil)
	pop()
	odd7 := u.ItemFor("x", []ir.Expr{sub(t, "7")}, env, nil)
	even8 := u.ItemFor("x", []ir.Expr{sub(t, "8")}, env, nil)
	if u.MayOverlap(even, odd7) {
		t.Fatal("x(2k) cannot be 7")
	}
	if !u.MayOverlap(even, even8) {
		t.Fatal("x(2k) can be 8")
	}
}

// TestStridedLoopDisjointness: do k = 1, n, 2 gives x(k) odd residues.
func TestStridedLoopDisjointness(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)
	two := &ir.IntLit{Value: 2}
	one := &ir.IntLit{Value: 1}
	n := &ir.Ident{Name: "n"}

	pop := env.PushLoop("k", one, n, two) // k = 1, 3, 5, ...
	odds := u.ItemFor("x", []ir.Expr{sub(t, "k")}, env, nil)
	pop()
	pop = env.PushLoop("k", two, n, two) // k = 2, 4, 6, ...
	evens := u.ItemFor("x", []ir.Expr{sub(t, "k")}, env, nil)
	pop()
	if u.MayOverlap(odds, evens) {
		t.Fatal("odd-strided and even-strided loops over x should be disjoint")
	}
}

// TestNoFalseDisjointnessAcrossVariables: k + j over two loops with
// identical ranges must NOT be classified as strided — value numbering
// identifies ranges, not variables, and k+j ranges densely. (Regression
// for an Affine soundness bug caught by the test suite.)
func TestNoFalseDisjointnessAcrossVariables(t *testing.T) {
	u := NewUniverse()
	env := vn.NewEnv(u.Tab)
	one := &ir.IntLit{Value: 1}
	n := &ir.Ident{Name: "n"}
	popK := env.PushLoop("k", one, n, nil)
	popJ := env.PushLoop("j", one, n, nil)
	a := u.ItemFor("x", []ir.Expr{sub(t, "k + j")}, env, nil)
	b := u.ItemFor("x", []ir.Expr{sub(t, "k + j + 1")}, env, nil)
	popJ()
	popK()
	if !u.MayOverlap(a, b) {
		t.Fatal("x(k+j) and x(k+j+1) must be treated as overlapping (k=1,j=2 vs k=1,j=1 collide)")
	}
}
