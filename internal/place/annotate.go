// Package place maps GIVE-N-TAKE placement results back onto source
// programs: it rebuilds a program's statement list, invoking a callback
// for the entry and exit of every CFG block — including the synthetic
// positions that need materialization (paper §5.4): pads on branch arms
// become code at the top of the arm (creating an else branch if needed,
// as in Figure 3), pads on loop edges become code before the first or
// after the last iteration, and label anchors put their code in front of
// the labeled statement, transferring the label (Figure 14's
// "77 READ_Recv{...}").
package place

import (
	"fmt"

	"givetake/internal/cfg"
	"givetake/internal/ir"
)

// EmitFunc returns the statements to insert at a block's entry
// (entry=true) or exit. It is called exactly once per block side.
type EmitFunc func(b *cfg.Block, entry bool) []ir.Stmt

// Annotate returns a copy of prog with the emitter's statements woven in
// at the source positions corresponding to each CFG block.
func Annotate(prog *ir.Program, g *cfg.Graph, emit EmitFunc) *ir.Program {
	out := ir.NewProgram(prog.Name)
	for _, d := range prog.Decls {
		out.Declare(d)
	}
	an := &annotator{g: g, emit: emit}
	body := emit(g.Entry, true)
	body = append(body, emit(g.Entry, false)...)
	body = append(body, an.rebuild(prog.Body)...)
	body = append(body, emit(g.Exit, true)...)
	body = append(body, emit(g.Exit, false)...)
	out.Body = body
	return out
}

type annotator struct {
	g    *cfg.Graph
	emit EmitFunc
}

func (an *annotator) comms(b *cfg.Block, entry bool) []ir.Stmt {
	if b == nil {
		return nil
	}
	return an.emit(b, entry)
}

// around wraps a statement's own entry/exit communication.
func (an *annotator) around(b *cfg.Block, label string, mk func() ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	out = append(out, an.comms(b, true)...)
	out = append(out, mk())
	out = append(out, an.comms(b, false)...)
	return applyLabel(out, label)
}

// applyLabel moves a statement label onto the first statement of the
// expansion, as in Figure 14's "77 READ_Recv{...}".
func applyLabel(stmts []ir.Stmt, label string) []ir.Stmt {
	if label == "" || len(stmts) == 0 {
		return stmts
	}
	stmts[0].SetLabel(label)
	return stmts
}

// padOnEdge returns the pad block sitting on the edge from → to, if any.
func padOnEdge(from *cfg.Block, idx int) *cfg.Block {
	if idx >= len(from.Succs) {
		return nil
	}
	if s := from.Succs[idx]; s != nil && s.Kind == cfg.KPad {
		return s
	}
	return nil
}

func (an *annotator) rebuild(stmts []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		label := s.Label()
		// a labeled goto target: the anchor block's communication comes
		// first and inherits the label
		if label != "" {
			if anchor := an.anchorBlock(label); anchor != nil {
				pre := an.comms(anchor, true)
				pre = append(pre, an.comms(anchor, false)...)
				if len(pre) > 0 {
					out = append(out, applyLabel(pre, label)...)
					label = "" // consumed by the first comm statement
				}
			}
		}
		switch s := s.(type) {
		case *ir.Assign:
			out = append(out, an.around(an.g.StmtBlock[s], label, func() ir.Stmt {
				return cloneWithLabel(s, "")
			})...)
		case *ir.Continue:
			out = append(out, an.around(an.g.StmtBlock[s], label, func() ir.Stmt {
				return cloneWithLabel(s, "")
			})...)
		case *ir.Comm:
			out = append(out, cloneWithLabel(s, label))
		case *ir.Goto:
			g := &ir.Goto{Target: s.Target}
			g.SetLabel(label)
			out = append(out, g)
		case *ir.Do:
			h := an.g.LoopHeader[s]
			d := &ir.Do{Var: s.Var, Lo: s.Lo, Hi: s.Hi, Step: s.Step}
			d.Body = an.rebuild(s.Body)
			if h != nil {
				// A pad on the entry edge (inserted when the first body
				// statement is itself a loop header) executes at the top
				// of every iteration: prepend its communication to the
				// body. An empty source body hides a synthesized continue
				// node the AST walk never reaches; its communication forms
				// the body.
				if pad := padOnEdge(h, 0); pad != nil {
					pre := an.comms(pad, true)
					pre = append(pre, an.comms(pad, false)...)
					d.Body = append(pre, d.Body...)
				}
				if len(s.Body) == 0 && len(h.Succs) > 0 && h.Succs[0].Kind == cfg.KStmt {
					body := an.comms(h.Succs[0], true)
					body = append(body, an.comms(h.Succs[0], false)...)
					d.Body = append(body, d.Body...)
				}
			}
			group := an.comms(h, true)
			group = append(group, d)
			group = append(group, an.comms(h, false)...)
			// a pad on the loop-exit edge also lands right after enddo
			if h != nil {
				if pad := padOnEdge(h, len(h.Succs)-1); pad != nil {
					group = append(group, an.comms(pad, true)...)
					group = append(group, an.comms(pad, false)...)
				}
			}
			out = append(out, applyLabel(group, label)...)
		case *ir.If:
			out = append(out, an.rebuildIf(s, label)...)
		default:
			panic(fmt.Sprintf("place: annotate: unexpected %T", s))
		}
	}
	return out
}

func (an *annotator) rebuildIf(s *ir.If, label string) []ir.Stmt {
	br := an.g.IfBranch[s]
	join := an.g.IfJoin[s]

	then := an.rebuild(s.Then)
	els := an.rebuild(s.Else)
	// Pads hanging off the branch belong to the start of the matching
	// arm: Succs[0] is the then side, Succs[1] the else side. This
	// covers the synthetic else branch of Figure 3 (pad on branch→join),
	// the landing block of Figure 14 (pad on branch→anchor, production
	// inside "if ... then" before the goto), and the latch pad of a
	// loop-ending logical IF.
	if br != nil {
		if pad := padOnEdge(br, 0); pad != nil {
			pre := an.comms(pad, true)
			pre = append(pre, an.comms(pad, false)...)
			then = append(pre, then...)
		}
		if pad := padOnEdge(br, 1); pad != nil {
			pre := an.comms(pad, true)
			pre = append(pre, an.comms(pad, false)...)
			els = append(pre, els...)
		}
	}

	group := an.comms(br, true)
	// Production at the branch's exit (e.g. a WRITE_Recv the reversed
	// problem anchors to the branch) executes once, after the condition
	// evaluates and before either arm; emitting it just before the IF is
	// semantically identical since condition evaluation has no effects.
	group = append(group, an.comms(br, false)...)
	nif := ir.NewIf(s.Pos(), s.Cond, then, els)
	group = append(group, nif)
	group = append(group, an.comms(join, true)...)
	group = append(group, an.comms(join, false)...)
	return applyLabel(group, label)
}

func (an *annotator) anchorBlock(label string) *cfg.Block {
	for _, b := range an.g.Blocks {
		if b.Kind == cfg.KAnchor && b.LabelName == label {
			return b
		}
	}
	return nil
}

// cloneWithLabel shallow-copies a statement so the original program is
// never mutated by label transfer.
func cloneWithLabel(s ir.Stmt, label string) ir.Stmt {
	var c ir.Stmt
	switch s := s.(type) {
	case *ir.Assign:
		n := *s
		c = &n
	case *ir.Continue:
		n := *s
		c = &n
	case *ir.Comm:
		n := *s
		c = &n
	default:
		panic(fmt.Sprintf("place: cloneWithLabel: unexpected %T", s))
	}
	c.SetLabel(label)
	return c
}
