package place

import (
	"strings"
	"testing"

	"givetake/internal/cfg"
	"givetake/internal/frontend"
	"givetake/internal/ir"
)

// mark returns an emitter that inserts "m = <blockID>*2[+1]" markers at
// the entry/exit of the blocks whose description matches.
func mark(g *cfg.Graph, substr string) EmitFunc {
	return func(b *cfg.Block, entry bool) []ir.Stmt {
		if b == nil || !strings.Contains(b.String(), substr) {
			return nil
		}
		v := int64(b.ID * 2)
		if !entry {
			v++
		}
		return []ir.Stmt{ir.NewAssign(ir.Pos{}, &ir.Ident{Name: "m"}, &ir.IntLit{Value: v})}
	}
}

func build(t *testing.T, src string) (*ir.Program, *cfg.Graph) {
	t.Helper()
	prog, err := frontend.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, g
}

func TestMarkersAroundStatement(t *testing.T) {
	prog, g := build(t, "a = 1\nb = 2\n")
	out := Annotate(prog, g, mark(g, "b = 2"))
	text := ir.ProgramString(out)
	lines := strings.Split(strings.TrimSpace(text), "\n")
	// a = 1, m = <entry>, b = 2, m = <exit>
	if len(lines) != 4 || lines[0] != "a = 1" || lines[2] != "b = 2" {
		t.Fatalf("unexpected shape:\n%s", text)
	}
	if !strings.HasPrefix(lines[1], "m = ") || !strings.HasPrefix(lines[3], "m = ") {
		t.Fatalf("markers missing:\n%s", text)
	}
}

func TestMarkersAroundLoop(t *testing.T) {
	prog, g := build(t, "do i = 1, n\n a = 1\nenddo\n")
	out := Annotate(prog, g, mark(g, "header"))
	text := ir.ProgramString(out)
	doLine := strings.Index(text, "do i")
	endLine := strings.Index(text, "enddo")
	first := strings.Index(text, "m = ")
	last := strings.LastIndex(text, "m = ")
	if !(first < doLine && last > endLine) {
		t.Fatalf("header markers should bracket the loop:\n%s", text)
	}
}

func TestLabelTransfer(t *testing.T) {
	prog, g := build(t, "goto 9\n9 a = 1\n")
	out := Annotate(prog, g, mark(g, "anchor"))
	text := ir.ProgramString(out)
	if !strings.Contains(text, "9 m = ") {
		t.Fatalf("label should move to the anchor's first marker:\n%s", text)
	}
	if strings.Contains(text, "9 a = 1") {
		t.Fatalf("label should have been consumed:\n%s", text)
	}
}

func TestSyntheticElseMaterialized(t *testing.T) {
	prog, g := build(t, "if c then\n a = 1\nendif\nb = 2\n")
	out := Annotate(prog, g, mark(g, "pad"))
	text := ir.ProgramString(out)
	if !strings.Contains(text, "else") {
		t.Fatalf("pad marker should create the else branch:\n%s", text)
	}
}

func TestOriginalProgramUntouched(t *testing.T) {
	prog, g := build(t, "goto 9\n9 a = 1\n")
	before := ir.ProgramString(prog)
	Annotate(prog, g, mark(g, "anchor"))
	if ir.ProgramString(prog) != before {
		t.Fatal("Annotate mutated the input program")
	}
}
