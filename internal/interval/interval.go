// Package interval constructs the Tarjan-interval flow graph that
// GIVE-N-TAKE operates on (paper §3.3): a reducible CFG whose loops are
// identified as Tarjan intervals T(h) with unique header nodes, edges
// classified as ENTRY / CYCLE / JUMP / FORWARD plus SYNTHETIC edges from
// headers to jump targets, and the PREORDER / REVERSEPREORDER traversals
// of §3.4.
//
// Unlike classical interval analysis, no sequence of collapsed graphs is
// built; the solver walks this one graph. ROOT is the virtual header of
// the whole program: it parents the top-level nodes in the loop-nesting
// forest but carries no edges, so equations over its (nonexistent)
// neighbors yield the empty set, exactly as the paper's worked example
// requires (e.g. GIVEN_in(1) = ⊥ for the first real node).
package interval

import (
	"fmt"
	"sort"
	"strings"

	"givetake/internal/cfg"
)

// EdgeType classifies interval flow graph edges (paper §3.3).
type EdgeType int

const (
	// Forward edges stay within the same set of intervals.
	Forward EdgeType = iota
	// Entry edges go from an interval header into its interval.
	Entry
	// Cycle edges go from the unique last child of an interval back to
	// its header (Tarjan's cycle edges).
	Cycle
	// Jump edges leave an interval without passing through its header —
	// a jump out of a loop (Tarjan's cross edges).
	Jump
	// Synthetic edges connect an interval header to the sinks of Jump
	// edges originating inside the interval; they exist so safety
	// (TAKEN_out, Eq. 4) accounts for paths that skip the rest of a loop.
	Synthetic
)

func (t EdgeType) String() string {
	switch t {
	case Forward:
		return "F"
	case Entry:
		return "E"
	case Cycle:
		return "C"
	case Jump:
		return "J"
	case Synthetic:
		return "S"
	default:
		return fmt.Sprintf("EdgeType(%d)", int(t))
	}
}

// TypeSet is a bitmask of EdgeTypes, e.g. FJ or CEFJ.
type TypeSet uint8

// Mask returns the TypeSet containing only t.
func (t EdgeType) Mask() TypeSet { return 1 << uint(t) }

// Has reports whether ts includes t.
func (ts TypeSet) Has(t EdgeType) bool { return ts&t.Mask() != 0 }

// Named type sets used by the equations (paper §3.4 and Fig. 13).
const (
	F    = TypeSet(1 << Forward)
	E    = TypeSet(1 << Entry)
	C    = TypeSet(1 << Cycle)
	J    = TypeSet(1 << Jump)
	S    = TypeSet(1 << Synthetic)
	FJ   = F | J
	EF   = E | F
	FJS  = F | J | S
	CEFJ = C | E | F | J
	All  = CEFJ | S
)

// Edge is one classified edge.
type Edge struct {
	From, To *Node
	Type     EdgeType
}

// Node is an interval flow graph node.
type Node struct {
	// ID is the dense index of the node in Graph.Nodes.
	ID int
	// Block is the underlying CFG block; nil for the virtual ROOT.
	Block *cfg.Block
	// Parent is the innermost enclosing interval header (ROOT for
	// top-level nodes; nil for ROOT itself). J(n) in the paper is
	// T(Parent(n)).
	Parent *Node
	// Level is the loop nesting level; LEVEL(ROOT) = 0.
	Level int
	// IsHeader reports whether the node heads a non-empty interval.
	IsHeader bool
	// Children are the interval members one level deeper
	// (CHILDREN(n) in the paper), in preorder.
	Children []*Node
	// LastChild is the source of the unique CYCLE edge into this header
	// (LASTCHILD(n)); nil for non-headers and for ROOT.
	LastChild *Node
	// EntryHeader is HEADER(n): the source of the ENTRY edge reaching n,
	// or nil. Only "first children" of an interval have one.
	EntryHeader *Node

	Out []Edge
	In  []Edge

	// Pre is the node's position in Graph.Preorder.
	Pre int

	// NoHoist suppresses hoisting consumption out of this interval
	// (paper §4.1 STEAL_init remark and §5.3): the header ignores the
	// TAKE contributions coming from the loop body. Set automatically on
	// the reversed view for loops containing Jump edges; may also be set
	// by clients to pin production inside zero-trip loops.
	NoHoist bool
}

func (n *Node) String() string {
	if n.Block == nil {
		return "ROOT"
	}
	return fmt.Sprintf("n%d(%v)", n.ID, n.Block)
}

// Succs appends to buf the sinks of out-edges whose type is in ts.
func (n *Node) Succs(ts TypeSet, buf []*Node) []*Node {
	for _, e := range n.Out {
		if ts.Has(e.Type) {
			buf = append(buf, e.To)
		}
	}
	return buf
}

// Preds appends to buf the sources of in-edges whose type is in ts.
func (n *Node) Preds(ts TypeSet, buf []*Node) []*Node {
	for _, e := range n.In {
		if ts.Has(e.Type) {
			buf = append(buf, e.From)
		}
	}
	return buf
}

// CountPreds returns the number of in-edges with a type in ts.
func (n *Node) CountPreds(ts TypeSet) int {
	c := 0
	for _, e := range n.In {
		if ts.Has(e.Type) {
			c++
		}
	}
	return c
}

// Graph is the interval flow graph.
type Graph struct {
	// Nodes are the real nodes (ROOT excluded), indexed by ID.
	Nodes []*Node
	// Root is the virtual whole-program header.
	Root *Node
	// Preorder lists the real nodes in PREORDER (forward and downward,
	// §3.4); REVERSEPREORDER is this slice walked backwards.
	Preorder []*Node
	// CFG is the underlying control flow graph.
	CFG *cfg.Graph
	// Reversed marks a graph produced by Reverse (used for AFTER
	// problems); Jump edges then point into intervals rather than out.
	Reversed bool

	byBlock map[*cfg.Block]*Node
}

// NodeFor returns the interval node of a CFG block.
func (g *Graph) NodeFor(b *cfg.Block) *Node { return g.byBlock[b] }

// Interval returns T(h): all nodes strictly inside h's interval, i.e.
// every node whose Parent chain reaches h. For ROOT it returns all nodes.
func (g *Graph) Interval(h *Node) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		for p := n.Parent; p != nil; p = p.Parent {
			if p == h {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// InInterval reports n ∈ T(h).
func InInterval(n, h *Node) bool {
	for p := n.Parent; p != nil; p = p.Parent {
		if p == h {
			return true
		}
	}
	return false
}

// FromCFG builds the interval flow graph for a normalized CFG. The CFG
// must be reducible, have no critical edges, and funnel each loop through
// a unique latch (all guaranteed by cfg.Build; hand-built graphs are
// verified and rejected with an error).
func FromCFG(c *cfg.Graph) (*Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if !c.Reducible() {
		return nil, fmt.Errorf("interval: graph is irreducible; apply node splitting first (cfg.MakeReducible)")
	}

	g := &Graph{CFG: c, byBlock: map[*cfg.Block]*Node{}}
	g.Root = &Node{ID: -1, Level: 0, IsHeader: true}

	for _, b := range c.Blocks {
		n := &Node{ID: len(g.Nodes), Block: b, Parent: g.Root, Level: 1}
		g.Nodes = append(g.Nodes, n)
		g.byBlock[b] = n
	}

	if err := g.buildLoopForest(); err != nil {
		return nil, err
	}
	if err := g.classifyEdges(); err != nil {
		return nil, err
	}
	g.addSyntheticEdges()
	g.computePreorder()
	if err := g.check(); err != nil {
		return nil, err
	}
	return g, nil
}

// buildLoopForest discovers natural loops from back edges and assigns
// Parent/Level. With the unique-latch normalization every header has
// exactly one back edge; multiple back edges to one header are rejected.
func (g *Graph) buildLoopForest() error {
	idom := g.CFG.Dominators()

	// loop membership per header, innermost assignment wins later
	type loop struct {
		header *Node
		body   map[*Node]bool
		latch  *Node
	}
	var loops []*loop
	byHeader := map[*Node]*loop{}

	for _, b := range g.CFG.Blocks {
		for _, s := range b.Succs {
			if !cfg.Dominates(idom, s, b) {
				continue
			}
			h := g.byBlock[s]
			m := g.byBlock[b]
			if byHeader[h] != nil {
				return fmt.Errorf("interval: header %v has multiple CYCLE edges; merge latches first", h)
			}
			l := &loop{header: h, body: map[*Node]bool{}, latch: m}
			// natural loop: nodes that reach the latch without passing h
			stack := []*Node{m}
			l.body[m] = true
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if n == h {
					continue
				}
				for _, p := range n.Block.Preds {
					pn := g.byBlock[p]
					if pn != h && !l.body[pn] {
						l.body[pn] = true
						stack = append(stack, pn)
					}
				}
			}
			delete(l.body, h)
			loops = append(loops, l)
			byHeader[h] = l
			h.IsHeader = true
			h.LastChild = m
		}
	}

	// sort loops by body size ascending so that assigning parents from
	// the smallest loop up makes the innermost header win
	sort.Slice(loops, func(i, j int) bool { return len(loops[i].body) < len(loops[j].body) })

	assigned := map[*Node]bool{}
	for _, l := range loops {
		for n := range l.body {
			if !assigned[n] {
				n.Parent = l.header
				assigned[n] = true
			}
		}
	}
	// headers themselves: a header's parent is the innermost loop that
	// contains it as a body member — already handled above since headers
	// of inner loops are body members of outer loops.

	// levels by parent chain
	var level func(n *Node) int
	level = func(n *Node) int {
		if n.Parent == nil {
			return 0
		}
		return level(n.Parent) + 1
	}
	for _, n := range g.Nodes {
		n.Level = level(n)
	}
	return nil
}

// classifyEdges types every CFG edge per §3.3.
func (g *Graph) classifyEdges() error {
	for _, b := range g.CFG.Blocks {
		m := g.byBlock[b]
		for _, sb := range b.Succs {
			n := g.byBlock[sb]
			t, err := classify(m, n)
			if err != nil {
				return err
			}
			e := Edge{From: m, To: n, Type: t}
			m.Out = append(m.Out, e)
			n.In = append(n.In, e)
			switch t {
			case Entry:
				if n.EntryHeader != nil && n.EntryHeader != m {
					return fmt.Errorf("interval: node %v has multiple entry headers", n)
				}
				n.EntryHeader = m
			case Cycle:
				if n.LastChild != m {
					return fmt.Errorf("interval: cycle edge %v -> %v does not match recorded latch %v", m, n, n.LastChild)
				}
			}
		}
	}
	return nil
}

func classify(m, n *Node) (EdgeType, error) {
	switch {
	case n.IsHeader && InInterval(m, n):
		return Cycle, nil
	case m.IsHeader && InInterval(n, m):
		return Entry, nil
	default:
		// Jump if there is a header h with m ∈ T(h) and n ∉ T+(h).
		for h := m.Parent; h != nil && h.Block != nil; h = h.Parent {
			if n != h && !InInterval(n, h) {
				return Jump, nil
			}
		}
		// Forward requires the same interval memberships.
		if m.Parent != n.Parent {
			// n deeper than m without m being its header: a jump into a
			// loop, impossible in a reducible graph.
			return 0, fmt.Errorf("interval: edge %v -> %v enters interval %v illegally", m, n, n.Parent)
		}
		return Forward, nil
	}
}

// addSyntheticEdges adds, for each Jump edge (m, n) and each header h
// with m ∈ T(h) and n ∉ T+(h), the edge (h, n). That is LEVEL(m)−LEVEL(n)
// edges per Jump edge when the jump lands at the target's own level.
// Duplicate synthetic edges (two jumps from one interval to one sink) are
// collapsed.
func (g *Graph) addSyntheticEdges() {
	type key struct{ h, n *Node }
	seen := map[key]bool{}
	for _, m := range g.Nodes {
		for _, e := range m.Out {
			if e.Type != Jump {
				continue
			}
			n := e.To
			for h := m.Parent; h != nil && h.Block != nil; h = h.Parent {
				if n == h || InInterval(n, h) {
					break
				}
				if !seen[key{h, n}] {
					seen[key{h, n}] = true
					se := Edge{From: h, To: n, Type: Synthetic}
					h.Out = append(h.Out, se)
					n.In = append(n.In, se)
				}
			}
		}
	}
}

// computePreorder orders nodes forward (edge sources before sinks over
// non-CYCLE edges) and downward (headers before interval members), with
// deeper nodes preferred among ready candidates so an interval is emitted
// contiguously after its header, matching the numbering of paper Fig. 12.
func (g *Graph) computePreorder() {
	indeg := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, e := range n.In {
			if e.Type != Cycle {
				indeg[n.ID]++
			}
		}
	}
	// ready: max-heap by (level desc, id asc) — implemented as sorted
	// insertion into a small slice since graphs are program-sized.
	var ready []*Node
	push := func(n *Node) {
		ready = append(ready, n)
	}
	pop := func() *Node {
		best := 0
		for i := 1; i < len(ready); i++ {
			a, b := ready[i], ready[best]
			if a.Level > b.Level || (a.Level == b.Level && a.ID < b.ID) {
				best = i
			}
		}
		n := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		return n
	}
	for _, n := range g.Nodes {
		if indeg[n.ID] == 0 {
			push(n)
		}
	}
	g.Preorder = g.Preorder[:0]
	for len(ready) > 0 {
		n := pop()
		n.Pre = len(g.Preorder)
		g.Preorder = append(g.Preorder, n)
		for _, e := range n.Out {
			if e.Type == Cycle {
				continue
			}
			if indeg[e.To.ID]--; indeg[e.To.ID] == 0 {
				push(e.To)
			}
		}
	}
	// children lists in preorder
	for _, n := range g.Nodes {
		n.Children = n.Children[:0]
	}
	g.Root.Children = g.Root.Children[:0]
	for _, n := range g.Preorder {
		if n.Parent != nil {
			n.Parent.Children = append(n.Parent.Children, n)
		}
	}
}

// check verifies the §3.3 requirements and the preorder invariants.
func (g *Graph) check() error {
	if len(g.Preorder) != len(g.Nodes) {
		return fmt.Errorf("interval: preorder covered %d of %d nodes (cycle through non-CYCLE edges?)", len(g.Preorder), len(g.Nodes))
	}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			switch e.Type {
			case Cycle:
				// the source of a CYCLE edge has no other successors
				if len(n.Out) != 1 {
					return fmt.Errorf("interval: latch %v has extra successors", n)
				}
			case Jump:
				// the sink of a JUMP edge has no CEF predecessors
				if e.To.CountPreds(CEFJ) != 1 {
					return fmt.Errorf("interval: jump sink %v has multiple predecessors", e.To)
				}
			}
			if e.Type != Cycle && e.From.Pre >= e.To.Pre {
				return fmt.Errorf("interval: preorder violates forward order on %v -> %v", e.From, e.To)
			}
		}
		if n.Parent != nil && n.Parent.Block != nil && n.Parent.Pre >= n.Pre {
			return fmt.Errorf("interval: preorder violates downward order for %v", n)
		}
	}
	return nil
}

// LevelStats summarizes the interval nesting of the graph for the
// observability layer: the deepest level among real nodes (1 when the
// program has no loops) and per-level node counts, indexed by level
// (index 0 is always zero — only the virtual ROOT lives at level 0).
func (g *Graph) LevelStats() (maxLevel int, perLevel []int) {
	for _, n := range g.Nodes {
		if n.Level > maxLevel {
			maxLevel = n.Level
		}
	}
	perLevel = make([]int, maxLevel+1)
	for _, n := range g.Nodes {
		perLevel[n.Level]++
	}
	return maxLevel, perLevel
}

// String renders nodes in preorder with their typed out-edges.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, n := range g.Preorder {
		fmt.Fprintf(&sb, "%2d L%d %-30s ->", n.Pre+1, n.Level, n.String())
		for _, e := range n.Out {
			fmt.Fprintf(&sb, " %d%s", e.To.Pre+1, e.Type)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
