package interval

import (
	"testing"

	"givetake/internal/cfg"
)

// The reversed view (paper §5.3) used by AFTER problems.

func TestReverseRolesSwap(t *testing.T) {
	g := buildGraph(t, `
a = 1
do i = 1, n
    x = 2
    y = 3
enddo
b = 4
`)
	rev, err := Reverse(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rev.Reversed {
		t.Fatal("Reversed flag unset")
	}
	if len(rev.Nodes) != len(g.Nodes) {
		t.Fatal("node count changed")
	}
	// every original edge appears reversed with the mapped type
	want := map[EdgeType]EdgeType{Entry: Cycle, Cycle: Entry, Forward: Forward, Jump: Jump, Synthetic: Synthetic}
	origEdges := 0
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			origEdges++
			rn := rev.Nodes[e.To.ID]
			found := false
			for _, re := range rn.Out {
				if re.To.ID == e.From.ID && re.Type == want[e.Type] {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %v-%v(%v) not reversed correctly", e.From, e.To, e.Type)
			}
		}
	}
	revEdges := 0
	for _, n := range rev.Nodes {
		revEdges += len(n.Out)
	}
	if revEdges != origEdges {
		t.Fatalf("edge count changed: %d vs %d", revEdges, origEdges)
	}

	// the original first child becomes the reversed last child and the
	// original latch becomes the reversed entry sink
	for _, n := range g.Nodes {
		if !n.IsHeader {
			continue
		}
		var firstChild *Node
		for _, e := range n.Out {
			if e.Type == Entry {
				firstChild = e.To
			}
		}
		rh := rev.Nodes[n.ID]
		if rh.LastChild == nil || rh.LastChild.ID != firstChild.ID {
			t.Fatalf("reversed LASTCHILD(%v) = %v, want original first child %v",
				rh, rh.LastChild, firstChild)
		}
		if rl := rev.Nodes[n.LastChild.ID]; rl.EntryHeader == nil || rl.EntryHeader.ID != n.ID {
			t.Fatalf("original latch should become reversed first child")
		}
	}

	// levels and parents preserved
	for _, n := range g.Nodes {
		rn := rev.Nodes[n.ID]
		if rn.Level != n.Level {
			t.Fatalf("level changed for %v", n)
		}
		if (n.Parent == g.Root) != (rn.Parent == rev.Root) {
			t.Fatalf("parent root-ness changed for %v", n)
		}
	}
}

func TestReversePreorderValid(t *testing.T) {
	g := buildGraph(t, fig11)
	rev, err := Reverse(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rev.Preorder) != len(rev.Nodes) {
		t.Fatal("preorder incomplete")
	}
	for _, n := range rev.Nodes {
		for _, e := range n.Out {
			if e.Type != Cycle && e.From.Pre >= e.To.Pre {
				t.Fatalf("forward order violated: %v -> %v", e.From, e.To)
			}
		}
	}
}

func TestReverseNoHoistOnJumpLoops(t *testing.T) {
	g := buildGraph(t, fig11)
	rev, err := Reverse(g)
	if err != nil {
		t.Fatal(err)
	}
	marked := 0
	for i, n := range g.Nodes {
		if n.IsHeader {
			// the i-loop contains the jump: its reversed header is guarded
			hasJump := false
			for _, m := range g.Interval(n) {
				for _, e := range m.Out {
					if e.Type == Jump {
						hasJump = true
					}
				}
			}
			if hasJump != rev.Nodes[i].NoHoist {
				t.Fatalf("NoHoist(%v) = %v, want %v", n, rev.Nodes[i].NoHoist, hasJump)
			}
			if rev.Nodes[i].NoHoist {
				marked++
			}
		}
	}
	if marked != 1 {
		t.Fatalf("guarded headers = %d, want 1 (the i-loop)", marked)
	}
}

func TestReverseRejectsMultipleEntryEdges(t *testing.T) {
	// hand-build a loop whose header has two entry edges
	c := &cfg.Graph{}
	e := c.NewBlock(cfg.KEntry)
	h := c.NewBlock(cfg.KStmt)
	b1 := c.NewBlock(cfg.KStmt)
	b2 := c.NewBlock(cfg.KStmt)
	j := c.NewBlock(cfg.KJoin)
	x := c.NewBlock(cfg.KExit)
	c.Entry, c.Exit = e, x
	c.AddEdge(e, h)
	c.AddEdge(h, b1)
	c.AddEdge(h, b2) // second entry edge
	c.AddEdge(b1, j)
	c.AddEdge(b2, j)
	c.AddEdge(j, h) // back edge
	c.AddEdge(h, x)
	c.SplitCriticalEdges()
	g, err := FromCFG(c)
	if err != nil {
		t.Skipf("graph construction rejected earlier: %v", err)
	}
	if _, err := Reverse(g); err == nil {
		t.Fatal("Reverse should reject headers with multiple ENTRY edges")
	}
}

func TestIntervalMembership(t *testing.T) {
	g := buildGraph(t, `
do i = 1, n
    do j = 1, n
        x = 1
    enddo
enddo
`)
	var outer, inner *Node
	for _, n := range g.Nodes {
		if n.IsHeader {
			if n.Level == 1 {
				outer = n
			} else {
				inner = n
			}
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("headers not found")
	}
	if !InInterval(inner, outer) {
		t.Fatal("inner header should be in outer interval")
	}
	if InInterval(outer, inner) {
		t.Fatal("outer header not in inner interval")
	}
	all := g.Interval(g.Root)
	if len(all) != len(g.Nodes) {
		t.Fatalf("T(ROOT) = %d nodes, want all %d", len(all), len(g.Nodes))
	}
	for _, m := range g.Interval(outer) {
		if m.Level < 2 {
			t.Fatalf("T(outer) contains level-%d node %v", m.Level, m)
		}
	}
}

func TestGraphString(t *testing.T) {
	g := buildGraph(t, "x = 1")
	s := g.String()
	if len(s) == 0 {
		t.Fatal("empty graph dump")
	}
}

func TestEdgeTypeStrings(t *testing.T) {
	cases := map[EdgeType]string{Forward: "F", Entry: "E", Cycle: "C", Jump: "J", Synthetic: "S"}
	for et, want := range cases {
		if et.String() != want {
			t.Errorf("%v.String() = %q", int(et), et.String())
		}
	}
}
