package interval

import (
	"testing"

	"givetake/internal/cfg"
	"givetake/internal/frontend"
)

// fig11 is the code of paper Figure 11; Figure 12 shows its interval
// flow graph.
const fig11 = `
do i = 1, n
    y(a(i)) = ...
    if test(i) goto 77
enddo
do j = 1, n
    ... = ...
enddo
77 do k = 1, n
    ... = x(k+10) + y(b(k))
enddo
`

func buildGraph(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := frontend.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfg.Build(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	g, err := FromCFG(c)
	if err != nil {
		t.Fatalf("interval: %v", err)
	}
	return g
}

// paperNum maps a node to its 1-based preorder number as used in the
// paper's Figure 12 discussion.
func paperNum(n *Node) int { return n.Pre + 1 }

// nodeByNum returns the node with the given 1-based preorder number.
func nodeByNum(g *Graph, num int) *Node { return g.Preorder[num-1] }

func edgeTypeBetween(t *testing.T, g *Graph, from, to int) EdgeType {
	t.Helper()
	f := nodeByNum(g, from)
	for _, e := range f.Out {
		if paperNum(e.To) == to {
			return e.Type
		}
	}
	t.Fatalf("no edge %d -> %d:\n%s", from, to, g)
	return 0
}

// TestFig12Structure checks the interval flow graph of Figure 12:
// 14 nodes in preorder, T(2) = {3,4,5}, the jump edge (4,10), the
// synthetic edge (2,10), and the levels/edge classes stated in §3.3.
func TestFig12Structure(t *testing.T) {
	g := buildGraph(t, fig11)
	if len(g.Nodes) != 14 {
		t.Fatalf("nodes = %d, want 14:\n%s", len(g.Nodes), g)
	}

	n2 := nodeByNum(g, 2)
	if !n2.IsHeader || n2.Block.Kind != cfg.KHeader {
		t.Fatalf("node 2 should be the i-loop header, got %v", n2)
	}
	// T(2) = {3, 4, 5}
	tn := g.Interval(n2)
	if len(tn) != 3 {
		t.Fatalf("|T(2)| = %d, want 3:\n%s", len(tn), g)
	}
	for _, m := range tn {
		if num := paperNum(m); num < 3 || num > 5 {
			t.Errorf("T(2) contains node %d, want only 3..5", num)
		}
		if m.Level != 2 {
			t.Errorf("node %d level = %d, want 2", paperNum(m), m.Level)
		}
	}
	if lc := paperNum(n2.LastChild); lc != 5 {
		t.Errorf("LASTCHILD(2) = %d, want 5", lc)
	}

	// headers at 2, 7, 12
	for _, num := range []int{2, 7, 12} {
		if !nodeByNum(g, num).IsHeader {
			t.Errorf("node %d should be a header:\n%s", num, g)
		}
	}
	// Edge classes from §3.3 / Fig. 12. Note: our preorder numbers the
	// jump landing pad 9 and the j-loop exit pad 10, the reverse of the
	// paper's figure; both orders satisfy the FORWARD+DOWNWARD partial
	// orders (the two pads are incomparable). Everything else matches.
	cases := []struct {
		from, to int
		want     EdgeType
	}{
		{1, 2, Forward},
		{2, 3, Entry},
		{3, 4, Forward},
		{4, 5, Forward},
		{5, 2, Cycle},
		{4, 9, Jump},
		{2, 9, Synthetic},
		{2, 6, Forward},
		{6, 7, Forward},
		{7, 8, Entry},
		{8, 7, Cycle},
		{7, 10, Forward},
		{9, 11, Forward},
		{10, 11, Forward},
		{11, 12, Forward},
		{12, 13, Entry},
		{13, 12, Cycle},
		{12, 14, Forward},
	}
	total := 0
	for _, n := range g.Nodes {
		total += len(n.Out)
	}
	if total != len(cases) {
		t.Errorf("edge count = %d, want %d:\n%s", total, len(cases), g)
	}
	for _, c := range cases {
		if got := edgeTypeBetween(t, g, c.from, c.to); got != c.want {
			t.Errorf("edge (%d,%d) type = %v, want %v", c.from, c.to, got, c.want)
		}
	}

	// HEADER(n) is defined only for entry-edge sinks
	if h := nodeByNum(g, 3).EntryHeader; h != n2 {
		t.Errorf("HEADER(3) = %v, want node 2", h)
	}
	for _, num := range []int{4, 5} {
		if h := nodeByNum(g, num).EntryHeader; h != nil {
			t.Errorf("HEADER(%d) = %v, want nil", num, h)
		}
	}

	// the jump sink (our node 9) has only the jump edge as CEFJ pred
	if n9 := nodeByNum(g, 9); n9.CountPreds(CEFJ) != 1 {
		t.Errorf("jump sink should have exactly one real predecessor")
	}

	// top-level nodes sit at level 1 under the virtual ROOT
	for _, num := range []int{1, 2, 6, 7, 9, 10, 11, 12, 14} {
		n := nodeByNum(g, num)
		if n.Level != 1 || n.Parent != g.Root {
			t.Errorf("node %d: level %d parent %v, want level 1 under ROOT", num, n.Level, n.Parent)
		}
	}
	// CHILDREN(ROOT) are the level-1 nodes in preorder
	if len(g.Root.Children) != 9 {
		t.Errorf("ROOT children = %d, want 9", len(g.Root.Children))
	}
}

func TestNestedLoopLevels(t *testing.T) {
	g := buildGraph(t, `
do i = 1, n
    do j = 1, n
        x(i) = y(j)
    enddo
enddo
`)
	maxLevel := 0
	var inner *Node
	for _, n := range g.Nodes {
		if n.Level > maxLevel {
			maxLevel = n.Level
		}
		if n.IsHeader && n.Level == 2 {
			inner = n
		}
	}
	if maxLevel != 3 {
		t.Fatalf("max level = %d, want 3:\n%s", maxLevel, g)
	}
	if inner == nil {
		t.Fatal("no inner header at level 2")
	}
	// inner latch funnels through a pad so the cycle source is unique
	if inner.LastChild == nil {
		t.Fatal("inner loop has no last child")
	}
	// CHILDREN(outer) contains the inner header
	outer := inner.Parent
	if outer == g.Root {
		t.Fatalf("inner header's parent should be the outer header")
	}
	found := false
	for _, c := range outer.Children {
		if c == inner {
			found = true
		}
	}
	if !found {
		t.Fatal("inner header not in CHILDREN(outer)")
	}
}

// TestJumpOutOfTwoLoops checks that a two-level jump generates
// LEVEL(m)−LEVEL(n) synthetic edges (paper §3.3).
func TestJumpOutOfTwoLoops(t *testing.T) {
	g := buildGraph(t, `
do i = 1, n
    do j = 1, n
        if test(j) goto 9
        x(j) = 1
    enddo
enddo
9 continue
`)
	var jumps, synth []Edge
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			switch e.Type {
			case Jump:
				jumps = append(jumps, e)
			case Synthetic:
				synth = append(synth, e)
			}
		}
	}
	if len(jumps) != 1 {
		t.Fatalf("jump edges = %d, want 1:\n%s", len(jumps), g)
	}
	j := jumps[0]
	want := j.From.Level - j.To.Level
	if len(synth) != want {
		t.Fatalf("synthetic edges = %d, want LEVEL(m)-LEVEL(n) = %d:\n%s", len(synth), want, g)
	}
	for _, e := range synth {
		if !e.From.IsHeader {
			t.Errorf("synthetic edge from non-header %v", e.From)
		}
		if e.To != j.To {
			t.Errorf("synthetic edge sink %v, want jump sink %v", e.To, j.To)
		}
	}
}

func TestPreorderInvariants(t *testing.T) {
	srcs := []string{
		fig11,
		"x = 1",
		"do i = 1, n\n do j = 1, n\n  do k = 1, n\n   x(k) = 1\n  enddo\n enddo\nenddo",
		"if c then\n do i = 1, n\n  x(i) = 1\n enddo\nelse\n y = 2\nendif",
	}
	for _, src := range srcs {
		g := buildGraph(t, src)
		for _, n := range g.Nodes {
			for _, e := range n.Out {
				if e.Type != Cycle && e.From.Pre >= e.To.Pre {
					t.Errorf("forward order violated on %v -> %v", e.From, e.To)
				}
				if e.Type == Cycle && e.From.Pre <= e.To.Pre {
					t.Errorf("cycle edge %v -> %v should go backwards in preorder", e.From, e.To)
				}
			}
			if n.Parent.Block != nil && n.Parent.Pre >= n.Pre {
				t.Errorf("downward order violated for %v", n)
			}
		}
	}
}

func TestIrreducibleRejected(t *testing.T) {
	g := &cfg.Graph{}
	e := g.NewBlock(cfg.KEntry)
	a := g.NewBlock(cfg.KStmt)
	b := g.NewBlock(cfg.KStmt)
	p := g.NewBlock(cfg.KStmt) // pre-pad so edges aren't critical
	q := g.NewBlock(cfg.KStmt)
	x := g.NewBlock(cfg.KExit)
	g.Entry, g.Exit = e, x
	g.AddEdge(e, p)
	g.AddEdge(e, q)
	g.AddEdge(p, a)
	g.AddEdge(q, b)
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	g.AddEdge(b, x)
	// b now has 2 succs and a has 2 preds: split to stay critical-free
	g.SplitCriticalEdges()
	if _, err := FromCFG(g); err == nil {
		t.Fatal("irreducible graph should be rejected")
	}
}

func TestTypeSets(t *testing.T) {
	if !FJ.Has(Forward) || !FJ.Has(Jump) || FJ.Has(Entry) || FJ.Has(Cycle) {
		t.Error("FJ mask wrong")
	}
	if !CEFJ.Has(Cycle) || CEFJ.Has(Synthetic) {
		t.Error("CEFJ mask wrong")
	}
	if !All.Has(Synthetic) {
		t.Error("All mask wrong")
	}
}

func TestSuccsPredsFiltering(t *testing.T) {
	g := buildGraph(t, fig11)
	n2 := nodeByNum(g, 2)
	if got := n2.Succs(E, nil); len(got) != 1 || paperNum(got[0]) != 3 {
		t.Errorf("SUCCS^E(2) = %v", got)
	}
	if got := n2.Preds(C, nil); len(got) != 1 || paperNum(got[0]) != 5 {
		t.Errorf("PREDS^C(2) = %v", got)
	}
	n9 := nodeByNum(g, 9) // the jump landing pad in our numbering
	if got := n9.Preds(S, nil); len(got) != 1 || paperNum(got[0]) != 2 {
		t.Errorf("PREDS^S(jump pad) = %v", got)
	}
	if got := n9.Preds(FJ, nil); len(got) != 1 || paperNum(got[0]) != 4 {
		t.Errorf("PREDS^FJ(jump pad) = %v", got)
	}
}
