package interval

import (
	"fmt"

	"givetake/internal/cfg"
)

// Reverse builds the reversed view of g used to solve AFTER problems
// (paper §5.3): an AFTER problem is a BEFORE problem with reversed flow
// of control. The reversed graph keeps the same nodes (same IDs and
// Blocks), the same interval structure, and the same levels; edges are
// reversed with their types remapped:
//
//	ENTRY (h→c)  becomes CYCLE (c→h); the original unique first child
//	             becomes the unique last child, so g must have exactly
//	             one ENTRY edge per interval (guaranteed by cfg.Build).
//	CYCLE (l→h)  becomes ENTRY (h→l).
//	FORWARD      stays FORWARD, reversed.
//	JUMP (m→x)   becomes a jump *into* the loop (x→m), which would make
//	             the reversed graph irreducible. Following §5.3 we keep
//	             the original interval structure and instead mark every
//	             interval the jump leaves as NoHoist, so no production is
//	             hoisted out of it; the solver additionally treats such
//	             inverted Jump edges conservatively in the local
//	             summaries (Eqs. 9–10).
//	SYNTHETIC    stays SYNTHETIC, reversed.
//
// Node IDs are preserved, so initial and result variables indexed by ID
// transfer directly; RES_in on the reversed graph is production at the
// node's *exit* in original orientation, and vice versa.
func Reverse(g *Graph) (*Graph, error) {
	r := &Graph{CFG: g.CFG, Reversed: true, byBlock: map[*cfg.Block]*Node{}}
	r.Root = &Node{ID: -1, Level: 0, IsHeader: true}

	clone := make([]*Node, len(g.Nodes))
	for i, n := range g.Nodes {
		clone[i] = &Node{
			ID:       n.ID,
			Block:    n.Block,
			Level:    n.Level,
			IsHeader: n.IsHeader,
			NoHoist:  n.NoHoist,
		}
		if n.Block != nil {
			r.byBlock[n.Block] = clone[i]
		}
	}
	get := func(n *Node) *Node {
		if n == g.Root {
			return r.Root
		}
		return clone[n.ID]
	}
	for i, n := range g.Nodes {
		clone[i].Parent = get(n.Parent)
	}
	r.Nodes = clone

	// Unique-entry requirement, and reversed roles of first/last child.
	for _, n := range g.Nodes {
		if !n.IsHeader {
			continue
		}
		var first *Node
		for _, e := range n.Out {
			if e.Type == Entry {
				if first != nil {
					return nil, fmt.Errorf("interval: Reverse: header %v has multiple ENTRY edges; the reversed graph would have multiple CYCLE edges", n)
				}
				first = e.To
			}
		}
		if first == nil {
			return nil, fmt.Errorf("interval: Reverse: header %v has no ENTRY edge", n)
		}
		clone[n.ID].LastChild = clone[first.ID]
		if lc := n.LastChild; lc != nil {
			clone[lc.ID].EntryHeader = clone[n.ID]
		}
	}

	typeMap := map[EdgeType]EdgeType{
		Entry:     Cycle,
		Cycle:     Entry,
		Forward:   Forward,
		Jump:      Jump,
		Synthetic: Synthetic,
	}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			re := Edge{From: get(e.To), To: get(e.From), Type: typeMap[e.Type]}
			re.From.Out = append(re.From.Out, re)
			re.To.In = append(re.To.In, re)
			if e.Type == Jump {
				// §5.3 guard: every interval the jump leaves loses the
				// right to hoist consumption out of itself.
				for h := e.From.Parent; h != nil && h.Block != nil; h = h.Parent {
					if e.To == h || InInterval(e.To, h) {
						break
					}
					clone[h.ID].NoHoist = true
				}
			}
		}
	}

	r.computePreorder()
	if len(r.Preorder) != len(r.Nodes) {
		return nil, fmt.Errorf("interval: Reverse: preorder covered %d of %d nodes", len(r.Preorder), len(r.Nodes))
	}
	for _, n := range r.Nodes {
		for _, e := range n.Out {
			if e.Type != Cycle && e.From.Pre >= e.To.Pre {
				return nil, fmt.Errorf("interval: Reverse: forward order violated on %v -> %v", e.From, e.To)
			}
		}
	}
	return r, nil
}
