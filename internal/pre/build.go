package pre

import (
	"encoding/json"
	"fmt"

	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/core"
	"givetake/internal/interval"
	"givetake/internal/ir"
)

// BuildProblem derives a classical PRE instance from a program's CFG:
// the universe is the set of distinct non-trivial right-hand-side
// expressions (by printed form — syntactic equivalence, as in [MR79]),
// a block Uses the expression it evaluates, and an assignment to any
// operand kills every expression mentioning it.
func BuildProblem(g *cfg.Graph) (*Problem, []string) {
	// pass 1: the universe
	index := map[string]int{}
	var names []string
	exprOf := func(e ir.Expr) (int, bool) {
		if _, isBin := e.(*ir.BinExpr); !isBin {
			return 0, false // only compound expressions are PRE candidates
		}
		key := ir.ExprString(e)
		if id, ok := index[key]; ok {
			return id, true
		}
		index[key] = len(names)
		names = append(names, key)
		return len(names) - 1, true
	}
	type use struct {
		b  *cfg.Block
		id int
	}
	type kill struct {
		b   *cfg.Block
		sym string
	}
	var uses []use
	var kills []kill
	for _, b := range g.Blocks {
		if b.Kind != cfg.KStmt {
			continue
		}
		a, ok := b.Stmt.(*ir.Assign)
		if !ok {
			continue
		}
		if id, ok := exprOf(a.RHS); ok {
			uses = append(uses, use{b, id})
		}
		switch lhs := a.LHS.(type) {
		case *ir.Ident:
			kills = append(kills, kill{b, lhs.Name})
		case *ir.ArrayRef:
			kills = append(kills, kill{b, lhs.Name})
		}
	}

	p := NewProblem(g, len(names))
	for _, u := range uses {
		p.Used[u.b.ID].Add(u.id)
	}
	// pass 2: kills — an expression mentions a symbol if the identifier
	// or array name occurs in its text; resolve via the parsed forms
	mentions := make([]map[string]bool, len(names))
	for _, b := range g.Blocks {
		if b.Kind != cfg.KStmt {
			continue
		}
		a, ok := b.Stmt.(*ir.Assign)
		if !ok {
			continue
		}
		if id, ok := exprOf(a.RHS); ok && mentions[id] == nil {
			m := map[string]bool{}
			ir.WalkExpr(a.RHS, func(e ir.Expr) bool {
				switch e := e.(type) {
				case *ir.Ident:
					m[e.Name] = true
				case *ir.ArrayRef:
					m[e.Name] = true
				}
				return true
			})
			mentions[id] = m
		}
	}
	for _, k := range kills {
		for id, m := range mentions {
			if m != nil && m[k.sym] {
				p.Transp[k.b.ID].Remove(id)
			}
		}
	}
	return p, names
}

// LoopDepths returns the loop nesting depth of every block (0 = outside
// all loops), from the natural loops of the reducible CFG.
func LoopDepths(g *cfg.Graph) []int {
	depth := make([]int, len(g.Blocks))
	idom := g.Dominators()
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !cfg.Dominates(idom, s, b) {
				continue
			}
			// natural loop of back edge (b, s)
			inLoop := map[*cfg.Block]bool{s: true, b: true}
			stack := []*cfg.Block{b}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, q := range n.Preds {
					if !inLoop[q] {
						inLoop[q] = true
						stack = append(stack, q)
					}
				}
			}
			for blk := range inLoop {
				depth[blk.ID]++
			}
		}
	}
	return depth
}

// GiveNTake solves the same PRE instance with the paper's framework as a
// LAZY BEFORE problem (classical PRE is exactly that instance, §1): Used
// becomes TAKE_init, killed expressions become STEAL_init, and the LAZY
// solution gives the computation points. The practical difference from
// the safe baselines: consumption inside potentially zero-trip loops is
// hoisted out (Eq. 5), so loop-invariant expressions move above DO loops
// the classical frameworks must leave alone.
func (p *Problem) GiveNTake() (*Placement, *core.Solution, error) {
	g, err := interval.FromCFG(p.G)
	if err != nil {
		return nil, nil, err
	}
	init := core.NewInit(len(g.Nodes))
	for _, n := range g.Nodes {
		id := n.Block.ID
		if !p.Used[id].IsEmpty() {
			init.AddTake(n, p.Universe, p.Used[id])
		}
		killed := bitset.NewFull(p.Universe)
		killed.SubtractWith(p.Transp[id])
		if !killed.IsEmpty() {
			init.AddSteal(n, p.Universe, killed)
		}
	}
	s, err := core.Solve(g, p.Universe, init)
	if err != nil {
		return nil, nil, err
	}
	pl := &Placement{Insert: p.sets(), Redundant: p.sets(), Iterations: 1}
	for _, n := range g.Nodes {
		id := n.Block.ID
		// RES_in of a loop header materializes before the DO statement —
		// the preheader position, executed once per loop entry — so it is
		// attributed to the unique predecessor outside the loop.
		if n.IsHeader {
			var outside *cfg.Block
			for _, pr := range n.Block.Preds {
				if pn := g.NodeFor(pr); pn != nil && pn != n.LastChild && !interval.InInterval(pn, n) {
					outside = pr
				}
			}
			if outside != nil {
				pl.Insert[outside.ID].UnionWith(s.Lazy.ResIn[n.ID])
			} else {
				pl.Insert[id].UnionWith(s.Lazy.ResIn[n.ID])
			}
		} else {
			pl.Insert[id].UnionWith(s.Lazy.ResIn[n.ID])
		}
		pl.Insert[id].UnionWith(s.Lazy.ResOut[n.ID])
		// a use whose value is already available on entry is redundant
		pl.Redundant[id] = bitset.Intersect(p.Used[id], s.Lazy.GivenIn[n.ID])
	}
	return pl, s, nil
}

// Computations returns, per block, where the program actually evaluates
// the expression after the transformation: the insertions plus the
// original uses that were not made redundant and not covered by an
// insertion at the same block.
func (p *Problem) Computations(pl *Placement) []*bitset.Set {
	out := p.sets()
	for _, b := range p.G.Blocks {
		c := pl.Insert[b.ID].Clone()
		kept := bitset.Subtract(p.Used[b.ID], pl.Redundant[b.ID])
		kept.SubtractWith(pl.Insert[b.ID])
		c.UnionWith(kept)
		out[b.ID] = c
	}
	return out
}

// Metrics aggregates a placement for comparison across analyses.
type Metrics struct {
	// Inserts counts (block, expression) insertion points; Weighted
	// scales each by 10^loopdepth, a static execution-frequency estimate.
	Inserts  int
	Weighted float64
	// Replaced counts uses whose recomputation the analysis removed.
	Replaced int
}

func (m Metrics) String() string {
	return fmt.Sprintf("inserts=%d weighted=%.0f replaced=%d", m.Inserts, m.Weighted, m.Replaced)
}

// MarshalJSON gives Metrics a stable wire shape (snake_case keys) so
// reports and benchmark artifacts can embed it without depending on Go
// field names.
func (m Metrics) MarshalJSON() ([]byte, error) {
	type wire struct {
		Inserts  int     `json:"inserts"`
		Weighted float64 `json:"weighted"`
		Replaced int     `json:"replaced"`
	}
	return json.Marshal(wire{Inserts: m.Inserts, Weighted: m.Weighted, Replaced: m.Replaced})
}

// Measure summarizes a placement over the CFG.
func (p *Problem) Measure(pl *Placement) Metrics {
	depth := LoopDepths(p.G)
	var m Metrics
	for _, b := range p.G.Blocks {
		c := pl.Insert[b.ID].Count()
		m.Inserts += c
		w := 1.0
		for i := 0; i < depth[b.ID]; i++ {
			w *= 10
		}
		m.Weighted += float64(c) * w
		m.Replaced += pl.Redundant[b.ID].Count()
	}
	return m
}
