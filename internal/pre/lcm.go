package pre

import "givetake/internal/bitset"

// LazyCodeMotion computes the Knoop–Rüthing–Steffen placement [KRS92]:
// expressions are computed at the latest down-safe and earliest-reaching
// points. The graph is critical-edge-free (cfg.Build guarantees it), so
// the node-based formulation suffices.
//
// The result is computationally optimal among *safe* placements: unlike
// GIVE-N-TAKE, LCM never hoists an expression above a potentially
// zero-trip loop, and it yields a single placement point per expression
// (atomic: no send/recv region for latency hiding).
func (p *Problem) LazyCodeMotion() *Placement {
	u := p.Universe
	antin, antout := p.anticipability()
	avin, _ := p.availability()

	// EARLIEST(n) = ANTIN(n) − AVIN(n), restricted to nodes where the
	// expression cannot be computed earlier: at the entry, or where some
	// predecessor fails to keep it anticipated-and-transparent.
	earliest := p.sets()
	for _, b := range p.G.Blocks {
		e := bitset.Subtract(antin[b.ID], avin[b.ID])
		if len(b.Preds) > 0 {
			blockedAbove := bitset.New(u)
			for _, q := range b.Preds {
				// the expression cannot float through q if it is not
				// anticipated at q's exit, or q kills it
				notThrough := bitset.New(u)
				notThrough.Fill()
				notThrough.SubtractWith(antout[q.ID])
				killed := bitset.New(u)
				killed.Fill()
				killed.SubtractWith(p.Transp[q.ID])
				notThrough.UnionWith(killed)
				blockedAbove.UnionWith(notThrough)
			}
			e.IntersectWith(blockedAbove)
		}
		earliest[b.ID] = e
	}

	// DELAY: push computation points down from EARLIEST as long as every
	// path agrees and no use intervenes.
	delayin, delayout := p.sets(), p.sets()
	iter := 0
	for changed := true; changed; {
		changed = false
		iter++
		for _, b := range p.G.Blocks {
			in := earliest[b.ID].Clone()
			if len(b.Preds) > 0 {
				in.UnionWith(meetPreds(b, delayout, u))
			}
			out := bitset.Subtract(in, p.Used[b.ID])
			if !in.Equal(delayin[b.ID]) || !out.Equal(delayout[b.ID]) {
				delayin[b.ID], delayout[b.ID] = in, out
				changed = true
			}
		}
	}

	// LATEST(n) = DELAYIN(n) ∩ (USED(n) ∪ ¬⋂_s DELAYIN(s))
	latest := p.sets()
	for _, b := range p.G.Blocks {
		l := delayin[b.ID].Clone()
		keep := p.Used[b.ID].Clone()
		if len(b.Succs) > 0 {
			all := meetSuccs(b, delayin, u)
			notAll := bitset.NewFull(u)
			notAll.SubtractWith(all)
			keep.UnionWith(notAll)
		} else {
			keep.Fill()
		}
		l.IntersectWith(keep)
		latest[b.ID] = l
	}

	// ISOLATED: a computation point that only feeds the use at the same
	// node is not worth a temporary; such insertions are dropped and the
	// use stays as an original computation.
	isoin, isoout := p.fullSets(), p.fullSets()
	for changed := true; changed; {
		changed = false
		for i := len(p.G.Blocks) - 1; i >= 0; i-- {
			b := p.G.Blocks[i]
			out := bitset.NewFull(u)
			for _, s := range b.Succs {
				e := bitset.Union(latest[s.ID], bitset.Subtract(isoin[s.ID], p.Used[s.ID]))
				out.IntersectWith(e)
			}
			in := bitset.Union(latest[b.ID], bitset.Subtract(out, p.Used[b.ID]))
			if !in.Equal(isoin[b.ID]) || !out.Equal(isoout[b.ID]) {
				isoin[b.ID], isoout[b.ID] = in, out
				changed = true
			}
		}
	}

	pl := &Placement{Insert: p.sets(), Redundant: p.sets(), Iterations: iter}
	for _, b := range p.G.Blocks {
		ins := bitset.Subtract(latest[b.ID], isoout[b.ID])
		pl.Insert[b.ID] = ins
		red := bitset.Subtract(p.Used[b.ID], bitset.Intersect(latest[b.ID], isoout[b.ID]))
		pl.Redundant[b.ID] = red
	}
	return pl
}
