package pre

import (
	"encoding/json"
	"testing"
)

// The JSON shape of Metrics is a wire contract: reports and benchmark
// artifacts embed it, so key names must not drift with Go field names.
func TestMetricsMarshalJSON(t *testing.T) {
	m := Metrics{Inserts: 3, Weighted: 120, Replaced: 7}
	got, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"inserts":3,"weighted":120,"replaced":7}`
	if string(got) != want {
		t.Errorf("Metrics JSON = %s, want %s", got, want)
	}

	var back map[string]float64
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back["inserts"] != 3 || back["weighted"] != 120 || back["replaced"] != 7 {
		t.Errorf("round-trip mismatch: %v", back)
	}
}
