package pre

import (
	"testing"

	"givetake/internal/cfg"
	"givetake/internal/frontend"
)

func buildPRE(t *testing.T, src string) (*Problem, []string) {
	t.Helper()
	prog, err := frontend.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, names := BuildProblem(g)
	return p, names
}

func insertCount(p *Problem, pl *Placement) int {
	n := 0
	for _, b := range p.G.Blocks {
		n += pl.Insert[b.ID].Count()
	}
	return n
}

func redundantCount(p *Problem, pl *Placement) int {
	n := 0
	for _, b := range p.G.Blocks {
		n += pl.Redundant[b.ID].Count()
	}
	return n
}

// Straight-line common subexpression: b+c computed twice; all three
// analyses should find the second computation redundant.
func TestCommonSubexpression(t *testing.T) {
	src := `
x = b + c
y = b + c
`
	p, names := buildPRE(t, src)
	if len(names) != 1 {
		t.Fatalf("universe = %v, want 1 expression", names)
	}
	for _, run := range []struct {
		name string
		pl   *Placement
	}{
		{"LCM", p.LazyCodeMotion()},
		{"MR", p.MorelRenvoise()},
	} {
		if got := redundantCount(p, run.pl); got < 1 {
			t.Errorf("%s: redundant = %d, want ≥ 1", run.name, got)
		}
	}
	gnt, _, err := p.GiveNTake()
	if err != nil {
		t.Fatal(err)
	}
	if got := redundantCount(p, gnt); got != 1 {
		t.Errorf("GNT: redundant = %d, want 1", got)
	}
	if got := insertCount(p, gnt); got != 1 {
		t.Errorf("GNT: inserts = %d, want 1", got)
	}
}

// A kill between the two computations makes the second one necessary.
func TestKillBlocksReuse(t *testing.T) {
	src := `
x = b + c
b = 1
y = b + c
`
	p, _ := buildPRE(t, src)
	for _, run := range []struct {
		name string
		pl   *Placement
	}{
		{"LCM", p.LazyCodeMotion()},
		{"MR", p.MorelRenvoise()},
	} {
		if got := redundantCount(p, run.pl); got != 0 {
			t.Errorf("%s: redundant = %d, want 0 (killed between)", run.name, got)
		}
	}
	gnt, _, err := p.GiveNTake()
	if err != nil {
		t.Fatal(err)
	}
	if got := redundantCount(p, gnt); got != 0 {
		t.Errorf("GNT: redundant = %d, want 0", got)
	}
	if got := insertCount(p, gnt); got != 2 {
		t.Errorf("GNT: inserts = %d, want 2 (one per computation)", got)
	}
}

// Partial redundancy across a branch: b+c computed on one arm and after
// the join; PRE inserts on the other arm so the join use is covered.
func TestPartialRedundancy(t *testing.T) {
	src := `
if c then
    x = b + c
else
    y = 1
endif
z = b + c
`
	p, _ := buildPRE(t, src)
	for _, run := range []struct {
		name string
		pl   *Placement
	}{
		{"LCM", p.LazyCodeMotion()},
		{"MR", p.MorelRenvoise()},
	} {
		if got := redundantCount(p, run.pl); got < 1 {
			t.Errorf("%s: partially redundant use not removed (redundant = %d)", run.name, got)
		}
	}
	gnt, _, err := p.GiveNTake()
	if err != nil {
		t.Fatal(err)
	}
	if got := redundantCount(p, gnt); got < 1 {
		t.Errorf("GNT: redundant = %d, want ≥ 1", got)
	}
}

// The paper's motivating difference (§1): a loop-invariant expression in
// a potentially zero-trip DO loop. The classical frameworks are safe and
// must recompute inside the loop; GIVE-N-TAKE hoists above it.
func TestZeroTripLoopInvariant(t *testing.T) {
	src := `
do i = 1, n
    x(i) = b + c
enddo
`
	p, _ := buildPRE(t, src)
	depths := LoopDepths(p.G)

	// where does the transformed program actually evaluate b+c?
	deepestComputation := func(pl *Placement) int {
		d := -1
		for id, set := range p.Computations(pl) {
			if !set.IsEmpty() && depths[id] > d {
				d = depths[id]
			}
		}
		return d
	}

	lcm := p.LazyCodeMotion()
	if d := deepestComputation(lcm); d < 1 {
		t.Fatalf("LCM must stay inside the zero-trip loop, computation depth = %d", d)
	}
	gnt, _, err := p.GiveNTake()
	if err != nil {
		t.Fatal(err)
	}
	if d := deepestComputation(gnt); d != 0 {
		t.Fatalf("GIVE-N-TAKE should hoist above the loop, computation depth = %d", d)
	}
}

// Loop-invariant code motion in a nested loop: GNT hoists out of both
// levels.
func TestNestedLoopInvariant(t *testing.T) {
	src := `
do i = 1, n
    do j = 1, n
        x(j) = b + c
    enddo
enddo
`
	p, _ := buildPRE(t, src)
	gnt, _, err := p.GiveNTake()
	if err != nil {
		t.Fatal(err)
	}
	depths := LoopDepths(p.G)
	for id, set := range p.Computations(gnt) {
		if !set.IsEmpty() && depths[id] != 0 {
			t.Fatalf("computation at depth %d, want full hoist:\n%v", depths[id], p.G.Blocks[id])
		}
	}
}

// LCM never inserts where the value is not anticipated (safety): check
// on a branchy program that no insert lands on a path that does not use
// the expression.
func TestLCMSafety(t *testing.T) {
	src := `
if c then
    x = b + c
endif
y = 2
`
	p, _ := buildPRE(t, src)
	lcm := p.LazyCodeMotion()
	// inserting anywhere outside the then-branch would be unsafe; with a
	// single use the only legal "insert" is the use itself (dropped as
	// isolated) — so no inserts at blocks dominating the branch
	idom := p.G.Dominators()
	var branch *cfg.Block
	for _, b := range p.G.Blocks {
		if b.Kind == cfg.KBranch {
			branch = b
		}
	}
	for _, b := range p.G.Blocks {
		if !lcm.Insert[b.ID].IsEmpty() && cfg.Dominates(idom, b, branch) {
			t.Fatalf("unsafe hoist above the branch at %v", b)
		}
	}
}

func TestLoopDepths(t *testing.T) {
	p, _ := buildPRE(t, `
x = 1
do i = 1, n
    y = 2
    do j = 1, n
        z = 3
    enddo
enddo
`)
	depths := LoopDepths(p.G)
	max := 0
	for _, d := range depths {
		if d > max {
			max = d
		}
	}
	if max != 2 {
		t.Fatalf("max loop depth = %d, want 2", max)
	}
	if depths[p.G.Entry.ID] != 0 {
		t.Fatal("entry should be at depth 0")
	}
}
