// Package pre implements the two classical partial redundancy
// elimination frameworks GIVE-N-TAKE generalizes, as comparison
// baselines: Morel–Renvoise's original bidirectional system [MR79] and
// Knoop/Rüthing/Steffen's Lazy Code Motion [KRS92]. Both run as
// iterative bitvector dataflow over the plain CFG (no intervals), both
// assume atomic placement, and both are safe in the classical sense —
// they never hoist an expression out of a potentially zero-trip loop,
// which is exactly the limitation the paper's framework lifts (§1).
package pre

import (
	"givetake/internal/bitset"
	"givetake/internal/cfg"
)

// Problem describes a PRE instance over a universe of expressions.
type Problem struct {
	G *cfg.Graph
	// Universe is the number of expressions.
	Universe int
	// Used (ANTLOC) holds the expressions evaluated at each block;
	// Transp holds those the block does not kill. Indexed by block ID.
	Used, Transp []*bitset.Set
}

// NewProblem allocates a problem with empty Used and full Transp sets.
func NewProblem(g *cfg.Graph, universe int) *Problem {
	p := &Problem{G: g, Universe: universe,
		Used:   make([]*bitset.Set, len(g.Blocks)),
		Transp: make([]*bitset.Set, len(g.Blocks))}
	for _, b := range g.Blocks {
		p.Used[b.ID] = bitset.New(universe)
		p.Transp[b.ID] = bitset.NewFull(universe)
	}
	return p
}

// Placement is the result of a PRE analysis.
type Placement struct {
	// Insert holds, per block, the expressions to compute at its entry.
	Insert []*bitset.Set
	// Redundant holds, per block, the originally evaluated expressions
	// whose value is already available (the replaced computations).
	Redundant []*bitset.Set
	// Iterations is the number of fixpoint sweeps, for the efficiency
	// comparison with the single-pass elimination solver.
	Iterations int
}

// sets allocates one bitset per block.
func (p *Problem) sets() []*bitset.Set {
	out := make([]*bitset.Set, len(p.G.Blocks))
	for i := range out {
		out[i] = bitset.New(p.Universe)
	}
	return out
}

func (p *Problem) fullSets() []*bitset.Set {
	out := make([]*bitset.Set, len(p.G.Blocks))
	for i := range out {
		out[i] = bitset.NewFull(p.Universe)
	}
	return out
}

// meetPreds intersects f over the predecessors of b (⊥ for the entry).
func meetPreds(b *cfg.Block, f []*bitset.Set, u int) *bitset.Set {
	if len(b.Preds) == 0 {
		return bitset.New(u)
	}
	m := f[b.Preds[0].ID].Clone()
	for _, q := range b.Preds[1:] {
		m.IntersectWith(f[q.ID])
	}
	return m
}

// meetSuccs intersects f over the successors of b (⊥ for the exit).
func meetSuccs(b *cfg.Block, f []*bitset.Set, u int) *bitset.Set {
	if len(b.Succs) == 0 {
		return bitset.New(u)
	}
	m := f[b.Succs[0].ID].Clone()
	for _, q := range b.Succs[1:] {
		m.IntersectWith(f[q.ID])
	}
	return m
}

// availability computes AVIN/AVOUT (up-safety): an expression is
// available when it was computed on every incoming path and not killed
// since.
func (p *Problem) availability() (avin, avout []*bitset.Set) {
	avin, avout = p.sets(), p.fullSets()
	for changed := true; changed; {
		changed = false
		for _, b := range p.G.Blocks {
			in := meetPreds(b, avout, p.Universe)
			// one statement per block: uses happen before kills, so a
			// used-but-killed expression is not available on exit
			out := bitset.Union(p.Used[b.ID], in)
			out.IntersectWith(p.Transp[b.ID])
			if !in.Equal(avin[b.ID]) || !out.Equal(avout[b.ID]) {
				avin[b.ID], avout[b.ID] = in, out
				changed = true
			}
		}
	}
	return
}

// partialAvailability computes PAVIN/PAVOUT: an expression is partially
// available when it was computed on at least one incoming path and not
// killed since (union meet).
func (p *Problem) partialAvailability() (pavin, pavout []*bitset.Set) {
	pavin, pavout = p.sets(), p.sets()
	for changed := true; changed; {
		changed = false
		for _, b := range p.G.Blocks {
			in := bitset.New(p.Universe)
			for _, q := range b.Preds {
				in.UnionWith(pavout[q.ID])
			}
			out := bitset.Union(p.Used[b.ID], in)
			out.IntersectWith(p.Transp[b.ID])
			if !in.Equal(pavin[b.ID]) || !out.Equal(pavout[b.ID]) {
				pavin[b.ID], pavout[b.ID] = in, out
				changed = true
			}
		}
	}
	return
}

// anticipability computes ANTIN/ANTOUT (down-safety): an expression is
// anticipated when it is evaluated on every outgoing path before being
// killed.
func (p *Problem) anticipability() (antin, antout []*bitset.Set) {
	antin, antout = p.fullSets(), p.sets()
	for _, b := range p.G.Blocks {
		if len(b.Succs) == 0 {
			antin[b.ID] = p.Used[b.ID].Clone()
		}
	}
	for changed := true; changed; {
		changed = false
		for i := len(p.G.Blocks) - 1; i >= 0; i-- {
			b := p.G.Blocks[i]
			out := meetSuccs(b, antin, p.Universe)
			in := bitset.Intersect(out, p.Transp[b.ID])
			in.UnionWith(p.Used[b.ID])
			if !in.Equal(antin[b.ID]) || !out.Equal(antout[b.ID]) {
				antin[b.ID], antout[b.ID] = in, out
				changed = true
			}
		}
	}
	return
}
