package pre

import (
	"givetake/internal/bitset"
	"givetake/internal/cfg"
)

// MorelRenvoise computes the original 1979 partial redundancy
// elimination [MR79]: the bidirectional "placement possible" system.
// The formulation iterates PPIN/PPOUT to a greatest fixpoint; unlike
// LCM it may place computations earlier than necessary (no delay pass),
// lengthening register lifetimes — and like LCM it is safe, so it
// cannot hoist out of zero-trip loops.
func (p *Problem) MorelRenvoise() *Placement {
	u := p.Universe
	antin, _ := p.anticipability()
	avin, avout := p.availability()
	pavin, pavout := p.partialAvailability()

	// PPOUT(n) = ⋂_s PPIN(s);  PPOUT(exit) = ⊥
	// PPIN(n)  = ANTIN(n) ∩ PAVIN(n)
	//          ∩ (USED(n) ∪ (TRANSP(n) ∩ PPOUT(n)))
	//          ∩ ⋂_p (PPOUT(p) ∪ AVOUT(p))
	//
	// The PAVIN (partial availability) conjunct is Morel–Renvoise's
	// guard against useless motion: only expressions already computed on
	// some incoming path are worth moving.
	// PPIN(entry) additionally ⊥ (nothing can be placed before entry in
	// the original formulation; with a dedicated entry node this keeps
	// hoisting inside the procedure).
	ppin, ppout := p.fullSets(), p.fullSets()
	iter := 0
	for changed := true; changed; {
		changed = false
		iter++
		for i := len(p.G.Blocks) - 1; i >= 0; i-- {
			b := p.G.Blocks[i]
			out := meetSuccs(b, ppin, u)
			in := antin[b.ID].Clone()
			in.IntersectWith(pavin[b.ID])
			t := bitset.Intersect(p.Transp[b.ID], out)
			t.UnionWith(p.Used[b.ID])
			in.IntersectWith(t)
			if len(b.Preds) == 0 {
				// computation may still be placed at the entry node
				// itself (PPIN via USED), but nothing propagates above it
			} else {
				m := bitset.NewFull(u)
				for _, q := range b.Preds {
					m.IntersectWith(bitset.Union(ppout[q.ID], avout[q.ID]))
				}
				in.IntersectWith(m)
			}
			if !in.Equal(ppin[b.ID]) || !out.Equal(ppout[b.ID]) {
				ppin[b.ID], ppout[b.ID] = in, out
				changed = true
			}
		}
	}

	// INSERT at the exit of n: placement possible at exit, not already
	// available, and not subsumable by placement at the entry.
	// With single-statement blocks we report insertions at the entry of
	// each successor-of-insertion point instead, to align with the other
	// analyses: INSERT_in(n) = PPIN(n) ∩ ¬AVIN(n) ∩ ¬⋂_p(PPOUT(p)).
	pl := &Placement{Insert: p.sets(), Redundant: p.sets(), Iterations: iter}
	for _, b := range p.G.Blocks {
		ins := bitset.Intersect(ppin[b.ID], bitset.Subtract(bitset.NewFull(u), avin[b.ID]))
		if len(b.Preds) > 0 {
			fromAbove := bitset.NewFull(u)
			for _, q := range b.Preds {
				fromAbove.IntersectWith(ppout[q.ID])
			}
			ins.SubtractWith(fromAbove)
		}
		pl.Insert[b.ID] = ins
		// a use at n is redundant when the value arrives from above
		red := bitset.Intersect(p.Used[b.ID], meetAvailOrPlaced(b, ppout, avout, u))
		pl.Redundant[b.ID] = red
	}
	_ = pavout
	return pl
}

func meetAvailOrPlaced(b *cfg.Block, ppout, avout []*bitset.Set, u int) *bitset.Set {
	if len(b.Preds) == 0 {
		return bitset.New(u)
	}
	m := bitset.NewFull(u)
	for _, q := range b.Preds {
		m.IntersectWith(bitset.Union(ppout[q.ID], avout[q.ID]))
	}
	return m
}
