package machine

import (
	"testing"

	"givetake/internal/comm"
	"givetake/internal/frontend"
	"givetake/internal/interp"
	"givetake/internal/netsim"
)

const fig1Src = `
distributed x(1000)
real y(1000), z(1000), a(1000)

do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
`

// TestFig2MachineComparison is the dynamic version of Figure 2: naive
// placement issues N messages with no overlap; GIVE-N-TAKE issues one
// vectorized message whose latency the i-loop hides.
func TestFig2MachineComparison(t *testing.T) {
	prog, err := frontend.Parse(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	cfg := interp.Config{N: n, Seed: 3}

	naiveTrace, err := interp.Run(comm.NaiveAnnotate(prog, comm.Options{Reads: true, Writes: true}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := comm.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	gntTrace, err := interp.Run(a.Annotate(comm.DefaultOptions), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if naiveTrace.Messages() != n {
		t.Fatalf("naive messages = %d, want N = %d", naiveTrace.Messages(), n)
	}
	if gntTrace.Messages() != 1 {
		t.Fatalf("GIVE-N-TAKE messages = %d, want 1", gntTrace.Messages())
	}
	// balance holds dynamically
	if s, r := gntTrace.UnmatchedSplit(); s != 0 || r != 0 {
		t.Fatalf("unbalanced trace: %d sends, %d recvs unmatched", s, r)
	}
	// the i-loop hides latency: the send-to-recv distance spans it
	pairs, total, _ := gntTrace.OverlapStats()
	if pairs != 1 || total < int64(n) {
		t.Fatalf("overlap pairs=%d dist=%d, want distance spanning the i-loop (≥%d)", pairs, total, n)
	}

	// under the high-latency model the ordering is naive ≫ atomic ≫ split
	m := HighLatency
	naiveCost := m.Cost(naiveTrace)
	atomicTrace, err := interp.Run(a.Annotate(comm.Options{Reads: true, Writes: true}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	atomicCost := m.Cost(atomicTrace)
	splitCost := m.Cost(gntTrace)
	if !(naiveCost.Total > atomicCost.Total && atomicCost.Total > splitCost.Total) {
		t.Fatalf("cost ordering wrong:\n naive  %v\n atomic %v\n split  %v",
			naiveCost, atomicCost, splitCost)
	}
	// vectorization dominates: naive pays ~N startups, GNT pays 1
	if naiveCost.Wait < float64(n)*m.Latency {
		t.Fatalf("naive wait %.0f should include %d startups", naiveCost.Wait, n)
	}
	if splitCost.Wait >= m.Latency {
		t.Fatalf("split wait %.0f should hide most of one startup (α=%.0f)", splitCost.Wait, m.Latency)
	}
}

func TestCostModelBasics(t *testing.T) {
	tr := &interp.Trace{
		Steps: 100,
		Events: []interp.CommEvent{
			{Op: "READ", Half: "", Step: 10, Elems: 5, Args: "x(1:5)"},
		},
	}
	m := Model{Latency: 100, PerElem: 2, Work: 1}
	r := m.Cost(tr)
	if r.Compute != 100 {
		t.Fatalf("compute = %f", r.Compute)
	}
	if r.Wait != 100+5*2 {
		t.Fatalf("wait = %f, want 110 (fully exposed atomic)", r.Wait)
	}
	if r.Total != r.Compute+r.Wait {
		t.Fatal("total mismatch")
	}
}

func TestCostModelOverlap(t *testing.T) {
	mk := func(sendStep, recvStep int64) *interp.Trace {
		return &interp.Trace{
			Steps: 200,
			Events: []interp.CommEvent{
				{Op: "READ", Half: "Send", Step: sendStep, Elems: 10, Args: "x(1:10)"},
				{Op: "READ", Half: "Recv", Step: recvStep, Elems: 10, Args: "x(1:10)"},
			},
		}
	}
	m := Model{Latency: 100, PerElem: 1, Work: 1}
	transfer := 110.0

	// no distance: fully exposed
	if r := m.Cost(mk(50, 50)); r.Wait != transfer {
		t.Fatalf("zero-distance wait = %f, want %f", r.Wait, transfer)
	}
	// partial overlap
	if r := m.Cost(mk(50, 100)); r.Wait != transfer-50 {
		t.Fatalf("partial overlap wait = %f, want %f", r.Wait, transfer-50)
	}
	// full overlap
	if r := m.Cost(mk(50, 180)); r.Wait != 0 {
		t.Fatalf("full overlap wait = %f, want 0", r.Wait)
	}
}

func TestCostModelFaultCharges(t *testing.T) {
	m := Model{Latency: 100, PerElem: 1, Work: 1}

	// atomic with retries: full transfer + exposed stall, retransmitted
	// bandwidth charged separately
	atomic := &interp.Trace{Steps: 10, Events: []interp.CommEvent{
		{Op: "READ", Half: "", Step: 5, Elems: 10, Args: "x(1:10)",
			Retries: 2, Stall: 144},
	}}
	r := m.Cost(atomic)
	if r.Wait != 110+144 {
		t.Fatalf("atomic wait = %f, want transfer 110 + stall 144", r.Wait)
	}
	if r.Retrans != 2*110 {
		t.Fatalf("retrans = %f, want 2 retransmissions × 110", r.Retrans)
	}
	if r.Retries != 2 || r.Total != r.Compute+r.Wait+r.Retrans {
		t.Fatalf("result = %+v", r)
	}

	// split pair recovering inside its window: retries cost bandwidth
	// but the overlap hides the stall — wait is zero when the copy
	// arrived before the receive point
	split := &interp.Trace{Steps: 400, Events: []interp.CommEvent{
		{Op: "READ", Half: "Send", Step: 50, Elems: 10, Args: "x(1:10)"},
		{Op: "READ", Half: "Recv", Step: 350, Elems: 10, Args: "x(1:10)",
			Retries: 2, Stall: 144, Arrival: 200},
	}}
	r = m.Cost(split)
	if r.Wait != 0 {
		t.Fatalf("split wait = %f, want 0 (retries absorbed by the overlap window)", r.Wait)
	}
	if r.Retrans != 2*110 || r.Retries != 2 {
		t.Fatalf("split retrans = %f retries = %d", r.Retrans, r.Retries)
	}

	// same recovery, short window: the late copy stalls the receiver
	late := &interp.Trace{Steps: 400, Events: []interp.CommEvent{
		{Op: "READ", Half: "Send", Step: 50, Elems: 10, Args: "x(1:10)"},
		{Op: "READ", Half: "Recv", Step: 170, Elems: 10, Args: "x(1:10)",
			Retries: 2, Stall: 144, Arrival: 200},
	}}
	r = m.Cost(late)
	if r.Wait != 30 { // arrival 200 − recv 170; α–β transfer 110 < window 120, hidden
		t.Fatalf("late wait = %f, want 30 steps of receiver stall", r.Wait)
	}
}

func TestCostModelDegradedPair(t *testing.T) {
	m := Model{Latency: 100, PerElem: 1, Work: 1}
	tr := &interp.Trace{Steps: 400, Events: []interp.CommEvent{
		{Op: "READ", Half: "Send", Step: 50, Elems: 10, Args: "x(1:10)"},
		{Op: "READ", Half: "Recv", Step: 100, Elems: 10, Args: "x(1:10)",
			Retries: 3, Stall: 300, Degraded: true},
	}}
	r := m.Cost(tr)
	// failure detected at send 50 + stall 300 = 350, i.e. 250 steps past
	// the recv, then the atomic re-issue (110) is fully exposed
	if r.Wait != 250+110 {
		t.Fatalf("degraded wait = %f, want 360", r.Wait)
	}
	if r.Degraded != 1 || r.Retries != 3 {
		t.Fatalf("result = %+v", r)
	}
	if r.Retrans != 3*110 {
		t.Fatalf("retrans = %f, want the 3 wasted attempts charged", r.Retrans)
	}
}

// TestSplitAbsorbsWhatAtomicExposes runs the same faulty workload under
// both placements end to end: same injected faults, but the split
// placement's overlap window hides recovery the atomic placement pays
// as wait.
func TestSplitAbsorbsWhatAtomicExposes(t *testing.T) {
	prog, err := frontend.Parse(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := comm.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	faults := netsim.FaultConfig{Drop: 0.2, Dup: 0.1, Delay: 0.1}
	m := HighLatency
	var splitWait, atomicWait, rounds float64
	for seed := int64(1); seed <= 40; seed++ {
		cfg := interp.Config{N: 100, Seed: 3, Faults: faults, FaultSeed: seed}
		at, err := interp.Run(a.Annotate(comm.Options{Reads: true, Writes: true}), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := interp.Run(a.Annotate(comm.DefaultOptions), cfg)
		if err != nil {
			t.Fatal(err)
		}
		atomicWait += m.Cost(at).Wait
		splitWait += m.Cost(sp).Wait
		rounds++
	}
	if splitWait >= atomicWait {
		t.Fatalf("split placement should absorb fault recovery: split wait %.0f ≥ atomic wait %.0f",
			splitWait/rounds, atomicWait/rounds)
	}
}

func TestCostModelUnmatchedCharged(t *testing.T) {
	tr := &interp.Trace{
		Steps: 10,
		Events: []interp.CommEvent{
			{Op: "READ", Half: "Send", Step: 1, Elems: 4, Args: "x(1:4)"},
			{Op: "WRITE", Half: "Recv", Step: 5, Elems: 4, Args: "y(1:4)"},
		},
	}
	m := Model{Latency: 10, PerElem: 1, Work: 1}
	r := m.Cost(tr)
	if r.Wait != 2*(10+4) {
		t.Fatalf("unmatched halves should be fully charged: wait = %f", r.Wait)
	}
}
