package machine

import (
	"testing"

	"givetake/internal/comm"
	"givetake/internal/frontend"
	"givetake/internal/interp"
)

const fig1Src = `
distributed x(1000)
real y(1000), z(1000), a(1000)

do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
`

// TestFig2MachineComparison is the dynamic version of Figure 2: naive
// placement issues N messages with no overlap; GIVE-N-TAKE issues one
// vectorized message whose latency the i-loop hides.
func TestFig2MachineComparison(t *testing.T) {
	prog, err := frontend.Parse(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	cfg := interp.Config{N: n, Seed: 3}

	naiveTrace, err := interp.Run(comm.NaiveAnnotate(prog, comm.Options{Reads: true, Writes: true}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := comm.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	gntTrace, err := interp.Run(a.Annotate(comm.DefaultOptions), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if naiveTrace.Messages() != n {
		t.Fatalf("naive messages = %d, want N = %d", naiveTrace.Messages(), n)
	}
	if gntTrace.Messages() != 1 {
		t.Fatalf("GIVE-N-TAKE messages = %d, want 1", gntTrace.Messages())
	}
	// balance holds dynamically
	if s, r := gntTrace.UnmatchedSplit(); s != 0 || r != 0 {
		t.Fatalf("unbalanced trace: %d sends, %d recvs unmatched", s, r)
	}
	// the i-loop hides latency: the send-to-recv distance spans it
	pairs, total, _ := gntTrace.OverlapStats()
	if pairs != 1 || total < int64(n) {
		t.Fatalf("overlap pairs=%d dist=%d, want distance spanning the i-loop (≥%d)", pairs, total, n)
	}

	// under the high-latency model the ordering is naive ≫ atomic ≫ split
	m := HighLatency
	naiveCost := m.Cost(naiveTrace)
	atomicTrace, err := interp.Run(a.Annotate(comm.Options{Reads: true, Writes: true}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	atomicCost := m.Cost(atomicTrace)
	splitCost := m.Cost(gntTrace)
	if !(naiveCost.Total > atomicCost.Total && atomicCost.Total > splitCost.Total) {
		t.Fatalf("cost ordering wrong:\n naive  %v\n atomic %v\n split  %v",
			naiveCost, atomicCost, splitCost)
	}
	// vectorization dominates: naive pays ~N startups, GNT pays 1
	if naiveCost.Wait < float64(n)*m.Latency {
		t.Fatalf("naive wait %.0f should include %d startups", naiveCost.Wait, n)
	}
	if splitCost.Wait >= m.Latency {
		t.Fatalf("split wait %.0f should hide most of one startup (α=%.0f)", splitCost.Wait, m.Latency)
	}
}

func TestCostModelBasics(t *testing.T) {
	tr := &interp.Trace{
		Steps: 100,
		Events: []interp.CommEvent{
			{Op: "READ", Half: "", Step: 10, Elems: 5, Args: "x(1:5)"},
		},
	}
	m := Model{Latency: 100, PerElem: 2, Work: 1}
	r := m.Cost(tr)
	if r.Compute != 100 {
		t.Fatalf("compute = %f", r.Compute)
	}
	if r.Wait != 100+5*2 {
		t.Fatalf("wait = %f, want 110 (fully exposed atomic)", r.Wait)
	}
	if r.Total != r.Compute+r.Wait {
		t.Fatal("total mismatch")
	}
}

func TestCostModelOverlap(t *testing.T) {
	mk := func(sendStep, recvStep int64) *interp.Trace {
		return &interp.Trace{
			Steps: 200,
			Events: []interp.CommEvent{
				{Op: "READ", Half: "Send", Step: sendStep, Elems: 10, Args: "x(1:10)"},
				{Op: "READ", Half: "Recv", Step: recvStep, Elems: 10, Args: "x(1:10)"},
			},
		}
	}
	m := Model{Latency: 100, PerElem: 1, Work: 1}
	transfer := 110.0

	// no distance: fully exposed
	if r := m.Cost(mk(50, 50)); r.Wait != transfer {
		t.Fatalf("zero-distance wait = %f, want %f", r.Wait, transfer)
	}
	// partial overlap
	if r := m.Cost(mk(50, 100)); r.Wait != transfer-50 {
		t.Fatalf("partial overlap wait = %f, want %f", r.Wait, transfer-50)
	}
	// full overlap
	if r := m.Cost(mk(50, 180)); r.Wait != 0 {
		t.Fatalf("full overlap wait = %f, want 0", r.Wait)
	}
}

func TestCostModelUnmatchedCharged(t *testing.T) {
	tr := &interp.Trace{
		Steps: 10,
		Events: []interp.CommEvent{
			{Op: "READ", Half: "Send", Step: 1, Elems: 4, Args: "x(1:4)"},
			{Op: "WRITE", Half: "Recv", Step: 5, Elems: 4, Args: "y(1:4)"},
		},
	}
	m := Model{Latency: 10, PerElem: 1, Work: 1}
	r := m.Cost(tr)
	if r.Wait != 2*(10+4) {
		t.Fatalf("unmatched halves should be fully charged: wait = %f", r.Wait)
	}
}
