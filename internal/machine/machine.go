// Package machine is an analytic cost model for the communication traces
// produced by the interpreter: a classic α–β (latency–bandwidth) model
// with overlap credit for split sends and receives. It stands in for the
// distributed-memory machines of the paper's era (paper §2 notes that
// the profitability of vectorization and latency hiding "depends heavily
// on the actual machine characteristics"; the model makes those
// characteristics explicit parameters).
package machine

import (
	"fmt"

	"givetake/internal/interp"
)

// Model holds the machine parameters, all in abstract work units (one
// interpreted statement costs Work units of compute).
type Model struct {
	// Latency is the per-message startup cost α.
	Latency float64
	// PerElem is the per-element transfer cost β.
	PerElem float64
	// Work is the compute cost of one interpreter step; the time a Send
	// runs ahead of its Recv is overlap credit at this rate.
	Work float64
}

// Typical models, loosely shaped after the era's machines: message
// startup dominates (thousands of flops per message), so vectorization
// pays first and overlap second.
var (
	// HighLatency resembles an iPSC-class message-passing machine.
	HighLatency = Model{Latency: 1000, PerElem: 1, Work: 1}
	// LowLatency resembles a shared-memory or fast-interconnect machine;
	// even here fewer messages win (paper §2).
	LowLatency = Model{Latency: 20, PerElem: 0.5, Work: 1}
)

// Result is the cost breakdown of one trace.
type Result struct {
	// Compute is Steps × Work.
	Compute float64
	// Wait is the exposed (non-overlapped) communication time.
	Wait float64
	// Total = Compute + Wait.
	Total float64
	// Messages and Volume summarize the trace.
	Messages, Volume int64
}

func (r Result) String() string {
	return fmt.Sprintf("msgs=%d vol=%d compute=%.0f wait=%.0f total=%.0f",
		r.Messages, r.Volume, r.Compute, r.Wait, r.Total)
}

// Cost evaluates a trace under the model. Atomic communication exposes
// its full transfer cost; a split pair exposes only what the compute
// between Send and Recv could not hide.
func (m Model) Cost(t *interp.Trace) Result {
	r := Result{
		Compute:  float64(t.Steps) * m.Work,
		Messages: t.Messages(),
		Volume:   t.Volume(),
	}
	type key struct{ op, args string }
	type sendEv struct {
		step  int64
		elems int64
	}
	pending := map[key][]sendEv{}
	for _, e := range t.Events {
		k := key{e.Op, e.Args}
		switch e.Half {
		case "":
			r.Wait += m.Latency + float64(e.Elems)*m.PerElem
		case "Send":
			pending[k] = append(pending[k], sendEv{e.Step, e.Elems})
		case "Recv":
			q := pending[k]
			if len(q) == 0 {
				// unmatched receive: pay the full transfer
				r.Wait += m.Latency + float64(e.Elems)*m.PerElem
				continue
			}
			s := q[len(q)-1]
			pending[k] = q[:len(q)-1]
			transfer := m.Latency + float64(s.elems)*m.PerElem
			hidden := float64(e.Step-s.step) * m.Work
			if exposed := transfer - hidden; exposed > 0 {
				r.Wait += exposed
			}
		}
	}
	// sends never received still consumed bandwidth; charge them fully
	// (a balanced placement has none)
	for _, q := range pending {
		for _, s := range q {
			r.Wait += m.Latency + float64(s.elems)*m.PerElem
		}
	}
	r.Total = r.Compute + r.Wait
	return r
}
