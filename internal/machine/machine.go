// Package machine is an analytic cost model for the communication traces
// produced by the interpreter: a classic α–β (latency–bandwidth) model
// with overlap credit for split sends and receives. It stands in for the
// distributed-memory machines of the paper's era (paper §2 notes that
// the profitability of vectorization and latency hiding "depends heavily
// on the actual machine characteristics"; the model makes those
// characteristics explicit parameters).
package machine

import (
	"fmt"

	"givetake/internal/interp"
	"givetake/internal/obs"
)

// Model holds the machine parameters, all in abstract work units (one
// interpreted statement costs Work units of compute).
type Model struct {
	// Latency is the per-message startup cost α.
	Latency float64
	// PerElem is the per-element transfer cost β.
	PerElem float64
	// Work is the compute cost of one interpreter step; the time a Send
	// runs ahead of its Recv is overlap credit at this rate.
	Work float64
}

// Typical models, loosely shaped after the era's machines: message
// startup dominates (thousands of flops per message), so vectorization
// pays first and overlap second.
var (
	// HighLatency resembles an iPSC-class message-passing machine.
	HighLatency = Model{Latency: 1000, PerElem: 1, Work: 1}
	// LowLatency resembles a shared-memory or fast-interconnect machine;
	// even here fewer messages win (paper §2).
	LowLatency = Model{Latency: 20, PerElem: 0.5, Work: 1}
)

// Result is the cost breakdown of one trace.
type Result struct {
	// Compute is Steps × Work.
	Compute float64
	// Wait is the exposed (non-overlapped) communication time, including
	// exposed timeout/backoff stalls and degraded re-issues under fault
	// injection.
	Wait float64
	// Retrans is the bandwidth consumed by retransmissions under fault
	// injection; zero on a reliable run.
	Retrans float64
	// Total = Compute + Wait + Retrans.
	Total float64
	// Messages and Volume summarize the trace (retransmitted copies are
	// charged in Retrans, not counted as extra messages).
	Messages, Volume int64
	// Retries and Degraded summarize fault recovery: retransmissions
	// performed and transfers that needed the reliable fallback.
	Retries, Degraded int64
}

func (r Result) String() string {
	s := fmt.Sprintf("msgs=%d vol=%d compute=%.0f wait=%.0f total=%.0f",
		r.Messages, r.Volume, r.Compute, r.Wait, r.Total)
	if r.Retrans > 0 || r.Retries > 0 || r.Degraded > 0 {
		s += fmt.Sprintf(" retrans=%.0f retries=%d degraded=%d",
			r.Retrans, r.Retries, r.Degraded)
	}
	return s
}

// Stats converts the breakdown into an obs.CostStats report row.
func (r Result) Stats() obs.CostStats {
	return obs.CostStats{
		Compute: r.Compute, Wait: r.Wait, Retrans: r.Retrans, Total: r.Total,
		Messages: r.Messages, Volume: r.Volume,
		Retries: r.Retries, Degraded: r.Degraded,
	}
}

// transfer is the α–β cost of moving elems elements once.
func (m Model) transfer(elems int64) float64 {
	return m.Latency + float64(elems)*m.PerElem
}

// Cost evaluates a trace under the model. Atomic communication exposes
// its full transfer cost; a split pair exposes only what the compute
// between Send and Recv could not hide. Under fault injection the model
// additionally charges, per transfer: retransmitted bandwidth (Retrans),
// exposed timeout/backoff stalls (atomic operations block through them;
// split pairs only pay the part their overlap window could not absorb),
// and for degraded transfers the fully exposed atomic re-issue at the
// Recv point.
func (m Model) Cost(t *interp.Trace) Result {
	r := Result{
		Compute:  float64(t.Steps) * m.Work,
		Messages: t.Messages(),
		Volume:   t.Volume(),
	}
	for i := range t.Events {
		e := &t.Events[i]
		if e.Half != "" {
			continue
		}
		// atomic: the operation blocks until delivery, so the transfer
		// and every retransmission stall are fully exposed
		r.Wait += m.transfer(e.Elems) + float64(e.Stall)*m.Work
		r.Retrans += float64(e.Retries) * m.transfer(e.Elems)
		r.Retries += int64(e.Retries)
		if e.Degraded {
			r.Degraded++
		}
	}
	pairs, usends, urecvs := t.Pairs()
	for _, p := range pairs {
		transfer := m.transfer(p.Send.Elems)
		r.Retrans += float64(p.Recv.Retries) * transfer
		r.Retries += int64(p.Recv.Retries)
		if p.Recv.Degraded {
			// the receiver learns of the failure when the sender's
			// retry budget runs out, then re-issues atomically (the
			// LAZY placement) over the reliable channel — fully exposed
			r.Degraded++
			detect := p.Send.Step + p.Recv.Stall
			if late := float64(detect-p.Recv.Step) * m.Work; late > 0 {
				r.Wait += late
			}
			r.Wait += transfer
			continue
		}
		hidden := float64(p.Recv.Step-p.Send.Step) * m.Work
		if exposed := transfer - hidden; exposed > 0 {
			r.Wait += exposed
		}
		// a copy arriving after the receive point stalls the receiver
		// even when the α–β transfer cost itself was hidden
		if late := float64(p.Recv.Arrival-p.Recv.Step) * m.Work; late > 0 {
			r.Wait += late
		}
	}
	// unmatched halves pay the full transfer (a balanced placement has
	// none)
	for _, e := range usends {
		r.Wait += m.transfer(e.Elems)
	}
	for _, e := range urecvs {
		r.Wait += m.transfer(e.Elems)
	}
	r.Total = r.Compute + r.Wait + r.Retrans
	return r
}
