package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestFixtures runs each analyzer over its testdata package and
// compares the findings, line by line, against the `// want` comments
// embedded in the fixture source. A want comment holds one or more
// regexes (quoted or backquoted) that must each match exactly one
// finding on that line; a finding with no matching want, or a want
// with no finding, fails the test. Weakening an analyzer therefore
// fails its fixture: the bug shapes below are the analyzers' contract.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", a.Name))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(dir); err != nil {
				t.Fatalf("analyzer %q has no fixture: %v", a.Name, err)
			}
			findings, err := Run(Config{Analyzers: []*Analyzer{a}}, dir)
			if err != nil {
				t.Fatalf("running %s over its fixture: %v", a.Name, err)
			}
			wants, err := parseWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want comments; it asserts nothing", dir)
			}
			checkAgainstWants(t, findings, wants)
		})
	}

	// every testdata directory must belong to a registered analyzer —
	// an orphan is a fixture nothing runs
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && ByName(e.Name()) == nil {
			t.Errorf("testdata/%s matches no registered analyzer", e.Name())
		}
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

var (
	wantMarker = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantRegex  = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")
)

// parseWants scans every fixture file in dir for `// want "re"` (or
// backquoted) comments.
func parseWants(dir string) ([]*want, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var wants []*want
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantMarker.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := wantRegex.FindAllStringSubmatch(m[1], -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment carries no quoted regex", name, i+1)
			}
			for _, q := range quoted {
				pat := q[1]
				if q[2] != "" {
					pat = q[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regex %q: %v", name, i+1, pat, err)
				}
				wants = append(wants, &want{file: filepath.Base(name), line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}

func checkAgainstWants(t *testing.T, findings []Finding, wants []*want) {
	t.Helper()
	for _, f := range findings {
		file, line := filepath.Base(f.Pos.Filename), f.Pos.Line
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == file && w.line == line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s: %s", file, line, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing finding at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}
