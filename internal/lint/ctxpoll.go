package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxPoll flags unbounded loops that can outlive their caller's
// patience: a function that accepts a context.Context (or belongs to a
// type carrying one) promises cooperative cancellation, and an
// unbounded loop inside it that never consults the context breaks that
// promise — the request keeps burning a worker long after the client
// hung up. This encodes the PR 4 SolveCtx/VerifyCtx convention: every
// fixed-point, worklist, or infinite loop on a context-bearing path
// polls ctx.Err()/ctx.Done() (directly, through a stored Done channel,
// or through a closure over either) at a bounded interval.
//
// Counted loops (`for i := 0; i < n; i++` with the counter untouched
// in the body) and range loops terminate with their data and are
// exempt; everything else — `for {}`, `for changed`, worklist drains —
// must mention the context, a derived Done channel, or a helper
// closure over one somewhere in its body.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "unbounded loop in a context-carrying function never polls " +
		"ctx.Err()/ctx.Done()",
	Run: runCtxPoll,
}

func runCtxPoll(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			polls, recv := p.pollObjects(fd)
			if polls == nil {
				continue // no context in sight; nothing to poll
			}
			p.checkLoops(fd.Body, polls, recv)
		}
	}
}

// pollObjects collects every object whose mention inside a loop counts
// as consulting the context: context parameters, receiver fields of
// context or done-channel type, variables bound from ctx.Done(), and
// function-valued locals whose bodies reference any of the above
// (the solver's `canceled := func() bool { ... }` helper). Returns nil
// when the function has no context access at all. The second result is
// the receiver object when the receiver's type stores a context or done
// channel: a method call on that receiver delegates polling to the
// callee (the interpreter's exec → stmt → tick chain).
func (p *Pass) pollObjects(fd *ast.FuncDecl) (map[types.Object]bool, types.Object) {
	polls := map[types.Object]bool{}
	var recv types.Object
	hasCtx := false
	addParam := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := p.Info.Defs[name]
				if obj != nil && isContextType(obj.Type()) {
					polls[obj] = true
					hasCtx = true
				}
			}
		}
	}
	addParam(fd.Type.Params)
	// a method of a type that stores a context or done channel is a
	// context-bearing path too (the interpreter's executor pattern)
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				obj := p.Info.Defs[name]
				if obj == nil {
					continue
				}
				if st := structUnder(obj.Type()); st != nil {
					for i := 0; i < st.NumFields(); i++ {
						ft := st.Field(i).Type()
						if isContextType(ft) || isDoneChan(ft) {
							hasCtx = true
							recv = obj
						}
					}
				}
			}
		}
	}
	if !hasCtx {
		return nil, nil
	}
	// two passes: done channels first, then closures over them
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				switch rhs := ast.Unparen(as.Rhs[i]).(type) {
				case *ast.CallExpr:
					if isDoneChan(obj.Type()) && p.mentionsAny(rhs, polls) {
						polls[obj] = true
					}
				case *ast.FuncLit:
					if p.mentionsAny(rhs.Body, polls) || p.mentionsCtxField(rhs.Body) {
						polls[obj] = true
					}
				}
			}
			return true
		})
	}
	return polls, recv
}

// checkLoops reports every unbounded for loop under body that neither
// mentions a poll object, touches a stored context/done field, nor
// calls a method on the context-bearing receiver.
func (p *Pass) checkLoops(body *ast.BlockStmt, polls map[types.Object]bool, recv types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if p.isCountedLoop(loop) {
			return true
		}
		if p.mentionsAny(loop.Body, polls) || mentions(loop.Cond, p, polls) ||
			p.mentionsCtxField(loop.Body) || p.callsMethodOn(loop.Body, recv) {
			return true
		}
		p.Reportf(loop.Pos(),
			"unbounded loop in a context-carrying function never polls the context; check ctx.Err() (or select on ctx.Done()) at a bounded interval")
		return true
	})
}

func mentions(e ast.Expr, p *Pass, polls map[types.Object]bool) bool {
	return e != nil && p.mentionsAny(e, polls)
}

// mentionsAny reports whether any identifier under n resolves to one
// of the poll objects.
func (p *Pass) mentionsAny(n ast.Node, polls map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && polls[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// callsMethodOn reports whether n contains a call whose receiver is
// recv — `ex.stmt(s)` inside exec's loop delegates cancellation
// polling to the callee, which the per-function analysis checks on its
// own.
func (p *Pass) callsMethodOn(n ast.Node, recv types.Object) bool {
	if recv == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && p.Info.Uses[id] == recv {
			if _, isMethod := p.Info.Selections[sel]; isMethod {
				found = true
			}
		}
		return true
	})
	return found
}

// mentionsCtxField reports whether n selects a struct field of context
// or done-channel type (ex.ctx, ex.done, v.done ...).
func (p *Pass) mentionsCtxField(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.Info.Uses[sel.Sel]
		if v, ok := obj.(*types.Var); ok && v.IsField() &&
			(isContextType(v.Type()) || isDoneChan(v.Type())) {
			found = true
		}
		return true
	})
	return found
}

// isCountedLoop recognizes `for i := ...; i OP bound; i++/i--/i += k`
// with the counter never reassigned in the body: it terminates with
// its bound and needs no poll.
func (p *Pass) isCountedLoop(loop *ast.ForStmt) bool {
	if loop.Cond == nil || loop.Post == nil {
		return false
	}
	var counter *ast.Ident
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		counter, _ = post.X.(*ast.Ident)
	case *ast.AssignStmt:
		if len(post.Lhs) == 1 && (post.Tok == token.ADD_ASSIGN || post.Tok == token.SUB_ASSIGN ||
			post.Tok == token.MUL_ASSIGN || post.Tok == token.SHR_ASSIGN || post.Tok == token.SHL_ASSIGN) {
			counter, _ = post.Lhs[0].(*ast.Ident)
		}
	}
	if counter == nil {
		return false
	}
	obj := p.Info.Uses[counter]
	if obj == nil {
		obj = p.Info.Defs[counter]
	}
	if obj == nil {
		return false
	}
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return false
	}
	condUses := exprUses(p, cond, obj)
	if !condUses {
		return false
	}
	// the body must not write the counter (a reset would unbound it)
	assigned := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if assigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					assigned = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok && p.Info.Uses[id] == obj {
				assigned = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && p.Info.Uses[id] == obj {
					assigned = true // &i escapes; anything may happen
				}
			}
		}
		return true
	})
	return !assigned
}

func exprUses(p *Pass, e ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named := namedOrPointee(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isDoneChan reports whether t is <-chan struct{} — the shape of
// ctx.Done() and of every stored done field in this repository.
func isDoneChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// structUnder unwraps pointers and returns the struct type under t.
func structUnder(t types.Type) *types.Struct {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}
