package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StatsLock flags writes to mutex-guarded struct fields made without
// holding the mutex — the PR 6 cache-stats race, where a miss counter
// and its store were committed in separate critical sections and a
// concurrent snapshot could observe the entry without its miss.
//
// Guard discovery, per struct with a sync.Mutex/RWMutex field:
//
//   - when the mutex's comment names fields ("mu guards pending +
//     stats"), exactly those siblings are guarded;
//   - otherwise every field declared after the mutex (up to the next
//     mutex field) is guarded — the standard Go layout convention.
//
// A write recv.f = ... (or recv.f++, recv.f[k] = ..., append into
// recv.f) inside a method is flagged unless a recv.mu.Lock() appears
// lexically before it with no intervening Unlock, or the method's name
// ends in "Locked" (the documented caller-holds-the-lock convention).
// Holding only RLock does not license a write. Lock tracking is
// branch-aware: an Unlock inside an early-exit branch does not release
// the lock on the fall-through path, and a lock held on any continuing
// branch of an if/switch is treated as held afterwards (erring toward
// silence over false alarms).
var StatsLock = &Analyzer{
	Name: "statslock",
	Doc: "mutex-guarded struct field written without holding the " +
		"mutex (or under RLock only)",
	Run: runStatsLock,
}

// guardInfo maps each guarded field object to its mutex field name.
type guardInfo map[types.Object]string

func runStatsLock(p *Pass) {
	guards := p.collectGuards()
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			recv := p.receiverObj(fd)
			if recv == nil {
				continue
			}
			p.checkMethodWrites(fd, recv, guards)
		}
	}
}

// receiverObj returns the receiver variable object of fd, or nil.
func (p *Pass) receiverObj(fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Recv.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// collectGuards builds the guarded-field table for every struct
// declared in this package.
func (p *Pass) collectGuards() guardInfo {
	guards := guardInfo{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			p.guardsForStruct(st, guards)
			return true
		})
	}
	return guards
}

func (p *Pass) guardsForStruct(st *ast.StructType, guards guardInfo) {
	type mutexField struct {
		name    string
		comment string
		index   int // position in st.Fields.List
	}
	var mutexes []mutexField
	fieldNames := map[string]types.Object{}
	for i, field := range st.Fields.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			if isMutexType(obj.Type()) {
				mutexes = append(mutexes, mutexField{
					name:    name.Name,
					comment: fieldComment(field),
					index:   i,
				})
			} else {
				fieldNames[name.Name] = obj
			}
		}
	}
	for mi, m := range mutexes {
		// explicit comment ("guards x + y", "protects a, b") wins
		if named := namedGuardFields(m.comment, fieldNames); len(named) > 0 {
			for _, obj := range named {
				guards[obj] = m.name
			}
			continue
		}
		// positional convention: fields below the mutex, up to the next
		// mutex field
		end := len(st.Fields.List)
		if mi+1 < len(mutexes) {
			end = mutexes[mi+1].index
		}
		for i := m.index + 1; i < end; i++ {
			for _, name := range st.Fields.List[i].Names {
				if obj := p.Info.Defs[name]; obj != nil && !isMutexType(obj.Type()) {
					guards[obj] = m.name
				}
			}
		}
	}
}

// namedGuardFields parses a mutex comment for sibling field names
// following a "guards"/"protects" keyword.
func namedGuardFields(comment string, fields map[string]types.Object) []types.Object {
	lower := strings.ToLower(comment)
	idx := strings.Index(lower, "guards")
	if i := strings.Index(lower, "protects"); idx < 0 || (i >= 0 && i < idx) {
		idx = i
	}
	if idx < 0 {
		return nil
	}
	var out []types.Object
	for _, word := range strings.FieldsFunc(comment[idx:], func(r rune) bool {
		return !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
	}) {
		if obj, ok := fields[word]; ok {
			out = append(out, obj)
		}
	}
	return out
}

func fieldComment(field *ast.Field) string {
	var parts []string
	if field.Doc != nil {
		parts = append(parts, field.Doc.Text())
	}
	if field.Comment != nil {
		parts = append(parts, field.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// lockState tracks, per mutex field name, how deeply it is write- and
// read-held on the current path.
type lockState struct {
	lock, rlock map[string]int
}

func newLockState() *lockState {
	return &lockState{lock: map[string]int{}, rlock: map[string]int{}}
}

func (s *lockState) clone() *lockState {
	n := newLockState()
	for k, v := range s.lock {
		n.lock[k] = v
	}
	for k, v := range s.rlock {
		n.rlock[k] = v
	}
	return n
}

// mergeMax folds another continuing path in, keeping the deeper hold:
// a lock held on any continuing branch is treated as held afterwards.
// That errs toward silence (a branch-only Lock may mask a race on the
// other branch), which is the right default for a CI gate.
func (s *lockState) mergeMax(o *lockState) {
	for k, v := range o.lock {
		if v > s.lock[k] {
			s.lock[k] = v
		}
	}
	for k, v := range o.rlock {
		if v > s.rlock[k] {
			s.rlock[k] = v
		}
	}
}

// checkMethodWrites walks fd's body with branch-aware lock tracking —
// an Unlock inside an early-exit branch (the `if cached { mu.Unlock();
// return }` idiom) does not release the lock on the fall-through path —
// and reports guarded-field writes made while their mutex is not
// write-held.
func (p *Pass) checkMethodWrites(fd *ast.FuncDecl, recv types.Object, guards guardInfo) {
	checkWrite := func(lhs ast.Expr, st *lockState) {
		fieldObj, ok := p.recvField(lhs, recv)
		if !ok {
			return
		}
		mu, guarded := guards[fieldObj]
		if !guarded {
			return
		}
		if st.lock[mu] > 0 {
			return
		}
		if st.rlock[mu] > 0 {
			p.Reportf(lhs.Pos(),
				"write to %s-guarded field %q while holding only %s.RLock(); writers need Lock()",
				mu, fieldObj.Name(), mu)
			return
		}
		p.Reportf(lhs.Pos(),
			"field %q is guarded by %q but written without it held (no %s.Lock() before this write; name the method *Locked if the caller holds it)",
			fieldObj.Name(), mu, mu)
	}
	// applyExpr folds the mutex operations inside one expression into
	// the state (closure bodies run at an unknown lock state and are
	// skipped).
	applyExpr := func(e ast.Node, st *lockState) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if mu, op, ok := p.mutexOp(call, recv); ok {
					switch op {
					case "Lock":
						st.lock[mu]++
					case "Unlock":
						st.lock[mu]--
					case "RLock":
						st.rlock[mu]++
					case "RUnlock":
						st.rlock[mu]--
					}
				}
			}
			return true
		})
	}

	var walkStmts func(stmts []ast.Stmt, st *lockState) bool
	var walkStmt func(s ast.Stmt, st *lockState) bool
	walkStmts = func(stmts []ast.Stmt, st *lockState) bool {
		for _, s := range stmts {
			if walkStmt(s, st) {
				return true
			}
		}
		return false
	}
	// walkStmt returns true when the path terminates (return, branch,
	// panic) so callers can discard that branch's lock effects.
	walkStmt = func(s ast.Stmt, st *lockState) bool {
		switch s := s.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				applyExpr(rhs, st)
			}
			for _, lhs := range s.Lhs {
				target := ast.Unparen(lhs)
				if idx, ok := target.(*ast.IndexExpr); ok {
					target = ast.Unparen(idx.X) // writes through a guarded map/slice
				}
				checkWrite(target, st)
			}
		case *ast.IncDecStmt:
			checkWrite(ast.Unparen(s.X), st)
		case *ast.ExprStmt:
			if isPanicCall(p, s.X) {
				return true
			}
			applyExpr(s.X, st)
		case *ast.DeferStmt:
			// defers run at exit; an Unlock in a defer does not release
			// the lock for the statements that follow
		case *ast.GoStmt:
			// runs elsewhere, at an unknown lock state
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				applyExpr(r, st)
			}
			return true
		case *ast.BranchStmt:
			return s.Tok != token.FALLTHROUGH
		case *ast.BlockStmt:
			return walkStmts(s.List, st)
		case *ast.IfStmt:
			if s.Init != nil {
				walkStmt(s.Init, st)
			}
			applyExpr(s.Cond, st)
			thenSt, elseSt := st.clone(), st.clone()
			thenTerm := walkStmts(s.Body.List, thenSt)
			elseTerm := false
			if s.Else != nil {
				elseTerm = walkStmt(s.Else, elseSt)
			}
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				*st = *elseSt
			case elseTerm:
				*st = *thenSt
			default:
				*st = *thenSt
				st.mergeMax(elseSt)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				walkStmt(s.Init, st)
			}
			applyExpr(s.Cond, st)
			body := st.clone()
			if !walkStmts(s.Body.List, body) {
				if s.Post != nil {
					walkStmt(s.Post, body)
				}
				st.mergeMax(body)
			}
		case *ast.RangeStmt:
			applyExpr(s.X, st)
			body := st.clone()
			if !walkStmts(s.Body.List, body) {
				st.mergeMax(body)
			}
		case *ast.SwitchStmt:
			if s.Init != nil {
				walkStmt(s.Init, st)
			}
			applyExpr(s.Tag, st)
			walkClauses(p, s.Body.List, st, walkStmts, applyExpr)
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				walkStmt(s.Init, st)
			}
			walkClauses(p, s.Body.List, st, walkStmts, applyExpr)
		case *ast.SelectStmt:
			walkClauses(p, s.Body.List, st, walkStmts, applyExpr)
		case *ast.LabeledStmt:
			return walkStmt(s.Stmt, st)
		}
		return false
	}
	walkStmts(fd.Body.List, newLockState())
}

// walkClauses merges switch/select clauses with mergeMax over the
// continuing branches.
func walkClauses(p *Pass, clauses []ast.Stmt, st *lockState,
	walkStmts func([]ast.Stmt, *lockState) bool, applyExpr func(ast.Node, *lockState)) {
	merged := st.clone()
	for _, c := range clauses {
		cs := st.clone()
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				applyExpr(e, cs)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				applyExpr(c.Comm, cs)
			}
			body = c.Body
		}
		if !walkStmts(body, cs) {
			merged.mergeMax(cs)
		}
	}
	*st = *merged
}

// recvField matches expr against recv.field and returns the field
// object.
func (p *Pass) recvField(expr ast.Expr, recv types.Object) (types.Object, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || p.Info.Uses[base] != recv {
		return nil, false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil {
		return nil, false
	}
	return obj, true
}

// mutexOp matches recv.mu.Lock()-shaped calls and returns the mutex
// field name and operation.
func (p *Pass) mutexOp(call *ast.CallExpr, recv types.Object) (mu, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	base, isIdent := ast.Unparen(inner.X).(*ast.Ident)
	if !isIdent || p.Info.Uses[base] != recv {
		return "", "", false
	}
	fieldObj := p.Info.Uses[inner.Sel]
	if fieldObj == nil || !isMutexType(fieldObj.Type()) {
		return "", "", false
	}
	return inner.Sel.Name, sel.Sel.Name, true
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}
