// Package fixture reproduces the cache-stats race: a counter and the
// store it describes committed in separate critical sections, letting a
// concurrent snapshot observe one without the other.
package fixture

import "sync"

// statCache scopes its guard with a comment: only the named fields are
// guarded by mu; gen is deliberately outside the contract.
type statCache struct {
	mu      sync.Mutex // guards hits, misses, entries
	hits    int64
	misses  int64
	entries map[string]int
	gen     int
}

// recordMissRacy is the historical bug shape.
func (c *statCache) recordMissRacy() {
	c.misses++ // want `guarded by .mu. but written without it held`
}

func (c *statCache) recordMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// storeOnce is the early-exit idiom branch-aware tracking must not
// misread: the Unlock inside the hit branch does not release the lock
// on the fall-through path.
func (c *statCache) storeOnce(k string) {
	c.mu.Lock()
	if _, ok := c.entries[k]; ok {
		c.mu.Unlock()
		return
	}
	c.entries[k] = 1
	c.hits++
	c.mu.Unlock()
}

// splitCommit reacquires nothing after its critical section; the
// trailing counter bump races with readers.
func (c *statCache) splitCommit(k string) {
	c.mu.Lock()
	c.entries[k] = 1
	c.mu.Unlock()
	c.misses++ // want `guarded by .mu. but written without it held`
}

// putLocked follows the caller-holds-the-lock naming convention.
func (c *statCache) putLocked(k string, n int) {
	c.entries[k] = n
}

// bumpGen writes an unguarded field; no finding.
func (c *statCache) bumpGen() {
	c.gen++
}

// rwStats has no guard comment: the positional convention applies, so
// every field after the mutex is guarded by it.
type rwStats struct {
	mu sync.RWMutex
	n  int64
}

// bumpUnderRead holds the wrong half of the RWMutex for a write.
func (s *rwStats) bumpUnderRead() {
	s.mu.RLock()
	s.n++ // want `holding only mu\.RLock`
	s.mu.RUnlock()
}

func (s *rwStats) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
