// Package fixture reproduces the admission-gate timer leak: a
// time.After inside a hot loop parks one runtime timer per iteration,
// none of them collectable until they fire. Under load, every canceled
// request left one behind.
package fixture

import (
	"context"
	"time"
)

// admissionWait is the historical bug shape.
func admissionWait(ctx context.Context, work <-chan struct{}) error {
	for {
		select {
		case <-work:
			return nil
		case <-time.After(50 * time.Millisecond): // want `time\.After inside a loop`
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// admissionWaitFixed stops its timer on every exit path; not flagged.
func admissionWaitFixed(ctx context.Context, work <-chan struct{}) error {
	t := time.NewTimer(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-work:
			return nil
		case <-t.C:
			t.Reset(50 * time.Millisecond)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// perItem shows the same leak under a range loop.
func perItem(items []int) {
	for range items {
		<-time.After(time.Microsecond) // want `time\.After inside a loop`
	}
}

// singleShot has no enclosing loop; one fired timer is not a leak.
func singleShot() {
	<-time.After(time.Millisecond)
}

// suppressed documents the escape hatch: a deliberate use carries a
// directive with a reason and produces no finding.
func suppressed(n int) {
	for i := 0; i < n; i++ {
		//lint:ignore timerleak fixture exercises the suppression path
		<-time.After(time.Microsecond)
	}
}
