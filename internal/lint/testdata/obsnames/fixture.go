// Package fixture exercises the obs name vocabulary: every span and
// counter name at an emission site must be declared in
// internal/obs/names.go, or the telemetry registry and trace consumers
// silently never see it.
package fixture

import "givetake/internal/obs"

func instrumented(col obs.Collector) {
	end := obs.Begin(col, obs.SpanCheck)
	defer end()
	obs.Count(col, "engine.cache.hit", 1)
	obs.Count(col, "cache-hits", 1)  // want `counter name "cache-hits" is not declared`
	done := obs.Begin(col, "ladder") // want `span name "ladder" is not declared`
	done()
}

// dynamic names are checked by their constant prefix.
func dynamic(col obs.Collector, variant string) {
	end := obs.Begin(col, obs.SpanPrefixExecute+variant)
	end()
	e2 := obs.Begin(col, "phase:"+variant) // want `prefix "phase:"`
	e2()
}

// Direct Collector method calls resolve through the interface and are
// checked the same way.
func onCollector(col obs.Collector) {
	end := col.BeginSpan("bogus-span") // want `span name "bogus-span" is not declared`
	end()
	col.Count(obs.CounterCacheMiss, 1)
}
