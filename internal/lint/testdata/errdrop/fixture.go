// Package fixture reproduces the swallowed-bind-error shape: a
// goroutine-launched call whose error result vanishes, so a port
// conflict masquerades as a clean shutdown.
package fixture

import "errors"

type server struct{}

func (s *server) ListenAndServe() error { return errors.New("bind: address already in use") }
func (s *server) Close() error          { return nil }

// launchRacy is the historical bug shape: the go statement discards the
// whole result tuple, unconditionally.
func launchRacy(s *server) {
	go s.ListenAndServe() // want `goroutine discards the error`
}

// launchDropsInClosure hides the same drop one layer down.
func launchDropsInClosure(s *server) {
	go func() {
		s.ListenAndServe() // want `silently dropped inside a goroutine`
	}()
}

// launchRouted sends the error to a channel the parent drains — the
// repository's listener pattern; not flagged.
func launchRouted(s *server) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	return errc
}

// launchExplicit makes the discard a visible, reviewable decision; not
// flagged.
func launchExplicit(s *server) {
	go func() { _ = s.Close() }()
}
