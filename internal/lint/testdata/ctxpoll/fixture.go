// Package fixture exercises the cooperative-cancellation convention:
// unbounded loops on context-bearing paths must consult the context at
// a bounded interval — directly, through a stored Done channel, through
// a closure over one, or by delegating to a method of the
// context-carrying receiver.
package fixture

import "context"

// worklistRacy drains without ever looking up; a hung client keeps the
// worker forever.
func worklistRacy(ctx context.Context, wl []int) int {
	n := 0
	for len(wl) > 0 { // want `never polls the context`
		n += wl[0]
		wl = wl[1:]
	}
	return n
}

// worklistPolled checks ctx.Err() each iteration; not flagged.
func worklistPolled(ctx context.Context, wl []int) error {
	for len(wl) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		wl = wl[1:]
	}
	return nil
}

// closurePoll is the solver's pattern: a helper closure over a stored
// Done channel counts as polling.
func closurePoll(ctx context.Context, wl []int) {
	done := ctx.Done()
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	for len(wl) > 0 {
		if canceled() {
			return
		}
		wl = wl[1:]
	}
}

// counted loops terminate with their bound and are exempt.
func counted(ctx context.Context) int {
	s := 0
	for i := 0; i < 1000; i++ {
		s += i
	}
	return s
}

// executor stores its cancellation signal the way the interpreter does.
type executor struct {
	done <-chan struct{}
	pc   int
}

func (ex *executor) tick() bool {
	select {
	case <-ex.done:
		return false
	default:
		return true
	}
}

// run delegates polling to a method on the context-bearing receiver;
// not flagged.
func (ex *executor) run(stmts []int) {
	for len(stmts) > 0 {
		if !ex.tick() {
			return
		}
		stmts = stmts[1:]
	}
}

// spin touches neither the done field nor any method of the receiver.
func (ex *executor) spin(n int) {
	for n > 0 { // want `never polls the context`
		n--
	}
}

// stageLoop is the engine pipeline's bounded-queue idiom: an unbounded
// stage loop whose every iteration selects between its input queue and
// the context. The select mentions ctx, so the loop passes without
// suppression — the convention the stage workers rely on.
func stageLoop(ctx context.Context, in <-chan int, out chan<- int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v, ok := <-in:
			if !ok {
				return
			}
			select {
			case out <- v + 1:
			case <-ctx.Done():
				return
			}
		}
	}
}

// rangeStage drains a queue with range; the loop terminates when the
// upstream closes the channel, so it is exempt like any range loop.
func rangeStage(ctx context.Context, in <-chan int) int {
	n := 0
	for v := range in {
		n += v
	}
	return n
}

// stageLoopRacy receives and forwards without ever consulting the
// context: a full downstream queue wedges the worker forever even
// after every request died.
func stageLoopRacy(ctx context.Context, in <-chan int, out chan<- int) {
	for { // want `never polls the context`
		v, ok := <-in
		if !ok {
			return
		}
		out <- v
	}
}
