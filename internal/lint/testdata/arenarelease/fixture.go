// Package fixture reproduces the leaked-lease shape: an engine.Result
// acquired and then abandoned on one early-return path, silently
// re-growing every slab the request leased.
package fixture

import (
	"errors"

	"givetake/internal/engine"
)

// analyze stands in for engine.Analyze: a non-nil lease XOR an error.
func analyze() (*engine.Result, error) { return &engine.Result{}, nil }

// leakOnEarlyReturn is the historical bug shape: the strict-mode return
// abandons the lease while the happy path releases it.
func leakOnEarlyReturn(strict bool) error {
	res, err := analyze()
	if err != nil {
		return err
	}
	if strict {
		return errors.New("strict mode rejected the placement") // want `still live at this return`
	}
	res.Release()
	return nil
}

// releasedOnAllPaths defers the release immediately; not flagged.
func releasedOnAllPaths(strict bool) error {
	res, err := analyze()
	if err != nil {
		return err
	}
	defer res.Release()
	if strict {
		return errors.New("strict mode rejected the placement")
	}
	return nil
}

// leakFallOff uses the lease and then just lets it go out of scope.
func leakFallOff() {
	res, err := analyze() // want `goes out of scope`
	if err != nil {
		return
	}
	if res.Check != nil {
		println("checked")
	}
}

// handoff transfers ownership over a channel; the receiver releases.
func handoff(out chan<- *engine.Result) error {
	res, err := analyze()
	if err != nil {
		return err
	}
	out <- res
	return nil
}

// returned transfers ownership to the caller; not flagged.
func returned() (*engine.Result, error) {
	res, err := analyze()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// perProgram leaks on the even-iteration continue only.
func perProgram(n int) {
	for i := 0; i < n; i++ {
		res, err := analyze()
		if err != nil {
			continue
		}
		if i%2 == 0 {
			continue // want `still live at this continue`
		}
		res.Release()
	}
}

// discarded can never be released at all.
func discarded() {
	_, _ = analyze() // want `discarded into _`
}
