package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"givetake/internal/obs"
)

// obsPath is the observability package whose name vocabulary this
// analyzer enforces.
const obsPath = "givetake/internal/obs"

// ObsNames flags span and counter names that are not declared in
// internal/obs/names.go. The telemetry registry, the trace consumers,
// and the per-stage latency histograms all key on exactly that
// vocabulary, so an ad-hoc name at an emission site is silently
// invisible to every one of them. This is the old names_drift_test AST
// walk promoted to a type-aware analyzer: the obs package and the
// Collector interface resolve through go/types, so aliased imports,
// shadowed identifiers, and named string constants are all evaluated
// instead of pattern-matched.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc: "span/counter names passed to obs.Begin, obs.Count, or a " +
		"Collector must be declared in internal/obs/names.go",
	Run: runObsNames,
}

func runObsNames(p *Pass) {
	// The obs package itself declares the vocabulary (and its tests
	// deliberately probe unknown names).
	if p.Pkg != nil && p.Pkg.Path() == obsPath {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil {
				return true
			}
			var nameArg ast.Expr
			var known func(string) bool
			var kind string
			switch {
			case isPkgFunc(fn, obsPath, "Begin") && len(call.Args) >= 2:
				nameArg, known, kind = call.Args[1], obs.KnownSpan, "span"
			case isPkgFunc(fn, obsPath, "Count") && len(call.Args) >= 2:
				nameArg, known, kind = call.Args[1], obs.KnownCounter, "counter"
			case fn.Name() == "BeginSpan" && p.implementsCollector(fn) && len(call.Args) >= 1:
				nameArg, known, kind = call.Args[0], obs.KnownSpan, "span"
			case fn.Name() == "Count" && p.implementsCollector(fn) && len(call.Args) >= 1:
				nameArg, known, kind = call.Args[0], obs.KnownCounter, "counter"
			default:
				return true
			}
			tv, ok := p.Info.Types[nameArg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				// dynamic names ("execute:"+variant) must still start
				// with a declared prefix when their head is constant
				if lit, pre := constantPrefix(p.Info, nameArg); lit && !known(pre) {
					p.Reportf(nameArg.Pos(),
						"dynamic %s name built from prefix %q, which is not declared in internal/obs/names.go", kind, pre)
				}
				return true
			}
			name := constant.StringVal(tv.Value)
			if !known(name) {
				p.Reportf(nameArg.Pos(),
					"%s name %q is not declared in internal/obs/names.go", kind, name)
			}
			return true
		})
	}
}

// implementsCollector reports whether fn is a method whose receiver
// type implements obs.Collector — i.e. the call really feeds the
// observability layer, not a same-named method elsewhere.
func (p *Pass) implementsCollector(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	iface := collectorInterface(p)
	if iface == nil {
		return false
	}
	recv := sig.Recv().Type()
	return types.Implements(recv, iface) ||
		types.Implements(types.NewPointer(recv), iface)
}

// collectorInterface resolves obs.Collector through this package's
// import graph (nil when the package never touches obs, even
// indirectly — then no value in it can implement the interface
// relevantly anyway).
func collectorInterface(p *Pass) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(pkgs []*types.Package) *types.Interface
	find = func(pkgs []*types.Package) *types.Interface {
		for _, imp := range pkgs {
			if seen[imp] {
				continue
			}
			seen[imp] = true
			if imp.Path() == obsPath {
				obj := imp.Scope().Lookup("Collector")
				if obj == nil {
					return nil
				}
				iface, _ := obj.Type().Underlying().(*types.Interface)
				return iface
			}
			if iface := find(imp.Imports()); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(p.Pkg.Imports())
}

// constantPrefix extracts the constant head of a name-building
// expression: for `prefix + variant` with a constant prefix it returns
// (true, prefix value). Non-concatenations report false.
func constantPrefix(info *types.Info, e ast.Expr) (bool, string) {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false, ""
	}
	tv, ok := info.Types[bin.X]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false, ""
	}
	return true, constant.StringVal(tv.Value)
}
