package lint

import (
	"go/ast"
)

// TimerLeak flags time.After calls lexically inside a loop. Each
// time.After allocates a timer the runtime cannot collect until it
// fires; in a request or retry loop that churns one leaked timer per
// iteration — the exact shape of the PR 5 admission-gate leak. The
// fix is a single time.NewTimer outside the loop (or Stop on every
// exit path), which is also what the serve admission gate does now.
var TimerLeak = &Analyzer{
	Name: "timerleak",
	Doc: "time.After inside a for loop leaks one timer per iteration; " +
		"use time.NewTimer with Stop",
	Run: runTimerLeak,
}

func runTimerLeak(p *Pass) {
	p.walkStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isPkgFunc(p.calleeFunc(call), "time", "After") {
			return true
		}
		// lexically enclosing loop, stopping at function boundaries: a
		// closure *defined* in a loop body runs once per call, but its
		// body is still per-iteration code when the loop invokes it —
		// only a func boundary makes the timer's lifetime independent
		// of the loop, and even then the closure usually runs inside
		// the iteration. Be conservative: any enclosing loop counts.
		for i := len(stack) - 1; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				p.Reportf(call.Pos(),
					"time.After inside a loop leaks one timer per iteration until it fires; use time.NewTimer and Stop it on every exit path")
				return true
			}
		}
		return true
	})
}
