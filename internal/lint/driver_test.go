package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// leakyTemplate is a minimal timerleak trigger; the %s slot takes a
// trailing directive and the %%s newline slot a standalone one.
const leakyTemplate = `package p

import "time"

func f(n int) {
	for i := 0; i < n; i++ {
		%s<-time.After(time.Microsecond) %s
	}
}
`

func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func timerLeakFindings(t *testing.T, src string) []Finding {
	t.Helper()
	dir := writeFixture(t, src)
	findings, err := Run(Config{Analyzers: []*Analyzer{TimerLeak}}, dir)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestSuppressions pins the //lint:ignore contract: a well-formed
// directive on the finding's line (or standing alone on the line
// above) silences exactly the named analyzer; a malformed or
// unknown-analyzer directive is itself a finding and silences nothing.
func TestSuppressions(t *testing.T) {
	countBy := func(findings []Finding, analyzer string) int {
		n := 0
		for _, f := range findings {
			if f.Analyzer == analyzer {
				n++
			}
		}
		return n
	}

	t.Run("unsuppressed", func(t *testing.T) {
		fs := timerLeakFindings(t, fmt.Sprintf(leakyTemplate, "", ""))
		if countBy(fs, "timerleak") != 1 {
			t.Fatalf("want 1 timerleak finding, got %v", fs)
		}
	})
	t.Run("same-line", func(t *testing.T) {
		fs := timerLeakFindings(t, fmt.Sprintf(leakyTemplate, "", "//lint:ignore timerleak test exercises suppression"))
		if len(fs) != 0 {
			t.Fatalf("want no findings, got %v", fs)
		}
	})
	t.Run("line-above", func(t *testing.T) {
		fs := timerLeakFindings(t, fmt.Sprintf(leakyTemplate, "//lint:ignore timerleak test exercises suppression\n\t\t", ""))
		if len(fs) != 0 {
			t.Fatalf("want no findings, got %v", fs)
		}
	})
	t.Run("missing-reason", func(t *testing.T) {
		fs := timerLeakFindings(t, fmt.Sprintf(leakyTemplate, "", "//lint:ignore timerleak"))
		if countBy(fs, "gntlint") != 1 || countBy(fs, "timerleak") != 1 {
			t.Fatalf("want one malformed-directive finding and one unsuppressed timerleak finding, got %v", fs)
		}
	})
	t.Run("unknown-analyzer", func(t *testing.T) {
		fs := timerLeakFindings(t, fmt.Sprintf(leakyTemplate, "", "//lint:ignore nosuch reason"))
		if countBy(fs, "gntlint") != 1 || countBy(fs, "timerleak") != 1 {
			t.Fatalf("want one unknown-analyzer finding and one unsuppressed timerleak finding, got %v", fs)
		}
	})
	t.Run("wrong-analyzer", func(t *testing.T) {
		fs := timerLeakFindings(t, fmt.Sprintf(leakyTemplate, "", "//lint:ignore errdrop suppressing the wrong check"))
		if countBy(fs, "timerleak") != 1 {
			t.Fatalf("a directive for another analyzer must not suppress timerleak; got %v", fs)
		}
	})
}

// TestCatalog pins the registered analyzer set: the CI gate and the
// docs both promise exactly these checks exist.
func TestCatalog(t *testing.T) {
	want := []string{"arenarelease", "ctxpoll", "errdrop", "obsnames", "statslock", "timerleak"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("want %d analyzers, got %d", len(want), len(all))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("analyzer %d: want %q, got %q", i, name, all[i].Name)
		}
		if all[i].Doc == "" {
			t.Errorf("analyzer %q has no doc line", name)
		}
		if ByName(name) != all[i] {
			t.Errorf("ByName(%q) does not round-trip", name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName of an unknown name must be nil")
	}
}
