package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Config tunes one driver run.
type Config struct {
	// Dir anchors module discovery; empty means the current directory.
	Dir string
	// Analyzers to run; nil means All().
	Analyzers []*Analyzer
	// IncludeTests additionally analyzes in-package _test.go files of
	// the requested packages.
	IncludeTests bool
}

// Run loads the packages matched by patterns and applies the
// configured analyzers, returning surviving (non-suppressed) findings
// sorted by position. It is the one entry point shared by cmd/gntlint,
// the fixture harness, and the obs name-drift test.
func Run(cfg Config, patterns ...string) ([]Finding, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = cfg.IncludeTests
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	var findings []Finding
	for _, pkg := range pkgs {
		sup := newSuppressions(loader.Fset, pkg.Files)
		findings = append(findings, sup.malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     loader.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(f Finding) {
				if !sup.suppressed(a.Name, f.Pos) {
					findings = append(findings, f)
				}
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ignorePrefix introduces a suppression directive.
const ignorePrefix = "//lint:ignore"

// suppressions indexes the //lint:ignore directives of one package.
// A directive names the analyzer it silences and must carry a reason;
// it applies to findings on its own line and — when the comment stands
// alone — to the line directly below it.
type suppressions struct {
	// byLine maps file -> line -> analyzer names suppressed there.
	byLine    map[string]map[int][]string
	malformed []Finding
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Finding{
						Analyzer: "gntlint",
						Pos:      pos,
						Message: fmt.Sprintf("malformed ignore directive: want %q (the reason is mandatory)",
							ignorePrefix+" <analyzer> <reason>"),
					})
					continue
				}
				name := fields[0]
				if ByName(name) == nil {
					s.malformed = append(s.malformed, Finding{
						Analyzer: "gntlint",
						Pos:      pos,
						Message:  fmt.Sprintf("ignore directive names unknown analyzer %q", name),
					})
					continue
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
				if standsAlone(fset, f, c) {
					lines[pos.Line+1] = append(lines[pos.Line+1], name)
				}
			}
		}
	}
	return s
}

// standsAlone reports whether comment c precedes the code it
// suppresses instead of trailing it: no non-comment node ends on the
// comment's line before the comment starts.
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n.End() < c.Pos() && fset.Position(n.End()).Line == line {
			alone = false
			return false
		}
		return true
	})
	return alone
}

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	lines, ok := s.byLine[pos.Filename]
	if !ok {
		return false
	}
	for _, name := range lines[pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}
