package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags goroutine-launched calls whose error result vanishes.
// An error dropped on the caller's goroutine is at least visible in
// review next to its call; one dropped inside `go ...` disappears from
// every path the program can report on — the PR 5 bug shape, where a
// listener's bind error was swallowed by `go srv.ListenAndServe()` and
// a port conflict masqueraded as a clean shutdown. Two forms are
// flagged:
//
//   - `go f(...)` where f returns an error: the tuple is discarded by
//     the go statement itself, unconditionally;
//   - a bare call statement inside a goroutine's function literal
//     whose only result is an error.
//
// An explicit `_ = f()` is a visible, reviewable decision and is not
// flagged. Route the error somewhere instead: a channel the parent
// drains (the current listener pattern `errc <- hs.Serve(ln)`), a
// captured slot joined by a WaitGroup, or at minimum a log.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "goroutine-launched call discards its error result; " +
		"send it to a drained channel or record it",
	Run: runErrDrop,
}

func runErrDrop(p *Pass) {
	p.walkStack(func(n ast.Node, stack []ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			p.checkGoroutineBody(lit.Body)
			return true
		}
		// go f(...): every result is discarded by construction
		if p.callReturnsError(g.Call) {
			p.Reportf(g.Call.Pos(),
				"goroutine discards the error returned by %s; launch a closure that routes it somewhere it is read", callName(g.Call))
		}
		return true
	})
}

// checkGoroutineBody flags bare single-error calls in the statements
// of a goroutine body. Nested function literals are skipped (they run
// on whichever goroutine invokes them and are separately visible);
// nested go statements are found by the outer walk.
func (p *Pass) checkGoroutineBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.callResultIsLoneError(call) {
				p.Reportf(call.Pos(),
					"error returned by %s is silently dropped inside a goroutine; assign it (`_ = ...`) if discarding is intended, or route it to the parent", callName(call))
			}
			return false
		}
		return true
	})
}

// callResultIsLoneError reports whether call returns exactly one
// value, of type error.
func (p *Pass) callResultIsLoneError(call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	return isErrorType(tv.Type)
}

// callReturnsError reports whether any result of call is an error.
func (p *Pass) callReturnsError(call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callName renders a short human name for the called function.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "the call"
}
