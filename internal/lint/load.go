package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("givetake/internal/serve").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the parsed files, comments included.
	Files []*ast.File
	// Types and Info carry the go/types results for the files.
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of the enclosing module using
// only the standard library: module-local import paths resolve by
// walking the module directory, everything else (the standard library)
// falls back to go/importer's source importer, which type-checks
// GOROOT/src directly. No go/packages, no export data, no network.
type Loader struct {
	// Fset is shared by every file the loader touches.
	Fset *token.FileSet
	// ModuleDir / ModulePath anchor module-local import resolution.
	ModuleDir  string
	ModulePath string
	// IncludeTests adds in-package _test.go files to requested (not
	// merely imported) packages.
	IncludeTests bool

	ctxt    build.Context
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool
}

// NewLoader discovers the module root at or above dir and returns a
// loader anchored there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctxt := build.Default
	// The repository is pure Go; disabling cgo keeps the source importer
	// on the pure-Go variants of net, os/user, etc., so loading needs no
	// cgo toolchain and writes no temp files.
	ctxt.CgoEnabled = false
	build.Default.CgoEnabled = false // the source importer reads build.Default
	return &Loader{
		Fset:       fset,
		ModuleDir:  root,
		ModulePath: modPath,
		ctxt:       ctxt,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// Load resolves patterns into loaded packages. Supported patterns:
// "./..." (every package under the module), "./rel/dir" and
// "rel/dir" (one directory), and module-qualified import paths.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ds, err := l.walkDirs(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			ds, err := l.walkDirs(l.resolveDir(base))
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				add(d)
			}
		default:
			add(l.resolveDir(pat))
		}
	}
	var out []*Package
	for _, d := range dirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func (l *Loader) resolveDir(pat string) string {
	if rest, ok := strings.CutPrefix(pat, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, rest)
	}
	if pat == l.ModulePath {
		return l.ModuleDir
	}
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	return filepath.Join(l.ModuleDir, pat)
}

// walkDirs lists every directory under root holding Go files, skipping
// VCS metadata, vendored code, and testdata fixtures.
func (l *Loader) walkDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "vendor" ||
				(strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// LoadDir loads and type-checks the package in dir (and, recursively,
// everything it imports).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(abs, l.importPathFor(abs), true)
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	if strings.HasPrefix(rel, "..") {
		// outside the module (fixture directories); synthesize a path
		return "lintfixture/" + filepath.Base(dir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

type noGoError struct{ dir string }

func (e *noGoError) Error() string { return "lint: no buildable Go files in " + e.dir }

func isNoGo(err error) bool {
	if _, ok := err.(*noGoError); ok {
		return true
	}
	var nge *build.NoGoError
	return strings.Contains(err.Error(), "no buildable Go source files") || errorsAs(err, &nge)
}

func errorsAs(err error, target **build.NoGoError) bool {
	e, ok := err.(*build.NoGoError)
	if ok {
		*target = e
	}
	return ok
}

// load parses and type-checks one directory. root packages may include
// in-package test files (when IncludeTests); imported packages never
// do, mirroring the compiler.
func (l *Loader) load(dir, importPath string, root bool) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, &noGoError{dir: dir}
		}
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	if root && l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	if len(names) == 0 {
		return nil, &noGoError{dir: dir}
	}
	var files []*ast.File
	for _, name := range names {
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		max := len(typeErrs)
		if max > 5 {
			max = 5
		}
		msgs := make([]string, 0, max)
		for _, e := range typeErrs[:max] {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s failed:\n  %s",
			importPath, strings.Join(msgs, "\n  "))
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter adapts the loader into the go/types importer
// interface: module-local paths load from the module tree, everything
// else delegates to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := l.resolveDir(path)
		pkg, err := l.load(dir, path, false)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}
