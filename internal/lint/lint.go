// Package lint is a stdlib-only static-analysis driver plus the
// repository's own analyzers: machine-checked versions of the
// concurrency and resource invariants that were previously enforced
// only by review (and, three times, by postmortem). The driver loads
// and type-checks packages offline — go/ast, go/types, and go/importer
// only, no golang.org/x/tools, no network — so `go run ./cmd/gntlint
// ./...` works in the same sandbox as the build itself.
//
// Findings print as "file:line:col: analyzer: message". A finding is
// suppressed by a
//
//	//lint:ignore <analyzer> <reason>
//
// comment on the offending line, or alone on the line directly above
// it. The reason is mandatory: an ignore without one does not
// suppress, and the driver reports the malformed directive itself.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name is the short identifier used in findings and ignore
	// directives.
	Name string
	// Doc is a one-line description followed, optionally, by details.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the canonical file:line:col: analyzer: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// All returns the full analyzer catalog, sorted by name. Every entry
// encodes one invariant of this repository; see each analyzer's Doc.
func All() []*Analyzer {
	return []*Analyzer{
		ArenaRelease,
		CtxPoll,
		ErrDrop,
		ObsNames,
		StatsLock,
		TimerLeak,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// --- shared AST helpers ---

// walkStack traverses every file of the pass in depth-first order,
// calling fn with each node and the stack of its ancestors (outermost
// first, not including n itself). Returning false prunes the subtree.
func (p *Pass) walkStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			keep := fn(n, stack)
			if keep {
				stack = append(stack, n)
			}
			return keep
		})
	}
}

// calleeFunc resolves the called function object of call, looking
// through package qualifiers, method selections, and plain
// identifiers. Returns nil for indirect calls through function values
// and conversions.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether obj is the function name declared in the
// package with import path pkgPath. Exact object identity through
// go/types: aliased imports, shadowed names, and same-named functions
// in other packages all resolve correctly.
func isPkgFunc(obj *types.Func, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// namedOrPointee unwraps pointers and returns the named type under t,
// or nil.
func namedOrPointee(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamedType reports whether t (possibly behind a pointer) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named := namedOrPointee(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// enclosingFunc returns the innermost function declaration or literal
// on the stack, together with its body.
func enclosingFunc(stack []ast.Node) (node ast.Node, body *ast.BlockStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn, fn.Body
		case *ast.FuncLit:
			return fn, fn.Body
		}
	}
	return nil, nil
}
