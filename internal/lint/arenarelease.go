package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaRelease flags leased values that can go out of scope without
// being returned to their pool. The engine's contract (engine.Result:
// "call Release when done with Analysis") and the bitset.Arena lease
// discipline are what keep the steady state allocation-flat; one
// forgotten Release on one error path silently re-grows every slab the
// request leased. The analyzer tracks variables bound from calls
// producing *engine.Result (or *bitset.Arena taken from a pool Get)
// through a block-structured walk of the function body and reports any
// path — fall-off, return, or loop continue/break — on which the value
// is live but neither released, deferred, nil (the producer errored),
// nor escaped to another owner.
//
// Ownership transfer is recognized generously to stay quiet on correct
// code: returning the value, storing it into a field, slice, map, or
// composite literal, sending it on a channel, capturing it in a
// closure, or passing it to any function all count as handing the
// lease to someone else.
var ArenaRelease = &Analyzer{
	Name: "arenarelease",
	Doc: "leased engine.Result / pooled bitset.Arena has a path to " +
		"scope exit with no Release and no escape",
	Run: runArenaRelease,
}

// leasedTypes maps the tracked named types to the method that returns
// the lease.
var leasedTypes = map[[2]string]string{
	{"givetake/internal/engine", "Result"}: "Release",
	{"givetake/internal/bitset", "Arena"}:  "Reset", // pooled via sync.Pool.Put
}

func runArenaRelease(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasGoto(fd.Body) {
				// goto breaks the block-structured path model; fall back
				// to "released anywhere" so true leaks still surface
				p.checkFlat(fd)
				continue
			}
			w := &releaseWalker{pass: p}
			st := &relState{released: map[types.Object]bool{}}
			terminated := w.walkStmts(fd.Body.List, st, 0)
			if !terminated {
				w.checkScopeEnd(st, fd.Body.End())
			}
		}
	}
}

// tracked is one leased acquisition being followed.
type tracked struct {
	obj       types.Object
	errObj    types.Object // error bound by the same call, if any
	loopDepth int          // loop nesting at the acquisition
	pos       token.Pos
	kind      string
}

// relState is the per-path release state.
type relState struct {
	live     []*tracked
	released map[types.Object]bool
}

func (st *relState) clone() *relState {
	n := &relState{
		live:     append([]*tracked(nil), st.live...),
		released: make(map[types.Object]bool, len(st.released)),
	}
	for k, v := range st.released {
		n.released[k] = v
	}
	return n
}

type releaseWalker struct {
	pass *Pass
}

// walkStmts processes one statement list at the given loop depth and
// reports whether every path through it terminates (return/branch/
// panic) before falling off the end. Acquisitions made directly in
// this list are scope-checked by the caller via checkScopeEnd.
func (w *releaseWalker) walkStmts(stmts []ast.Stmt, st *relState, depth int) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st, depth) {
			return true
		}
	}
	return false
}

// walkStmt handles one statement; true means the path terminated.
func (w *releaseWalker) walkStmt(s ast.Stmt, st *relState, depth int) bool {
	p := w.pass
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.noteEscapes(s, st)
		w.noteAcquisitions(s, st, depth)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					w.noteEscapes(vs, st)
					w.noteValueSpecAcquisition(vs, st, depth)
				}
			}
		}
	case *ast.ExprStmt:
		if isPanicCall(p, s.X) {
			return true // unwinding; the deferred state owns cleanup
		}
		w.noteEscapes(s, st)
	case *ast.DeferStmt:
		// anything mentioned in a defer is handled at exit, whatever the
		// path: defer v.Release(), defer pool.Put(v), defer func(){...}
		w.markMentioned(s, st)
	case *ast.GoStmt:
		w.markMentioned(s, st)
	case *ast.SendStmt:
		w.noteEscapes(s, st)
	case *ast.ReturnStmt:
		w.noteEscapes(s, st)
		w.checkExit(st, 0, s.Pos(), "return")
		return true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE, token.BREAK:
			// only leases acquired inside the loop being exited die here
			w.checkExit(st, depth, s.Pos(), s.Tok.String())
		}
		return s.Tok != token.FALLTHROUGH
	case *ast.BlockStmt:
		inner := st.clone()
		term := w.walkStmts(s.List, inner, depth)
		if !term {
			w.checkNewSince(inner, st, s.End())
		}
		w.mergeBack(st, inner)
		return term
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, depth)
		}
		w.noteEscapes(s.Cond, st)
		thenSt, elseSt := st.clone(), st.clone()
		w.applyNilGuard(s.Cond, thenSt, elseSt)
		thenTerm := w.walkStmts(s.Body.List, thenSt, depth)
		if !thenTerm {
			w.checkNewSince(thenSt, st, s.Body.End())
		}
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt, depth)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt.trimTo(st)
		case elseTerm:
			*st = *thenSt.trimTo(st)
		default:
			*st = *intersect(thenSt, elseSt, st)
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, depth)
		}
		w.noteEscapes(s.Cond, st)
		body := st.clone()
		term := w.walkStmts(s.Body.List, body, depth+1)
		if !term {
			w.checkNewSince(body, st, s.Body.End())
		}
		if s.Post != nil {
			w.walkStmt(s.Post, body, depth)
		}
		w.mergeBack(st, body) // union: releases inside the loop count after it
		return false
	case *ast.RangeStmt:
		w.noteEscapes(s.X, st)
		body := st.clone()
		term := w.walkStmts(s.Body.List, body, depth+1)
		if !term {
			w.checkNewSince(body, st, s.Body.End())
		}
		w.mergeBack(st, body)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkClauses(s, st, depth)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st, depth)
	}
	return false
}

// walkClauses handles switch/type-switch/select: each clause is an
// independent branch; the post state releases only what every
// non-terminating clause released (plus the incoming state when a
// switch has no default, since then no clause may run at all).
func (w *releaseWalker) walkClauses(s ast.Stmt, st *relState, depth int) bool {
	var clauses []ast.Stmt
	hasDefault := false
	isSelect := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, depth)
		}
		w.noteEscapes(s.Tag, st)
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, depth)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		isSelect = true
	}
	var states []*relState
	allTerm := len(clauses) > 0
	for _, c := range clauses {
		var body []ast.Stmt
		cs := st.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.noteEscapes(e, cs)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.walkStmt(c.Comm, cs, depth)
			}
			body = c.Body
		}
		term := w.walkStmts(body, cs, depth)
		if !term {
			w.checkNewSince(cs, st, c.End())
			states = append(states, cs)
			allTerm = false
		}
	}
	if allTerm && (hasDefault || isSelect) {
		return true
	}
	if !hasDefault && !isSelect {
		states = append(states, st.clone()) // no clause may have run
	}
	if len(states) > 0 {
		merged := states[0]
		for _, other := range states[1:] {
			merged = intersect(merged, other, st)
		}
		*st = *merged.trimTo(st)
	}
	return false
}

// --- acquisition & satisfaction ---

// noteAcquisitions registers leased values bound by s.
func (w *releaseWalker) noteAcquisitions(s *ast.AssignStmt, st *relState, depth int) {
	p := w.pass
	if len(s.Rhs) != 1 {
		return
	}
	if !isLeaseProducer(p, s.Rhs[0]) {
		return
	}
	var errObj types.Object
	var leases []*tracked
	for _, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue // stored straight into a field/index: escaped
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			if id.Name == "_" {
				if kind, leased := leasedExprType(p, s.Rhs[0], lhs, s.Lhs); leased {
					p.Reportf(id.Pos(), "leased %s discarded into _; it can never be released", kind)
				}
			}
			continue
		}
		if kind, leased := leasedObj(obj); leased {
			leases = append(leases, &tracked{
				obj: obj, loopDepth: depth, pos: id.Pos(), kind: kind,
			})
		} else if isErrorType(obj.Type()) {
			errObj = obj
		}
	}
	for _, tr := range leases {
		tr.errObj = errObj
		st.live = append(st.live, tr)
		delete(st.released, tr.obj) // fresh lease shadows any old state
	}
}

func (w *releaseWalker) noteValueSpecAcquisition(vs *ast.ValueSpec, st *relState, depth int) {
	p := w.pass
	if len(vs.Values) != 1 || !isLeaseProducer(p, vs.Values[0]) {
		return
	}
	var errObj types.Object
	var leases []*tracked
	for _, name := range vs.Names {
		obj := p.Info.Defs[name]
		if obj == nil {
			continue
		}
		if kind, leased := leasedObj(obj); leased {
			leases = append(leases, &tracked{obj: obj, loopDepth: depth, pos: name.Pos(), kind: kind})
		} else if isErrorType(obj.Type()) {
			errObj = obj
		}
	}
	for _, tr := range leases {
		tr.errObj = errObj
		st.live = append(st.live, tr)
	}
}

// isLeaseProducer reports whether rhs is a call (possibly through a
// type assertion) that yields a leased value.
func isLeaseProducer(p *Pass, rhs ast.Expr) bool {
	e := ast.Unparen(rhs)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	_, ok := e.(*ast.CallExpr)
	return ok
}

// leasedObj classifies obj's type against the tracked lease types.
// Pooled arenas are only tracked when produced by a Get-shaped call —
// that is checked at the acquisition site via the type assertion or
// result type; a locally constructed Arena (bitset.NewArena) is owned
// by the GC, so constructor names are exempted there.
func leasedObj(obj types.Object) (string, bool) {
	t := obj.Type()
	for key := range leasedTypes {
		if isNamedType(t, key[0], key[1]) {
			return key[0][len("givetake/internal/"):] + "." + key[1], true
		}
	}
	return "", false
}

func leasedExprType(p *Pass, rhs, lhs ast.Expr, all []ast.Expr) (string, bool) {
	// for _ = producer(): use the static type of the assignment slot
	tv, ok := p.Info.Types[rhs]
	if !ok || tv.Type == nil {
		return "", false
	}
	check := func(t types.Type) (string, bool) {
		for key := range leasedTypes {
			if isNamedType(t, key[0], key[1]) {
				return key[0][len("givetake/internal/"):] + "." + key[1], true
			}
		}
		return "", false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i, l := range all {
			if l == lhs && i < tuple.Len() {
				return check(tuple.At(i).Type())
			}
		}
		return "", false
	}
	return check(tv.Type)
}

// noteEscapes scans n for satisfaction events on tracked objects:
// Release calls, pool Puts, call arguments, stores into non-locals,
// channel sends, composite literals, closures, returns.
func (w *releaseWalker) noteEscapes(n ast.Node, st *relState) {
	if n == nil || len(st.live) == 0 {
		return
	}
	p := w.pass
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Release(): the canonical release
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && st.isLive(obj) {
						st.released[obj] = true
					}
				}
			}
			// any tracked value passed as an argument: ownership moves
			for _, arg := range n.Args {
				w.markIdentsIn(arg, st)
			}
		case *ast.AssignStmt:
			// v on the RHS of any assignment: aliased or stored; either
			// way another name now owns the lease
			for _, rhs := range n.Rhs {
				w.markIdentsIn(rhs, st)
			}
		case *ast.SendStmt:
			w.markIdentsIn(n.Value, st)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				w.markIdentsIn(el, st)
			}
		case *ast.FuncLit:
			// captured by a closure: the closure owns it now (and may
			// release it — `defer func() { res.Release() }()`)
			w.markMentioned(n.Body, st)
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				w.markIdentsIn(r, st)
			}
		}
		return true
	})
}

// markIdentsIn marks every tracked object mentioned under e as
// satisfied — but a bare method call v.M(...) is a use, not an escape,
// so only the arguments of nested calls and direct mentions count.
func (w *releaseWalker) markIdentsIn(e ast.Node, st *relState) {
	p := w.pass
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			// v.Field / v.Method: using a part of v does not transfer v
			if _, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && st.isLive(obj) {
				st.released[obj] = true
			}
		}
		return true
	})
}

// markMentioned satisfies every tracked object appearing anywhere
// under n (defer/go statements hand the value to deferred code).
func (w *releaseWalker) markMentioned(n ast.Node, st *relState) {
	p := w.pass
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && st.isLive(obj) {
				st.released[obj] = true
			}
		}
		return true
	})
}

// applyNilGuard interprets `if err != nil` / `if v == nil` conditions:
// on the branch where the producer failed (or the value is nil), the
// lease does not exist.
func (w *releaseWalker) applyNilGuard(cond ast.Expr, thenSt, elseSt *relState) {
	p := w.pass
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return
	}
	var id *ast.Ident
	if i, ok := ast.Unparen(bin.X).(*ast.Ident); ok && isNilIdent(p, bin.Y) {
		id = i
	} else if i, ok := ast.Unparen(bin.Y).(*ast.Ident); ok && isNilIdent(p, bin.X) {
		id = i
	}
	if id == nil {
		return
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return
	}
	nilState := thenSt // `x == nil`: the then-branch sees a nil x
	if bin.Op == token.NEQ {
		nilState = elseSt
	}
	for _, tr := range nilState.live {
		if tr.obj == obj {
			nilState.released[obj] = true // v itself is nil here
		}
		if tr.errObj != nil && tr.errObj == obj {
			// the error-is-non-nil branch: producers return a nil lease
			// alongside a non-nil error
			errNonNil := thenSt
			if bin.Op == token.EQL {
				errNonNil = elseSt
			}
			errNonNil.released[tr.obj] = true
		}
	}
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}

// --- exit checks & merges ---

// checkExit reports live, unsatisfied leases acquired strictly inside
// the scope being exited (minDepth 0 checks everything: returns).
func (w *releaseWalker) checkExit(st *relState, minDepth int, pos token.Pos, kind string) {
	for _, tr := range st.live {
		if tr.loopDepth < minDepth || st.released[tr.obj] {
			continue
		}
		w.pass.Reportf(pos,
			"leased %s %q (acquired at %s) is still live at this %s with no Release, defer, or ownership transfer on this path",
			tr.kind, tr.obj.Name(), w.pass.Fset.Position(tr.pos), kind)
		st.released[tr.obj] = true // one report per path
	}
}

// checkScopeEnd reports leases that fall out of scope unreleased at
// the end of the function body.
func (w *releaseWalker) checkScopeEnd(st *relState, end token.Pos) {
	for _, tr := range st.live {
		if st.released[tr.obj] {
			continue
		}
		w.pass.Reportf(tr.pos,
			"leased %s %q goes out of scope with no Release, defer, or ownership transfer on the fall-through path (scope ends at line %d)",
			tr.kind, tr.obj.Name(), w.pass.Fset.Position(end).Line)
		st.released[tr.obj] = true
	}
}

// checkNewSince reports leases acquired inside a branch (present in
// branch state but not in the base) that die unreleased when the
// branch rejoins.
func (w *releaseWalker) checkNewSince(branch, base *relState, end token.Pos) {
	baseLive := map[types.Object]bool{}
	for _, tr := range base.live {
		baseLive[tr.obj] = true
	}
	for _, tr := range branch.live {
		if baseLive[tr.obj] || branch.released[tr.obj] {
			continue
		}
		w.pass.Reportf(tr.pos,
			"leased %s %q acquired in this branch is not released, deferred, or transferred before the branch ends (line %d)",
			tr.kind, tr.obj.Name(), w.pass.Fset.Position(end).Line)
		branch.released[tr.obj] = true
	}
}

// mergeBack folds a child scope's release facts for outer-scope
// variables into the parent state.
func (w *releaseWalker) mergeBack(parent, child *relState) {
	for _, tr := range parent.live {
		if child.released[tr.obj] {
			parent.released[tr.obj] = true
		}
	}
}

// trimTo restricts st's live set to the variables the base scope
// knows, keeping release facts.
func (st *relState) trimTo(base *relState) *relState {
	baseLive := map[types.Object]bool{}
	for _, tr := range base.live {
		baseLive[tr.obj] = true
	}
	out := &relState{released: st.released}
	for _, tr := range st.live {
		if baseLive[tr.obj] {
			out.live = append(out.live, tr)
		}
	}
	return out
}

// intersect merges two branch states over the base scope's variables:
// released only where both branches released.
func intersect(a, b, base *relState) *relState {
	out := base.clone()
	for _, tr := range out.live {
		out.released[tr.obj] = a.released[tr.obj] && b.released[tr.obj]
	}
	return out
}

func (st *relState) isLive(obj types.Object) bool {
	for _, tr := range st.live {
		if tr.obj == obj {
			return true
		}
	}
	return false
}

func isPanicCall(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func hasGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

// checkFlat is the goto fallback: a lease must be satisfied somewhere
// in the function, path-insensitively.
func (p *Pass) checkFlat(fd *ast.FuncDecl) {
	w := &releaseWalker{pass: p}
	st := &relState{released: map[types.Object]bool{}}
	// first pass: acquisitions
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			w.noteAcquisitions(as, st, 0)
		}
		return true
	})
	if len(st.live) == 0 {
		return
	}
	// second pass: any satisfaction anywhere counts
	w.noteEscapes(fd.Body, st)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			w.markMentioned(n, st)
			return false
		}
		return true
	})
	for _, tr := range st.live {
		if !st.released[tr.obj] {
			p.Reportf(tr.pos,
				"leased %s %q is never released, deferred, or transferred anywhere in this function", tr.kind, tr.obj.Name())
		}
	}
}
