package check

import (
	"givetake/internal/bitset"
	"givetake/internal/interval"
)

// Witness reconstruction: every error diagnostic names a program point
// and a per-item precondition that the fixed point proved reachable
// ("region already open here", "item not available here"). To show the
// user a concrete offending execution, a breadth-first search runs over
// pairs (context, item state) — the same context graph the dataflow
// walked, but tracking the exact automaton of the single diagnosed item
// and mode, which is tiny: open/avail/pending/availO1/untainted bits
// plus the last producer. The first path whose replay satisfies the
// precondition at the diagnostic's fire point becomes the witness.

// firePoint identifies the check location inside a context's event
// replay where a diagnostic fired.
type firePoint int

const (
	fpO1    firePoint = iota // O1 check at a RES event of the mode
	fpOpen                   // C1 check at an EAGER RES event
	fpClose                  // C1 check at a LAZY RES event
	fpTake                   // C3 check at a TAKE event
	fpSteal                  // C2 check at a STEAL event
	fpEnd                    // C1/C2 checks at a program-exit state
)

// witnessGoal pins down where a diagnostic fired and for which item.
type witnessGoal struct {
	ctx  *dfContext
	fp   firePoint
	ph   phase
	item int
	mode int
	node int
	code string
}

const (
	fromNone = -2 // item never produced on this path
	fromExt  = -1 // item provided externally (GIVE / skipped loop)
)

// itemState is the exact single-item automaton state along one path.
type itemState struct {
	open, avail, pending, availO1, untainted bool
	from                                     int
}

type succItem struct {
	key ctxKey
	s   itemState
}

type visKey struct {
	k ctxKey
	s itemState
}

func (v *verifier) goalPred(g witnessGoal, s itemState) bool {
	switch g.fp {
	case fpO1:
		return s.availO1 && s.from != g.node
	case fpOpen:
		return s.open
	case fpClose:
		return !s.open
	case fpTake:
		return !s.avail
	case fpSteal:
		return s.pending
	case fpEnd:
		if g.code == CodeOpenAtExit {
			return s.open
		}
		return s.pending
	}
	return false
}

// witness searches for a path from program entry to the goal's fire
// point along which the goal predicate holds, returned as 1-based
// preorder numbers. nil when no witness is found within the budget
// (the diagnostic stands regardless; must-style checks are backed by
// every path).
func (v *verifier) witness(g witnessGoal) []int {
	entry := v.entryNode()
	if entry == nil || g.ctx == nil {
		return nil
	}
	type qent struct {
		key    ctxKey
		s      itemState
		parent int
	}
	start := qent{key: ctxKey{entry.ID, "", true}, s: itemState{untainted: true, from: fromNone}, parent: -1}
	queue := []qent{start}
	visited := map[visKey]bool{{start.key, start.s}: true}
	for head := 0; head < len(queue) && len(queue) < 20000; head++ {
		cur := queue[head]
		c := v.ctxs[cur.key]
		if c == nil {
			continue
		}
		hit, succs := v.replay(c, cur.s, g)
		if hit {
			var rev []int
			for i := head; i >= 0; i = queue[i].parent {
				rev = append(rev, v.g.Nodes[queue[i].key.node].Pre+1)
			}
			path := make([]int, 0, len(rev))
			for i := len(rev) - 1; i >= 0; i-- {
				path = append(path, rev[i])
			}
			return path
		}
		for _, sc := range succs {
			vk := visKey{sc.key, sc.s}
			if !visited[vk] {
				visited[vk] = true
				queue = append(queue, qent{key: sc.key, s: sc.s, parent: head})
			}
		}
	}
	return nil
}

// wit bundles the goal with a hit flag so replay helpers share one
// check closure.
type wit struct {
	v   *verifier
	g   witnessGoal
	c   *dfContext
	hit bool
}

func (w *wit) check(fp firePoint, ph phase, s itemState) {
	if w.hit || w.c.key != w.g.ctx.key || fp != w.g.fp || ph != w.g.ph {
		return
	}
	if w.v.goalPred(w.g, s) {
		w.hit = true
	}
}

// replay mirrors verifier.transfer for a single item: it applies the
// context's events to the item automaton, tests the goal at every check
// point, and returns the successor (context, state) pairs.
func (v *verifier) replay(c *dfContext, s itemState, g witnessGoal) (bool, []succItem) {
	n := c.node
	w := &wit{v: v, g: g, c: c}

	if !n.IsHeader || c.outside {
		s = v.replayProduction(n, s, phaseIn, w)
		if t := initSetAt(v.p.Init.Take, n.ID); t != nil && t.Has(g.item) {
			w.check(fpTake, phaseIn, s)
			s.pending = false
		}
		if gv := initSetAt(v.p.Init.Give, n.ID); gv != nil && gv.Has(g.item) {
			s.avail, s.availO1, s.from = true, true, fromExt
		}
		if sl := initSetAt(v.p.Init.Steal, n.ID); sl != nil && sl.Has(g.item) {
			w.check(fpSteal, phaseIn, s)
			s.avail, s.availO1, s.pending, s.from = false, false, false, fromNone
		}
	}

	var succs []succItem
	if n.IsHeader {
		if c.outside || !c.f.has(n.ID) {
			bodyF := c.f.with(n.ID)
			z := s
			if sk := bitset.Subtract(v.p.Sol.Give[n.ID], v.p.Sol.Steal[n.ID]); sk.Has(g.item) {
				z.avail, z.availO1, z.from = true, true, fromExt
			}
			if c.outside {
				z.untainted, z.pending = false, false
			}
			succs = append(succs, v.replayExit(n, c.f, z, w)...)
			if child := entryChild(n); child != nil {
				succs = append(succs, succItem{ctxKey{child.ID, bodyF.key(), true}, s})
			} else {
				succs = append(succs, v.replayExit(n, c.f, s, w)...)
			}
			return w.hit, succs
		}
		// Iteration: O1 knowledge resets to the loop-entry snapshot minus
		// the body's may-steal summary (Eq. 11 inherits GIVEN − STEAL).
		if sn := v.snaps[snapKey{n.ID, c.f.key()}]; sn == nil || !sn[g.mode].Has(g.item) {
			s.availO1 = false
		}
		if sl := v.p.Sol.Steal[n.ID]; sl != nil && sl.Has(g.item) {
			s.availO1 = false
		}
		if child := entryChild(n); child != nil {
			succs = append(succs, succItem{ctxKey{child.ID, c.f.key(), true}, s})
		}
		succs = append(succs, v.replayExit(n, c.f.without(n.ID), s, w)...)
		return w.hit, succs
	}

	fired := false
	exited := false
	var sOut itemState
	for _, e := range n.Out {
		switch e.Type {
		case interval.Cycle, interval.Forward, interval.Jump:
		default:
			continue
		}
		if !fired {
			sOut = v.replayProduction(n, s, phaseOut, w)
			fired = true
		}
		exited = true
		switch e.Type {
		case interval.Cycle:
			succs = append(succs, succItem{ctxKey{e.To.ID, c.f.key(), false}, sOut})
		case interval.Forward:
			succs = append(succs, succItem{ctxKey{e.To.ID, c.f.key(), true}, sOut})
		case interval.Jump:
			tf := v.popJump(c.f, e.To)
			sj := sOut
			sj.availO1 = false // mirror the verifier's jumpCut
			succs = append(succs, succItem{ctxKey{e.To.ID, tf.key(), true}, sj})
		}
	}
	if !exited {
		w.check(fpEnd, phaseIn, s)
	}
	return w.hit, succs
}

func (v *verifier) replayExit(h *interval.Node, f frames, s itemState, w *wit) []succItem {
	fired := false
	exited := false
	var out []succItem
	var sOut itemState
	for _, e := range h.Out {
		if e.Type != interval.Forward && e.Type != interval.Jump {
			continue
		}
		if !fired {
			sOut = v.replayProduction(h, s, phaseOut, w)
			fired = true
		}
		exited = true
		tf := f
		se := sOut
		if e.Type == interval.Jump {
			tf = v.popJump(f, e.To)
			se.availO1 = false // mirror the verifier's jumpCut
		}
		out = append(out, succItem{ctxKey{e.To.ID, tf.key(), true}, se})
	}
	if !exited {
		w.check(fpEnd, phaseIn, s)
	}
	return out
}

func (v *verifier) replayProduction(n *interval.Node, s itemState, ph phase, w *wit) itemState {
	var eager, lazy *bitset.Set
	if ph == phaseIn {
		eager, lazy = resInOf(v.p.Sol.Eager.ResIn, n.ID), resInOf(v.p.Sol.Lazy.ResIn, n.ID)
	} else {
		eager, lazy = resInOf(v.p.Sol.Eager.ResOut, n.ID), resInOf(v.p.Sol.Lazy.ResOut, n.ID)
	}
	item := w.g.item
	modeRes := eager
	if w.g.mode == 1 {
		modeRes = lazy
	}
	if modeRes != nil && modeRes.Has(item) {
		w.check(fpO1, ph, s)
		s.avail, s.availO1 = true, true
		s.from = n.ID
		if s.untainted {
			s.pending = true
		}
	}
	if eager != nil && eager.Has(item) {
		w.check(fpOpen, ph, s)
		s.open = true
	}
	if lazy != nil && lazy.Has(item) {
		w.check(fpClose, ph, s)
		s.open = false
	}
	return s
}
