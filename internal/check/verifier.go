package check

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/interval"
)

// The static verifier proves the path predicates of core.Verify by a
// fixed point instead of path enumeration. Its dataflow contexts are
// pairs (node, frame set): the frame set F holds the headers of loops
// the path is currently iterating, mirroring the loop-frame stack of
// the bounded checker. Headers therefore split into three context
// flavors, exactly the three arms of core.Verify's step():
//
//   - construct entry from outside (fromOutside): RES_in and the node's
//     TAKE/GIVE/STEAL fire, a frame is pushed for the iterate branch,
//     and the zero-trip branch taints the path (C2 is vacuous beyond a
//     skipped loop) while adding GIVE(h)−STEAL(h) as the loop's
//     vacuously-satisfied summary;
//   - construct entry via the cycle edge with no active frame (a jump
//     into the loop, §5.3, reversed graphs): same branching but no
//     events and no zero-trip taint;
//   - iteration (cycle edge, frame active): no events; the framework's
//     O1 availability knowledge resets to the loop-entry snapshot.
//
// Per item the lattice is the path-state set {unproduced, open-region,
// produced}; the analysis keeps its meet-over-paths summary as parallel
// must (∩) and may (∪) bit vectors, which collapse to ⊥-conflict
// exactly where the two disagree. Each criterion reads the side that
// makes a firing diagnostic a theorem about some real path:
//
//	openMust/openMay  C1   region open on all / some incoming path
//	availMust         C3   item available on every path (gen/kill per
//	                       item ⇒ the fixed point equals meet-over-paths,
//	                       so TAKE∖availMust is exact, no false alarms)
//	availO1Must       O1   availability as the framework can know it;
//	                       cycle edges intersect with the loop-entry
//	                       snapshot (meet over the entering contexts),
//	                       an under-approximation, so GNT007 only fires
//	                       when every path re-produces
//	fromMay           O1   which nodes may have produced each item last
//	                       (production at the node that made the item
//	                       available is exempt, like core.Verify's
//	                       availFrom)
//	pendingU          C2   produced-but-unconsumed on some path that has
//	                       not crossed a zero-trip loop; the untainted
//	                       bit records whether such a path reaches here
//
// The fixed point only computes states; diagnostics are emitted by a
// second, deterministic pass over the stabilized contexts, and each
// error is backed by a path witness from witness.go.

type ctxKey struct {
	node    int
	fkey    string
	outside bool
}

// frames is the set of active loop-frame headers, as sorted node IDs.
type frames []int

func (f frames) key() string {
	if len(f) == 0 {
		return ""
	}
	parts := make([]string, len(f))
	for i, id := range f {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ".")
}

func (f frames) has(id int) bool {
	for _, x := range f {
		if x == id {
			return true
		}
	}
	return false
}

func (f frames) with(id int) frames {
	if f.has(id) {
		return f
	}
	out := make(frames, 0, len(f)+1)
	for _, x := range f {
		if x < id {
			out = append(out, x)
		}
	}
	out = append(out, id)
	for _, x := range f {
		if x > id {
			out = append(out, x)
		}
	}
	return out
}

func (f frames) without(id int) frames {
	out := make(frames, 0, len(f))
	for _, x := range f {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

type dfContext struct {
	key     ctxKey
	node    *interval.Node
	f       frames
	outside bool
	in      *state
	queued  bool
}

// state is the dataflow value at a context entry.
type state struct {
	openMust, openMay *bitset.Set
	availMust         [2]*bitset.Set
	availO1Must       [2]*bitset.Set
	pendingU          [2]*bitset.Set
	// fromMay[m][i] is the set of nodes that may have produced item i
	// last (index nn = "external": a GIVE or a skipped-loop summary).
	fromMay   [2][]*bitset.Set
	untainted bool
}

type snapKey struct {
	node int
	fkey string
}

type verifier struct {
	p     *Problem
	g     *interval.Graph
	u     int // universe size
	nn    int // node count
	ext   int // fromMay index meaning "made available externally"
	ctxs  map[ctxKey]*dfContext
	order []*dfContext
	wl    []*dfContext
	snaps map[snapKey]*[2]*bitset.Set
	diags []Diagnostic
	dedup map[string]bool
	stats Stats

	// reporting switches transfer from propagation to diagnosis; cur is
	// the context being replayed, for witness anchoring.
	reporting bool
	cur       *dfContext
}

func newVerifier(p *Problem) *verifier {
	return &verifier{
		p:     p,
		g:     p.Graph,
		u:     p.Universe,
		nn:    len(p.Graph.Nodes),
		ext:   len(p.Graph.Nodes),
		ctxs:  map[ctxKey]*dfContext{},
		snaps: map[snapKey]*[2]*bitset.Set{},
		dedup: map[string]bool{},
	}
}

func (v *verifier) newState() *state {
	st := &state{
		openMust:  bitset.New(v.u),
		openMay:   bitset.New(v.u),
		untainted: false,
	}
	for m := 0; m < 2; m++ {
		st.availMust[m] = bitset.New(v.u)
		st.availO1Must[m] = bitset.New(v.u)
		st.pendingU[m] = bitset.New(v.u)
		st.fromMay[m] = make([]*bitset.Set, v.u)
		for i := 0; i < v.u; i++ {
			st.fromMay[m][i] = bitset.New(v.nn + 1)
		}
	}
	return st
}

func (st *state) clone() *state {
	c := &state{
		openMust:  st.openMust.Clone(),
		openMay:   st.openMay.Clone(),
		untainted: st.untainted,
	}
	for m := 0; m < 2; m++ {
		c.availMust[m] = st.availMust[m].Clone()
		c.availO1Must[m] = st.availO1Must[m].Clone()
		c.pendingU[m] = st.pendingU[m].Clone()
		c.fromMay[m] = make([]*bitset.Set, len(st.fromMay[m]))
		for i, s := range st.fromMay[m] {
			c.fromMay[m][i] = s.Clone()
		}
	}
	return c
}

// meet folds o into st (st is a context IN, o an incoming edge value)
// and reports whether st changed. Must sets intersect, may sets union.
func (st *state) meet(o *state, v *verifier) bool {
	changed := false
	changed = meetInter(st.openMust, o.openMust, v) || changed
	changed = meetUnion(st.openMay, o.openMay, v) || changed
	for m := 0; m < 2; m++ {
		changed = meetInter(st.availMust[m], o.availMust[m], v) || changed
		changed = meetInter(st.availO1Must[m], o.availO1Must[m], v) || changed
		changed = meetUnion(st.pendingU[m], o.pendingU[m], v) || changed
		for i := range st.fromMay[m] {
			changed = meetUnion(st.fromMay[m][i], o.fromMay[m][i], v) || changed
		}
	}
	if o.untainted && !st.untainted {
		st.untainted = true
		changed = true
	}
	return changed
}

func meetInter(dst, src *bitset.Set, v *verifier) bool {
	v.stats.SetOps += 2
	old := dst.Clone()
	dst.IntersectWith(src)
	return !dst.Equal(old)
}

func meetUnion(dst, src *bitset.Set, v *verifier) bool {
	v.stats.SetOps += 2
	if dst.ContainsAll(src) {
		return false
	}
	dst.UnionWith(src)
	return true
}

// entryNode mirrors core.Verify: the node with no CEFJ predecessors in
// this graph's orientation.
func (v *verifier) entryNode() *interval.Node {
	for _, n := range v.g.Preorder {
		if n.CountPreds(interval.CEFJ) == 0 {
			return n
		}
	}
	return nil
}

func (v *verifier) enqueue(c *dfContext) {
	if !c.queued {
		c.queued = true
		v.wl = append(v.wl, c)
	}
}

// contribute merges an edge value into the target context, creating and
// scheduling it on first contact. A no-op during the reporting pass.
func (v *verifier) contribute(k ctxKey, f frames, st *state) {
	if v.reporting {
		return
	}
	c := v.ctxs[k]
	if c == nil {
		c = &dfContext{key: k, node: v.g.Nodes[k.node], f: f, outside: k.outside, in: st}
		v.ctxs[k] = c
		v.order = append(v.order, c)
		v.enqueue(c)
		return
	}
	if c.in.meet(st, v) {
		v.enqueue(c)
	}
}

// recordSnap meets the post-event availO1 state of a construct entry
// into the loop-entry snapshot of body frame set fkey, re-scheduling
// the iteration context when the snapshot shrinks.
func (v *verifier) recordSnap(node int, fkey string, st *state) {
	if v.reporting {
		return
	}
	k := snapKey{node, fkey}
	s := v.snaps[k]
	if s == nil {
		s = &[2]*bitset.Set{st.availO1Must[0].Clone(), st.availO1Must[1].Clone()}
		v.snaps[k] = s
		return
	}
	changed := false
	for m := 0; m < 2; m++ {
		changed = meetInter(s[m], st.availO1Must[m], v) || changed
	}
	if changed {
		if c := v.ctxs[ctxKey{node, fkey, false}]; c != nil {
			v.enqueue(c)
		}
	}
}

// runCtx drives the fixed point, polling ctx every pollEvery worklist
// iterations; when canceled it abandons the analysis with ctx.Err()
// without entering the reporting pass.
func (v *verifier) runCtx(ctx context.Context) error {
	const pollEvery = 64
	done := ctx.Done()
	entry := v.entryNode()
	if entry == nil {
		return nil
	}
	st := v.newState()
	st.untainted = true
	v.contribute(ctxKey{entry.ID, "", true}, nil, st)
	for len(v.wl) > 0 {
		if done != nil && v.stats.Iterations%pollEvery == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		c := v.wl[len(v.wl)-1]
		v.wl = v.wl[:len(v.wl)-1]
		c.queued = false
		v.stats.Iterations++
		v.transfer(c)
	}
	v.stats.Contexts = len(v.ctxs)

	// Deterministic reporting pass over the stabilized states.
	v.reporting = true
	ord := append([]*dfContext(nil), v.order...)
	sort.Slice(ord, func(i, j int) bool {
		a, b := ord[i], ord[j]
		if a.node.Pre != b.node.Pre {
			return a.node.Pre < b.node.Pre
		}
		if a.key.fkey != b.key.fkey {
			return a.key.fkey < b.key.fkey
		}
		return a.outside && !b.outside
	})
	for _, c := range ord {
		v.cur = c
		v.transfer(c)
	}
	return nil
}

func entryChild(h *interval.Node) *interval.Node {
	for _, e := range h.Out {
		if e.Type == interval.Entry {
			return e.To
		}
	}
	return nil
}

// popJump drops the frames of every loop the jump target lies outside
// of (the stack-pop of core.Verify, expressed on the frame set).
func (v *verifier) popJump(f frames, target *interval.Node) frames {
	out := make(frames, 0, len(f))
	for _, id := range f {
		h := v.g.Nodes[id]
		if target == h || interval.InInterval(target, h) {
			out = append(out, id)
		}
	}
	return out
}

// transfer evaluates one context: replays the node's events on a copy
// of the IN state and feeds the per-edge results to the successor
// contexts (or, in the reporting pass, emits diagnostics at the check
// points instead).
func (v *verifier) transfer(c *dfContext) {
	n := c.node
	st := c.in.clone()

	// Events fire on every visit of a plain node but only on construct
	// entry from outside for headers (core.Verify step()).
	if !n.IsHeader || c.outside {
		v.production(n, st, resInOf(v.p.Sol.Eager.ResIn, n.ID), resInOf(v.p.Sol.Lazy.ResIn, n.ID), phaseIn)
		v.takeEv(n, st)
		v.giveEv(n, st)
		v.stealEv(n, st)
	}

	if n.IsHeader {
		if c.outside || !c.f.has(n.ID) {
			// Construct entry: branch over zero vs. at-least-one trip.
			bodyF := c.f.with(n.ID)
			v.recordSnap(n.ID, bodyF.key(), st)

			zst := st.clone()
			v.skippedGive(n, zst)
			if c.outside {
				zst.taint()
			}
			v.exitEdges(n, c.f, zst)

			if child := entryChild(n); child != nil {
				v.contribute(ctxKey{child.ID, bodyF.key(), true}, bodyF, st.clone())
			} else {
				// Degenerate loop without a body: fall through to the
				// exits with the frame popped again.
				v.exitEdges(n, c.f, st.clone())
			}
			return
		}
		// Iteration via the cycle edge: availability knowledge resets to
		// what held at loop entry, minus the body's may-steal summary —
		// Eq. 11 inherits GIVEN(h) − STEAL(h) into every iteration, so a
		// steal on any body path blinds the framework on all of them.
		if s := v.snaps[snapKey{n.ID, c.f.key()}]; s != nil {
			for m := 0; m < 2; m++ {
				st.availO1Must[m].IntersectWith(s[m])
				st.availO1Must[m].SubtractWith(v.p.Sol.Steal[n.ID])
				v.stats.SetOps += 2
			}
		} else {
			for m := 0; m < 2; m++ {
				st.availO1Must[m].Clear()
			}
		}
		if child := entryChild(n); child != nil {
			v.contribute(ctxKey{child.ID, c.f.key(), true}, c.f, st.clone())
		}
		v.exitEdges(n, c.f.without(n.ID), st.clone())
		return
	}

	// Plain node: RES_out fires on the way out, then each C/F/J edge.
	fired := false
	exited := false
	for _, e := range n.Out {
		switch e.Type {
		case interval.Cycle, interval.Forward, interval.Jump:
		default:
			continue
		}
		if !fired {
			v.production(n, st, resInOf(v.p.Sol.Eager.ResOut, n.ID), resInOf(v.p.Sol.Lazy.ResOut, n.ID), phaseOut)
			fired = true
		}
		exited = true
		switch e.Type {
		case interval.Cycle:
			v.contribute(ctxKey{e.To.ID, c.f.key(), false}, c.f, st.clone())
		case interval.Forward:
			v.contribute(ctxKey{e.To.ID, c.f.key(), true}, c.f, st.clone())
		case interval.Jump:
			tf := v.popJump(c.f, e.To)
			v.contribute(ctxKey{e.To.ID, tf.key(), true}, tf, jumpCut(st.clone()))
		}
	}
	if !exited {
		v.terminal(n, st)
	}
}

// jumpCut forgets O1 availability knowledge across a JUMP edge. Jumps
// leave (or, reversed, enter) an interval sideways, and the one-pass
// interval evaluation re-establishes state at their landing pads
// conservatively (§5.3, NoHoist); production after a jump therefore
// never counts as re-production. This only under-approximates the
// framework's knowledge further, so GNT007 stays a theorem.
func jumpCut(st *state) *state {
	st.availO1Must[0].Clear()
	st.availO1Must[1].Clear()
	return st
}

// exitEdges leaves a loop construct: RES_out of the header fires once,
// then every FORWARD/JUMP exit receives the state under frame set f.
// With no exit edge the construct ends the program.
func (v *verifier) exitEdges(h *interval.Node, f frames, st *state) {
	fired := false
	exited := false
	for _, e := range h.Out {
		if e.Type != interval.Forward && e.Type != interval.Jump {
			continue
		}
		if !fired {
			v.production(h, st, resInOf(v.p.Sol.Eager.ResOut, h.ID), resInOf(v.p.Sol.Lazy.ResOut, h.ID), phaseOut)
			fired = true
		}
		exited = true
		tf := f
		sc := st.clone()
		if e.Type == interval.Jump {
			tf = v.popJump(f, e.To)
			jumpCut(sc)
		}
		v.contribute(ctxKey{e.To.ID, tf.key(), true}, tf, sc)
	}
	if !exited {
		v.terminal(h, st)
	}
}

func (st *state) taint() {
	st.untainted = false
	st.pendingU[0].Clear()
	st.pendingU[1].Clear()
}

func resInOf(res []*bitset.Set, id int) *bitset.Set {
	if res == nil || id >= len(res) {
		return nil
	}
	return res[id]
}

func initSetAt(sets []*bitset.Set, id int) *bitset.Set {
	if sets == nil || id >= len(sets) {
		return nil
	}
	return sets[id]
}

type phase int

const (
	phaseIn phase = iota
	phaseOut
)

// production replays a RES event (RES_in or RES_out) of both modes:
// the O1 check and availability bookkeeping per mode, then the C1
// balance protocol (EAGER opens, LAZY closes). Order matches
// core.Verify's produce/produceExit.
func (v *verifier) production(n *interval.Node, st *state, eager, lazy *bitset.Set, ph phase) {
	res := [2]*bitset.Set{eager, lazy}
	for m := 0; m < 2; m++ {
		r := res[m]
		if r == nil || r.IsEmpty() {
			continue
		}
		mm := m
		r.ForEach(func(i int) {
			if v.reporting && st.availO1Must[mm].Has(i) && !st.fromMay[mm][i].Has(n.ID) {
				v.emit(CodeReproduction, "O1", mm, i, n, "item produced while still available", fpO1, ph)
			}
			st.availMust[mm].Add(i)
			st.availO1Must[mm].Add(i)
			st.fromMay[mm][i].Clear()
			st.fromMay[mm][i].Add(n.ID)
			if st.untainted {
				st.pendingU[mm].Add(i)
			}
		})
		v.stats.SetOps += 3
	}
	if eager != nil {
		eager.ForEach(func(i int) {
			if v.reporting && st.openMay.Has(i) {
				v.emit(CodeStartedTwice, "C1", 0, i, n, "production started twice without a stop", fpOpen, ph)
			}
			st.openMust.Add(i)
			st.openMay.Add(i)
		})
	}
	if lazy != nil {
		lazy.ForEach(func(i int) {
			if v.reporting && !st.openMust.Has(i) {
				v.emit(CodeStopWithoutStart, "C1", 1, i, n, "production stopped without a start", fpClose, ph)
			}
			st.openMust.Remove(i)
			st.openMay.Remove(i)
		})
	}
}

func (v *verifier) takeEv(n *interval.Node, st *state) {
	t := initSetAt(v.p.Init.Take, n.ID)
	if t == nil || t.IsEmpty() {
		return
	}
	t.ForEach(func(i int) {
		for m := 0; m < 2; m++ {
			if v.reporting && !st.availMust[m].Has(i) {
				v.emit(CodeConsumerStarved, "C3", m, i, n, "consumer without available production", fpTake, phaseIn)
			}
			st.pendingU[m].Remove(i)
		}
	})
	v.stats.SetOps += 2
}

func (v *verifier) giveEv(n *interval.Node, st *state) {
	gv := initSetAt(v.p.Init.Give, n.ID)
	if gv == nil || gv.IsEmpty() {
		return
	}
	for m := 0; m < 2; m++ {
		st.availMust[m].UnionWith(gv)
		st.availO1Must[m].UnionWith(gv)
		mm := m
		gv.ForEach(func(i int) {
			st.fromMay[mm][i].Clear()
			st.fromMay[mm][i].Add(v.ext)
		})
		v.stats.SetOps += 3
	}
}

func (v *verifier) stealEv(n *interval.Node, st *state) {
	sl := initSetAt(v.p.Init.Steal, n.ID)
	if sl == nil || sl.IsEmpty() {
		return
	}
	for m := 0; m < 2; m++ {
		if v.reporting {
			mm := m
			bitset.Intersect(st.pendingU[m], sl).ForEach(func(i int) {
				v.emit(CodeStolenPending, "C2", mm, i, n, "production stolen before being consumed", fpSteal, phaseIn)
			})
		}
		st.availMust[m].SubtractWith(sl)
		st.availO1Must[m].SubtractWith(sl)
		st.pendingU[m].SubtractWith(sl)
		mm := m
		sl.ForEach(func(i int) { st.fromMay[mm][i].Clear() })
		v.stats.SetOps += 4
	}
}

// skippedGive adds the summary of a loop executed zero times: its
// surviving free production GIVE(h)−STEAL(h) is vacuously satisfied
// (paper §2) and counts as externally provided.
func (v *verifier) skippedGive(h *interval.Node, st *state) {
	sk := bitset.Subtract(v.p.Sol.Give[h.ID], v.p.Sol.Steal[h.ID])
	if sk.IsEmpty() {
		return
	}
	for m := 0; m < 2; m++ {
		st.availMust[m].UnionWith(sk)
		st.availO1Must[m].UnionWith(sk)
		mm := m
		sk.ForEach(func(i int) {
			st.fromMay[mm][i].Clear()
			st.fromMay[mm][i].Add(v.ext)
		})
		v.stats.SetOps += 3
	}
}

// terminal checks a program-exit state: no region may still be open
// (C1) and nothing may be pending on an all-trips path (C2).
func (v *verifier) terminal(n *interval.Node, st *state) {
	if !v.reporting {
		return
	}
	st.openMay.ForEach(func(i int) {
		v.emit(CodeOpenAtExit, "C1", -1, i, n, "production still open at program exit", fpEnd, phaseIn)
	})
	for m := 0; m < 2; m++ {
		mm := m
		st.pendingU[m].ForEach(func(i int) {
			v.emit(CodeNeverConsumed, "C2", mm, i, n, "production never consumed", fpEnd, phaseIn)
		})
	}
}

func modeName(m int) string {
	switch m {
	case 0:
		return "eager"
	case 1:
		return "lazy"
	}
	return ""
}

// emit records one error diagnostic (deduplicated per code, node, item
// and mode across contexts) with its source anchor and path witness.
func (v *verifier) emit(code, criterion string, m, item int, n *interval.Node, detail string, fp firePoint, ph phase) {
	key := fmt.Sprintf("%s|%d|%d|%d", code, n.ID, item, m)
	if v.dedup[key] || len(v.diags) >= 200 {
		return
	}
	v.dedup[key] = true
	d := Diagnostic{
		Code:      code,
		Severity:  Error,
		Problem:   v.p.Name,
		Criterion: criterion,
		Item:      item,
		ItemName:  v.p.itemName(item),
		Node:      n.ID,
		Pre:       n.Pre + 1,
		Pos:       cfg.Anchor(n.Block),
		Detail:    detail,
	}
	if m >= 0 {
		d.Mode = modeName(m)
	}
	mode := m
	if mode < 0 {
		mode = 0
	}
	d.Path = v.witness(witnessGoal{ctx: v.cur, fp: fp, ph: ph, item: item, mode: mode, node: n.ID, code: code})
	v.diags = append(v.diags, d)
}
