// Package mutate seeds corruptions into solved placements so the
// static verifier's detection power can be measured. Each mutation
// flips exactly one RES bit — adding a communication the solver never
// placed, or deleting one it did — and returns an undo closure, so a
// test can score thousands of corruptions against one solve.
//
// The harness exists to keep internal/check honest: a verifier that
// proves C1–C3/O1 on every clean program but misses seeded violations
// would be vacuous. The acceptance bar is >=95% detection across the
// corpus, with the surviving few being flips that happen to produce
// another *valid* placement (e.g. an added Recv immediately re-closed
// by the original one on every path).
package mutate

import (
	"fmt"
	"math/rand"

	"givetake/internal/bitset"
	"givetake/internal/core"
)

// Mutation describes one single-bit corruption of a placement.
type Mutation struct {
	Schedule string // "eager" or "lazy"
	Edge     string // "in" (RES_in) or "out" (RES_out)
	Node     int    // node ID whose RES vector was flipped
	Item     int    // section index of the flipped bit
	Added    bool   // true if the flip set the bit, false if it cleared it
}

func (m Mutation) String() string {
	op := "drop"
	if m.Added {
		op = "inject"
	}
	return fmt.Sprintf("%s %s RES_%s item %d at node %d", op, m.Schedule, m.Edge, m.Node, m.Item)
}

// site is one flippable bit position.
type site struct {
	sched int // 0 eager, 1 lazy
	out   bool
	node  int
	item  int
	set   *bitset.Set
	has   bool
}

// sites enumerates every RES bit of the solution over reachable nodes:
// set bits (deletion candidates) and clear bits (injection candidates).
func sites(s *core.Solution, universe int) []site {
	var out []site
	for _, n := range s.Graph.Preorder {
		for sched := 0; sched < 2; sched++ {
			p := &s.Eager
			if sched == 1 {
				p = &s.Lazy
			}
			for _, dir := range []struct {
				out bool
				row []*bitset.Set
			}{{false, p.ResIn}, {true, p.ResOut}} {
				if n.ID >= len(dir.row) || dir.row[n.ID] == nil {
					continue
				}
				set := dir.row[n.ID]
				for item := 0; item < universe; item++ {
					out = append(out, site{sched, dir.out, n.ID, item, set, set.Has(item)})
				}
			}
		}
	}
	return out
}

// Apply flips one pseudo-randomly chosen RES bit of the solution and
// returns the mutation plus an undo closure restoring the bit. ok is
// false when the solution exposes no flippable site (nothing changed).
//
// Deletions and injections are drawn with equal probability so the
// score exercises both "solver forgot a message" and "solver invented
// one", even though clear bits vastly outnumber set bits.
func Apply(r *rand.Rand, s *core.Solution, universe int) (Mutation, func(), bool) {
	all := sites(s, universe)
	var setBits, clearBits []site
	for _, st := range all {
		if st.has {
			setBits = append(setBits, st)
		} else {
			clearBits = append(clearBits, st)
		}
	}
	pool := setBits
	if len(setBits) == 0 || (len(clearBits) > 0 && r.Intn(2) == 0) {
		pool = clearBits
	}
	if len(pool) == 0 {
		return Mutation{}, nil, false
	}
	st := pool[r.Intn(len(pool))]

	m := Mutation{
		Schedule: [2]string{"eager", "lazy"}[st.sched],
		Edge:     "in",
		Node:     st.node,
		Item:     st.item,
		Added:    !st.has,
	}
	if st.out {
		m.Edge = "out"
	}
	if st.has {
		st.set.Remove(st.item)
	} else {
		st.set.Add(st.item)
	}
	undo := func() {
		if st.has {
			st.set.Add(st.item)
		} else {
			st.set.Remove(st.item)
		}
	}
	return m, undo, true
}
