package mutate_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"givetake/internal/check"
	"givetake/internal/check/mutate"
	"givetake/internal/comm"
	"givetake/internal/frontend"
)

func corpusProblems(t *testing.T) []*check.Problem {
	t.Helper()
	var probs []*check.Problem
	for _, dir := range []string{"../../../testdata", "../../../testdata/kernels"} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".f") {
				continue
			}
			file := filepath.Join(dir, e.Name())
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatalf("read %s: %v", file, err)
			}
			prog, err := frontend.Parse(string(src))
			if err != nil {
				t.Fatalf("parse %s: %v", file, err)
			}
			a, err := comm.Analyze(prog)
			if err != nil {
				t.Fatalf("analyze %s: %v", file, err)
			}
			for _, p := range a.Problems() {
				p.Name = e.Name() + "/" + p.Name
				probs = append(probs, p)
			}
		}
	}
	if len(probs) == 0 {
		t.Fatal("no corpus problems found")
	}
	return probs
}

// TestMutationDetection is the acceptance gate for the verifier's
// power: seeded single-bit RES corruptions across the whole corpus
// must be flagged with a GNT0xx error naming the violated criterion at
// a rate of at least 95%.
func TestMutationDetection(t *testing.T) {
	const trials = 40
	r := rand.New(rand.NewSource(1))
	total, detected := 0, 0
	for _, p := range corpusProblems(t) {
		if res := check.Verify(p); !res.Ok() {
			t.Fatalf("%s: corpus not clean before mutation: %s", p.Name, res.Errors()[0])
		}
		for trial := 0; trial < trials; trial++ {
			m, undo, ok := mutate.Apply(r, p.Sol, p.Universe)
			if !ok {
				continue
			}
			total++
			res := check.Verify(p)
			undo()
			errs := res.Errors()
			if len(errs) == 0 {
				t.Logf("%s: undetected mutation: %s", p.Name, m)
				continue
			}
			d := errs[0]
			if !strings.HasPrefix(d.Code, "GNT0") {
				t.Errorf("%s: detection carries non-verifier code %s", p.Name, d.Code)
			}
			if d.Criterion == "" {
				t.Errorf("%s: diagnostic %s names no criterion", p.Name, d.Code)
			}
			detected++
		}
		// The undo must restore a clean solution.
		if res := check.Verify(p); !res.Ok() {
			t.Fatalf("%s: undo left the solution corrupted: %s", p.Name, res.Errors()[0])
		}
	}
	rate := float64(detected) / float64(total)
	t.Logf("mutation detection: %d/%d = %.1f%%", detected, total, 100*rate)
	if rate < 0.95 {
		t.Fatalf("detection rate %.1f%% below the 95%% bar (%d/%d)", 100*rate, detected, total)
	}
}

// TestApplyDeterministic pins the seeded behavior: the same source
// yields the same mutation sequence.
func TestApplyDeterministic(t *testing.T) {
	probs := corpusProblems(t)
	p := probs[0]
	var a, b []string
	for _, out := range []*[]string{&a, &b} {
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 10; i++ {
			m, undo, ok := mutate.Apply(r, p.Sol, p.Universe)
			if !ok {
				t.Fatal("no mutation site found")
			}
			*out = append(*out, m.String())
			undo()
		}
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mutation %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}
