package check

import (
	"fmt"

	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/interval"
)

// The communication linter: findings about placements that satisfy the
// criteria but are degenerate or hazardous. All linter diagnostics are
// warnings — they never fail a check run — and they use structural
// reachability on the plain graph, deliberately simpler than the
// verifier's context-sensitive dataflow.

// Lint inspects one solved problem for degenerate communication:
//
//	GNT101  a Recv (LAZY production) is reachable from entry without
//	        passing the matching Send — communication issued backwards
//	        (on a correct placement this coincides with C1 GNT002, but
//	        the lint also runs structurally, without loop-frame
//	        semantics, so it survives as a second opinion);
//	GNT110  Send and Recv of an item coincide at one program point, so
//	        the split hides no latency;
//	GNT111  production hoisted to a zero-trip loop header whose
//	        consumers all sit inside the loop — a skipped loop then
//	        communicates speculatively (suppress with NoHoist /
//	        STEAL_init when that is unacceptable, §4.1).
func Lint(p *Problem) []Diagnostic {
	var out []Diagnostic
	out = append(out, lintRecvBeforeSend(p)...)
	out = append(out, lintZeroOverlap(p)...)
	out = append(out, lintZeroTripHoist(p)...)
	return out
}

func lintWarn(p *Problem, code string, item int, n *interval.Node, detail string) Diagnostic {
	d := Diagnostic{
		Code:      code,
		Severity:  Warning,
		Problem:   p.Name,
		Criterion: "lint",
		Item:      item,
		Node:      -1,
		Detail:    detail,
	}
	if item >= 0 {
		d.ItemName = p.itemName(item)
	}
	if n != nil {
		d.Node = n.ID
		d.Pre = n.Pre + 1
		d.Pos = cfg.Anchor(n.Block)
	}
	return d
}

// lintRecvBeforeSend runs a forward may-analysis of "no Send seen yet"
// per item over CEFJ edges and flags LAZY productions reached in that
// state.
func lintRecvBeforeSend(p *Problem) []Diagnostic {
	g := p.Graph
	nn := len(g.Nodes)
	u := p.Universe
	// noSend[n]: items for which some entry path reaches n's events with
	// no EAGER production passed yet.
	noSend := make([]*bitset.Set, nn)
	seen := make([]bool, nn)
	var entry *interval.Node
	for _, n := range g.Preorder {
		if n.CountPreds(interval.CEFJ) == 0 {
			entry = n
			break
		}
	}
	if entry == nil {
		return nil
	}
	noSend[entry.ID] = bitset.NewFull(u)
	seen[entry.ID] = true
	wl := []*interval.Node{entry}
	for len(wl) > 0 {
		n := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		st := noSend[n.ID].Clone()
		st.SubtractWith(p.Sol.Eager.ResIn[n.ID])
		st.SubtractWith(p.Sol.Eager.ResOut[n.ID])
		for _, e := range n.Out {
			switch e.Type {
			case interval.Cycle, interval.Forward, interval.Jump, interval.Entry:
			default:
				continue
			}
			t := e.To.ID
			if !seen[t] {
				seen[t] = true
				noSend[t] = st.Clone()
				wl = append(wl, e.To)
			} else if !noSend[t].ContainsAll(st) {
				noSend[t].UnionWith(st)
				wl = append(wl, e.To)
			}
		}
	}
	var out []Diagnostic
	for _, n := range g.Preorder {
		if !seen[n.ID] {
			continue
		}
		// events at one node fire Send before Recv at each boundary, so
		// the node's own eager production is subtracted first
		afterIn := bitset.Subtract(noSend[n.ID], p.Sol.Eager.ResIn[n.ID])
		bitset.Intersect(p.Sol.Lazy.ResIn[n.ID], afterIn).ForEach(func(i int) {
			out = append(out, lintWarn(p, CodeRecvBeforeSend, i, n,
				"Recv reachable from entry without passing the matching Send"))
		})
		afterOut := bitset.Subtract(afterIn, p.Sol.Eager.ResOut[n.ID])
		bitset.Intersect(p.Sol.Lazy.ResOut[n.ID], afterOut).ForEach(func(i int) {
			out = append(out, lintWarn(p, CodeRecvBeforeSend, i, n,
				"Recv reachable from entry without passing the matching Send"))
		})
	}
	return out
}

// lintZeroOverlap flags items whose Send and Recv coincide at the same
// node boundary: the region is empty and hides no latency.
func lintZeroOverlap(p *Problem) []Diagnostic {
	var out []Diagnostic
	for _, n := range p.Graph.Preorder {
		for _, boundary := range []struct {
			name        string
			eager, lazy *bitset.Set
		}{
			{"entry", p.Sol.Eager.ResIn[n.ID], p.Sol.Lazy.ResIn[n.ID]},
			{"exit", p.Sol.Eager.ResOut[n.ID], p.Sol.Lazy.ResOut[n.ID]},
		} {
			b := boundary
			nn := n
			bitset.Intersect(b.eager, b.lazy).ForEach(func(i int) {
				out = append(out, lintWarn(p, CodeZeroOverlap, i, nn,
					fmt.Sprintf("Send and Recv coincide at node %s: zero-overlap region hides no latency", b.name)))
			})
		}
	}
	return out
}

// lintZeroTripHoist flags production hoisted to the entry of a
// zero-trip loop all of whose consumers sit inside the loop: when the
// loop runs zero times the communication was speculative.
func lintZeroTripHoist(p *Problem) []Diagnostic {
	var out []Diagnostic
	for _, h := range p.Graph.Preorder {
		if !h.IsHeader || h.NoHoist {
			continue
		}
		hh := h
		p.Sol.Eager.ResIn[h.ID].ForEach(func(i int) {
			inside, outside := 0, 0
			for _, n := range p.Graph.Nodes {
				if t := initSetAt(p.Init.Take, n.ID); t != nil && t.Has(i) {
					// The header's own TAKE fires at construct entry even on
					// zero trips, so it counts as an outside consumer.
					if interval.InInterval(n, hh) {
						inside++
					} else {
						outside++
					}
				}
			}
			if inside > 0 && outside == 0 {
				out = append(out, lintWarn(p, CodeZeroTripHoist, i, hh,
					"production hoisted above a zero-trip loop holding all its consumers; a skipped loop communicates speculatively"))
			}
		})
	}
	return out
}
