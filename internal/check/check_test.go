package check_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"givetake/internal/bitset"
	"givetake/internal/check"
	"givetake/internal/comm"
	"givetake/internal/frontend"
)

// corpusFiles returns every mini-Fortran program under testdata/,
// including the kernels.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, dir := range []string{"../../testdata", "../../testdata/kernels"} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".f") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
	}
	if len(files) == 0 {
		t.Fatal("no corpus files found")
	}
	return files
}

func analyzeFile(t *testing.T, file string) *comm.Analysis {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("read %s: %v", file, err)
	}
	prog, err := frontend.Parse(string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	a, err := comm.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze %s: %v", file, err)
	}
	return a
}

// TestCorpusClean is the headline guarantee: the static verifier proves
// C1–C3 and O1 for the solver's output on every testdata program and
// kernel, with zero error diagnostics.
func TestCorpusClean(t *testing.T) {
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			a := analyzeFile(t, file)
			res := a.CheckPlacement(nil)
			for _, d := range res.Errors() {
				t.Errorf("%s: %s", file, d)
			}
			for name, s := range res.Stats {
				if s.Contexts == 0 {
					t.Errorf("%s/%s: verifier discovered no contexts", file, name)
				}
			}
		})
	}
}

// freshProblem re-analyzes fig1 and returns its READ placement
// problem, so each corruption scenario starts from a clean solution.
func freshProblem(t *testing.T) *check.Problem {
	t.Helper()
	probs := analyzeFile(t, "../../testdata/fig1.f").Problems()
	if len(probs) == 0 {
		t.Fatal("fig1 produced no placement problems")
	}
	return probs[0]
}

func clearRows(rows ...[]*bitset.Set) {
	for _, row := range rows {
		for _, s := range row {
			if s != nil {
				s.Clear()
			}
		}
	}
}

func codesOf(res *check.Result) map[string]bool {
	m := map[string]bool{}
	for _, d := range res.Diagnostics {
		m[d.Code] = true
	}
	return m
}

// TestDiagnosticCodes hand-corrupts a solved placement and asserts the
// verifier names the specific violated criterion.
func TestDiagnosticCodes(t *testing.T) {
	t.Run("unmatched Recv is GNT002", func(t *testing.T) {
		p := freshProblem(t)
		clearRows(p.Sol.Eager.ResIn, p.Sol.Eager.ResOut)
		if c := codesOf(check.Verify(p)); !c[check.CodeStopWithoutStart] {
			t.Fatalf("dropping every Send yielded codes %v, want %s", c, check.CodeStopWithoutStart)
		}
	})
	t.Run("leaked region is GNT003", func(t *testing.T) {
		p := freshProblem(t)
		clearRows(p.Sol.Lazy.ResIn, p.Sol.Lazy.ResOut)
		if c := codesOf(check.Verify(p)); !c[check.CodeOpenAtExit] {
			t.Fatalf("dropping every Recv yielded codes %v, want %s", c, check.CodeOpenAtExit)
		}
	})
	t.Run("starved consumer is GNT006", func(t *testing.T) {
		p := freshProblem(t)
		clearRows(p.Sol.Eager.ResIn, p.Sol.Eager.ResOut, p.Sol.Lazy.ResIn, p.Sol.Lazy.ResOut)
		if c := codesOf(check.Verify(p)); !c[check.CodeConsumerStarved] {
			t.Fatalf("dropping all production yielded codes %v, want %s", c, check.CodeConsumerStarved)
		}
	})
	t.Run("double open is GNT001", func(t *testing.T) {
		p := freshProblem(t)
		injected := false
		for id, s := range p.Sol.Eager.ResIn {
			if s == nil || s.IsEmpty() {
				continue
			}
			item := s.Items()[0]
			p.Sol.Eager.ResOut[id].Add(item)
			injected = true
			break
		}
		if !injected {
			t.Skip("fig1 READ has no eager RES_in site to double")
		}
		if c := codesOf(check.Verify(p)); !c[check.CodeStartedTwice] {
			t.Fatalf("doubling a Send yielded codes %v, want %s", c, check.CodeStartedTwice)
		}
	})
	t.Run("Recv without Send lints GNT101", func(t *testing.T) {
		p := freshProblem(t)
		clearRows(p.Sol.Eager.ResIn, p.Sol.Eager.ResOut)
		found := false
		for _, d := range check.Lint(p) {
			if d.Code == check.CodeRecvBeforeSend {
				found = true
			}
		}
		if !found {
			t.Fatalf("dropping every Send produced no %s lint", check.CodeRecvBeforeSend)
		}
	})
}

// TestResultHelpers covers severity partitioning and ordering.
func TestResultHelpers(t *testing.T) {
	r := &check.Result{Diagnostics: []check.Diagnostic{
		{Code: check.CodeZeroOverlap, Severity: check.Warning, Pre: 1, Item: 0},
		{Code: check.CodeStartedTwice, Severity: check.Error, Pre: 5, Item: 1},
		{Code: check.CodeStartedTwice, Severity: check.Error, Pre: 2, Item: 0},
	}}
	if r.Ok() {
		t.Fatal("result with errors reported Ok")
	}
	if len(r.Errors()) != 2 || len(r.Warnings()) != 1 {
		t.Fatalf("partition wrong: %d errors, %d warnings", len(r.Errors()), len(r.Warnings()))
	}
	r.Sort()
	if r.Diagnostics[0].Pre != 2 || r.Diagnostics[2].Severity != check.Warning {
		t.Fatalf("sort order wrong: %+v", r.Diagnostics)
	}
}
