// Package check is the standalone static-analysis subsystem that
// re-verifies GIVE-N-TAKE results without trusting the solver. Where the
// bounded path checker of internal/core samples execution paths (loops
// unrolled 0..2 times), this package proves the paper's criteria over
// *all* paths by a fixed-point dataflow analysis on the plain control
// flow relation (the CEFJ edges of the interval graph, ignoring the
// interval structure the solver exploits):
//
//	C1 (balance):          every EAGER production is stopped by exactly
//	                       one LAZY production on every path, and no
//	                       region is left open at program exit;
//	C2 (safety):           everything produced is consumed before being
//	                       stolen or reaching exit, on every path whose
//	                       loops all run at least once;
//	C3 (correctness):      every consumer sees its item available on
//	                       every incoming path;
//	O1 (no re-production): production never targets an item the
//	                       framework already knows to be available.
//
// The analysis tracks, per value-numbered section, a small path-state
// lattice — unproduced, open-region, produced, and the ⊥ conflict state
// where joining paths disagree — realized as parallel must/may bit
// vectors (see verifier.go). Violations surface as structured
// Diagnostics with stable GNT0xx codes, the offending node, a source
// anchor, and a concrete path witness reconstructed from the lattice.
// On top of the verifier, Lint (lint.go) diagnoses placements that are
// correct but degenerate (GNT1xx warnings).
//
// The package deliberately shares no equation code with internal/core:
// it reads only the Init sets and the RES/GIVE/STEAL vectors of a
// Solution, so a solver bug cannot hide from it. The mutate subpackage
// turns that independence into a measured property: seeded corruptions
// of solution bit vectors must be caught by this verifier.
package check

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"givetake/internal/core"
	"givetake/internal/interval"
)

// Severity ranks diagnostics. Errors are criterion violations and fail
// `gnt -mode check`; warnings are linter findings about placements that
// are correct but suspicious or degenerate.
type Severity int

const (
	// Error marks a violated correctness/optimality criterion.
	Error Severity = iota
	// Warning marks a correct but degenerate or hazardous placement.
	Warning
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// Diagnostic codes. Codes are stable API: tests, CI greps, and the
// mutation harness key on them. GNT0xx are verifier errors (one block
// per criterion), GNT1xx are linter warnings.
const (
	// CodeStartedTwice: C1 — an EAGER production fires for an item whose
	// region is already open on some path.
	CodeStartedTwice = "GNT001"
	// CodeStopWithoutStart: C1 — a LAZY production fires for an item
	// whose region is not open on some path.
	CodeStopWithoutStart = "GNT002"
	// CodeOpenAtExit: C1 — a production region reaches program exit
	// still open on some path (Send without a matching Recv).
	CodeOpenAtExit = "GNT003"
	// CodeNeverConsumed: C2 — a produced item reaches program exit
	// unconsumed on some path whose loops all ran at least once.
	CodeNeverConsumed = "GNT004"
	// CodeStolenPending: C2 — a produced item is stolen before being
	// consumed on some all-trips path.
	CodeStolenPending = "GNT005"
	// CodeConsumerStarved: C3 — a consumer executes on some path along
	// which its item was never produced, given, or survived stealing.
	CodeConsumerStarved = "GNT006"
	// CodeReproduction: O1 — production targets an item that the
	// framework can know to be available on every incoming path.
	CodeReproduction = "GNT007"

	// CodeRecvBeforeSend: lint — a Recv (LAZY production) is reachable
	// from entry without passing the matching Send (EAGER production).
	CodeRecvBeforeSend = "GNT101"
	// CodeZeroOverlap: lint — Send and Recv of an item coincide at one
	// program point, so the split buys no latency hiding.
	CodeZeroOverlap = "GNT110"
	// CodeZeroTripHoist: lint — production hoisted above a potentially
	// zero-trip loop whose body holds every consumer; a zero-trip
	// execution communicates speculatively (suppress with no-hoist /
	// STEAL_init if that is unacceptable).
	CodeZeroTripHoist = "GNT111"
	// CodeDeadArray: lint — a distributed array is declared but never
	// referenced or defined, so no communication is ever generated.
	CodeDeadArray = "GNT112"
)

// Diagnostic is one verifier or linter finding.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	// Problem names the placement problem ("READ", "WRITE", or the
	// caller-supplied name); empty for program-level lints.
	Problem string `json:"problem,omitempty"`
	// Criterion is the violated paper criterion (C1, C2, C3, O1) or
	// "lint".
	Criterion string `json:"criterion"`
	// Mode is the schedule the finding concerns ("eager", "lazy", or
	// "" when it applies to the pair).
	Mode string `json:"mode,omitempty"`
	// Item is the universe index of the value-numbered section; -1 for
	// item-independent findings. ItemName is its printable form.
	Item     int    `json:"item"`
	ItemName string `json:"item_name,omitempty"`
	// Node is the interval node ID the finding anchors to (-1 when not
	// applicable); Pre is its 1-based preorder number as printed by
	// `gnt -mode graph`, in the orientation of the problem's graph.
	Node int `json:"node"`
	Pre  int `json:"pre,omitempty"`
	// Pos is the shared source anchor ("line:col", or a block
	// description for synthetic nodes) — the same formatter explain
	// output uses.
	Pos string `json:"pos,omitempty"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
	// Path, when non-empty, is a concrete offending path witness:
	// 1-based preorder numbers from program entry to the finding,
	// reconstructed from the lattice (witness.go).
	Path []int `json:"path,omitempty"`
}

func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s", d.Code, d.Severity)
	if d.Problem != "" {
		fmt.Fprintf(&sb, " [%s", d.Problem)
		if d.Mode != "" {
			fmt.Fprintf(&sb, "/%s", d.Mode)
		}
		sb.WriteString("]")
	}
	if d.Criterion != "" && d.Criterion != "lint" {
		fmt.Fprintf(&sb, " %s", d.Criterion)
	}
	if d.ItemName != "" {
		fmt.Fprintf(&sb, " %s", d.ItemName)
	}
	if d.Node >= 0 {
		fmt.Fprintf(&sb, " at node %d", d.Pre)
		if d.Pos != "" {
			fmt.Fprintf(&sb, " @ %s", d.Pos)
		}
	}
	fmt.Fprintf(&sb, ": %s", d.Detail)
	if len(d.Path) > 0 {
		parts := make([]string, len(d.Path))
		for i, p := range d.Path {
			parts[i] = fmt.Sprintf("%d", p)
		}
		fmt.Fprintf(&sb, " [path %s]", strings.Join(parts, "->"))
	}
	return sb.String()
}

// Stats is the work profile of one static verification, reported
// through the observability layer by the comm hook.
type Stats struct {
	// Contexts is the number of (node, frame-set) dataflow contexts the
	// analysis discovered; at least one per reachable node, more when
	// jumps enter loops sideways (reversed graphs, §5.3).
	Contexts int `json:"contexts"`
	// Iterations is the number of worklist context evaluations until
	// the fixed point.
	Iterations int `json:"iterations"`
	// SetOps counts bit-vector set operations.
	SetOps int64 `json:"set_ops"`
}

// Result aggregates the findings of one placement check.
type Result struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Stats holds the verifier work profile per problem name.
	Stats map[string]Stats `json:"stats,omitempty"`
}

// Errors returns the error-severity diagnostics.
func (r *Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Warnings returns the warning-severity diagnostics.
func (r *Result) Warnings() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == Warning {
			out = append(out, d)
		}
	}
	return out
}

// Ok reports whether no criterion was violated (warnings allowed).
func (r *Result) Ok() bool { return len(r.Errors()) == 0 }

// Sort orders diagnostics by severity, code, node, then item, for
// stable output.
func (r *Result) Sort() {
	sort.SliceStable(r.Diagnostics, func(i, j int) bool {
		a, b := r.Diagnostics[i], r.Diagnostics[j]
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Pre != b.Pre {
			return a.Pre < b.Pre
		}
		return a.Item < b.Item
	})
}

// Problem is one solved placement problem to verify: the graph it was
// solved on (forward for BEFORE, reversed for AFTER), the initial
// variables, and the solution. Name labels diagnostics ("READ",
// "WRITE").
type Problem struct {
	Name     string
	Graph    *interval.Graph
	Universe int
	Init     *core.Init
	Sol      *core.Solution
	// ItemName renders universe items for diagnostics; nil falls back
	// to "item N".
	ItemName func(int) string
}

func (p *Problem) itemName(i int) string {
	if p.ItemName != nil {
		return p.ItemName(i)
	}
	return fmt.Sprintf("item %d", i)
}

// Verify statically checks the problem's solution against C1–C3 and O1
// over all paths and returns the findings. A correct solution yields no
// error diagnostics.
func Verify(p *Problem) *Result {
	res, _ := VerifyCtx(context.Background(), p)
	return res
}

// VerifyCtx is Verify with cooperative cancellation: the fixed-point
// worklist polls ctx every few iterations and abandons the analysis
// with ctx.Err() once it is canceled (partial results are discarded —
// an unconverged lattice proves nothing).
func VerifyCtx(ctx context.Context, p *Problem) (*Result, error) {
	v := newVerifier(p)
	if err := v.runCtx(ctx); err != nil {
		return nil, err
	}
	res := &Result{
		Diagnostics: v.diags,
		Stats:       map[string]Stats{p.Name: v.stats},
	}
	res.Sort()
	return res, nil
}

// VerifyAll verifies several problems and merges their results.
func VerifyAll(problems ...*Problem) *Result {
	out, _ := VerifyAllCtx(context.Background(), problems...)
	return out
}

// VerifyAllCtx verifies several problems under one context and merges
// their results; the first cancellation aborts the remainder.
func VerifyAllCtx(ctx context.Context, problems ...*Problem) (*Result, error) {
	results := make([]*Result, 0, len(problems))
	for _, p := range problems {
		if p == nil {
			continue
		}
		r, err := VerifyCtx(ctx, p)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return Merge(results...), nil
}

// Merge combines per-problem results into one sorted Result. It is the
// join point for callers that verified the problems as independent
// concurrent tasks.
func Merge(results ...*Result) *Result {
	out := &Result{Stats: map[string]Stats{}}
	for _, r := range results {
		if r == nil {
			continue
		}
		out.Diagnostics = append(out.Diagnostics, r.Diagnostics...)
		for k, s := range r.Stats {
			out.Stats[k] = s
		}
	}
	out.Sort()
	return out
}
