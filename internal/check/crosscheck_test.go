package check_test

import (
	"math/rand"
	"testing"

	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/check"
	"givetake/internal/core"
	"givetake/internal/interval"
	"givetake/internal/progen"
)

// The crosscheck promotes the bounded path oracle of internal/core to a
// witness for the static verifier: on every corpus and generated
// program, a static pass (zero error diagnostics) must imply that
// bounded path enumeration finds no counterexample either. The two
// checkers share no equation or lattice code, so agreement is strong
// evidence that the fixed point covers the paths the oracle samples —
// and all the ones it cannot.

// randomProblem mirrors the generator of internal/core's property
// tests: a random structured program with TAKE/STEAL/GIVE scattered
// over its statement nodes.
func randomProblem(t testing.TB, seed int64) (*interval.Graph, *core.Init, int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	prog := progen.Generate(seed, progen.Config{
		Stmts:    10 + r.Intn(25),
		MaxDepth: 3,
	})
	c, err := cfg.Build(prog)
	if err != nil {
		t.Fatalf("seed %d: cfg: %v", seed, err)
	}
	g, err := interval.FromCFG(c)
	if err != nil {
		t.Fatalf("seed %d: interval: %v", seed, err)
	}
	const universe = 3
	init := core.NewInit(len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Block.Kind != cfg.KStmt {
			continue
		}
		for item := 0; item < universe; item++ {
			switch r.Intn(10) {
			case 0:
				init.AddTake(n, universe, bitset.Of(universe, item))
			case 1:
				init.AddSteal(n, universe, bitset.Of(universe, item))
			case 2:
				init.AddGive(n, universe, bitset.Of(universe, item))
			}
		}
	}
	return g, init, universe
}

// crosscheck solves one problem, runs both checkers, and asserts the
// agreement contract on the result.
func crosscheck(t *testing.T, label string, g *interval.Graph, init *core.Init, u int) {
	t.Helper()
	s := core.MustSolve(g, u, init)
	res := check.Verify(&check.Problem{Name: label, Graph: g, Universe: u, Init: init, Sol: s})
	bounded := core.Verify(s, init, core.VerifyConfig{CheckSafety: true, MaxPaths: 1500})

	for _, d := range res.Errors() {
		t.Errorf("%s: static verifier rejects solver output: %s", label, d)
	}
	if res.Ok() && len(bounded) > 0 {
		t.Errorf("%s: static pass but bounded counterexample: %v", label, bounded[0])
	}
}

// TestCrosscheckCorpus runs the agreement contract on every testdata
// program, both placement problems.
func TestCrosscheckCorpus(t *testing.T) {
	for _, file := range corpusFiles(t) {
		a := analyzeFile(t, file)
		if a.Read != nil {
			crosscheck(t, "READ "+file, a.Graph, a.ReadInit, a.Universe.Size())
		}
		if a.Write != nil {
			crosscheck(t, "WRITE "+file, a.RevGraph, a.WriteInit, a.Universe.Size())
		}
	}
}

// TestCrosscheckProgen runs the agreement contract on 200 seeded random
// programs, each in both graph orientations (BEFORE and AFTER).
func TestCrosscheckProgen(t *testing.T) {
	if testing.Short() {
		t.Skip("crosscheck corpus is slow in -short mode")
	}
	for seed := int64(0); seed < 200; seed++ {
		g, init, u := randomProblem(t, seed)
		crosscheck(t, "BEFORE", g, init, u)
		rev, err := interval.Reverse(g)
		if err != nil {
			t.Fatalf("seed %d: reverse: %v", seed, err)
		}
		crosscheck(t, "AFTER", rev, init, u)
		if t.Failed() {
			t.Fatalf("seed %d: crosscheck failed", seed)
		}
	}
}
