// Package telemetry is the production observability layer of the
// GIVE-N-TAKE service: a stdlib-only time-series metrics registry with
// a Prometheus text-exposition endpoint, end-to-end request tracing
// with a bounded ring of recent request traces, and a sampled
// structured access log.
//
// The package complements internal/obs rather than replacing it: obs
// records what happened *inside one request* (phase spans, solver
// counters) for a single report or Chrome trace, while telemetry
// aggregates *across requests* into scrapeable time series. Bridge
// connects the two — it implements obs.Collector and folds every span
// into a per-stage latency histogram and every counter into its
// declared gnt_* metric family, so the pipeline's existing
// instrumentation points feed /metrics without a second set of hooks.
//
// Three rules keep the layer production-safe:
//
//  1. The vocabulary is closed. A Registry refuses to create a metric
//     family whose name is not declared in internal/obs/names.go, so
//     dashboards and alerts can rely on the scrape schema not drifting
//     silently.
//
//  2. Counters are monotone. Counter.Add rejects negative deltas, and
//     histograms only accumulate, so "no metric goes backwards across
//     scrapes" is an enforced invariant (the chaos harness asserts it
//     under fire), gauges excepted by definition.
//
//  3. Exposition is strict. The text format written by Registry.Expose
//     round-trips through ParseExposition, the same strict parser the
//     unit tests, the chaos harness, gntbench, and the CI smoke job
//     use to validate a live scrape.
package telemetry
