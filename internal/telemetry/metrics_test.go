package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"givetake/internal/obs"
)

func TestCounterGaugeHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(obs.MetricRequestsTotal, "Requests.", "route", "status")
	c.Add(3, "/analyze", "200")
	c.Inc("/analyze", "429")
	g := reg.Gauge(obs.MetricCacheBytes, "Cache bytes.")
	g.Set(1234)
	h := reg.Histogram(obs.MetricStageDuration, "Stage wall time.", []float64{0.1, 1}, "stage")
	h.Observe(0.05, "parse")
	h.Observe(0.5, "parse")
	h.Observe(5, "parse")

	var b strings.Builder
	if err := reg.Expose(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition does not round-trip: %v\n%s", err, text)
	}
	if v, ok := fams.Value(obs.MetricRequestsTotal, map[string]string{"route": "/analyze", "status": "200"}); !ok || v != 3 {
		t.Errorf("requests_total{200} = %v, %v; want 3", v, ok)
	}
	if got := fams.Sum(obs.MetricRequestsTotal, nil); got != 4 {
		t.Errorf("sum over requests_total = %v, want 4", got)
	}
	if v, ok := fams.Value(obs.MetricCacheBytes, nil); !ok || v != 1234 {
		t.Errorf("gauge = %v, %v; want 1234", v, ok)
	}
	// cumulative buckets: le=0.1 -> 1, le=1 -> 2, le=+Inf -> 3
	for _, tc := range []struct {
		le   string
		want float64
	}{{"0.1", 1}, {"1", 2}, {"+Inf", 3}} {
		v, ok := fams.Value(obs.MetricStageDuration+"_bucket", map[string]string{"stage": "parse", "le": tc.le})
		if !ok || v != tc.want {
			t.Errorf("bucket le=%s = %v, %v; want %v", tc.le, v, ok, tc.want)
		}
	}
	if v, ok := fams.Value(obs.MetricStageDuration+"_count", map[string]string{"stage": "parse"}); !ok || v != 3 {
		t.Errorf("hist count = %v, %v; want 3", v, ok)
	}
	if v, ok := fams.Value(obs.MetricStageDuration+"_sum", map[string]string{"stage": "parse"}); !ok || math.Abs(v-5.55) > 1e-9 {
		t.Errorf("hist sum = %v, %v; want 5.55", v, ok)
	}
}

func TestUndeclaredMetricNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering an undeclared metric name did not panic")
		}
	}()
	NewRegistry().Counter("gnt_totally_new_metric_total", "drift")
}

func TestNegativeCounterDeltaPanics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(obs.MetricRequestsTotal, "Requests.")
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter delta did not panic")
		}
	}()
	c.Add(-1)
}

func TestReRegistrationIdempotentAndChecked(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(obs.MetricRequestsTotal, "Requests.", "route")
	reg.Counter(obs.MetricRequestsTotal, "Requests.", "route") // same shape: fine
	defer func() {
		if recover() == nil {
			t.Fatal("re-registration with different labels did not panic")
		}
	}()
	reg.Counter(obs.MetricRequestsTotal, "Requests.", "route", "status")
}

func TestGaugeFuncEvaluatedAtScrape(t *testing.T) {
	reg := NewRegistry()
	v := 1.0
	reg.GaugeFunc(obs.MetricInFlight, "In flight.", func() float64 { return v })
	read := func() float64 {
		var b strings.Builder
		if err := reg.Expose(&b); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseExposition(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		got, ok := fams.Value(obs.MetricInFlight, nil)
		if !ok {
			t.Fatal("gauge func family missing")
		}
		return got
	}
	if got := read(); got != 1 {
		t.Fatalf("scrape 1 = %v, want 1", got)
	}
	v = 7
	if got := read(); got != 7 {
		t.Fatalf("scrape 2 = %v, want 7 (gauge func must re-evaluate)", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(obs.MetricObsCounter, "Catch-all.", "name")
	c.Add(1, `we"ird\name`+"\n")
	var b strings.Builder
	if err := reg.Expose(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("escaped label did not round-trip: %v\n%s", err, b.String())
	}
	if v, ok := fams.Value(obs.MetricObsCounter, map[string]string{"name": `we"ird\name` + "\n"}); !ok || v != 1 {
		t.Errorf("escaped label lookup = %v, %v; want 1", v, ok)
	}
}

func TestMetricsHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(obs.MetricRequestsTotal, "Requests.").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q, want %q", got, ContentType)
	}
}

// TestDeclaredMetricNamesWellFormed pins the declared vocabulary
// itself: unique, exposition-legal names.
func TestDeclaredMetricNamesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range obs.Metrics() {
		if !nameRe.MatchString(name) {
			t.Errorf("declared metric %q is not exposition-legal", name)
		}
		if !strings.HasPrefix(name, "gnt_") {
			t.Errorf("declared metric %q does not carry the gnt_ prefix", name)
		}
		if seen[name] {
			t.Errorf("declared metric %q is duplicated", name)
		}
		seen[name] = true
	}
}
