package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"givetake/internal/obs"
)

// ContentType is the exposition content type of /metrics, the
// Prometheus text format version 0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefBuckets are the default latency histogram bounds in seconds,
// spanning the service's realistic range: ~100µs pipeline stages up to
// multi-second degraded requests. Fixed at registration — scrapes can
// always be compared across processes and restarts.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. Create with NewRegistry; all methods are safe for
// concurrent use. Family names must be declared in
// internal/obs/names.go (Metrics) — an undeclared name panics at
// registration, which is the name-drift guarantee: code cannot invent
// scrape vocabulary the repository has not written down.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

type family struct {
	name     string
	help     string
	typ      string // "counter" | "gauge" | "histogram"
	labels   []string
	buckets  []float64            // histograms only
	fn       func() float64       // gauge-func families only (unlabeled)
	seriesFn func() []GaugeSample // gauge-series-func families only (labeled)

	mu     sync.Mutex
	series map[string]*series
	order  []string // insertion order of series keys; sorted at expose
}

type series struct {
	labelVals []string
	value     float64  // counter/gauge
	counts    []uint64 // histogram: per-bucket (non-cumulative)
	infCount  uint64   // histogram: observations above the last bound
	sum       float64  // histogram
	count     uint64   // histogram
}

// register returns the named family, creating it on first use. A
// second registration must agree on type and labels; a name missing
// from the declared metric vocabulary panics.
func (r *Registry) register(name, help, typ string, buckets []float64, labels []string) *family {
	if !obs.KnownMetric(name) {
		panic(fmt.Sprintf("telemetry: metric %q is not declared in internal/obs/names.go", name))
	}
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s(%v), was %s(%v)",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		series: map[string]*series{},
	}
	if typ == "histogram" {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("telemetry: %q buckets not strictly increasing", name))
			}
		}
		f.buckets = append([]float64(nil), buckets...)
	}
	r.families[name] = f
	return f
}

// seriesFor returns (creating if needed) the series for the given
// label values. Caller must not hold f.mu.
func (f *family) seriesFor(labelVals []string) *series {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: append([]string(nil), labelVals...)}
		if f.typ == "histogram" {
			s.counts = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotone counter family handle; label values are passed
// per call in registration order.
type Counter struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) Counter {
	f := r.register(name, help, "counter", nil, labels)
	if len(labels) == 0 {
		// A label-less counter has exactly one possible series; expose
		// it as 0 from registration so scrapers see the family exists
		// and rate() works from the first increment.
		f.seriesFor(nil)
	}
	return Counter{f}
}

// Add increments the series by delta; negative deltas panic — counters
// never go backwards.
func (c Counter) Add(delta float64, labelVals ...string) {
	if delta < 0 {
		panic(fmt.Sprintf("telemetry: negative delta %v on counter %q", delta, c.f.name))
	}
	s := c.f.seriesFor(labelVals)
	c.f.mu.Lock()
	s.value += delta
	c.f.mu.Unlock()
}

// Inc adds one.
func (c Counter) Inc(labelVals ...string) { c.Add(1, labelVals...) }

// Gauge is a settable gauge family handle.
type Gauge struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) Gauge {
	return Gauge{r.register(name, help, "gauge", nil, labels)}
}

// Set replaces the series value.
func (g Gauge) Set(v float64, labelVals ...string) {
	s := g.f.seriesFor(labelVals)
	g.f.mu.Lock()
	s.value = v
	g.f.mu.Unlock()
}

// Add adjusts the series value (gauges may go down).
func (g Gauge) Add(delta float64, labelVals ...string) {
	s := g.f.seriesFor(labelVals)
	g.f.mu.Lock()
	s.value += delta
	g.f.mu.Unlock()
}

// GaugeFunc registers an unlabeled gauge evaluated at scrape time —
// the right shape for "current occupancy" values that already live in
// an atomic somewhere (in-flight requests, cache bytes, pool busy).
// Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeSample is one labeled sample produced by a GaugeSeriesFunc
// callback: the label values (in registration order) and the value.
type GaugeSample struct {
	LabelVals []string
	Value     float64
}

// GaugeSeriesFunc registers a labeled gauge family whose entire series
// set is produced by fn at scrape time — the labeled sibling of
// GaugeFunc, for occupancy values that exist per member of a small
// fixed set (pipeline stages, shards). Samples render sorted by label
// values; a sample whose label count disagrees with the registration
// panics at scrape, same as a mismatched seriesFor call would.
// Re-registering replaces the callback.
func (r *Registry) GaugeSeriesFunc(name, help string, labels []string, fn func() []GaugeSample) {
	f := r.register(name, help, "gauge", nil, labels)
	f.mu.Lock()
	f.seriesFn = fn
	f.mu.Unlock()
}

// Histogram is a fixed-bucket histogram family handle.
type Histogram struct{ f *family }

// Histogram registers (or fetches) a histogram family; nil or empty
// buckets take DefBuckets. Buckets are upper bounds in strictly
// increasing order; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) Histogram {
	return Histogram{r.register(name, help, "histogram", buckets, labels)}
}

// Observe records one value.
func (h Histogram) Observe(v float64, labelVals ...string) {
	s := h.f.seriesFor(labelVals)
	h.f.mu.Lock()
	placed := false
	for i, b := range h.f.buckets {
		if v <= b {
			s.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		s.infCount++
	}
	s.sum += v
	s.count++
	h.f.mu.Unlock()
}

// Expose writes the registry in Prometheus text exposition format:
// families sorted by name, one HELP and one TYPE line each, series
// sorted by label values, histograms rendered as cumulative _bucket
// series plus _sum and _count.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.expose(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) expose(b *strings.Builder) {
	f.mu.Lock()
	defer f.mu.Unlock()

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)

	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.fn()))
		return
	}
	if f.seriesFn != nil {
		samples := f.seriesFn()
		sort.Slice(samples, func(i, j int) bool {
			return strings.Join(samples[i].LabelVals, "\x00") < strings.Join(samples[j].LabelVals, "\x00")
		})
		for _, s := range samples {
			if len(s.LabelVals) != len(f.labels) {
				panic(fmt.Sprintf("telemetry: metric %q sample has %d label values, want %d",
					f.name, len(s.LabelVals), len(f.labels)))
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name,
				labelString(f.labels, s.LabelVals, "", ""), formatValue(s.Value))
		}
		return
	}
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	for _, key := range keys {
		s := f.series[key]
		switch f.typ {
		case "histogram":
			cum := uint64(0)
			for i, c := range s.counts {
				cum += c
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelVals, "le", formatValue(f.buckets[i])), cum)
			}
			cum += s.infCount
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, s.labelVals, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				labelString(f.labels, s.labelVals, "", ""), formatValue(s.sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				labelString(f.labels, s.labelVals, "", ""), s.count)
		default:
			fmt.Fprintf(b, "%s%s %s\n", f.name,
				labelString(f.labels, s.labelVals, "", ""), formatValue(s.value))
		}
	}
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram le label); empty when there are no labels at all.
func labelString(keys, vals []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// Handler serves the registry as a /metrics endpoint with the explicit
// exposition Content-Type. It answers GET (and HEAD with no body) and
// is intentionally independent of service readiness — scraping must
// work while a node is still warming from its journal.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		_ = r.Expose(w)
	})
}
