package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Family is one parsed metric family of an exposition document.
type Family struct {
	Name string
	Help string
	Type string // counter | gauge | histogram
	// Samples are the family's raw samples in document order. For a
	// histogram they include the _bucket/_sum/_count series.
	Samples []Sample
}

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name (may carry a _bucket/_sum/_count
	// suffix for histogram families).
	Name   string
	Labels map[string]string
	Value  float64
}

// Families is a parsed exposition document keyed by family name.
type Families map[string]*Family

// ParseExposition is the strict Prometheus text-format parser used by
// the unit tests, the chaos soak's invariant checks, gntbench, and the
// CI scrape smoke. It rejects what a lenient scraper would shrug off:
//
//   - a family declared (TYPE) more than once, or samples for a family
//     that was never declared;
//   - samples interleaved across family blocks;
//   - duplicate series (same sample name and label set);
//   - malformed names, label syntax, escapes, or values;
//   - histogram _bucket series without an le label;
//   - timestamps (this codebase never emits them).
func ParseExposition(r io.Reader) (Families, error) {
	fams := Families{}
	var cur *Family
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	seen := map[string]bool{}       // series dedup: name + sorted labels
	declared := map[string]bool{}   // family blocks already closed
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		fail := func(format string, args ...any) (Families, error) {
			return nil, fmt.Errorf("line %d: %s (%q)", lineno, fmt.Sprintf(format, args...), line)
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, help, _ := strings.Cut(rest, " ")
			if !nameRe.MatchString(name) {
				return fail("HELP with invalid metric name %q", name)
			}
			if f, ok := fams[name]; ok && f.Help != "" {
				return fail("duplicate HELP for %q", name)
			}
			if fams[name] == nil {
				fams[name] = &Family{Name: name}
			}
			fams[name].Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				return fail("malformed TYPE line")
			}
			name, typ := parts[0], parts[1]
			if !nameRe.MatchString(name) {
				return fail("TYPE with invalid metric name %q", name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fail("unknown metric type %q", typ)
			}
			if f, ok := fams[name]; ok && f.Type != "" {
				return fail("duplicate TYPE for %q", name)
			}
			if declared[name] {
				return fail("family %q re-opened after its block closed", name)
			}
			if fams[name] == nil {
				fams[name] = &Family{Name: name}
			}
			fams[name].Type = typ
			if cur != nil && cur != fams[name] {
				declared[cur.Name] = true
			}
			cur = fams[name]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal and ignored
		}

		s, err := parseSample(line)
		if err != nil {
			return fail("%v", err)
		}
		famName := familyOf(s.Name)
		f, ok := fams[famName]
		if !ok || f.Type == "" {
			return fail("sample %q without a preceding TYPE declaration", s.Name)
		}
		if f != cur {
			return fail("sample %q outside its family block (interleaved families)", s.Name)
		}
		if f.Type == "histogram" && strings.HasSuffix(s.Name, "_bucket") {
			if _, ok := s.Labels["le"]; !ok {
				return fail("histogram bucket without le label")
			}
		}
		key := seriesKey(s)
		if seen[key] {
			return fail("duplicate series %s", key)
		}
		seen[key] = true
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// familyOf strips the histogram sample suffixes off a sample name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

func seriesKey(s Sample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, "{%s=%q}", k, s.Labels[k])
	}
	return b.String()
}

// parseSample parses `name{k="v",...} value` with strict escaping and
// no trailing tokens (timestamps are rejected).
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("sample does not start with a metric name")
	}
	s.Name = line[:i]
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return s, fmt.Errorf("unterminated label set")
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				return s, fmt.Errorf("label without '='")
			}
			lname := line[i:j]
			if !labelRe.MatchString(lname) {
				return s, fmt.Errorf("invalid label name %q", lname)
			}
			if _, dup := s.Labels[lname]; dup {
				return s, fmt.Errorf("duplicate label %q", lname)
			}
			i = j + 1
			if i >= len(line) || line[i] != '"' {
				return s, fmt.Errorf("label value of %q not quoted", lname)
			}
			i++
			var val strings.Builder
			for {
				if i >= len(line) {
					return s, fmt.Errorf("unterminated label value for %q", lname)
				}
				c := line[i]
				if c == '"' {
					i++
					break
				}
				if c == '\\' {
					if i+1 >= len(line) {
						return s, fmt.Errorf("dangling escape in label value")
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("invalid escape \\%c in label value", line[i+1])
					}
					i += 2
					continue
				}
				val.WriteByte(c)
				i++
			}
			s.Labels[lname] = val.String()
			if i < len(line) && line[i] == ',' {
				i++
			} else if i >= len(line) || line[i] != '}' {
				return s, fmt.Errorf("expected ',' or '}' after label value")
			}
		}
	}
	rest := strings.TrimLeft(line[i:], " ")
	if rest == "" {
		return s, fmt.Errorf("sample without a value")
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return s, fmt.Errorf("trailing tokens after value (timestamps are rejected)")
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parseValue(tok string) (float64, error) {
	switch tok {
	case "+Inf":
		return inf(1), nil
	case "-Inf":
		return inf(-1), nil
	case "NaN":
		return nan(), nil
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", tok)
	}
	return v, nil
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func inf(sign int) float64 {
	v := 0.0
	if sign > 0 {
		return 1 / v
	}
	return -1 / v
}

func nan() float64 { v := 0.0; return v / v }

// Value returns the value of the series with the exact sample name and
// label set (order-insensitive), and whether it exists.
func (fs Families) Value(sample string, labels map[string]string) (float64, bool) {
	f, ok := fs[familyOf(sample)]
	if !ok {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Name != sample || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample whose name equals name exactly and whose
// labels include the given subset. name may be a plain family name or
// a histogram sample name (family + _bucket/_sum/_count); either way
// only samples with that exact name contribute, so summing a family
// name never mixes in its histogram sub-series. A nil subset sums all
// matching samples.
func (fs Families) Sum(name string, subset map[string]string) float64 {
	f, ok := fs[familyOf(name)]
	if !ok {
		return 0
	}
	total := 0.0
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range subset {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			total += s.Value
		}
	}
	return total
}
