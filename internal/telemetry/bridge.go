package telemetry

import (
	"time"

	"givetake/internal/obs"
)

// Bridge folds the pipeline's existing obs instrumentation into the
// metrics registry: it implements obs.Collector, turning every span
// into an observation on the per-stage latency histogram
// (gnt_stage_duration_seconds{stage=<span name>}) and every counter
// into its declared gnt_* family. One Bridge serves the whole process;
// hand it to the engine and journal directly, and Tee it with each
// request's private recorder so per-request reports and process-wide
// time series come from the same instrumentation points.
type Bridge struct {
	stages    Histogram // by (stage)
	admission Counter   // by (outcome)
	cache     Counter   // by (event)
	pipeline  Counter   // by (stage)
	journal   map[string]Counter
	plain     map[string]Counter // obs counter name -> dedicated family
	other     Counter            // catch-all, by (name)
}

// pipelineStageOf maps each per-stage pipeline counter to the stage
// label its increments carry on gnt_pipeline_items_total.
var pipelineStageOf = map[string]string{
	obs.CounterPipelineParse:           obs.SpanParse,
	obs.CounterPipelineCFGBuild:        obs.SpanCFGBuild,
	obs.CounterPipelineIntervalReduce:  obs.SpanIntervalReduce,
	obs.CounterPipelineSectionUniverse: obs.SpanSectionUniverse,
	obs.CounterPipelineSolve:           "solve",
	obs.CounterPipelineCheck:           obs.SpanCheck,
	obs.CounterPipelineRender:          "render",
}

// NewBridge registers the bridged families on reg and returns the
// collector.
func NewBridge(reg *Registry) *Bridge {
	b := &Bridge{
		stages: reg.Histogram(obs.MetricStageDuration,
			"Wall time of one pipeline/engine/journal stage span.", nil, "stage"),
		admission: reg.Counter(obs.MetricAdmissionTotal,
			"Admission-queue outcomes.", "outcome"),
		cache: reg.Counter(obs.MetricCacheEvents,
			"Result-cache events.", "event"),
		pipeline: reg.Counter(obs.MetricPipelineItems,
			"Programs serviced per pipeline stage.", "stage"),
		other: reg.Counter(obs.MetricObsCounter,
			"Declared obs counters without a dedicated family.", "name"),
	}
	b.plain = map[string]Counter{
		obs.CounterPipelineShed: reg.Counter(obs.MetricPipelineShed,
			"Pipeline tasks shed because their context died in-flight."),
		obs.CounterPoolTask: reg.Counter(obs.MetricPoolTasks,
			"Tasks executed by the engine worker pool."),
		obs.CounterPoolPanic: reg.Counter(obs.MetricPoolPanics,
			"Pool tasks that panicked and were converted to errors."),
		obs.CounterJournalAppend: reg.Counter(obs.MetricJournalAppended,
			"Records enqueued for journal group commit."),
		obs.CounterJournalSealed: reg.Counter(obs.MetricJournalSealedBatches,
			"Journal batches sealed (Merkle root written, fsynced)."),
		obs.CounterJournalSealedRecords: reg.Counter(obs.MetricJournalSealedRecords,
			"Records inside sealed journal batches."),
		obs.CounterJournalReplayed: reg.Counter(obs.MetricJournalReplayed,
			"Records verified and delivered by journal replay."),
		obs.CounterJournalTornTail: reg.Counter(obs.MetricJournalTornTails,
			"Journal segments that ended mid-batch (crash shape)."),
	}
	jc := reg.Counter(obs.MetricJournalCorrupt,
		"Journal corruption dropped at replay.", "kind")
	b.journal = map[string]Counter{
		obs.CounterJournalCorruptBatch:  jc,
		obs.CounterJournalCorruptRecord: jc,
	}
	return b
}

// BeginSpan implements obs.Collector: the span's wall time lands in
// the stage histogram under its canonical name when it ends.
func (b *Bridge) BeginSpan(name string, kv ...any) obs.EndFunc {
	start := time.Now()
	return func(kv ...any) {
		b.stages.Observe(time.Since(start).Seconds(), name)
	}
}

// Count implements obs.Collector, routing each declared counter to its
// metric family.
func (b *Bridge) Count(name string, delta int64) {
	if delta <= 0 {
		return // counters are monotone; zero is a no-op
	}
	d := float64(delta)
	switch name {
	case obs.CounterCacheHit:
		b.cache.Add(d, "hit")
	case obs.CounterCacheMiss:
		b.cache.Add(d, "miss")
	case obs.CounterCacheFollow:
		b.cache.Add(d, "follow")
	case obs.CounterCacheEvict:
		b.cache.Add(d, "evict")
	case obs.CounterAdmitWon:
		b.admission.Add(d, "won")
	case obs.CounterAdmitShed:
		b.admission.Add(d, "shed")
	case obs.CounterJournalCorruptBatch:
		b.journal[name].Add(d, "batch")
	case obs.CounterJournalCorruptRecord:
		b.journal[name].Add(d, "record")
	default:
		if stage, ok := pipelineStageOf[name]; ok {
			b.pipeline.Add(d, stage)
			return
		}
		if c, ok := b.plain[name]; ok {
			c.Add(d)
			return
		}
		b.other.Add(d, name)
	}
}
