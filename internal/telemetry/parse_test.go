package telemetry

import (
	"strings"
	"testing"
)

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"duplicate TYPE", "# TYPE a counter\na 1\n# TYPE a counter\na 2\n"},
		{"duplicate family block", "# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# TYPE a gauge\n"},
		{"sample without TYPE", "a{x=\"1\"} 1\n"},
		{"duplicate series", "# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n"},
		{"bad value", "# TYPE a counter\na one\n"},
		{"timestamp rejected", "# TYPE a counter\na 1 1700000000\n"},
		{"unterminated labels", "# TYPE a counter\na{x=\"1\" 1\n"},
		{"unquoted label value", "# TYPE a counter\na{x=1} 1\n"},
		{"bad escape", "# TYPE a counter\na{x=\"\\t\"} 1\n"},
		{"bad label name", "# TYPE a counter\na{0x=\"1\"} 1\n"},
		{"duplicate label", "# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n"},
		{"missing value", "# TYPE a counter\na{x=\"1\"}\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket{stage=\"p\"} 1\n"},
		{"interleaved families", "# TYPE a counter\n# TYPE b counter\na 1\n"},
		{"unknown type", "# TYPE a exotic\na 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseExposition(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: strict parser accepted malformed input:\n%s", tc.name, tc.doc)
		}
	}
}

func TestParseAcceptsWellFormed(t *testing.T) {
	doc := `# HELP gnt_http_requests_total Requests.
# TYPE gnt_http_requests_total counter
gnt_http_requests_total{route="/analyze",status="200"} 41
gnt_http_requests_total{route="/analyze",status="429"} 1
# HELP gnt_stage_duration_seconds Stage wall time.
# TYPE gnt_stage_duration_seconds histogram
gnt_stage_duration_seconds_bucket{stage="parse",le="0.1"} 3
gnt_stage_duration_seconds_bucket{stage="parse",le="+Inf"} 4
gnt_stage_duration_seconds_sum{stage="parse"} 0.42
gnt_stage_duration_seconds_count{stage="parse"} 4
# TYPE gnt_ready gauge
gnt_ready 1
`
	fams, err := ParseExposition(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	if got := fams.Sum("gnt_http_requests_total", map[string]string{"route": "/analyze"}); got != 42 {
		t.Errorf("sum = %v, want 42", got)
	}
	if v, ok := fams.Value("gnt_stage_duration_seconds_bucket",
		map[string]string{"stage": "parse", "le": "+Inf"}); !ok || v != 4 {
		t.Errorf("+Inf bucket = %v, %v", v, ok)
	}
	if fams["gnt_http_requests_total"].Help != "Requests." {
		t.Errorf("help = %q", fams["gnt_http_requests_total"].Help)
	}
}

func TestParseSpecialValues(t *testing.T) {
	doc := "# TYPE g gauge\ng{k=\"inf\"} +Inf\ng{k=\"neg\"} -Inf\ng{k=\"sci\"} 1.5e-3\n"
	fams, err := ParseExposition(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := fams.Value("g", map[string]string{"k": "sci"}); v != 0.0015 {
		t.Errorf("scientific value = %v", v)
	}
}
