package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceIDGenerationAndValidation(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("two generated trace IDs collide: %s", a)
	}
	if !ValidTraceID(a) {
		t.Errorf("generated ID %q fails validation", a)
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "sp ace", "new\nline", `quo"te`} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true", bad)
		}
	}
	ctx := WithTraceID(context.Background(), a)
	if got := TraceIDFrom(ctx); got != a {
		t.Errorf("TraceIDFrom = %q, want %q", got, a)
	}
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Errorf("empty context trace = %q", got)
	}
}

func TestTraceRingKeepsNewestN(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(RequestTrace{ID: string(rune('a' + i))})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring kept %d, want 3", len(snap))
	}
	// newest first: e, d, c
	for i, want := range []string{"e", "d", "c"} {
		if snap[i].ID != want {
			t.Errorf("snap[%d] = %q, want %q", i, snap[i].ID, want)
		}
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
	if _, ok := r.Find("a"); ok {
		t.Error("overwritten trace still findable")
	}
	if tr, ok := r.Find("d"); !ok || tr.ID != "d" {
		t.Error("retained trace not findable")
	}
}

func TestTraceRingHandlerFormats(t *testing.T) {
	r := NewTraceRing(8)
	r.Add(RequestTrace{
		ID: "abc123", Route: "/analyze", Method: "POST", Start: time.Now(),
		DurationMS: 1.5, Status: 200, Cache: "miss", Rung: "full",
		Attempts: []TraceAttempt{{Rung: "full", Outcome: "ok", DurationMS: 1.2}},
		Spans:    []TraceSpan{{Name: "cfg-build", WallMS: 0.3}},
	})
	r.Add(RequestTrace{ID: "zzz", Route: "/analyze", Method: "POST", Status: 499})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("text Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{"trace=abc123", "rung=full", "attempt full", "span cfg-build"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/requests?format=json&id=abc123")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var out struct {
		Total  int64          `json:"total"`
		Traces []RequestTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 2 || len(out.Traces) != 1 || out.Traces[0].ID != "abc123" {
		t.Errorf("json filter: total=%d traces=%+v", out.Total, out.Traces)
	}
	if len(out.Traces[0].Attempts) != 1 || out.Traces[0].Attempts[0].Outcome != "ok" {
		t.Errorf("attempts did not survive JSON: %+v", out.Traces[0].Attempts)
	}
}

func TestAccessLogSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf, 3)
	for i := 0; i < 9; i++ {
		l.Log(AccessEntry{Trace: "t", Route: "/analyze", Status: 200})
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 3 {
		t.Errorf("every-3 sampling wrote %d lines from 9 requests, want 3", lines)
	}
	var e AccessEntry
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &e); err != nil {
		t.Fatalf("access line is not JSON: %v", err)
	}
	if e.Route != "/analyze" {
		t.Errorf("entry = %+v", e)
	}

	var nilLog *AccessLog
	nilLog.Log(AccessEntry{}) // must not panic
	if NewAccessLog(nil, 1) != nil {
		t.Error("nil writer should produce nil log")
	}
}
