package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying one request's trace ID. A
// client may supply its own (to stitch the service into a wider
// trace); the service generates one otherwise, and always echoes the
// effective ID on the response, every span record, and the access log,
// so one request can be followed through serve -> engine -> ladder ->
// journal post-hoc.
const TraceHeader = "X-Gnt-Trace"

// traceIDRe bounds what we accept from the wire: 1-64 URL-safe
// characters. Anything else is replaced with a generated ID rather
// than propagated into logs.
var traceIDRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

type traceKey struct{}

// NewTraceID returns a fresh 16-byte random trace ID in hex. It never
// fails: if the system's entropy source does, a process-unique counter
// ID is issued instead (uniqueness matters here, secrecy does not).
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("fallback-%d", fallbackID.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var fallbackID atomic.Int64

// ValidTraceID reports whether a wire-supplied trace ID is acceptable
// to propagate.
func ValidTraceID(id string) bool { return traceIDRe.MatchString(id) }

// WithTraceID attaches a trace ID to the context.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom returns the context's trace ID, or "" when none is
// attached.
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// TraceAttempt is one degradation-ladder attempt inside a request
// trace.
type TraceAttempt struct {
	Rung       string  `json:"rung"`
	Outcome    string  `json:"outcome"`
	Detail     string  `json:"detail,omitempty"`
	DurationMS float64 `json:"duration_ms"`
}

// TraceSpan is one pipeline-stage span inside a request trace.
type TraceSpan struct {
	Name   string  `json:"name"`
	Depth  int     `json:"depth"`
	WallMS float64 `json:"wall_ms"`
}

// RequestTrace is one complete served request, as kept in the trace
// ring and rendered at /debug/requests.
type RequestTrace struct {
	ID         string         `json:"id"`
	Route      string         `json:"route"`
	Method     string         `json:"method"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Status     int            `json:"status"`
	Cache      string         `json:"cache,omitempty"`
	Rung       string         `json:"rung,omitempty"`
	Code       string         `json:"code,omitempty"`
	Attempts   []TraceAttempt `json:"attempts,omitempty"`
	Spans      []TraceSpan    `json:"spans,omitempty"`
}

// DefaultTraceRing is the ring capacity when a TraceRing is created
// with n <= 0.
const DefaultTraceRing = 128

// TraceRing keeps the last N complete request traces in a fixed ring.
// Add is cheap and lock-scoped; Snapshot copies. The ring answers the
// question logs cannot: "which rung served request X, and why" for any
// recent request, without grepping anything.
type TraceRing struct {
	mu    sync.Mutex
	buf   []RequestTrace
	next  int
	total int64
}

// NewTraceRing returns a ring holding the last n traces.
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceRing
	}
	return &TraceRing{buf: make([]RequestTrace, 0, n)}
}

// Add records one completed request.
func (r *TraceRing) Add(t RequestTrace) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total reports how many traces were ever added (including ones the
// ring has since overwritten).
func (r *TraceRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained traces, newest first.
func (r *TraceRing) Snapshot() []RequestTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestTrace, 0, len(r.buf))
	// newest is the element just before next (when full) or the tail
	for i := 0; i < len(r.buf); i++ {
		idx := r.next - 1 - i
		for idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// Find returns the retained trace with the given ID, newest match
// first.
func (r *TraceRing) Find(id string) (RequestTrace, bool) {
	for _, t := range r.Snapshot() {
		if t.ID == id {
			return t, true
		}
	}
	return RequestTrace{}, false
}

// Handler serves the ring at /debug/requests: a human-readable text
// rendering by default, JSON with ?format=json (or an Accept header
// preferring application/json), and ?id=<trace-id> to select one
// trace. Like /metrics it is served regardless of readiness.
func (r *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		traces := r.Snapshot()
		if id := req.URL.Query().Get("id"); id != "" {
			kept := traces[:0]
			for _, t := range traces {
				if t.ID == id {
					kept = append(kept, t)
				}
			}
			traces = kept
		}
		wantJSON := req.URL.Query().Get("format") == "json"
		if !wantJSON {
			accept := req.Header.Get("Accept")
			wantJSON = accept == "application/json"
		}
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Total  int64          `json:"total"`
				Traces []RequestTrace `json:"traces"`
			}{r.Total(), traces})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "last %d of %d traced requests (newest first)\n\n", len(traces), r.Total())
		for _, t := range traces {
			writeTraceText(w, t)
		}
	})
}

func writeTraceText(w io.Writer, t RequestTrace) {
	fmt.Fprintf(w, "%s %s %s status=%d %.3fms trace=%s",
		t.Start.UTC().Format(time.RFC3339Nano), t.Method, t.Route, t.Status, t.DurationMS, t.ID)
	if t.Cache != "" {
		fmt.Fprintf(w, " cache=%s", t.Cache)
	}
	if t.Rung != "" {
		fmt.Fprintf(w, " rung=%s", t.Rung)
	}
	if t.Code != "" {
		fmt.Fprintf(w, " code=%s", t.Code)
	}
	fmt.Fprintln(w)
	for _, a := range t.Attempts {
		fmt.Fprintf(w, "  attempt %-8s %-12s %.3fms", a.Rung, a.Outcome, a.DurationMS)
		if a.Detail != "" {
			fmt.Fprintf(w, "  %s", a.Detail)
		}
		fmt.Fprintln(w)
	}
	for _, s := range t.Spans {
		fmt.Fprintf(w, "  span %*s%-20s %.3fms\n", s.Depth*2, "", s.Name, s.WallMS)
	}
	fmt.Fprintln(w)
}

// AccessEntry is one structured access-log line.
type AccessEntry struct {
	Time       string  `json:"time"`
	Trace      string  `json:"trace"`
	Method     string  `json:"method"`
	Route      string  `json:"route"`
	Status     int     `json:"status"`
	DurationMS float64 `json:"duration_ms"`
	Cache      string  `json:"cache,omitempty"`
	Rung       string  `json:"rung,omitempty"`
	Code       string  `json:"code,omitempty"`
}

// AccessLog writes one JSON line per sampled request. Sampling is
// deterministic (every Nth request), so under overload the log's
// growth rate is a constant fraction of traffic rather than a second
// overload. A nil *AccessLog drops everything.
type AccessLog struct {
	mu    sync.Mutex
	w     io.Writer
	every int64
	n     int64
}

// NewAccessLog logs every nth request to w (n <= 1 logs all). A nil
// writer returns a nil log, which is safe to use.
func NewAccessLog(w io.Writer, every int) *AccessLog {
	if w == nil {
		return nil
	}
	if every < 1 {
		every = 1
	}
	return &AccessLog{w: w, every: int64(every)}
}

// Log emits the entry if it falls on the sample. Safe on nil.
func (l *AccessLog) Log(e AccessEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
	if (l.n-1)%l.every != 0 {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	_, _ = l.w.Write(b)
}
