package telemetry

import (
	"strings"
	"testing"

	"givetake/internal/obs"
)

func scrape(t *testing.T, reg *Registry) Families {
	t.Helper()
	var b strings.Builder
	if err := reg.Expose(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("bridge exposition does not round-trip: %v\n%s", err, b.String())
	}
	return fams
}

func TestBridgeSpansLandInStageHistogram(t *testing.T) {
	reg := NewRegistry()
	br := NewBridge(reg)

	end := br.BeginSpan(obs.SpanCFGBuild)
	end()
	obs.Begin(br, obs.SpanParse)() // via the obs helper too

	fams := scrape(t, reg)
	for _, stage := range []string{obs.SpanCFGBuild, obs.SpanParse} {
		v, ok := fams.Value(obs.MetricStageDuration+"_count", map[string]string{"stage": stage})
		if !ok || v != 1 {
			t.Errorf("stage %q count = %v, %v; want 1", stage, v, ok)
		}
	}
}

func TestBridgeCounterRouting(t *testing.T) {
	reg := NewRegistry()
	br := NewBridge(reg)

	br.Count(obs.CounterCacheHit, 2)
	br.Count(obs.CounterCacheMiss, 1)
	br.Count(obs.CounterCacheEvict, 3)
	br.Count(obs.CounterAdmitWon, 5)
	br.Count(obs.CounterAdmitShed, 1)
	br.Count(obs.CounterPoolTask, 4)
	br.Count(obs.CounterJournalCorruptBatch, 1)
	br.Count(obs.CounterJournalCorruptRecord, 2)
	br.Count(obs.CounterCacheHit, 0)  // no-op
	br.Count(obs.CounterCacheHit, -5) // monotone: ignored, must not panic

	fams := scrape(t, reg)
	checks := []struct {
		metric string
		labels map[string]string
		want   float64
	}{
		{obs.MetricCacheEvents, map[string]string{"event": "hit"}, 2},
		{obs.MetricCacheEvents, map[string]string{"event": "miss"}, 1},
		{obs.MetricCacheEvents, map[string]string{"event": "evict"}, 3},
		{obs.MetricAdmissionTotal, map[string]string{"outcome": "won"}, 5},
		{obs.MetricAdmissionTotal, map[string]string{"outcome": "shed"}, 1},
		{obs.MetricPoolTasks, nil, 4},
		{obs.MetricJournalCorrupt, map[string]string{"kind": "batch"}, 1},
		{obs.MetricJournalCorrupt, map[string]string{"kind": "record"}, 2},
	}
	for _, c := range checks {
		if v, ok := fams.Value(c.metric, c.labels); !ok || v != c.want {
			t.Errorf("%s%v = %v, %v; want %v", c.metric, c.labels, v, ok, c.want)
		}
	}
}

func TestBridgeUnknownCounterFallsBack(t *testing.T) {
	reg := NewRegistry()
	br := NewBridge(reg)
	br.Count("some.future.counter", 7)
	fams := scrape(t, reg)
	if v, ok := fams.Value(obs.MetricObsCounter, map[string]string{"name": "some.future.counter"}); !ok || v != 7 {
		t.Errorf("catch-all counter = %v, %v; want 7", v, ok)
	}
}

func TestTeeFansOutToBridgeAndRecorder(t *testing.T) {
	reg := NewRegistry()
	br := NewBridge(reg)
	rec := obs.NewRecorder(obs.Config{})
	col := obs.Tee(rec, br)

	obs.Begin(col, obs.SpanSolveRead)()
	col.Count(obs.CounterCacheHit, 1)

	// Recorder branch saw the span.
	found := false
	for _, s := range rec.Spans() {
		if s.Name == obs.SpanSolveRead {
			found = true
		}
	}
	if !found {
		t.Error("recorder branch of Tee missed the span")
	}
	// Bridge branch fed the histogram and cache counter.
	fams := scrape(t, reg)
	if v, ok := fams.Value(obs.MetricStageDuration+"_count", map[string]string{"stage": obs.SpanSolveRead}); !ok || v != 1 {
		t.Errorf("bridge branch stage count = %v, %v; want 1", v, ok)
	}
	if v, ok := fams.Value(obs.MetricCacheEvents, map[string]string{"event": "hit"}); !ok || v != 1 {
		t.Errorf("bridge branch cache hit = %v, %v; want 1", v, ok)
	}
}
