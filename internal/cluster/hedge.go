package cluster

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// latWindow is how many successful attempt latencies the rolling p99
// remembers. Small enough that the hedge delay tracks regime changes
// (a node going slow) within a few hundred requests, large enough that
// one outlier cannot move the tail estimate.
const latWindow = 512

// minHedgeSamples is how many observations the tracker wants before it
// trusts its p99; below it the configured floor is used, so a cold
// router never hedges on noise.
const minHedgeSamples = 20

// latTracker keeps a rolling window of successful attempt latencies
// and answers "what delay says the primary is probably in trouble" —
// the hedged-request trigger. Hedging after the rolling p99 means at
// most ~1% of requests pay the second copy, the classic tail-latency
// bound.
type latTracker struct {
	mu   sync.Mutex // guards ring, next, n
	ring [latWindow]time.Duration
	next int
	n    int
}

func (l *latTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.ring[l.next] = d
	l.next = (l.next + 1) % latWindow
	if l.n < latWindow {
		l.n++
	}
	l.mu.Unlock()
}

// p99 returns the rolling 99th percentile and whether enough samples
// back it.
func (l *latTracker) p99() (time.Duration, bool) {
	l.mu.Lock()
	n := l.n
	buf := make([]time.Duration, n)
	copy(buf, l.ring[:n])
	l.mu.Unlock()
	if n < minHedgeSamples {
		return 0, false
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(n-1)*99/100], true
}

// hedgeDelay is the current trigger: the rolling p99 clamped to
// [min, max], or min while the window is still cold.
func (l *latTracker) hedgeDelay(min, max time.Duration) time.Duration {
	d, ok := l.p99()
	if !ok || d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

// nextHedgeDelay is the delay before this request arms its hedge: the
// adaptive base from the latency tracker plus jitter drawn uniformly
// from [0, base/4] so a burst of simultaneous requests does not fire
// all of its hedges in the same instant. The jitter comes from the
// router's seeded lockedRand, so two routers built with the same
// Config.Seed produce identical delay sequences — reproducibility the
// simulation harness and the determinism tests both rely on.
func (r *Router) nextHedgeDelay() time.Duration {
	base := r.lat.hedgeDelay(r.cfg.HedgeMin, r.cfg.HedgeMax)
	return base + time.Duration(r.rng.Int63n(int64(base)/4+1))
}

// backoffDelay is the wait before failing over to the next replica
// after attempt i (0-based) failed: base·2^i saturating at max —
// mirroring netsim's overflow-guarded shift (clamp as soon as another
// doubling could exceed the cap) — plus jitter drawn uniformly from
// [0, delay/2] so synchronized routers spread their retries.
func backoffDelay(base, max time.Duration, attempt int, rng *lockedRand) time.Duration {
	b := base
	for i := 0; i < attempt; i++ {
		if b > max>>1 {
			b = max
			break
		}
		b <<= 1
	}
	if b > max {
		b = max
	}
	return b + time.Duration(rng.Int63n(int64(b)/2+1))
}

// lockedRand is a mutex-guarded rand.Rand: the router draws jitter
// from concurrent request goroutines, and rand.Rand is not safe for
// concurrent use.
type lockedRand struct {
	mu  sync.Mutex // guards rng
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (r *lockedRand) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Int63n(n)
}
