// Package cluster is the fault-tolerant front door of a sharded
// GIVE-N-TAKE analysis cluster: a stdlib-only HTTP router that fronts
// N `gnt -mode serve` nodes and survives losing any of them.
//
// Routing is content-addressed. Every request is keyed by exactly the
// cache key the nodes themselves use (serve.CacheKeyFor, a SHA-256
// over source + execution parameters), and the key rendezvous-hashes
// (highest random weight) to an ordered replica set of K nodes. HRW
// gives the two properties a cache tier needs at scale-out: every
// router agrees on a key's replica set with no shared state, and
// adding or removing a node only moves the keys that hashed to it —
// the rest of the working set keeps hitting warm caches.
//
// Failure handling lifts the repo's message-level robustness moves
// (netsim's bounded saturating backoff, PR 1) and request-level moves
// (admission and the degradation ladder, PRs 4–5) to the node level:
//
//   - failover: a connect error, timeout, or 5xx sends the request
//     down the replica set with saturating-shift backoff + jitter;
//   - hedging: after a rolling-p99 delay, a second copy of a slow
//     request goes to the next replica and the first answer wins,
//     the loser is canceled — Eijkhout's "hide latency by overlapping
//     alternatives" applied to request routing;
//   - circuit breaking: active /readyz probes and passive in-band
//     errors feed a per-node closed → open → half-open breaker, so a
//     dead node stops costing connect timeouts within a probe cycle;
//   - drain awareness: a node answering /readyz 503 with reason
//     "draining" (or "warming") is alive but declining — it leaves
//     the available set without tripping the breaker, and its
//     in-flight work finishes on the node.
//
// The router serves its own /healthz (per-node breaker state, replica
// balance map, failover/hedge counters), /readyz, /metrics (gnt_route_*
// families through internal/telemetry), and /debug/requests (trace
// ring with one entry per attempt, sharing X-Gnt-Trace IDs with the
// nodes so a failed-over request reconstructs end-to-end).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"givetake/internal/comm"
	"givetake/internal/engine"
	"givetake/internal/obs"
	"givetake/internal/serve"
	"givetake/internal/telemetry"
)

// RouteHeader names the node that answered a routed request and how
// many forward attempts it took, e.g. "127.0.0.1:8081;attempts=2" (a
// ";hedged" suffix marks a hedge win). Together with the echoed
// X-Gnt-Trace ID it lets a client see a failover without reading any
// router state.
const RouteHeader = "X-Gnt-Route"

// Defaults for the zero Config.
const (
	DefaultReplicas         = 2
	DefaultProbeInterval    = 250 * time.Millisecond
	DefaultProbeTimeout     = time.Second
	DefaultFailThreshold    = 3
	DefaultRecoverThreshold = 2
	DefaultAttemptTimeout   = 10 * time.Second
	DefaultBackoffBase      = 25 * time.Millisecond
	DefaultBackoffMax       = 400 * time.Millisecond
	DefaultHedgeMin         = 20 * time.Millisecond
	DefaultHedgeMax         = 2 * time.Second
	DefaultMaxBodyBytes     = 2 << 20
)

// Config parameterizes a Router.
type Config struct {
	// Nodes are the backend serve nodes ("host:port" or http URL).
	Nodes []string
	// Replicas is K, the replica-set size each key hashes to; clamped
	// to len(Nodes). Zero means DefaultReplicas.
	Replicas int
	// Addr is the router's listen address for ListenAndServe.
	Addr string

	// ProbeInterval / ProbeTimeout shape the active health prober.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold opens a node's breaker after that many consecutive
	// failures (probe or in-band); RecoverThreshold closes a half-open
	// breaker after that many consecutive successes.
	FailThreshold    int
	RecoverThreshold int

	// AttemptTimeout caps each forwarded attempt's wall clock.
	AttemptTimeout time.Duration
	// BackoffBase / BackoffMax bound the failover backoff (saturating
	// doubling, netsim-style).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// HedgeMin / HedgeMax clamp the hedge trigger delay around the
	// rolling p99; DisableHedge turns hedging off entirely.
	HedgeMin     time.Duration
	HedgeMax     time.Duration
	DisableHedge bool

	// MaxBodyBytes caps a routed request body (413 beyond it).
	MaxBodyBytes int64
	// DrainGrace mirrors serve.Config.DrainGrace for the router's own
	// shutdown: /readyz flips to draining, the listener stays open for
	// the grace window, then closes. Zero means serve's default;
	// negative disables.
	DrainGrace time.Duration
	// Seed seeds the backoff jitter; zero means 1 (deterministic
	// jitter is fine — it only needs to decorrelate routers, and every
	// production router passes its own seed or keeps the default and
	// relies on traffic phase).
	Seed int64

	// Metrics, when set, is the registry the router's families register
	// on; nil creates a private one. TraceRingSize bounds the
	// /debug/requests ring (zero: telemetry.DefaultTraceRing).
	Metrics       *telemetry.Registry
	TraceRingSize int
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.Replicas > len(c.Nodes) {
		c.Replicas = len(c.Nodes)
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.RecoverThreshold <= 0 {
		c.RecoverThreshold = DefaultRecoverThreshold
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = DefaultAttemptTimeout
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = DefaultHedgeMin
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = DefaultHedgeMax
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Router fronts a set of serve nodes. Create with New, start the
// prober with Start (ListenAndServe does it for you), and mount
// Handler.
type Router struct {
	cfg    Config
	nodes  []*node
	client *http.Client
	inst   *instruments
	lat    *latTracker
	rng    *lockedRand
	mux    *http.ServeMux

	draining atomic.Bool
	started  atomic.Bool

	// healthz counters (the metric families carry the same totals with
	// labels; these feed the JSON payload without a registry scrape)
	routed         atomic.Int64
	failovers      atomic.Int64
	hedgesLaunched atomic.Int64
	hedgesWon      atomic.Int64
	exhausted      atomic.Int64
}

// New builds a Router from cfg (zero fields take defaults).
func New(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes configured")
	}
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	r := &Router{
		cfg:    cfg,
		client: &http.Client{},
		inst:   newInstruments(reg, telemetry.NewTraceRing(cfg.TraceRingSize)),
		lat:    &latTracker{},
		rng:    newLockedRand(cfg.Seed),
	}
	seen := map[string]bool{}
	for _, addr := range cfg.Nodes {
		n := newNode(addr)
		if seen[n.base] {
			return nil, fmt.Errorf("cluster: node %s configured twice", n.name)
		}
		seen[n.base] = true
		r.nodes = append(r.nodes, n)
		r.refreshNodeGauge(n)
	}
	reg.GaugeFunc(obs.MetricRouteHedgeDelay,
		"Current hedge trigger delay in seconds (rolling p99, clamped).",
		func() float64 { return r.lat.hedgeDelay(r.cfg.HedgeMin, r.cfg.HedgeMax).Seconds() })
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("/analyze", r.handleProxy)
	r.mux.HandleFunc("/batch", r.handleProxy)
	r.mux.HandleFunc("/healthz", r.handleHealthz)
	r.mux.HandleFunc("/readyz", r.handleReadyz)
	r.mux.Handle("/metrics", reg.Handler())
	r.mux.Handle("/debug/requests", r.inst.traces.Handler())
	return r, nil
}

// Start launches the health prober; it runs until ctx is canceled.
// Idempotent — only the first call starts a prober.
func (r *Router) Start(ctx context.Context) {
	if r.started.Swap(true) {
		return
	}
	go r.probeLoop(ctx)
}

// Handler returns the router's HTTP handler with the trace/metrics
// middleware outermost.
func (r *Router) Handler() http.Handler { return r.instrument(r.mux) }

// BeginDrain flips the router's /readyz to draining (its own upstream
// balancer stops sending) while routed work continues to completion.
func (r *Router) BeginDrain() { r.draining.Store(true) }

// ListenAndServe runs the router until ctx is canceled, then drains:
// /readyz flips first, the listener stays open for the grace window,
// then shuts down gracefully. The listener binds synchronously so a
// bind conflict is reported immediately (the serve package's hard-won
// convention).
func (r *Router) ListenAndServe(ctx context.Context) error {
	hs := &http.Server{Addr: r.cfg.Addr, Handler: r.Handler()}
	addr := hs.Addr
	if addr == "" {
		addr = ":http"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	r.Start(ctx)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		r.BeginDrain()
		g := r.cfg.DrainGrace
		if g == 0 {
			g = serve.DefaultDrainGrace
		}
		if g > 0 {
			gt := time.NewTimer(g)
			select {
			case err := <-errc:
				gt.Stop()
				return err
			case <-gt.C:
			}
		}
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		serr := hs.Shutdown(sctx)
		if lerr := <-errc; lerr != nil && !errors.Is(lerr, http.ErrServerClosed) {
			return lerr
		}
		return serr
	}
}

// ---- rendezvous hashing ----

// hrwScore is the highest-random-weight score of (key, node): FNV-1a
// over the node name then the key, passed through a splitmix64-style
// finalizer. The finalizer matters — raw FNV over short, similar node
// names ("host:8081" vs "host:8082") leaves correlated high bits, and
// correlated scores starve nodes of primaries. Deterministic across
// routers and restarts, which is all HRW needs.
func hrwScore(key, nodeName string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, nodeName)
	_, _ = io.WriteString(h, "\x00")
	_, _ = io.WriteString(h, key)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// replicaSet returns the key's ordered replica set: all nodes ranked
// by descending HRW score, truncated to K. Availability is NOT
// consulted here — the forward loop skips unavailable members so that
// a recovered node resumes its old position (and its warm cache) the
// moment its breaker closes.
func (r *Router) replicaSet(key string) []*node {
	ranked := make([]*node, len(r.nodes))
	copy(ranked, r.nodes)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := hrwScore(key, ranked[i].name), hrwScore(key, ranked[j].name)
		if si != sj {
			return si > sj
		}
		return ranked[i].name < ranked[j].name
	})
	return ranked[:r.cfg.Replicas]
}

// routeKey derives the routing key for one request body. /analyze
// shares serve.CacheKeyFor — routing and node caching agree on
// identity, so a key's requests land where its cache entry lives.
// /batch bodies are routed whole by their bytes (a batch has no single
// content key; keeping it on one node preserves the envelope's
// single-admission-slot semantics).
func routeKey(route string, body []byte) (string, error) {
	if route == "/analyze" {
		var req serve.Request
		if err := json.Unmarshal(body, &req); err != nil {
			return "", err
		}
		return serve.CacheKeyFor(&req), nil
	}
	return engine.CacheKey(string(body), comm.Opts{}, "route="+route), nil
}

// ---- health probing ----

// probeLoop polls every node's /readyz at the configured interval
// until ctx is canceled.
func (r *Router) probeLoop(ctx context.Context) {
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.probeAll(ctx)
		}
	}
}

// probeAll probes every node once. Exported to tests via probe_test
// helpers; production only reaches it through probeLoop.
func (r *Router) probeAll(ctx context.Context) {
	for _, n := range r.nodes {
		result := r.probeNode(ctx, n)
		r.inst.probes.Inc(n.name, result)
		r.refreshNodeGauge(n)
	}
}

// probeNode classifies one /readyz answer:
//
//	200                          → success (clears polite, feeds breaker recovery)
//	503 {"reason":"draining"}    → polite decline: out of rotation, breaker untouched
//	503 {"reason":"warming"}     → same (alive, will be back)
//	anything else / no answer    → failure (feeds the breaker)
func (r *Router) probeNode(ctx context.Context, n *node) string {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, n.base+"/readyz", nil)
	if err != nil {
		n.noteFailure(r.cfg.FailThreshold, err.Error())
		return "fail"
	}
	resp, err := r.client.Do(req)
	if err != nil {
		n.noteFailure(r.cfg.FailThreshold, err.Error())
		return "fail"
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch {
	case resp.StatusCode == http.StatusOK:
		n.clearPolite()
		n.noteSuccess(r.cfg.RecoverThreshold)
		return "ok"
	case resp.StatusCode == http.StatusServiceUnavailable:
		var rd serve.Readiness
		if err := json.Unmarshal(body, &rd); err == nil &&
			(rd.Reason == serve.ReasonDraining || rd.Reason == serve.ReasonWarming) {
			n.notePolite(rd.Reason)
			return rd.Reason
		}
		n.noteFailure(r.cfg.FailThreshold, "readyz 503")
		return "fail"
	default:
		n.noteFailure(r.cfg.FailThreshold, fmt.Sprintf("readyz %d", resp.StatusCode))
		return "fail"
	}
}

// ---- forwarding ----

// attemptOut is the resolved result of one forwarded attempt.
type attemptOut struct {
	node    *node
	hedge   bool
	status  int
	header  http.Header
	body    []byte
	err     error
	dur     time.Duration
	outcome string // ok | shed | connect | timeout | canceled | status-5xx
}

func (o *attemptOut) detail() string {
	if o.err != nil {
		return o.err.Error()
	}
	return fmt.Sprintf("status %d", o.status)
}

// maxResponseBytes caps a node response the router will relay (a
// defensive bound well above any rendered analysis).
const maxResponseBytes = 64 << 20

// attempt forwards body to one node and classifies the outcome. A
// status below 500 (other than 429) is a final answer — a 4xx belongs
// to the client, not the node.
func (r *Router) attempt(ctx context.Context, n *node, route string, body []byte, traceID string, hedge bool) *attemptOut {
	start := time.Now()
	fail := func(err error) *attemptOut {
		outcome := "connect"
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			outcome = "timeout"
		case errors.Is(err, context.Canceled):
			outcome = "canceled"
		}
		return &attemptOut{node: n, hedge: hedge, err: err, outcome: outcome, dur: time.Since(start)}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+route, bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(telemetry.TraceHeader, traceID)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		// a node killed mid-body surfaces here: retryable, like connect
		return fail(err)
	}
	out := &attemptOut{
		node: n, hedge: hedge, status: resp.StatusCode,
		header: resp.Header.Clone(), body: b, dur: time.Since(start),
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		out.outcome = "shed"
	case resp.StatusCode >= 500:
		out.outcome = "status-5xx"
	default:
		out.outcome = "ok"
	}
	return out
}

// forwardResult is what one routed request resolved to.
type forwardResult struct {
	win      *attemptOut // nil: no replica answered (all down or all canceled)
	attempts []telemetry.TraceAttempt
	launched int
}

// forward walks the replica set: primary first, hedging to the next
// replica after the rolling-p99 delay, failing over with saturating
// backoff on connect/timeout/5xx, skipping open breakers and draining
// nodes. The first success wins and the loser is canceled. A 429 is
// failover-eligible (another replica may have capacity) but never a
// breaker failure; if every replica sheds, the last 429 is the answer
// so its Retry-After reaches the client.
func (r *Router) forward(ctx context.Context, route string, body []byte, set []*node, traceID string) forwardResult {
	resc := make(chan *attemptOut, len(set)+1) // buffered: a canceled loser never blocks
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	res := forwardResult{}
	next, inFlight := 0, 0
	launch := func(hedge bool) bool {
		for next < len(set) {
			n := set[next]
			next++
			ok, trial := n.available()
			if !ok {
				continue
			}
			actx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
			cancels = append(cancels, cancel)
			inFlight++
			res.launched++
			go func(n *node, trial, hedge bool) {
				out := r.attempt(actx, n, route, body, traceID, hedge)
				if trial {
					n.releaseTrial()
				}
				resc <- out
			}(n, trial, hedge)
			return true
		}
		return false
	}

	if !launch(false) {
		return res // nothing available at all
	}

	var hedgeC <-chan time.Time
	if !r.cfg.DisableHedge {
		ht := time.NewTimer(r.nextHedgeDelay())
		defer ht.Stop()
		hedgeC = ht.C
	}
	hedged := false
	fails := 0
	var lastShed *attemptOut
	for inFlight > 0 {
		select {
		case <-ctx.Done():
			return res // client gone; nothing to say to no one
		case <-hedgeC:
			hedgeC = nil // at most one hedge per request
			if launch(true) {
				hedged = true
				r.hedgesLaunched.Add(1)
				r.inst.hedges.Inc("launched")
			}
		case out := <-resc:
			inFlight--
			res.attempts = append(res.attempts, telemetry.TraceAttempt{
				Rung:       out.node.name,
				Outcome:    out.outcome,
				Detail:     attemptDetail(out),
				DurationMS: float64(out.dur.Microseconds()) / 1000,
			})
			r.inst.attempts.Inc(out.node.name, out.outcome)
			switch out.outcome {
			case "ok":
				r.lat.observe(out.dur)
				if out.node.noteSuccess(r.cfg.RecoverThreshold) {
					r.refreshNodeGauge(out.node)
				}
				if out.hedge {
					r.hedgesWon.Add(1)
					r.inst.hedges.Inc("won")
				} else if hedged {
					r.inst.hedges.Inc("lost")
				}
				res.win = out
				return res
			case "shed":
				// alive and explicit: resets the failure streak
				if out.node.noteSuccess(r.cfg.RecoverThreshold) {
					r.refreshNodeGauge(out.node)
				}
				lastShed = out
				r.failovers.Add(1)
				r.inst.failovers.Inc("shed")
			default:
				if out.node.noteFailure(r.cfg.FailThreshold, out.detail()) {
					r.refreshNodeGauge(out.node)
				}
				fails++
				r.failovers.Add(1)
				r.inst.failovers.Inc(out.outcome)
			}
			if inFlight == 0 {
				if fails > 0 {
					bt := time.NewTimer(backoffDelay(r.cfg.BackoffBase, r.cfg.BackoffMax, fails-1, r.rng))
					select {
					case <-ctx.Done():
						bt.Stop()
						return res
					case <-bt.C:
					}
				}
				if !launch(false) {
					res.win = lastShed
					return res
				}
			}
		}
	}
	res.win = lastShed
	return res
}

// attemptDetail trims the detail recorded per attempt in the trace
// ring (error strings can carry long dial chains).
func attemptDetail(o *attemptOut) string {
	if o.outcome == "ok" {
		return ""
	}
	d := o.detail()
	if len(d) > 120 {
		d = d[:120]
	}
	return d
}

// ---- HTTP handlers ----

// relayHeaders are the node response headers the router passes
// through; everything else is the router's own to set.
var relayHeaders = []string{"Content-Type", "X-Gnt-Cache", "X-Gnt-Rung", "Retry-After"}

func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, &serve.Response{
			Error: "POST only", Code: "method-not-allowed",
		})
		return
	}
	route := req.URL.Path
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		status, code := http.StatusBadRequest, "bad-request"
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status, code = http.StatusRequestEntityTooLarge, "too-large"
		}
		writeJSON(w, status, &serve.Response{Error: err.Error(), Code: code})
		return
	}
	key, err := routeKey(route, body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &serve.Response{Error: err.Error(), Code: "bad-json"})
		return
	}

	r.routed.Add(1)
	res := r.forward(req.Context(), route, body, r.replicaSet(key), telemetry.TraceIDFrom(req.Context()))
	carrierFrom(req.Context()).setAttempts(res.attempts)

	if res.win == nil {
		if req.Context().Err() != nil {
			writeJSON(w, 499, &serve.Response{Error: "client canceled", Code: "canceled"})
			return
		}
		r.exhausted.Add(1)
		// Retry-After spans one probe cycle — the soonest a breaker
		// could move — with the same floor-at-1 semantics as serve's
		// overload 429s.
		w.Header().Set("Retry-After", strconv.Itoa(serve.RetryAfterSeconds(r.cfg.ProbeInterval)))
		writeJSON(w, http.StatusServiceUnavailable, &serve.Response{
			Error: "no replica available for this key", Code: "unavailable",
		})
		return
	}

	win := res.win
	for _, h := range relayHeaders {
		if v := win.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	routeVal := fmt.Sprintf("%s;attempts=%d", win.node.name, res.launched)
	if win.hedge {
		routeVal += ";hedged"
	}
	w.Header().Set(RouteHeader, routeVal)
	w.WriteHeader(win.status)
	_, _ = w.Write(win.body)
}

// Health is the router's healthz payload.
type Health struct {
	OK       bool         `json:"ok"`
	Draining bool         `json:"draining"`
	Replicas int          `json:"replicas"`
	Nodes    []NodeHealth `json:"nodes"`
	// Available counts nodes currently accepting new work.
	Available int `json:"available"`
	// Balance maps each node to its share of a 256-key sample as
	// primary and as backup replica — the replica map, summarized.
	Balance map[string]BalanceEntry `json:"balance"`

	Routed         int64   `json:"routed"`
	Failovers      int64   `json:"failovers"`
	HedgesLaunched int64   `json:"hedges_launched"`
	HedgesWon      int64   `json:"hedges_won"`
	Exhausted      int64   `json:"exhausted"`
	HedgeDelayMS   float64 `json:"hedge_delay_ms"`
}

// BalanceEntry is one node's slice of the sampled replica map.
type BalanceEntry struct {
	Primary int `json:"primary"`
	Replica int `json:"replica"`
}

// balanceSample summarizes the replica map over 256 synthetic keys:
// with HRW the shares should be near-uniform, and a skew here means a
// node name change redistributed the keyspace.
func (r *Router) balanceSample() map[string]BalanceEntry {
	out := make(map[string]BalanceEntry, len(r.nodes))
	for _, n := range r.nodes {
		out[n.name] = BalanceEntry{}
	}
	for i := 0; i < 256; i++ {
		set := r.replicaSet(fmt.Sprintf("sample-%d", i))
		for j, n := range set {
			e := out[n.name]
			if j == 0 {
				e.Primary++
			} else {
				e.Replica++
			}
			out[n.name] = e
		}
	}
	return out
}

func (r *Router) availableNodes() int {
	avail := 0
	for _, n := range r.nodes {
		// peek without reserving the half-open trial slot
		nh := n.health()
		if nh.Reason == "" && nh.State != StateOpen.String() {
			avail++
		}
	}
	return avail
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	nodes := make([]NodeHealth, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n.health())
	}
	writeJSON(w, http.StatusOK, Health{
		OK:             true,
		Draining:       r.draining.Load(),
		Replicas:       r.cfg.Replicas,
		Nodes:          nodes,
		Available:      r.availableNodes(),
		Balance:        r.balanceSample(),
		Routed:         r.routed.Load(),
		Failovers:      r.failovers.Load(),
		HedgesLaunched: r.hedgesLaunched.Load(),
		HedgesWon:      r.hedgesWon.Load(),
		Exhausted:      r.exhausted.Load(),
		HedgeDelayMS:   float64(r.lat.hedgeDelay(r.cfg.HedgeMin, r.cfg.HedgeMax).Microseconds()) / 1000,
	})
}

// handleReadyz mirrors the node readiness contract upward: draining
// while shutting down, unavailable when no node can take work, ready
// otherwise.
func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, serve.Readiness{Reason: serve.ReasonDraining})
		return
	}
	if r.availableNodes() == 0 {
		writeJSON(w, http.StatusServiceUnavailable, serve.Readiness{Reason: "no-available-nodes"})
		return
	}
	writeJSON(w, http.StatusOK, serve.Readiness{Ready: true})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
