package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"givetake/internal/serve"
	"givetake/internal/telemetry"
)

// goodSrc is a small valid program every serve node analyzes cleanly
// (the same exemplar the serve tests use).
const goodSrc = `distributed x(1000)
real y(1000)

do i = 1, n
    y(i) = x(i) + 1
enddo
`

// startNode boots one real serve node behind an httptest listener and
// returns the server (for its trace ring) and its URL.
func startNode(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

// newTestRouter builds a Router with test-friendly timings (tight
// backoff, no hedging unless the test opts in).
func newTestRouter(t *testing.T, mod func(*Config), nodes ...string) *Router {
	t.Helper()
	cfg := Config{
		Nodes:          nodes,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
		DisableHedge:   true,
	}
	if mod != nil {
		mod(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return r
}

// nodeName turns a test server URL into the node label the router uses.
func nodeName(url string) string { return strings.TrimPrefix(url, "http://") }

// sourceRoutedTo finds a program variant whose replica set puts the
// wanted node first — the deterministic way to aim a request at a
// specific primary under HRW.
func sourceRoutedTo(t *testing.T, r *Router, primary string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		src := goodSrc + strings.Repeat("\n", i)
		key := serve.CacheKeyFor(&serve.Request{Source: src})
		if r.replicaSet(key)[0].name == primary {
			return src
		}
	}
	t.Fatalf("no variant hashed to primary %s", primary)
	return ""
}

// deadAddr returns a host:port that refuses connections (bound, then
// released).
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func postAnalyze(t *testing.T, url, src string, hdr map[string]string) *http.Response {
	t.Helper()
	b, _ := json.Marshal(serve.Request{Source: src})
	req, err := http.NewRequest(http.MethodPost, url+"/analyze", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /analyze: %v", err)
	}
	return hr
}

// TestReplicaSetDeterministicAndBalanced pins the HRW core: K members,
// stable under repetition, and no node starved across a key sample.
func TestReplicaSetDeterministicAndBalanced(t *testing.T) {
	r := newTestRouter(t, func(c *Config) { c.Replicas = 2 },
		"a:1", "b:2", "c:3", "d:4")

	set := r.replicaSet("some-key")
	if len(set) != 2 {
		t.Fatalf("replica set size = %d, want 2", len(set))
	}
	again := r.replicaSet("some-key")
	for i := range set {
		if set[i] != again[i] {
			t.Fatal("replica set must be deterministic per key")
		}
	}
	if set[0] == set[1] {
		t.Fatal("replica set members must be distinct")
	}

	bal := r.balanceSample()
	for name, e := range bal {
		if e.Primary == 0 {
			t.Errorf("node %s is never primary across 256 sampled keys", name)
		}
	}
	total := 0
	for _, e := range bal {
		total += e.Primary
	}
	if total != 256 {
		t.Fatalf("primary shares sum to %d, want 256", total)
	}
}

// TestReplicasClampedToNodeCount: asking for more replicas than nodes
// must not panic or duplicate members.
func TestReplicasClampedToNodeCount(t *testing.T) {
	r := newTestRouter(t, func(c *Config) { c.Replicas = 5 }, "a:1", "b:2")
	if got := len(r.replicaSet("k")); got != 2 {
		t.Fatalf("clamped replica set size = %d, want 2", got)
	}
}

func TestNewRejectsEmptyAndDuplicateNodes(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no nodes must fail")
	}
	if _, err := New(Config{Nodes: []string{"a:1", "http://a:1"}}); err == nil {
		t.Fatal("New with duplicate nodes must fail")
	}
}

// TestRouteCacheAffinity is the marquee property: identical requests
// land on the same node, so the second one hits that node's cache.
func TestRouteCacheAffinity(t *testing.T) {
	urls := make([]string, 3)
	for i := range urls {
		_, urls[i] = startNode(t, serve.Config{})
	}
	r := newTestRouter(t, nil, urls...)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	hr1 := postAnalyze(t, ts.URL, goodSrc, nil)
	defer hr1.Body.Close()
	if hr1.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(hr1.Body)
		t.Fatalf("first routed request = %d (%s)", hr1.StatusCode, b)
	}
	route1 := hr1.Header.Get(RouteHeader)
	if route1 == "" {
		t.Fatalf("response missing %s header", RouteHeader)
	}
	if !telemetry.ValidTraceID(hr1.Header.Get(telemetry.TraceHeader)) {
		t.Fatal("router must assign a valid trace ID")
	}

	hr2 := postAnalyze(t, ts.URL, goodSrc, nil)
	defer hr2.Body.Close()
	route2 := hr2.Header.Get(RouteHeader)
	if n1, n2 := strings.Split(route1, ";")[0], strings.Split(route2, ";")[0]; n1 != n2 {
		t.Fatalf("identical requests routed to %s then %s, want same node", n1, n2)
	}
	if c := hr2.Header.Get("X-Gnt-Cache"); c != "hit" {
		t.Fatalf("second identical request X-Gnt-Cache = %q, want hit (affinity broken?)", c)
	}
}

// TestFailoverOnDeadPrimary: the primary refuses connections, the
// request must succeed on the next replica and say so in X-Gnt-Route.
func TestFailoverOnDeadPrimary(t *testing.T) {
	dead := deadAddr(t)
	_, live := startNode(t, serve.Config{})
	r := newTestRouter(t, nil, dead, live)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	src := sourceRoutedTo(t, r, dead)
	hr := postAnalyze(t, ts.URL, src, nil)
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(hr.Body)
		t.Fatalf("failover request = %d (%s), want 200", hr.StatusCode, b)
	}
	route := hr.Header.Get(RouteHeader)
	if want := nodeName(live) + ";attempts=2"; route != want {
		t.Fatalf("%s = %q, want %q", RouteHeader, route, want)
	}
	if got := r.failovers.Load(); got == 0 {
		t.Fatal("failover counter must advance")
	}
}

// TestAllReplicasDown: every replica refuses connections — the router
// answers 503 with a Retry-After spanning one probe cycle, and once
// the breakers open, its own /readyz goes unavailable.
func TestAllReplicasDown(t *testing.T) {
	r := newTestRouter(t, func(c *Config) {
		c.FailThreshold = 1
		c.ProbeInterval = 2 * time.Second // Retry-After: 2
	}, deadAddr(t), deadAddr(t))
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	hr := postAnalyze(t, ts.URL, goodSrc, nil)
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down request = %d, want 503", hr.StatusCode)
	}
	if ra := hr.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q", ra, "2")
	}
	var resp serve.Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil || resp.Code != "unavailable" {
		t.Fatalf("503 body code = %q (err %v), want unavailable", resp.Code, err)
	}

	// FailThreshold=1: that one request opened both breakers
	hrz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer hrz.Body.Close()
	var rd serve.Readiness
	_ = json.NewDecoder(hrz.Body).Decode(&rd)
	if hrz.StatusCode != http.StatusServiceUnavailable || rd.Reason != "no-available-nodes" {
		t.Fatalf("router readyz = %d reason=%q, want 503 no-available-nodes", hrz.StatusCode, rd.Reason)
	}
}

// TestProbesDriveBreakerOpenAndRecovery: a node that fails its health
// probes is ejected without any traffic, and recovers through
// half-open once probes succeed again.
func TestProbesDriveBreakerOpenAndRecovery(t *testing.T) {
	var healthy atomic.Bool
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/readyz" && healthy.Load() {
			writeJSON(w, http.StatusOK, serve.Readiness{Ready: true})
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer fake.Close()

	r := newTestRouter(t, func(c *Config) {
		c.FailThreshold = 3
		c.RecoverThreshold = 2
	}, fake.URL)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		r.probeAll(ctx)
	}
	if st := r.nodes[0].health().State; st != "open" {
		t.Fatalf("state after 3 failed probes = %s, want open", st)
	}

	healthy.Store(true)
	r.probeAll(ctx)
	if st := r.nodes[0].health().State; st != "half-open" {
		t.Fatalf("state after first good probe = %s, want half-open", st)
	}
	r.probeAll(ctx)
	if st := r.nodes[0].health().State; st != "closed" {
		t.Fatalf("state after recovery threshold = %s, want closed", st)
	}
}

// TestDrainingNodeLeavesRotation: a node announcing readyz 503
// "draining" must stop receiving new work without tripping its
// breaker, and the router must route around it silently (attempts=1 —
// skipping a draining node is not a failover).
func TestDrainingNodeLeavesRotation(t *testing.T) {
	var hits atomic.Int64
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/readyz" {
			writeJSON(w, http.StatusServiceUnavailable, serve.Readiness{Reason: serve.ReasonDraining})
			return
		}
		hits.Add(1)
		writeJSON(w, http.StatusOK, serve.Response{OK: true})
	}))
	defer draining.Close()
	_, live := startNode(t, serve.Config{})

	r := newTestRouter(t, nil, draining.URL, live)
	r.probeAll(context.Background())

	h := r.nodes[0].health()
	if h.Reason != serve.ReasonDraining || h.State != "closed" {
		t.Fatalf("draining node health = %+v, want closed with reason draining", h)
	}

	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	src := sourceRoutedTo(t, r, nodeName(draining.URL))
	hr := postAnalyze(t, ts.URL, src, nil)
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("request with draining primary = %d, want 200 via replica", hr.StatusCode)
	}
	if want := nodeName(live) + ";attempts=1"; hr.Header.Get(RouteHeader) != want {
		t.Fatalf("%s = %q, want %q", RouteHeader, hr.Header.Get(RouteHeader), want)
	}
	if hits.Load() != 0 {
		t.Fatal("draining node must not receive new analyze traffic")
	}
}

// TestHedgedRequestWins: the primary stalls, so after the hedge delay
// the router races the next replica and the fast answer wins.
func TestHedgedRequestWins(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/readyz" {
			writeJSON(w, http.StatusOK, serve.Readiness{Ready: true})
			return
		}
		select {
		case <-req.Context().Done():
		case <-time.After(3 * time.Second):
			writeJSON(w, http.StatusOK, serve.Response{OK: true})
		}
	}))
	defer slow.Close()
	_, fast := startNode(t, serve.Config{})

	r := newTestRouter(t, func(c *Config) {
		c.DisableHedge = false
		c.HedgeMin = 10 * time.Millisecond
	}, slow.URL, fast)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	src := sourceRoutedTo(t, r, nodeName(slow.URL))
	hr := postAnalyze(t, ts.URL, src, nil)
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("hedged request = %d, want 200", hr.StatusCode)
	}
	want := nodeName(fast) + ";attempts=2;hedged"
	if got := hr.Header.Get(RouteHeader); got != want {
		t.Fatalf("%s = %q, want %q", RouteHeader, got, want)
	}
	if r.hedgesLaunched.Load() != 1 || r.hedgesWon.Load() != 1 {
		t.Fatalf("hedge counters = launched %d won %d, want 1/1",
			r.hedgesLaunched.Load(), r.hedgesWon.Load())
	}
}

// TestShedRelaysRetryAfter: when every replica sheds with 429, the
// router hands the client the last 429 — Retry-After intact — and no
// breaker opens (shedding nodes are healthy).
func TestShedRelaysRetryAfter(t *testing.T) {
	shed := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Retry-After", "7")
			writeJSON(w, http.StatusTooManyRequests, serve.Response{Code: "overload"})
		}))
	}
	a, b := shed(), shed()
	defer a.Close()
	defer b.Close()

	r := newTestRouter(t, nil, a.URL, b.URL)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	hr := postAnalyze(t, ts.URL, goodSrc, nil)
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all-shed request = %d, want 429", hr.StatusCode)
	}
	if ra := hr.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want relayed %q", ra, "7")
	}
	for _, n := range r.nodes {
		if st := n.health().State; st != "closed" {
			t.Fatalf("node %s breaker = %s after shed, want closed", n.name, st)
		}
	}
}

// TestEndToEndTraceReconstruction pins the cross-hop trace contract:
// one client-supplied X-Gnt-Trace ID survives a failover, shows every
// attempt in the router's trace ring, and appears in the winning
// node's own ring — the two halves of one story.
func TestEndToEndTraceReconstruction(t *testing.T) {
	dead := deadAddr(t)
	liveSrv, live := startNode(t, serve.Config{})
	r := newTestRouter(t, nil, dead, live)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	id := telemetry.NewTraceID()
	src := sourceRoutedTo(t, r, dead)
	hr := postAnalyze(t, ts.URL, src, map[string]string{telemetry.TraceHeader: id})
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("traced failover request = %d, want 200", hr.StatusCode)
	}
	if got := hr.Header.Get(telemetry.TraceHeader); got != id {
		t.Fatalf("router echoed trace %q, want client's %q", got, id)
	}

	rt, ok := r.Traces().Find(id)
	if !ok {
		t.Fatal("router trace ring has no entry for the request's ID")
	}
	if len(rt.Attempts) != 2 {
		t.Fatalf("router trace attempts = %d (%+v), want 2", len(rt.Attempts), rt.Attempts)
	}
	if rt.Attempts[0].Rung != nodeName("http://"+dead) || rt.Attempts[0].Outcome != "connect" {
		t.Fatalf("first attempt = %+v, want connect against the dead node", rt.Attempts[0])
	}
	if rt.Attempts[1].Rung != nodeName(live) || rt.Attempts[1].Outcome != "ok" {
		t.Fatalf("second attempt = %+v, want ok on the live node", rt.Attempts[1])
	}

	nt, ok := liveSrv.Traces().Find(id)
	if !ok {
		t.Fatal("winning node's trace ring has no entry under the shared ID")
	}
	if nt.Route != "/analyze" || nt.Status != http.StatusOK {
		t.Fatalf("node-side trace = %+v, want a 200 /analyze", nt)
	}
}

// TestRouterHealthz sanity-checks the payload's shape and invariants.
func TestRouterHealthz(t *testing.T) {
	r := newTestRouter(t, nil, "a:1", "b:2", "c:3")
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Replicas != 2 || len(h.Nodes) != 3 || h.Available != 3 {
		t.Fatalf("healthz = %+v, want ok, 2 replicas, 3 nodes all available", h)
	}
	primaries := 0
	for _, e := range h.Balance {
		primaries += e.Primary
	}
	if primaries != 256 {
		t.Fatalf("balance primaries sum to %d, want 256", primaries)
	}
}

// TestRouterDrainFlipsReadyz: the router mirrors the node drain
// contract upward.
func TestRouterDrainFlipsReadyz(t *testing.T) {
	r := newTestRouter(t, nil, "a:1")
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	hr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("fresh router readyz = %d, want 200", hr.StatusCode)
	}

	r.BeginDrain()
	hr2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	var rd serve.Readiness
	_ = json.NewDecoder(hr2.Body).Decode(&rd)
	if hr2.StatusCode != http.StatusServiceUnavailable || rd.Reason != serve.ReasonDraining {
		t.Fatalf("draining router readyz = %d reason=%q, want 503 draining", hr2.StatusCode, rd.Reason)
	}
}

// TestRouterListenAndServeDrains exercises the real shutdown path with
// the grace window.
func TestRouterListenAndServeDrains(t *testing.T) {
	_, live := startNode(t, serve.Config{})
	addr := deadAddr(t) // free port
	r := newTestRouter(t, func(c *Config) {
		c.Addr = addr
		c.DrainGrace = 200 * time.Millisecond
	}, live)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.ListenAndServe(ctx) }()

	url := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		if hr, err := http.Get(url + "/readyz"); err == nil {
			hr.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	hr, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatalf("readyz during grace window: %v", err)
	}
	defer hr.Body.Close()
	var rd serve.Readiness
	_ = json.NewDecoder(hr.Body).Decode(&rd)
	if hr.StatusCode != http.StatusServiceUnavailable || rd.Reason != serve.ReasonDraining {
		t.Fatalf("readyz during grace = %d %q, want 503 draining", hr.StatusCode, rd.Reason)
	}

	select {
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			t.Fatalf("ListenAndServe returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe never returned after cancellation")
	}
}

// TestBatchRoutesWholeEnvelope: a /batch body routes by its bytes, so
// the same envelope always lands on the same node.
func TestBatchRoutesWholeEnvelope(t *testing.T) {
	urls := make([]string, 3)
	for i := range urls {
		_, urls[i] = startNode(t, serve.Config{})
	}
	r := newTestRouter(t, nil, urls...)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	body, _ := json.Marshal(serve.BatchRequest{Requests: []serve.Request{{Source: goodSrc}}})
	post := func() (int, string) {
		hr, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		return hr.StatusCode, strings.Split(hr.Header.Get(RouteHeader), ";")[0]
	}
	code1, node1 := post()
	code2, node2 := post()
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("batch requests = %d, %d, want 200s", code1, code2)
	}
	if node1 != node2 {
		t.Fatalf("identical batch envelopes routed to %s then %s", node1, node2)
	}
}

// TestBadRequests covers the router's own 4xx edges.
func TestBadRequests(t *testing.T) {
	r := newTestRouter(t, func(c *Config) { c.MaxBodyBytes = 256 }, "a:1")
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	hr, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /analyze = %d, want 405", hr.StatusCode)
	}

	hr, err = http.Post(ts.URL+"/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", hr.StatusCode)
	}

	big := fmt.Sprintf(`{"source":%q}`, strings.Repeat("x", 1024))
	hr, err = http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", hr.StatusCode)
	}
}

// TestRouterMetricsExposed: the gnt_route_* families show up on the
// router's /metrics endpoint after traffic.
func TestRouterMetricsExposed(t *testing.T) {
	_, live := startNode(t, serve.Config{})
	r := newTestRouter(t, nil, live)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	hr := postAnalyze(t, ts.URL, goodSrc, nil)
	hr.Body.Close()

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	b, _ := io.ReadAll(mr.Body)
	for _, want := range []string{
		"gnt_route_requests_total", "gnt_route_attempts_total",
		"gnt_route_node_state", "gnt_route_hedge_delay_seconds",
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("/metrics missing family %s", want)
		}
	}
}
