package cluster

import "testing"

func TestNewNodeNormalizesAddress(t *testing.T) {
	for _, tc := range []struct{ in, name, base string }{
		{"127.0.0.1:8081", "127.0.0.1:8081", "http://127.0.0.1:8081"},
		{"http://127.0.0.1:8081", "127.0.0.1:8081", "http://127.0.0.1:8081"},
		{"http://127.0.0.1:8081/", "127.0.0.1:8081", "http://127.0.0.1:8081"},
	} {
		n := newNode(tc.in)
		if n.name != tc.name || n.base != tc.base {
			t.Errorf("newNode(%q) = {%s %s}, want {%s %s}", tc.in, n.name, n.base, tc.name, tc.base)
		}
	}
}

// TestBreakerLifecycle walks the full state machine: closed survives
// sub-threshold failures, opens at the threshold, a success cracks it
// half-open, and the recover threshold closes it again.
func TestBreakerLifecycle(t *testing.T) {
	n := newNode("x:1")
	const failAt, recoverAt = 3, 2

	if ok, _ := n.available(); !ok {
		t.Fatal("fresh node must be available")
	}
	n.noteFailure(failAt, "boom")
	n.noteFailure(failAt, "boom")
	if st := n.health().State; st != "closed" {
		t.Fatalf("2/3 failures moved state to %s, want closed", st)
	}
	if !n.noteFailure(failAt, "boom") {
		t.Fatal("third failure must report a state change")
	}
	if st := n.health().State; st != "open" {
		t.Fatalf("state after threshold = %s, want open", st)
	}
	if ok, _ := n.available(); ok {
		t.Fatal("open breaker must not be available")
	}

	// a probe success cracks the breaker half-open
	if !n.noteSuccess(recoverAt) {
		t.Fatal("first success after open must report a state change")
	}
	if st := n.health().State; st != "half-open" {
		t.Fatalf("state after success = %s, want half-open", st)
	}
	// one more success (recoverAt=2, first one counted) closes it
	if !n.noteSuccess(recoverAt) {
		t.Fatal("recovery success must report a state change")
	}
	if st := n.health().State; st != "closed" {
		t.Fatalf("state after recovery = %s, want closed", st)
	}
}

// TestHalfOpenTrialSlot pins the single-trial discipline: while one
// trial request is in flight, a half-open node refuses more work, and
// a failed trial reopens the breaker.
func TestHalfOpenTrialSlot(t *testing.T) {
	n := newNode("x:1")
	for i := 0; i < 3; i++ {
		n.noteFailure(3, "down")
	}
	n.noteSuccess(5) // open -> half-open (recover threshold not met)

	ok, trial := n.available()
	if !ok || !trial {
		t.Fatalf("half-open available() = (%v,%v), want (true,true)", ok, trial)
	}
	if ok, _ := n.available(); ok {
		t.Fatal("second caller must not get a trial while one is in flight")
	}
	n.releaseTrial()
	if ok, _ := n.available(); !ok {
		t.Fatal("trial slot must free up after releaseTrial")
	}

	// a failure in half-open slams the breaker shut again
	if !n.noteFailure(3, "still down") {
		t.Fatal("half-open failure must report a state change")
	}
	if st := n.health().State; st != "open" {
		t.Fatalf("state after half-open failure = %s, want open", st)
	}
}

// TestPoliteDeclineDoesNotTripBreaker pins the draining/warming
// contract: a polite 503 removes the node from rotation, resets the
// failure streak, and leaves the breaker closed for an instant return.
func TestPoliteDeclineDoesNotTripBreaker(t *testing.T) {
	n := newNode("x:1")
	n.noteFailure(3, "blip")
	n.noteFailure(3, "blip")

	n.notePolite("draining")
	if ok, _ := n.available(); ok {
		t.Fatal("polite node must not take new work")
	}
	h := n.health()
	if h.State != "closed" || h.Reason != "draining" || h.ConsecFails != 0 {
		t.Fatalf("polite health = %+v, want closed/draining with failure streak reset", h)
	}

	n.clearPolite()
	if ok, _ := n.available(); !ok {
		t.Fatal("node must rejoin rotation the moment the polite episode ends")
	}
	// the two earlier blips were cleared: two more must not open
	n.noteFailure(3, "blip")
	n.noteFailure(3, "blip")
	if st := n.health().State; st != "closed" {
		t.Fatalf("state = %s, want closed (polite reset the streak)", st)
	}
}

func TestStateGaugeEncoding(t *testing.T) {
	n := newNode("x:1")
	if g := n.stateGauge(); g != 2 {
		t.Fatalf("closed gauge = %v, want 2", g)
	}
	n.notePolite("warming")
	if g := n.stateGauge(); g != 1.5 {
		t.Fatalf("closed+polite gauge = %v, want 1.5", g)
	}
	n.clearPolite()
	for i := 0; i < 3; i++ {
		n.noteFailure(3, "down")
	}
	if g := n.stateGauge(); g != 0 {
		t.Fatalf("open gauge = %v, want 0", g)
	}
	n.noteSuccess(5)
	if g := n.stateGauge(); g != 1 {
		t.Fatalf("half-open gauge = %v, want 1", g)
	}
}
