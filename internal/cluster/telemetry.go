package cluster

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"givetake/internal/obs"
	"givetake/internal/telemetry"
)

// instruments is the router's handle on its metric families. Every
// name comes from the closed vocabulary in internal/obs/names.go, the
// same contract the serve layer keeps: the registry refuses undeclared
// families, so the router cannot invent scrape vocabulary.
type instruments struct {
	registry *telemetry.Registry
	traces   *telemetry.TraceRing

	requests  telemetry.Counter   // by (route, status)
	duration  telemetry.Histogram // by (route, status)
	attempts  telemetry.Counter   // by (node, outcome)
	failovers telemetry.Counter   // by (reason)
	hedges    telemetry.Counter   // by (outcome)
	probes    telemetry.Counter   // by (node, result)
	nodeState telemetry.Gauge     // by (node)
}

func newInstruments(reg *telemetry.Registry, traces *telemetry.TraceRing) *instruments {
	return &instruments{
		registry: reg,
		traces:   traces,
		requests: reg.Counter(obs.MetricRouteRequests,
			"Requests routed, by route and status.", "route", "status"),
		duration: reg.Histogram(obs.MetricRouteDuration,
			"End-to-end routed request latency in seconds.", nil, "route", "status"),
		attempts: reg.Counter(obs.MetricRouteAttempts,
			"Forwarded attempts, by node and outcome.", "node", "outcome"),
		failovers: reg.Counter(obs.MetricRouteFailovers,
			"Descents down a replica set after a failed attempt, by reason.", "reason"),
		hedges: reg.Counter(obs.MetricRouteHedges,
			"Hedged second requests, by outcome (launched|won|lost).", "outcome"),
		probes: reg.Counter(obs.MetricRouteProbes,
			"Health-probe outcomes, by node and result.", "node", "result"),
		nodeState: reg.Gauge(obs.MetricRouteNodeState,
			"Breaker state per node: 0 open, 1 half-open, 2 closed; -0.5 while politely unavailable.", "node"),
	}
}

// refreshNodeGauge re-publishes one node's breaker state after a
// transition or probe.
func (r *Router) refreshNodeGauge(n *node) {
	r.inst.nodeState.Set(n.stateGauge(), n.name)
}

// routeCarrier rides the request context so the proxy handler can hand
// its per-attempt log back to the instrumentation middleware without
// widening signatures — the same pattern serve uses.
type routeCarrier struct {
	mu       sync.Mutex // guards attempts
	attempts []telemetry.TraceAttempt
}

type carrierKey struct{}

func carrierFrom(ctx context.Context) *routeCarrier {
	c, _ := ctx.Value(carrierKey{}).(*routeCarrier)
	return c
}

// setAttempts records the forward attempts of the response about to be
// written. Nil-safe.
func (c *routeCarrier) setAttempts(a []telemetry.TraceAttempt) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.attempts = a
	c.mu.Unlock()
}

func (c *routeCarrier) snapshot() []telemetry.TraceAttempt {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts
}

// routeLabel bounds the route label to the known endpoint set so an
// arbitrary scanned path can never mint a new time series.
func routeLabel(path string) string {
	switch path {
	case "/analyze", "/batch", "/healthz", "/readyz", "/metrics", "/debug/requests":
		return path
	}
	return "other"
}

// statusWriter captures the status a handler wrote (200 when a body
// was written without an explicit WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument is the router's outermost middleware: it validates or
// assigns the request's X-Gnt-Trace ID exactly like serve does (so one
// ID survives client → router → node), times the request, counts it,
// and records routed requests in the trace ring with one attempt entry
// per forwarded try — the router half of the end-to-end failover
// reconstruction.
func (r *Router) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		route := routeLabel(req.URL.Path)
		id := req.Header.Get(telemetry.TraceHeader)
		if !telemetry.ValidTraceID(id) {
			id = telemetry.NewTraceID()
		}
		w.Header().Set(telemetry.TraceHeader, id)

		car := &routeCarrier{}
		ctx := telemetry.WithTraceID(req.Context(), id)
		ctx = context.WithValue(ctx, carrierKey{}, car)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, req.WithContext(ctx))
		elapsed := time.Since(start)

		status := strconv.Itoa(sw.status())
		r.inst.requests.Inc(route, status)
		r.inst.duration.Observe(elapsed.Seconds(), route, status)

		if route != "/analyze" && route != "/batch" {
			return
		}
		r.inst.traces.Add(telemetry.RequestTrace{
			ID:         id,
			Route:      route,
			Method:     req.Method,
			Start:      start,
			DurationMS: float64(elapsed.Microseconds()) / 1000,
			Status:     sw.status(),
			Cache:      sw.Header().Get("X-Gnt-Cache"),
			Attempts:   car.snapshot(),
		})
	})
}

// Metrics exposes the router's metric registry (tests, embedding).
func (r *Router) Metrics() *telemetry.Registry { return r.inst.registry }

// Traces exposes the router's request-trace ring.
func (r *Router) Traces() *telemetry.TraceRing { return r.inst.traces }
