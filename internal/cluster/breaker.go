package cluster

import (
	"strings"
	"sync"
)

// BreakerState is one node's circuit-breaker position. The state
// machine lifts netsim's message-level recovery discipline to the node
// level: failures accumulate to a threshold instead of ejecting on the
// first blip, recovery is probed through a half-open trickle instead
// of slamming traffic back, and every transition is observable.
type BreakerState int

const (
	// StateClosed: healthy, traffic flows.
	StateClosed BreakerState = iota
	// StateHalfOpen: a probe succeeded after the breaker opened; the
	// router sends at most one trial request at a time until enough
	// consecutive successes close the breaker again.
	StateHalfOpen
	// StateOpen: consecutive failures crossed the threshold; no traffic
	// until a probe succeeds.
	StateOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	default:
		return "unknown"
	}
}

// node is one backend `gnt -mode serve` process as the router sees it:
// an address plus a breaker. Active probes (prober.go) and passive
// in-band outcomes (router.go) feed the same state machine, so a dying
// node is ejected by whichever signal arrives first.
type node struct {
	name string // host:port, the label on every metric series
	base string // http://host:port

	mu          sync.Mutex // guards state, polite, reason, consecFails, consecOKs, trial, lastErr
	state       BreakerState
	polite      bool   // node answered readyz 503: alive but declining (draining/warming)
	reason      string // the polite 503's reason field
	consecFails int
	consecOKs   int
	trial       bool // a half-open trial request is in flight
	lastErr     string
}

// newNode normalizes one configured address ("host:port" or a full
// http URL) into a node.
func newNode(addr string) *node {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	name := strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
	return &node{name: name, base: base}
}

// available reports whether the router may send NEW work here, and —
// when the node is half-open — reserves the single trial slot. A
// caller that got (true, true) must call releaseTrial when its attempt
// completes.
func (n *node) available() (ok, isTrial bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.polite {
		return false, false
	}
	switch n.state {
	case StateClosed:
		return true, false
	case StateHalfOpen:
		if n.trial {
			return false, false
		}
		n.trial = true
		return true, true
	default:
		return false, false
	}
}

func (n *node) releaseTrial() {
	n.mu.Lock()
	n.trial = false
	n.mu.Unlock()
}

// noteSuccess records one successful interaction (in-band response or
// probe). Returns true when the breaker state changed.
func (n *node) noteSuccess(recoverThreshold int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.consecFails = 0
	n.lastErr = ""
	switch n.state {
	case StateHalfOpen:
		n.consecOKs++
		if n.consecOKs >= recoverThreshold {
			n.state = StateClosed
			return true
		}
	case StateOpen:
		// first good signal after opening: crack the breaker half-open
		n.state = StateHalfOpen
		n.consecOKs = 1
		return true
	default:
		n.consecOKs++
	}
	return false
}

// noteFailure records one failed interaction (connect error, timeout,
// 5xx, failed probe). Returns true when the breaker state changed.
func (n *node) noteFailure(failThreshold int, detail string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.consecOKs = 0
	n.consecFails++
	n.lastErr = detail
	switch n.state {
	case StateClosed:
		if n.consecFails >= failThreshold {
			n.state = StateOpen
			return true
		}
	case StateHalfOpen:
		// the trial (or a probe) failed: back to open immediately
		n.state = StateOpen
		return true
	}
	return false
}

// notePolite records a readyz 503 that carries a reason: the node is
// alive but declining new work (draining before shutdown, warming
// after restart). That is neither a success nor a failure — the
// breaker holds, the node just leaves the available set.
func (n *node) notePolite(reason string) {
	n.mu.Lock()
	n.polite = true
	n.reason = reason
	// a polite answer proves the process is up; it must not keep
	// accumulating toward the failure threshold
	n.consecFails = 0
	n.mu.Unlock()
}

// clearPolite ends a polite-decline episode (the node answered readyz
// 200 again).
func (n *node) clearPolite() {
	n.mu.Lock()
	n.polite = false
	n.reason = ""
	n.mu.Unlock()
}

// NodeHealth is one node's block in the router's /healthz payload.
type NodeHealth struct {
	Name        string `json:"name"`
	State       string `json:"state"`
	Reason      string `json:"reason,omitempty"` // draining|warming while politely unavailable
	ConsecFails int    `json:"consec_fails,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

func (n *node) health() NodeHealth {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeHealth{
		Name:        n.name,
		State:       n.state.String(),
		Reason:      n.reason,
		ConsecFails: n.consecFails,
		LastError:   n.lastErr,
	}
}

// stateGauge encodes the node's state for gnt_route_node_state: 0
// open, 1 half-open, 2 closed; minus 0.5 while politely unavailable.
func (n *node) stateGauge() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var v float64
	switch n.state {
	case StateClosed:
		v = 2
	case StateHalfOpen:
		v = 1
	}
	if n.polite {
		v -= 0.5
	}
	return v
}
