package cluster

import (
	"testing"
	"time"
)

// TestHedgeDelayColdWindow pins that an unwarmed tracker hedges at the
// configured floor, never on noise from a handful of samples.
func TestHedgeDelayColdWindow(t *testing.T) {
	l := &latTracker{}
	min, max := 20*time.Millisecond, 2*time.Second
	if d := l.hedgeDelay(min, max); d != min {
		t.Fatalf("cold hedge delay = %v, want floor %v", d, min)
	}
	for i := 0; i < minHedgeSamples-1; i++ {
		l.observe(time.Second)
	}
	if d := l.hedgeDelay(min, max); d != min {
		t.Fatalf("hedge delay below sample minimum = %v, want floor %v", d, min)
	}
}

// TestHedgeDelayTracksP99 feeds a known distribution and checks the
// trigger lands on its tail, clamped to the configured band.
func TestHedgeDelayTracksP99(t *testing.T) {
	l := &latTracker{}
	for i := 1; i <= 100; i++ {
		l.observe(time.Duration(i) * time.Millisecond)
	}
	// nearest-rank: the 99th smallest of 100 samples
	p, ok := l.p99()
	if !ok || p != 99*time.Millisecond {
		t.Fatalf("p99 of 1..100ms = %v (ok=%v), want 99ms", p, ok)
	}
	if d := l.hedgeDelay(20*time.Millisecond, 2*time.Second); d != 99*time.Millisecond {
		t.Fatalf("hedge delay = %v, want the p99 99ms", d)
	}
	if d := l.hedgeDelay(20*time.Millisecond, 50*time.Millisecond); d != 50*time.Millisecond {
		t.Fatalf("hedge delay above cap = %v, want clamp 50ms", d)
	}
	if d := l.hedgeDelay(200*time.Millisecond, 2*time.Second); d != 200*time.Millisecond {
		t.Fatalf("hedge delay below floor = %v, want floor 200ms", d)
	}
}

// TestLatTrackerWindowRolls pins that old samples age out: after the
// ring wraps, the p99 reflects only the last latWindow observations.
func TestLatTrackerWindowRolls(t *testing.T) {
	l := &latTracker{}
	for i := 0; i < latWindow; i++ {
		l.observe(time.Second) // ancient slow regime
	}
	for i := 0; i < latWindow; i++ {
		l.observe(time.Millisecond) // current fast regime
	}
	if p, ok := l.p99(); !ok || p != time.Millisecond {
		t.Fatalf("p99 after window rolled = %v (ok=%v), want 1ms", p, ok)
	}
}

// TestBackoffDelaySaturates mirrors the netsim discipline: doubling
// per attempt, clamped at max, jitter bounded by half the delay.
func TestBackoffDelaySaturates(t *testing.T) {
	rng := newLockedRand(1)
	base, max := 25*time.Millisecond, 400*time.Millisecond
	prev := time.Duration(0)
	for attempt := 0; attempt < 12; attempt++ {
		d := backoffDelay(base, max, attempt, rng)
		want := base << attempt
		if want > max || want <= 0 {
			want = max
		}
		if d < want || d > want+want/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want, want+want/2)
		}
		if d+d/2 < prev {
			t.Fatalf("attempt %d: delay %v regressed far below previous %v", attempt, d, prev)
		}
		prev = d
	}
	// deep attempts must stay clamped — no overflow, no unbounded growth
	if d := backoffDelay(base, max, 60, rng); d > max+max/2 {
		t.Fatalf("attempt 60: delay %v exceeds clamp %v", d, max+max/2)
	}
}

func TestLockedRandBounds(t *testing.T) {
	rng := newLockedRand(42)
	if v := rng.Int63n(0); v != 0 {
		t.Fatalf("Int63n(0) = %d, want 0", v)
	}
	for i := 0; i < 100; i++ {
		if v := rng.Int63n(10); v < 0 || v >= 10 {
			t.Fatalf("Int63n(10) = %d out of range", v)
		}
	}
}

// TestHedgeJitterDeterministic pins the reproducibility contract of
// hedge jitter: two routers built with the same Config.Seed draw
// identical hedge-delay sequences, and a different seed diverges. The
// jitter must come from the router's seeded lockedRand — a global or
// time-seeded source would break replayable simulations.
func TestHedgeJitterDeterministic(t *testing.T) {
	mk := func(seed int64) *Router {
		r, err := New(Config{
			Nodes: []string{"127.0.0.1:1"},
			Seed:  seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		// warm the tracker past the sample minimum so the base delay
		// is the adaptive p99, not just the floor
		for i := 1; i <= minHedgeSamples+10; i++ {
			r.lat.observe(time.Duration(i) * time.Millisecond)
		}
		return r
	}
	seq := func(r *Router) []time.Duration {
		out := make([]time.Duration, 50)
		for i := range out {
			out[i] = r.nextHedgeDelay()
		}
		return out
	}

	a, b := seq(mk(7)), seq(mk(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(mk(8))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical hedge-delay sequences")
	}
	// jitter stays within [base, base+base/4]
	r := mk(7)
	base := r.lat.hedgeDelay(r.cfg.HedgeMin, r.cfg.HedgeMax)
	for i := 0; i < 50; i++ {
		d := r.nextHedgeDelay()
		if d < base || d > base+base/4 {
			t.Fatalf("hedge delay %v outside [%v, %v]", d, base, base+base/4)
		}
	}
}
