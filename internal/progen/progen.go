// Package progen generates random structured mini-Fortran programs for
// property-based testing and for the O(E) scaling experiments. Generated
// programs use only the control-flow shapes the frontend admits — nested
// DO loops, IF/ELSE, forward GOTOs out of loops — so every program lowers
// to a valid interval flow graph.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"givetake/internal/frontend"
	"givetake/internal/ir"
)

// Config tunes the generator. The zero value is filled with defaults.
type Config struct {
	// Stmts is the approximate number of statements to generate.
	Stmts int
	// MaxDepth bounds loop/if nesting.
	MaxDepth int
	// PLoop, PIf, PGoto are per-slot probabilities of generating a DO
	// loop, an IF, or (inside a loop) a conditional jump out of it.
	PLoop, PIf, PGoto float64
	// Arrays switches assignment bodies from scalar temporaries to
	// distributed-array references/definitions, producing programs the
	// communication generator has real work on.
	Arrays bool
	// Exprs makes assignments draw compound right-hand sides from a
	// small operand pool (with occasional operand kills), producing
	// programs with genuine common subexpressions and partial
	// redundancies for the PRE comparison experiments.
	Exprs bool
}

func (c *Config) fill() {
	if c.Stmts == 0 {
		c.Stmts = 30
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.PLoop == 0 {
		c.PLoop = 0.25
	}
	if c.PIf == 0 {
		c.PIf = 0.2
	}
	if c.PGoto == 0 {
		c.PGoto = 0.1
	}
}

// Generate produces a random program from the seed. The same seed and
// config always produce the same program.
func Generate(seed int64, cfg Config) *ir.Program {
	cfg.fill()
	g := &generator{r: rand.New(rand.NewSource(seed)), cfg: cfg, budget: cfg.Stmts}
	var b strings.Builder
	if cfg.Arrays {
		b.WriteString("distributed x(1000), y(1000), z(1000)\n")
		b.WriteString("real a(1000), b(1000)\n")
	}
	g.stmts(&b, 0, 0, false)
	// a trailing anchor for any pending gotos
	for _, l := range g.pendingLabels {
		fmt.Fprintf(&b, "%s continue\n", l)
	}
	src := b.String()
	prog, err := frontend.Parse(src)
	if err != nil {
		// A generator bug, not an input condition: fail loudly with the
		// offending program attached.
		panic(fmt.Sprintf("progen: generated invalid program: %v\n%s", err, src))
	}
	return prog
}

// GenerateSource is Generate but returns the program text, for tools.
func GenerateSource(seed int64, cfg Config) string {
	return ir.ProgramString(Generate(seed, cfg))
}

type generator struct {
	r      *rand.Rand
	cfg    Config
	budget int
	vars   int
	labels int
	// pendingLabels are labels referenced by emitted GOTOs whose anchor
	// statement has not been emitted yet; they are resolved at the first
	// opportunity at the right nesting depth.
	pendingLabels []string
	loopVars      []string
}

func (g *generator) indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func (g *generator) freshVar() string {
	g.vars++
	return fmt.Sprintf("t%d", g.vars)
}

func (g *generator) freshLabel() string {
	g.labels++
	return fmt.Sprintf("%d", g.labels*10)
}

// takeLabel pops a pending goto label to anchor here, if any.
func (g *generator) takeLabel() string {
	if len(g.pendingLabels) == 0 {
		return ""
	}
	l := g.pendingLabels[0]
	g.pendingLabels = g.pendingLabels[1:]
	return l
}

// stmts emits a statement list at the given nesting depth. inLoop marks
// that at least one DO loop encloses this position, enabling GOTOs.
// Pending labels may only anchor at loop depth zero relative to where the
// goto was emitted; we keep it simple and resolve them only at depth
// loopDepth == 0.
func (g *generator) stmts(b *strings.Builder, depth, loopDepth int, inLoop bool) {
	// nested lists are short; the top level drains the whole budget
	count := 1 + g.r.Intn(3)
	if depth == 0 {
		count = g.budget
	}
	for i := 0; i < count && g.budget > 0; i++ {
		g.budget--
		// resolve pending labels only at the top level: a label inside
		// any construct would make the goto a forbidden jump into a
		// block (frontend.Check mirrors Fortran 77 here)
		label := ""
		if depth == 0 {
			label = g.takeLabel()
		}
		switch {
		case depth < g.cfg.MaxDepth && g.r.Float64() < g.cfg.PLoop:
			v := string(rune('i' + (depth % 4)))
			g.indent(b, depth)
			if label != "" {
				fmt.Fprintf(b, "%s ", label)
			}
			fmt.Fprintf(b, "do %s%d = 1, n\n", v, depth)
			g.loopVars = append(g.loopVars, fmt.Sprintf("%s%d", v, depth))
			g.stmts(b, depth+1, loopDepth+1, true)
			g.loopVars = g.loopVars[:len(g.loopVars)-1]
			g.indent(b, depth)
			b.WriteString("enddo\n")
		case depth < g.cfg.MaxDepth && g.r.Float64() < g.cfg.PIf:
			g.indent(b, depth)
			if label != "" {
				fmt.Fprintf(b, "%s ", label)
			}
			fmt.Fprintf(b, "if (c%d) then\n", g.r.Intn(4))
			g.stmts(b, depth+1, loopDepth, inLoop)
			if g.r.Intn(2) == 0 {
				g.indent(b, depth)
				b.WriteString("else\n")
				g.stmts(b, depth+1, loopDepth, inLoop)
			}
			g.indent(b, depth)
			b.WriteString("endif\n")
		case inLoop && loopDepth > 0 && g.r.Float64() < g.cfg.PGoto:
			// conditional jump out of the enclosing loop nest
			l := g.freshLabel()
			g.pendingLabels = append(g.pendingLabels, l)
			g.indent(b, depth)
			if label != "" {
				fmt.Fprintf(b, "%s ", label)
			}
			fmt.Fprintf(b, "if (e%d) goto %s\n", g.r.Intn(4), l)
		default:
			g.indent(b, depth)
			if label != "" {
				fmt.Fprintf(b, "%s ", label)
			}
			b.WriteString(g.assignment())
			b.WriteByte('\n')
		}
	}
}

// assignment returns one assignment statement's text.
func (g *generator) assignment() string {
	if g.cfg.Exprs {
		ops := []string{"b + c", "b * d", "c + d", "b + c + d", "c * c"}
		if g.r.Intn(6) == 0 {
			// kill an operand so redundancy chains break realistically
			return fmt.Sprintf("%s = %d", []string{"b", "c", "d"}[g.r.Intn(3)], g.r.Intn(50))
		}
		return fmt.Sprintf("%s = %s", g.freshVar(), ops[g.r.Intn(len(ops))])
	}
	if !g.cfg.Arrays {
		return fmt.Sprintf("%s = %d", g.freshVar(), g.r.Intn(100))
	}
	sub := g.subscript()
	arr := []string{"x", "y", "z"}[g.r.Intn(3)]
	switch g.r.Intn(3) {
	case 0: // distributed reference
		return fmt.Sprintf("%s = %s(%s)", g.freshVar(), arr, sub)
	case 1: // distributed definition
		return fmt.Sprintf("%s(%s) = %d", arr, sub, g.r.Intn(100))
	default: // local work
		return fmt.Sprintf("a(%s) = b(%s)", sub, g.subscript())
	}
}

func (g *generator) subscript() string {
	if len(g.loopVars) == 0 || g.r.Intn(3) == 0 {
		return fmt.Sprintf("%d", 1+g.r.Intn(20))
	}
	v := g.loopVars[g.r.Intn(len(g.loopVars))]
	switch g.r.Intn(3) {
	case 0:
		return v
	case 1:
		return fmt.Sprintf("%s + %d", v, 1+g.r.Intn(10))
	default:
		return fmt.Sprintf("a(%s)", v) // indirect reference
	}
}
