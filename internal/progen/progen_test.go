package progen

import (
	"testing"

	"givetake/internal/cfg"
	"givetake/internal/interval"
	"givetake/internal/ir"
)

func TestDeterministic(t *testing.T) {
	a := GenerateSource(7, Config{Stmts: 40})
	b := GenerateSource(7, Config{Stmts: 40})
	if a != b {
		t.Fatal("same seed must generate the same program")
	}
	c := GenerateSource(8, Config{Stmts: 40})
	if a == c {
		t.Fatal("different seeds should generate different programs")
	}
}

func TestGeneratedProgramsLower(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		prog := Generate(seed, Config{Stmts: 25, MaxDepth: 3})
		g, err := cfg.Build(prog)
		if err != nil {
			t.Fatalf("seed %d: cfg: %v\n%s", seed, err, ir.ProgramString(prog))
		}
		if _, err := interval.FromCFG(g); err != nil {
			t.Fatalf("seed %d: interval: %v\n%s", seed, err, ir.ProgramString(prog))
		}
	}
}

func TestArrayMode(t *testing.T) {
	prog := Generate(3, Config{Stmts: 40, Arrays: true})
	if !prog.Distributed("x") || !prog.Distributed("y") || !prog.Distributed("z") {
		t.Fatal("array mode should declare distributed arrays")
	}
	refs := 0
	ir.WalkStmts(prog.Body, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.Assign); ok {
			for _, r := range ir.ArrayRefs(a.RHS) {
				if prog.Distributed(r.Name) {
					refs++
				}
			}
			if l, ok := a.LHS.(*ir.ArrayRef); ok && prog.Distributed(l.Name) {
				refs++
			}
		}
		return true
	})
	if refs == 0 {
		t.Fatal("array mode should generate distributed references")
	}
}

func TestSizeScaling(t *testing.T) {
	small := Generate(1, Config{Stmts: 10})
	large := Generate(1, Config{Stmts: 300})
	count := func(p *ir.Program) int {
		n := 0
		ir.WalkStmts(p.Body, func(ir.Stmt) bool { n++; return true })
		return n
	}
	if count(large) <= count(small) {
		t.Fatalf("Stmts config should scale program size: %d vs %d", count(small), count(large))
	}
}

func TestGotosGenerated(t *testing.T) {
	found := false
	for seed := int64(0); seed < 30 && !found; seed++ {
		prog := Generate(seed, Config{Stmts: 40, PGoto: 0.5, PLoop: 0.5})
		ir.WalkStmts(prog.Body, func(s ir.Stmt) bool {
			if _, ok := s.(*ir.Goto); ok {
				found = true
			}
			return true
		})
	}
	if !found {
		t.Fatal("generator never produced a goto at high PGoto")
	}
}
