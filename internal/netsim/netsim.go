// Package netsim is a simulated message-passing transport that sits
// between the interpreter and the trace. The interpreter's original
// model assumes a perfectly reliable network, so the paper's balance
// criterion C1 — every production started and stopped exactly once per
// path — is never stress-tested. This package injects deterministic,
// seeded faults (drop, delay, duplicate, reorder) into every transfer
// and recovers from them with a classic acknowledgment protocol:
// configurable timeout, bounded exponential backoff with jitter, and a
// per-message retry budget.
//
// Time is measured in interpreter steps, the same unit the machine cost
// model charges compute in, so fault recovery composes with the paper's
// latency-hiding story: a split Send/Recv pair recovers inside its
// overlap window, while an atomic operation must expose every timeout
// as wait.
//
// Graceful degradation: when a split pair exhausts its retry budget the
// transfer is re-issued as an atomic operation at the Recv point — the
// LAZY placement — over a reliable channel, and the run is recorded as
// degraded rather than failed. A FaultReport accounts for every
// injected fault and asserts C1 observability (no permanently unmatched
// halves).
package netsim

import (
	"fmt"
	"math"
	"math/rand"
)

// Protocol defaults, in interpreter steps.
const (
	DefaultTimeout     = 64
	DefaultMaxRetries  = 3
	DefaultBackoffBase = 8
	DefaultBackoffMax  = 256
	DefaultReorderMax  = 8
)

// FaultConfig parameterizes fault injection and the recovery protocol.
// The zero value describes a perfectly reliable transport; Enabled
// reports whether any fault can actually fire.
type FaultConfig struct {
	// Per-transmission fault probabilities, each in [0, 1].
	Drop    float64 // transmission lost in flight
	Dup     float64 // delivered twice (second copy suppressed)
	Delay   float64 // delivery delayed by 1..DelayMax extra steps
	Reorder float64 // queueing slip of 1..ReorderMax extra steps

	// Protocol parameters, in interpreter steps; zero means default.
	Timeout     int64 // ack wait before the sender retransmits
	MaxRetries  int   // retransmission budget per message (-1: no retries)
	BackoffBase int64 // first backoff, doubling per retry
	BackoffMax  int64 // backoff cap
	DelayMax    int64 // largest injected delay (default 2×Timeout)
	ReorderMax  int64 // largest reorder slip
}

// Enabled reports whether any fault can fire; a disabled config lets
// callers bypass the transport entirely and reproduce reliable traces
// byte for byte.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Delay > 0 || c.Reorder > 0
}

// Default is the moderate-loss profile used by `gnt -mode run -faults`:
// one in five transmissions lost, one in ten duplicated or delayed.
var Default = FaultConfig{Drop: 0.2, Dup: 0.1, Delay: 0.1, Reorder: 0.05}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0 // explicit no-retry mode
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.DelayMax <= 0 {
		c.DelayMax = 2 * c.Timeout
	}
	if c.ReorderMax <= 0 {
		c.ReorderMax = DefaultReorderMax
	}
	return c
}

// backoff is the sender's wait beyond the ack timeout before retry i
// (0-based): BackoffBase·2^i capped at BackoffMax, plus jitter drawn
// uniformly from [0, backoff/2] so synchronized retries spread out.
//
// The doubling saturates at BackoffMax before it can overflow int64:
// with a retry budget ≥ 63 and a near-MaxInt64 cap, naive repeated
// doubling wraps negative and the jitter draw panics. The guard clamps
// as soon as another doubling could exceed the cap (b > BackoffMax>>1
// ⇒ 2b > BackoffMax), which also bounds b·2 away from overflow for any
// positive cap.
func (c FaultConfig) backoff(retry int, rng *rand.Rand) int64 {
	b := c.BackoffBase
	for i := 0; i < retry; i++ {
		if b > c.BackoffMax>>1 {
			b = c.BackoffMax
			break
		}
		b <<= 1
	}
	if b > c.BackoffMax {
		b = c.BackoffMax
	}
	j := rng.Int63n(b/2 + 1)
	if j > math.MaxInt64-b { // saturate the jitter add at huge caps
		j = math.MaxInt64 - b
	}
	return b + j
}

// Delivery is the receiver-visible outcome of one transfer.
type Delivery struct {
	Arrival    int64 // step the payload became available (≥ send step + 1)
	Retries    int   // retransmissions the sender performed
	Suppressed int   // duplicate copies discarded at the receiver
	Stall      int64 // sender-side timeout+backoff wait, in steps
	Degraded   bool  // budget exhausted: re-issued atomically, reliable channel
	Matched    bool  // false: Recv had no pending Send (C1 violation)
}

// FaultReport aggregates what the transport injected and how the
// protocol absorbed it over one execution.
type FaultReport struct {
	// Transfers counts messages routed through the transport (split
	// pairs count once, at the Send; atomics once).
	Transfers int64
	// Injected faults by kind.
	Drops, Dups, Delays, Reorders int64
	// Retransmits counts retransmissions, whether triggered by a real
	// drop or spuriously by a delivery delayed past the ack timeout.
	Retransmits int64
	// Suppressed counts duplicate copies discarded at the receiver:
	// network duplicates, late originals, and spurious retransmissions.
	Suppressed int64
	// Recovered counts transfers delivered after at least one
	// retransmission.
	Recovered int64
	// Degraded counts split transfers whose budget ran out and that
	// were re-issued atomically at the Recv point (the LAZY placement).
	Degraded int64
	// Escalated counts atomic transfers whose budget ran out and that
	// completed over the reliable channel.
	Escalated int64
	// UnmatchedSends/Recvs count halves with no partner at end of run —
	// always zero for a balanced (C1) placement, faults or not.
	UnmatchedSends, UnmatchedRecvs int64
	// StallSteps totals sender-side timeout+backoff waiting.
	StallSteps int64
}

// Counters flattens the report into named counters for an obs.Report
// fault section; zero-valued counters are omitted.
func (r FaultReport) Counters() map[string]int64 {
	all := map[string]int64{
		"transfers": r.Transfers, "drops": r.Drops, "dups": r.Dups,
		"delays": r.Delays, "reorders": r.Reorders,
		"retransmits": r.Retransmits, "suppressed": r.Suppressed,
		"recovered": r.Recovered, "degraded": r.Degraded,
		"escalated": r.Escalated, "stall_steps": r.StallSteps,
		"unmatched_sends": r.UnmatchedSends, "unmatched_recvs": r.UnmatchedRecvs,
	}
	out := map[string]int64{}
	for k, v := range all {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

// Accounted reports whether every injected fault is explained by a
// recovery action: each dropped transmission either triggered a
// retransmission or ended in degradation/escalation, every duplicated
// copy was suppressed, and no half is permanently unmatched.
func (r FaultReport) Accounted() bool {
	return r.Dups <= r.Suppressed &&
		r.Drops <= r.Retransmits+r.Degraded+r.Escalated &&
		r.UnmatchedSends == 0 && r.UnmatchedRecvs == 0
}

func (r FaultReport) String() string {
	return fmt.Sprintf(
		"transfers=%d faults[drop=%d dup=%d delay=%d reorder=%d] retransmits=%d suppressed=%d recovered=%d degraded=%d escalated=%d stall=%d unmatched=%d/%d",
		r.Transfers, r.Drops, r.Dups, r.Delays, r.Reorders,
		r.Retransmits, r.Suppressed, r.Recovered, r.Degraded, r.Escalated,
		r.StallSteps, r.UnmatchedSends, r.UnmatchedRecvs)
}

// Transport is one execution's view of the unreliable network. It is
// deterministic: the same (FaultConfig, seed) and the same call
// sequence produce the same deliveries and report. A Transport is not
// safe for concurrent use; each execution owns its own.
type Transport struct {
	cfg     FaultConfig
	rng     *rand.Rand
	pending map[pairKey][]*message
	rep     FaultReport
}

type pairKey struct{ op, args string }

type message struct {
	elems int64
	res   resolution
}

// resolution is the precomputed fate of one transfer: because faults
// are seeded, the whole attempt schedule is resolved at Send time and
// merely observed at Recv time.
type resolution struct {
	arrival int64 // earliest copy arrival; -1 when every attempt dropped
	copies  int   // copies that reach the receiver (first delivers, rest suppressed)
	retries int   // retransmissions performed
	stall   int64 // sender-side timeout+backoff waiting
	failed  bool  // retry budget exhausted with nothing delivered
}

// New creates a transport. The seed should be independent of any seed
// driving program control flow so that enabling faults never perturbs
// the execution being measured.
func New(cfg FaultConfig, seed int64) *Transport {
	return &Transport{
		cfg:     cfg.withDefaults(),
		rng:     rand.New(rand.NewSource(seed)),
		pending: map[pairKey][]*message{},
	}
}

// resolve simulates the acknowledgment protocol for one message posted
// at the given step. Each attempt is independently dropped, delayed,
// reordered, or duplicated; the sender retransmits after Timeout plus
// backoff until an ack arrives in time or the budget is spent. A copy
// delayed past the timeout still arrives — the retransmission it
// provokes is spurious and its copy is suppressed at the receiver.
func (t *Transport) resolve(step int64) resolution {
	c := t.cfg
	r := resolution{arrival: -1}
	at := step
	for attempt := 0; ; attempt++ {
		acked := false
		if t.rng.Float64() < c.Drop {
			t.rep.Drops++
		} else {
			flight := int64(1)
			if t.rng.Float64() < c.Delay {
				flight += 1 + t.rng.Int63n(c.DelayMax)
				t.rep.Delays++
			}
			if t.rng.Float64() < c.Reorder {
				flight += 1 + t.rng.Int63n(c.ReorderMax)
				t.rep.Reorders++
			}
			arr := at + flight
			if r.arrival < 0 || arr < r.arrival {
				r.arrival = arr
			}
			r.copies++
			if t.rng.Float64() < c.Dup {
				t.rep.Dups++
				r.copies++
			}
			acked = flight <= c.Timeout
		}
		if acked || attempt >= c.MaxRetries {
			if !acked && r.arrival < 0 {
				// budget spent, nothing in flight: the sender waits out
				// one last timeout before declaring the transfer dead
				r.stall += c.Timeout
				r.failed = true
			}
			break
		}
		back := c.backoff(attempt, t.rng)
		r.stall += c.Timeout + back
		at += c.Timeout + back
		r.retries++
		t.rep.Retransmits++
	}
	t.rep.StallSteps += r.stall
	return r
}

// Send posts the Send half of a split transfer. Its delivery schedule
// is resolved immediately (the fault stream is seeded); the matching
// Recv observes the outcome.
func (t *Transport) Send(op, args string, elems, step int64) {
	t.rep.Transfers++
	k := pairKey{op, args}
	t.pending[k] = append(t.pending[k], &message{elems: elems, res: t.resolve(step)})
}

// Recv completes the Recv half of a split transfer, matching the most
// recent pending Send of the same operation and argument list (the same
// LIFO discipline the trace matcher uses). A Recv with no pending Send
// is reported as unmatched; a Recv whose Send exhausted its budget is
// degraded: the transfer is re-issued atomically here, over the
// reliable channel, and always completes.
func (t *Transport) Recv(op, args string, elems, step int64) Delivery {
	k := pairKey{op, args}
	q := t.pending[k]
	if len(q) == 0 {
		t.rep.UnmatchedRecvs++
		return Delivery{}
	}
	m := q[len(q)-1]
	t.pending[k] = q[:len(q)-1]
	d := Delivery{
		Retries: m.res.retries,
		Stall:   m.res.stall,
		Matched: true,
	}
	if m.res.failed {
		t.rep.Degraded++
		d.Degraded = true
		return d
	}
	d.Arrival = m.res.arrival
	d.Suppressed = m.res.copies - 1
	t.rep.Suppressed += int64(d.Suppressed)
	if d.Retries > 0 {
		t.rep.Recovered++
	}
	return d
}

// Atomic performs a blocking transfer: the operation does not return
// until the payload is delivered, so every retransmission timeout is
// exposed at this point. If the budget runs out the runtime escalates
// to the reliable channel and the transfer still completes.
func (t *Transport) Atomic(op, args string, elems, step int64) Delivery {
	t.rep.Transfers++
	res := t.resolve(step)
	d := Delivery{
		Retries: res.retries,
		Stall:   res.stall,
		Matched: true,
	}
	if res.failed {
		t.rep.Escalated++
		d.Degraded = true
		return d
	}
	d.Arrival = res.arrival
	d.Suppressed = res.copies - 1
	t.rep.Suppressed += int64(d.Suppressed)
	if d.Retries > 0 {
		t.rep.Recovered++
	}
	return d
}

// Finish closes the execution: any Send still pending has no matching
// Recv and is reported as unmatched (a balanced placement has none).
func (t *Transport) Finish() {
	for _, q := range t.pending {
		t.rep.UnmatchedSends += int64(len(q))
	}
}

// Report returns the accumulated fault report.
func (t *Transport) Report() FaultReport { return t.rep }
