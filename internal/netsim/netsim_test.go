package netsim

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestZeroConfigDisabled(t *testing.T) {
	var c FaultConfig
	if c.Enabled() {
		t.Fatal("zero FaultConfig must be disabled")
	}
	if !Default.Enabled() {
		t.Fatal("Default profile must be enabled")
	}
	if (FaultConfig{Timeout: 99}).Enabled() {
		t.Fatal("protocol parameters alone must not enable fault injection")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := FaultConfig{Drop: 0.5}.withDefaults()
	if c.Timeout != DefaultTimeout || c.MaxRetries != DefaultMaxRetries ||
		c.BackoffBase != DefaultBackoffBase || c.BackoffMax != DefaultBackoffMax {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.DelayMax != 2*DefaultTimeout {
		t.Fatalf("DelayMax default = %d, want 2×Timeout", c.DelayMax)
	}
}

func TestNoRetryMode(t *testing.T) {
	if got := (FaultConfig{MaxRetries: -1}).withDefaults().MaxRetries; got != 0 {
		t.Fatalf("MaxRetries -1 must mean zero retries, got %d", got)
	}
	tr := New(FaultConfig{Drop: 1, MaxRetries: -1}, 1)
	tr.Send("READ", "x(1)", 1, 1)
	d := tr.Recv("READ", "x(1)", 1, 9)
	if !d.Degraded || d.Retries != 0 {
		t.Fatalf("no-retry mode must degrade without retransmitting: %+v", d)
	}
	if rep := tr.Report(); rep.Retransmits != 0 {
		t.Fatalf("no-retry mode retransmitted: %s", rep)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	c := FaultConfig{BackoffBase: 8, BackoffMax: 64}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	prevMin := int64(0)
	for retry := 0; retry < 8; retry++ {
		// the deterministic part is base·2^retry capped; jitter adds at
		// most half of it
		base := int64(8)
		for i := 0; i < retry && base < 64; i++ {
			base *= 2
		}
		if base > 64 {
			base = 64
		}
		for trial := 0; trial < 50; trial++ {
			b := c.backoff(retry, rng)
			if b < base || b > base+base/2 {
				t.Fatalf("backoff(%d) = %d outside [%d, %d]", retry, b, base, base+base/2)
			}
		}
		if base < prevMin {
			t.Fatalf("backoff floor must be nondecreasing: %d after %d", base, prevMin)
		}
		prevMin = base
	}
}

func TestBackoffOverflowGuard(t *testing.T) {
	// Regression: with a near-MaxInt64 cap, naive doubling wraps
	// negative around attempt 63 and rng.Int63n(b/2+1) panics. The
	// shift-guarded loop must saturate at the cap instead, for any
	// retry count.
	c := FaultConfig{BackoffBase: 8, BackoffMax: math.MaxInt64 - 1}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for _, retry := range []int{62, 63, 64, 100, 1 << 20} {
		b := c.backoff(retry, rng)
		if b < c.BackoffMax {
			t.Fatalf("backoff(%d) = %d, want saturation at cap %d", retry, b, c.BackoffMax)
		}
		if b < 0 {
			t.Fatalf("backoff(%d) overflowed to %d", retry, b)
		}
	}
	// the exact-power-of-two cap boundary must also stay exact: base 1
	// reaches the 2^62 cap after exactly 62 doublings
	c2 := FaultConfig{BackoffBase: 1, BackoffMax: 1 << 62}.withDefaults()
	for _, retry := range []int{62, 63, 200} {
		b := c2.backoff(retry, rng)
		if b < 1<<62 || b < 0 {
			t.Fatalf("backoff(%d) = %d, want ≥ cap %d", retry, b, int64(1)<<62)
		}
	}
}

func TestReliableDelivery(t *testing.T) {
	// probabilities zero: one attempt, arrives next step, no retries
	tr := New(FaultConfig{}, 1)
	tr.Send("READ", "x(1:8)", 8, 10)
	d := tr.Recv("READ", "x(1:8)", 8, 50)
	if !d.Matched || d.Degraded || d.Retries != 0 || d.Suppressed != 0 {
		t.Fatalf("reliable delivery = %+v", d)
	}
	if d.Arrival != 11 {
		t.Fatalf("arrival = %d, want send step + 1", d.Arrival)
	}
	tr.Finish()
	rep := tr.Report()
	if !rep.Accounted() || rep.Transfers != 1 {
		t.Fatalf("report = %s", rep)
	}
}

func TestCertainDropDegradesSplit(t *testing.T) {
	tr := New(FaultConfig{Drop: 1, MaxRetries: 2}, 7)
	tr.Send("READ", "x(1:4)", 4, 5)
	d := tr.Recv("READ", "x(1:4)", 4, 40)
	if !d.Matched || !d.Degraded {
		t.Fatalf("all-drop transfer must degrade: %+v", d)
	}
	if d.Retries != 2 {
		t.Fatalf("retries = %d, want the full budget 2", d.Retries)
	}
	if d.Stall <= 0 {
		t.Fatal("degraded transfer must report the stall it burned")
	}
	tr.Finish()
	rep := tr.Report()
	if rep.Degraded != 1 || rep.Escalated != 0 {
		t.Fatalf("report = %s", rep)
	}
	if rep.Drops != 3 { // initial attempt + 2 retransmits
		t.Fatalf("drops = %d, want 3", rep.Drops)
	}
	if !rep.Accounted() {
		t.Fatalf("degraded run must still account: %s", rep)
	}
}

func TestCertainDropEscalatesAtomic(t *testing.T) {
	tr := New(FaultConfig{Drop: 1, MaxRetries: 1}, 7)
	d := tr.Atomic("WRITE", "y(1:4)", 4, 5)
	if !d.Degraded {
		t.Fatal("all-drop atomic must escalate to the reliable channel")
	}
	tr.Finish()
	rep := tr.Report()
	if rep.Escalated != 1 || rep.Degraded != 0 {
		t.Fatalf("report = %s", rep)
	}
	if !rep.Accounted() {
		t.Fatalf("escalated run must still account: %s", rep)
	}
}

func TestCertainDupSuppressed(t *testing.T) {
	tr := New(FaultConfig{Dup: 1}, 3)
	tr.Send("READ", "x(1)", 1, 1)
	d := tr.Recv("READ", "x(1)", 1, 9)
	if d.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1 duplicate copy", d.Suppressed)
	}
	tr.Finish()
	rep := tr.Report()
	if rep.Dups != 1 || rep.Suppressed != 1 || !rep.Accounted() {
		t.Fatalf("report = %s", rep)
	}
}

func TestDelayPastTimeoutSpuriousRetransmit(t *testing.T) {
	// delay always fires and always exceeds the tiny timeout, so the
	// first copy is late, the sender retransmits spuriously, and the
	// extra copy is suppressed — yet no drop was ever injected
	c := FaultConfig{Delay: 1, Timeout: 1, DelayMax: 50, MaxRetries: 1}
	tr := New(c, 11)
	tr.Send("READ", "x(1)", 1, 1)
	d := tr.Recv("READ", "x(1)", 1, 100)
	if !d.Matched || d.Degraded {
		t.Fatalf("late delivery is not failure: %+v", d)
	}
	tr.Finish()
	rep := tr.Report()
	if rep.Drops != 0 {
		t.Fatalf("no drops injected, report says %d", rep.Drops)
	}
	if rep.Retransmits == 0 {
		t.Fatal("delay past timeout must provoke a spurious retransmit")
	}
	if rep.Suppressed == 0 {
		t.Fatal("the spurious copy must be suppressed at the receiver")
	}
	if !rep.Accounted() {
		t.Fatalf("report must balance: %s", rep)
	}
}

func TestUnmatchedHalvesReported(t *testing.T) {
	tr := New(Default, 1)
	tr.Send("READ", "x(1)", 1, 1)
	tr.Recv("WRITE", "y(1)", 1, 2) // wrong key: unmatched recv
	tr.Finish()                    // leaves the send unmatched
	rep := tr.Report()
	if rep.UnmatchedSends != 1 || rep.UnmatchedRecvs != 1 {
		t.Fatalf("unmatched = %d/%d, want 1/1", rep.UnmatchedSends, rep.UnmatchedRecvs)
	}
	if rep.Accounted() {
		t.Fatal("unmatched halves must fail accounting")
	}
}

func TestLIFOMatching(t *testing.T) {
	tr := New(FaultConfig{}, 1)
	tr.Send("READ", "x(1:2)", 2, 1)
	tr.Send("READ", "x(1:2)", 2, 5)
	d := tr.Recv("READ", "x(1:2)", 2, 9)
	if d.Arrival != 6 {
		t.Fatalf("LIFO: recv must match the later send (arrival 6), got %d", d.Arrival)
	}
	d = tr.Recv("READ", "x(1:2)", 2, 12)
	if d.Arrival != 2 {
		t.Fatalf("second recv matches the earlier send (arrival 2), got %d", d.Arrival)
	}
}

// drive issues a deterministic synthetic workload: a mix of split pairs
// and atomics across a few keys.
func drive(tr *Transport) []Delivery {
	var out []Delivery
	step := int64(0)
	for i := 0; i < 200; i++ {
		step += int64(1 + i%7)
		key := []string{"x(1:n)", "y(a(1:n))", "z(4)"}[i%3]
		switch i % 4 {
		case 0, 1:
			tr.Send("READ", key, int64(1+i%9), step)
			step += int64(10 + i%31)
			out = append(out, tr.Recv("READ", key, int64(1+i%9), step))
		case 2:
			out = append(out, tr.Atomic("WRITE", key, int64(1+i%5), step))
		case 3:
			tr.Send("WRITE", key, 3, step)
			step += 2 // short window: retries rarely absorbed
			out = append(out, tr.Recv("WRITE", key, 3, step))
		}
	}
	tr.Finish()
	return out
}

func TestDeterminismSameSeed(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := New(Default, seed), New(Default, seed)
		da, db := drive(a), drive(b)
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("seed %d: deliveries differ", seed)
		}
		if a.Report() != b.Report() {
			t.Fatalf("seed %d: reports differ:\n%s\n%s", seed, a.Report(), b.Report())
		}
	}
}

func TestAccountingProperty(t *testing.T) {
	configs := []FaultConfig{
		Default,
		{Drop: 0.5, Dup: 0.3, Delay: 0.3, Reorder: 0.2, Timeout: 8, MaxRetries: 2},
		{Drop: 0.05},
		{Dup: 0.9},
		{Delay: 0.9, Timeout: 4, DelayMax: 40},
		{Drop: 0.9, MaxRetries: 1},
	}
	for ci, cfg := range configs {
		for seed := int64(1); seed <= 25; seed++ {
			tr := New(cfg, seed)
			for _, d := range drive(tr) {
				if !d.Matched {
					t.Fatalf("config %d seed %d: balanced workload produced unmatched recv", ci, seed)
				}
			}
			rep := tr.Report()
			if !rep.Accounted() {
				t.Fatalf("config %d seed %d: report does not balance: %s", ci, seed, rep)
			}
			if rep.UnmatchedSends != 0 || rep.UnmatchedRecvs != 0 {
				t.Fatalf("config %d seed %d: unmatched halves: %s", ci, seed, rep)
			}
		}
	}
}

// TestParallelTransports exercises independent transports from
// concurrent goroutines so `go test -race` vets the package's (absence
// of) shared state.
func TestParallelTransports(t *testing.T) {
	var wg sync.WaitGroup
	reports := make([]FaultReport, 8)
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := New(Default, 42) // identical seeds → identical reports
			drive(tr)
			reports[i] = tr.Report()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("transport %d diverged: %s vs %s", i, reports[i], reports[0])
		}
	}
}
