package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"givetake/internal/serve"
)

// loadCorpus reads the repo's .f corpus (figures + kernels); missing
// files are skipped so the harness also runs from unusual working
// directories.
func loadCorpus(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, pat := range []string{"../../../testdata/*.f", "../../../testdata/kernels/*.f"} {
		files, _ := filepath.Glob(pat)
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err == nil {
				out = append(out, string(b))
			}
		}
	}
	return out
}

// TestChaos replays a mixed adversarial stream — corpus and generated
// programs, malformed and oversized sources, injected panics, solution
// corruptions, and 1ms deadline storms — against a live server with a
// small in-flight pool, concurrently. The service contract under fire:
//
//   - the process never crashes (any panic escaping the handler would
//     fail the test run itself);
//   - every request receives structured JSON, and every 200 names the
//     ladder rung that produced it with a cleanly verified placement;
//   - injected rung-1 panics never surface as 500s — the ladder
//     answers from a lower rung.
//
// The stream is 200 requests by default; set GNT_CHAOS_SECONDS to run
// time-boxed instead (the CI soak job uses 60).
func TestChaos(t *testing.T) {
	srv, err := serve.New(serve.Config{
		MaxInFlight:    4,
		QueueTimeout:   5 * time.Second,
		RequestTimeout: 5 * time.Second,
		MaxSteps:       200_000,
		MaxSourceBytes: 1 << 16,
		AllowChaos:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A concurrent scraper holds the telemetry layer to its invariants
	// for the whole soak: every scrape parses strictly, histogram
	// buckets stay cumulative, and no counter ever goes backwards.
	stopScraper := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		watchMetrics(t, ts.URL, stopScraper)
	}()

	const defaultRequests = 200
	deadline := time.Time{}
	if s := os.Getenv("GNT_CHAOS_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("bad GNT_CHAOS_SECONDS=%q", s)
		}
		deadline = time.Now().Add(time.Duration(secs) * time.Second)
	}

	type job struct {
		req  serve.Request
		kind Kind
	}
	jobs := make(chan job)
	var (
		done     atomic.Int64
		mu       sync.Mutex
		byKind   = map[Kind]int{}
		byRung   = map[string]int{}
		byStatus = map[int]int{}
	)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for j := range jobs {
				body, err := json.Marshal(j.req)
				if err != nil {
					t.Errorf("marshal: %v", err)
					continue
				}
				hr, err := client.Post(ts.URL+"/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("%s: transport error: %v", j.kind, err)
					continue
				}
				var resp serve.Response
				decErr := json.NewDecoder(hr.Body).Decode(&resp)
				hr.Body.Close()
				if decErr != nil {
					t.Errorf("%s: status %d body is not structured JSON: %v",
						j.kind, hr.StatusCode, decErr)
					continue
				}
				verdict := audit(j.kind, hr.StatusCode, &resp)
				if verdict != "" {
					t.Errorf("%s: %s (status=%d resp=%+v)", j.kind, verdict, hr.StatusCode, &resp)
				}
				mu.Lock()
				byKind[j.kind]++
				byStatus[hr.StatusCode]++
				if resp.OK {
					byRung[resp.RungName]++
				}
				mu.Unlock()
				done.Add(1)
			}
		}()
	}

	gen := NewGen(1, loadCorpus(t))
	sent := 0
	for {
		if deadline.IsZero() {
			if sent >= defaultRequests {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		req, kind := gen.Next()
		jobs <- job{req, kind}
		sent++
	}
	close(jobs)
	wg.Wait()
	close(stopScraper)
	<-scraperDone
	checkRequestAccounting(t, ts.URL, byStatus)

	if n := done.Load(); n < int64(sent) {
		t.Fatalf("only %d/%d requests completed", n, sent)
	}
	if sent < defaultRequests {
		t.Fatalf("stream too short: %d requests, want >= %d", sent, defaultRequests)
	}
	t.Logf("chaos: %d requests, kinds=%v rungs=%v statuses=%v", sent, byKind, byRung, byStatus)

	// the mixed stream must actually have descended the ladder
	if byRung["no-hoist"] == 0 {
		t.Error("stream never exercised rung 2 (no-hoist)")
	}
	if byRung["atomic"] == 0 {
		t.Error("stream never exercised rung 3 (atomic)")
	}
	if byStatus[http.StatusInternalServerError] > 0 {
		t.Errorf("%d requests got 500s; the ladder must absorb every injected failure",
			byStatus[http.StatusInternalServerError])
	}
}

// audit checks one response against the service contract; it returns a
// non-empty complaint on violation.
func audit(kind Kind, status int, resp *serve.Response) string {
	switch status {
	case http.StatusOK:
		if !resp.OK {
			return "200 with ok=false"
		}
		if resp.Rung < serve.RungFull || resp.Rung > serve.RungAtomic || resp.RungName == "" {
			return fmt.Sprintf("missing ladder rung: rung=%d name=%q", resp.Rung, resp.RungName)
		}
		if resp.Check == nil || resp.Check.Errors != 0 {
			return fmt.Sprintf("unverified placement served: %+v", resp.Check)
		}
		if resp.Annotated == "" {
			return "success without annotated source"
		}
		if kind == KindPanic && resp.Rung == serve.RungFull {
			return "rung-1 panic was injected but rung 1 still answered"
		}
	case http.StatusUnprocessableEntity:
		if resp.Code != "parse-error" && resp.Code != "chaos-disabled" {
			return fmt.Sprintf("422 with code %q", resp.Code)
		}
	case http.StatusRequestEntityTooLarge:
		if kind != KindOversized {
			return "unexpected 413"
		}
	case http.StatusTooManyRequests:
		if resp.Code != "overloaded" {
			return fmt.Sprintf("429 with code %q", resp.Code)
		}
	default:
		return fmt.Sprintf("unexpected status %d (code=%q err=%q)", status, resp.Code, resp.Error)
	}
	return ""
}
