package chaos

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"givetake/internal/obs"
	"givetake/internal/telemetry"
)

// scrape GETs and strictly parses /metrics; under chaos the exposition
// must stay well-formed on every single scrape.
func scrape(t *testing.T, url string) telemetry.Families {
	t.Helper()
	hr, err := http.Get(url + "/metrics")
	if err != nil {
		t.Errorf("scrape: %v", err)
		return nil
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("scrape: status %d", hr.StatusCode)
		return nil
	}
	fams, err := telemetry.ParseExposition(hr.Body)
	if err != nil {
		t.Errorf("scrape: exposition is not strictly parseable mid-soak: %v", err)
		return nil
	}
	return fams
}

// monotoneSeries extracts every value that must never decrease across
// scrapes: all samples of counter families, and the _count/_bucket/_sum
// samples of histogram families (observations only accumulate). Gauges
// are excluded — occupancy goes down by design.
func monotoneSeries(fams telemetry.Families) map[string]float64 {
	out := map[string]float64{}
	for _, f := range fams {
		for _, s := range f.Samples {
			include := f.Type == "counter" ||
				(f.Type == "histogram" && s.Name != f.Name)
			if !include {
				continue
			}
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var b strings.Builder
			b.WriteString(s.Name)
			for _, k := range keys {
				fmt.Fprintf(&b, "{%s=%q}", k, s.Labels[k])
			}
			out[b.String()] = s.Value
		}
	}
	return out
}

// checkMonotone asserts that no counter or histogram accumulator went
// backwards between two consecutive scrapes. A series may appear (new
// label values) but an existing one must never shrink or vanish.
func checkMonotone(t *testing.T, prev, cur map[string]float64) {
	t.Helper()
	for key, was := range prev {
		now, ok := cur[key]
		if !ok {
			t.Errorf("series %s vanished between scrapes", key)
			continue
		}
		if now < was {
			t.Errorf("series %s went backwards: %v -> %v", key, was, now)
		}
	}
}

// checkBucketsCumulative asserts that within one scrape every
// histogram's buckets are non-decreasing in le order and that the +Inf
// bucket equals the series count.
func checkBucketsCumulative(t *testing.T, fams telemetry.Families) {
	t.Helper()
	for _, f := range fams {
		if f.Type != "histogram" {
			continue
		}
		type bkt struct {
			le  float64
			val float64
		}
		groups := map[string][]bkt{}
		counts := map[string]float64{}
		for _, s := range f.Samples {
			rest := make([]string, 0, len(s.Labels))
			for k, v := range s.Labels {
				if k != "le" {
					rest = append(rest, k+"="+v)
				}
			}
			sort.Strings(rest)
			gk := strings.Join(rest, ",")
			switch {
			case strings.HasSuffix(s.Name, "_bucket"):
				le := math.Inf(1)
				if s.Labels["le"] != "+Inf" {
					v, err := strconv.ParseFloat(s.Labels["le"], 64)
					if err != nil {
						t.Errorf("%s: bad le %q", f.Name, s.Labels["le"])
						continue
					}
					le = v
				}
				groups[gk] = append(groups[gk], bkt{le, s.Value})
			case strings.HasSuffix(s.Name, "_count"):
				counts[gk] = s.Value
			}
		}
		for gk, bkts := range groups {
			sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
			for i := 1; i < len(bkts); i++ {
				if bkts[i].val < bkts[i-1].val {
					t.Errorf("%s{%s}: bucket le=%v (%v) below le=%v (%v); buckets must be cumulative",
						f.Name, gk, bkts[i].le, bkts[i].val, bkts[i-1].le, bkts[i-1].val)
				}
			}
			if n := len(bkts); n > 0 && !math.IsInf(bkts[n-1].le, 1) {
				t.Errorf("%s{%s}: no +Inf bucket", f.Name, gk)
			}
			if n := len(bkts); n > 0 && math.IsInf(bkts[n-1].le, 1) && bkts[n-1].val != counts[gk] {
				t.Errorf("%s{%s}: +Inf bucket %v != count %v", f.Name, gk, bkts[n-1].val, counts[gk])
			}
		}
	}
}

// watchMetrics scrapes /metrics on an interval until stop closes,
// asserting the cross-scrape invariants on every pair of consecutive
// scrapes. It returns after the final scrape.
func watchMetrics(t *testing.T, url string, stop <-chan struct{}) {
	var prev map[string]float64
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		fams := scrape(t, url)
		if fams != nil {
			checkBucketsCumulative(t, fams)
			cur := monotoneSeries(fams)
			if prev != nil {
				checkMonotone(t, prev, cur)
			}
			prev = cur
		}
		select {
		case <-stop:
			return
		case <-tick.C:
		}
	}
}

// checkRequestAccounting asserts post-soak that the server's
// requests_total family accounts for exactly the requests the harness
// sent, per status. The middleware records after the response bytes
// reach the client, so the final tallies are polled briefly.
func checkRequestAccounting(t *testing.T, url string, byStatus map[int]int) {
	t.Helper()
	var sent float64
	for _, n := range byStatus {
		sent += float64(n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		fams := scrape(t, url)
		if fams == nil {
			return
		}
		total := fams.Sum(obs.MetricRequestsTotal, map[string]string{"route": "/analyze"})
		if total == sent {
			for status, n := range byStatus {
				got := fams.Sum(obs.MetricRequestsTotal,
					map[string]string{"route": "/analyze", "status": strconv.Itoa(status)})
				if got != float64(n) {
					t.Errorf("requests_total{/analyze,%d} = %v, harness saw %d", status, got, n)
				}
			}
			// The latency histogram must account for the same traffic.
			hist := fams.Sum(obs.MetricRequestDuration+"_count", map[string]string{"route": "/analyze"})
			if hist != sent {
				t.Errorf("request_duration_count{/analyze} = %v, want %v", hist, sent)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("requests_total{/analyze} settled at %v, harness sent %v", total, sent)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
