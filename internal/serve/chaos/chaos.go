// Package chaos generates adversarial request streams for the analysis
// service: well-formed corpus programs, randomly generated programs,
// malformed sources, oversized bodies, 1ms deadline storms, injected
// mid-stage panics, and seeded solution corruptions. The harness
// (chaos_test.go) replays a mixed stream against a live server and
// asserts the service contract: the process never crashes, every
// request gets a structured JSON response naming its degradation-ladder
// rung, and every successful placement verified cleanly.
package chaos

import (
	"math/rand"

	"givetake/internal/progen"
	"givetake/internal/serve"
)

// Kind classifies one generated request.
type Kind string

const (
	// KindCorpus replays a real corpus program unmodified.
	KindCorpus Kind = "corpus"
	// KindGenerated sends a seeded random program with distributed
	// arrays (real analysis work).
	KindGenerated Kind = "generated"
	// KindMalformed sends syntactically broken source (parse error).
	KindMalformed Kind = "malformed"
	// KindOversized sends a body beyond the server's source cap (413).
	KindOversized Kind = "oversized"
	// KindPanic injects a panic into rung 1 (the ladder must recover
	// and answer from a lower rung).
	KindPanic Kind = "panic"
	// KindMutate corrupts the rung-1 solution before verification (the
	// verifier must catch it and the ladder must descend).
	KindMutate Kind = "mutate"
	// KindDeadline sends a healthy program with a 1ms deadline and a
	// stalled analysis (the detached atomic floor must still answer).
	KindDeadline Kind = "deadline"
)

// kinds and weights of the mixed stream; heavier on the healthy kinds
// so degradation stays the exception the way production traffic would
// have it, but every failure mode appears many times in 200 requests.
var mix = []struct {
	kind   Kind
	weight int
}{
	{KindCorpus, 5},
	{KindGenerated, 5},
	{KindMalformed, 2},
	{KindOversized, 1},
	{KindPanic, 2},
	{KindMutate, 2},
	{KindDeadline, 3},
}

// Gen produces a deterministic adversarial request stream.
type Gen struct {
	rng    *rand.Rand
	corpus []string
	total  int
}

// NewGen seeds a generator over the given corpus sources (may be
// empty; corpus draws then fall back to generated programs).
func NewGen(seed int64, corpus []string) *Gen {
	g := &Gen{rng: rand.New(rand.NewSource(seed)), corpus: corpus}
	for _, m := range mix {
		g.total += m.weight
	}
	return g
}

// malformed sources: lexer errors, parser errors, truncations.
var malformed = []string{
	"do i = \n",
	"if then\nendif",
	"distributed x(\n",
	"x(1) = @#$%\n",
	"do i = 1, n\n", // unterminated loop
	"goto nowhere\n",
	"enddo\n",
}

// Next returns the next request and its kind.
func (g *Gen) Next() (serve.Request, Kind) {
	w := g.rng.Intn(g.total)
	var kind Kind
	for _, m := range mix {
		if w < m.weight {
			kind = m.kind
			break
		}
		w -= m.weight
	}

	healthy := func() string {
		if len(g.corpus) > 0 && g.rng.Intn(2) == 0 {
			return g.corpus[g.rng.Intn(len(g.corpus))]
		}
		return progen.GenerateSource(g.rng.Int63n(1<<30)+1, progen.Config{
			Stmts: 10 + g.rng.Intn(30), Arrays: true,
		})
	}

	switch kind {
	case KindCorpus, KindGenerated:
		return serve.Request{Source: healthy()}, kind
	case KindMalformed:
		return serve.Request{Source: malformed[g.rng.Intn(len(malformed))]}, kind
	case KindOversized:
		// a single long comment line blows the byte cap without costing
		// generation time
		big := make([]byte, 1<<17)
		for i := range big {
			big[i] = 'x'
		}
		return serve.Request{Source: "! " + string(big) + "\ns = 1\n"}, kind
	case KindPanic:
		return serve.Request{
			Source: healthy(),
			Chaos:  &serve.ChaosSpec{PanicRung: serve.RungName(serve.RungFull)},
		}, kind
	case KindMutate:
		return serve.Request{
			Source: healthy(),
			Chaos:  &serve.ChaosSpec{MutateSeed: g.rng.Int63n(1<<30) + 1},
		}, kind
	default: // KindDeadline
		// stall rungs 1-2 past the 1ms deadline so the storm actually
		// exhausts the budget and the atomic floor must answer
		return serve.Request{
			Source:    healthy(),
			TimeoutMS: 1,
			Chaos:     &serve.ChaosSpec{StallMS: 20},
		}, kind
	}
}
