package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// getReadyz fetches /readyz and decodes its payload.
func getReadyz(t *testing.T, url string) (int, Readiness) {
	t.Helper()
	hr, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer hr.Body.Close()
	var rd Readiness
	if err := json.NewDecoder(hr.Body).Decode(&rd); err != nil {
		t.Fatalf("readyz body is not JSON: %v", err)
	}
	return hr.StatusCode, rd
}

// TestReadyzReportsDraining pins the drain protocol's observable core:
// the moment BeginDrain is called, /readyz answers 503 with reason
// "draining" — not the bare warming 503 — while a request already in
// flight (a chaos stall holding its analysis slot) still completes
// with 200. Routers key on the reason to distinguish "node going away
// politely" from "node still warming".
func TestReadyzReportsDraining(t *testing.T) {
	s := mustNew(t, Config{AllowChaos: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, rd := getReadyz(t, ts.URL); code != http.StatusOK || !rd.Ready {
		t.Fatalf("fresh server readyz = %d %+v, want 200 ready", code, rd)
	}

	// park one request mid-analysis so the drain overlaps real work
	inflight := make(chan *http.Response, 1)
	go func() {
		b, _ := json.Marshal(Request{Source: goodSrc, Chaos: &ChaosSpec{StallMS: 400}})
		hr, err := http.Post(ts.URL+"/analyze", "application/json", bytes.NewReader(b))
		if err != nil {
			inflight <- nil
			return
		}
		inflight <- hr
	}()
	time.Sleep(50 * time.Millisecond) // let the stall begin

	s.BeginDrain()
	code, rd := getReadyz(t, ts.URL)
	if code != http.StatusServiceUnavailable || rd.Ready || rd.Reason != ReasonDraining {
		t.Fatalf("draining readyz = %d %+v, want 503 reason=%q", code, rd, ReasonDraining)
	}

	hr := <-inflight
	if hr == nil {
		t.Fatal("in-flight request failed during drain")
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request finished %d during drain, want 200", hr.StatusCode)
	}
	// new work is still served until the listener actually closes — the
	// grace window exists so routers stop first, not so the node 503s
	if hr2, resp := postJSON(t, ts.URL, Request{Source: goodSrc}); hr2.StatusCode != http.StatusOK {
		t.Fatalf("request during grace window got %d (%+v), want 200", hr2.StatusCode, resp)
	}
}

// TestListenAndServeDrainsBeforeClosing runs the real shutdown path: a
// canceled ListenAndServe must flip /readyz to draining while the
// listener is still accepting (the grace window), and an in-flight
// request started before cancellation must complete.
func TestListenAndServeDrainsBeforeClosing(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	s := mustNew(t, Config{Addr: addr, AllowChaos: true, DrainGrace: 300 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx) }()

	url := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		if hr, err := http.Get(url + "/readyz"); err == nil {
			hr.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	inflight := make(chan *http.Response, 1)
	go func() {
		b, _ := json.Marshal(Request{Source: goodSrc, Chaos: &ChaosSpec{StallMS: 150}})
		hr, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(b))
		if err != nil {
			inflight <- nil
			return
		}
		inflight <- hr
	}()
	time.Sleep(50 * time.Millisecond)

	cancel()
	// inside the grace window the listener still answers, and readyz
	// reports the drain
	code, rd := getReadyz(t, url)
	if code != http.StatusServiceUnavailable || rd.Reason != ReasonDraining {
		t.Fatalf("readyz during grace = %d %+v, want 503 %q", code, rd, ReasonDraining)
	}

	hr := <-inflight
	if hr == nil {
		t.Fatal("in-flight request failed across shutdown")
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request finished %d across shutdown, want 200", hr.StatusCode)
	}

	select {
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			t.Fatalf("ListenAndServe returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe never returned after cancellation")
	}
}

// TestRetryAfterHelperExported keeps the exported helper's semantics
// pinned for its second consumer (the cluster router): ceil to whole
// seconds, floored at 1.
func TestRetryAfterHelperExported(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{3 * time.Second, 3},
	} {
		if got := RetryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestCacheKeyForMatchesRouting pins that the exported key covers the
// fields the router must agree on: two requests differing in any of
// source, execute, n, or timeout_ms get different keys; identical
// requests get identical keys.
func TestCacheKeyForMatchesRouting(t *testing.T) {
	base := Request{Source: goodSrc}
	same := Request{Source: goodSrc}
	if CacheKeyFor(&base) != CacheKeyFor(&same) {
		t.Fatal("identical requests must share a cache key")
	}
	variants := []Request{
		{Source: goodSrc + "\n"},
		{Source: goodSrc, Execute: true},
		{Source: goodSrc, N: 16},
		{Source: goodSrc, TimeoutMS: 50},
	}
	seen := map[string]int{CacheKeyFor(&base): -1}
	for i := range variants {
		k := CacheKeyFor(&variants[i])
		if j, dup := seen[k]; dup {
			t.Fatalf("variant %d aliases variant %d (%s)", i, j, fmt.Sprint(variants[i]))
		}
		seen[k] = i
	}
}
