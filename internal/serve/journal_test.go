package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"givetake/internal/journal"
)

// srcAt builds a distinct valid program per index, so every request
// has its own cache key and its own rendered bytes.
func srcAt(i int) string {
	return fmt.Sprintf("distributed x(1000)\nreal y(1000)\n\ndo i = 1, n\n    y(i) = x(i) + %d\nenddo\n", i+1)
}

// postSrc posts one analysis of src via the shared postRaw helper.
func postSrc(t *testing.T, url, src string) (int, string, []byte) {
	t.Helper()
	return postRaw(t, url, Request{Source: src})
}

// waitReady polls /readyz until it reports 200 or the deadline passes.
func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		hr, err := http.Get(url + "/readyz")
		if err == nil {
			hr.Body.Close()
			if hr.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never became ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrashRestartWarmServe is the serve-level kill -9 harness: a node
// serves traffic into a journaled cache, dies without flushing (SIGKILL
// semantics — Abort plus backend crash, discarding everything
// unsynced), restarts on the same storage, reports ready once replay
// completes, and then serves the pre-crash working set as cache hits
// with byte-identical bodies.
func TestCrashRestartWarmServe(t *testing.T) {
	mb := journal.NewMemBackend()
	srv1 := mustNew(t, Config{JournalBackend: mb, JournalFlushWait: time.Millisecond})
	ts1 := httptest.NewServer(srv1.Handler())
	waitReady(t, ts1.URL)

	const n = 6
	bodies := map[string][]byte{}
	for i := 0; i < n; i++ {
		status, src, body := postSrc(t, ts1.URL, srcAt(i))
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, body)
		}
		if src != "miss" {
			t.Fatalf("request %d: cold serve reported %q, want miss", i, src)
		}
		bodies[srcAt(i)] = body
	}
	// wait for the group commit to seal everything served, then crash:
	// no drain, no final flush, unsynced bytes discarded
	deadline := time.Now().Add(5 * time.Second)
	for srv1.Journal().Stats().SealedRecords < n {
		if time.Now().After(deadline) {
			t.Fatalf("journal never sealed the served results: %+v", srv1.Journal().Stats())
		}
		time.Sleep(time.Millisecond)
	}
	ts1.Close()
	srv1.Journal().Abort()
	srv1.Engine().Close()
	mb.Crash()

	srv2 := mustNew(t, Config{JournalBackend: mb})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	waitReady(t, ts2.URL)

	h := getHealth(t, ts2.URL)
	if h.Journal == nil || !h.Journal.ReplayDone {
		t.Fatalf("healthz journal block missing or not done: %+v", h.Journal)
	}
	if h.Journal.Replay.Records != n || h.Journal.Replay.Corrupt() {
		t.Fatalf("replay stats %+v, want %d clean records", h.Journal.Replay, n)
	}

	for src, want := range bodies {
		status, disp, got := postSrc(t, ts2.URL, src)
		if status != http.StatusOK {
			t.Fatalf("warm status %d: %s", status, got)
		}
		if disp != "hit" {
			t.Fatalf("restarted node served %q, want hit (replay did not warm the cache)", disp)
		}
		if string(got) != string(want) {
			t.Fatalf("warm bytes differ from pre-crash serve for %q", src)
		}
	}
}

// TestCrashLosesOnlyUnsealedTail: results the crash caught before their
// group commit are simply recomputed after restart — served as misses,
// not errors.
func TestCrashLosesOnlyUnsealedTail(t *testing.T) {
	mb := journal.NewMemBackend()
	// an hour-long flush wait: nothing seals unless the batch fills
	srv1 := mustNew(t, Config{JournalBackend: mb, JournalFlushWait: time.Hour})
	ts1 := httptest.NewServer(srv1.Handler())
	status, _, body := postSrc(t, ts1.URL, srcAt(0))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	ts1.Close()
	srv1.Journal().Abort()
	srv1.Engine().Close()
	mb.Crash()

	srv2 := mustNew(t, Config{JournalBackend: mb})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	waitReady(t, ts2.URL)
	status, disp, _ := postSrc(t, ts2.URL, srcAt(0))
	if status != http.StatusOK || disp != "miss" {
		t.Fatalf("lost-tail request: status %d disposition %q, want a clean recompute", status, disp)
	}
}

func getHealth(t *testing.T, url string) Health {
	t.Helper()
	hr, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestReadyzWithoutJournal: a journal-less server is ready immediately.
func TestReadyzWithoutJournal(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d without a journal, want 200", hr.StatusCode)
	}
	if h := getHealth(t, ts.URL); h.Journal != nil {
		t.Fatalf("healthz reports a journal block without a journal: %+v", h.Journal)
	}
}

// TestOverloadRetryAfterAndAdmission: a shed request carries a
// Retry-After header derived from the queue timeout and the won/shed
// admission balance in its JSON body.
func TestOverloadRetryAfterAndAdmission(t *testing.T) {
	srv := mustNew(t, Config{
		MaxInFlight:  1,
		QueueTimeout: 30 * time.Millisecond,
		AllowChaos:   true,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// occupy the single slot long enough for the probe to shed
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		b, _ := json.Marshal(Request{Source: srcAt(0), Chaos: &ChaosSpec{StallMS: 400}})
		hr, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(string(b)))
		if err == nil {
			io.Copy(io.Discard, hr.Body)
			hr.Body.Close()
		}
	}()
	// wait until the blocker holds the slot
	deadline := time.Now().Add(5 * time.Second)
	for srv.inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never took the slot")
		}
		time.Sleep(time.Millisecond)
	}

	b, _ := json.Marshal(Request{Source: srcAt(1)})
	hr, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	<-blocked
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", hr.StatusCode)
	}
	ra, err := strconv.Atoi(hr.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", hr.Header.Get("Retry-After"))
	}
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != "overloaded" || resp.Admission == nil {
		t.Fatalf("shed body = %+v, want overloaded with admission counts", resp)
	}
	if resp.Admission.Shed < 1 {
		t.Fatalf("admission counts %+v do not include this shed", resp.Admission)
	}
}

// TestRetryAfterSeconds pins the rounding: sub-second timeouts floor at
// 1, longer ones round up.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{30 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
	} {
		if got := RetryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
