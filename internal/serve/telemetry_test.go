package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"givetake/internal/journal"
	"givetake/internal/obs"
	"givetake/internal/telemetry"
)

// gatedBackend delays segment reads until the gate opens, pinning the
// server inside its warming window so tests can observe it.
type gatedBackend struct {
	journal.Backend
	gate chan struct{}
}

func (g *gatedBackend) Open(name string) (io.ReadCloser, error) {
	<-g.gate
	return g.Backend.Open(name)
}

// syncBuffer is a goroutine-safe bytes.Buffer for the access log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// scrapeMetrics GETs /metrics and strictly parses the exposition —
// every scrape in the suite doubles as a format check.
func scrapeMetrics(t *testing.T, url string) telemetry.Families {
	t.Helper()
	hr, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	fams, err := telemetry.ParseExposition(hr.Body)
	if err != nil {
		t.Fatalf("/metrics is not strictly parseable: %v", err)
	}
	return fams
}

// TestMetricsAndHealthzServedWhileWarming pins the degraded-visibility
// contract: during the startup replay window /readyz refuses traffic
// with 503, while /healthz and /metrics answer 200 with their explicit
// Content-Types — a warming node is exactly when an operator needs
// them. The replay window is held open by gating segment reads.
func TestMetricsAndHealthzServedWhileWarming(t *testing.T) {
	// Fill a journal so the restarted node has something to replay.
	mb := journal.NewMemBackend()
	seed := mustNew(t, Config{JournalBackend: mb, JournalFlushWait: time.Millisecond})
	ts := httptest.NewServer(seed.Handler())
	waitReady(t, ts.URL)
	if status, _, body := postSrc(t, ts.URL, srcAt(0)); status != http.StatusOK {
		t.Fatalf("seed request: status %d: %s", status, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for seed.Journal().Stats().SealedRecords < 1 {
		if time.Now().After(deadline) {
			t.Fatal("seed journal never sealed")
		}
		time.Sleep(time.Millisecond)
	}
	ts.Close()
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	srv := mustNew(t, Config{JournalBackend: &gatedBackend{Backend: mb, gate: gate}})
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()

	// Warming: /readyz refuses, /healthz and /metrics answer.
	hr, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while warming: status %d, want 503", hr.StatusCode)
	}

	hr, err = http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while warming: status %d, want 200", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/healthz Content-Type = %q, want application/json", ct)
	}

	fams := scrapeMetrics(t, ts2.URL)
	if v, ok := fams.Value(obs.MetricReady, nil); !ok || v != 0 {
		t.Fatalf("gnt_ready while warming = %v, %v; want 0", v, ok)
	}

	close(gate)
	waitReady(t, ts2.URL)
	fams = scrapeMetrics(t, ts2.URL)
	if v, ok := fams.Value(obs.MetricReady, nil); !ok || v != 1 {
		t.Fatalf("gnt_ready after replay = %v, %v; want 1", v, ok)
	}
	if v, ok := fams.Value(obs.MetricJournalReplayed, nil); !ok || v < 1 {
		t.Fatalf("replayed counter after warm = %v, %v; want >= 1", v, ok)
	}
}

// findTrace polls /debug/requests until the trace with the given ID is
// retained (the middleware records after the response is written, so
// the client can win that race).
func findTrace(t *testing.T, url, id string) telemetry.RequestTrace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		hr, err := http.Get(url + "/debug/requests?format=json&id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		if ct := hr.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("/debug/requests json Content-Type = %q", ct)
		}
		var out struct {
			Traces []telemetry.RequestTrace `json:"traces"`
		}
		err = json.NewDecoder(hr.Body).Decode(&out)
		hr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Traces) > 0 {
			return out.Traces[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared in /debug/requests", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEndToEndTraceReconstruction is the acceptance test of the
// telemetry layer: one request to a warm server is fully
// reconstructable after the fact — the access-log line, the
// /debug/requests trace (per-stage spans, per-attempt ladder
// outcomes), and the /metrics deltas all carry the same X-Gnt-Trace ID
// or line up with the request it identifies.
func TestEndToEndTraceReconstruction(t *testing.T) {
	var access syncBuffer
	srv := mustNew(t, Config{AccessLog: &access, AccessLogEvery: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := scrapeMetrics(t, ts.URL)

	const traceID = "e2e-reconstruction-0001"
	body, _ := json.Marshal(Request{Source: srcAt(0)})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader, traceID)
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	respBody, _ := io.ReadAll(hr.Body)
	hr.Body.Close()

	// The response itself names the trace, the rung, and the cache path.
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", hr.StatusCode, respBody)
	}
	if got := hr.Header.Get(telemetry.TraceHeader); got != traceID {
		t.Fatalf("echoed trace ID %q, want %q", got, traceID)
	}
	if got := hr.Header.Get("X-Gnt-Cache"); got != "miss" {
		t.Fatalf("cache disposition %q, want miss", got)
	}
	if got := hr.Header.Get("X-Gnt-Rung"); got != "full" {
		t.Fatalf("X-Gnt-Rung = %q, want full", got)
	}

	// /debug/requests: the ring retains the request with its ladder
	// attempts and per-stage spans.
	tr := findTrace(t, ts.URL, traceID)
	if tr.Route != "/analyze" || tr.Status != http.StatusOK || tr.Cache != "miss" || tr.Rung != "full" {
		t.Fatalf("trace = %+v, want /analyze 200 miss full", tr)
	}
	if len(tr.Attempts) != 1 || tr.Attempts[0].Rung != "full" || tr.Attempts[0].Outcome != "ok" {
		t.Fatalf("trace attempts = %+v, want one ok attempt at full", tr.Attempts)
	}
	stages := map[string]bool{}
	for _, sp := range tr.Spans {
		stages[sp.Name] = true
	}
	for _, want := range []string{obs.SpanEngineAnalyze, obs.SpanCFGBuild, obs.SpanSolveRead, obs.SpanSolveWrite} {
		if !stages[want] {
			t.Errorf("trace spans missing stage %q (have %v)", want, tr.Spans)
		}
	}

	// The access log carries the same trace ID and labels.
	var entry telemetry.AccessEntry
	found := false
	for _, line := range strings.Split(strings.TrimSpace(access.String()), "\n") {
		if line == "" {
			continue
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("access log line is not JSON: %v: %s", err, line)
		}
		if entry.Trace == traceID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no access-log line with trace %s:\n%s", traceID, access.String())
	}
	if entry.Route != "/analyze" || entry.Status != 200 || entry.Cache != "miss" || entry.Rung != "full" {
		t.Fatalf("access entry = %+v", entry)
	}

	// /metrics: the request moved exactly the families it should.
	after := scrapeMetrics(t, ts.URL)
	reqDelta := after.Sum(obs.MetricRequestsTotal, map[string]string{"route": "/analyze", "status": "200"}) -
		before.Sum(obs.MetricRequestsTotal, map[string]string{"route": "/analyze", "status": "200"})
	if reqDelta != 1 {
		t.Errorf("requests_total{/analyze,200} delta = %v, want 1", reqDelta)
	}
	attDelta := after.Sum(obs.MetricLadderAttempts, map[string]string{"rung": "full", "outcome": "ok"}) -
		before.Sum(obs.MetricLadderAttempts, map[string]string{"rung": "full", "outcome": "ok"})
	if attDelta != 1 {
		t.Errorf("ladder_attempts{full,ok} delta = %v, want 1", attDelta)
	}
	stageDelta := after.Sum(obs.MetricStageDuration+"_count", map[string]string{"stage": obs.SpanCFGBuild}) -
		before.Sum(obs.MetricStageDuration+"_count", map[string]string{"stage": obs.SpanCFGBuild})
	if stageDelta < 1 {
		t.Errorf("stage_duration{cfg-build} count delta = %v, want >= 1", stageDelta)
	}
	if v := after.Sum(obs.MetricCacheEvents, map[string]string{"event": "miss"}); v < 1 {
		t.Errorf("cache miss counter = %v, want >= 1", v)
	}
	if v := after.Sum(obs.MetricAdmissionTotal, map[string]string{"outcome": "won"}); v < 1 {
		t.Errorf("admission won counter = %v, want >= 1", v)
	}

	// A second identical request is a cache hit — still traced, with
	// the stored body's ladder but no stage spans (no stage ran).
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/analyze", bytes.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(telemetry.TraceHeader, traceID+"-hit")
	hr2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr2.Body)
	hr2.Body.Close()
	if got := hr2.Header.Get("X-Gnt-Cache"); got != "hit" {
		t.Fatalf("second request disposition %q, want hit", got)
	}
	if got := hr2.Header.Get("X-Gnt-Rung"); got != "full" {
		t.Fatalf("hit X-Gnt-Rung = %q, want full (meta must come from the stored body)", got)
	}
	tr2 := findTrace(t, ts.URL, traceID+"-hit")
	if tr2.Cache != "hit" || tr2.Rung != "full" || len(tr2.Attempts) != 1 {
		t.Fatalf("hit trace = %+v, want cached meta preserved", tr2)
	}
	if len(tr2.Spans) != 0 {
		t.Fatalf("hit trace has %d spans, want 0 (nothing ran)", len(tr2.Spans))
	}
}

// TestInvalidWireTraceIDReplaced: a hostile or malformed X-Gnt-Trace
// header is never propagated into logs and traces.
func TestInvalidWireTraceIDReplaced(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(Request{Source: srcAt(1)})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/analyze", bytes.NewReader(body))
	req.Header.Set(telemetry.TraceHeader, strings.Repeat("x", 65)+" !")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	got := hr.Header.Get(telemetry.TraceHeader)
	if got == "" || strings.Contains(got, " ") || !telemetry.ValidTraceID(got) {
		t.Fatalf("replacement trace ID %q is not a fresh valid ID", got)
	}
}
