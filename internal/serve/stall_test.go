package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestStallForHonorsCancellation is the regression test for the chaos
// stall: the old time.After select leaked one pending timer per
// canceled request. stallFor must return promptly on cancellation and
// stop its timer on that path.
func TestStallForHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := stallFor(ctx, 5*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stallFor waited %v after cancellation", elapsed)
	}
}

func TestStallForElapses(t *testing.T) {
	start := time.Now()
	if err := stallFor(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("stallFor returned before its duration elapsed")
	}
}

// TestStallForDeadline covers the deadline flavor of cancellation.
func TestStallForDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := stallFor(ctx, 5*time.Second); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}
