// Package serve turns the GIVE-N-TAKE pipeline into a long-running
// analysis service: POST a mini-Fortran program, get back a verified
// communication placement as structured JSON. The package exists to
// harden the analysis against the failure modes a batch CLI can shrug
// off but a service cannot — panics, pathological inputs, deadline
// storms, and overload — via three mechanisms:
//
//   - per-request isolation: every stage runs behind a recover
//     boundary, so one poisoned request can never take the process
//     down, and a typed solver-invariant violation (core.ErrInvariant)
//     is an error, not a crash;
//
//   - a degradation ladder (ladder.go): full placement → no-hoist
//     (STEAL_init) retry → atomic-at-consumption floor. The floor runs
//     no dataflow solver and is trivially balanced, so every
//     well-formed request ends in a statically verified placement;
//
//   - admission control: a bounded in-flight pool with a queue
//     timeout sheds overload as 429s instead of queueing unboundedly,
//     and request bodies are capped before JSON decoding.
//
// The chaos subpackage replays corpus and generated programs with
// injected panics, corrupted solutions, malformed sources, and
// 1ms deadlines to demonstrate all of the above under fire.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"givetake/internal/comm"
	"givetake/internal/engine"
	"givetake/internal/journal"
	"givetake/internal/telemetry"
)

// Defaults for the zero Config.
const (
	DefaultMaxInFlight    = 4
	DefaultQueueTimeout   = 2 * time.Second
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxSteps       = 2_000_000
	DefaultMaxSourceBytes = 1 << 20
	DefaultMaxBatch       = 64
	DefaultDrainGrace     = 250 * time.Millisecond
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (":8075" style).
	Addr string
	// MaxInFlight bounds concurrently analyzed requests; excess waits.
	MaxInFlight int
	// QueueTimeout bounds how long an excess request waits for a slot
	// before being shed with 429.
	QueueTimeout time.Duration
	// RequestTimeout caps each request's analysis wall clock; a
	// client-supplied timeout_ms is clamped to it.
	RequestTimeout time.Duration
	// MaxSteps is the execution step budget for execute=true requests.
	MaxSteps int64
	// MaxSourceBytes caps the request body (413 beyond it).
	MaxSourceBytes int64
	// MaxBatch bounds the programs accepted in one /batch request.
	MaxBatch int
	// Workers sizes the engine's leaf-task pool; zero means GOMAXPROCS.
	Workers int
	// CacheBytes bounds the engine's result cache; zero means the engine
	// default, negative disables caching.
	CacheBytes int64
	// AllowChaos honors fault-injection fields on requests. Never set
	// in production; the chaos harness sets it.
	AllowChaos bool

	// JournalDir, when set, makes the result cache durable: cache fills
	// group-commit to a segment journal under this directory, and a
	// restart replays the verified records into a warm cache before
	// /readyz reports ready.
	JournalDir string
	// JournalBackend overrides the journal's storage (tests inject a
	// MemBackend or FaultBackend); it wins over JournalDir.
	JournalBackend journal.Backend
	// JournalFlushWait bounds how long an appended record may sit
	// unsealed before the group commit fires; zero means the journal
	// default (50ms).
	JournalFlushWait time.Duration
	// JournalMaxBatch bounds records per group commit; zero means the
	// journal default (64).
	JournalMaxBatch int

	// Metrics, when set, is the registry the server's metric families
	// register on (shared across servers in tests); nil creates a
	// private registry. Either way /metrics serves it.
	Metrics *telemetry.Registry
	// TraceRingSize bounds the /debug/requests ring; zero means
	// telemetry.DefaultTraceRing (128).
	TraceRingSize int
	// AccessLog, when set, receives one structured JSON line per
	// sampled analysis request; nil disables access logging.
	AccessLog io.Writer
	// AccessLogEvery samples every nth analysis request into the access
	// log (values below 1 log all).
	AccessLogEvery int
	// PprofAddr, when set, serves net/http/pprof on its own listener
	// (ListenAndServe starts it alongside the service listener). Kept
	// off the service mux so profiling exposure is a bind decision.
	PprofAddr string

	// DrainGrace is how long a context-canceled ListenAndServe keeps
	// the listener open after flipping /readyz to draining: routers and
	// load balancers polling readiness stop sending new work before the
	// port actually closes, so a rolling restart never bounces a request
	// off a closed socket. Zero means DefaultDrainGrace; negative
	// disables the grace window (tests).
	DrainGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = DefaultQueueTimeout
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = DefaultMaxSteps
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = DefaultMaxSourceBytes
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.DrainGrace == 0 {
		c.DrainGrace = DefaultDrainGrace
	}
	return c
}

// Server is the analysis service. Create with New, mount Handler (or
// call ListenAndServe), and every POST /analyze gets a Response.
type Server struct {
	cfg      Config
	sem      chan struct{}
	engine   *engine.Engine
	journal  *journal.Journal
	inst     *instruments
	inFlight atomic.Int64
	served   atomic.Int64
	shed     atomic.Int64
	mux      *http.ServeMux

	ready     atomic.Bool // journal replay complete (or no journal)
	draining  atomic.Bool // shutdown begun: finish in-flight, take no new work
	replayMu  sync.Mutex
	replay    journal.ReplayStats
	replayErr error
}

// New builds a Server from cfg (zero fields take defaults). With a
// journal configured (JournalDir or JournalBackend), New opens the
// segment log, starts replaying it into the result cache in the
// background, and /readyz reports 503 until the replay finishes; the
// error return covers journal storage that cannot be opened.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()

	// Telemetry exists before the journal and engine do: both take the
	// bridge as their collector, so their counters and spans feed the
	// same /metrics families from the first replayed record onward.
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	inst := newInstruments(reg,
		telemetry.NewTraceRing(cfg.TraceRingSize),
		telemetry.NewAccessLog(cfg.AccessLog, cfg.AccessLogEvery))

	backend := cfg.JournalBackend
	if backend == nil && cfg.JournalDir != "" {
		fb, err := journal.NewFileBackend(cfg.JournalDir)
		if err != nil {
			return nil, fmt.Errorf("journal dir: %w", err)
		}
		backend = fb
	}
	var jn *journal.Journal
	if backend != nil {
		j, err := journal.Open(journal.Config{
			Backend:   backend,
			MaxBatch:  cfg.JournalMaxBatch,
			MaxWait:   cfg.JournalFlushWait,
			Collector: inst.bridge,
		})
		if err != nil {
			return nil, fmt.Errorf("journal open: %w", err)
		}
		jn = j
	}
	s := &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		journal: jn,
		inst:    inst,
		engine: engine.New(engine.Config{
			Workers:    cfg.Workers,
			CacheBytes: cfg.CacheBytes,
			Journal:    jn,
			Collector:  inst.bridge,
		}),
	}
	s.registerGauges()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	// /metrics and /debug/requests answer regardless of readiness: a
	// warming node is exactly when an operator needs them.
	s.mux.Handle("/metrics", reg.Handler())
	s.mux.Handle("/debug/requests", inst.traces.Handler())
	if jn == nil {
		s.ready.Store(true)
	} else {
		go s.warm()
	}
	return s, nil
}

// warm replays the journal into the result cache, then flips ready.
// Corruption in the log is counted and skipped by the journal layer —
// only backend access failures surface as a replay error, and even
// then the node becomes ready (cold) rather than wedged.
func (s *Server) warm() {
	rs, err := s.engine.WarmFromJournal(context.Background())
	s.replayMu.Lock()
	s.replay, s.replayErr = rs, err
	s.replayMu.Unlock()
	s.ready.Store(true)
}

// Close stops the engine workers and drains the journal: the pending
// batch group-commits before the process exits, so a graceful shutdown
// loses nothing. (A crash loses at most the unsealed tail — that is
// the durability contract.)
func (s *Server) Close() error {
	s.engine.Close()
	return s.journal.Close()
}

// Engine exposes the server's analysis engine (stats, tests).
func (s *Server) Engine() *engine.Engine { return s.engine }

// Journal exposes the server's result journal (nil when not
// configured); the crash harness uses it to simulate SIGKILL.
func (s *Server) Journal() *journal.Journal { return s.journal }

// Ready reports whether startup replay has completed (always true
// without a journal).
func (s *Server) Ready() bool { return s.ready.Load() }

// BeginDrain flips the server into draining: /readyz answers 503 with
// reason "draining" from this moment on, so routers stop sending new
// work, while everything already in flight (and anything that still
// arrives before the listener closes) is served normally. Idempotent;
// ListenAndServe calls it on context cancellation, before the listener
// closes.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's HTTP handler: the instrumentation
// middleware outside the outermost panic boundary, so even a request
// that panics its way to a structured 500 is counted, timed, and
// traced as one.
func (s *Server) Handler() http.Handler {
	boundary := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// net/http would recover too, but would kill the
				// connection without a body; we owe every request a
				// structured answer
				writeJSON(w, http.StatusInternalServerError, &Response{
					Error: fmt.Sprintf("internal panic: %v", rec), Code: "panic",
				})
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
	return s.instrument(boundary)
}

// ListenAndServe runs the service until ctx is canceled, then shuts
// down gracefully (in-flight requests get 5s to drain). The listener
// is bound synchronously, so a bind conflict is reported immediately
// and can never race ctx cancellation into looking like a clean
// shutdown; serve-time listener failures are likewise preferred over
// the graceful-close sentinel by the errc drain below. (The old shape
// — ListenAndServe on a goroutine, Shutdown's error returned verbatim
// — dropped the listener's error whenever cancellation won the race,
// so a server that never bound "shut down cleanly".)
func (s *Server) ListenAndServe(ctx context.Context) error {
	hs := &http.Server{Addr: s.cfg.Addr, Handler: s.Handler()}
	addr := hs.Addr
	if addr == "" {
		addr = ":http"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The profiling listener is separate from the service listener by
	// design: pprof exposure is decided by where -pprof binds, and a
	// busy service port cannot starve a profile grab. Bound
	// synchronously for the same conflict-reporting reason as above.
	if s.cfg.PprofAddr != "" {
		pln, perr := net.Listen("tcp", s.cfg.PprofAddr)
		if perr != nil {
			ln.Close()
			return fmt.Errorf("pprof listen: %w", perr)
		}
		ps := &http.Server{Handler: PprofHandler()}
		go func() { _ = ps.Serve(pln) }()
		defer ps.Close()
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Drain protocol: advertise the shutdown on /readyz first, keep
		// the listener serving for the grace window so routers that poll
		// readiness stop routing before the port closes, then let
		// Shutdown finish whatever is still in flight.
		s.BeginDrain()
		if g := s.cfg.DrainGrace; g > 0 {
			gt := time.NewTimer(g)
			select {
			case err := <-errc:
				gt.Stop()
				return err
			case <-gt.C:
			}
		}
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		serr := hs.Shutdown(sctx)
		// Shutdown makes Serve return promptly, so this drain never
		// blocks; without it the serving goroutine's error would be
		// dropped on the floor.
		if lerr := <-errc; lerr != nil && !errors.Is(lerr, http.ErrServerClosed) {
			return lerr
		}
		return serr
	}
}

// JournalHealth is the journal block of the healthz payload: write-side
// lag and flush timing from the live journal, plus what startup replay
// verified, skipped, and delivered.
type JournalHealth struct {
	// Stats carries pending (unsealed) records/bytes — the durability
	// lag — plus sealed totals and last/max flush latency.
	Stats journal.Stats `json:"stats"`
	// Replay is the startup replay's accounting: batches and records
	// delivered, corruption counted and skipped.
	Replay journal.ReplayStats `json:"replay"`
	// ReplayDone mirrors /readyz; ReplayError is a backend access
	// failure during replay (corruption is never an error).
	ReplayDone  bool   `json:"replay_done"`
	ReplayError string `json:"replay_error,omitempty"`
}

// Health is the healthz payload.
type Health struct {
	OK          bool           `json:"ok"`
	InFlight    int64          `json:"in_flight"`
	MaxInFlight int            `json:"max_in_flight"`
	Served      int64          `json:"served"`
	Shed        int64          `json:"shed"`
	Engine      engine.Stats   `json:"engine"`
	Journal     *JournalHealth `json:"journal,omitempty"`
}

func (s *Server) journalHealth() *JournalHealth {
	if s.journal == nil {
		return nil
	}
	s.replayMu.Lock()
	jh := &JournalHealth{
		Stats:      s.journal.Stats(),
		Replay:     s.replay,
		ReplayDone: s.ready.Load(),
	}
	if s.replayErr != nil {
		jh.ReplayError = s.replayErr.Error()
	}
	s.replayMu.Unlock()
	return jh
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		OK:          true,
		InFlight:    s.inFlight.Load(),
		MaxInFlight: s.cfg.MaxInFlight,
		Served:      s.served.Load(),
		Shed:        s.shed.Load(),
		Engine:      s.engine.Stats(),
		Journal:     s.journalHealth(),
	})
}

// Drain/warm-up reasons reported by /readyz alongside its 503.
const (
	// ReasonWarming: startup journal replay has not finished yet.
	ReasonWarming = "warming"
	// ReasonDraining: shutdown has begun; in-flight work completes but
	// no new work should be routed here.
	ReasonDraining = "draining"
)

// Readiness is the readyz payload.
type Readiness struct {
	Ready bool `json:"ready"`
	// Reason explains a 503: "warming" (journal replay in progress) or
	// "draining" (shutdown begun; in-flight requests still complete).
	Reason string `json:"reason,omitempty"`
	// Replayed is the records warmed into the cache (0 until ready).
	Replayed int64 `json:"replayed"`
}

// handleReadyz gates traffic on lifecycle state: 503 "warming" while
// the journal is still filling the cache, 503 "draining" as soon as
// shutdown begins — before the listener closes, so routers polling
// readiness stop sending first — and 200 in between. Load balancers
// poll this; /healthz stays 200 throughout because the process is
// alive either way.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, Readiness{Reason: ReasonDraining})
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, Readiness{Reason: ReasonWarming})
		return
	}
	s.replayMu.Lock()
	replayed := s.replay.Records
	s.replayMu.Unlock()
	writeJSON(w, http.StatusOK, Readiness{Ready: true, Replayed: replayed})
}

// decodeRequest reads and validates one Request body. It runs BEFORE
// admission on every path: a client trickling its body byte-by-byte
// must burn its own connection, not an analysis slot. (The service once
// acquired the slot first, which let a handful of slowloris uploads
// starve every fast request behind them.)
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, maxBytes int64, req *Request) bool {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	if err := json.NewDecoder(body).Decode(req); err != nil {
		status, code := http.StatusBadRequest, "bad-json"
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status, code = http.StatusRequestEntityTooLarge, "too-large"
		}
		writeJSON(w, status, &Response{Error: err.Error(), Code: code})
		return false
	}
	return true
}

// validate rejects a decoded request that must not reach the ladder.
// It returns a ready-to-write error response, or nil when admissible.
func (s *Server) validate(req *Request) (int, *Response) {
	if int64(len(req.Source)) > s.cfg.MaxSourceBytes {
		return http.StatusRequestEntityTooLarge, &Response{
			Error: "source exceeds MaxSourceBytes", Code: "too-large",
		}
	}
	if req.Chaos != nil && !s.cfg.AllowChaos {
		return http.StatusUnprocessableEntity, &Response{
			Error: "chaos injection disabled on this server", Code: "chaos-disabled",
		}
	}
	return 0, nil
}

// admit waits for an analysis slot, bounded by the queue timeout.
// Returns a release func on success, nil when the request was shed or
// the client left. The timer is explicitly stopped on every exit: the
// old time.After here leaked one timer per admitted request, which
// under sustained load was a slow, invisible heap bleed.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) func() {
	start := time.Now()
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		s.engine.NoteAdmission(true)
		s.observeQueueWait("won", start)
		return func() { <-s.sem }
	case <-timer.C:
		s.shed.Add(1)
		s.engine.NoteAdmission(false)
		s.observeQueueWait("shed", start)
		// Retry-After tells well-behaved clients to back off for about
		// one queue-timeout window — retrying sooner would just re-queue
		// into the same congestion and shed again.
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(s.cfg.QueueTimeout)))
		pool := s.engine.Stats().Pool
		writeJSON(w, http.StatusTooManyRequests, &Response{
			Error: "server at capacity; retry later", Code: "overloaded",
			Admission: &AdmissionCounts{
				Won:  pool.AdmissionWon,
				Shed: pool.AdmissionShed,
			},
		})
		return nil
	case <-r.Context().Done():
		s.observeQueueWait("abandoned", start)
		return nil // client gone while queued; nothing to say to no one
	}
}

// RetryAfterSeconds rounds a backoff window up to whole seconds,
// floored at 1 (Retry-After: 0 invites an immediate retry storm). The
// cluster router reuses it so its all-replicas-down 503s carry the
// same semantics as the server's own overload 429s.
func RetryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// statusFor maps a structured response to its transport status.
func statusFor(resp *Response) int {
	if resp.OK {
		return http.StatusOK
	}
	switch resp.Code {
	case "parse-error":
		return http.StatusUnprocessableEntity
	case "canceled":
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// cacheable reports whether a rendered response is deterministic in the
// request content alone. Deadline- or cancellation-shaped ladders
// depend on when the request ran, not what it asked, and must never be
// replayed to a later caller.
func cacheable(resp *Response) bool {
	if !resp.OK {
		return false
	}
	for _, att := range resp.Ladder {
		if att.Outcome == "deadline" || att.Outcome == "canceled" {
			return false
		}
	}
	return true
}

// CacheKeyFor derives the content address of one request: everything
// that can change the rendered bytes — source, execution parameters,
// and the client timeout (it clamps the deadline, which shapes
// degradation). Exported because the cluster router rendezvous-hashes
// on exactly this key: routing and caching must agree on identity, or
// scale-out would scatter a key's requests across nodes and destroy
// the hit rate.
func CacheKeyFor(req *Request) string {
	return engine.CacheKey(req.Source, comm.Opts{},
		fmt.Sprintf("execute=%t", req.Execute),
		fmt.Sprintf("n=%d", req.N),
		fmt.Sprintf("timeout_ms=%d", req.TimeoutMS),
	)
}

// analyzeCached runs one admitted request through the result cache:
// repeated identical requests are served stored byte-identical bodies,
// and a thundering herd of identical requests costs one analysis.
// Chaos-bearing requests bypass cache and single-flight entirely —
// injected faults must never be stored or shared.
func (s *Server) analyzeCached(ctx context.Context, req *Request) (engine.Cached, engine.CacheSource, error) {
	compute := func(ctx context.Context) (engine.Cached, bool, error) {
		resp := s.Analyze(ctx, req)
		body, err := json.Marshal(resp)
		if err != nil {
			return engine.Cached{}, false, err
		}
		body = append(body, '\n')
		return engine.Cached{Status: statusFor(resp), Body: body}, cacheable(resp), nil
	}
	if req.Chaos != nil {
		c, _, err := compute(ctx)
		return c, engine.CacheBypass, err
	}
	return s.engine.Do(ctx, CacheKeyFor(req), compute)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, &Response{
			Error: "POST only", Code: "method-not-allowed",
		})
		return
	}

	// decode and validate before competing for a slot
	var req Request
	if !s.decodeRequest(w, r, s.cfg.MaxSourceBytes, &req) {
		return
	}
	if status, errResp := s.validate(&req); errResp != nil {
		writeJSON(w, status, errResp)
		return
	}

	// admission: wait for an analysis slot, but not forever — overload
	// degrades to fast structured 429s, not an unbounded queue
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	cached, src, err := s.analyzeCached(ctx, &req)
	if err != nil {
		carrierFrom(r.Context()).setMeta("", "canceled", nil)
		writeJSON(w, 499, &Response{Error: err.Error(), Code: "canceled"})
		return
	}
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Gnt-Cache", string(src))
	// Every stored body carries its rung and ladder, so hits and misses
	// are equally reconstructable: the meta feeds the trace ring and the
	// rung lands on a response header for the client and the latency
	// histogram's rung label.
	if rung := noteResponseMeta(r.Context(), cached.Body); rung != "" {
		w.Header().Set("X-Gnt-Rung", rung)
	}
	w.WriteHeader(cached.Status)
	_, _ = w.Write(cached.Body)
}

// BatchRequest is one /batch body: up to MaxBatch analysis requests
// answered in order.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchResponse is the /batch envelope. Results[i] is the rendered
// Response for Requests[i], byte-identical to what /analyze would have
// returned; Cache[i] reports how it was obtained (hit | miss | follow |
// bypass). The disposition lives in the envelope, never in the result
// bytes, so cached and fresh result bodies stay comparable.
type BatchResponse struct {
	Results []json.RawMessage `json:"results"`
	Cache   []string          `json:"cache"`
}

// handleBatch analyzes a batch of programs with the fan-out bounded by
// the engine's worker pool. The whole batch holds ONE admission slot:
// batch admission competes fairly with single requests instead of a
// 64-program batch starving 64 slots.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, &Response{
			Error: "POST only", Code: "method-not-allowed",
		})
		return
	}

	// decode before admission, same as /analyze: the batch body cap
	// scales with how many programs a batch may carry
	var breq BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes*int64(s.cfg.MaxBatch))
	if err := json.NewDecoder(body).Decode(&breq); err != nil {
		status, code := http.StatusBadRequest, "bad-json"
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status, code = http.StatusRequestEntityTooLarge, "too-large"
		}
		writeJSON(w, status, &Response{Error: err.Error(), Code: code})
		return
	}
	if len(breq.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, &Response{
			Error: "empty batch", Code: "bad-request",
		})
		return
	}
	if len(breq.Requests) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusUnprocessableEntity, &Response{
			Error: fmt.Sprintf("batch of %d exceeds MaxBatch %d", len(breq.Requests), s.cfg.MaxBatch),
			Code:  "batch-too-large",
		})
		return
	}

	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	out := BatchResponse{
		Results: make([]json.RawMessage, len(breq.Requests)),
		Cache:   make([]string, len(breq.Requests)),
	}
	launched := s.engine.Map(r.Context(), len(breq.Requests), func(ctx context.Context, i int) {
		req := &breq.Requests[i]
		render := func(resp *Response, src engine.CacheSource) {
			b, _ := json.Marshal(resp)
			out.Results[i], out.Cache[i] = b, string(src)
		}
		if _, errResp := s.validate(req); errResp != nil {
			render(errResp, engine.CacheBypass)
			return
		}
		timeout := s.cfg.RequestTimeout
		if req.TimeoutMS > 0 {
			if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
				timeout = t
			}
		}
		ictx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		cached, src, err := s.analyzeCached(ictx, req)
		if err != nil {
			render(&Response{Error: err.Error(), Code: "canceled"}, src)
			return
		}
		s.served.Add(1)
		out.Results[i] = json.RawMessage(trimNewline(cached.Body))
		out.Cache[i] = string(src)
	})
	// A canceled batch stops launching mid-way; the slots Map never
	// reached still owe the client an answer, not a null.
	for i := launched; i < len(breq.Requests); i++ {
		b, _ := json.Marshal(&Response{Error: context.Canceled.Error(), Code: "canceled"})
		out.Results[i], out.Cache[i] = b, string(engine.CacheBypass)
	}
	writeJSON(w, http.StatusOK, out)
}

// trimNewline drops the trailing newline a stored body carries
// from its stream encoding, keeping batch JSON arrays tidy.
func trimNewline(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		return b[:n-1]
	}
	return b
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
