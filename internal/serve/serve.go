// Package serve turns the GIVE-N-TAKE pipeline into a long-running
// analysis service: POST a mini-Fortran program, get back a verified
// communication placement as structured JSON. The package exists to
// harden the analysis against the failure modes a batch CLI can shrug
// off but a service cannot — panics, pathological inputs, deadline
// storms, and overload — via three mechanisms:
//
//   - per-request isolation: every stage runs behind a recover
//     boundary, so one poisoned request can never take the process
//     down, and a typed solver-invariant violation (core.ErrInvariant)
//     is an error, not a crash;
//
//   - a degradation ladder (ladder.go): full placement → no-hoist
//     (STEAL_init) retry → atomic-at-consumption floor. The floor runs
//     no dataflow solver and is trivially balanced, so every
//     well-formed request ends in a statically verified placement;
//
//   - admission control: a bounded in-flight pool with a queue
//     timeout sheds overload as 429s instead of queueing unboundedly,
//     and request bodies are capped before JSON decoding.
//
// The chaos subpackage replays corpus and generated programs with
// injected panics, corrupted solutions, malformed sources, and
// 1ms deadlines to demonstrate all of the above under fire.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Defaults for the zero Config.
const (
	DefaultMaxInFlight    = 4
	DefaultQueueTimeout   = 2 * time.Second
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxSteps       = 2_000_000
	DefaultMaxSourceBytes = 1 << 20
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (":8075" style).
	Addr string
	// MaxInFlight bounds concurrently analyzed requests; excess waits.
	MaxInFlight int
	// QueueTimeout bounds how long an excess request waits for a slot
	// before being shed with 429.
	QueueTimeout time.Duration
	// RequestTimeout caps each request's analysis wall clock; a
	// client-supplied timeout_ms is clamped to it.
	RequestTimeout time.Duration
	// MaxSteps is the execution step budget for execute=true requests.
	MaxSteps int64
	// MaxSourceBytes caps the request body (413 beyond it).
	MaxSourceBytes int64
	// AllowChaos honors fault-injection fields on requests. Never set
	// in production; the chaos harness sets it.
	AllowChaos bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = DefaultQueueTimeout
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = DefaultMaxSteps
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = DefaultMaxSourceBytes
	}
	return c
}

// Server is the analysis service. Create with New, mount Handler (or
// call ListenAndServe), and every POST /analyze gets a Response.
type Server struct {
	cfg      Config
	sem      chan struct{}
	inFlight atomic.Int64
	served   atomic.Int64
	shed     atomic.Int64
	mux      *http.ServeMux
}

// New builds a Server from cfg (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, sem: make(chan struct{}, cfg.MaxInFlight)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the service's HTTP handler with the outermost panic
// boundary installed.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// net/http would recover too, but would kill the
				// connection without a body; we owe every request a
				// structured answer
				writeJSON(w, http.StatusInternalServerError, &Response{
					Error: fmt.Sprintf("internal panic: %v", rec), Code: "panic",
				})
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// ListenAndServe runs the service until ctx is canceled, then shuts
// down gracefully (in-flight requests get 5s to drain).
func (s *Server) ListenAndServe(ctx context.Context) error {
	hs := &http.Server{Addr: s.cfg.Addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}

// Health is the healthz payload.
type Health struct {
	OK          bool  `json:"ok"`
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
	Served      int64 `json:"served"`
	Shed        int64 `json:"shed"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		OK:          true,
		InFlight:    s.inFlight.Load(),
		MaxInFlight: s.cfg.MaxInFlight,
		Served:      s.served.Load(),
		Shed:        s.shed.Load(),
	})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, &Response{
			Error: "POST only", Code: "method-not-allowed",
		})
		return
	}

	// admission: wait for an analysis slot, but not forever — overload
	// degrades to fast structured 429s, not an unbounded queue
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-time.After(s.cfg.QueueTimeout):
		s.shed.Add(1)
		writeJSON(w, http.StatusTooManyRequests, &Response{
			Error: "server at capacity; retry later", Code: "overloaded",
		})
		return
	case <-r.Context().Done():
		return // client gone while queued; nothing to say to no one
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	var req Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		status, code := http.StatusBadRequest, "bad-json"
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status, code = http.StatusRequestEntityTooLarge, "too-large"
		}
		writeJSON(w, status, &Response{Error: err.Error(), Code: code})
		return
	}
	if int64(len(req.Source)) > s.cfg.MaxSourceBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, &Response{
			Error: "source exceeds MaxSourceBytes", Code: "too-large",
		})
		return
	}
	if req.Chaos != nil && !s.cfg.AllowChaos {
		writeJSON(w, http.StatusUnprocessableEntity, &Response{
			Error: "chaos injection disabled on this server", Code: "chaos-disabled",
		})
		return
	}

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	resp := s.Analyze(ctx, &req)
	s.served.Add(1)
	status := http.StatusOK
	if !resp.OK {
		switch resp.Code {
		case "parse-error":
			status = http.StatusUnprocessableEntity
		case "canceled":
			status = 499 // client closed request (nginx convention)
		default:
			status = http.StatusInternalServerError
		}
	}
	writeJSON(w, status, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
