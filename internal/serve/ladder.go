package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"givetake/internal/check"
	"givetake/internal/check/mutate"
	"givetake/internal/comm"
	"givetake/internal/core"
	"givetake/internal/engine"
	"givetake/internal/frontend"
	"givetake/internal/interp"
	"givetake/internal/ir"
	"givetake/internal/obs"
)

// The degradation ladder. Every analysis request descends it until a
// rung holds; the bottom rung cannot fail, so every well-formed program
// gets a correct placement even when the full framework misbehaves.
//
//	rung 1 (full):     complete EAGER/LAZY placement with latency
//	                   hiding, statically verified (C1–C3, O1);
//	rung 2 (no-hoist): the paper's STEAL_init conservative mode — no
//	                   hoisting across loop boundaries — retried when
//	                   rung 1 fails verification or breaks a solver
//	                   invariant;
//	rung 3 (atomic):   production at each consumption point, no dataflow
//	                   solving at all. Trivially balanced; used on
//	                   deadline exhaustion or repeated failure.
const (
	RungFull    = 1
	RungNoHoist = 2
	RungAtomic  = 3
)

// RungName names a ladder rung for structured responses.
func RungName(r int) string {
	switch r {
	case RungFull:
		return "full"
	case RungNoHoist:
		return "no-hoist"
	case RungAtomic:
		return "atomic"
	default:
		return fmt.Sprintf("rung-%d", r)
	}
}

// Request is one analysis job.
type Request struct {
	// Source is the mini-Fortran program text.
	Source string `json:"source"`
	// TimeoutMS bounds this request's analysis wall clock; zero uses the
	// server's RequestTimeout, larger values are clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Execute additionally runs the annotated program and reports its
	// trace summary. N is the symbolic bound (default 8).
	Execute bool  `json:"execute,omitempty"`
	N       int64 `json:"n,omitempty"`
	// Chaos injects faults for testing; ignored (and rejected) unless
	// the server was started with AllowChaos.
	Chaos *ChaosSpec `json:"chaos,omitempty"`
}

// ChaosSpec is the fault-injection contract of the chaos harness: it
// simulates the failure modes the ladder exists for, from the outside,
// without compromising the production path.
type ChaosSpec struct {
	// PanicRung makes the named rung ("full", "no-hoist", "atomic")
	// panic mid-stage, exercising panic isolation.
	PanicRung string `json:"panic_rung,omitempty"`
	// MutateSeed, when nonzero, corrupts the rung-1 solution's bit
	// vectors (seeded, via check/mutate) before verification, forcing a
	// verifier rejection and a rung-2 descent.
	MutateSeed int64 `json:"mutate_seed,omitempty"`
	// StallMS simulates a slow analysis by stalling (context-aware) at
	// the start of rungs 1 and 2; combined with a short request
	// deadline it drives the deadline-storm path onto the atomic floor.
	StallMS int64 `json:"stall_ms,omitempty"`
}

// Attempt records one rung trial in a response, so callers always see
// how far the service had to degrade and why.
type Attempt struct {
	Rung       int     `json:"rung"`
	Name       string  `json:"name"`
	Outcome    string  `json:"outcome"` // ok | check-failed | invariant | panic | deadline | error
	Detail     string  `json:"detail,omitempty"`
	CheckErrs  int     `json:"check_errors,omitempty"`
	CheckWarns int     `json:"check_warnings,omitempty"`
	DurationMS float64 `json:"duration_ms"`
}

// CheckSummary condenses a static verification for the response body.
type CheckSummary struct {
	Errors      int      `json:"errors"`
	Warnings    int      `json:"warnings"`
	Diagnostics []string `json:"diagnostics,omitempty"`
}

// TraceSummary condenses an execution trace for the response body.
type TraceSummary struct {
	Steps     int64 `json:"steps"`
	Messages  int64 `json:"messages"`
	Volume    int64 `json:"volume"`
	Truncated bool  `json:"truncated,omitempty"`
}

// Response is the structured result of one analysis request. Every
// request — success, degradation, or failure — gets one, and it always
// names the ladder rung that produced the answer (or 0 when no rung
// could run, e.g. a parse error).
type Response struct {
	OK       bool      `json:"ok"`
	Rung     int       `json:"rung"`
	RungName string    `json:"rung_name,omitempty"`
	Ladder   []Attempt `json:"ladder,omitempty"`

	Annotated string           `json:"annotated,omitempty"`
	Check     *CheckSummary    `json:"check,omitempty"`
	Trace     *TraceSummary    `json:"trace,omitempty"`
	Phases    []obs.PhaseStats `json:"phases,omitempty"`

	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"` // machine-readable error class

	// Admission reports the server's admission-queue totals at the time
	// of the response. Attached only to overload (429) answers, so a
	// shed client can see whether it hit a blip (won >> shed) or a
	// sustained storm (shed climbing toward won).
	Admission *AdmissionCounts `json:"admission,omitempty"`
}

// AdmissionCounts is the won-versus-shed admission balance echoed in
// overload responses.
type AdmissionCounts struct {
	Won  int64 `json:"won"`
	Shed int64 `json:"shed"`
}

// noteAttempt appends one rung trial to the response ladder and counts
// it into gnt_ladder_attempts_total{rung,outcome}.
func (s *Server) noteAttempt(resp *Response, att Attempt) {
	s.inst.attempts.Inc(att.Name, att.Outcome)
	resp.Ladder = append(resp.Ladder, att)
}

// maxDiagnostics bounds the diagnostics echoed into a response.
const maxDiagnostics = 10

func summarize(res *check.Result) *CheckSummary {
	if res == nil {
		return nil
	}
	cs := &CheckSummary{Errors: len(res.Errors()), Warnings: len(res.Warnings())}
	for i, d := range res.Diagnostics {
		if i >= maxDiagnostics {
			cs.Diagnostics = append(cs.Diagnostics,
				fmt.Sprintf("... %d more", len(res.Diagnostics)-maxDiagnostics))
			break
		}
		cs.Diagnostics = append(cs.Diagnostics, d.String())
	}
	return cs
}

// attemptOutcome classifies a rung failure.
func attemptOutcome(err error) string {
	switch {
	case errors.Is(err, core.ErrInvariant):
		return "invariant"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

// stage runs f with panic isolation: a panicking rung is converted to
// an error instead of unwinding through the server. This is the
// boundary that keeps one poisoned request from taking the process (or
// even its own response) down.
func stage(f func() (*comm.Analysis, error)) (a *comm.Analysis, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			a, err, panicked = nil, fmt.Errorf("recovered panic: %v", r), true
		}
	}()
	a, err = f()
	return a, err, false
}

// stageEngine is stage for the engine-scheduled rungs: it isolates
// panics that unwind on this goroutine (chaos injection, the PostSolve
// hook re-raised by engine.Analyze), while panics inside pool tasks
// arrive already converted to *engine.PanicError.
func stageEngine(f func() (*engine.Result, error)) (res *engine.Result, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			res, err, panicked = nil, fmt.Errorf("recovered panic: %v", r), true
		}
	}()
	res, err = f()
	return res, err, false
}

// isPanicErr reports whether err is a pool-task panic surfaced by the
// engine's isolation boundary.
func isPanicErr(err error) bool {
	var pe *engine.PanicError
	return errors.As(err, &pe)
}

// ladder runs the degradation ladder for one parsed program and fills
// in the response. ctx carries the request deadline; cancellation by
// the client aborts everything, while deadline exhaustion falls through
// to the detached atomic floor.
func (s *Server) ladder(ctx context.Context, prog *ir.Program, req *Request, resp *Response) {
	// One recorder per request, teed with the process-wide telemetry
	// bridge: the same span feeds this response's phase report and the
	// gnt_stage_duration_seconds histogram on /metrics.
	rec := obs.NewRecorder(obs.Config{})
	col := obs.Tee(rec, s.inst.bridge)
	defer func() {
		resp.Phases = rec.Phases()
		carrierFrom(ctx).setSpans(rec.Spans())
	}()

	chaos := req.Chaos
	if !s.cfg.AllowChaos {
		chaos = nil
	}

	type rungSpec struct {
		rung int
		opts comm.Opts
	}
	for _, r := range []rungSpec{{RungFull, comm.Opts{}}, {RungNoHoist, comm.Opts{SuppressHoist: true}}} {
		r := r
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.Canceled) {
				resp.Error, resp.Code = err.Error(), "canceled"
				return
			}
			break // deadline: drop to the atomic floor
		}
		att := Attempt{Rung: r.rung, Name: RungName(r.rung)}
		start := time.Now()
		// Rungs 1 and 2 run on the engine: the READ and WRITE halves
		// solve as concurrent pool tasks, each solved problem verifies
		// as a concurrent pool task, and the chaos mutation rides the
		// PostSolve hook — after the solves join, before verification,
		// exactly where the sequential pipeline applied it.
		eres, err, panicked := stageEngine(func() (*engine.Result, error) {
			if chaos != nil && chaos.PanicRung == att.Name {
				panic(fmt.Sprintf("chaos: injected panic at rung %q", att.Name))
			}
			if chaos != nil && chaos.StallMS > 0 {
				if err := stallFor(ctx, time.Duration(chaos.StallMS)*time.Millisecond); err != nil {
					return nil, err
				}
			}
			var post func(*comm.Analysis)
			if chaos != nil && chaos.MutateSeed != 0 && r.rung == RungFull {
				post = func(a *comm.Analysis) {
					if a.Read == nil {
						return
					}
					rng := rand.New(rand.NewSource(chaos.MutateSeed))
					for i := 0; i < 4; i++ { // a few tries: some solutions have no mutable site
						if _, _, ok := mutate.Apply(rng, a.Read, a.Universe.Size()); ok {
							break
						}
					}
				}
			}
			return s.engine.Analyze(ctx, engine.Job{
				Prog: prog, Opts: r.opts, Collector: col, PostSolve: post,
			})
		})
		att.DurationMS = msSince(start)
		if err != nil {
			att.Outcome = attemptOutcome(err)
			if panicked || isPanicErr(err) {
				att.Outcome = "panic"
			}
			att.Detail = err.Error()
			s.noteAttempt(resp, att)
			if att.Outcome == "canceled" {
				resp.Error, resp.Code = err.Error(), "canceled"
				return
			}
			continue
		}
		a, res := eres.Analysis, eres.Check
		att.CheckErrs, att.CheckWarns = len(res.Errors()), len(res.Warnings())
		if !res.Ok() {
			att.Outcome = "check-failed"
			att.Detail = res.Errors()[0].String()
			s.noteAttempt(resp, att)
			eres.Release()
			continue
		}
		att.Outcome = "ok"
		s.noteAttempt(resp, att)
		s.finish(ctx, a, comm.DefaultOptions, r.rung, req, resp, res, col)
		eres.Release()
		return
	}

	// Rung 3: the floor. Detached from the request deadline — a deadline
	// storm must still end in a correct placement, and Atomic is linear
	// in program size so this terminates promptly. Client cancellation
	// was already handled above.
	att := Attempt{Rung: RungAtomic, Name: RungName(RungAtomic)}
	start := time.Now()
	a, err, panicked := stage(func() (*comm.Analysis, error) {
		if chaos != nil && chaos.PanicRung == att.Name {
			panic(fmt.Sprintf("chaos: injected panic at rung %q", att.Name))
		}
		return comm.AtomicFallback(prog, col)
	})
	if err != nil {
		// only reachable by injected chaos or an unparseable-but-checked
		// program; still a structured response, never a crash
		att.Outcome = attemptOutcome(err)
		if panicked {
			att.Outcome = "panic"
		}
		att.Detail = err.Error()
		att.DurationMS = msSince(start)
		s.noteAttempt(resp, att)
		resp.Error, resp.Code = err.Error(), "ladder-exhausted"
		return
	}
	res, err := a.CheckPlacementCtx(context.Background(), col)
	att.DurationMS = msSince(start)
	if err == nil && res.Ok() {
		att.Outcome = "ok"
		att.CheckErrs, att.CheckWarns = len(res.Errors()), len(res.Warnings())
		s.noteAttempt(resp, att)
		s.finish(ctx, a, comm.Options{Reads: true, Writes: true}, RungAtomic, req, resp, res, col)
		return
	}
	att.Outcome = "check-failed"
	if err != nil {
		att.Outcome = attemptOutcome(err)
		att.Detail = err.Error()
	} else if !res.Ok() {
		att.Detail = res.Errors()[0].String()
	}
	s.noteAttempt(resp, att)
	resp.Error, resp.Code = "atomic floor failed verification", "ladder-exhausted"
}

// finish renders the successful placement into the response and
// optionally executes it.
func (s *Server) finish(ctx context.Context, a *comm.Analysis, opt comm.Options,
	rung int, req *Request, resp *Response, res *check.Result, col obs.Collector) {
	resp.OK = true
	resp.Rung, resp.RungName = rung, RungName(rung)
	resp.Annotated = a.AnnotatedSource(opt)
	resp.Check = summarize(res)
	if !req.Execute {
		return
	}
	n := req.N
	if n <= 0 {
		n = 8
	}
	tr, err := interp.RunCtx(ctx, a.Annotate(opt), interp.Config{
		N: n, MaxSteps: s.cfg.MaxSteps, Collector: col,
	})
	if tr != nil {
		resp.Trace = &TraceSummary{
			Steps: tr.Steps, Messages: tr.Messages(), Volume: tr.Volume(),
			Truncated: err != nil,
		}
	}
	// a truncated execution is reported, not failed: the placement
	// itself is verified and the partial trace is still meaningful
	if err != nil && !errors.Is(err, interp.ErrStepLimit) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		resp.Trace = nil
		resp.Error, resp.Code = err.Error(), "execute-failed"
	}
}

// Analyze runs the full request pipeline — parse, ladder, optional
// execution — and always returns a structured response. It never
// panics; HTTP transport aside, this is the whole service.
func (s *Server) Analyze(ctx context.Context, req *Request) *Response {
	resp := &Response{}
	defer func() {
		if r := recover(); r != nil {
			// last-ditch isolation: nothing below should reach here, but a
			// structured 500 beats a dead worker
			resp.OK = false
			resp.Error, resp.Code = fmt.Sprintf("internal panic: %v", r), "panic"
		}
	}()
	prog, err := frontend.Parse(req.Source)
	if err != nil {
		resp.Error, resp.Code = err.Error(), "parse-error"
		return resp
	}
	s.ladder(ctx, prog, req, resp)
	return resp
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}

// stallFor blocks for d or until ctx is done, whichever comes first,
// returning ctx's error in the latter case. Unlike time.After, the
// timer is stopped on the cancellation path, so a chaos-stalled ladder
// under load does not accumulate one pending timer per canceled
// request.
func stallFor(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
