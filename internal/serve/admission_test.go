package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSlowBodyDoesNotHoldSlot is the regression test for the slowloris
// admission bug: the handler used to acquire its in-flight slot BEFORE
// reading the body, so a client trickling bytes pinned the slot for its
// whole upload and starved fast requests behind it. With MaxInFlight=1,
// a stalled upload must not block a concurrent well-formed request.
func TestSlowBodyDoesNotHoldSlot(t *testing.T) {
	srv := mustNew(t, Config{MaxInFlight: 1, QueueTimeout: 5 * time.Second})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// the slow client: opens the request, sends half the JSON, stalls
	pr, pw := io.Pipe()
	slowDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/analyze", pr)
		req.Header.Set("Content-Type", "application/json")
		hr, err := http.DefaultClient.Do(req)
		if err == nil {
			hr.Body.Close()
		}
		slowDone <- err
	}()
	if _, err := io.WriteString(pw, `{"source": "`); err != nil {
		t.Fatal(err)
	}

	// while the slow body dangles, a fast request must win the slot and
	// complete well inside the queue timeout
	fastDone := make(chan struct{})
	go func() {
		defer close(fastDone)
		hr, resp := postJSON(t, ts.URL, Request{Source: goodSrc})
		if hr.StatusCode != http.StatusOK || !resp.OK {
			t.Errorf("fast request starved behind slow body: status=%d %+v", hr.StatusCode, resp)
		}
	}()
	select {
	case <-fastDone:
	case <-time.After(3 * time.Second):
		t.Fatal("fast request did not complete while slow body was pending")
	}

	// let the slow client finish; it still gets a normal response
	io.WriteString(pw, `s = 1"}`)
	pw.Close()
	if err := <-slowDone; err != nil {
		t.Fatalf("slow request errored: %v", err)
	}
}

// TestAdmissionCountersInHealthz: admission outcomes (slot won, shed on
// queue timeout) surface in the engine stats that /healthz renders.
func TestAdmissionCountersInHealthz(t *testing.T) {
	srv := mustNew(t, Config{MaxInFlight: 1, QueueTimeout: 30 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if hr, _ := postJSON(t, ts.URL, Request{Source: goodSrc}); hr.StatusCode != http.StatusOK {
		t.Fatalf("warmup failed: %d", hr.StatusCode)
	}

	srv.sem <- struct{}{} // hold the only slot
	hr, resp := postJSON(t, ts.URL, Request{Source: goodSrc})
	<-srv.sem
	if hr.StatusCode != http.StatusTooManyRequests || resp.Code != "overloaded" {
		t.Fatalf("status=%d code=%q, want 429 overloaded", hr.StatusCode, resp.Code)
	}

	st := srv.Engine().Stats()
	if st.Pool.AdmissionWon < 1 {
		t.Fatalf("admission_won = %d, want >= 1", st.Pool.AdmissionWon)
	}
	if st.Pool.AdmissionShed != 1 {
		t.Fatalf("admission_shed = %d, want 1", st.Pool.AdmissionShed)
	}

	var h Health
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if err := json.NewDecoder(hres.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Engine.Pool.AdmissionShed != 1 || h.Engine.Pool.Workers == 0 {
		t.Fatalf("healthz engine stats = %+v", h.Engine)
	}
}

// TestListenAndServeReportsBindError is the regression test for the
// dropped-listen-error bug: when the listener fails (port already
// bound) while ctx cancellation races it, ListenAndServe used to return
// Shutdown's nil and the caller believed a server that never existed
// shut down cleanly.
func TestListenAndServeReportsBindError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	srv := mustNew(t, Config{Addr: ln.Addr().String()})
	defer srv.Close()
	// canceled ctx: the select races the bind failure against shutdown
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.ListenAndServe(ctx); err == nil {
		t.Fatal("bind conflict must surface as an error, not a clean shutdown")
	} else if errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("got the graceful sentinel %v, want the bind error", err)
	}
}

// TestListenAndServeCleanShutdown: the happy path still shuts down nil.
func TestListenAndServeCleanShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port for the server

	srv := mustNew(t, Config{Addr: addr})
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx) }()
	// wait until it serves, then cancel
	deadline := time.Now().Add(2 * time.Second)
	for {
		if hr, err := http.Get("http://" + addr + "/healthz"); err == nil {
			hr.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("clean shutdown returned %v", err)
	}
}

// postRaw posts one request and returns status, X-Gnt-Cache, and the
// raw body bytes for identity comparison.
func postRaw(t *testing.T, url string, body any) (int, string, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	raw, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatal(err)
	}
	return hr.StatusCode, hr.Header.Get("X-Gnt-Cache"), raw
}

// corpusSources loads every corpus program for the cache suites.
func corpusSources(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	root := filepath.Join("..", "..", "testdata")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".f") {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[path] = string(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty corpus")
	}
	return out
}

// TestCacheColdWarmByteIdentical: for every corpus program, the warm
// response is byte-for-byte the cold response, the disposition header
// flips miss -> hit, and the hit shows up in /healthz engine stats.
func TestCacheColdWarmByteIdentical(t *testing.T) {
	srv := mustNew(t, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for path, src := range corpusSources(t) {
		status1, src1, cold := postRaw(t, ts.URL, Request{Source: src})
		status2, src2, warm := postRaw(t, ts.URL, Request{Source: src})
		if src1 != "miss" || src2 != "hit" {
			t.Fatalf("%s: dispositions %q -> %q, want miss -> hit", path, src1, src2)
		}
		if status1 != status2 || !bytes.Equal(cold, warm) {
			t.Fatalf("%s: warm response not byte-identical to cold", path)
		}
	}

	st := srv.Engine().Stats().Cache
	if want := int64(len(corpusSources(t))); st.Hits != want || st.Misses != want {
		t.Fatalf("cache stats = %+v, want %d hits and misses", st, want)
	}
}

// TestCacheKeyedOnParameters: execution parameters are part of the
// content address — same source, different params must not alias.
func TestCacheKeyedOnParameters(t *testing.T) {
	srv := mustNew(t, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, src1, plain := postRaw(t, ts.URL, Request{Source: goodSrc})
	_, src2, exec := postRaw(t, ts.URL, Request{Source: goodSrc, Execute: true, N: 4})
	if src1 != "miss" || src2 != "miss" {
		t.Fatalf("distinct parameters must both miss, got %q %q", src1, src2)
	}
	if bytes.Equal(plain, exec) {
		t.Fatal("execute=true response cannot equal the plain one")
	}
	var resp Response
	if err := json.Unmarshal(exec, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("execute response lost its trace")
	}
}

// TestCacheHerdByteIdentical: concurrent identical requests — whether
// they lead, follow the in-flight leader, or hit the already-stored
// result — all receive identical bytes, and the analysis runs once.
func TestCacheHerdByteIdentical(t *testing.T) {
	srv := mustNew(t, Config{MaxInFlight: 16})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const herd = 12
	bodies := make([][]byte, herd)
	sources := make([]string, herd)
	var wg sync.WaitGroup
	wg.Add(herd)
	for i := 0; i < herd; i++ {
		go func(i int) {
			defer wg.Done()
			_, sources[i], bodies[i] = postRaw(t, ts.URL, Request{Source: goodSrc})
		}(i)
	}
	wg.Wait()

	misses := 0
	for i := 1; i < herd; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d bytes differ from request 0", i)
		}
	}
	for _, s := range sources {
		if s == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("herd of %d computed %d times, want exactly 1", herd, misses)
	}
}

// TestChaosBypassesCache: fault-injected requests must never be stored
// or shared — each one computes, marked bypass.
func TestChaosBypassesCache(t *testing.T) {
	srv := mustNew(t, Config{AllowChaos: true})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := Request{Source: goodSrc, Chaos: &ChaosSpec{MutateSeed: 7}}
	_, src1, _ := postRaw(t, ts.URL, req)
	_, src2, _ := postRaw(t, ts.URL, req)
	if src1 != "bypass" || src2 != "bypass" {
		t.Fatalf("chaos dispositions %q %q, want bypass bypass", src1, src2)
	}
	if st := srv.Engine().Stats().Cache; st.Entries != 0 {
		t.Fatalf("chaos response was cached: %+v", st)
	}
}

// postBatch posts one batch and decodes the envelope.
func postBatch(t *testing.T, url string, breq BatchRequest) (*http.Response, *BatchResponse) {
	t.Helper()
	b, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/batch", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var out BatchResponse
	if err := json.NewDecoder(hr.Body).Decode(&out); err != nil {
		t.Fatalf("batch envelope is not JSON: %v", err)
	}
	return hr, &out
}

// TestBatchEndpoint: the corpus as one batch — ordered results, every
// program verified, one malformed item isolated to its slot, and a
// duplicated program served byte-identical to its twin from the cache.
func TestBatchEndpoint(t *testing.T) {
	srv := mustNew(t, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var breq BatchRequest
	for _, src := range corpusSources(t) {
		breq.Requests = append(breq.Requests, Request{Source: src})
	}
	bad := len(breq.Requests)
	breq.Requests = append(breq.Requests, Request{Source: "do i = oops"})
	dup := len(breq.Requests)
	breq.Requests = append(breq.Requests, breq.Requests[0]) // duplicate of item 0

	hr, out := postBatch(t, ts.URL, breq)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", hr.StatusCode)
	}
	if len(out.Results) != len(breq.Requests) || len(out.Cache) != len(breq.Requests) {
		t.Fatalf("envelope sizes %d/%d, want %d", len(out.Results), len(out.Cache), len(breq.Requests))
	}
	for i, raw := range out.Results {
		var resp Response
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if i == bad {
			if resp.OK || resp.Code != "parse-error" {
				t.Fatalf("malformed item leaked: %+v", resp)
			}
			continue
		}
		if !resp.OK {
			t.Fatalf("item %d failed: %+v", i, resp)
		}
	}
	if !bytes.Equal(out.Results[dup], out.Results[0]) {
		t.Fatal("duplicated program must get byte-identical result")
	}
}

// TestBatchDuplicateHammer: many copies of the same program in one
// batch stress the cache's single-flight under the race detector; the
// analysis must run once and every slot must carry identical bytes.
func TestBatchDuplicateHammer(t *testing.T) {
	srv := mustNew(t, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var breq BatchRequest
	for i := 0; i < 32; i++ {
		breq.Requests = append(breq.Requests, Request{Source: goodSrc})
	}
	hr, out := postBatch(t, ts.URL, breq)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", hr.StatusCode)
	}
	misses := 0
	for i, raw := range out.Results {
		if !bytes.Equal(raw, out.Results[0]) {
			t.Fatalf("slot %d bytes differ", i)
		}
		if out.Cache[i] == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("32 duplicates computed %d times, want 1", misses)
	}
}

// TestBatchLimits: empty and oversized batches are rejected with
// structured errors before admission.
func TestBatchLimits(t *testing.T) {
	srv := mustNew(t, Config{MaxBatch: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hr, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(`{"requests":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", hr.StatusCode)
	}

	var breq BatchRequest
	for i := 0; i < 5; i++ {
		breq.Requests = append(breq.Requests, Request{Source: fmt.Sprintf("s = %d\n", i)})
	}
	b, _ := json.Marshal(breq)
	hr, err = http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusUnprocessableEntity || resp.Code != "batch-too-large" {
		t.Fatalf("status=%d code=%q, want 422 batch-too-large", hr.StatusCode, resp.Code)
	}
}
