package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, *Response) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/analyze", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	return hr, &resp
}

func TestHTTPAnalyzeRoundTrip(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Config{}).Handler())
	defer ts.Close()

	hr, resp := postJSON(t, ts.URL, Request{Source: goodSrc, Execute: true})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%+v)", hr.StatusCode, resp)
	}
	if !resp.OK || resp.Rung != RungFull || resp.RungName != "full" {
		t.Fatalf("want rung-1 success, got %+v", resp)
	}
	if !strings.Contains(resp.Annotated, "READ") {
		t.Fatal("annotated source should contain communication")
	}
	if resp.Trace == nil || resp.Trace.Messages == 0 {
		t.Fatalf("execute=true should attach a trace, got %+v", resp.Trace)
	}
	if len(resp.Phases) == 0 {
		t.Fatal("response should report pipeline phases")
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Config{MaxSourceBytes: 512}).Handler())
	defer ts.Close()

	t.Run("parse-error-422", func(t *testing.T) {
		hr, resp := postJSON(t, ts.URL, Request{Source: "do i = oops"})
		if hr.StatusCode != http.StatusUnprocessableEntity || resp.Code != "parse-error" {
			t.Fatalf("status=%d code=%q, want 422 parse-error", hr.StatusCode, resp.Code)
		}
	})
	t.Run("chaos-disabled-422", func(t *testing.T) {
		hr, resp := postJSON(t, ts.URL, Request{Source: goodSrc, Chaos: &ChaosSpec{MutateSeed: 1}})
		if hr.StatusCode != http.StatusUnprocessableEntity || resp.Code != "chaos-disabled" {
			t.Fatalf("status=%d code=%q, want 422 chaos-disabled", hr.StatusCode, resp.Code)
		}
	})
	t.Run("bad-json-400", func(t *testing.T) {
		hr, err := http.Post(ts.URL+"/analyze", "application/json",
			strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		var resp Response
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			t.Fatalf("error response is not JSON: %v", err)
		}
		if hr.StatusCode != http.StatusBadRequest || resp.Code != "bad-json" {
			t.Fatalf("status=%d code=%q, want 400 bad-json", hr.StatusCode, resp.Code)
		}
	})
	t.Run("oversized-413", func(t *testing.T) {
		huge := Request{Source: strings.Repeat("s = 1\n", 1000)}
		hr, resp := postJSON(t, ts.URL, huge)
		if hr.StatusCode != http.StatusRequestEntityTooLarge || resp.Code != "too-large" {
			t.Fatalf("status=%d code=%q, want 413 too-large", hr.StatusCode, resp.Code)
		}
	})
	t.Run("get-405", func(t *testing.T) {
		hr, err := http.Get(ts.URL + "/analyze")
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", hr.StatusCode)
		}
	})
}

func TestHTTPHealthz(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Config{}).Handler())
	defer ts.Close()
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.MaxInFlight != DefaultMaxInFlight {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestHTTPAdmissionControl saturates the in-flight pool with slow
// requests and asserts excess load is shed as structured 429s within
// the queue timeout, not queued unboundedly.
func TestHTTPAdmissionControl(t *testing.T) {
	cfg := Config{
		MaxInFlight:  1,
		QueueTimeout: 50 * time.Millisecond,
		AllowChaos:   true,
	}
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// occupy the single slot with a request that holds it long enough
	// for the others to time out of the queue
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.sem <- struct{}{} // take the slot directly; deterministic
		close(release)
		time.Sleep(300 * time.Millisecond)
		<-srv.sem
	}()
	<-release

	hr, resp := postJSON(t, ts.URL, Request{Source: goodSrc})
	if hr.StatusCode != http.StatusTooManyRequests || resp.Code != "overloaded" {
		t.Fatalf("status=%d code=%q, want 429 overloaded", hr.StatusCode, resp.Code)
	}
	wg.Wait()

	// slot free again: the same request now succeeds
	hr, resp = postJSON(t, ts.URL, Request{Source: goodSrc})
	if hr.StatusCode != http.StatusOK || !resp.OK {
		t.Fatalf("post-overload request failed: status=%d %+v", hr.StatusCode, resp)
	}
	if srv.shed.Load() == 0 {
		t.Fatal("shed counter should have recorded the 429")
	}
}
