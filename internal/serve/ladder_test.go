package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"givetake/internal/check"
	"givetake/internal/comm"
	"givetake/internal/frontend"
)

// goodSrc has real communication to place: a distributed read inside a
// loop that the full analysis hoists and vectorizes.
const goodSrc = `distributed x(1000)
real y(1000)

do i = 1, n
    y(i) = x(i) + 1
enddo
`

func analyze(t *testing.T, cfg Config, req *Request) *Response {
	t.Helper()
	s := mustNew(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.Analyze(ctx, req)
}

// TestLadderRungs forces each rung of the degradation ladder and
// asserts the response names it and carries a verified placement.
func TestLadderRungs(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		req      Request
		wantRung int
		// outcomes expected per recorded attempt, in order
		wantOutcomes []string
	}{
		{
			name:         "rung1-clean",
			cfg:          Config{AllowChaos: true},
			req:          Request{Source: goodSrc},
			wantRung:     RungFull,
			wantOutcomes: []string{"ok"},
		},
		{
			name:         "rung2-after-corrupted-solution",
			cfg:          Config{AllowChaos: true},
			req:          Request{Source: goodSrc, Chaos: &ChaosSpec{MutateSeed: 7}},
			wantRung:     RungNoHoist,
			wantOutcomes: []string{"check-failed", "ok"},
		},
		{
			name:         "rung3-after-panics",
			cfg:          Config{AllowChaos: true},
			req:          Request{Source: goodSrc, Chaos: &ChaosSpec{PanicRung: "full"}},
			wantRung:     RungNoHoist, // panic at rung 1 → rung 2 holds
			wantOutcomes: []string{"panic", "ok"},
		},
		{
			name:         "rung3-atomic-floor",
			cfg:          Config{AllowChaos: true},
			req:          Request{Source: goodSrc, TimeoutMS: 1, Chaos: &ChaosSpec{PanicRung: "full"}},
			wantRung:     RungAtomic,
			wantOutcomes: nil, // timing-dependent prefix; checked loosely below
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *Response
			if tc.name == "rung3-atomic-floor" {
				// burn the deadline before the ladder starts so rungs 1-2
				// cannot run and the detached atomic floor must answer
				s := mustNew(t, tc.cfg)
				ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
				defer cancel()
				time.Sleep(time.Millisecond)
				resp = s.Analyze(ctx, &tc.req)
			} else {
				resp = analyze(t, tc.cfg, &tc.req)
			}
			if !resp.OK {
				t.Fatalf("response not OK: %+v", resp)
			}
			if resp.Rung != tc.wantRung {
				t.Fatalf("rung = %d (%s), want %d; ladder: %+v",
					resp.Rung, resp.RungName, tc.wantRung, resp.Ladder)
			}
			if resp.RungName != RungName(tc.wantRung) {
				t.Fatalf("rung_name = %q, want %q", resp.RungName, RungName(tc.wantRung))
			}
			if tc.wantOutcomes != nil {
				if len(resp.Ladder) != len(tc.wantOutcomes) {
					t.Fatalf("ladder = %+v, want outcomes %v", resp.Ladder, tc.wantOutcomes)
				}
				for i, want := range tc.wantOutcomes {
					if resp.Ladder[i].Outcome != want {
						t.Fatalf("attempt %d outcome = %q, want %q (%+v)",
							i, resp.Ladder[i].Outcome, want, resp.Ladder)
					}
				}
			}
			if resp.Check == nil || resp.Check.Errors != 0 {
				t.Fatalf("winning rung must verify cleanly: %+v", resp.Check)
			}
			if resp.Annotated == "" {
				t.Fatal("response missing annotated source")
			}
			if resp.Rung == RungAtomic && strings.Contains(resp.Annotated, "_Send") {
				t.Fatal("atomic rung must not emit split halves")
			}
		})
	}
}

// TestAtomicFallbackVerifies proves the rung-3 placement passes the
// independent static verifier and the linter on every corpus-shaped
// program, not just via the service path.
func TestAtomicFallbackVerifies(t *testing.T) {
	srcs := map[string]string{"good": goodSrc,
		"branchy": `distributed x(100)
real a(100)
if test then
    do i = 1, n
        x(a(i)) = 2
    enddo
endif
do k = 1, n
    a(k) = x(k)
enddo
`}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			prog, err := frontend.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			a, err := comm.AtomicFallback(prog, nil)
			if err != nil {
				t.Fatal(err)
			}
			res := a.CheckPlacement(nil)
			if errs := res.Errors(); len(errs) != 0 {
				t.Fatalf("atomic fallback failed verification: %v", errs)
			}
			// the linter runs too (warnings allowed, crash not)
			for _, p := range a.Problems() {
				_ = check.Lint(p)
			}
		})
	}
}

// TestLadderCancellation: a canceled client context aborts the whole
// ladder quickly with a canceled response, not a fallback placement.
func TestLadderCancellation(t *testing.T) {
	s := mustNew(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	resp := s.Analyze(ctx, &Request{Source: goodSrc})
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("canceled analyze took %v, want < 100ms", d)
	}
	if resp.OK || resp.Code != "canceled" {
		t.Fatalf("canceled request must fail with code=canceled: %+v", resp)
	}
}

// TestParseErrorNoLadder: malformed source gets a structured parse
// error without descending the ladder.
func TestParseErrorNoLadder(t *testing.T) {
	resp := analyze(t, Config{}, &Request{Source: "do i = \n !!!"})
	if resp.OK || resp.Code != "parse-error" || len(resp.Ladder) != 0 {
		t.Fatalf("want parse-error with empty ladder, got %+v", resp)
	}
}

// TestExecuteTruncationReported: an execute request that blows the step
// budget still succeeds, with a truncated partial trace attached.
func TestExecuteTruncationReported(t *testing.T) {
	resp := analyze(t, Config{MaxSteps: 50},
		&Request{Source: goodSrc, Execute: true, N: 1000})
	if !resp.OK {
		t.Fatalf("response not OK: %+v", resp)
	}
	if resp.Trace == nil || !resp.Trace.Truncated {
		t.Fatalf("want truncated trace summary, got %+v", resp.Trace)
	}
	if resp.Trace.Steps == 0 {
		t.Fatal("partial trace should report the steps executed")
	}
}
