package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"givetake/internal/engine"
	"givetake/internal/obs"
	"givetake/internal/telemetry"
)

// instruments is the server's handle on its metric families. One set
// exists per Server (created in New); every family name comes from the
// closed vocabulary in internal/obs/names.go, so this file cannot
// invent a metric the registry would not admit.
type instruments struct {
	registry *telemetry.Registry
	bridge   *telemetry.Bridge
	traces   *telemetry.TraceRing
	access   *telemetry.AccessLog

	requests  telemetry.Counter   // by (route, status)
	duration  telemetry.Histogram // by (route, rung, cache, status)
	attempts  telemetry.Counter   // by (rung, outcome)
	queueWait telemetry.Histogram // by (outcome)
}

func newInstruments(reg *telemetry.Registry, traces *telemetry.TraceRing, access *telemetry.AccessLog) *instruments {
	return &instruments{
		registry: reg,
		bridge:   telemetry.NewBridge(reg),
		traces:   traces,
		access:   access,
		requests: reg.Counter(obs.MetricRequestsTotal,
			"HTTP requests served, by route and status.", "route", "status"),
		duration: reg.Histogram(obs.MetricRequestDuration,
			"End-to-end request latency in seconds.", nil,
			"route", "rung", "cache", "status"),
		attempts: reg.Counter(obs.MetricLadderAttempts,
			"Degradation-ladder rung attempts, by rung and outcome.", "rung", "outcome"),
		queueWait: reg.Histogram(obs.MetricAdmissionWait,
			"Time spent waiting for an analysis slot, by outcome.", nil, "outcome"),
	}
}

// registerGauges installs the scrape-time occupancy gauges. Called
// after the engine and journal exist; every value is read live at each
// scrape, so gauges can never lag the state they report.
func (s *Server) registerGauges() {
	reg := s.inst.registry
	reg.GaugeFunc(obs.MetricInFlight,
		"Requests currently holding an analysis slot.",
		func() float64 { return float64(s.inFlight.Load()) })
	reg.GaugeFunc(obs.MetricReady,
		"Readiness to take new work (0 warming or draining, 1 ready).",
		func() float64 {
			if s.ready.Load() && !s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc(obs.MetricPoolWorkers,
		"Size of the engine worker pool.",
		func() float64 { return float64(s.engine.Workers()) })
	reg.GaugeFunc(obs.MetricPoolBusy,
		"Engine pool tasks executing right now.",
		func() float64 { return float64(s.engine.Busy()) })
	reg.GaugeFunc(obs.MetricCacheEntries,
		"Resident result-cache entries.",
		func() float64 { return float64(s.engine.Stats().Cache.Entries) })
	reg.GaugeFunc(obs.MetricCacheBytes,
		"Resident result-cache bytes.",
		func() float64 { return float64(s.engine.Stats().Cache.Bytes) })
	reg.GaugeSeriesFunc(obs.MetricPipelineQueueDepth,
		"Tasks waiting in each pipeline stage's bounded input queue.",
		[]string{"stage"}, s.pipelineSamples(func(st engine.StageStats) float64 {
			return float64(st.QueueDepth)
		}))
	reg.GaugeSeriesFunc(obs.MetricPipelineOccupancy,
		"Pipeline stage workers executing a task right now.",
		[]string{"stage"}, s.pipelineSamples(func(st engine.StageStats) float64 {
			return float64(st.Busy)
		}))
	reg.GaugeSeriesFunc(obs.MetricPipelineWorkers,
		"Configured worker count of each pipeline stage.",
		[]string{"stage"}, s.pipelineSamples(func(st engine.StageStats) float64 {
			return float64(st.Workers)
		}))
	if s.journal != nil {
		reg.GaugeFunc(obs.MetricJournalPending,
			"Appended records not yet sealed by a group commit.",
			func() float64 { return float64(s.journal.Stats().PendingRecords) })
	}
}

// pipelineSamples adapts one field of the engine's per-stage pipeline
// stats into the scrape-time series callback shape the registry wants.
func (s *Server) pipelineSamples(field func(engine.StageStats) float64) func() []telemetry.GaugeSample {
	return func() []telemetry.GaugeSample {
		stats := s.engine.PipelineStats()
		out := make([]telemetry.GaugeSample, 0, len(stats))
		for _, st := range stats {
			out = append(out, telemetry.GaugeSample{
				LabelVals: []string{st.Stage},
				Value:     field(st),
			})
		}
		return out
	}
}

// traceCarrier rides the request context so the layers below the HTTP
// handler (ladder, cache) can report what happened back to the
// instrumentation middleware without widening every signature.
type traceCarrier struct {
	mu       sync.Mutex
	rung     string
	code     string
	attempts []telemetry.TraceAttempt
	spans    []telemetry.TraceSpan
}

type carrierKey struct{}

func carrierFrom(ctx context.Context) *traceCarrier {
	c, _ := ctx.Value(carrierKey{}).(*traceCarrier)
	return c
}

// setSpans records the per-stage spans of the analysis that computed
// this request (cache hits have none: no stage ran). Nil-safe.
func (c *traceCarrier) setSpans(spans []obs.Span) {
	if c == nil {
		return
	}
	out := make([]telemetry.TraceSpan, 0, len(spans))
	for _, sp := range spans {
		if sp.Dur < 0 {
			continue // span never closed; don't report a bogus duration
		}
		out = append(out, telemetry.TraceSpan{
			Name:   sp.Name,
			Depth:  sp.Depth,
			WallMS: float64(sp.Dur.Microseconds()) / 1000,
		})
	}
	c.mu.Lock()
	c.spans = out
	c.mu.Unlock()
}

// setMeta records the rung, error code, and ladder attempts of the
// response body about to be written. Nil-safe.
func (c *traceCarrier) setMeta(rung, code string, attempts []telemetry.TraceAttempt) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.rung, c.code, c.attempts = rung, code, attempts
	c.mu.Unlock()
}

func (c *traceCarrier) snapshot() (rung, code string, attempts []telemetry.TraceAttempt, spans []telemetry.TraceSpan) {
	if c == nil {
		return "", "", nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rung, c.code, c.attempts, c.spans
}

// responseMeta is the slice of a stored response body the middleware
// needs for labeling: every body — fresh, cached, or replayed — carries
// it, so a cache hit is exactly as reconstructable as the miss that
// filled it.
type responseMeta struct {
	Rung     int       `json:"rung"`
	RungName string    `json:"rung_name"`
	Code     string    `json:"code"`
	Ladder   []Attempt `json:"ladder"`
}

// noteResponseMeta extracts the rung/code/ladder of a rendered body
// into the request's carrier and returns the rung name for the
// response header.
func noteResponseMeta(ctx context.Context, body []byte) string {
	var m responseMeta
	if err := json.Unmarshal(body, &m); err != nil {
		return ""
	}
	attempts := make([]telemetry.TraceAttempt, 0, len(m.Ladder))
	for _, a := range m.Ladder {
		attempts = append(attempts, telemetry.TraceAttempt{
			Rung:       a.Name,
			Outcome:    a.Outcome,
			Detail:     a.Detail,
			DurationMS: a.DurationMS,
		})
	}
	carrierFrom(ctx).setMeta(m.RungName, m.Code, attempts)
	return m.RungName
}

// routeLabel bounds the route label to the known endpoint set: an
// arbitrary scanned path must never mint a new time series.
func routeLabel(path string) string {
	switch path {
	case "/analyze", "/batch", "/healthz", "/readyz", "/metrics", "/debug/requests":
		return path
	}
	return "other"
}

// statusWriter captures the status code a handler wrote (200 when the
// handler wrote a body without an explicit WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument is the outermost middleware: it assigns (or validates and
// propagates) the request's trace ID, times the request, and — after
// the handler returns — records the latency histogram, the request
// counter, the trace-ring entry, and the sampled access-log line. It
// wraps the panic boundary, so a panicking request is still counted as
// its 500.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r.URL.Path)
		id := r.Header.Get(telemetry.TraceHeader)
		if !telemetry.ValidTraceID(id) {
			id = telemetry.NewTraceID()
		}
		w.Header().Set(telemetry.TraceHeader, id)

		car := &traceCarrier{}
		ctx := telemetry.WithTraceID(r.Context(), id)
		ctx = context.WithValue(ctx, carrierKey{}, car)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)

		status := strconv.Itoa(sw.status())
		cache := sw.Header().Get("X-Gnt-Cache")
		rung, code, attempts, spans := car.snapshot()
		s.inst.requests.Inc(route, status)
		s.inst.duration.Observe(elapsed.Seconds(), route, rung, cache, status)

		// The trace ring and access log follow analysis traffic only;
		// scrapes and probes would drown the signal they exist for.
		if route != "/analyze" && route != "/batch" {
			return
		}
		s.inst.traces.Add(telemetry.RequestTrace{
			ID:         id,
			Route:      route,
			Method:     r.Method,
			Start:      start,
			DurationMS: float64(elapsed.Microseconds()) / 1000,
			Status:     sw.status(),
			Cache:      cache,
			Rung:       rung,
			Code:       code,
			Attempts:   attempts,
			Spans:      spans,
		})
		s.inst.access.Log(telemetry.AccessEntry{
			Time:       start.UTC().Format(time.RFC3339Nano),
			Trace:      id,
			Method:     r.Method,
			Route:      route,
			Status:     sw.status(),
			DurationMS: float64(elapsed.Microseconds()) / 1000,
			Cache:      cache,
			Rung:       rung,
			Code:       code,
		})
	})
}

// observeQueueWait records one admission-queue wait by outcome.
func (s *Server) observeQueueWait(outcome string, start time.Time) {
	s.inst.queueWait.Observe(time.Since(start).Seconds(), outcome)
}

// Metrics exposes the server's metric registry (tests, embedding).
func (s *Server) Metrics() *telemetry.Registry { return s.inst.registry }

// Traces exposes the server's request-trace ring.
func (s *Server) Traces() *telemetry.TraceRing { return s.inst.traces }

// PprofHandler returns the profiling mux served on Config.PprofAddr:
// the standard net/http/pprof pages under /debug/pprof/. It is a
// separate handler — never mounted on the service mux — so profiling
// exposure is decided by where the caller binds it, not by a path
// convention.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
