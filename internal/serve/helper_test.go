package serve

import "testing"

// mustNew builds a Server for a test, failing on config errors (none
// of the test configs use fallible journal storage) and closing it
// when the test ends.
func mustNew(tb testing.TB, cfg Config) *Server {
	tb.Helper()
	s, err := New(cfg)
	if err != nil {
		tb.Fatalf("serve.New: %v", err)
	}
	tb.Cleanup(func() { _ = s.Close() })
	return s
}
