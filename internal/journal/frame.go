package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk layout. All integers are little-endian.
//
// A segment is a sequence of sealed batches:
//
//	batch header (56 bytes):
//	  [ 4] magic "GNTB"
//	  [ 8] seq        — monotone batch sequence number
//	  [ 4] records    — record count
//	  [ 4] payloadLen — byte length of the records region
//	  [32] merkleRoot — root over the records' leaf hashes
//	  [ 4] headerCRC  — CRC-32C over bytes 4..52 (seq..root)
//	records region (payloadLen bytes), per record:
//	  [ 4] frameLen   — payload byte length
//	  [ 4] frameCRC   — CRC-32C over the payload
//	  [frameLen] payload:
//	       [4] keyLen, key, [4] status, [4] bodyLen, body
//
// The header is written in the same buffered write as its records, so
// the Merkle root is known before any byte reaches storage, and one
// Sync after the write seals the batch (fsync-on-seal). Replay trusts
// a header only after its CRC verifies, trusts a record only after its
// frame CRC verifies, and trusts a batch only after the recomputed
// root matches the sealed root.

const (
	batchMagic      = "GNTB"
	batchHeaderSize = 4 + 8 + 4 + 4 + 32 + 4
	recordFrameSize = 8 // frameLen + frameCRC
)

// castagnoli is the CRC-32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeRecordPayload renders one record's payload (the CRC- and
// Merkle-covered bytes).
func encodeRecordPayload(r Record) []byte {
	p := make([]byte, 0, 12+len(r.Key)+len(r.Body))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(r.Key)))
	p = append(p, r.Key...)
	p = binary.LittleEndian.AppendUint32(p, uint32(r.Status))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(r.Body)))
	p = append(p, r.Body...)
	return p
}

// decodeRecordPayload parses one record payload. The returned record's
// Body is a copy, never an alias of buf: replayed bytes outlive the
// segment buffer they were read from.
func decodeRecordPayload(p []byte) (Record, error) {
	if len(p) < 4 {
		return Record{}, fmt.Errorf("payload too short for key length")
	}
	keyLen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < keyLen+8 {
		return Record{}, fmt.Errorf("payload too short for key+status")
	}
	key := string(p[:keyLen])
	p = p[keyLen:]
	status := binary.LittleEndian.Uint32(p)
	bodyLen := binary.LittleEndian.Uint32(p[4:])
	p = p[8:]
	if uint32(len(p)) != bodyLen {
		return Record{}, fmt.Errorf("body length %d, have %d bytes", bodyLen, len(p))
	}
	body := make([]byte, bodyLen)
	copy(body, p)
	return Record{Key: key, Status: int(status), Body: body}, nil
}

// encodeBatch renders one sealed batch: header (with the Merkle root
// over the records' leaf hashes) followed by the framed records.
func encodeBatch(seq uint64, recs []Record) []byte {
	payload := make([]byte, 0, 256*len(recs))
	leaves := make([][32]byte, len(recs))
	for i, r := range recs {
		p := encodeRecordPayload(r)
		leaves[i] = leafHash(p)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(p)))
		payload = binary.LittleEndian.AppendUint32(payload, crc32.Checksum(p, castagnoli))
		payload = append(payload, p...)
	}
	root := merkleRoot(leaves)

	buf := make([]byte, 0, batchHeaderSize+len(payload))
	buf = append(buf, batchMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, root[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[4:batchHeaderSize-4], castagnoli))
	return append(buf, payload...)
}

// batchHeader is a decoded, CRC-verified batch header.
type batchHeader struct {
	seq        uint64
	records    uint32
	payloadLen uint32
	root       [32]byte
}

// decodeBatchHeader parses and verifies the 56-byte header at the
// start of buf. A false second result means the header is corrupt (bad
// magic or CRC) and nothing in it may be trusted.
func decodeBatchHeader(buf []byte) (batchHeader, bool) {
	if len(buf) < batchHeaderSize || string(buf[:4]) != batchMagic {
		return batchHeader{}, false
	}
	want := binary.LittleEndian.Uint32(buf[batchHeaderSize-4:])
	if crc32.Checksum(buf[4:batchHeaderSize-4], castagnoli) != want {
		return batchHeader{}, false
	}
	var h batchHeader
	h.seq = binary.LittleEndian.Uint64(buf[4:])
	h.records = binary.LittleEndian.Uint32(buf[12:])
	h.payloadLen = binary.LittleEndian.Uint32(buf[16:])
	copy(h.root[:], buf[20:52])
	return h, true
}

// decodeBatchRecords parses the records region of a batch whose header
// verified, checking every frame CRC and the Merkle seal. Any failure
// returns an error and NO records: a batch is admitted whole or not at
// all — partial admission would break the seal's integrity claim.
func decodeBatchRecords(h batchHeader, region []byte) ([]Record, error) {
	recs := make([]Record, 0, h.records)
	leaves := make([][32]byte, 0, h.records)
	off := 0
	for i := uint32(0); i < h.records; i++ {
		if len(region)-off < recordFrameSize {
			return nil, fmt.Errorf("record %d: region exhausted", i)
		}
		frameLen := binary.LittleEndian.Uint32(region[off:])
		frameCRC := binary.LittleEndian.Uint32(region[off+4:])
		off += recordFrameSize
		if uint32(len(region)-off) < frameLen {
			return nil, fmt.Errorf("record %d: frame length %d exceeds region", i, frameLen)
		}
		p := region[off : off+int(frameLen)]
		off += int(frameLen)
		if crc32.Checksum(p, castagnoli) != frameCRC {
			return nil, fmt.Errorf("record %d: frame CRC mismatch", i)
		}
		rec, err := decodeRecordPayload(p)
		if err != nil {
			return nil, fmt.Errorf("record %d: %v", i, err)
		}
		recs = append(recs, rec)
		leaves = append(leaves, leafHash(p))
	}
	if off != len(region) {
		return nil, fmt.Errorf("%d trailing bytes after last record", len(region)-off)
	}
	if merkleRoot(leaves) != h.root {
		return nil, fmt.Errorf("merkle root mismatch")
	}
	return recs, nil
}

// SegmentName renders the canonical zero-padded segment file name, so
// lexicographic order is commit order.
func SegmentName(index int) string { return fmt.Sprintf("journal-%08d.seg", index) }

// nextSegmentIndex picks the first unused segment index given the
// existing (canonically named) segments.
func nextSegmentIndex(names []string) int {
	next := 0
	for _, n := range names {
		var i int
		if _, err := fmt.Sscanf(n, "journal-%08d.seg", &i); err == nil && i >= next {
			next = i + 1
		}
	}
	return next
}
