package journal

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestCrashRecoveryProperty is the crash-recovery property test: for
// 200 seeded fault schedules — torn tail, mid-segment truncation, or a
// bit flip at a random offset — replay must
//
//   - deliver only verified records, each byte-identical to what was
//     committed,
//   - count the corruption it skipped, with the counts matching the
//     injected fault,
//   - and never crash (a panic fails the test; Replay must return a
//     nil error for corruption).
func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nBatches := 2 + rng.Intn(6)
			batchSize := 1 + rng.Intn(8)

			mb := NewMemBackend()
			j, err := Open(Config{Backend: mb, MaxWait: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			recs := fill(t, j, nBatches*batchSize, batchSize)
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			names, _ := mb.Segments()
			name := names[0]
			offs := batchOffsets(t, mb, name)
			if len(offs) != nBatches {
				t.Fatalf("built %d batches, want %d", len(offs), nBatches)
			}

			// inject one seeded fault and compute the survivor set
			var want []Record
			var wantTorn, wantCorruptBatches int64
			switch rng.Intn(3) {
			case 0: // torn tail: cut strictly inside the last batch
				last := offs[nBatches-1]
				cut := last[0] + 1 + rng.Intn(last[1]-last[0]-1)
				mb.Truncate(name, int64(cut))
				want = recs[:(nBatches-1)*batchSize]
				wantTorn, wantCorruptBatches = 1, 0
			case 1: // mid-segment truncation: everything after the cut is lost
				victim := rng.Intn(nBatches)
				v := offs[victim]
				cut := v[0] + 1 + rng.Intn(v[1]-v[0]-1)
				mb.Truncate(name, int64(cut))
				want = recs[:victim*batchSize]
				wantTorn, wantCorruptBatches = 1, 0
			case 2: // bit flip at a random offset: exactly one batch drops
				victim := rng.Intn(nBatches)
				v := offs[victim]
				off := v[0] + rng.Intn(v[1]-v[0])
				if !mb.FlipBit(name, int64(off), uint(rng.Intn(8))) {
					t.Fatal("flip failed")
				}
				want = append(append([]Record{}, recs[:victim*batchSize]...),
					recs[(victim+1)*batchSize:]...)
				wantTorn, wantCorruptBatches = 0, 1
			}

			got, st := replayAll(t, mb)
			assertIdentical(t, got, want)
			if st.TornTails != wantTorn {
				t.Fatalf("torn tails = %d, want %d (stats %+v)", st.TornTails, wantTorn, st)
			}
			if st.CorruptBatches != wantCorruptBatches {
				t.Fatalf("corrupt batches = %d, want %d (stats %+v)", st.CorruptBatches, wantCorruptBatches, st)
			}
			if wantCorruptBatches > 0 &&
				st.CorruptRecords != 0 && st.CorruptRecords != int64(batchSize) {
				// header-flip leaves the count unknown (0); a records-
				// region flip counts the victim batch's records exactly
				t.Fatalf("corrupt records = %d, want 0 or %d", st.CorruptRecords, batchSize)
			}
			if lost := int64(len(recs) - len(want)); st.Records != int64(len(recs))-lost {
				t.Fatalf("delivered %d, want %d", st.Records, int64(len(recs))-lost)
			}
		})
	}
}

// TestFaultBackendTorture drives the journal through a seeded storm of
// short writes, fsync failures, and read-time bit flips, then crashes
// and replays. The journal may lose data to the faults — that is the
// point — but everything it delivers must be byte-identical to
// something that was appended, and nothing may crash.
func TestFaultBackendTorture(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mb := NewMemBackend()
			fb := NewFaultBackend(mb, FaultConfig{
				Seed:       seed,
				ShortWrite: 0.25,
				SyncErr:    0.2,
				FlipRead:   0.3,
			})
			j, err := Open(Config{Backend: fb, MaxWait: time.Hour, MaxSegmentBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}

			appended := map[string][]byte{}
			status := map[string]int{}
			for i := 0; i < 120; i++ {
				r := rec(i + int(seed)*1000)
				appended[r.Key] = r.Body
				status[r.Key] = r.Status
				j.Append(r)
				if i%7 == 6 {
					_ = j.Flush() // injected sync errors are allowed here
				}
			}
			j.Abort() // SIGKILL: no final flush
			mb.Crash()

			names, err := fb.Segments()
			if err != nil {
				t.Fatal(err)
			}
			delivered := 0
			st, err := Replay(fb, names, func(r Record) {
				wantBody, ok := appended[r.Key]
				if !ok {
					t.Fatalf("replay delivered unknown key %q", r.Key)
				}
				if !bytes.Equal(r.Body, wantBody) || r.Status != status[r.Key] {
					t.Fatalf("replay delivered corrupt bytes for %q", r.Key)
				}
				delivered++
			})
			if err != nil {
				t.Fatalf("replay errored under faults: %v", err)
			}
			fs := fb.Stats()
			if fs.ShortWrites+fs.SyncErrs+fs.FlipReads == 0 {
				t.Fatalf("seed %d injected no faults; torture test is a no-op", seed)
			}
			// fault accounting must close: injected storage damage shows
			// up as counted corruption or as records that simply never
			// became durable, never as silently admitted bad bytes
			if delivered == len(appended) && (fs.ShortWrites > 0 || fs.FlipReads > 0) && !st.Corrupt() {
				// possible only if every fault hit bytes that were
				// already lost to an earlier fault — extremely unlikely
				// across the schedule; treat as a signal the injection
				// is not reaching storage
				t.Fatalf("all %d records delivered cleanly despite %+v (stats %+v)",
					delivered, fs, st)
			}
		})
	}
}

// TestConcurrentAppendReplay: records appended from many goroutines
// through the live flusher all survive a graceful close, intact.
func TestConcurrentAppendReplay(t *testing.T) {
	mb := NewMemBackend()
	j, err := Open(Config{Backend: mb, MaxBatch: 16, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Append(rec(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got := map[string][]byte{}
	_, st := replayAll(t, mb)
	names, _ := mb.Segments()
	if _, err := Replay(mb, names, func(r Record) { got[r.Key] = r.Body }); err != nil {
		t.Fatal(err)
	}
	if st.Corrupt() {
		t.Fatalf("concurrent journal corrupt: %+v", st)
	}
	if len(got) != workers*per {
		t.Fatalf("replayed %d unique records, want %d", len(got), workers*per)
	}
	for i := 0; i < workers*per; i++ {
		want := rec(i)
		if !bytes.Equal(got[want.Key], want.Body) {
			t.Fatalf("record %d corrupted through concurrent path", i)
		}
	}
}
