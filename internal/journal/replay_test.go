package journal

import (
	"bytes"
	"testing"
	"time"
)

// build writes nBatches batches of batchSize records each into a fresh
// MemBackend through a real journal, returning the backend, the
// records, and the single segment's name.
func build(t *testing.T, nBatches, batchSize int) (*MemBackend, []Record, string) {
	t.Helper()
	mb := NewMemBackend()
	j, err := Open(Config{Backend: mb, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	recs := fill(t, j, nBatches*batchSize, batchSize)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := mb.Segments()
	if len(names) != 1 {
		t.Fatalf("want one segment, got %v", names)
	}
	return mb, recs, names[0]
}

// batchOffsets parses the clean segment and returns each batch's
// (start, end) byte range — ground truth for targeted corruption.
func batchOffsets(t *testing.T, mb *MemBackend, name string) [][2]int {
	t.Helper()
	rc, err := mb.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(rc); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	var out [][2]int
	off := 0
	for off < len(b) {
		h, ok := decodeBatchHeader(b[off:])
		if !ok {
			t.Fatalf("clean segment has bad header at %d", off)
		}
		end := off + batchHeaderSize + int(h.payloadLen)
		out = append(out, [2]int{off, end})
		off = end
	}
	return out
}

// TestTornTailSkipped: a crash that cut the last batch mid-record is
// detected as a torn tail; every earlier batch replays intact.
func TestTornTailSkipped(t *testing.T) {
	mb, recs, name := build(t, 4, 5)
	offs := batchOffsets(t, mb, name)
	last := offs[len(offs)-1]
	// cut inside the last batch's records region
	cut := int64(last[0] + batchHeaderSize + (last[1]-last[0]-batchHeaderSize)/2)
	if !mb.Truncate(name, cut) {
		t.Fatal("truncate failed")
	}

	got, st := replayAll(t, mb)
	assertIdentical(t, got, recs[:15])
	if st.TornTails != 1 || st.CorruptBatches != 0 {
		t.Fatalf("stats = %+v, want exactly one torn tail", st)
	}
	if st.SkippedBytes == 0 {
		t.Fatal("torn bytes must be counted")
	}
}

// TestTornHeaderSkipped: a crash inside the header itself (fewer than
// 56 bytes of the new batch written) is a torn tail too.
func TestTornHeaderSkipped(t *testing.T) {
	mb, recs, name := build(t, 3, 4)
	offs := batchOffsets(t, mb, name)
	last := offs[len(offs)-1]
	if !mb.Truncate(name, int64(last[0]+batchHeaderSize/2)) {
		t.Fatal("truncate failed")
	}
	got, st := replayAll(t, mb)
	assertIdentical(t, got, recs[:8])
	if st.TornTails != 1 {
		t.Fatalf("stats = %+v, want one torn tail", st)
	}
}

// TestBitFlipInRecordsDropsBatchWhole: a single flipped bit inside a
// batch's records region drops exactly that batch — never a partial
// admission, never a crash — and the scan continues at the next batch.
func TestBitFlipInRecordsDropsBatchWhole(t *testing.T) {
	const nBatches, batchSize = 5, 4
	mb, recs, name := build(t, nBatches, batchSize)
	offs := batchOffsets(t, mb, name)
	victim := 2
	flipAt := int64(offs[victim][0] + batchHeaderSize + 10)
	if !mb.FlipBit(name, flipAt, 3) {
		t.Fatal("flip failed")
	}

	got, st := replayAll(t, mb)
	want := append(append([]Record{}, recs[:victim*batchSize]...), recs[(victim+1)*batchSize:]...)
	assertIdentical(t, got, want)
	if st.CorruptBatches != 1 || st.CorruptRecords != batchSize {
		t.Fatalf("stats = %+v, want 1 corrupt batch / %d corrupt records", st, batchSize)
	}
	if st.TornTails != 0 {
		t.Fatalf("bit flip misclassified as torn tail: %+v", st)
	}
}

// TestBitFlipInHeaderResyncs: a flip inside a batch header (including
// the sealed Merkle root) invalidates the header CRC; the scanner
// resynchronizes on the next batch magic and loses only that batch.
func TestBitFlipInHeaderResyncs(t *testing.T) {
	const nBatches, batchSize = 4, 3
	mb, recs, name := build(t, nBatches, batchSize)
	offs := batchOffsets(t, mb, name)
	victim := 1
	// flip inside the sealed root field (bytes 20..52 of the header)
	if !mb.FlipBit(name, int64(offs[victim][0]+24), 0) {
		t.Fatal("flip failed")
	}

	got, st := replayAll(t, mb)
	want := append(append([]Record{}, recs[:victim*batchSize]...), recs[(victim+1)*batchSize:]...)
	assertIdentical(t, got, want)
	if st.CorruptBatches != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt batch", st)
	}
}

// TestMerkleCatchesReorder: swapping two complete record frames inside
// a batch keeps every frame CRC valid and the region perfectly framed
// — only the Merkle seal can catch the reorder. The batch must drop
// whole; its neighbors must survive.
func TestMerkleCatchesReorder(t *testing.T) {
	const batchSize = 3
	mb, recs, name := build(t, 3, batchSize)
	offs := batchOffsets(t, mb, name)

	rc, _ := mb.Open(name)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()
	seg := buf.Bytes()

	// rebuild batch 1's records region with its first two frames
	// swapped: each frame stays internally valid, but the leaf order
	// no longer matches the sealed root
	victim := 1
	region := seg[offs[victim][0]+batchHeaderSize : offs[victim][1]]
	var frames [][]byte
	for off := 0; off < len(region); {
		frameLen := int(uint32(region[off]) | uint32(region[off+1])<<8 |
			uint32(region[off+2])<<16 | uint32(region[off+3])<<24)
		end := off + recordFrameSize + frameLen
		frames = append(frames, append([]byte(nil), region[off:end]...))
		off = end
	}
	if len(frames) != batchSize {
		t.Fatalf("parsed %d frames, want %d", len(frames), batchSize)
	}
	frames[0], frames[1] = frames[1], frames[0]
	reordered := bytes.Join(frames, nil)
	copy(region, reordered)

	mb2 := NewMemBackend()
	w, err := mb2.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(seg); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	got, st := replayAll(t, mb2)
	want := append(append([]Record{}, recs[:victim*batchSize]...), recs[(victim+1)*batchSize:]...)
	assertIdentical(t, got, want)
	if st.CorruptBatches != 1 || st.CorruptRecords != batchSize {
		t.Fatalf("stats = %+v, want exactly the reordered batch dropped", st)
	}
}

// TestEmptySegmentAndEmptyBackend: degenerate shapes replay cleanly.
func TestEmptySegmentAndEmptyBackend(t *testing.T) {
	mb := NewMemBackend()
	got, st := replayAll(t, mb)
	if len(got) != 0 || st.Corrupt() {
		t.Fatalf("empty backend: %d records, %+v", len(got), st)
	}
	w, err := mb.Create(SegmentName(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	got, st = replayAll(t, mb)
	if len(got) != 0 || st.Corrupt() {
		t.Fatalf("empty segment: %d records, %+v", len(got), st)
	}
}

// TestGarbageSegment: a segment of pure noise yields zero records and
// some corruption accounting, never a panic.
func TestGarbageSegment(t *testing.T) {
	mb := NewMemBackend()
	w, err := mb.Create(SegmentName(0))
	if err != nil {
		t.Fatal(err)
	}
	noise := bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef}, 300)
	if _, err := w.Write(noise); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, mb)
	if len(got) != 0 {
		t.Fatalf("garbage yielded %d records", len(got))
	}
	if !st.Corrupt() {
		t.Fatalf("garbage not counted as corruption: %+v", st)
	}
}
