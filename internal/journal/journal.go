// Package journal is the durable tier behind the engine's result
// cache: a write-behind, group-committed log of (CacheKey, rendered
// bytes) records that survives a SIGKILL and replays into a warm cache
// on restart.
//
// The design mirrors the balance discipline of the paper it serves:
// just as GIVE-N-TAKE proves every Recv is matched by a Send on every
// path (criterion C1), the journal proves every replayed byte is
// exactly what was committed, on every crash path. Three mechanisms
// carry that proof:
//
//   - CRC framing: every record is length-prefixed and carries a
//     CRC-32C over its payload, so a bit flip or a torn write is
//     detected at the record boundary (frame.go);
//
//   - Merkle sealing: a batch of records is committed as one unit
//     whose header carries the Merkle root over the records' leaf
//     hashes. A batch whose recomputed root does not match its sealed
//     root is dropped whole — reordering, splicing, and CRC-colliding
//     corruption cannot survive the seal (merkle.go);
//
//   - fsync-on-seal: a batch becomes durable with exactly one Sync
//     after its bytes are written. Everything after the last Sync is
//     presumed lost on crash; replay treats a partial batch at the
//     tail of a segment as a torn tail, not an error.
//
// Writes are group-committed by a write-behind batcher: Append
// enqueues and returns immediately, and a background flusher seals a
// batch when it reaches MaxBatch records (or MaxBatchBytes) or when
// the oldest pending record has waited MaxWait. The request path
// therefore never waits on fsync; the price is a bounded window of
// recent results (the unflushed batch) lost on crash, which for a
// cache warm-up tier is the right trade.
//
// Storage is pluggable behind the Backend interface (backend.go): an
// in-memory backend with explicit crash semantics for tests, a
// file-backed backend with real fsync for production, and a seeded
// fault-injecting wrapper (fault.go) that drives the crash-recovery
// torture tests. Replay (replay.go) never crashes and never admits
// corrupt bytes: torn tails, bit flips, and truncated segments are
// detected, counted, and skipped.
package journal

import (
	"fmt"
	"sync"
	"time"

	"givetake/internal/obs"
)

// Record is one journaled cache fill: the content address of an
// analysis request and the exact rendered bytes served for it. Body is
// stored and replayed verbatim — byte-identity between the originally
// served response and the replayed one is the journal's contract.
type Record struct {
	Key    string
	Status int
	Body   []byte
}

// size is the record's accounting weight against the batcher's byte
// trigger (payload bytes, ignoring frame overhead).
func (r Record) size() int64 { return int64(len(r.Key)) + int64(len(r.Body)) + 8 }

// Defaults for the zero Config.
const (
	DefaultMaxBatch        = 64
	DefaultMaxBatchBytes   = 1 << 20
	DefaultMaxWait         = 50 * time.Millisecond
	DefaultMaxSegmentBytes = 64 << 20
)

// Config parameterizes a Journal.
type Config struct {
	// Backend is the segment store; required.
	Backend Backend
	// MaxBatch seals a batch when this many records are pending.
	MaxBatch int
	// MaxBatchBytes seals a batch when the pending payload reaches it.
	MaxBatchBytes int64
	// MaxWait bounds how long a pending record waits before its batch
	// is sealed regardless of size (the journal-lag bound).
	MaxWait time.Duration
	// MaxSegmentBytes rotates to a fresh segment beyond this size.
	MaxSegmentBytes int64
	// Collector receives journal spans and counters; nil records
	// nothing.
	Collector obs.Collector
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if c.MaxWait <= 0 {
		c.MaxWait = DefaultMaxWait
	}
	if c.MaxSegmentBytes <= 0 {
		c.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	return c
}

// Stats is a point-in-time snapshot of the journal. PendingRecords and
// PendingBytes are the journal lag: results served but not yet
// durable, the window lost on a crash.
type Stats struct {
	Appended       int64   `json:"appended"`
	SealedBatches  int64   `json:"sealed_batches"`
	SealedRecords  int64   `json:"sealed_records"`
	SealedBytes    int64   `json:"sealed_bytes"`
	FlushErrors    int64   `json:"flush_errors"`
	DroppedRecords int64   `json:"dropped_records"`
	PendingRecords int     `json:"pending_records"`
	PendingBytes   int64   `json:"pending_bytes"`
	Segments       int     `json:"segments"`
	LastFlushMS    float64 `json:"last_flush_ms"`
	MaxFlushMS     float64 `json:"max_flush_ms"`
}

// Journal is the write-behind batcher over a Backend. Create with
// Open; Append from any goroutine; Close flushes the pending batch and
// stops the flusher. A nil *Journal tolerates every method and stores
// nothing, so callers thread an optional journal without branching.
type Journal struct {
	cfg Config

	mu           sync.Mutex // guards pending + stats
	pending      []Record
	pendingBytes int64
	stats        Stats
	closed       bool

	flushMu  sync.Mutex // serializes batch writes; never held with mu
	w        SegmentWriter
	wBytes   int64
	seq      uint64
	segIndex int

	replayNames []string // segments that existed at Open, in order

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// Open scans the backend for existing segments (they become the replay
// set) and starts the background flusher. New batches always go to a
// fresh segment: an existing segment may end in a torn batch, and the
// journal never appends after a tear.
func Open(cfg Config) (*Journal, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("journal: Config.Backend is required")
	}
	cfg = cfg.withDefaults()
	names, err := cfg.Backend.Segments()
	if err != nil {
		return nil, fmt.Errorf("journal: listing segments: %w", err)
	}
	j := &Journal{
		cfg:         cfg,
		segIndex:    nextSegmentIndex(names),
		replayNames: names,
		kick:        make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	j.wg.Add(1)
	go j.flusher()
	return j, nil
}

// Append enqueues one record for group commit and returns immediately.
// The record becomes durable at the next seal — within MaxWait, or
// sooner when the batch triggers fill. Safe on a nil journal.
func (j *Journal) Append(rec Record) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.pending = append(j.pending, rec)
	j.pendingBytes += rec.size()
	j.stats.Appended++
	full := len(j.pending) >= j.cfg.MaxBatch || j.pendingBytes >= j.cfg.MaxBatchBytes
	j.mu.Unlock()
	obs.Count(j.cfg.Collector, obs.CounterJournalAppend, 1)
	if full {
		select {
		case j.kick <- struct{}{}:
		default: // a kick is already queued
		}
	}
}

// flusher is the group-commit loop: it seals the pending batch when
// kicked (size trigger) or when the wait timer fires (latency bound).
func (j *Journal) flusher() {
	defer j.wg.Done()
	timer := time.NewTimer(j.cfg.MaxWait)
	defer timer.Stop()
	for {
		select {
		case <-j.kick:
			_ = j.Flush()
		case <-timer.C:
			_ = j.Flush()
			timer.Reset(j.cfg.MaxWait)
		case <-j.done:
			return
		}
	}
}

// Flush synchronously seals and commits the pending batch: encode,
// append to the current segment (rotating when full), and Sync — the
// durability barrier. Concurrent Appends are not blocked by the write.
// No-op when nothing is pending. Safe on a nil journal.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.flushMu.Lock()
	defer j.flushMu.Unlock()

	j.mu.Lock()
	batch := j.pending
	j.pending = nil
	j.pendingBytes = 0
	j.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}

	end := obs.Begin(j.cfg.Collector, obs.SpanJournalFlush, "records", len(batch))
	start := time.Now()
	err := j.commitLocked(batch)
	ms := float64(time.Since(start).Microseconds()) / 1000

	j.mu.Lock()
	j.stats.LastFlushMS = ms
	if ms > j.stats.MaxFlushMS {
		j.stats.MaxFlushMS = ms
	}
	if err != nil {
		j.stats.FlushErrors++
		j.stats.DroppedRecords += int64(len(batch))
	} else {
		j.stats.SealedBatches++
		j.stats.SealedRecords += int64(len(batch))
	}
	j.mu.Unlock()

	if err != nil {
		end("error", err.Error())
		return err
	}
	end()
	obs.Count(j.cfg.Collector, obs.CounterJournalSealed, 1)
	obs.Count(j.cfg.Collector, obs.CounterJournalSealedRecords, int64(len(batch)))
	return nil
}

// commitLocked writes one sealed batch to the current segment. Called
// with flushMu held. A write or sync failure abandons the current
// segment (its tail may be garbage — replay tolerates that) and the
// next commit starts a fresh one.
func (j *Journal) commitLocked(batch []Record) error {
	buf := encodeBatch(j.seq, batch)
	if j.w != nil && j.wBytes+int64(len(buf)) > j.cfg.MaxSegmentBytes && j.wBytes > 0 {
		_ = j.w.Close()
		j.w, j.wBytes = nil, 0
	}
	if j.w == nil {
		w, err := j.cfg.Backend.Create(SegmentName(j.segIndex))
		if err != nil {
			return fmt.Errorf("journal: creating segment: %w", err)
		}
		j.segIndex++
		j.mu.Lock()
		j.stats.Segments++
		j.mu.Unlock()
		j.w = w
	}
	n, err := j.w.Write(buf)
	if err == nil && n < len(buf) {
		err = fmt.Errorf("journal: short write: %d of %d bytes", n, len(buf))
	}
	if err == nil {
		err = j.w.Sync()
	}
	if err != nil {
		_ = j.w.Close()
		j.w, j.wBytes = nil, 0
		return err
	}
	j.wBytes += int64(len(buf))
	j.seq++
	j.mu.Lock()
	j.stats.SealedBytes += int64(len(buf))
	j.mu.Unlock()
	return nil
}

// Replay streams every verified record from the segments that existed
// at Open time, in commit order, to fn. Corrupt batches, torn tails,
// and truncated segments are counted and skipped — Replay never fails
// on corruption, only on backend access errors.
func (j *Journal) Replay(fn func(Record)) (ReplayStats, error) {
	if j == nil {
		return ReplayStats{}, nil
	}
	end := obs.Begin(j.cfg.Collector, obs.SpanJournalReplay, "segments", len(j.replayNames))
	rs, err := Replay(j.cfg.Backend, j.replayNames, fn)
	end("records", rs.Records, "corrupt_batches", rs.CorruptBatches, "torn_tails", rs.TornTails)
	obs.Count(j.cfg.Collector, obs.CounterJournalReplayed, rs.Records)
	obs.Count(j.cfg.Collector, obs.CounterJournalCorruptBatch, rs.CorruptBatches)
	obs.Count(j.cfg.Collector, obs.CounterJournalCorruptRecord, rs.CorruptRecords)
	obs.Count(j.cfg.Collector, obs.CounterJournalTornTail, rs.TornTails)
	return rs, err
}

// Stats snapshots the journal counters. Safe on a nil journal.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.PendingRecords = len(j.pending)
	s.PendingBytes = j.pendingBytes
	return s
}

// Close flushes the pending batch (the graceful-drain path: nothing
// served is left behind), stops the flusher, and closes the current
// segment. Idempotent; safe on a nil journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if !j.stop() {
		return nil
	}
	err := j.Flush()
	j.flushMu.Lock()
	defer j.flushMu.Unlock()
	if j.w != nil {
		if cerr := j.w.Close(); err == nil {
			err = cerr
		}
		j.w = nil
	}
	return err
}

// Abort stops the journal WITHOUT flushing — SIGKILL semantics for
// crash tests: the pending batch and anything unsynced is abandoned
// exactly as a killed process would abandon it.
func (j *Journal) Abort() {
	if j == nil || !j.stop() {
		return
	}
	j.mu.Lock()
	j.stats.DroppedRecords += int64(len(j.pending))
	j.pending = nil
	j.pendingBytes = 0
	j.mu.Unlock()
	j.flushMu.Lock()
	defer j.flushMu.Unlock()
	if j.w != nil {
		_ = j.w.Close()
		j.w = nil
	}
}

// stop marks the journal closed and joins the flusher; reports whether
// this call was the one that closed it.
func (j *Journal) stop() bool {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return false
	}
	j.closed = true
	j.mu.Unlock()
	close(j.done)
	j.wg.Wait()
	return true
}
