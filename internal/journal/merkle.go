package journal

import "crypto/sha256"

// Merkle sealing. Each record payload hashes to a leaf; a batch's seal
// is the root over its leaves. Leaves and interior nodes are
// domain-separated (0x00 / 0x01 prefixes) so an interior value can
// never be replayed as a leaf, and an odd node promotes unchanged
// rather than self-pairing, avoiding the duplicate-leaf malleability
// of the self-pairing construction.
//
// The root makes batch admission all-or-nothing under adversarial
// corruption: a record CRC is a 32-bit check against random bit rot,
// but the 256-bit root also rules out reordering, splicing records
// between batches, and CRC-colliding payload rewrites. It is also what
// lets a future shared-cache node hand a peer an O(log n) membership
// proof (Proof / VerifyProof) instead of the whole batch.

const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// leafHash hashes one record payload into its Merkle leaf.
func leafHash(payload []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two children into their parent.
func nodeHash(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// merkleRoot folds the leaves level by level; an unpaired node
// promotes unchanged. The root of zero leaves is the zero hash (an
// empty batch is never sealed, but the value is defined).
func merkleRoot(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return [32]byte{}
	}
	level := make([][32]byte, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		next := level[:0:len(level)/2+1]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// ProofStep is one level of a membership proof: the sibling hash and
// which side it sits on. The side travels with the hash because a
// promoted (unpaired) level contributes no step, so the verifier
// cannot reconstruct parity from the leaf index alone.
type ProofStep struct {
	Hash [32]byte
	Left bool // sibling is the left child
}

// Proof returns the sibling path proving leaves[i] under the root, at
// most one step per level (O(log n)).
func Proof(leaves [][32]byte, i int) []ProofStep {
	if i < 0 || i >= len(leaves) {
		return nil
	}
	var path []ProofStep
	level := make([][32]byte, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		if sib := i ^ 1; sib < len(level) {
			path = append(path, ProofStep{Hash: level[sib], Left: sib < i})
		}
		next := level[:0:len(level)/2+1]
		for k := 0; k < len(level); k += 2 {
			if k+1 < len(level) {
				next = append(next, nodeHash(level[k], level[k+1]))
			} else {
				next = append(next, level[k])
			}
		}
		level = next
		i /= 2
	}
	return path
}

// VerifyProof checks that the payload is a leaf of the tree with the
// given root, using the sibling path from Proof.
func VerifyProof(root [32]byte, payload []byte, path []ProofStep) bool {
	h := leafHash(payload)
	for _, step := range path {
		if step.Left {
			h = nodeHash(step.Hash, h)
		} else {
			h = nodeHash(h, step.Hash)
		}
	}
	return h == root
}
