package journal

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"
)

// rec builds a deterministic test record. Bodies avoid the batch magic
// byte 'G' so resync tests can rely on exact batch boundaries.
func rec(i int) Record {
	body := make([]byte, 64+i%97)
	r := rand.New(rand.NewSource(int64(i) + 1))
	const alphabet = "abcdefhijklmnopqrstuvwxyz0123456789"
	for k := range body {
		body[k] = alphabet[r.Intn(len(alphabet))]
	}
	return Record{Key: fmt.Sprintf("key-%04d", i), Status: 200, Body: body}
}

// fill appends n records and flushes them in batches of batchSize.
func fill(t *testing.T, j *Journal, n, batchSize int) []Record {
	t.Helper()
	recs := make([]Record, n)
	for i := 0; i < n; i++ {
		recs[i] = rec(i)
		j.Append(recs[i])
		if (i+1)%batchSize == 0 {
			if err := j.Flush(); err != nil {
				t.Fatalf("flush at %d: %v", i, err)
			}
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	return recs
}

// replayAll replays a backend's full segment set into a slice.
func replayAll(t *testing.T, b Backend) ([]Record, ReplayStats) {
	t.Helper()
	names, err := b.Segments()
	if err != nil {
		t.Fatalf("segments: %v", err)
	}
	var got []Record
	st, err := Replay(b, names, func(r Record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, st
}

func assertIdentical(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || got[i].Status != want[i].Status ||
			!bytes.Equal(got[i].Body, want[i].Body) {
			t.Fatalf("record %d differs after replay: key %q status %d len %d, want key %q status %d len %d",
				i, got[i].Key, got[i].Status, len(got[i].Body),
				want[i].Key, want[i].Status, len(want[i].Body))
		}
	}
}

// TestRoundTrip: append → flush → replay yields byte-identical records
// in commit order, with zero corruption counted.
func TestRoundTrip(t *testing.T) {
	mb := NewMemBackend()
	j, err := Open(Config{Backend: mb, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, j, 57, 10)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(Config{Backend: mb})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var got []Record
	st, err := j2.Replay(func(r Record) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, got, want)
	if st.Corrupt() {
		t.Fatalf("clean journal reported corruption: %+v", st)
	}
	if st.Records != 57 || st.Batches != 6 {
		t.Fatalf("replay stats %+v, want 57 records in 6 batches", st)
	}
}

// TestFileBackendRoundTrip: same contract through real files + fsync.
func TestFileBackendRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := Open(Config{Backend: fb, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, j, 23, 7)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// a second open must not touch existing segments: new appends go
	// to a fresh one
	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := Open(Config{Backend: fb2, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	j2.Append(rec(1000))
	if err := j2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	got, st := replayAll(t, fb2)
	assertIdentical(t, got, append(want, rec(1000)))
	if st.Corrupt() {
		t.Fatalf("clean file journal reported corruption: %+v", st)
	}
	names, _ := fb2.Segments()
	if len(names) != 2 {
		t.Fatalf("want 2 segments (one per journal generation), got %v", names)
	}
}

// TestSizeTriggeredFlush: reaching MaxBatch seals without Flush or
// timer help.
func TestSizeTriggeredFlush(t *testing.T) {
	mb := NewMemBackend()
	j, err := Open(Config{Backend: mb, MaxBatch: 8, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 8; i++ {
		j.Append(rec(i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := j.Stats(); st.SealedBatches >= 1 {
			if st.SealedRecords != 8 || st.PendingRecords != 0 {
				t.Fatalf("stats after size-triggered seal: %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("size trigger never flushed: %+v", j.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWaitTriggeredFlush: a lone record becomes durable within the
// MaxWait bound (plus scheduling slack) with no size trigger.
func TestWaitTriggeredFlush(t *testing.T) {
	mb := NewMemBackend()
	j, err := Open(Config{Backend: mb, MaxBatch: 1 << 20, MaxWait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Append(rec(0))
	deadline := time.Now().Add(5 * time.Second)
	for j.Stats().SealedRecords == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("wait trigger never flushed: %+v", j.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSegmentRotation: exceeding MaxSegmentBytes starts a new segment,
// and replay spans all of them.
func TestSegmentRotation(t *testing.T) {
	mb := NewMemBackend()
	j, err := Open(Config{Backend: mb, MaxWait: time.Hour, MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, j, 40, 4)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := mb.Segments()
	if len(names) < 2 {
		t.Fatalf("want rotation across segments, got %v", names)
	}
	got, st := replayAll(t, mb)
	assertIdentical(t, got, want)
	if st.Corrupt() {
		t.Fatalf("rotated journal reported corruption: %+v", st)
	}
}

// TestCloseFlushesPending is the graceful-drain contract: Close seals
// the pending batch before stopping.
func TestCloseFlushesPending(t *testing.T) {
	mb := NewMemBackend()
	j, err := Open(Config{Backend: mb, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(rec(0))
	j.Append(rec(1))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, mb)
	assertIdentical(t, got, []Record{rec(0), rec(1)})
	// appends after Close are dropped, not crashed
	j.Append(rec(2))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAbortDropsPending is the SIGKILL contract: Abort seals nothing.
func TestAbortDropsPending(t *testing.T) {
	mb := NewMemBackend()
	j, err := Open(Config{Backend: mb, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(rec(0))
	j.Abort()
	mb.Crash()
	got, _ := replayAll(t, mb)
	if len(got) != 0 {
		t.Fatalf("aborted journal replayed %d records, want 0", len(got))
	}
	if d := j.Stats().DroppedRecords; d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
}

// TestNilJournal: every method tolerates a nil receiver, so callers
// thread an optional journal without branching.
func TestNilJournal(t *testing.T) {
	var j *Journal
	j.Append(rec(0))
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Replay(func(Record) {}); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	j.Abort()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalLag: pending records/bytes are visible before the seal
// and zero after.
func TestJournalLag(t *testing.T) {
	mb := NewMemBackend()
	j, err := Open(Config{Backend: mb, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Append(rec(0))
	j.Append(rec(1))
	st := j.Stats()
	if st.PendingRecords != 2 || st.PendingBytes <= 0 {
		t.Fatalf("lag not visible: %+v", st)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	st = j.Stats()
	if st.PendingRecords != 0 || st.PendingBytes != 0 || st.SealedRecords != 2 {
		t.Fatalf("lag not cleared: %+v", st)
	}
	if st.LastFlushMS < 0 || st.MaxFlushMS < st.LastFlushMS {
		t.Fatalf("flush timing inconsistent: %+v", st)
	}
}

// TestMerkleProof: O(log n) membership proofs verify for every leaf,
// across tree sizes including the odd-promotion shapes, and fail for
// tampered payloads.
func TestMerkleProof(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		payloads := make([][]byte, n)
		leaves := make([][32]byte, n)
		for i := range payloads {
			payloads[i] = encodeRecordPayload(rec(i))
			leaves[i] = leafHash(payloads[i])
		}
		root := merkleRoot(leaves)
		for i := 0; i < n; i++ {
			proof := Proof(leaves, i)
			if !VerifyProof(root, payloads[i], proof) {
				t.Fatalf("n=%d: proof for leaf %d does not verify", n, i)
			}
			tampered := append([]byte(nil), payloads[i]...)
			tampered[0] ^= 1
			if VerifyProof(root, tampered, proof) {
				t.Fatalf("n=%d: tampered leaf %d verified", n, i)
			}
		}
	}
}

// TestSegmentNaming: replay order is lexicographic, and Open resumes
// numbering after the highest existing segment.
func TestSegmentNaming(t *testing.T) {
	if nextSegmentIndex(nil) != 0 {
		t.Fatal("empty backend must start at segment 0")
	}
	names := []string{SegmentName(0), SegmentName(3), SegmentName(11)}
	if got := nextSegmentIndex(names); got != 12 {
		t.Fatalf("nextSegmentIndex = %d, want 12", got)
	}
	if SegmentName(11) <= SegmentName(2) {
		t.Fatal("zero-padded names must sort in commit order")
	}
}
