package journal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Backend is the pluggable segment store behind a Journal. A segment
// is an append-only byte stream of sealed batches; the backend owns
// naming, listing, and durability (Sync). Implementations: MemBackend
// (tests, with explicit crash semantics), FileBackend (production,
// real fsync), FaultBackend (seeded storage-fault injection wrapping
// either).
type Backend interface {
	// Segments lists existing segment names in replay (commit) order.
	Segments() ([]string, error)
	// Open returns a reader over one segment's bytes as stored — which
	// after a crash may end mid-batch; replay copes.
	Open(name string) (io.ReadCloser, error)
	// Create opens a fresh segment for appending. Creating a name that
	// already exists is an error: segments are immutable once abandoned.
	Create(name string) (SegmentWriter, error)
}

// SegmentWriter is an open segment. Sync is the durability barrier:
// bytes written before a successful Sync survive a crash, bytes after
// it may not.
type SegmentWriter interface {
	io.Writer
	Sync() error
	Close() error
}

// MemBackend -------------------------------------------------------------

// memSegment tracks written bytes and the durable watermark — the
// prefix a crash preserves (everything Sync'd).
type memSegment struct {
	data    []byte
	durable int
}

// MemBackend is the in-memory backend for tests: segments are byte
// buffers with an explicit durable watermark, and Crash discards
// everything after it — the exact semantics of SIGKILL over a real
// filesystem with fsync.
type MemBackend struct {
	mu    sync.Mutex
	segs  map[string]*memSegment
	order []string
}

// NewMemBackend builds an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{segs: map[string]*memSegment{}}
}

// Segments lists segments in creation order.
func (m *MemBackend) Segments() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out, nil
}

// Open returns a reader over a snapshot of the segment's bytes.
func (m *MemBackend) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seg, ok := m.segs[name]
	if !ok {
		return nil, fmt.Errorf("journal: no segment %q", name)
	}
	cp := make([]byte, len(seg.data))
	copy(cp, seg.data)
	return io.NopCloser(bytes.NewReader(cp)), nil
}

// Create opens a fresh segment.
func (m *MemBackend) Create(name string) (SegmentWriter, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.segs[name]; ok {
		return nil, fmt.Errorf("journal: segment %q already exists", name)
	}
	seg := &memSegment{}
	m.segs[name] = seg
	m.order = append(m.order, name)
	return &memWriter{m: m, seg: seg}, nil
}

// Crash simulates SIGKILL: every segment is truncated to its durable
// watermark, discarding all bytes written since the last Sync.
func (m *MemBackend) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, seg := range m.segs {
		seg.data = seg.data[:seg.durable]
	}
}

// FlipBit flips one bit at the given byte offset of a segment —
// storage-level bit rot for corruption tests. Reports whether the
// offset was in range.
func (m *MemBackend) FlipBit(name string, off int64, bit uint) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	seg, ok := m.segs[name]
	if !ok || off < 0 || off >= int64(len(seg.data)) {
		return false
	}
	seg.data[off] ^= 1 << (bit % 8)
	seg.durable = len(seg.data) // corruption is durable, not torn
	return true
}

// Truncate cuts a segment to n bytes — a mid-batch truncation.
func (m *MemBackend) Truncate(name string, n int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	seg, ok := m.segs[name]
	if !ok || n < 0 || n > int64(len(seg.data)) {
		return false
	}
	seg.data = seg.data[:n]
	if seg.durable > int(n) {
		seg.durable = int(n)
	}
	return true
}

// Size reports a segment's current byte length (0 when absent).
func (m *MemBackend) Size(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if seg, ok := m.segs[name]; ok {
		return int64(len(seg.data))
	}
	return 0
}

type memWriter struct {
	m   *MemBackend
	seg *memSegment
}

func (w *memWriter) Write(p []byte) (int, error) {
	w.m.mu.Lock()
	defer w.m.mu.Unlock()
	w.seg.data = append(w.seg.data, p...)
	return len(p), nil
}

func (w *memWriter) Sync() error {
	w.m.mu.Lock()
	defer w.m.mu.Unlock()
	w.seg.durable = len(w.seg.data)
	return nil
}

func (w *memWriter) Close() error { return nil }

// FileBackend ------------------------------------------------------------

// FileBackend stores each segment as a file under one directory, with
// real fsync as the durability barrier. The directory itself is
// fsync'd after every segment creation so the file entry survives a
// crash along with its bytes.
type FileBackend struct {
	dir string
}

// NewFileBackend creates the directory (if needed) and returns a
// backend over it.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &FileBackend{dir: dir}, nil
}

// Dir reports the backing directory.
func (f *FileBackend) Dir() string { return f.dir }

// Segments lists *.seg files sorted by name; canonical zero-padded
// names make that commit order.
func (f *FileBackend) Segments() ([]string, error) {
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (f *FileBackend) Open(name string) (io.ReadCloser, error) {
	return os.Open(filepath.Join(f.dir, name))
}

func (f *FileBackend) Create(name string) (SegmentWriter, error) {
	fl, err := os.OpenFile(filepath.Join(f.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	// make the directory entry itself durable; best-effort (some
	// filesystems refuse directory fsync) — the data fsync is the one
	// that matters for replay correctness
	if d, derr := os.Open(f.dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return fl, nil
}
