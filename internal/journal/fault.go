package journal

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
)

// FaultConfig seeds a FaultBackend, in the style of internal/netsim:
// every probability is evaluated on a deterministic per-backend PRNG,
// so a seed reproduces an exact storage-fault schedule.
type FaultConfig struct {
	// Seed drives the fault schedule; same seed, same faults.
	Seed int64
	// ShortWrite is the probability a Write silently persists only a
	// random proper prefix — a torn record at a flush boundary. The
	// writer still reports full success, exactly like a kernel that
	// acknowledged a write the disk never finished.
	ShortWrite float64
	// SyncErr is the probability a Sync fails, leaving the batch
	// written but not durable (a later Crash on the wrapped MemBackend
	// discards it).
	SyncErr float64
	// FlipRead is the probability an Open'd segment comes back with
	// one random bit flipped — read-time bit rot.
	FlipRead float64
}

// FaultStats counts injected faults, for asserting that a torture run
// actually exercised what it claims.
type FaultStats struct {
	ShortWrites int64 `json:"short_writes"`
	SyncErrs    int64 `json:"sync_errs"`
	FlipReads   int64 `json:"flip_reads"`
}

// faultErr is a distinguishable injected error.
type faultErr string

func (e faultErr) Error() string { return string(e) }

// ErrInjectedSync is the error an injected fsync failure returns.
const ErrInjectedSync = faultErr("journal: injected sync failure")

// FaultBackend wraps another Backend with seeded storage faults:
// short (torn) writes, fsync failures, and read-time bit flips. It is
// the storage-side sibling of netsim's lossy transport and drives the
// crash-recovery torture tests.
type FaultBackend struct {
	inner Backend
	cfg   FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
}

// NewFaultBackend wraps inner with the seeded fault schedule.
func NewFaultBackend(inner Backend, cfg FaultConfig) *FaultBackend {
	return &FaultBackend{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injected-fault counters.
func (f *FaultBackend) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// roll evaluates one probability on the seeded PRNG.
func (f *FaultBackend) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < p
}

// intn draws from the seeded PRNG.
func (f *FaultBackend) intn(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Intn(n)
}

func (f *FaultBackend) Segments() ([]string, error) { return f.inner.Segments() }

// Open injects read-time bit rot: with probability FlipRead the
// returned stream has one random bit flipped.
func (f *FaultBackend) Open(name string) (io.ReadCloser, error) {
	rc, err := f.inner.Open(name)
	if err != nil || !f.roll(f.cfg.FlipRead) {
		return rc, err
	}
	buf, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}
	if len(buf) > 0 {
		i := f.intn(len(buf) * 8)
		buf[i/8] ^= 1 << (i % 8)
		f.mu.Lock()
		f.stats.FlipReads++
		f.mu.Unlock()
	}
	return io.NopCloser(bytes.NewReader(buf)), nil
}

func (f *FaultBackend) Create(name string) (SegmentWriter, error) {
	w, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultWriter{f: f, w: w}, nil
}

type faultWriter struct {
	f *FaultBackend
	w SegmentWriter
}

// Write persists only a random proper prefix with probability
// ShortWrite, while reporting full success — the tear is only
// discoverable at replay, as on real hardware.
func (fw *faultWriter) Write(p []byte) (int, error) {
	if len(p) > 1 && fw.f.roll(fw.f.cfg.ShortWrite) {
		keep := 1 + fw.f.intn(len(p)-1)
		fw.f.mu.Lock()
		fw.f.stats.ShortWrites++
		fw.f.mu.Unlock()
		if _, err := fw.w.Write(p[:keep]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return fw.w.Write(p)
}

func (fw *faultWriter) Sync() error {
	if fw.f.roll(fw.f.cfg.SyncErr) {
		fw.f.mu.Lock()
		fw.f.stats.SyncErrs++
		fw.f.mu.Unlock()
		return ErrInjectedSync
	}
	return fw.w.Sync()
}

func (fw *faultWriter) Close() error { return fw.w.Close() }
