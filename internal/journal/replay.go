package journal

import (
	"bytes"
	"fmt"
	"io"
)

// ReplayStats accounts one replay pass. The invariant behind every
// counter: a record reaches the callback only when its frame CRC, its
// batch's header CRC, and its batch's Merkle root all verified —
// corruption is counted here, never delivered.
type ReplayStats struct {
	// Segments is how many segments were scanned.
	Segments int `json:"segments"`
	// Batches / Records count verified, delivered data.
	Batches int64 `json:"batches"`
	Records int64 `json:"records"`
	// CorruptBatches counts batches dropped whole: header corruption,
	// record CRC failure, or Merkle root mismatch.
	CorruptBatches int64 `json:"corrupt_batches"`
	// CorruptRecords counts records lost inside dropped batches (by
	// the header's count when the header verified, else unknown → 0).
	CorruptRecords int64 `json:"corrupt_records"`
	// TornTails counts segments ending mid-batch — the expected shape
	// of a crash between a write and its Sync.
	TornTails int64 `json:"torn_tails"`
	// SkippedBytes is the total size of regions that were not part of
	// any verified batch.
	SkippedBytes int64 `json:"skipped_bytes"`
	// DurationMS is the wall time of the pass.
	DurationMS float64 `json:"duration_ms"`
}

// Corrupt reports whether the pass saw any corruption at all.
func (s ReplayStats) Corrupt() bool {
	return s.CorruptBatches > 0 || s.TornTails > 0
}

func (s *ReplayStats) add(o ReplayStats) {
	s.Segments += o.Segments
	s.Batches += o.Batches
	s.Records += o.Records
	s.CorruptBatches += o.CorruptBatches
	s.CorruptRecords += o.CorruptRecords
	s.TornTails += o.TornTails
	s.SkippedBytes += o.SkippedBytes
}

// Replay streams every verified record of the named segments, in
// order, to fn. It must never crash and never admit corrupt bytes:
//
//   - a segment ending mid-batch is a torn tail — counted, scan ends;
//   - a batch whose header fails its CRC is corrupt — the scanner
//     resynchronizes on the next batch magic and counts the gap;
//   - a batch whose records fail a frame CRC, mis-frame, or whose
//     recomputed Merkle root mismatches the seal is dropped whole —
//     counted, scan continues at the next batch (the verified header
//     gives the skip distance).
//
// Only backend access failures (a segment that cannot be read) return
// an error; corruption is data, not failure.
func Replay(b Backend, names []string, fn func(Record)) (ReplayStats, error) {
	var stats ReplayStats
	for _, name := range names {
		rc, err := b.Open(name)
		if err != nil {
			return stats, fmt.Errorf("journal: open %s: %w", name, err)
		}
		buf, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return stats, fmt.Errorf("journal: read %s: %w", name, err)
		}
		seg := replaySegment(buf, fn)
		stats.add(seg)
	}
	stats.Segments = len(names)
	return stats, nil
}

// replaySegment scans one segment buffer batch by batch.
func replaySegment(buf []byte, fn func(Record)) ReplayStats {
	var st ReplayStats
	off := 0
	for off < len(buf) {
		rest := buf[off:]
		if len(rest) < batchHeaderSize {
			// too short to even hold a header: crash mid-write
			st.TornTails++
			st.SkippedBytes += int64(len(rest))
			return st
		}
		h, ok := decodeBatchHeader(rest)
		if !ok {
			// corrupt header — resynchronize on the next magic. A flip
			// inside the header (including the sealed root) lands here.
			skip := resync(rest[1:])
			st.CorruptBatches++
			if skip < 0 {
				st.SkippedBytes += int64(len(rest))
				return st
			}
			st.SkippedBytes += int64(1 + skip)
			off += 1 + skip
			continue
		}
		end := batchHeaderSize + int(h.payloadLen)
		if len(rest) < end {
			// header sealed but records cut short: torn tail
			st.TornTails++
			st.SkippedBytes += int64(len(rest))
			return st
		}
		recs, err := decodeBatchRecords(h, rest[batchHeaderSize:end])
		if err != nil {
			// all-or-nothing: a batch with any unverifiable record is
			// dropped whole; the verified header tells us where the
			// next batch starts
			st.CorruptBatches++
			st.CorruptRecords += int64(h.records)
			st.SkippedBytes += int64(end)
			off += end
			continue
		}
		for _, r := range recs {
			fn(r)
		}
		st.Batches++
		st.Records += int64(len(recs))
		off += end
	}
	return st
}

// resync finds the byte offset of the next batch magic in buf, or -1.
func resync(buf []byte) int {
	return bytes.Index(buf, []byte(batchMagic))
}
