package frontend

import (
	"strings"
	"testing"

	"givetake/internal/ir"
)

// fig1 is the code of paper Figure 1.
const fig1 = `
distributed x(1000)
real y(1000), z(1000), a(1000)

do i = 1, N
    y(i) = ...
enddo
if test then
    do j = 1, N
        z(j) = ...
    enddo
    do k = 1, N
        ... = x(a(k))
    enddo
else
    do l = 1, N
        ... = x(a(l))
    enddo
endif
`

// fig11 is the code of paper Figure 11.
const fig11 = `
distributed x(1000), y(1000)
real a(1000), b(1000)

do i = 1, N
    y(a(i)) = ...
    if test(i) goto 77
enddo
do j = 1, N
    ... = ...
enddo
77 do k = 1, N
    ... = x(k+10) + y(b(k))
enddo
`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("do i = 1, N ! comment\n x(a(i)) = i .lt. 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokenKind{
		TokIdent, TokIdent, TokAssign, TokInt, TokComma, TokIdent, TokNewline,
		TokIdent, TokLParen, TokIdent, TokLParen, TokIdent, TokRParen, TokRParen,
		TokAssign, TokIdent, TokOp, TokInt, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// .lt. canonicalizes to <
	if toks[16].Text != "<" {
		t.Fatalf(".lt. lexed as %q", toks[16].Text)
	}
}

func TestLexCaseFolding(t *testing.T) {
	toks, err := Lex("DO I = 1, N")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "do" || toks[1].Text != "i" {
		t.Fatalf("identifiers not lowered: %v", toks[:2])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"x = $", "x = .bogus~"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestParseFig1(t *testing.T) {
	prog, err := Parse(fig1)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Distributed("x") {
		t.Error("x should be distributed")
	}
	if prog.Distributed("y") {
		t.Error("y should be local")
	}
	if len(prog.Body) != 2 {
		t.Fatalf("top-level statements = %d, want 2 (do, if)", len(prog.Body))
	}
	iff, ok := prog.Body[1].(*ir.If)
	if !ok {
		t.Fatalf("second statement is %T, want *ir.If", prog.Body[1])
	}
	if len(iff.Then) != 2 || len(iff.Else) != 1 {
		t.Fatalf("if arms = %d/%d, want 2/1", len(iff.Then), len(iff.Else))
	}
}

func TestParseFig11LabelsAndLogicalIf(t *testing.T) {
	prog, err := Parse(fig11)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Body) != 3 {
		t.Fatalf("top-level statements = %d, want 3", len(prog.Body))
	}
	kloop, ok := prog.Body[2].(*ir.Do)
	if !ok || kloop.Label() != "77" {
		t.Fatalf("third statement = %T label %q, want DO with label 77", prog.Body[2], prog.Body[2].Label())
	}
	iloop := prog.Body[0].(*ir.Do)
	logIf, ok := iloop.Body[1].(*ir.If)
	if !ok {
		t.Fatalf("i-loop second stmt = %T, want *ir.If", iloop.Body[1])
	}
	g, ok := logIf.Then[0].(*ir.Goto)
	if !ok || g.Target != "77" {
		t.Fatalf("logical if body = %#v, want goto 77", logIf.Then[0])
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, src := range []string{fig1, fig11} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		text := ir.ProgramString(prog)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse failed: %v\n--- printed program:\n%s", err, text)
		}
		if got := ir.ProgramString(prog2); got != text {
			t.Fatalf("print/parse not a fixed point:\n%s\nvs\n%s", text, got)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	stmts, err := ParseStmts("x = a + b * c - d / e")
	if err != nil {
		t.Fatal(err)
	}
	got := ir.ExprString(stmts[0].(*ir.Assign).RHS)
	if got != "a + b * c - d / e" {
		t.Fatalf("printed expr = %q", got)
	}
	stmts, err = ParseStmts("x = (a + b) * c")
	if err != nil {
		t.Fatal(err)
	}
	if got := ir.ExprString(stmts[0].(*ir.Assign).RHS); got != "(a + b) * c" {
		t.Fatalf("printed expr = %q", got)
	}
}

func TestParseTriplet(t *testing.T) {
	stmts, err := ParseStmts("x(1:n:2) = ...")
	if err != nil {
		t.Fatal(err)
	}
	ref := stmts[0].(*ir.Assign).LHS.(*ir.ArrayRef)
	r, ok := ref.Subs[0].(*ir.RangeExpr)
	if !ok {
		t.Fatalf("subscript = %T, want RangeExpr", ref.Subs[0])
	}
	if ir.ExprString(r) != "1:n:2" {
		t.Fatalf("triplet prints as %q", ir.ExprString(r))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"do i = 1 N\nenddo", "expected ','"},
		{"if test then\n", "expected \"endif\""},
		{"goto 99", "undefined label"},
		{"goto 5\n5 continue\n", ""}, // forward goto OK
		{"5 x = 1\ngoto 5", "backward"},
		{"goto 7\ndo i = 1, n\n7 continue\nenddo", "into a DO loop"},
		{"do i=1,n\n goto 9\nenddo\n9 continue", ""}, // jump out of loop OK
		{"1 x = 2\n1 y = 3", "duplicate label"},
		{"x + 1 = 2", "expected"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if c.want == "" {
			if err != nil {
				t.Errorf("Parse(%q): unexpected error %v", c.src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q): error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestParseNestedLoopGoto(t *testing.T) {
	src := `
do i = 1, n
    do j = 1, n
        if (test) goto 10
    enddo
enddo
10 continue
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("two-level jump out of loops should parse: %v", err)
	}
	// jumping from inner loop to a label in the *outer* loop body is legal
	// (target chain is a prefix)
	src2 := `
do i = 1, n
    do j = 1, n
        if (test) goto 10
    enddo
10  continue
enddo
`
	if _, err := Parse(src2); err != nil {
		t.Fatalf("jump to enclosing loop body should parse: %v", err)
	}
}
