package frontend

import (
	"fmt"

	"givetake/internal/ir"
)

// Check enforces the structural restrictions that keep the control flow
// graph reducible and the interval flow graph well formed (paper §3.3),
// mirroring Fortran 77's branching rules:
//
//   - statement labels are unique;
//   - every GOTO target exists;
//   - GOTOs jump strictly forward in source order (no source-level loops
//     other than DO);
//   - a GOTO may leave DO loops and IF blocks but never enter one: the
//     target's enclosing scope chain (loops and IF arms) must be a
//     prefix of the GOTO's chain.
//
// With these rules every cycle in the CFG is a DO loop with a unique
// header, so the graph is reducible by construction, each loop has a
// single CYCLE edge, and no branch lands in the middle of a block it
// did not start in.
func Check(prog *ir.Program) error {
	c := &checker{
		order:  map[string]int{},
		scopes: map[string][]scope{},
		labels: map[string]ir.Pos{},
	}
	c.collect(prog.Body, nil)
	if c.err != nil {
		return c.err
	}
	c.n = 0
	c.walkVerify(prog.Body, nil)
	return c.err
}

// scope identifies one enclosing construct: a DO loop or one arm of an
// IF statement.
type scope struct {
	stmt ir.Stmt
	arm  int // 0 for DO bodies and then-arms, 1 for else-arms
}

type checker struct {
	n      int
	order  map[string]int     // label -> source order index
	scopes map[string][]scope // label -> enclosing scope chain (outermost first)
	labels map[string]ir.Pos
	err    error
}

func (c *checker) fail(pos ir.Pos, format string, args ...any) {
	if c.err == nil {
		c.err = &Error{pos, fmt.Sprintf(format, args...)}
	}
}

// collect numbers all statements in source order and records label sites.
func (c *checker) collect(stmts []ir.Stmt, encl []scope) {
	for _, s := range stmts {
		c.n++
		if l := s.Label(); l != "" {
			if prev, dup := c.labels[l]; dup {
				c.fail(s.Pos(), "duplicate label %s (previously at %s)", l, prev)
			}
			c.labels[l] = s.Pos()
			c.order[l] = c.n
			c.scopes[l] = append([]scope(nil), encl...)
		}
		switch s := s.(type) {
		case *ir.Do:
			c.collect(s.Body, append(encl, scope{s, 0}))
		case *ir.If:
			c.collect(s.Then, append(encl, scope{s, 0}))
			c.collect(s.Else, append(encl, scope{s, 1}))
		}
	}
}

func (c *checker) walkVerify(stmts []ir.Stmt, encl []scope) {
	for _, s := range stmts {
		c.n++
		here := c.n
		switch s := s.(type) {
		case *ir.Goto:
			tgt, ok := c.order[s.Target]
			if !ok {
				c.fail(s.Pos(), "goto %s: undefined label", s.Target)
				continue
			}
			if tgt <= here {
				c.fail(s.Pos(), "goto %s: backward jumps are not supported (only DO loops may form cycles)", s.Target)
				continue
			}
			tgtScopes := c.scopes[s.Target]
			if len(tgtScopes) > len(encl) {
				c.fail(s.Pos(), "goto %s: jump into a DO loop or IF block is not allowed", s.Target)
				continue
			}
			for i, sc := range tgtScopes {
				if encl[i] != sc {
					c.fail(s.Pos(), "goto %s: jump into a DO loop or IF block is not allowed", s.Target)
					break
				}
			}
		case *ir.Do:
			c.walkVerify(s.Body, append(encl, scope{s, 0}))
		case *ir.If:
			c.walkVerify(s.Then, append(encl, scope{s, 0}))
			c.walkVerify(s.Else, append(encl, scope{s, 1}))
		}
	}
}
