package frontend

import (
	"strings"
	"testing"

	"givetake/internal/ir"
)

// FuzzParse asserts the frontend never panics and that accepted programs
// survive a print/reparse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"x = 1",
		"do i = 1, n\n x(i) = i\nenddo",
		"if c then\n a = 1\nelse\n b = 2\nendif",
		"do i = 1, n, 2\n if (e) goto 9\nenddo\n9 continue",
		"distributed u(10, 20)\nu(1, 2) = 3",
		"... = x(a(k)) + y(1:n:2)",
		"77 continue\n",
		"if (1 != 2 .and. .not. c) then\nendif",
		"do i = 1, n\ndo i = 1, n\nenddo\nenddo",
		"goto 1\n1 x = 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := ir.ProgramString(prog)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse: %v\n--- printed:\n%s", err, text)
		}
		if again := ir.ProgramString(prog2); again != text {
			t.Fatalf("print is not a fixed point:\n%s\n--- vs:\n%s", text, again)
		}
	})
}

// FuzzLex asserts the lexer terminates and never panics.
func FuzzLex(f *testing.F) {
	for _, s := range []string{"", "x=1", "! comment", ".lt.", "...", "a(1:2:3)", "1 != 2", strings.Repeat("(", 50)} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err == nil && len(toks) == 0 {
			t.Fatal("lexer must at least emit EOF")
		}
	})
}
