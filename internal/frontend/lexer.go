// Package frontend lexes and parses the mini-Fortran dialect used by the
// GIVE-N-TAKE paper's figures and checks the structural restrictions the
// interval flow graph relies on (forward, loop-exiting GOTOs only).
package frontend

import (
	"fmt"
	"strings"

	"givetake/internal/ir"
)

// TokenKind enumerates lexical token classes.
type TokenKind int

const (
	TokEOF TokenKind = iota
	TokNewline
	TokIdent
	TokInt
	TokEllipsis // ...
	TokLParen
	TokRParen
	TokComma
	TokColon
	TokAssign // =
	TokOp     // + - * / < <= > >= == != .and. .or. .not.
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokNewline:
		return "newline"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokEllipsis:
		return "'...'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokColon:
		return "':'"
	case TokAssign:
		return "'='"
	case TokOp:
		return "operator"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  ir.Pos
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// Error is a frontend diagnostic with a source position.
type Error struct {
	Pos ir.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// dotOps maps Fortran dot-operators to the canonical symbolic spelling.
var dotOps = map[string]string{
	".lt.": "<", ".le.": "<=", ".gt.": ">", ".ge.": ">=",
	".eq.": "==", ".ne.": "!=", ".and.": ".and.", ".or.": ".or.", ".not.": ".not.",
}

// Lex splits src into tokens. Comments run from '!' to end of line.
// Fortran is case-insensitive; identifiers are lowered.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	emit := func(k TokenKind, text string, startCol int) {
		toks = append(toks, Token{Kind: k, Text: text, Pos: ir.Pos{Line: line, Col: startCol}})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emit(TokNewline, "", col)
			line++
			col = 1
			i++
		case c == ';':
			emit(TokNewline, "", col)
			i++
			col++
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(TokOp, "!=", col)
				i += 2
				col += 2
				break
			}
			for i < len(src) && src[i] != '\n' {
				i++
				col++
			}
		case c >= '0' && c <= '9':
			start, startCol := i, col
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
				col++
			}
			emit(TokInt, src[start:i], startCol)
		case isIdentStart(c):
			start, startCol := i, col
			for i < len(src) && isIdentPart(src[i]) {
				i++
				col++
			}
			emit(TokIdent, strings.ToLower(src[start:i]), startCol)
		case c == '.':
			if strings.HasPrefix(src[i:], "...") {
				emit(TokEllipsis, "...", col)
				i += 3
				col += 3
				break
			}
			// dot operator like .lt.
			end := strings.IndexByte(src[i+1:], '.')
			if end >= 0 {
				word := strings.ToLower(src[i : i+end+2])
				if op, ok := dotOps[word]; ok {
					emit(TokOp, op, col)
					i += end + 2
					col += end + 2
					break
				}
			}
			return nil, &Error{ir.Pos{Line: line, Col: col}, "unexpected '.'"}
		default:
			startCol := col
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch {
			case two == "<=" || two == ">=" || two == "==" || two == "!=" || two == "/=":
				op := two
				if op == "/=" {
					op = "!="
				}
				emit(TokOp, op, startCol)
				i += 2
				col += 2
			case c == '(':
				emit(TokLParen, "(", startCol)
				i++
				col++
			case c == ')':
				emit(TokRParen, ")", startCol)
				i++
				col++
			case c == ',':
				emit(TokComma, ",", startCol)
				i++
				col++
			case c == ':':
				emit(TokColon, ":", startCol)
				i++
				col++
			case c == '=':
				emit(TokAssign, "=", startCol)
				i++
				col++
			case c == '+' || c == '-' || c == '*' || c == '/' || c == '<' || c == '>':
				emit(TokOp, string(c), startCol)
				i++
				col++
			default:
				return nil, &Error{ir.Pos{Line: line, Col: col}, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: ir.Pos{Line: line, Col: col}})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
