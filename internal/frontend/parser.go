package frontend

import (
	"fmt"
	"strconv"

	"givetake/internal/ir"
)

// Parse parses a mini-Fortran program and runs the semantic checks
// (see Check). The dialect:
//
//	program heat                    ! optional
//	real x(1000)                    ! local array
//	distributed x(1000)             ! block-distributed array
//	do i = 1, n [, step] ... enddo
//	if cond then ... [else ...] endif       (parens around cond optional)
//	if (cond) goto 77                        (logical IF)
//	goto 77
//	77 continue                              (numeric statement labels)
//	lhs = rhs      with array refs x(a(k)+1) and '...' placeholders
func Parse(src string) (*ir.Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseStmts parses a bare statement list (no declarations), for tests.
func ParseStmts(src string) ([]ir.Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	p.skipNewlines()
	stmts, err := p.stmtList("")
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected %s", p.peek())
	}
	return stmts, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) peek() Token { return p.toks[p.i] }
func (p *parser) peek2() Token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != TokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{p.peek().Pos, fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if p.peek().Kind != k {
		return Token{}, p.errf("expected %s, found %s", k, p.peek())
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.Kind != TokIdent || t.Text != kw {
		return p.errf("expected %q, found %s", kw, t)
	}
	p.next()
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokIdent && t.Text == kw
}

func (p *parser) skipNewlines() {
	for p.peek().Kind == TokNewline {
		p.next()
	}
}

func (p *parser) endOfStmt() error {
	switch p.peek().Kind {
	case TokNewline:
		p.next()
		return nil
	case TokEOF:
		return nil
	default:
		return p.errf("expected end of statement, found %s", p.peek())
	}
}

func (p *parser) program() (*ir.Program, error) {
	prog := ir.NewProgram("main")
	p.skipNewlines()
	if p.atKeyword("program") {
		p.next()
		t, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		prog.Name = t.Text
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		p.skipNewlines()
	}
	// declarations
	for p.atKeyword("real") || p.atKeyword("distributed") {
		dist := ir.Local
		if p.atKeyword("distributed") {
			dist = ir.Block
		}
		pos := p.next().Pos
		for {
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			dims := []ir.Expr{&ir.IntLit{Position: name.Pos, Value: 1}}
			if p.peek().Kind == TokLParen {
				p.next()
				dims = dims[:0]
				for {
					d, err := p.expr()
					if err != nil {
						return nil, err
					}
					dims = append(dims, d)
					if p.peek().Kind != TokComma {
						break
					}
					p.next()
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			}
			prog.Declare(&ir.ArrayDecl{Position: pos, Name: name.Text, Dims: dims, Dist: dist})
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		p.skipNewlines()
	}
	body, err := p.stmtList("")
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected %s", p.peek())
	}
	prog.Body = body
	return prog, nil
}

// terminators for a statement list, keyed by context keyword.
func isTerminator(t Token, ctx string) bool {
	if t.Kind == TokEOF {
		return true
	}
	if t.Kind != TokIdent {
		return false
	}
	switch ctx {
	case "do":
		return t.Text == "enddo"
	case "then":
		return t.Text == "else" || t.Text == "endif"
	case "else":
		return t.Text == "endif"
	default:
		return t.Text == "end"
	}
}

func (p *parser) stmtList(ctx string) ([]ir.Stmt, error) {
	var stmts []ir.Stmt
	for {
		p.skipNewlines()
		if isTerminator(p.peek(), ctx) {
			return stmts, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

func (p *parser) stmt() (ir.Stmt, error) {
	label := ""
	if p.peek().Kind == TokInt && p.peek2().Kind == TokIdent {
		label = p.next().Text
	}
	s, err := p.bareStmt()
	if err != nil {
		return nil, err
	}
	if label != "" {
		s.SetLabel(label)
	}
	return s, nil
}

func (p *parser) bareStmt() (ir.Stmt, error) {
	t := p.peek()
	switch {
	case t.Kind == TokIdent && t.Text == "do":
		return p.doStmt()
	case t.Kind == TokIdent && t.Text == "if":
		return p.ifStmt()
	case t.Kind == TokIdent && t.Text == "goto":
		p.next()
		tgt, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		g := ir.NewGoto(t.Pos, tgt.Text)
		return g, p.endOfStmt()
	case t.Kind == TokIdent && t.Text == "continue":
		p.next()
		c := &ir.Continue{}
		c.Position = t.Pos
		return c, p.endOfStmt()
	case t.Kind == TokIdent || t.Kind == TokEllipsis:
		return p.assignStmt()
	default:
		return nil, p.errf("expected statement, found %s", t)
	}
}

func (p *parser) doStmt() (ir.Stmt, error) {
	pos := p.next().Pos // "do"
	v, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	var step ir.Expr
	if p.peek().Kind == TokComma {
		p.next()
		if step, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	body, err := p.stmtList("do")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("enddo"); err != nil {
		return nil, err
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	d := ir.NewDo(pos, v.Text, lo, hi, body...)
	d.Step = step
	return d, nil
}

func (p *parser) ifStmt() (ir.Stmt, error) {
	pos := p.next().Pos // "if"
	paren := p.peek().Kind == TokLParen
	if paren {
		p.next()
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if paren {
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	// logical IF: "if (c) goto 77"
	if p.atKeyword("goto") {
		p.next()
		tgt, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		return ir.NewIf(pos, cond, []ir.Stmt{ir.NewGoto(pos, tgt.Text)}, nil), nil
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	then, err := p.stmtList("then")
	if err != nil {
		return nil, err
	}
	var els []ir.Stmt
	if p.atKeyword("else") {
		p.next()
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		if els, err = p.stmtList("else"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("endif"); err != nil {
		return nil, err
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	return ir.NewIf(pos, cond, then, els), nil
}

func (p *parser) assignStmt() (ir.Stmt, error) {
	pos := p.peek().Pos
	lhs, err := p.primary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	switch lhs.(type) {
	case *ir.Ident, *ir.ArrayRef, *ir.Ellipsis:
	default:
		return nil, &Error{pos, "left-hand side must be a variable, array reference, or '...'"}
	}
	return ir.NewAssign(pos, lhs, rhs), p.endOfStmt()
}

// expr parses with precedence climbing: .or. < .and. < rel < add < mul.
func (p *parser) expr() (ir.Expr, error) { return p.binary(1) }

var binOps = map[string]int{
	".or.": 1, ".and.": 2,
	"<": 3, "<=": 3, ">": 3, ">=": 3, "==": 3, "!=": 3,
	"+": 4, "-": 4, "*": 5, "/": 5,
}

func (p *parser) binary(minPrec int) (ir.Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp {
			return lhs, nil
		}
		prec, ok := binOps[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ir.BinExpr{Position: t.Pos, Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() (ir.Expr, error) {
	t := p.peek()
	if t.Kind == TokOp && (t.Text == "-" || t.Text == ".not.") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ir.UnaryExpr{Position: t.Pos, Op: t.Text, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (ir.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokEllipsis:
		p.next()
		return &ir.Ellipsis{Position: t.Pos}, nil
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &Error{t.Pos, "integer literal out of range"}
		}
		return &ir.IntLit{Position: t.Pos, Value: v}, nil
	case TokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.next()
		if p.peek().Kind != TokLParen {
			return &ir.Ident{Position: t.Pos, Name: t.Text}, nil
		}
		p.next() // '('
		var subs []ir.Expr
		for {
			sub, err := p.subscript()
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &ir.ArrayRef{Position: t.Pos, Name: t.Text, Subs: subs}, nil
	default:
		return nil, p.errf("expected expression, found %s", t)
	}
}

// subscript parses one subscript, which may be a triplet lo:hi[:stride].
func (p *parser) subscript() (ir.Expr, error) {
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokColon {
		return lo, nil
	}
	pos := p.next().Pos
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	r := &ir.RangeExpr{Position: pos, Lo: lo, Hi: hi}
	if p.peek().Kind == TokColon {
		p.next()
		if r.Stride, err = p.expr(); err != nil {
			return nil, err
		}
	}
	return r, nil
}
