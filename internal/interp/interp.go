// Package interp executes mini-Fortran programs, including programs
// annotated with communication statements, and records a dynamic trace
// of the communication events: how many messages were issued, how many
// elements moved, and how far each Send ran ahead of its matching Recv
// (the latency-hiding distance the GIVE-N-TAKE split placement creates).
//
// The interpreter stands in for the distributed-memory testbeds of the
// paper era: the placement quality measures the paper argues about —
// message counts, vectorization, overlap — are all observable from this
// trace without modeling an actual network.
package interp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"givetake/internal/ir"
	"givetake/internal/netsim"
	"givetake/internal/obs"
)

// DefaultMaxSteps is the step budget applied when Config.MaxSteps is
// zero: 10 million statements.
const DefaultMaxSteps = 10_000_000

// ErrStepLimit is returned (wrapped) when execution exceeds the step
// budget; detect it with errors.Is(err, ErrStepLimit).
var ErrStepLimit = errors.New("interp: step budget exhausted")

// Config parameterizes one execution.
type Config struct {
	// N is the value of the symbolic bound n. Other preset scalars can
	// be given in Scalars.
	N       int64
	Scalars map[string]int64
	// Seed drives unknown branch conditions (like the paper's "test"):
	// they evaluate to a deterministic pseudo-random boolean stream.
	Seed int64
	// MaxSteps bounds execution (default DefaultMaxSteps).
	MaxSteps int64
	// Faults configures the simulated transport. The zero value (no
	// fault can fire) bypasses the transport entirely, so reliable
	// executions are byte-identical to the pre-fault interpreter.
	Faults netsim.FaultConfig
	// FaultSeed seeds fault injection independently of Seed, so turning
	// faults on never perturbs the branch-condition stream being
	// measured. Zero derives a seed from Seed.
	FaultSeed int64
	// Collector receives an "execute" span per Run; nil records nothing
	// and costs nothing (execution itself is never instrumented per
	// statement).
	Collector obs.Collector
	// SpanName overrides the span name, to distinguish placement
	// variants in one trace ("execute:gnt-split").
	SpanName string
}

// maxSteps is the effective step budget.
func (c Config) maxSteps() int64 {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	return DefaultMaxSteps
}

// CommEvent is one executed communication statement.
type CommEvent struct {
	Op    string // "READ" or "WRITE"
	Half  string // "Send", "Recv", or "" for atomic
	Step  int64  // statement counter at execution time
	Elems int64  // elements covered by the transferred sections
	Args  string // rendered argument list, for matching sends to recvs

	// Fault-runtime fields, populated on Recv and atomic events when
	// Config.Faults is enabled; all zero on a reliable run.
	Retries    int   // retransmissions this transfer needed
	Suppressed int   // duplicate deliveries discarded here (redelivery flag)
	Arrival    int64 // step the payload became available
	Stall      int64 // sender-side timeout+backoff stall, in steps
	Degraded   bool  // budget exhausted: re-issued atomically here (LAZY point)
}

// Trace is the result of one execution.
type Trace struct {
	Steps  int64
	Events []CommEvent
	// Faults summarizes injected faults and recovery; nil when the
	// execution ran over the reliable transport.
	Faults *netsim.FaultReport
}

// Messages counts executed communication statements (vectorized
// transfers count once), taking one half of split pairs.
func (t *Trace) Messages() int64 {
	var n int64
	for _, e := range t.Events {
		if e.Half == "Recv" {
			continue // count the Send half of a split pair
		}
		n++
	}
	return n
}

// Volume sums the elements moved (Send halves and atomics).
func (t *Trace) Volume() int64 {
	var v int64
	for _, e := range t.Events {
		if e.Half == "Recv" {
			continue
		}
		v += e.Elems
	}
	return v
}

// OverlapStats reports the matched Send/Recv pairs of the trace (see
// Pairs for the matching discipline) with their total and minimum step
// distances. When the trace has no split pairs at all, minDist is the
// sentinel -1, distinguishing "nothing was split" from a true minimum
// overlap of zero.
func (t *Trace) OverlapStats() (pairs int64, totalDist int64, minDist int64) {
	ps, _, _ := t.Pairs()
	minDist = -1
	for _, p := range ps {
		d := p.Recv.Step - p.Send.Step
		pairs++
		totalDist += d
		if minDist < 0 || d < minDist {
			minDist = d
		}
	}
	return
}

// UnmatchedSplit reports the number of Sends without a Recv and vice
// versa; both are zero for balanced placements (criterion C1).
func (t *Trace) UnmatchedSplit() (sends, recvs int64) {
	_, us, ur := t.Pairs()
	return int64(len(us)), int64(len(ur))
}

// Run executes the program and returns its trace.
func Run(prog *ir.Program, cfg Config) (*Trace, error) {
	return RunCtx(context.Background(), prog, cfg)
}

// RunCtx is Run with cooperative cancellation: execution polls ctx
// every pollSteps statements and aborts with ctx.Err() once it is
// canceled.
//
// On execution errors that truncate an otherwise healthy run — step
// budget exhaustion (errors.Is(err, ErrStepLimit)) and cancellation —
// RunCtx returns the partial trace accumulated so far alongside the
// error, with Steps and Faults finalized, so callers can still inspect
// how far the program got. Setup errors return a nil trace.
func RunCtx(ctx context.Context, prog *ir.Program, cfg Config) (*Trace, error) {
	cfg.MaxSteps = cfg.maxSteps()
	spanName := cfg.SpanName
	if spanName == "" {
		spanName = obs.SpanExecute
	}
	end := obs.Begin(cfg.Collector, spanName)
	defer func() { end() }()
	ex := &executor{
		cfg:     cfg,
		prog:    prog,
		scalars: map[string]int64{},
		arrays:  map[string][]int64{},
		dims:    map[string][]int64{},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		trace:   &Trace{},
		done:    ctx.Done(),
		ctx:     ctx,
	}
	if cfg.Faults.Enabled() {
		seed := cfg.FaultSeed
		if seed == 0 {
			// decorrelate from the branch-condition stream
			seed = cfg.Seed*0x9E3779B9 + 0x7F4A7C15
		}
		ex.net = netsim.New(cfg.Faults, seed)
	}
	ex.scalars["n"] = cfg.N
	for k, v := range cfg.Scalars {
		ex.scalars[k] = v
	}
	for _, d := range prog.Decls {
		total := int64(1)
		var dims []int64
		for _, dim := range d.Dims {
			size := ex.eval(dim)
			if size < 1 {
				size = 1
			}
			dims = append(dims, size)
			total *= size + 1 // 1-based per dimension
		}
		if len(dims) == 0 {
			dims, total = []int64{1}, 2
		}
		if total > 1<<24 {
			return nil, fmt.Errorf("interp: array %s too large (%d)", d.Name, total)
		}
		ex.arrays[d.Name] = make([]int64, total)
		ex.dims[d.Name] = dims
	}
	_, err := ex.exec(prog.Body)
	// finalize the trace even when execution was truncated: a partial
	// trace with Steps and Faults populated is still meaningful to
	// budget-limited callers (gnt -mode serve, gntbench)
	ex.trace.Steps = ex.steps
	if ex.net != nil {
		ex.net.Finish()
		rep := ex.net.Report()
		ex.trace.Faults = &rep
	}
	if err != nil {
		return ex.trace, err
	}
	// explicit close attaches the result sizes; the deferred end() is
	// then a no-op (it only fires on error paths)
	end("steps", ex.trace.Steps, "events", len(ex.trace.Events))
	return ex.trace, nil
}

// Stats aggregates the trace into an obs.RuntimeStats row named name
// (the placement variant). Cost-model rows are attached by the caller.
func (t *Trace) Stats(name string) obs.RuntimeStats {
	rs := obs.RuntimeStats{
		Name:       name,
		Steps:      t.Steps,
		Messages:   t.Messages(),
		Volume:     t.Volume(),
		OverlapMin: -1,
	}
	pairs, usends, urecvs := t.Pairs()
	rs.UnmatchedSends, rs.UnmatchedRecvs = int64(len(usends)), int64(len(urecvs))
	if len(pairs) > 0 {
		rs.OverlapHist = &obs.Histogram{}
	}
	for _, p := range pairs {
		d := p.Recv.Step - p.Send.Step
		rs.SplitPairs++
		rs.OverlapTotal += d
		if rs.OverlapMin < 0 || d < rs.OverlapMin {
			rs.OverlapMin = d
		}
		if d > rs.OverlapMax {
			rs.OverlapMax = d
		}
		rs.OverlapHist.Add(d)
	}
	for i := range t.Events {
		e := &t.Events[i]
		rs.Retries += int64(e.Retries)
		rs.Suppressed += int64(e.Suppressed)
		rs.StallSteps += e.Stall
		if e.Degraded {
			rs.Degraded++
		}
	}
	if t.Faults != nil {
		rs.Faults = t.Faults.Counters()
	}
	return rs
}

type executor struct {
	cfg     Config
	prog    *ir.Program
	scalars map[string]int64
	arrays  map[string][]int64
	dims    map[string][]int64 // per-array dimension extents (1-based)
	rng     *rand.Rand
	net     *netsim.Transport // nil: reliable transport
	trace   *Trace
	steps   int64
	done    <-chan struct{} // ctx.Done(), polled every pollSteps ticks
	ctx     context.Context
}

// pollSteps is how often (in statement ticks) the executor polls for
// cancellation: frequent enough that canceling a hot loop takes well
// under a millisecond, rare enough to stay off the tick fast path.
const pollSteps = 1024

// flatIndex linearizes a (1-based) multi-dimensional index; out-of-range
// or rank-mismatched accesses yield -1.
func (ex *executor) flatIndex(name string, subs []ir.Expr) int64 {
	dims, ok := ex.dims[name]
	if !ok || len(subs) != len(dims) {
		return -1
	}
	idx := int64(0)
	for d, sub := range subs {
		v := ex.eval(sub)
		if v < 0 || v > dims[d] {
			return -1
		}
		idx = idx*(dims[d]+1) + v
	}
	return idx
}

func (ex *executor) tick() error {
	ex.steps++
	if ex.steps > ex.cfg.MaxSteps {
		return fmt.Errorf("%w (MaxSteps=%d)", ErrStepLimit, ex.cfg.MaxSteps)
	}
	if ex.steps%pollSteps == 0 && ex.done != nil {
		select {
		case <-ex.done:
			return ex.ctx.Err()
		default:
		}
	}
	return nil
}

// exec runs a statement list; a non-empty label return means a GOTO to
// that label is propagating outward until some list contains it.
func (ex *executor) exec(stmts []ir.Stmt) (goLabel string, err error) {
	for i := 0; i < len(stmts); i++ {
		s := stmts[i]
		label, err := ex.stmt(s)
		if err != nil {
			return "", err
		}
		if label == "" {
			continue
		}
		// find the label among the following statements at this level
		found := false
		for j := i + 1; j < len(stmts); j++ {
			if stmts[j].Label() == label {
				i = j - 1
				found = true
				break
			}
		}
		if !found {
			// the frontend only admits forward gotos, so an unfound label
			// lives further out; propagate
			return label, nil
		}
	}
	return "", nil
}

func (ex *executor) stmt(s ir.Stmt) (goLabel string, err error) {
	if err := ex.tick(); err != nil {
		return "", err
	}
	switch s := s.(type) {
	case *ir.Assign:
		v := ex.eval(s.RHS)
		switch lhs := s.LHS.(type) {
		case *ir.Ident:
			ex.scalars[lhs.Name] = v
		case *ir.ArrayRef:
			if arr, ok := ex.arrays[lhs.Name]; ok {
				if idx := ex.flatIndex(lhs.Name, lhs.Subs); idx >= 0 && idx < int64(len(arr)) {
					arr[idx] = v
				}
			}
		}
		return "", nil
	case *ir.Continue:
		return "", nil
	case *ir.Goto:
		return s.Target, nil
	case *ir.Do:
		lo, hi := ex.eval(s.Lo), ex.eval(s.Hi)
		step := int64(1)
		if s.Step != nil {
			if step = ex.eval(s.Step); step == 0 {
				step = 1
			}
		}
		for v := lo; (step > 0 && v <= hi) || (step < 0 && v >= hi); v += step {
			ex.scalars[s.Var] = v
			label, err := ex.exec(s.Body)
			if err != nil {
				return "", err
			}
			if label != "" {
				return label, nil // jump out of the loop
			}
			if err := ex.tick(); err != nil { // loop-control step
				return "", err
			}
		}
		return "", nil
	case *ir.If:
		if ex.truth(s.Cond) {
			return ex.exec(s.Then)
		}
		return ex.exec(s.Else)
	case *ir.Comm:
		// Each section of a (possibly vectorized) communication statement
		// is one message: the combined READ_Recv{x(...), y(...)} of
		// Figure 14 completes two transfers whose sends were issued at
		// different points, so sections are traced individually to pair
		// sends with receives.
		for _, a := range s.Args {
			ev := CommEvent{
				Op: s.Op, Half: s.Half, Step: ex.steps,
				Elems: ex.sectionElems(a), Args: ir.ExprString(a),
			}
			if ex.net != nil {
				// route the transfer through the simulated transport;
				// delivery outcomes land on the completing (Recv or
				// atomic) event, where the receiver observes them
				switch s.Half {
				case "Send":
					ex.net.Send(ev.Op, ev.Args, ev.Elems, ev.Step)
				case "Recv":
					ev.applyDelivery(ex.net.Recv(ev.Op, ev.Args, ev.Elems, ev.Step))
				default:
					ev.applyDelivery(ex.net.Atomic(ev.Op, ev.Args, ev.Elems, ev.Step))
				}
			}
			ex.trace.Events = append(ex.trace.Events, ev)
		}
		return "", nil
	default:
		return "", fmt.Errorf("interp: cannot execute %T", s)
	}
}

// applyDelivery copies a transport outcome onto the completing event.
func (e *CommEvent) applyDelivery(d netsim.Delivery) {
	e.Retries = d.Retries
	e.Suppressed = d.Suppressed
	e.Arrival = d.Arrival
	e.Stall = d.Stall
	e.Degraded = d.Degraded
}

// sectionElems counts the elements of a communicated section: a triplet
// lo:hi:st covers (hi-lo)/st + 1 elements per dimension, dimensions
// multiply, and a plain element reference covers one. Indirect sections
// a(1:n) count the subscript range.
func (ex *executor) sectionElems(e ir.Expr) int64 {
	if ref, ok := e.(*ir.ArrayRef); ok && len(ref.Subs) >= 1 {
		total := int64(1)
		for _, sub := range ref.Subs {
			total *= ex.rangeElems(sub)
		}
		return total
	}
	return 1
}

func (ex *executor) rangeElems(e ir.Expr) int64 {
	switch e := e.(type) {
	case *ir.RangeExpr:
		lo, hi := ex.eval(e.Lo), ex.eval(e.Hi)
		st := int64(1)
		if e.Stride != nil {
			if st = ex.eval(e.Stride); st <= 0 {
				st = 1
			}
		}
		if hi < lo {
			return 0
		}
		return (hi-lo)/st + 1
	case *ir.ArrayRef:
		if len(e.Subs) == 1 {
			return ex.rangeElems(e.Subs[0])
		}
		return 1
	default:
		return 1
	}
}

// truth evaluates a condition; unknown scalars draw from the seeded
// stream so "if test then" branches vary per execution but reproducibly.
func (ex *executor) truth(e ir.Expr) bool {
	switch e := e.(type) {
	case *ir.BinExpr:
		x, y := ex.eval(e.X), ex.eval(e.Y)
		switch e.Op {
		case "<":
			return x < y
		case "<=":
			return x <= y
		case ">":
			return x > y
		case ">=":
			return x >= y
		case "==":
			return x == y
		case "!=":
			return x != y
		case ".and.":
			return ex.truth(e.X) && ex.truth(e.Y)
		case ".or.":
			return ex.truth(e.X) || ex.truth(e.Y)
		}
		return x != 0
	case *ir.UnaryExpr:
		if e.Op == ".not." {
			return !ex.truth(e.X)
		}
		return ex.eval(e) != 0
	case *ir.Ident:
		if v, ok := ex.scalars[e.Name]; ok {
			return v != 0
		}
		return ex.rng.Intn(2) == 0
	case *ir.ArrayRef:
		if _, known := ex.arrays[e.Name]; known {
			return ex.eval(e) != 0
		}
		return ex.rng.Intn(2) == 0
	default:
		return ex.eval(e) != 0
	}
}

func (ex *executor) eval(e ir.Expr) int64 {
	switch e := e.(type) {
	case nil:
		return 0
	case *ir.IntLit:
		return e.Value
	case *ir.Ellipsis:
		return 0
	case *ir.Ident:
		return ex.scalars[e.Name] // zero for unknowns
	case *ir.UnaryExpr:
		if e.Op == "-" {
			return -ex.eval(e.X)
		}
		if ex.truth(e) {
			return 1
		}
		return 0
	case *ir.BinExpr:
		switch e.Op {
		case "+":
			return ex.eval(e.X) + ex.eval(e.Y)
		case "-":
			return ex.eval(e.X) - ex.eval(e.Y)
		case "*":
			return ex.eval(e.X) * ex.eval(e.Y)
		case "/":
			if d := ex.eval(e.Y); d != 0 {
				return ex.eval(e.X) / d
			}
			return 0
		default:
			if ex.truth(e) {
				return 1
			}
			return 0
		}
	case *ir.ArrayRef:
		if arr, ok := ex.arrays[e.Name]; ok {
			if idx := ex.flatIndex(e.Name, e.Subs); idx >= 0 && idx < int64(len(arr)) {
				return arr[idx]
			}
		}
		return 0
	case *ir.RangeExpr:
		return ex.eval(e.Lo)
	default:
		return 0
	}
}
