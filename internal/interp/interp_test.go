package interp

import (
	"context"
	"errors"
	"testing"
	"time"

	"givetake/internal/frontend"
	"givetake/internal/ir"
)

func run(t *testing.T, src string, cfg Config) *Trace {
	t.Helper()
	prog, err := frontend.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestArithmeticAndLoops(t *testing.T) {
	prog, err := frontend.Parse(`
real a(100)
s = 0
do i = 1, 10
    a(i) = i * 2
    s = s + a(i)
enddo
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := &executor{cfg: Config{MaxSteps: 10000}, prog: prog,
		scalars: map[string]int64{}, arrays: map[string][]int64{"a": make([]int64, 101)},
		dims:  map[string][]int64{"a": {100}},
		trace: &Trace{}}
	if _, err := ex.exec(prog.Body); err != nil {
		t.Fatal(err)
	}
	if got := ex.scalars["s"]; got != 110 {
		t.Fatalf("sum = %d, want 110", got)
	}
	if got := ex.arrays["a"][7]; got != 14 {
		t.Fatalf("a(7) = %d, want 14", got)
	}
}

func TestZeroTripLoop(t *testing.T) {
	tr := run(t, "s = 0\ndo i = 5, 1\n s = s + 1\nenddo", Config{N: 10})
	// body never executes: 2 statements + no loop iterations... the DO
	// header itself ticks once via the statement tick
	if tr.Steps > 3 {
		t.Fatalf("zero-trip loop executed work: %d steps", tr.Steps)
	}
}

func TestGotoOutOfLoop(t *testing.T) {
	prog, err := frontend.Parse(`
s = 0
do i = 1, 100
    s = s + 1
    if (i >= 3) goto 9
enddo
9 t = 1
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := &executor{cfg: Config{MaxSteps: 10000}, prog: prog,
		scalars: map[string]int64{}, arrays: map[string][]int64{},
		dims: map[string][]int64{}, trace: &Trace{}}
	if _, err := ex.exec(prog.Body); err != nil {
		t.Fatal(err)
	}
	if ex.scalars["s"] != 3 || ex.scalars["t"] != 1 {
		t.Fatalf("s=%d t=%d, want 3, 1", ex.scalars["s"], ex.scalars["t"])
	}
}

func TestGotoWithinList(t *testing.T) {
	prog, err := frontend.Parse(`
s = 1
goto 5
s = 99
5 t = s
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := &executor{cfg: Config{MaxSteps: 100}, prog: prog,
		scalars: map[string]int64{}, arrays: map[string][]int64{},
		dims: map[string][]int64{}, trace: &Trace{}}
	if _, err := ex.exec(prog.Body); err != nil {
		t.Fatal(err)
	}
	if ex.scalars["t"] != 1 {
		t.Fatalf("t = %d, want 1 (skipping s = 99)", ex.scalars["t"])
	}
}

func TestCommEventCounting(t *testing.T) {
	src := `
distributed x(100)
do k = 1, n
    READ_Send unsupported
enddo
`
	_ = src // Comm statements cannot be parsed; build them directly:
	prog := ir.NewProgram("t")
	prog.Declare(&ir.ArrayDecl{Name: "x", Dims: []ir.Expr{&ir.IntLit{Value: 100}}, Dist: ir.Block})
	section := &ir.ArrayRef{Name: "x", Subs: []ir.Expr{&ir.RangeExpr{
		Lo: &ir.IntLit{Value: 1}, Hi: &ir.Ident{Name: "n"}}}}
	send := &ir.Comm{Op: "READ", Half: "Send", Args: []ir.Expr{section}}
	recv := &ir.Comm{Op: "READ", Half: "Recv", Args: []ir.Expr{ir.CloneExpr(section)}}
	work := ir.NewDo(ir.Pos{}, "i", &ir.IntLit{Value: 1}, &ir.Ident{Name: "n"},
		ir.NewAssign(ir.Pos{}, &ir.Ident{Name: "t"}, &ir.Ident{Name: "i"}))
	prog.Body = []ir.Stmt{send, work, recv}

	tr, err := Run(prog, Config{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Messages() != 1 {
		t.Fatalf("messages = %d, want 1", tr.Messages())
	}
	if tr.Volume() != 8 {
		t.Fatalf("volume = %d, want 8 (x(1:n) with n=8)", tr.Volume())
	}
	pairs, total, minDist := tr.OverlapStats()
	if pairs != 1 {
		t.Fatalf("pairs = %d, want 1", pairs)
	}
	if minDist <= 0 || total <= 0 {
		t.Fatalf("send should run ahead of recv: total=%d min=%d", total, minDist)
	}
	if s, r := tr.UnmatchedSplit(); s != 0 || r != 0 {
		t.Fatalf("unmatched: sends=%d recvs=%d", s, r)
	}
}

func TestSeededConditionsDeterministic(t *testing.T) {
	src := `
s = 0
do i = 1, 20
    if test then
        s = s + 1
    endif
enddo
`
	a := run(t, src, Config{N: 5, Seed: 7})
	b := run(t, src, Config{N: 5, Seed: 7})
	if a.Steps != b.Steps {
		t.Fatal("same seed must give identical executions")
	}
	c := run(t, src, Config{N: 5, Seed: 8})
	_ = c // different seed may differ; only determinism is required
}

func TestStepBudget(t *testing.T) {
	prog, err := frontend.Parse("do i = 1, 1000000\n s = s + 1\nenddo")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog, Config{N: 1, MaxSteps: 100})
	if err == nil {
		t.Fatal("expected step-budget error")
	}
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("step-budget error should wrap ErrStepLimit, got %v", err)
	}
}

func TestStepBudgetPartialTrace(t *testing.T) {
	// Comm statements cannot be parsed; build the looped atomic READ
	// directly so the truncated trace carries communication events.
	prog := ir.NewProgram("t")
	prog.Declare(&ir.ArrayDecl{Name: "x", Dims: []ir.Expr{&ir.IntLit{Value: 10}}, Dist: ir.Block})
	read := &ir.Comm{Op: "READ", Args: []ir.Expr{
		&ir.ArrayRef{Name: "x", Subs: []ir.Expr{&ir.IntLit{Value: 1}}}}}
	body := ir.NewAssign(ir.Pos{}, &ir.Ident{Name: "s"},
		&ir.BinExpr{Op: "+", X: &ir.Ident{Name: "s"}, Y: &ir.IntLit{Value: 1}})
	prog.Body = []ir.Stmt{ir.NewDo(ir.Pos{}, "i",
		&ir.IntLit{Value: 1}, &ir.IntLit{Value: 1000000}, read, body)}

	tr, err := Run(prog, Config{N: 1, MaxSteps: 100})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
	if tr == nil {
		t.Fatal("truncated run must still return the partial trace")
	}
	if tr.Steps != 101 {
		t.Fatalf("partial trace Steps = %d, want 101 (budget+1)", tr.Steps)
	}
	if len(tr.Events) == 0 {
		t.Fatal("partial trace should carry the events executed before truncation")
	}
	// the aggregate view must work on a truncated trace too
	rs := tr.Stats("truncated")
	if rs.Steps != tr.Steps || rs.Messages == 0 || rs.Volume == 0 {
		t.Fatalf("Stats on partial trace = %+v, want populated Steps/Messages/Volume", rs)
	}
}

func TestRunCtxCanceled(t *testing.T) {
	prog, err := frontend.Parse("do i = 1, 1000000\n s = s + 1\nenddo")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	tr, err := RunCtx(ctx, prog, Config{N: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if tr == nil {
		t.Fatal("canceled run must still return the partial trace")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("cancellation took %v, want < 100ms", d)
	}
}

func TestMaxStepsDefault(t *testing.T) {
	if got := (Config{}).maxSteps(); got != DefaultMaxSteps {
		t.Fatalf("default MaxSteps = %d, want %d", got, DefaultMaxSteps)
	}
	if got := (Config{MaxSteps: 42}).maxSteps(); got != 42 {
		t.Fatalf("explicit MaxSteps = %d, want 42", got)
	}
	if DefaultMaxSteps != 10_000_000 {
		t.Fatalf("documented default is 10 million, const says %d", DefaultMaxSteps)
	}
}

func TestDivisionByZeroSafe(t *testing.T) {
	tr := run(t, "s = 10 / z", Config{})
	if tr.Steps != 1 {
		t.Fatalf("steps = %d", tr.Steps)
	}
}

func TestMultiDimArrays(t *testing.T) {
	prog, err := frontend.Parse(`
real m(10, 20)
m(3, 4) = 7
s = m(3, 4) + m(1, 1)
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, Config{}); err != nil {
		t.Fatal(err)
	}
	// verify through a fresh executor so scalars are observable
	ex := &executor{cfg: Config{MaxSteps: 100}, prog: prog,
		scalars: map[string]int64{}, arrays: map[string][]int64{"m": make([]int64, 11*21)},
		dims: map[string][]int64{"m": {10, 20}}, trace: &Trace{}}
	if _, err := ex.exec(prog.Body); err != nil {
		t.Fatal(err)
	}
	if got := ex.scalars["s"]; got != 7 {
		t.Fatalf("s = %d, want 7", got)
	}
	// distinct cells do not alias
	if ex.arrays["m"][0] != 0 {
		t.Fatal("cell (0,0) clobbered")
	}
}

func TestMultiDimSectionElems(t *testing.T) {
	ex := &executor{scalars: map[string]int64{"n": 4}, arrays: map[string][]int64{},
		dims: map[string][]int64{}, trace: &Trace{}, cfg: Config{MaxSteps: 100}}
	sec := &ir.ArrayRef{Name: "u", Subs: []ir.Expr{
		&ir.RangeExpr{Lo: &ir.IntLit{Value: 1}, Hi: &ir.Ident{Name: "n"}},
		&ir.RangeExpr{Lo: &ir.IntLit{Value: 2}, Hi: &ir.IntLit{Value: 4}},
	}}
	if got := ex.sectionElems(sec); got != 4*3 {
		t.Fatalf("2-D section elems = %d, want 12", got)
	}
}

func TestNegativeStepLoop(t *testing.T) {
	prog, err := frontend.Parse("s = 0\ndo i = 10, 1, -2\n s = s + i\nenddo")
	if err != nil {
		t.Fatal(err)
	}
	ex := &executor{cfg: Config{MaxSteps: 1000}, prog: prog,
		scalars: map[string]int64{}, arrays: map[string][]int64{},
		dims: map[string][]int64{}, trace: &Trace{}}
	if _, err := ex.exec(prog.Body); err != nil {
		t.Fatal(err)
	}
	if got := ex.scalars["s"]; got != 10+8+6+4+2 {
		t.Fatalf("s = %d, want 30", got)
	}
}

func TestTruthOperators(t *testing.T) {
	src := `
s = 0
if (1 < 2 .and. 3 >= 3) then
    s = s + 1
endif
if (1 == 2 .or. 4 != 5) then
    s = s + 10
endif
if (.not. (2 > 3)) then
    s = s + 100
endif
if (2 <= 1) then
    s = s + 1000
endif
`
	prog, err := frontend.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ex := &executor{cfg: Config{MaxSteps: 1000}, prog: prog,
		scalars: map[string]int64{}, arrays: map[string][]int64{},
		dims: map[string][]int64{}, trace: &Trace{}}
	if _, err := ex.exec(prog.Body); err != nil {
		t.Fatal(err)
	}
	if got := ex.scalars["s"]; got != 111 {
		t.Fatalf("s = %d, want 111", got)
	}
}

func TestOverlapStatsUnmatchedRecv(t *testing.T) {
	tr := &Trace{Events: []CommEvent{
		{Op: "READ", Half: "Recv", Step: 5, Elems: 1, Args: "x(1)"},
	}}
	pairs, total, minDist := tr.OverlapStats()
	if pairs != 0 || total != 0 || minDist != -1 {
		t.Fatalf("unmatched recv should pair nothing (minDist sentinel -1): %d %d %d", pairs, total, minDist)
	}
	if s, r := tr.UnmatchedSplit(); s != 0 || r != 1 {
		t.Fatalf("unmatched = %d sends %d recvs, want 0/1", s, r)
	}
}

func TestVolumeCountsAtomics(t *testing.T) {
	tr := &Trace{Events: []CommEvent{
		{Op: "READ", Half: "", Step: 1, Elems: 7},
		{Op: "WRITE", Half: "Send", Step: 2, Elems: 3},
		{Op: "WRITE", Half: "Recv", Step: 3, Elems: 3},
	}}
	if tr.Messages() != 2 {
		t.Fatalf("messages = %d, want 2 (atomic + send)", tr.Messages())
	}
	if tr.Volume() != 10 {
		t.Fatalf("volume = %d, want 10", tr.Volume())
	}
}

func TestOutOfBoundsAccessesAreSafe(t *testing.T) {
	// out-of-range subscripts read as zero and write nowhere — the
	// interpreter is a measurement harness, not a debugger
	tr := run(t, "real a(5)\na(99) = 7\ns = a(99) + a(0-3)", Config{})
	if tr.Steps != 2 {
		t.Fatalf("steps = %d", tr.Steps)
	}
}
