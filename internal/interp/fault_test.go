package interp_test

// Fault-runtime tests: determinism of seeded fault injection, the
// no-fault regression guard, and the acceptance sweep over every
// example program under a lossy profile.

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"testing"

	"givetake/internal/comm"
	"givetake/internal/frontend"
	"givetake/internal/interp"
	"givetake/internal/ir"
	"givetake/internal/netsim"
)

const fig1Src = `
distributed x(1000)
real y(1000), z(1000), a(1000)

do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
`

// corpus returns every mini-Fortran program the repo ships: the
// testdata figures and kernels, plus the programs embedded in the
// examples (extracted from their raw string literals).
func corpus(t *testing.T) map[string]*ir.Program {
	t.Helper()
	progs := map[string]*ir.Program{}
	files, err := filepath.Glob("../../testdata/*.f")
	if err != nil {
		t.Fatal(err)
	}
	kernels, err := filepath.Glob("../../testdata/kernels/*.f")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range append(files, kernels...) {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := frontend.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		progs[filepath.Base(f)] = p
	}
	// examples embed their programs as backtick literals
	mains, err := filepath.Glob("../../examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	lit := regexp.MustCompile("(?s)`[^`]+`")
	for _, f := range mains {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range lit.FindAllString(string(src), -1) {
			body := m[1 : len(m)-1]
			p, err := frontend.Parse(body)
			if err != nil || len(p.Body) == 0 {
				continue // not a program literal
			}
			name := filepath.Base(filepath.Dir(f))
			if i > 0 {
				name = name + string(rune('a'+i))
			}
			progs[name] = p
		}
	}
	if len(progs) < 8 {
		t.Fatalf("corpus too small (%d programs) — extraction broke?", len(progs))
	}
	return progs
}

// annotations returns the three placements of a program, skipping
// programs the comm analysis rejects (none today, but the corpus walks
// everything it finds).
func annotations(t *testing.T, name string, p *ir.Program) map[string]*ir.Program {
	t.Helper()
	a, err := comm.Analyze(p)
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	return map[string]*ir.Program{
		"naive":  comm.NaiveAnnotate(p, comm.Options{Reads: true, Writes: true}),
		"atomic": a.Annotate(comm.Options{Reads: true, Writes: true}),
		"split":  a.Annotate(comm.DefaultOptions),
	}
}

func mustRun(t *testing.T, name string, p *ir.Program, cfg interp.Config) *interp.Trace {
	t.Helper()
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 2_000_000
	}
	tr, err := interp.Run(p, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return tr
}

// TestFaultDeterminism: the same (Seed, FaultSeed, FaultConfig) yields
// identical traces and FaultReports across runs — the property the
// whole measurement methodology rests on.
func TestFaultDeterminism(t *testing.T) {
	prog, err := frontend.Parse(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range annotations(t, "fig1", prog) {
		for seed := int64(1); seed <= 10; seed++ {
			cfg := interp.Config{N: 40, Seed: 3, Faults: netsim.Default, FaultSeed: seed}
			a := mustRun(t, name, p, cfg)
			b := mustRun(t, name, p, cfg)
			if !reflect.DeepEqual(a.Events, b.Events) || a.Steps != b.Steps {
				t.Fatalf("%s seed %d: traces differ", name, seed)
			}
			if a.Faults == nil || b.Faults == nil || *a.Faults != *b.Faults {
				t.Fatalf("%s seed %d: fault reports differ: %v vs %v", name, seed, a.Faults, b.Faults)
			}
		}
	}
}

// TestFaultsDoNotPerturbExecution: fault injection annotates the trace
// but never changes what executed — steps and the (Op, Half, Step,
// Elems, Args) sequence are identical to the reliable run, because the
// transport draws from its own seeded stream.
func TestFaultsDoNotPerturbExecution(t *testing.T) {
	for name, prog := range corpus(t) {
		for vname, p := range annotations(t, name, prog) {
			plain := mustRun(t, name, p, interp.Config{N: 24, Seed: 5})
			faulty := mustRun(t, name, p, interp.Config{N: 24, Seed: 5, Faults: netsim.Default})
			if plain.Steps != faulty.Steps {
				t.Fatalf("%s/%s: faults changed step count %d → %d", name, vname, plain.Steps, faulty.Steps)
			}
			if len(plain.Events) != len(faulty.Events) {
				t.Fatalf("%s/%s: faults changed event count", name, vname)
			}
			for i := range plain.Events {
				pe, fe := plain.Events[i], faulty.Events[i]
				if pe.Op != fe.Op || pe.Half != fe.Half || pe.Step != fe.Step ||
					pe.Elems != fe.Elems || pe.Args != fe.Args {
					t.Fatalf("%s/%s: event %d diverged: %+v vs %+v", name, vname, i, pe, fe)
				}
			}
		}
	}
}

// TestZeroProbabilityMatchesReliable: a FaultConfig whose probabilities
// are all zero bypasses the transport and reproduces today's traces
// exactly, for every program in the corpus — the no-fault regression
// guard.
func TestZeroProbabilityMatchesReliable(t *testing.T) {
	zero := netsim.FaultConfig{Timeout: 64, MaxRetries: 3} // protocol set, no fault can fire
	for name, prog := range corpus(t) {
		for vname, p := range annotations(t, name, prog) {
			plain := mustRun(t, name, p, interp.Config{N: 24, Seed: 5})
			zeroed := mustRun(t, name, p, interp.Config{N: 24, Seed: 5, Faults: zero})
			if !reflect.DeepEqual(plain, zeroed) {
				t.Fatalf("%s/%s: drop-probability 0 must reproduce the reliable trace byte for byte", name, vname)
			}
			if zeroed.Faults != nil {
				t.Fatalf("%s/%s: reliable run must not carry a fault report", name, vname)
			}
		}
	}
}

// TestExamplesSurviveFaultProfile is the acceptance sweep: under
// drop=0.2, dup=0.1 every program completes with zero permanently
// unmatched Send/Recv halves and a FaultReport that accounts for every
// injected fault.
func TestExamplesSurviveFaultProfile(t *testing.T) {
	profile := netsim.FaultConfig{Drop: 0.2, Dup: 0.1, Delay: 0.1, Reorder: 0.05}
	for name, prog := range corpus(t) {
		for vname, p := range annotations(t, name, prog) {
			for seed := int64(1); seed <= 5; seed++ {
				tr := mustRun(t, name, p, interp.Config{N: 24, Seed: 5, Faults: profile, FaultSeed: seed})
				if us, ur := tr.UnmatchedSplit(); us != 0 || ur != 0 {
					t.Fatalf("%s/%s seed %d: unmatched halves %d/%d", name, vname, seed, us, ur)
				}
				rep := tr.Faults
				if rep == nil {
					t.Fatalf("%s/%s seed %d: missing fault report", name, vname, seed)
				}
				if rep.UnmatchedSends != 0 || rep.UnmatchedRecvs != 0 {
					t.Fatalf("%s/%s seed %d: transport saw unmatched halves: %s", name, vname, seed, rep)
				}
				if !rep.Accounted() {
					t.Fatalf("%s/%s seed %d: fault report does not balance: %s", name, vname, seed, rep)
				}
			}
		}
	}
}

// TestDegradationRecordedNotFailed: with certain loss the split pair
// exhausts its budget, degrades to an atomic re-issue at the Recv
// point, and the run still completes balanced.
func TestDegradationRecordedNotFailed(t *testing.T) {
	prog, err := frontend.Parse(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	split := annotations(t, "fig1", prog)["split"]
	tr := mustRun(t, "fig1", split, interp.Config{
		N: 40, Seed: 3,
		Faults: netsim.FaultConfig{Drop: 1, MaxRetries: 2},
	})
	if tr.Faults.Degraded == 0 {
		t.Fatalf("certain loss must degrade the split transfer: %s", tr.Faults)
	}
	degraded := false
	for _, e := range tr.Events {
		if e.Half == "Recv" && e.Degraded {
			degraded = true
			if e.Retries != 2 {
				t.Fatalf("degraded recv should carry the burned budget, got %d retries", e.Retries)
			}
		}
	}
	if !degraded {
		t.Fatal("no Recv event flagged as degraded")
	}
	if us, ur := tr.UnmatchedSplit(); us != 0 || ur != 0 {
		t.Fatalf("degraded run must stay balanced: %d/%d", us, ur)
	}
	if !tr.Faults.Accounted() {
		t.Fatalf("degraded run must account: %s", tr.Faults)
	}
}
