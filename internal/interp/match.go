package interp

// SplitPair is one matched Send/Recv pair of a trace.
type SplitPair struct {
	Send, Recv *CommEvent
}

// Pairs matches each Recv with the most recent unmatched Send of the
// same operation and argument list — the LIFO discipline under which a
// re-sent section pairs with its nearest receive. It is the single
// matcher shared by OverlapStats, UnmatchedSplit, and the machine cost
// model, so all three agree on which halves form a pair. Atomic events
// (Half == "") participate in no pair. The returned pointers alias
// t.Events.
func (t *Trace) Pairs() (pairs []SplitPair, unmatchedSends, unmatchedRecvs []*CommEvent) {
	type key struct{ op, args string }
	pending := map[key][]*CommEvent{}
	for i := range t.Events {
		e := &t.Events[i]
		k := key{e.Op, e.Args}
		switch e.Half {
		case "Send":
			pending[k] = append(pending[k], e)
		case "Recv":
			q := pending[k]
			if len(q) == 0 {
				unmatchedRecvs = append(unmatchedRecvs, e)
				continue
			}
			pairs = append(pairs, SplitPair{Send: q[len(q)-1], Recv: e})
			pending[k] = q[:len(q)-1]
		}
	}
	// leftover sends, reported in trace order
	for i := range t.Events {
		e := &t.Events[i]
		if e.Half == "Send" && contains(pending[key{e.Op, e.Args}], e) {
			unmatchedSends = append(unmatchedSends, e)
		}
	}
	return pairs, unmatchedSends, unmatchedRecvs
}

func contains(q []*CommEvent, e *CommEvent) bool {
	for _, x := range q {
		if x == e {
			return true
		}
	}
	return false
}
