package comm

import (
	"testing"
	"testing/quick"

	"givetake/internal/core"
	"givetake/internal/interp"
	"givetake/internal/progen"
)

// Property tests over randomly generated distributed-array programs: the
// full pipeline (universe construction, both placement problems, source
// annotation, execution) must preserve the paper's correctness criteria
// both statically (path oracle) and dynamically (trace balance).

func TestPropertyCommPlacements(t *testing.T) {
	f := func(seed int64) bool {
		prog := progen.Generate(seed, progen.Config{Stmts: 25, MaxDepth: 3, Arrays: true})
		a, err := Analyze(prog)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if vs := core.Verify(a.Read, a.ReadInit, core.VerifyConfig{CheckSafety: true, MaxPaths: 800}); len(vs) > 0 {
			t.Logf("seed %d READ: %v", seed, vs[0])
			return false
		}
		for _, v := range core.Verify(a.Write, a.WriteInit, core.VerifyConfig{MaxPaths: 800}) {
			if v.Criterion != "O1" {
				t.Logf("seed %d WRITE: %v", seed, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDynamicBalance executes annotated programs and checks that
// every Send has exactly one matching Recv at runtime — criterion C1
// observed on real traces rather than enumerated paths.
func TestPropertyDynamicBalance(t *testing.T) {
	f := func(seed int64) bool {
		prog := progen.Generate(seed, progen.Config{Stmts: 20, MaxDepth: 3, Arrays: true})
		a, err := Analyze(prog)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		annotated := a.Annotate(DefaultOptions)
		for _, n := range []int64{0, 1, 7} {
			for _, condSeed := range []int64{1, 2} {
				tr, err := interp.Run(annotated, interp.Config{N: n, Seed: condSeed, MaxSteps: 500000})
				if err != nil {
					t.Logf("seed %d run: %v", seed, err)
					return false
				}
				if s, r := tr.UnmatchedSplit(); s != 0 || r != 0 {
					t.Logf("seed %d (N=%d cond=%d): unmatched sends=%d recvs=%d\n%s",
						seed, n, condSeed, s, r, a.AnnotatedSource(DefaultOptions))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyVectorizationWins: on every generated program, GIVE-N-TAKE
// never issues more messages than the naive placement, and the annotated
// program does the same compute.
func TestPropertyVectorizationWins(t *testing.T) {
	f := func(seed int64) bool {
		prog := progen.Generate(seed, progen.Config{Stmts: 20, MaxDepth: 3, Arrays: true})
		a, err := Analyze(prog)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		cfg := interp.Config{N: 9, Seed: 4, MaxSteps: 500000}
		naive, err := interp.Run(NaiveAnnotate(prog, Options{Reads: true, Writes: true}), cfg)
		if err != nil {
			return false
		}
		gnt, err := interp.Run(a.Annotate(Options{Reads: true, Writes: true}), cfg)
		if err != nil {
			return false
		}
		plain, err := interp.Run(prog, cfg)
		if err != nil {
			return false
		}
		if gnt.Messages() > naive.Messages() {
			t.Logf("seed %d: gnt %d msgs > naive %d", seed, gnt.Messages(), naive.Messages())
			return false
		}
		// annotation adds communication, never compute: step counts net of
		// comm statements agree
		if plain.Steps != gnt.Steps-int64(len(commEvents(gnt))) {
			t.Logf("seed %d: compute steps diverged: %d vs %d-%d",
				seed, plain.Steps, gnt.Steps, len(commEvents(gnt)))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// commEvents returns the distinct executed communication statements: the
// interpreter traces one event per section, but each comm statement
// costs one step, so count by (step, half, op).
func commEvents(tr *interp.Trace) []interp.CommEvent {
	type key struct {
		step int64
		op   string
		half string
	}
	seen := map[key]bool{}
	var out []interp.CommEvent
	for _, e := range tr.Events {
		k := key{e.Step, e.Op, e.Half}
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}
