package comm

import (
	"context"

	"givetake/internal/check"
	"givetake/internal/ir"
	"givetake/internal/obs"
)

// Problems exposes the solved READ/WRITE placements as independent
// verification problems for internal/check. The WRITE problem carries
// the reversed graph it was solved on, so the verifier walks the AFTER
// orientation without special cases.
func (a *Analysis) Problems() []*check.Problem {
	names := a.ItemNames()
	var out []*check.Problem
	if a.Read != nil {
		out = append(out, &check.Problem{
			Name:     "READ",
			Graph:    a.Graph,
			Universe: a.Universe.Size(),
			Init:     a.ReadInit,
			Sol:      a.Read,
			ItemName: names,
		})
	}
	if a.Write != nil {
		out = append(out, &check.Problem{
			Name:     "WRITE",
			Graph:    a.RevGraph,
			Universe: a.Universe.Size(),
			Init:     a.WriteInit,
			Sol:      a.Write,
			ItemName: names,
		})
	}
	return out
}

// CheckPlacement statically re-verifies both placement problems
// (C1–C3, O1 over all paths; see internal/check) and runs the
// communication linter, without trusting the solver's equations. The
// work is recorded as a "check" span on col; a nil collector is fine.
func (a *Analysis) CheckPlacement(col obs.Collector) *check.Result {
	res, _ := a.CheckPlacementCtx(context.Background(), col)
	return res
}

// CheckPlacementCtx is CheckPlacement with cooperative cancellation:
// the verifier's fixed point polls ctx and the whole check aborts with
// ctx.Err() once it is canceled.
func (a *Analysis) CheckPlacementCtx(ctx context.Context, col obs.Collector) (*check.Result, error) {
	end := obs.Begin(col, obs.SpanCheck)
	probs := a.Problems()
	res, err := check.VerifyAllCtx(ctx, probs...)
	if err != nil {
		end()
		return nil, err
	}
	res.Diagnostics = append(res.Diagnostics, a.Lints(probs)...)
	res.Sort()
	contexts, iterations := 0, 0
	for _, s := range res.Stats {
		contexts += s.Contexts
		iterations += s.Iterations
	}
	end("errors", len(res.Errors()), "warnings", len(res.Warnings()),
		"contexts", contexts, "iterations", iterations)
	return res, nil
}

// Lints runs the communication linter over the solved problems plus
// the whole-program lints, without the static verify itself — callers
// that schedule the per-problem verifications as concurrent tasks
// (internal/engine) merge those results first and append these.
func (a *Analysis) Lints(probs []*check.Problem) []check.Diagnostic {
	var out []check.Diagnostic
	for _, p := range probs {
		out = append(out, check.Lint(p)...)
	}
	return append(out, a.lintDeadArrays()...)
}

// lintDeadArrays flags distributed arrays that no statement ever
// references or defines: they force ownership bookkeeping at runtime
// but can never cause communication.
func (a *Analysis) lintDeadArrays() []check.Diagnostic {
	used := map[string]bool{}
	for _, it := range a.Universe.Items {
		used[it.Array] = true
	}
	var out []check.Diagnostic
	for _, d := range a.Prog.Decls {
		if d.Dist == ir.Local || used[d.Name] {
			continue
		}
		out = append(out, check.Diagnostic{
			Code:      check.CodeDeadArray,
			Severity:  check.Warning,
			Criterion: "lint",
			Item:      -1,
			ItemName:  d.Name,
			Node:      -1,
			Pos:       d.Pos().String(),
			Detail:    "distributed array is never referenced or defined; no communication will be generated",
		})
	}
	return out
}
