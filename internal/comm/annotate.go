package comm

import (
	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/ir"
	"givetake/internal/place"
	"givetake/internal/sections"
)

// Options selects what Annotate emits.
type Options struct {
	// Reads/Writes include the READ (BEFORE) and WRITE (AFTER) problems.
	Reads, Writes bool
	// Split emits separate Send/Recv halves (EAGER and LAZY solutions),
	// enabling latency hiding; unsplit emits one atomic operation per
	// production at the LAZY placement (e.g. for a library call).
	Split bool
	// Coalesce merges contiguous constant sections placed at one point
	// into single transfers (x(1:5) + x(6:10) → x(1:10)).
	Coalesce bool
}

// DefaultOptions is split reads and writes, as in the paper's figures.
var DefaultOptions = Options{Reads: true, Writes: true, Split: true}

// Annotate returns a copy of the program with communication statements
// inserted at the placements GIVE-N-TAKE computed. Production at
// synthetic pads materializes as new source positions (paper §5.4): an
// added else branch, a landing block inside a logical IF before its
// GOTO, or the position just after an ENDDO.
func (a *Analysis) Annotate(opt Options) *ir.Program {
	return place.Annotate(a.Prog, a.CFG, func(b *cfg.Block, entry bool) []ir.Stmt {
		return a.commsAt(b, entry, opt)
	})
}

// AnnotatedSource is Annotate rendered as program text.
func (a *Analysis) AnnotatedSource(opt Options) string {
	return ir.ProgramString(a.Annotate(opt))
}

// commsAt returns the communication statements generated at a block's
// entry (entry=true) or exit, in the paper's order: WRITE_Send,
// WRITE_Recv, READ_Send, READ_Recv. Items placed together merge into one
// vectorized statement per reduction operator.
func (a *Analysis) commsAt(b *cfg.Block, entry bool, opt Options) []ir.Stmt {
	if b == nil {
		return nil
	}
	n := a.Graph.NodeFor(b)
	if n == nil {
		return nil
	}
	id := n.ID
	var out []ir.Stmt
	add := func(op, half string, set *bitset.Set) {
		if set == nil || set.IsEmpty() {
			return
		}
		type group struct {
			c     *ir.Comm
			items []*sections.Item
		}
		groups := map[string]*group{}
		var order []string
		set.ForEach(func(i int) {
			red := ""
			if op == "WRITE" {
				red = a.Reduce[i]
			}
			gr, ok := groups[red]
			if !ok {
				gr = &group{c: &ir.Comm{Op: op, Half: half, Reduce: red}}
				groups[red] = gr
				order = append(order, red)
			}
			gr.items = append(gr.items, a.Universe.Items[i])
		})
		for _, red := range order {
			gr := groups[red]
			if opt.Coalesce {
				gr.c.Args = a.Universe.CoalesceExprs(gr.items)
			} else {
				for _, it := range gr.items {
					gr.c.Args = append(gr.c.Args, it.SectionExpr())
				}
			}
			out = append(out, gr.c)
		}
	}
	if opt.Writes && a.Write != nil {
		// The WRITE problem was solved on the reversed graph: its RES_in
		// is production at the node's exit in original orientation, its
		// RES_out at the entry. WRITE_Send is the LAZY solution of the
		// AFTER problem, WRITE_Recv the EAGER one (§3.1).
		var send, recv *bitset.Set
		if entry {
			send, recv = a.Write.Lazy.ResOut[id], a.Write.Eager.ResOut[id]
		} else {
			send, recv = a.Write.Lazy.ResIn[id], a.Write.Eager.ResIn[id]
		}
		if opt.Split {
			add("WRITE", "Send", send)
			add("WRITE", "Recv", recv)
		} else {
			add("WRITE", "", send)
		}
	}
	if opt.Reads {
		var send, recv *bitset.Set
		if entry {
			send, recv = a.Read.Eager.ResIn[id], a.Read.Lazy.ResIn[id]
		} else {
			send, recv = a.Read.Eager.ResOut[id], a.Read.Lazy.ResOut[id]
		}
		if opt.Split {
			add("READ", "Send", send)
			add("READ", "Recv", recv)
		} else {
			add("READ", "", recv)
		}
	}
	return out
}
