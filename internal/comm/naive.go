package comm

import (
	"givetake/internal/ir"
)

// NaiveAnnotate implements the strawman placement of Figure 2's left
// side: every reference to a distributed array fetches exactly its
// element right where it occurs, and every definition writes its element
// back immediately. No vectorization, no hoisting, no latency hiding —
// on a loop over N elements this issues N messages where GIVE-N-TAKE
// issues one. Options select reads/writes and splitting, mirroring
// Annotate so comparisons stay apples-to-apples.
func NaiveAnnotate(prog *ir.Program, opt Options) *ir.Program {
	out := ir.NewProgram(prog.Name)
	for _, d := range prog.Decls {
		out.Declare(d)
	}
	n := &naive{prog: prog, opt: opt}
	out.Body = n.rebuild(prog.Body)
	return out
}

type naive struct {
	prog *ir.Program
	opt  Options
}

func (n *naive) comm(op string, arg ir.Expr) []ir.Stmt {
	if op == "READ" && !n.opt.Reads || op == "WRITE" && !n.opt.Writes {
		return nil
	}
	mk := func(half string) ir.Stmt {
		return &ir.Comm{Op: op, Half: half, Args: []ir.Expr{ir.CloneExpr(arg)}}
	}
	if n.opt.Split {
		return []ir.Stmt{mk("Send"), mk("Recv")}
	}
	return []ir.Stmt{mk("")}
}

// distRefs returns the distributed-array references in e, outermost
// first.
func (n *naive) distRefs(e ir.Expr) []*ir.ArrayRef {
	var out []*ir.ArrayRef
	for _, ref := range ir.ArrayRefs(e) {
		if n.prog.Distributed(ref.Name) {
			out = append(out, ref)
		}
	}
	return out
}

func (n *naive) rebuild(stmts []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Assign:
			var pre, post []ir.Stmt
			for _, ref := range n.distRefs(s.RHS) {
				pre = append(pre, n.comm("READ", ref)...)
			}
			if lhs, ok := s.LHS.(*ir.ArrayRef); ok {
				for _, sub := range lhs.Subs {
					for _, ref := range n.distRefs(sub) {
						pre = append(pre, n.comm("READ", ref)...)
					}
				}
				if n.prog.Distributed(lhs.Name) {
					post = append(post, n.comm("WRITE", lhs)...)
				}
			}
			group := append(pre, s)
			group = append(group, post...)
			if s.Label() != "" && len(pre) > 0 {
				// keep the label on the first emitted statement
				group[0].SetLabel(s.Label())
				c := *s
				c.SetLabel("")
				group[len(pre)] = &c
			}
			out = append(out, group...)
		case *ir.Do:
			var pre []ir.Stmt
			for _, b := range []ir.Expr{s.Lo, s.Hi, s.Step} {
				if b != nil {
					for _, ref := range n.distRefs(b) {
						pre = append(pre, n.comm("READ", ref)...)
					}
				}
			}
			d := &ir.Do{Var: s.Var, Lo: s.Lo, Hi: s.Hi, Step: s.Step, Body: n.rebuild(s.Body)}
			d.SetLabel(s.Label())
			out = append(out, append(pre, d)...)
		case *ir.If:
			var pre []ir.Stmt
			for _, ref := range n.distRefs(s.Cond) {
				pre = append(pre, n.comm("READ", ref)...)
			}
			f := ir.NewIf(s.Pos(), s.Cond, n.rebuild(s.Then), n.rebuild(s.Else))
			f.SetLabel(s.Label())
			out = append(out, append(pre, f)...)
		default:
			out = append(out, s)
		}
	}
	return out
}
