package comm

import (
	"strings"
	"testing"

	"givetake/internal/core"
	"givetake/internal/interp"
)

// The paper's three worked communication codes, used as golden tests.

const fig1Src = `
distributed x(1000)
real y(1000), z(1000), a(1000)

do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
`

const fig11Src = `
distributed x(1000), y(1000)
real a(1000), b(1000)

do i = 1, n
    y(a(i)) = ...
    if test(i) goto 77
enddo
do j = 1, n
    ... = ...
enddo
77 do k = 1, n
    ... = x(k+10) + y(b(k))
enddo
`

const fig3Src = `
distributed x(1000)
real a(1000)

if test then
    do i = 1, n
        x(a(i)) = ...
    enddo
    do j = 1, n
        ... = x(j+5)
    enddo
endif
do k = 1, n
    ... = x(k+5)
enddo
`

// lines returns the trimmed non-empty lines of the annotated program.
func annotatedLines(t *testing.T, src string, opt Options) []string {
	t.Helper()
	a, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, l := range strings.Split(a.AnnotatedSource(opt), "\n") {
		if s := strings.TrimSpace(l); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func indexOf(lines []string, substr string) int {
	for i, l := range lines {
		if strings.Contains(l, substr) {
			return i
		}
	}
	return -1
}

func countOf(lines []string, substr string) int {
	n := 0
	for _, l := range lines {
		if strings.Contains(l, substr) {
			n++
		}
	}
	return n
}

// TestFig2Placement reproduces the right-hand side of Figure 2: exactly
// one vectorized READ_Send, hoisted above the i-loop (latency hiding),
// and one READ_Recv per branch, immediately before the consuming loops.
func TestFig2Placement(t *testing.T) {
	lines := annotatedLines(t, fig1Src, DefaultOptions)

	if got := countOf(lines, "READ_Send"); got != 1 {
		t.Fatalf("READ_Send count = %d, want 1 (vectorized):\n%s", got, strings.Join(lines, "\n"))
	}
	if got := countOf(lines, "READ_Recv"); got != 2 {
		t.Fatalf("READ_Recv count = %d, want 2 (one per branch):\n%s", got, strings.Join(lines, "\n"))
	}
	if got := countOf(lines, "WRITE"); got != 0 {
		t.Fatalf("no distributed definitions, so no WRITEs; got %d", got)
	}
	send := indexOf(lines, "READ_Send{x(a(1:n))}")
	if send < 0 {
		t.Fatalf("missing vectorized send of x(a(1:n)):\n%s", strings.Join(lines, "\n"))
	}
	// the send precedes the i-loop: the i-loop hides its latency
	if iloop := indexOf(lines, "do i = 1, n"); send > iloop {
		t.Fatalf("send at line %d not hoisted above i-loop at %d", send, iloop)
	}
	// each recv sits after the branch opens and before the consuming loop
	kloop := indexOf(lines, "do k = 1, n")
	lloop := indexOf(lines, "do l = 1, n")
	recv1 := indexOf(lines, "READ_Recv")
	if !(recv1 < kloop && recv1 > indexOf(lines, "if (test) then")) {
		t.Fatalf("first recv at %d not between branch and k-loop (%d):\n%s", recv1, kloop, strings.Join(lines, "\n"))
	}
	if recv2 := recv1 + 1 + indexOf(lines[recv1+1:], "READ_Recv"); !(recv2 > indexOf(lines, "else") && recv2 < lloop) {
		t.Fatalf("second recv at %d not on else branch before l-loop (%d)", recv2, lloop)
	}
}

// TestFig2Atomic: unsplit placement gives a single READ per branch at the
// lazy point — the classical PRE-style result.
func TestFig2Atomic(t *testing.T) {
	lines := annotatedLines(t, fig1Src, Options{Reads: true, Writes: true})
	if got := countOf(lines, "READ{"); got != 2 {
		t.Fatalf("atomic READ count = %d, want 2:\n%s", got, strings.Join(lines, "\n"))
	}
	if got := countOf(lines, "READ_Send"); got != 0 {
		t.Fatalf("atomic mode must not emit split halves")
	}
}

// TestFig3Placement reproduces Figure 3's right-hand side: the write-back
// of x(a(1:N)) after the defining loop, completion pinned before the
// re-fetching READ region, and the READ duplicated onto the synthetic
// else branch so the k-loop's consumer is covered on both paths.
func TestFig3Placement(t *testing.T) {
	lines := annotatedLines(t, fig3Src, DefaultOptions)
	text := strings.Join(lines, "\n")

	wsend := indexOf(lines, "WRITE_Send{x(a(1:n))}")
	wrecv := indexOf(lines, "WRITE_Recv{x(a(1:n))}")
	if wsend < 0 || wrecv < 0 {
		t.Fatalf("missing write-back:\n%s", text)
	}
	// write-back happens after the defining i-loop, inside the then branch
	if enddoI := indexOf(lines, "enddo"); wsend < enddoI {
		t.Fatalf("WRITE_Send before the defining loop ends:\n%s", text)
	}
	jloop := indexOf(lines, "do j = 1, n")
	if !(wsend < jloop && wrecv < jloop) {
		t.Fatalf("write-back not completed before the re-reading j-loop:\n%s", text)
	}
	// reads: both branches need x(6:n+5); then-branch read re-fetches
	// after the defs, else branch is the synthetic pad of Figure 3
	if got := countOf(lines, "READ_Send{x(6:n + 5)}"); got != 2 {
		t.Fatalf("READ_Send count = %d, want 2 (then + synthetic else):\n%s", got, text)
	}
	if got := countOf(lines, "READ_Recv{x(6:n + 5)}"); got != 2 {
		t.Fatalf("READ_Recv count = %d, want 2:\n%s", got, text)
	}
	els := indexOf(lines, "else")
	if els < 0 {
		t.Fatalf("synthetic else branch not materialized:\n%s", text)
	}
	endif := indexOf(lines, "endif")
	foundInElse := false
	for i := els; i < endif; i++ {
		if strings.Contains(lines[i], "READ_Send") {
			foundInElse = true
		}
	}
	if !foundInElse {
		t.Fatalf("no READ on the synthetic else branch:\n%s", text)
	}
	// x(j+5) and x(k+5) are one value-numbered item: no third read
	if got := countOf(lines, "READ_Send"); got != 2 {
		t.Fatalf("extra reads emitted: %d:\n%s", got, text)
	}
}

// TestFig14Placement reproduces the READ side of Figure 14 exactly: the
// send of x(11:N+10) at the very top, the send of y(b(1:N)) on both
// loop-exit paths (inside the branch before the goto, and before the
// j-loop), and one combined receive at label 77.
func TestFig14Placement(t *testing.T) {
	lines := annotatedLines(t, fig11Src, DefaultOptions)
	text := strings.Join(lines, "\n")

	if lines[0] != "distributed x(1000)" {
		t.Fatalf("unexpected first line %q", lines[0])
	}
	xsend := indexOf(lines, "READ_Send{x(11:n + 10)}")
	iloop := indexOf(lines, "do i = 1, n")
	if xsend < 0 || xsend > iloop {
		t.Fatalf("x send not hoisted to the top:\n%s", text)
	}
	if got := countOf(lines, "READ_Send{y(b(1:n))}"); got != 2 {
		t.Fatalf("y(b) sends = %d, want 2 (goto path + fallthrough path):\n%s", got, text)
	}
	// one inside the branch, before the goto
	gotoLine := indexOf(lines, "goto 77")
	ysendInBranch := indexOf(lines, "READ_Send{y(b(1:n))}")
	if !(ysendInBranch < gotoLine && ysendInBranch > indexOf(lines, "if (test(i)) then")) {
		t.Fatalf("first y(b) send not inside the branch before goto:\n%s", text)
	}
	// the combined receive carries label 77 (label transfer, §5.4)
	recv := indexOf(lines, "77 READ_Recv{x(11:n + 10), y(b(1:n))}")
	if recv < 0 {
		t.Fatalf("missing labeled combined receive:\n%s", text)
	}
	if kloop := indexOf(lines, "do k = 1, n"); recv > kloop {
		t.Fatalf("receive after the consuming loop:\n%s", text)
	}
	// writes of y(a(1:n)) exist (non-owner-computes definitions). With
	// the §5.3 guard they stay inside the jump-containing loop — the
	// paper's own conservative treatment (its Figure 14 draws the ideal
	// sunk placement that §6 lists as future work).
	if got := countOf(lines, "WRITE_Send{y(a(1:n))}"); got < 1 {
		t.Fatalf("missing write-back of y(a(1:n)):\n%s", text)
	}
}

// TestRoundTripParse: annotated programs are valid mini-Fortran modulo
// the READ/WRITE statements, which the printer renders unambiguously.
func TestAnnotationDeterministic(t *testing.T) {
	a1, err := AnalyzeSource(fig11Src)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AnalyzeSource(fig11Src)
	if err != nil {
		t.Fatal(err)
	}
	if a1.AnnotatedSource(DefaultOptions) != a2.AnnotatedSource(DefaultOptions) {
		t.Fatal("annotation is not deterministic")
	}
}

// TestReadSolutionVerifies: the READ placements satisfy the correctness
// criteria on the paper figures.
func TestReadSolutionVerifies(t *testing.T) {
	for name, src := range map[string]string{"fig1": fig1Src, "fig3": fig3Src, "fig11": fig11Src} {
		a, err := AnalyzeSource(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if vs := core.Verify(a.Read, a.ReadInit, core.VerifyConfig{CheckSafety: true}); len(vs) > 0 {
			t.Errorf("%s READ: %v", name, vs[0])
		}
		for _, v := range core.Verify(a.Write, a.WriteInit, core.VerifyConfig{}) {
			if v.Criterion != "O1" {
				t.Errorf("%s WRITE: %v", name, v)
			}
		}
	}
}

// TestUniverseContents checks the value-numbered universes of the figures.
func TestUniverseContents(t *testing.T) {
	a, err := AnalyzeSource(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Universe.Size() != 1 {
		t.Fatalf("fig1 universe = %d items (%s), want 1", a.Universe.Size(), a.Universe.Describe())
	}
	a, err = AnalyzeSource(fig11Src)
	if err != nil {
		t.Fatal(err)
	}
	// x(11:n+10), y(a(1:n)), y(b(1:n))
	if a.Universe.Size() != 3 {
		t.Fatalf("fig11 universe = %d items (%s), want 3", a.Universe.Size(), a.Universe.Describe())
	}
	a, err = AnalyzeSource(fig3Src)
	if err != nil {
		t.Fatal(err)
	}
	// x(a(1:n)) and x(6:n+5) — the j and k references share one item
	if a.Universe.Size() != 2 {
		t.Fatalf("fig3 universe = %d items (%s), want 2", a.Universe.Size(), a.Universe.Describe())
	}
}

// TestRedBlackNoRefetch: red/black relaxation — writes to even elements
// do not steal reads of odd elements, because stride analysis proves the
// residue classes disjoint. One fetch of the odd section suffices for
// the whole sweep; no re-fetch after the even update.
func TestRedBlackNoRefetch(t *testing.T) {
	a, err := AnalyzeSource(`
distributed x(4000)
real w(4000)

do i = 1, n
    w(i) = x(2 * i + 1)
enddo
do i = 1, n
    x(2 * i) = w(i)
enddo
do i = 1, n
    w(i) = x(2 * i + 1)
enddo
`)
	if err != nil {
		t.Fatal(err)
	}
	lines := annotatedLines(t, `
distributed x(4000)
real w(4000)

do i = 1, n
    w(i) = x(2 * i + 1)
enddo
do i = 1, n
    x(2 * i) = w(i)
enddo
do i = 1, n
    w(i) = x(2 * i + 1)
enddo
`, Options{Reads: true, Split: true})
	if got := countOf(lines, "READ_Send{x(3:2 * n + 1:2)}"); got != 1 {
		t.Fatalf("odd-section fetches = %d, want 1 (no re-fetch after even writes):\n%s",
			got, strings.Join(lines, "\n"))
	}
	_ = a
}

// TestOverlappingWriteForcesRefetch is the control: a dense write does
// steal the odd section, forcing a second fetch.
func TestOverlappingWriteForcesRefetch(t *testing.T) {
	lines := annotatedLines(t, `
distributed x(4000)
real w(4000)

do i = 1, n
    w(i) = x(2 * i + 1)
enddo
do i = 1, n
    x(i) = w(i)
enddo
do i = 1, n
    w(i) = x(2 * i + 1)
enddo
`, Options{Reads: true, Split: true})
	if got := countOf(lines, "READ_Send{x(3:2 * n + 1:2)}"); got != 2 {
		t.Fatalf("odd-section fetches = %d, want 2 (dense write invalidates):\n%s",
			got, strings.Join(lines, "\n"))
	}
}

// TestTwoDimensionalSections: a 2-D Jacobi-style sweep vectorizes to one
// two-dimensional section per shifted plane, with per-dimension overlap
// analysis (the row sections u(1:n, *) and the halo u(n+1, *) are
// handled as distinct items).
func TestTwoDimensionalSections(t *testing.T) {
	a, err := AnalyzeSource(`
distributed u(300, 300)
real v(300, 300)

do j = 1, n
    do i = 1, n
        v(i, j) = u(i + 1, j) + u(i, j + 1)
    enddo
enddo
`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Universe.Size() != 2 {
		t.Fatalf("universe = %d items, want 2:\n%s", a.Universe.Size(), a.Universe.Describe())
	}
	lines := annotatedLines(t, `
distributed u(300, 300)
real v(300, 300)

do j = 1, n
    do i = 1, n
        v(i, j) = u(i + 1, j) + u(i, j + 1)
    enddo
enddo
`, Options{Reads: true, Split: true})
	if got := countOf(lines, "READ_Send{u(2:n + 1, 1:n), u(1:n, 2:n + 1)}"); got != 1 {
		t.Fatalf("2-D vectorized send missing:\n%s", strings.Join(lines, "\n"))
	}
	// hoisted above both loops
	if send, jloop := indexOf(lines, "READ_Send"), indexOf(lines, "do j"); send > jloop {
		t.Fatalf("send not hoisted above the nest:\n%s", strings.Join(lines, "\n"))
	}
}

// TestTwoDimensionalDisjointColumns: writes to column 1 do not steal
// reads of column 2 — per-dimension bounds prove disjointness.
func TestTwoDimensionalDisjointColumns(t *testing.T) {
	lines := annotatedLines(t, `
distributed u(300, 300)
real w(300)

do i = 1, n
    w(i) = u(i, 2)
enddo
do i = 1, n
    u(i, 1) = w(i)
enddo
do i = 1, n
    w(i) = u(i, 2)
enddo
`, Options{Reads: true, Split: true})
	if got := countOf(lines, "READ_Send{u(1:n, 2)}"); got != 1 {
		t.Fatalf("column-2 fetches = %d, want 1 (column-1 writes are disjoint):\n%s",
			got, strings.Join(lines, "\n"))
	}
}

// TestCoalescing: contiguous constant sections placed at one point merge
// into a single transfer.
func TestCoalescing(t *testing.T) {
	src := `
distributed x(100)
real w(20)

do i = 1, 5
    w(i) = x(i)
enddo
do i = 6, 10
    w(i) = x(i)
enddo
`
	plain := annotatedLines(t, src, Options{Reads: true, Split: true})
	if got := countOf(plain, "READ_Send{x(1:5), x(6:10)}"); got != 1 {
		t.Fatalf("without coalescing, two sections expected:\n%s", strings.Join(plain, "\n"))
	}
	co := annotatedLines(t, src, Options{Reads: true, Split: true, Coalesce: true})
	if got := countOf(co, "READ_Send{x(1:10)}"); got != 1 {
		t.Fatalf("coalesced section missing:\n%s", strings.Join(co, "\n"))
	}
	// dynamic: one message instead of two
	a, err := AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := interp.Run(a.Annotate(Options{Reads: true, Split: true, Coalesce: true}),
		interp.Config{N: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Messages() != 1 || tr.Volume() != 10 {
		t.Fatalf("coalesced trace: msgs=%d vol=%d, want 1/10", tr.Messages(), tr.Volume())
	}
}

// TestCoalescingKeepsDistinct: disjoint non-adjacent and symbolic
// sections stay separate.
func TestCoalescingKeepsDistinct(t *testing.T) {
	src := `
distributed x(100), y(100)
real w(20), a(100)

w(1) = x(1) + x(50) + y(a(1))
`
	co := annotatedLines(t, src, Options{Reads: true, Split: true, Coalesce: true})
	text := strings.Join(co, "\n")
	if !strings.Contains(text, "x(1)") || !strings.Contains(text, "x(50)") ||
		!strings.Contains(text, "y(a(1))") {
		t.Fatalf("distinct sections merged or lost:\n%s", text)
	}
}
