package comm

import (
	"strings"
	"testing"
)

// ExplainNode must unfold Eqs. 14–15 at a placement point: name the
// equation, the consumers demanding the item, and the availability gap
// that forced production there.
func TestExplainNode(t *testing.T) {
	a, err := AnalyzeSource(`
distributed x(1000)
real a(1000)
do i = 1, n
    ... = x(a(i))
enddo
`)
	if err != nil {
		t.Fatal(err)
	}
	var placed []string
	for pre := 1; pre <= len(a.Graph.Preorder); pre++ {
		s, err := a.ExplainNode(pre)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, "no communication") {
			placed = append(placed, s)
		}
	}
	if len(placed) == 0 {
		t.Fatal("no node explains a placement, but the program communicates")
	}
	all := strings.Join(placed, "")
	for _, want := range []string{"READ_Send", "READ_Recv", "Eq.14", "needed:", "missing:", "x(a(1:n))", " @ "} {
		if !strings.Contains(all, want) {
			t.Errorf("explanations missing %q:\n%s", want, all)
		}
	}
	if !strings.Contains(a.ExplainAll(), "READ_Send") {
		t.Error("ExplainAll dropped the placements")
	}
	if _, err := a.ExplainNode(0); err == nil {
		t.Error("node 0 should be out of range")
	}
	if _, err := a.ExplainNode(len(a.Graph.Preorder) + 1); err == nil {
		t.Error("past-the-end node should be out of range")
	}
}
