// Package comm implements the paper's motivating application:
// communication generation for data-parallel programs with distributed
// arrays (§2, §3.1). References to distributed data become consumers of
// a READ problem (BEFORE: data must arrive before use), definitions
// become consumers of a WRITE problem (AFTER: data must be written back
// to their owners afterwards), and local definitions double as free
// producers for the READ problem — the "comes for free" side effect that
// removes redundant fetches.
//
// The result of Analyze is a pair of GIVE-N-TAKE solutions; Annotate
// maps them back onto the source as READ/WRITE_{Send,Recv} statements,
// reproducing the annotated codes of Figures 2, 3, and 14.
package comm

import (
	"context"
	"fmt"

	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/core"
	"givetake/internal/frontend"
	"givetake/internal/interval"
	"givetake/internal/ir"
	"givetake/internal/obs"
	"givetake/internal/sections"
	"givetake/internal/vn"
)

// Opts tunes an analysis beyond observability.
type Opts struct {
	// SuppressHoist marks every loop header NoHoist before solving, the
	// paper's STEAL_init option applied globally (§4.1, §5.3): no
	// consumption is hoisted across any loop boundary, so no zero-trip
	// speculation remains. It is the serve degradation ladder's second
	// rung — a strictly more conservative, still balanced placement to
	// retry with when the full solution fails verification.
	SuppressHoist bool
}

// Analysis carries the communication-placement results of one program.
type Analysis struct {
	Prog     *ir.Program
	CFG      *cfg.Graph
	Graph    *interval.Graph
	RevGraph *interval.Graph
	Universe *sections.Universe

	// ReadInit/WriteInit are the initial variables of the two problems
	// (node-indexed). The READ problem runs on Graph (BEFORE), the WRITE
	// problem on RevGraph (AFTER).
	ReadInit, WriteInit *core.Init

	// Read and Write are the solved placements. Write is nil when the
	// program defines no distributed data.
	Read, Write *core.Solution

	// Reduce maps universe item IDs to the reduction the owner applies
	// to their write-backs ("SUM", "PROD", "MAX", "MIN"). An item is a
	// reduction item when every definition of it is a same-operator
	// accumulation (x(s) = x(s) op e) and it is never read outside its
	// own accumulations — then the local copies hold partial results,
	// only WRITE_<op> communication is generated, and no READ fetches it
	// (paper §6: "WRITEs combined with different reduction operations").
	Reduce map[int]string
}

// Analyze parses nothing: it takes a checked program, builds the interval
// flow graph and the section universe, derives the READ and WRITE initial
// sets, and solves both placement problems.
func Analyze(prog *ir.Program) (*Analysis, error) {
	return AnalyzeObs(prog, nil)
}

// AnalyzeObs is Analyze with observability: each pipeline stage (CFG
// build, interval reduction, section-universe collection, the two
// dataflow solves) is wrapped in a span on ocol, annotated with its
// headline sizes, and the solver counters are exported via Counters.
// A nil collector makes it behave — and cost — exactly like Analyze.
func AnalyzeObs(prog *ir.Program, ocol obs.Collector) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), prog, ocol)
}

// AnalyzeCtx is AnalyzeObs with cooperative cancellation: ctx is polled
// between pipeline stages and inside both dataflow solves (at interval
// node granularity), and the analysis aborts with ctx.Err() once it is
// canceled. A solver one-pass violation surfaces as core.ErrInvariant
// rather than a panic.
func AnalyzeCtx(ctx context.Context, prog *ir.Program, ocol obs.Collector) (*Analysis, error) {
	return AnalyzeOpts(ctx, prog, ocol, Opts{})
}

// build runs the solver-free front half of the pipeline: CFG, interval
// reduction, section universe, event collection, and the READ/WRITE
// initial variables. Both the full analysis and the atomic fallback
// start from exactly this state. The three stages are exported
// individually (StageCFG, StageIntervals, StageUniverse) so a stage
// scheduler can run each program's front half as separate tasks;
// build is their sequential composition.
func build(ctx context.Context, prog *ir.Program, ocol obs.Collector) (*Analysis, error) {
	a, err := StageCFG(ctx, prog, ocol)
	if err != nil {
		return nil, err
	}
	if err := a.StageIntervals(ctx, ocol); err != nil {
		return nil, err
	}
	if err := a.StageUniverse(ctx, ocol); err != nil {
		return nil, err
	}
	return a, nil
}

// StageCFG is the first pipeline stage: control-flow-graph
// construction. It returns a partial Analysis holding only the program
// and its CFG; StageIntervals and StageUniverse fill in the rest.
func StageCFG(ctx context.Context, prog *ir.Program, ocol obs.Collector) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	end := obs.Begin(ocol, obs.SpanCFGBuild)
	c, err := cfg.Build(prog)
	if err != nil {
		end()
		return nil, err
	}
	end("blocks", len(c.Blocks))
	return &Analysis{Prog: prog, CFG: c}, nil
}

// StageIntervals is the second pipeline stage: the interval
// (loop-forest) reduction of the CFG built by StageCFG.
func (a *Analysis) StageIntervals(ctx context.Context, ocol obs.Collector) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	end := obs.Begin(ocol, obs.SpanIntervalReduce)
	g, err := interval.FromCFG(a.CFG)
	if err != nil {
		end()
		return err
	}
	a.Graph = g
	maxLevel, _ := g.LevelStats()
	end("nodes", len(g.Nodes), "max-level", maxLevel)
	return nil
}

// StageUniverse is the third pipeline stage: section-universe
// collection, event classification, and the READ/WRITE initial
// variables. After it returns the Analysis is ready for ApplyOpts and
// the two solves.
func (a *Analysis) StageUniverse(ctx context.Context, ocol obs.Collector) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	prog, g := a.Prog, a.Graph
	a.Universe = sections.NewUniverse()
	end := obs.Begin(ocol, obs.SpanSectionUniverse)
	col := &collector{a: a, env: vn.NewEnv(a.Universe.Tab), ranges: map[string]sections.LoopRange{}}
	col.walk(prog.Body)
	if col.err != nil {
		end()
		return col.err
	}

	a.Reduce = col.classifyReductions()
	u := a.Universe.Size()
	a.ReadInit = core.NewInit(len(g.Nodes))
	a.WriteInit = core.NewInit(len(g.Nodes))
	for _, ev := range col.events {
		n := g.NodeFor(ev.block)
		if n == nil {
			continue // block pruned as unreachable
		}
		switch ev.kind {
		case evReduceRef:
			if _, ok := a.Reduce[ev.item.ID]; ok {
				continue // partial results accumulate locally; no fetch
			}
			fallthrough
		case evRef:
			one := bitset.Of(u, ev.item.ID)
			a.ReadInit.AddTake(n, u, one)
			// WRITE: a reference to a section requires any pending
			// write-back of overlapping data to have completed first —
			// the owner must hold current data before it can be re-read.
			// A STEAL in the AFTER problem is exactly "production may not
			// move past this point toward program start", which pins
			// WRITE_Recv above the reference (Figure 3's ordering).
			a.WriteInit.AddSteal(n, u, col.overlappingOrSame(ev.item))
		case evReduceDef:
			one := bitset.Of(u, ev.item.ID)
			if _, ok := a.Reduce[ev.item.ID]; ok {
				// the accumulation invalidates any fetched copy and needs a
				// reducing write-back, but gives nothing for the READ
				// problem (the local value is only a partial result)
				a.ReadInit.AddSteal(n, u, col.overlappingOrSame(ev.item))
				a.WriteInit.AddTake(n, u, one)
				a.WriteInit.AddSteal(n, u, col.overlapping(ev.item))
				continue
			}
			fallthrough
		case evDef:
			one := bitset.Of(u, ev.item.ID)
			// READ: the defined section comes for free; overlapping
			// sections are voided (their cached copies may be stale).
			a.ReadInit.AddGive(n, u, one)
			a.ReadInit.AddSteal(n, u, col.overlapping(ev.item))
			// WRITE: the definition must be written back; overlapping
			// earlier write-backs are voided.
			a.WriteInit.AddTake(n, u, one)
			a.WriteInit.AddSteal(n, u, col.overlapping(ev.item))
		case evKillArray:
			// a definition of a local array (or an unanalyzable
			// distributed definition) steals every section depending on it
			a.ReadInit.AddSteal(n, u, col.dependingOn(ev.array))
			a.WriteInit.AddSteal(n, u, col.dependingOn(ev.array))
		}
	}

	end("items", u, "events", len(col.events), "reductions", len(a.Reduce))
	return nil
}

// AnalyzeOpts is AnalyzeCtx with analysis options. It is the full entry
// point the serve degradation ladder drives: rung 1 passes the zero
// Opts, rung 2 retries with SuppressHoist.
func AnalyzeOpts(ctx context.Context, prog *ir.Program, ocol obs.Collector, opt Opts) (*Analysis, error) {
	a, err := Build(ctx, prog, ocol, opt)
	if err != nil {
		return nil, err
	}
	if err := a.SolveRead(ctx, ocol, nil); err != nil {
		return nil, err
	}
	if err := a.SolveWrite(ctx, ocol, nil); err != nil {
		return nil, err
	}
	return a, nil
}

// Build runs the solver-free front half of the pipeline and applies the
// analysis options, leaving an Analysis ready for SolveRead and
// SolveWrite. The two solves share no mutable state beyond this point —
// SolveRead touches only Read, SolveWrite only RevGraph and Write, and
// neither mutates the graph — so a scheduler may run them as concurrent
// tasks (internal/engine does).
func Build(ctx context.Context, prog *ir.Program, ocol obs.Collector, opt Opts) (*Analysis, error) {
	a, err := build(ctx, prog, ocol)
	if err != nil {
		return nil, err
	}
	a.ApplyOpts(opt)
	return a, nil
}

// ApplyOpts applies the analysis options to a built Analysis, after
// StageUniverse and before the solves: SuppressHoist marks every
// non-root loop header NoHoist (the degradation ladder's rung 2).
func (a *Analysis) ApplyOpts(opt Opts) {
	if opt.SuppressHoist {
		for _, n := range a.Graph.Nodes {
			if n.IsHeader && n != a.Graph.Root {
				n.NoHoist = true
			}
		}
	}
}

// SolveRead solves the READ/BEFORE placement problem on the forward
// graph. A non-nil arena backs the solution's slabs (core.SolveIn);
// the solution then aliases it and dies with its next Reset.
func (a *Analysis) SolveRead(ctx context.Context, ocol obs.Collector, ar *bitset.Arena) error {
	end := obs.Begin(ocol, obs.SpanSolveRead)
	read, err := core.SolveIn(ctx, a.Graph, a.Universe.Size(), a.ReadInit, ar)
	if err != nil {
		end()
		return err
	}
	a.Read = read
	end("eq-evals", read.EquationEvals, "set-ops", read.Stats.SetOps)
	return nil
}

// SolveWrite reverses the graph and solves the WRITE/AFTER placement
// problem on it. Independent of SolveRead: interval.Reverse clones the
// nodes it reads, so the two solves may run concurrently.
func (a *Analysis) SolveWrite(ctx context.Context, ocol obs.Collector, ar *bitset.Arena) error {
	end := obs.Begin(ocol, obs.SpanReverseGraph)
	rev, err := interval.Reverse(a.Graph)
	if err != nil {
		end()
		return err
	}
	a.RevGraph = rev
	end()

	end = obs.Begin(ocol, obs.SpanSolveWrite)
	write, err := core.SolveIn(ctx, rev, a.Universe.Size(), a.WriteInit, ar)
	if err != nil {
		end()
		return err
	}
	a.Write = write
	end("eq-evals", write.EquationEvals, "set-ops", write.Stats.SetOps)
	return nil
}

// AtomicFallback builds the bottom rung of the degradation ladder: the
// always-balanced placement that communicates atomically at every
// consumption point (core.Atomic), for both the READ and the WRITE
// problem. It runs no dataflow solver and no fixed point — only the
// linear front half of the pipeline — so it cannot hit the one-pass
// invariant and has no pathological inputs beyond sheer program size.
// The returned analysis annotates (use AtomicComm options: Split would
// emit coincident halves) and verifies like any other: its Init sets
// are rewritten to the atomic runtime contract (consumed items are
// invalidated at their own node, free production is dropped), against
// which CheckPlacement reports no criterion errors.
func AtomicFallback(prog *ir.Program, ocol obs.Collector) (*Analysis, error) {
	a, err := build(context.Background(), prog, ocol)
	if err != nil {
		return nil, err
	}
	u := a.Universe.Size()
	end := obs.Begin(ocol, obs.SpanAtomicFallback)
	a.Read, a.ReadInit = core.Atomic(a.Graph, u, a.ReadInit)
	rev, err := interval.Reverse(a.Graph)
	if err != nil {
		end()
		return nil, err
	}
	a.RevGraph = rev
	a.Write, a.WriteInit = core.Atomic(rev, u, a.WriteInit)
	end("items", u)
	return a, nil
}

// Counters returns the solver work profiles of the READ and WRITE
// solves for a Report's solver section.
func (a *Analysis) Counters() []obs.SolverCounters {
	var out []obs.SolverCounters
	if a.Read != nil {
		out = append(out, a.Read.Counters("READ"))
	}
	if a.Write != nil {
		out = append(out, a.Write.Counters("WRITE"))
	}
	return out
}

// AnalyzeSource parses, checks, and analyzes program text.
func AnalyzeSource(src string) (*Analysis, error) {
	prog, err := frontend.Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(prog)
}

type evKind int

const (
	evRef evKind = iota
	evDef
	evKillArray
	// evReduceDef is an accumulation x(s) = x(s) op e; evReduceRef is
	// the self-reference on its right-hand side.
	evReduceDef
	evReduceRef
)

type event struct {
	kind   evKind
	block  *cfg.Block
	item   *sections.Item
	array  string
	reduce string // operator for evReduceDef
}

// classifyReductions decides which items are pure reductions: at least
// one accumulation, a single operator, no plain definitions, and no
// reads outside their own accumulations.
func (c *collector) classifyReductions() map[int]string {
	type facts struct {
		ops       map[string]bool
		plainDefs int
		plainRefs int
	}
	byItem := map[int]*facts{}
	get := func(id int) *facts {
		if f, ok := byItem[id]; ok {
			return f
		}
		f := &facts{ops: map[string]bool{}}
		byItem[id] = f
		return f
	}
	for _, ev := range c.events {
		if ev.item == nil {
			continue
		}
		switch ev.kind {
		case evReduceDef:
			get(ev.item.ID).ops[ev.reduce] = true
		case evDef:
			get(ev.item.ID).plainDefs++
		case evRef:
			get(ev.item.ID).plainRefs++
		}
	}
	out := map[int]string{}
	for id, f := range byItem {
		if len(f.ops) == 1 && f.plainDefs == 0 && f.plainRefs == 0 {
			for op := range f.ops {
				out[id] = op
			}
		}
	}
	return out
}

// reduceOp reports the reduction operator when rhs is "lhsItem op e"
// (or "e op lhsItem") for a commutative op with no other reference to
// the defined array in e.
func (c *collector) reduceOp(lhs *ir.ArrayRef, lhsItem *sections.Item, rhs ir.Expr) (string, bool) {
	bin, ok := rhs.(*ir.BinExpr)
	if !ok {
		return "", false
	}
	var op string
	switch bin.Op {
	case "+":
		op = "SUM"
	case "*":
		op = "PROD"
	default:
		return "", false
	}
	match := func(self, other ir.Expr) bool {
		ref, ok := self.(*ir.ArrayRef)
		if !ok || ref.Name != lhs.Name {
			return false
		}
		it := c.item(ref.Name, ref.Subs)
		if it == nil || it.ID != lhsItem.ID {
			return false
		}
		// the other operand must not touch the reduced array
		for _, r := range ir.ArrayRefs(other) {
			if r.Name == lhs.Name {
				return false
			}
		}
		return true
	}
	if match(bin.X, bin.Y) || match(bin.Y, bin.X) {
		return op, true
	}
	return "", false
}

// collector walks the program in source order, maintaining the value
// numbering environment, and records reference/definition events with
// their CFG blocks. Two passes are hidden here: events are gathered
// first because STEAL sets ("all overlapping sections") need the full
// universe.
type collector struct {
	a      *Analysis
	env    *vn.Env
	ranges map[string]sections.LoopRange
	events []event
	err    error
}

func (c *collector) item(array string, subs []ir.Expr) *sections.Item {
	return c.a.Universe.ItemFor(array, subs, c.env, c.ranges)
}

// overlapping returns sections of the same array that may overlap it,
// excluding it itself (the definition gives its own section).
func (c *collector) overlapping(it *sections.Item) *bitset.Set {
	s := bitset.New(c.a.Universe.Size())
	for _, other := range c.a.Universe.Items {
		if other.ID != it.ID && c.a.Universe.MayOverlap(other, it) {
			s.Add(other.ID)
		}
	}
	return s
}

// overlappingOrSame is overlapping including the item itself.
func (c *collector) overlappingOrSame(it *sections.Item) *bitset.Set {
	s := c.overlapping(it)
	s.Add(it.ID)
	return s
}

// dependingOn returns sections whose subscript reads the named array, or
// every section of that array when it is distributed.
func (c *collector) dependingOn(array string) *bitset.Set {
	s := bitset.New(c.a.Universe.Size())
	for _, other := range c.a.Universe.Items {
		if other.UsesArray(array) || other.Array == array {
			s.Add(other.ID)
		}
	}
	return s
}

func (c *collector) record(kind evKind, b *cfg.Block, it *sections.Item, array string) {
	if b == nil {
		return
	}
	c.events = append(c.events, event{kind: kind, block: b, item: it, array: array})
}

func (c *collector) recordReduce(kind evKind, b *cfg.Block, it *sections.Item, op string) {
	if b == nil {
		return
	}
	c.events = append(c.events, event{kind: kind, block: b, item: it, reduce: op})
}

// refs records all distributed-array references inside e as consumers at
// block b; subscript reads of distributed arrays count too.
func (c *collector) refs(e ir.Expr, b *cfg.Block) {
	for _, ref := range ir.ArrayRefs(e) {
		if !c.a.Prog.Distributed(ref.Name) {
			continue
		}
		if it := c.item(ref.Name, ref.Subs); it != nil {
			c.record(evRef, b, it, ref.Name)
		} else {
			// unanalyzable subscript: be conservative, consume nothing
			// (no communication can be vectorized for it) but record the
			// read so future extensions can diagnose it
			_ = it
		}
	}
}

func (c *collector) walk(stmts []ir.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Assign:
			b := c.a.CFG.StmtBlock[s]
			// an accumulation into distributed data is a reduction
			// candidate: its self-reference is recorded separately so the
			// READ problem can drop it if the item classifies as a pure
			// reduction
			if lhs, ok := s.LHS.(*ir.ArrayRef); ok &&
				c.a.Prog.Distributed(lhs.Name) {
				if it := c.item(lhs.Name, lhs.Subs); it != nil {
					if op, isRed := c.reduceOp(lhs, it, s.RHS); isRed {
						for _, sub := range lhs.Subs {
							c.refs(sub, b)
						}
						// other operand's references still fetch normally
						if bin, ok := s.RHS.(*ir.BinExpr); ok {
							if selfRef, other := splitReduceOperands(bin, lhs.Name); selfRef != nil {
								c.refs(other, b)
								c.recordReduce(evReduceRef, b, it, op)
							}
						}
						c.recordReduce(evReduceDef, b, it, op)
						continue
					}
				}
			}
			c.refs(s.RHS, b)
			switch lhs := s.LHS.(type) {
			case *ir.ArrayRef:
				// subscript expressions of the LHS are reads
				for _, sub := range lhs.Subs {
					c.refs(sub, b)
				}
				if c.a.Prog.Distributed(lhs.Name) {
					if it := c.item(lhs.Name, lhs.Subs); it != nil {
						c.record(evDef, b, it, lhs.Name)
					} else {
						c.record(evKillArray, b, nil, lhs.Name)
					}
				} else {
					// definition of a local array: sections indirected
					// through it become stale
					c.record(evKillArray, b, nil, lhs.Name)
				}
			case *ir.Ident:
				// A scalar assignment renumbers future uses (x(m) after
				// "m = ..." is a fresh item); previously fetched sections
				// stay valid, so nothing is stolen.
				c.env.Kill(lhs.Name)
			}
		case *ir.Do:
			h := c.a.CFG.LoopHeader[s]
			c.refs(s.Lo, h)
			c.refs(s.Hi, h)
			if s.Step != nil {
				c.refs(s.Step, h)
			}
			pop := c.env.PushLoop(s.Var, s.Lo, s.Hi, s.Step)
			old, had := c.ranges[s.Var]
			c.ranges[s.Var] = sections.LoopRange{Lo: s.Lo, Hi: s.Hi, Step: s.Step}
			c.walk(s.Body)
			pop()
			if had {
				c.ranges[s.Var] = old
			} else {
				delete(c.ranges, s.Var)
			}
		case *ir.If:
			c.refs(s.Cond, c.a.CFG.IfBranch[s])
			c.walk(s.Then)
			c.walk(s.Else)
		case *ir.Goto, *ir.Continue, *ir.Comm:
			// no data effects
		default:
			if c.err == nil {
				c.err = fmt.Errorf("comm: cannot analyze %T", s)
			}
		}
	}
}

// splitReduceOperands returns the self-reference side and the other
// operand of a reduction RHS.
func splitReduceOperands(bin *ir.BinExpr, array string) (self *ir.ArrayRef, other ir.Expr) {
	if r, ok := bin.X.(*ir.ArrayRef); ok && r.Name == array {
		return r, bin.Y
	}
	if r, ok := bin.Y.(*ir.ArrayRef); ok && r.Name == array {
		return r, bin.X
	}
	return nil, nil
}

// ItemNames returns a printable name for each universe item, for dumps.
func (a *Analysis) ItemNames() func(int) string {
	return func(i int) string { return a.Universe.Items[i].String() }
}
