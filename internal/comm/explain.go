package comm

import (
	"fmt"
	"sort"
	"strings"

	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/core"
	"givetake/internal/interval"
)

// Provenance: for every communication statement Annotate would emit,
// ExplainNode names the dataflow equation that produced it and the
// predecessor/successor availability sets that forced it. This is the
// placement decisions of Eqs. 14–15 unfolded one step: RES_in(n) =
// GIVEN(n) − GIVEN_in(n) means "needed at n, not guaranteed on entry",
// RES_out(n) = ⋃ GIVEN_in(s) − GIVEN_out(n) means "needed by a
// successor, not surviving n's exit" — so each emitted item is
// explained by naming its consumers and the edges where availability
// is missing.

// resSlot identifies one of the four communication slots Annotate
// fills at a block boundary (see commsAt for the mapping).
type resSlot struct {
	op, half string
	sol      *core.Solution
	problem  string
	mode     core.Mode
	resIn    bool // RES_in vs RES_out on the problem's graph
	init     *core.Init
}

// slotsAt mirrors commsAt's placement mapping for a boundary:
// WRITE_Send, WRITE_Recv, READ_Send, READ_Recv. The WRITE problem was
// solved on the reversed graph, so entry in source order is RES_out
// there and vice versa.
func (a *Analysis) slotsAt(entry bool) []resSlot {
	var out []resSlot
	if a.Write != nil {
		out = append(out,
			resSlot{"WRITE", "Send", a.Write, "WRITE", core.Lazy, !entry, a.WriteInit},
			resSlot{"WRITE", "Recv", a.Write, "WRITE", core.Eager, !entry, a.WriteInit})
	}
	if a.Read != nil {
		out = append(out,
			resSlot{"READ", "Send", a.Read, "READ", core.Eager, entry, a.ReadInit},
			resSlot{"READ", "Recv", a.Read, "READ", core.Lazy, entry, a.ReadInit})
	}
	return out
}

// preOf renders node id as the 1-based preorder number `-mode graph`
// prints, always in original (source) orientation.
func (a *Analysis) preOf(id int) int { return a.Graph.Nodes[id].Pre + 1 }

// ExplainAll explains every node that places communication.
func (a *Analysis) ExplainAll() string {
	var sb strings.Builder
	for _, n := range a.Graph.Preorder {
		s, err := a.ExplainNode(n.Pre + 1)
		if err != nil || !strings.Contains(s, ":") {
			continue
		}
		if strings.Contains(s, "no communication") {
			continue
		}
		sb.WriteString(s)
	}
	if sb.Len() == 0 {
		return "no communication placed anywhere\n"
	}
	return sb.String()
}

// ExplainNode reports why each communication statement is placed at
// the node numbered preNum (1-based preorder, as printed by
// `gnt -mode graph`).
func (a *Analysis) ExplainNode(preNum int) (string, error) {
	if preNum < 1 || preNum > len(a.Graph.Preorder) {
		return "", fmt.Errorf("comm: node %d out of range 1..%d", preNum, len(a.Graph.Preorder))
	}
	n := a.Graph.Preorder[preNum-1]
	var sb strings.Builder
	kind := ""
	if n.IsHeader {
		kind = ", loop header"
	}
	// the anchor is the same formatter internal/check's diagnostics use,
	// so explanations and GNT0xx findings point at identical positions
	fmt.Fprintf(&sb, "node %d @ %s (level %d%s):\n", preNum, cfg.Anchor(n.Block), n.Level, kind)
	wrote := false
	for _, entry := range []bool{true, false} {
		boundary := "exit"
		if entry {
			boundary = "entry"
		}
		for _, sl := range a.slotsAt(entry) {
			if a.explainSlot(&sb, sl, n, boundary) {
				wrote = true
			}
		}
	}
	if !wrote {
		sb.WriteString("  no communication placed at this node\n")
	}
	return sb.String(), nil
}

// explainSlot explains every item the slot's RES set places at node n,
// returning whether anything was placed.
func (a *Analysis) explainSlot(sb *strings.Builder, sl resSlot, n *interval.Node, boundary string) bool {
	p := sl.sol.Place(sl.mode)
	id := n.ID
	set := p.ResOut[id]
	eq, res := "Eq.15", "RES_out"
	if sl.resIn {
		set = p.ResIn[id]
		eq, res = "Eq.14", "RES_in"
	}
	if set == nil || set.IsEmpty() {
		return false
	}
	graphNote := ""
	if sl.sol.Graph.Reversed {
		graphNote = ", reversed graph"
	}
	fmt.Fprintf(sb, "  %s %s_%s  [%s %s(%s)%s]\n",
		boundary, sl.op, sl.half, eq, res, sl.mode, graphNote)
	name := a.ItemNames()
	set.ForEach(func(item int) {
		fmt.Fprintf(sb, "    %s:\n", name(item))
		if red, ok := a.Reduce[item]; ok && sl.op == "WRITE" {
			fmt.Fprintf(sb, "      reduction item (%s): owners combine partial results\n", red)
		}
		a.explainNeed(sb, sl, n, item)
		a.explainMissing(sb, sl, n, item)
	})
	return true
}

// explainNeed names the consumers that make the item needed here: for
// RES_in the node's own TAKE/TAKEN_in, for RES_out the successors
// whose GIVEN_in demands it (Eq. 15's union term).
func (a *Analysis) explainNeed(sb *strings.Builder, sl resSlot, n *interval.Node, item int) {
	s, id := sl.sol, n.ID
	if sl.resIn {
		switch {
		case has(s.Take[id], item):
			fmt.Fprintf(sb, "      needed: TAKE(%d) — consumed at this node\n", a.preOf(id))
		case has(s.TakenIn[id], item):
			fmt.Fprintf(sb, "      needed: TAKEN_in(%d) — consumed on every path from here (consumers: %s)\n",
				a.preOf(id), a.consumers(sl, item))
		default:
			// lazy GIVEN also unions TAKE only; eager TAKEN_in — reaching
			// here means the item came through GIVEN's other terms
			fmt.Fprintf(sb, "      needed: inherited availability (GIVEN) without a local consumer\n")
		}
		return
	}
	p := s.Place(sl.mode)
	var needs []string
	for _, e := range n.Out {
		if interval.FJ.Has(e.Type) && has(p.GivenIn[e.To.ID], item) {
			needs = append(needs, fmt.Sprintf("%d", a.preOf(e.To.ID)))
		}
	}
	if len(needs) > 0 {
		fmt.Fprintf(sb, "      needed: GIVEN_in of successor node(s) %s (consumers: %s)\n",
			strings.Join(needs, ", "), a.consumers(sl, item))
	}
}

// explainMissing names why the item is not already available — the
// subtracted term of the placing equation.
func (a *Analysis) explainMissing(sb *strings.Builder, sl resSlot, n *interval.Node, item int) {
	s, id := sl.sol, n.ID
	p := s.Place(sl.mode)
	if !sl.resIn {
		// Eq. 15 subtracts GIVEN_out(n)
		if has(s.Steal[id], item) {
			fmt.Fprintf(sb, "      missing: STEAL(%d) voids it at this node (Eq.13 subtracts it from GIVEN_out)\n", a.preOf(id))
		} else {
			fmt.Fprintf(sb, "      missing: not in GIVEN_out(%d) — never available at this node's exit\n", a.preOf(id))
		}
		return
	}
	// Eq. 14 subtracts GIVEN_in(n): find the Eq. 11 terms that fail.
	var lacking []string
	fj := 0
	for _, e := range n.In {
		if !interval.FJ.Has(e.Type) {
			continue
		}
		fj++
		if !has(p.GivenOut[e.From.ID], item) {
			lacking = append(lacking, fmt.Sprintf("%d", a.preOf(e.From.ID)))
		}
	}
	switch {
	case fj == 0 && n.EntryHeader == nil:
		fmt.Fprintf(sb, "      missing: no predecessors — nothing can be available on entry\n")
	case fj == 0:
		h := n.EntryHeader
		if has(s.Steal[h.ID], item) {
			fmt.Fprintf(sb, "      missing: enclosing loop (header %d) may void it, so header availability is not inherited\n", a.preOf(h.ID))
		} else {
			fmt.Fprintf(sb, "      missing: not available at enclosing header %d\n", a.preOf(h.ID))
		}
	case len(lacking) > 0:
		fmt.Fprintf(sb, "      missing: predecessor node(s) %s do not guarantee it on exit (Eq.11 meet fails)\n",
			strings.Join(lacking, ", "))
	default:
		fmt.Fprintf(sb, "      missing: partially available only (Eq.11 join term withholds it from GIVEN_in)\n")
	}
}

// consumers lists, in original preorder numbering, every node whose
// TAKE_init contains the item — the statements whose data demand
// ultimately forced this placement.
func (a *Analysis) consumers(sl resSlot, item int) string {
	var pres []int
	for id := range sl.init.Take {
		if has(sl.init.Take[id], item) {
			pres = append(pres, a.preOf(id))
		}
	}
	if len(pres) == 0 {
		return "none recorded"
	}
	sort.Ints(pres)
	out := make([]string, len(pres))
	for i, p := range pres {
		out[i] = fmt.Sprintf("node %d", p)
	}
	return strings.Join(out, ", ")
}

func has(s *bitset.Set, item int) bool {
	return s != nil && s.Has(item)
}
