package comm

import (
	"strings"
	"testing"

	"givetake/internal/interp"
)

// Reduction communication (paper §6): accumulations into distributed
// data skip the gather and emit a reducing write-back.

const scatterAddSrc = `
distributed x(4000)
real a(4000), w(4000)

do i = 1, n
    x(a(i)) = x(a(i)) + w(i)
enddo
do k = 1, n
    ... = x(k)
enddo
`

func TestReductionDetected(t *testing.T) {
	a, err := AnalyzeSource(scatterAddSrc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for id, op := range a.Reduce {
		if op != "SUM" {
			t.Fatalf("item %d: reduce op %q, want SUM", id, op)
		}
		if got := a.Universe.Items[id].String(); got != "x(a(1:n))" {
			t.Fatalf("reduction item = %s, want x(a(1:n))", got)
		}
		found = true
	}
	if !found {
		t.Fatal("scatter-add not classified as a reduction")
	}
}

func TestReductionPlacement(t *testing.T) {
	a, err := AnalyzeSource(scatterAddSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := a.AnnotatedSource(DefaultOptions)
	if strings.Contains(text, "READ_Send{x(a(1:n))}") {
		t.Fatalf("reduction should not gather its own item:\n%s", text)
	}
	if !strings.Contains(text, "WRITE_SUM_Send{x(a(1:n))}") ||
		!strings.Contains(text, "WRITE_SUM_Recv{x(a(1:n))}") {
		t.Fatalf("missing reducing write-back:\n%s", text)
	}
	// the accumulation loop contains no communication at all
	lines := strings.Split(text, "\n")
	inLoop := false
	for _, l := range lines {
		trim := strings.TrimSpace(l)
		if strings.HasPrefix(trim, "do i") {
			inLoop = true
		}
		if inLoop && strings.HasPrefix(trim, "enddo") {
			break
		}
		if inLoop && (strings.Contains(trim, "READ") || strings.Contains(trim, "WRITE")) {
			t.Fatalf("communication inside the accumulation loop:\n%s", text)
		}
	}
	// the later read of x(1:n) still happens (the reduction stole it)
	if !strings.Contains(text, "READ_Send{x(1:n)}") {
		t.Fatalf("re-read of reduced data missing:\n%s", text)
	}
}

func TestReductionProductDetected(t *testing.T) {
	a, err := AnalyzeSource(`
distributed x(100)
real w(100)

do i = 1, n
    x(5) = x(5) * w(i)
enddo
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reduce) != 1 {
		t.Fatalf("reduce items = %d, want 1", len(a.Reduce))
	}
	for _, op := range a.Reduce {
		if op != "PROD" {
			t.Fatalf("op = %q, want PROD", op)
		}
	}
	if !strings.Contains(a.AnnotatedSource(DefaultOptions), "WRITE_PROD_Send{x(5)}") {
		t.Fatal("missing WRITE_PROD")
	}
}

// A plain read of the accumulated item elsewhere disqualifies the
// reduction: partial sums would be observed.
func TestReductionDisqualifiedByRead(t *testing.T) {
	a, err := AnalyzeSource(`
distributed x(100)
real a(100), w(100)

do i = 1, n
    x(a(i)) = x(a(i)) + w(i)
    t = x(a(i))
enddo
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reduce) != 0 {
		t.Fatalf("item read outside its accumulation must not reduce: %v", a.Reduce)
	}
	// falls back to gather + plain write-back
	text := a.AnnotatedSource(DefaultOptions)
	if !strings.Contains(text, "READ_Send{x(a(1:n))}") {
		t.Fatalf("plain fallback should gather:\n%s", text)
	}
	if strings.Contains(text, "WRITE_SUM") {
		t.Fatalf("no reduction comm expected:\n%s", text)
	}
}

// Mixed operators on one item disqualify it too.
func TestReductionDisqualifiedByMixedOps(t *testing.T) {
	a, err := AnalyzeSource(`
distributed x(100)
real w(100)

x(5) = x(5) + w(1)
x(5) = x(5) * w(2)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reduce) != 0 {
		t.Fatalf("mixed-operator item must not reduce: %v", a.Reduce)
	}
}

// Subtraction is not commutative-associative in this form: no reduction.
func TestReductionIgnoresSubtraction(t *testing.T) {
	a, err := AnalyzeSource(`
distributed x(100)
real w(100)

do i = 1, n
    x(5) = x(5) - w(i)
enddo
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reduce) != 0 {
		t.Fatalf("subtraction should not classify as reduction: %v", a.Reduce)
	}
}

func TestReductionDynamicBalance(t *testing.T) {
	a, err := AnalyzeSource(scatterAddSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := interp.Run(a.Annotate(DefaultOptions), interp.Config{N: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s, r := tr.UnmatchedSplit(); s != 0 || r != 0 {
		t.Fatalf("unbalanced: sends=%d recvs=%d", s, r)
	}
	// one reducing write + one read, not 2N element messages
	if tr.Messages() != 2 {
		t.Fatalf("messages = %d, want 2", tr.Messages())
	}
}
