// Package memopt instantiates GIVE-N-TAKE for the memory-hierarchy
// problems the paper's §6 predicts it generalizes to: software
// prefetching. Array references are consumers of their (value-numbered)
// sections, definitions produce them "for free" (write-allocate) while
// destroying overlapping stale copies, and the solver's EAGER solution
// issues PREFETCH operations as early as possible while the LAZY
// solution marks the latest point the data must be resident — the same
// production region that split a READ into send and receive now splits a
// memory access into prefetch and demand.
//
// Everything below reuses the communication machinery: the section
// universe, the solver, and the trace-based evaluation; only the
// vocabulary (PREFETCH instead of READ, cache-miss latency instead of
// message latency) changes. That one framework serves both is exactly
// the paper's point.
package memopt

import (
	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/core"
	"givetake/internal/frontend"
	"givetake/internal/interp"
	"givetake/internal/interval"
	"givetake/internal/ir"
	"givetake/internal/place"
	"givetake/internal/sections"
	"givetake/internal/vn"
)

// Analysis is a solved prefetch-placement problem.
type Analysis struct {
	Prog     *ir.Program
	CFG      *cfg.Graph
	Graph    *interval.Graph
	Universe *sections.Universe
	Init     *core.Init
	Solution *core.Solution
}

// Analyze builds the prefetch problem for every array reference in the
// program (all arrays; distribution is irrelevant to a cache) and solves
// it as an EAGER/LAZY BEFORE problem.
func Analyze(prog *ir.Program) (*Analysis, error) {
	c, err := cfg.Build(prog)
	if err != nil {
		return nil, err
	}
	g, err := interval.FromCFG(c)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Prog: prog, CFG: c, Graph: g, Universe: sections.NewUniverse()}

	env := vn.NewEnv(a.Universe.Tab)
	ranges := map[string]sections.LoopRange{}
	type ev struct {
		def   bool
		block *cfg.Block
		item  *sections.Item
	}
	var events []ev

	var refs func(e ir.Expr, b *cfg.Block)
	refs = func(e ir.Expr, b *cfg.Block) {
		for _, ref := range ir.ArrayRefs(e) {
			if b == nil {
				continue
			}
			if it := a.Universe.ItemFor(ref.Name, ref.Subs, env, ranges); it != nil {
				events = append(events, ev{def: false, block: b, item: it})
			}
		}
	}
	var walk func(stmts []ir.Stmt)
	walk = func(stmts []ir.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ir.Assign:
				b := a.CFG.StmtBlock[s]
				refs(s.RHS, b)
				if lhs, ok := s.LHS.(*ir.ArrayRef); ok {
					for _, sub := range lhs.Subs {
						refs(sub, b)
					}
					if b != nil {
						if it := a.Universe.ItemFor(lhs.Name, lhs.Subs, env, ranges); it != nil {
							events = append(events, ev{def: true, block: b, item: it})
						}
					}
				} else if id, ok := s.LHS.(*ir.Ident); ok {
					env.Kill(id.Name)
				}
			case *ir.Do:
				h := a.CFG.LoopHeader[s]
				refs(s.Lo, h)
				refs(s.Hi, h)
				pop := env.PushLoop(s.Var, s.Lo, s.Hi, s.Step)
				old, had := ranges[s.Var]
				ranges[s.Var] = sections.LoopRange{Lo: s.Lo, Hi: s.Hi, Step: s.Step}
				walk(s.Body)
				pop()
				if had {
					ranges[s.Var] = old
				} else {
					delete(ranges, s.Var)
				}
			case *ir.If:
				refs(s.Cond, a.CFG.IfBranch[s])
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	walk(prog.Body)

	u := a.Universe.Size()
	a.Init = core.NewInit(len(g.Nodes))
	overlapping := func(it *sections.Item, same bool) *bitset.Set {
		s := bitset.New(u)
		for _, other := range a.Universe.Items {
			if (other.ID != it.ID || same) && a.Universe.MayOverlap(other, it) {
				s.Add(other.ID)
			}
		}
		return s
	}
	for _, e := range events {
		n := g.NodeFor(e.block)
		if n == nil {
			continue
		}
		if e.def {
			// write-allocate: the defined section becomes resident, but
			// overlapping prefetched copies go stale
			a.Init.AddGive(n, u, bitset.Of(u, e.item.ID))
			a.Init.AddSteal(n, u, overlapping(e.item, false))
		} else {
			a.Init.AddTake(n, u, bitset.Of(u, e.item.ID))
		}
	}
	a.Solution, err = core.Solve(g, u, a.Init)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// AnalyzeSource parses and analyzes program text.
func AnalyzeSource(src string) (*Analysis, error) {
	prog, err := frontend.Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(prog)
}

// Annotate inserts PREFETCH_Send (the eager issue point) and
// PREFETCH_Recv (the lazy demand fence: the latest point the data must
// be resident) into the program; the pair delimits the production region
// available for hiding the miss latency.
func (a *Analysis) Annotate() *ir.Program {
	return place.Annotate(a.Prog, a.CFG, func(b *cfg.Block, entry bool) []ir.Stmt {
		if b == nil {
			return nil
		}
		n := a.Graph.NodeFor(b)
		if n == nil {
			return nil
		}
		var out []ir.Stmt
		add := func(half string, set *bitset.Set) {
			if set.IsEmpty() {
				return
			}
			c := &ir.Comm{Op: "PREFETCH", Half: half}
			set.ForEach(func(i int) {
				c.Args = append(c.Args, a.Universe.Items[i].SectionExpr())
			})
			out = append(out, c)
		}
		if entry {
			add("Send", a.Solution.Eager.ResIn[n.ID])
			add("Recv", a.Solution.Lazy.ResIn[n.ID])
		} else {
			add("Send", a.Solution.Eager.ResOut[n.ID])
			add("Recv", a.Solution.Lazy.ResOut[n.ID])
		}
		return out
	})
}

// AnnotatedSource renders the annotated program.
func (a *Analysis) AnnotatedSource() string { return ir.ProgramString(a.Annotate()) }

// CacheModel estimates memory stalls from a trace of PREFETCH pairs.
type CacheModel struct {
	// MissLatency is the stall of an unhidden miss, in work units (one
	// interpreter step = one unit).
	MissLatency float64
}

// Stalls sums the exposed miss latency over all prefetch pairs: a demand
// arriving d steps after its issue stalls max(0, MissLatency − d).
func (m CacheModel) Stalls(tr *interp.Trace) float64 {
	type key struct{ args string }
	pending := map[key][]int64{}
	total := 0.0
	for _, e := range tr.Events {
		if e.Op != "PREFETCH" {
			continue
		}
		k := key{e.Args}
		switch e.Half {
		case "Send":
			pending[k] = append(pending[k], e.Step)
		case "Recv":
			q := pending[k]
			if len(q) == 0 {
				total += m.MissLatency // demand miss with no prefetch
				continue
			}
			issue := q[len(q)-1]
			pending[k] = q[:len(q)-1]
			if exposed := m.MissLatency - float64(e.Step-issue); exposed > 0 {
				total += exposed
			}
		}
	}
	return total
}
