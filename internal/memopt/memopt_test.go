package memopt

import (
	"strings"
	"testing"
	"testing/quick"

	"givetake/internal/core"
	"givetake/internal/interp"
	"givetake/internal/progen"
)

const stencilSrc = `
real u(4000), v(4000), coef(10)

do t = 1, 3
    do i = 1, n
        v(i) = u(i) * coef(1)
    enddo
    do i = 1, n
        u(i) = v(i) * coef(2)
    enddo
enddo
`

func TestPrefetchPlacement(t *testing.T) {
	a, err := AnalyzeSource(stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := a.AnnotatedSource()
	if !strings.Contains(text, "PREFETCH_Send{") {
		t.Fatalf("no prefetch issued:\n%s", text)
	}
	// coef(1) and coef(2) are loop-invariant: their prefetch hoists to
	// the very top (before the t-loop)
	head := strings.Split(text, "do t")[0]
	if !strings.Contains(head, "coef(1)") || !strings.Contains(head, "coef(2)") {
		t.Fatalf("invariant prefetches not hoisted to the top:\n%s", text)
	}
	// the placement satisfies the correctness criteria
	if vs := core.Verify(a.Solution, a.Init, core.VerifyConfig{MaxPaths: 800}); len(vs) > 0 {
		t.Fatalf("prefetch placement violates criteria: %v", vs[0])
	}
}

func TestPrefetchWriteAllocate(t *testing.T) {
	// v is written before it is read: the write allocates the section,
	// so no prefetch for v(1:n) is needed in the second loop of an
	// iteration... but the next t-iteration's u-read comes after u was
	// written, so u(1:n) also rides for free after the first trip.
	a, err := AnalyzeSource(`
real u(4000), v(4000)

do i = 1, n
    v(i) = 1
enddo
do i = 1, n
    u(i) = v(i)
enddo
`)
	if err != nil {
		t.Fatal(err)
	}
	text := a.AnnotatedSource()
	if strings.Contains(text, "PREFETCH_Send{v(1:n)}") {
		t.Fatalf("v(1:n) is write-allocated; prefetching it is redundant:\n%s", text)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	a, err := AnalyzeSource(stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := interp.Run(a.Annotate(), interp.Config{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	model := CacheModel{MissLatency: 50}
	stalls := model.Stalls(tr)
	// an all-demand-miss baseline: every Recv with no Send costs full
	// latency; count the recvs
	demand := 0.0
	for _, e := range tr.Events {
		if e.Op == "PREFETCH" && e.Half == "Recv" {
			demand += model.MissLatency
		}
	}
	if demand == 0 {
		t.Fatal("no prefetch pairs traced")
	}
	if stalls >= demand {
		t.Fatalf("prefetching hid nothing: stalls %.0f vs demand %.0f", stalls, demand)
	}
}

func TestPrefetchPropertyCriteria(t *testing.T) {
	f := func(seed int64) bool {
		prog := progen.Generate(seed, progen.Config{Stmts: 20, MaxDepth: 3, Arrays: true})
		a, err := Analyze(prog)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if vs := core.Verify(a.Solution, a.Init, core.VerifyConfig{MaxPaths: 600}); len(vs) > 0 {
			t.Logf("seed %d: %v", seed, vs[0])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
