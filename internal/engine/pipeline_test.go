package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"givetake/internal/comm"
	"givetake/internal/frontend"
	"givetake/internal/obs"
)

// gateCollector blocks the first parse span until released and counts
// every parse span begun — the probe the cancellation tests use to pin
// one item mid-stage and then prove no further parse ever starts.
type gateCollector struct {
	mu      sync.Mutex
	parses  int
	gate    chan struct{} // close to release the pinned parse
	started chan struct{} // closed when the first parse begins
	once    sync.Once
}

func (c *gateCollector) BeginSpan(name string, kv ...any) obs.EndFunc {
	if name == obs.SpanParse {
		c.mu.Lock()
		c.parses++
		c.mu.Unlock()
		c.once.Do(func() { close(c.started) })
		<-c.gate
	}
	return func(kv ...any) {}
}

func (c *gateCollector) Count(string, int64) {}

func (c *gateCollector) parseCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.parses
}

// TestMapCancelStopsLaunching is the regression test for Map ignoring
// its context: with one worker pinned, canceling must stop the launch
// loop — no body past the in-flight one starts, and the return value
// reports exactly how many launched.
func TestMapCancelStopsLaunching(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	block := make(chan struct{})
	first := make(chan struct{})
	var bodies atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		done <- e.Map(ctx, 10, func(ctx context.Context, i int) {
			bodies.Add(1)
			if i == 0 {
				close(first)
			}
			<-block
		})
	}()
	<-first // body 0 holds the only semaphore slot
	cancel()
	close(block)
	launched := <-done
	if launched != 1 {
		t.Fatalf("Map launched %d bodies after cancel, want only the in-flight one", launched)
	}
	if got := bodies.Load(); got != int64(launched) {
		t.Fatalf("Map reported %d launches but %d bodies ran", launched, got)
	}
}

// TestAnalyzeBatchCancelSheds is the batch-cancellation regression
// test: cancel while the first item is pinned mid-parse, and (a) no
// further parse ever starts — not for queued items, not for unsubmitted
// ones — and (b) the trailing slots carry context.Canceled instead of
// silently missing results.
func TestAnalyzeBatchCancelSheds(t *testing.T) {
	col := &gateCollector{gate: make(chan struct{}), started: make(chan struct{})}
	e := New(Config{
		Workers:      2,
		StageWorkers: StageWorkers{Parse: 1},
		StageQueue:   1,
	})
	defer e.Close()

	items := make([]BatchItem, 8)
	for i := range items {
		items[i] = BatchItem{Source: loopSrc}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []BatchResult, 1)
	go func() { done <- e.AnalyzeBatch(ctx, items, col) }()

	<-col.started // item 0 is pinned inside the parse stage
	cancel()
	close(col.gate)
	out := <-done

	if got := col.parseCount(); got != 1 {
		t.Fatalf("%d parse spans ran, want only the one in flight at cancel", got)
	}
	for i, r := range out {
		if r.Res != nil {
			r.Res.Release()
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("item %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestCanceledAnalyzeRunsNoSolves: a job whose context is already dead
// sheds before occupying anything — the pipeline path services zero
// stages and the pool path (PostSolve jobs) enqueues zero pool tasks.
func TestCanceledAnalyzeRunsNoSolves(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	prog, err := frontend.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := e.Analyze(ctx, Job{Prog: prog}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pipeline path: want context.Canceled, got %v", err)
	}
	for _, st := range e.PipelineStats() {
		if st.Items != 0 {
			t.Errorf("canceled job serviced %d items in stage %s, want 0", st.Items, st.Stage)
		}
	}

	hook := func(*comm.Analysis) {}
	if _, err := e.Analyze(ctx, Job{Prog: prog, PostSolve: hook}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pool path: want context.Canceled, got %v", err)
	}
	if n := e.Stats().Pool.Tasks; n != 0 {
		t.Fatalf("canceled jobs ran %d pool tasks, want 0", n)
	}
}

// TestPipelineThroughputTracksSlowestStage makes one stage 10× slower
// than the rest and checks the two properties the pipeline exists for:
// batch wall time tracks the slowest stage's serial floor — NOT the sum
// of all stages per item, which is what a barriered design would cost —
// and the queue-depth gauge reports the backlog piling up in front of
// the bottleneck.
func TestPipelineThroughputTracksSlowestStage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const (
		n    = 20
		fast = 2 * time.Millisecond
		slow = 20 * time.Millisecond // 10× the others
	)
	e := New(Config{
		Workers: 4,
		StageWorkers: StageWorkers{
			Parse: 1, CFGBuild: 1, IntervalReduce: 1,
			SectionUniverse: 1, Solve: 1, Check: 1, Render: 1,
		},
		StageQueue: 4,
	})
	defer e.Close()
	e.pipe.delay = func(stage string) {
		if stage == "solve" {
			time.Sleep(slow)
		} else {
			time.Sleep(fast)
		}
	}

	stop := make(chan struct{})
	var maxSolveQ atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d := int64(e.PipelineStats()[stageSolve].QueueDepth); d > maxSolveQ.Load() {
				maxSolveQ.Store(d)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{Source: loopSrc}
	}
	start := time.Now()
	out := e.AnalyzeBatch(context.Background(), items, nil)
	wall := time.Since(start)
	close(stop)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		r.Res.Release()
	}

	serial := n * (6*fast + slow) // what per-item stage barriers would cost
	floor := n * slow             // the slow stage alone, serviced serially
	if wall >= serial*9/10 {
		t.Errorf("no pipelining: wall %v within 10%% of the barriered cost %v", wall, serial)
	}
	if wall < floor {
		t.Errorf("wall %v beat the slowest stage's serial floor %v — the sleeps are broken", wall, floor)
	}
	if maxSolveQ.Load() == 0 {
		t.Error("queue-depth gauge never showed backlog at the slow solve stage")
	}
}
