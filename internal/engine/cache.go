package engine

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"givetake/internal/comm"
	"givetake/internal/journal"
	"givetake/internal/obs"
)

// Cached is one content-addressed result: the rendered response bytes
// plus the transport status they were served with. The engine treats it
// as opaque — byte-identity between a cold miss, a warm hit, and a
// single-flight follower is guaranteed because all three read the same
// stored bytes.
type Cached struct {
	Status int
	Body   []byte
}

// size is the accounting weight of one entry against the cache's byte
// bound: body plus key plus bookkeeping overhead.
func (c Cached) size(key string) int64 { return int64(len(c.Body)) + int64(len(key)) + 64 }

// CacheSource reports how a Do call obtained its result.
type CacheSource string

const (
	// CacheMiss: this call led the single-flight group and computed.
	CacheMiss CacheSource = "miss"
	// CacheHit: the stored bytes were returned without computing.
	CacheHit CacheSource = "hit"
	// CacheFollow: an identical request was already in flight; this
	// call waited and shared its bytes.
	CacheFollow CacheSource = "follow"
	// CacheBypass: the request was not cacheable (e.g. chaos injection)
	// and was computed outside the cache and single-flight group.
	CacheBypass CacheSource = "bypass"
)

// CacheKey derives the content address of one analysis request: a
// SHA-256 over a versioned, canonical encoding of the source text, the
// canonicalized analysis options, and any caller extras (execution
// parameters, request timeouts — anything that can change the rendered
// bytes). Invalidation is purely generational: keys never alias across
// schema versions because the version tag is hashed in, and a binary
// whose output format changes must bump cacheKeyVersion.
func CacheKey(source string, opt comm.Opts, extra ...string) string {
	h := sha256.New()
	io.WriteString(h, cacheKeyVersion)
	// comm.Opts is canonicalized field by field; adding a field to Opts
	// must extend this encoding or stale entries would alias.
	fmt.Fprintf(h, "\x00suppress_hoist=%t", opt.SuppressHoist)
	for _, x := range extra {
		fmt.Fprintf(h, "\x00%d:", len(x))
		io.WriteString(h, x)
	}
	fmt.Fprintf(h, "\x00src:%d:", len(source))
	io.WriteString(h, source)
	return hex.EncodeToString(h.Sum(nil))
}

const cacheKeyVersion = "gnt-engine/v1"

// CacheStats is a point-in-time snapshot of the result cache. Every
// snapshot is internally consistent: all counters are read — and, on
// the update side, written — under one lock, so a snapshot can never
// observe a stored entry whose miss has not been counted yet. The
// invariant Misses+Replayed >= Entries+Evictions holds in every
// snapshot (each resident entry was stored by exactly one counted miss
// or journal replay).
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Followers int64 `json:"followers"`
	Evictions int64 `json:"evictions"`
	// Replayed counts entries warmed from the journal at startup; they
	// are resident without a miss ever being counted.
	Replayed int64 `json:"replayed"`
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// HitRate is hits/(hits+misses), 0 when nothing was looked up.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cache is a byte-bounded LRU over Cached values. A nil cache (caching
// disabled) tolerates every method and stores nothing.
type cache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recent
	idx   map[string]*list.Element

	hits, misses, followers, evictions, replayed int64
}

type cacheEntry struct {
	key string
	val Cached
}

func newCache(maxBytes int64) *cache {
	if maxBytes <= 0 {
		return nil
	}
	return &cache{max: maxBytes, ll: list.New(), idx: map[string]*list.Element{}}
}

func (c *cache) get(key string) (Cached, bool) {
	if c == nil {
		return Cached{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		return Cached{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).val, true
}

// storeMiss atomically counts one single-flight miss and — when the
// computed value is storable — inserts it, under ONE lock acquisition.
// The store and its miss count used to be two separate critical
// sections, which let a /healthz snapshot land between them and report
// more resident entries than counted misses (hits < misses-adjusted
// totals, transiently). Returns how many entries were evicted.
func (c *cache) storeMiss(key string, val Cached, storable bool) (evicted int64) {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses++
	if storable {
		_, evicted = c.putLocked(key, val)
	}
	return evicted
}

// noteFollower counts one single-flight follower.
func (c *cache) noteFollower() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.followers++
	c.mu.Unlock()
}

// putReplay stores one journal-replayed entry, counting it as replayed
// rather than missed (no analysis ran). Returns evictions.
func (c *cache) putReplay(key string, val Cached) (evicted int64) {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var stored bool
	stored, evicted = c.putLocked(key, val)
	if stored {
		c.replayed++
	}
	return evicted
}

// putLocked stores val unless it alone exceeds the byte bound (or the
// key is already resident), evicting from the LRU tail until the bound
// holds again. Caller holds c.mu. Reports whether a new entry was
// stored and how many entries were evicted to make room.
func (c *cache) putLocked(key string, val Cached) (stored bool, evicted int64) {
	sz := val.size(key)
	if sz > c.max {
		return false, 0
	}
	if el, ok := c.idx[key]; ok {
		// a racing leader already stored it; refresh recency only (the
		// bytes are equivalent by key construction)
		c.ll.MoveToFront(el)
		return false, 0
	}
	c.idx[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	c.bytes += sz
	for c.bytes > c.max {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.idx, ent.key)
		c.bytes -= ent.val.size(ent.key)
		c.evictions++
		evicted++
	}
	return true, evicted
}

func (c *cache) snapshot() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Followers: c.followers,
		Evictions: c.evictions, Replayed: c.replayed,
		Entries: c.ll.Len(), Bytes: c.bytes, MaxBytes: c.max,
	}
}

// flight is one in-progress computation that followers wait on.
type flight struct {
	done chan struct{}
	val  Cached
	err  error
}

// Do returns the content-addressed result for key: from the cache when
// stored, from an identical in-flight computation when one exists
// (single-flight — a thundering herd of identical requests costs one
// compute), or by running compute as the group leader. compute's second
// result reports whether its value is deterministic and may be stored;
// non-cacheable values still dedup concurrent identical requests.
//
// A follower whose leader was canceled does not inherit the
// cancellation: it retries and becomes the next leader, so one
// impatient client cannot fail the herd behind it.
//
// A stored value is also appended to the durable journal (when one is
// configured): the fill path is exactly the journal's bypass rule —
// whatever compute vetoes as non-cacheable (chaos injection, deadline-
// shaped responses) never reaches storage either.
func (e *Engine) Do(ctx context.Context, key string, compute func(context.Context) (Cached, bool, error)) (Cached, CacheSource, error) {
	for {
		if val, ok := e.cache.get(key); ok {
			obs.Count(e.cfg.Collector, obs.CounterCacheHit, 1)
			return val, CacheHit, nil
		}
		e.mu.Lock()
		if fl, ok := e.flights[key]; ok {
			e.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return Cached{}, CacheFollow, ctx.Err()
			}
			if fl.err != nil && isContextErr(fl.err) && ctx.Err() == nil {
				continue // leader was canceled, not us: take over
			}
			e.cache.noteFollower()
			obs.Count(e.cfg.Collector, obs.CounterCacheFollow, 1)
			return fl.val, CacheFollow, fl.err
		}
		fl := &flight{done: make(chan struct{})}
		e.flights[key] = fl
		e.mu.Unlock()

		val, cacheable, err := compute(ctx)
		fl.val, fl.err = val, err

		e.mu.Lock()
		delete(e.flights, key)
		e.mu.Unlock()
		close(fl.done)

		storable := err == nil && cacheable
		// the miss and its store commit under one cache lock, so a
		// concurrent stats snapshot can never see the entry without
		// its miss (the old two-step update could)
		if n := e.cache.storeMiss(key, val, storable); n > 0 {
			obs.Count(e.cfg.Collector, obs.CounterCacheEvict, n)
		}
		if storable {
			e.cfg.Journal.Append(journal.Record{Key: key, Status: val.Status, Body: val.Body})
		}
		obs.Count(e.cfg.Collector, obs.CounterCacheMiss, 1)
		return val, CacheMiss, err
	}
}

// WarmFromJournal replays the configured journal into the result
// cache: every verified (key, bytes) record becomes a resident entry,
// so a restarted node serves its pre-crash working set as cache hits
// instead of recomputing it into live traffic. Corrupt batches, torn
// tails, and truncated segments were already detected and skipped by
// the journal layer — they are counted in the returned stats and never
// admitted. ctx aborts a replay early (the cache keeps whatever was
// admitted so far). No-op without a journal.
func (e *Engine) WarmFromJournal(ctx context.Context) (journal.ReplayStats, error) {
	j := e.cfg.Journal
	if j == nil {
		return journal.ReplayStats{}, nil
	}
	start := time.Now()
	var evicted int64
	rs, err := j.Replay(func(r journal.Record) {
		if ctx.Err() != nil {
			return
		}
		evicted += e.cache.putReplay(r.Key, Cached{Status: r.Status, Body: r.Body})
	})
	rs.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	if n := evicted; n > 0 {
		obs.Count(e.cfg.Collector, obs.CounterCacheEvict, n)
	}
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	return rs, err
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
