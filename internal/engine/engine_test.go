package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"givetake/internal/comm"
	"givetake/internal/frontend"
)

const loopSrc = `distributed x(1000)
real y(1000)

do i = 1, n
    y(i) = x(i) + 1
enddo
`

// corpusSources loads every .f program of the repo corpus.
func corpusSources(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	root := filepath.Join("..", "..", "testdata")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".f") {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[path] = string(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty corpus")
	}
	return out
}

// TestAnalyzeMatchesSequential proves the task-parallel pipeline is
// observationally identical to the sequential one on the whole corpus:
// same annotated source, same verification verdict and diagnostics.
func TestAnalyzeMatchesSequential(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()
	for path, src := range corpusSources(t) {
		prog1, err := frontend.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		prog2, _ := frontend.Parse(src)

		seq, err := comm.AnalyzeOpts(context.Background(), prog1, nil, comm.Opts{})
		if err != nil {
			t.Fatalf("%s: sequential: %v", path, err)
		}
		seqCheck, err := seq.CheckPlacementCtx(context.Background(), nil)
		if err != nil {
			t.Fatalf("%s: sequential check: %v", path, err)
		}

		res, err := e.Analyze(context.Background(), Job{Prog: prog2})
		if err != nil {
			t.Fatalf("%s: engine: %v", path, err)
		}
		gotAnn := res.Analysis.AnnotatedSource(comm.DefaultOptions)
		wantAnn := seq.AnnotatedSource(comm.DefaultOptions)
		if gotAnn != wantAnn {
			t.Errorf("%s: parallel annotation differs from sequential:\n--- got\n%s\n--- want\n%s",
				path, gotAnn, wantAnn)
		}
		if got, want := len(res.Check.Diagnostics), len(seqCheck.Diagnostics); got != want {
			t.Errorf("%s: diagnostics %d != sequential %d", path, got, want)
		}
		for i := range res.Check.Diagnostics {
			if res.Check.Diagnostics[i].String() != seqCheck.Diagnostics[i].String() {
				t.Errorf("%s: diagnostic %d differs: %s vs %s",
					path, i, res.Check.Diagnostics[i], seqCheck.Diagnostics[i])
			}
		}
		res.Release()
	}
}

// TestArenaReuseAcrossJobs runs the same program repeatedly through one
// engine, releasing between runs, and asserts results stay correct —
// stale arena bits leaking into a later solve would corrupt the
// annotation or the verification.
func TestArenaReuseAcrossJobs(t *testing.T) {
	e := New(Config{Workers: 1}) // one worker: maximal arena reuse
	defer e.Close()
	var want string
	for i := 0; i < 8; i++ {
		prog, err := frontend.Parse(loopSrc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Analyze(context.Background(), Job{Prog: prog})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Analysis.AnnotatedSource(comm.DefaultOptions)
		if !res.Check.Ok() {
			t.Fatalf("run %d failed verification: %v", i, res.Check.Errors())
		}
		res.Release()
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("run %d annotation drifted after arena reuse:\n%s\nwant:\n%s", i, got, want)
		}
	}
}

// TestPostSolvePanicPropagates: a panic in the PostSolve hook reaches
// the caller (the serve ladder's stage boundary catches it there) and
// does not leak arenas or wedge the pool.
func TestPostSolvePanicPropagates(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	prog, err := frontend.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("PostSolve panic did not propagate")
			}
		}()
		_, _ = e.Analyze(context.Background(), Job{
			Prog:      prog,
			PostSolve: func(*comm.Analysis) { panic("chaos") },
		})
	}()
	// the engine still works afterwards
	prog2, _ := frontend.Parse(loopSrc)
	res, err := e.Analyze(context.Background(), Job{Prog: prog2})
	if err != nil || !res.Check.Ok() {
		t.Fatalf("engine wedged after hook panic: %v", err)
	}
	res.Release()
}

// TestPoolPanicBecomesError: a panicking pool task surfaces as a
// *PanicError, not a process crash, and the panic counter records it.
func TestPoolPanicBecomesError(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	err := e.run(context.Background(), func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("want *PanicError(boom), got %v", err)
	}
	if e.Stats().Pool.Panics != 1 {
		t.Fatalf("panic counter = %d, want 1", e.Stats().Pool.Panics)
	}
	if err := e.run(context.Background(), func() error { return nil }); err != nil {
		t.Fatalf("worker died after panic: %v", err)
	}
}

// TestAnalyzeBatch analyzes the corpus as one batch and checks every
// program verified, plus per-item error isolation for a bad program.
func TestAnalyzeBatch(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()
	var items []BatchItem
	for _, src := range corpusSources(t) {
		items = append(items, BatchItem{Source: src})
	}
	bad := len(items)
	items = append(items, BatchItem{Source: "do i = oops"})

	out := e.AnalyzeBatch(context.Background(), items, nil)
	for i, r := range out {
		if i == bad {
			if r.Err == nil {
				t.Error("malformed batch item should carry its parse error")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("item %d: %v", i, r.Err)
			continue
		}
		if !r.Res.Check.Ok() {
			t.Errorf("item %d failed verification: %v", i, r.Res.Check.Errors())
		}
		r.Res.Release()
	}
}

// TestMapBoundsFanOut: Map never runs more than Workers bodies at once.
func TestMapBoundsFanOut(t *testing.T) {
	e := New(Config{Workers: 3})
	defer e.Close()
	var mu sync.Mutex
	cur, peak := 0, 0
	e.Map(context.Background(), 20, func(ctx context.Context, i int) {
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		mu.Lock()
		cur--
		mu.Unlock()
	})
	if peak > 3 {
		t.Fatalf("fan-out peak %d exceeds worker bound 3", peak)
	}
}

// TestAnalyzeCancellation: a canceled context aborts the scheduled
// solves with the context error.
func TestAnalyzeCancellation(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	prog, err := frontend.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Analyze(ctx, Job{Prog: prog}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
