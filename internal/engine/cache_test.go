package engine

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"givetake/internal/comm"
)

// TestCacheKeyDiscriminates: every input that can change the rendered
// bytes must change the key; identical inputs must collide.
func TestCacheKeyDiscriminates(t *testing.T) {
	base := CacheKey("src", comm.Opts{})
	if CacheKey("src", comm.Opts{}) != base {
		t.Fatal("identical inputs must share a key")
	}
	variants := []string{
		CacheKey("src2", comm.Opts{}),
		CacheKey("src", comm.Opts{SuppressHoist: true}),
		CacheKey("src", comm.Opts{}, "execute=true"),
		CacheKey("src", comm.Opts{}, "n=8"),
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Fatalf("variant %d collides", i)
		}
		seen[v] = true
	}
	// extras must not concatenate ambiguously: ("ab","c") != ("a","bc")
	if CacheKey("s", comm.Opts{}, "ab", "c") == CacheKey("s", comm.Opts{}, "a", "bc") {
		t.Fatal("extra-field framing is ambiguous")
	}
}

// TestDoHitMissFollow drives the three cache sources and checks the
// bytes are identical in all of them.
func TestDoHitMissFollow(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	key := CacheKey(loopSrc, comm.Opts{})
	var computes atomic.Int64
	compute := func(ctx context.Context) (Cached, bool, error) {
		computes.Add(1)
		return Cached{Status: 200, Body: []byte(`{"ok":true}`)}, true, nil
	}

	cold, src, err := e.Do(context.Background(), key, compute)
	if err != nil || src != CacheMiss {
		t.Fatalf("cold: src=%v err=%v", src, err)
	}
	warm, src, err := e.Do(context.Background(), key, compute)
	if err != nil || src != CacheHit {
		t.Fatalf("warm: src=%v err=%v", src, err)
	}
	if !bytes.Equal(cold.Body, warm.Body) || cold.Status != warm.Status {
		t.Fatal("warm hit must be byte-identical to cold miss")
	}
	if computes.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computes.Load())
	}
	st := e.Stats().Cache
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
}

// TestSingleFlight: a thundering herd of identical requests costs
// exactly one compute — concurrent arrivals share the leader's flight,
// stragglers hit the cache — and every request gets identical bytes.
func TestSingleFlight(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()
	key := CacheKey("herd", comm.Opts{})
	leaderIn := make(chan struct{})
	gate := make(chan struct{})
	var computes atomic.Int64
	compute := func(ctx context.Context) (Cached, bool, error) {
		computes.Add(1)
		close(leaderIn)
		<-gate
		return Cached{Status: 200, Body: []byte("herd-result")}, true, nil
	}

	const herd = 16
	results := make([]Cached, herd)
	sources := make([]CacheSource, herd)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the leader: first in, blocks inside compute
		defer wg.Done()
		results[0], sources[0], _ = e.Do(context.Background(), key, compute)
	}()
	<-leaderIn
	wg.Add(herd - 1)
	for i := 1; i < herd; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], sources[i], _ = e.Do(context.Background(), key, compute)
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("herd of %d computed %d times, want 1", herd, n)
	}
	if sources[0] != CacheMiss {
		t.Fatalf("leader source = %v, want miss", sources[0])
	}
	for i := 1; i < herd; i++ {
		if !bytes.Equal(results[i].Body, results[0].Body) {
			t.Fatalf("request %d bytes differ from leader", i)
		}
		if sources[i] != CacheFollow && sources[i] != CacheHit {
			t.Fatalf("request %d source = %v, want follow or hit", i, sources[i])
		}
	}
}

// TestFollowerTakesOverCanceledLeader: when the leader's context dies
// mid-compute, a follower with a live context retries instead of
// inheriting the cancellation.
func TestFollowerTakesOverCanceledLeader(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	key := CacheKey("takeover", comm.Opts{})
	leaderIn := make(chan struct{})
	var calls atomic.Int64
	leaderCtx, cancelLeader := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := e.Do(leaderCtx, key, func(ctx context.Context) (Cached, bool, error) {
			calls.Add(1)
			close(leaderIn)
			<-ctx.Done()
			return Cached{}, false, ctx.Err()
		})
		if err == nil {
			t.Error("canceled leader should fail")
		}
	}()

	<-leaderIn
	done := make(chan struct{})
	go func() {
		defer close(done)
		val, _, err := e.Do(context.Background(), key, func(ctx context.Context) (Cached, bool, error) {
			calls.Add(1)
			return Cached{Status: 200, Body: []byte("second-try")}, true, nil
		})
		if err != nil || string(val.Body) != "second-try" {
			t.Errorf("takeover failed: %q %v", val.Body, err)
		}
	}()
	cancelLeader()
	wg.Wait()
	<-done
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want leader + takeover = 2", calls.Load())
	}
}

// TestCacheEvictionBound fills the cache past its byte bound and checks
// the bound holds, oldest entries go first, and evictions are counted.
func TestCacheEvictionBound(t *testing.T) {
	const maxBytes = 4096
	e := New(Config{Workers: 1, CacheBytes: maxBytes})
	defer e.Close()
	body := bytes.Repeat([]byte("x"), 900)
	for i := 0; i < 12; i++ {
		key := CacheKey(fmt.Sprintf("prog-%d", i), comm.Opts{})
		_, _, _ = e.Do(context.Background(), key, func(ctx context.Context) (Cached, bool, error) {
			return Cached{Status: 200, Body: body}, true, nil
		})
	}
	st := e.Stats().Cache
	if st.Bytes > maxBytes {
		t.Fatalf("cache holds %d bytes, bound %d", st.Bytes, maxBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("filling past the bound must evict")
	}
	// oldest entry evicted, newest retained
	if _, ok := e.cache.get(CacheKey("prog-0", comm.Opts{})); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := e.cache.get(CacheKey("prog-11", comm.Opts{})); !ok {
		t.Fatal("newest entry should be cached")
	}
	// an entry larger than the whole bound is refused outright
	_, _, _ = e.Do(context.Background(), CacheKey("huge", comm.Opts{}),
		func(ctx context.Context) (Cached, bool, error) {
			return Cached{Status: 200, Body: bytes.Repeat([]byte("y"), maxBytes+1)}, true, nil
		})
	if _, ok := e.cache.get(CacheKey("huge", comm.Opts{})); ok {
		t.Fatal("oversized value must not be cached")
	}
	if got := e.Stats().Cache.Bytes; got > maxBytes {
		t.Fatalf("bound broken after oversized put: %d", got)
	}
}

// TestDoNotCacheable: compute can veto storage (nondeterministic
// responses) while still deduplicating concurrent identical requests.
func TestDoNotCacheable(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	key := CacheKey("veto", comm.Opts{})
	var computes atomic.Int64
	compute := func(ctx context.Context) (Cached, bool, error) {
		computes.Add(1)
		return Cached{Status: 500, Body: []byte("transient")}, false, nil
	}
	for i := 0; i < 3; i++ {
		if _, src, _ := e.Do(context.Background(), key, compute); src != CacheMiss {
			t.Fatalf("call %d: src=%v, want miss every time", i, src)
		}
	}
	if computes.Load() != 3 {
		t.Fatalf("vetoed value was cached: %d computes", computes.Load())
	}
}
