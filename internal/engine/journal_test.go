package engine

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"givetake/internal/comm"
	"givetake/internal/journal"
)

// TestJournalRestartByteIdentity: results computed through one engine
// survive a graceful shutdown in the journal and come back, byte-
// identical, as cache hits in a fresh engine warmed by replay — without
// compute ever running again.
func TestJournalRestartByteIdentity(t *testing.T) {
	mb := journal.NewMemBackend()
	j, err := journal.Open(journal.Config{Backend: mb, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Config{Workers: 2, Journal: j})
	want := map[string]Cached{}
	for i := 0; i < 25; i++ {
		key := CacheKey(fmt.Sprintf("prog-%d", i), comm.Opts{})
		body := []byte(fmt.Sprintf(`{"result":%d,"pad":"xxxxxxxxxxxxxxxx"}`, i))
		val, src, err := e1.Do(context.Background(), key, func(context.Context) (Cached, bool, error) {
			return Cached{Status: 200, Body: body}, true, nil
		})
		if err != nil || src != CacheMiss {
			t.Fatalf("fill %d: src=%v err=%v", i, src, err)
		}
		want[key] = val
	}
	e1.Close()
	if err := j.Close(); err != nil { // graceful drain: pending batch seals
		t.Fatal(err)
	}

	j2, err := journal.Open(journal.Config{Backend: mb})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	e2 := New(Config{Workers: 2, Journal: j2})
	defer e2.Close()
	rs, err := e2.WarmFromJournal(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Records != 25 || rs.Corrupt() {
		t.Fatalf("replay stats %+v, want 25 clean records", rs)
	}
	if st := e2.Stats().Cache; st.Replayed != 25 || st.Entries != 25 {
		t.Fatalf("warm cache stats %+v, want 25 replayed entries", st)
	}
	for key, w := range want {
		got, src, err := e2.Do(context.Background(), key, func(context.Context) (Cached, bool, error) {
			t.Fatalf("compute ran for %q after warm replay", key)
			return Cached{}, false, nil
		})
		if err != nil || src != CacheHit {
			t.Fatalf("warm %q: src=%v err=%v", key, src, err)
		}
		if got.Status != w.Status || !bytes.Equal(got.Body, w.Body) {
			t.Fatalf("warm bytes for %q differ from originally served", key)
		}
	}
}

// TestJournalBypassesNonCacheable: values compute vetoes as non-
// cacheable (chaos injections, deadline-shaped responses) never reach
// the journal, and neither do errors.
func TestJournalBypassesNonCacheable(t *testing.T) {
	mb := journal.NewMemBackend()
	j, err := journal.Open(journal.Config{Backend: mb, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2, Journal: j})
	defer e.Close()

	e.Do(context.Background(), CacheKey("chaos", comm.Opts{}), func(context.Context) (Cached, bool, error) {
		return Cached{Status: 500, Body: []byte("chaos")}, false, nil
	})
	e.Do(context.Background(), CacheKey("boom", comm.Opts{}), func(context.Context) (Cached, bool, error) {
		return Cached{}, true, fmt.Errorf("analysis failed")
	})
	e.Do(context.Background(), CacheKey("good", comm.Opts{}), func(context.Context) (Cached, bool, error) {
		return Cached{Status: 200, Body: []byte("good")}, true, nil
	})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	names, _ := mb.Segments()
	var keys []string
	if _, err := journal.Replay(mb, names, func(r journal.Record) { keys = append(keys, r.Key) }); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != CacheKey("good", comm.Opts{}) {
		t.Fatalf("journal holds %v, want only the storable result", keys)
	}
}

// TestCacheStatsInvariantUnderHammer is the regression test for the
// stats race: misses and their stores used to commit in two separate
// critical sections, so a concurrent snapshot could observe a resident
// entry whose miss was not counted yet. Now every snapshot taken while
// a batch of concurrent fills, hits, and replays is in flight must
// satisfy Misses+Replayed >= Entries+Evictions.
func TestCacheStatsInvariantUnderHammer(t *testing.T) {
	mb := journal.NewMemBackend()
	j, err := journal.Open(journal.Config{Backend: mb, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// small cache bound forces constant eviction alongside the fills
	e := New(Config{Workers: 4, CacheBytes: 16 << 10, Journal: j})
	defer e.Close()

	stop := make(chan struct{})
	var snapErr error
	var snapOnce sync.Once
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.Stats().Cache
			if st.Misses+st.Replayed < int64(st.Entries)+st.Evictions {
				snapOnce.Do(func() {
					snapErr = fmt.Errorf("snapshot violates invariant: %+v", st)
				})
				return
			}
		}
	}()

	const workers, per = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// half the keyspace collides across workers: hits and
				// followers mix with misses and evictions
				key := CacheKey(fmt.Sprintf("hammer-%d", (w*per+i)%(workers*per/2)), comm.Opts{})
				body := bytes.Repeat([]byte{byte(i)}, 256+i%512)
				e.Do(context.Background(), key, func(context.Context) (Cached, bool, error) {
					return Cached{Status: 200, Body: body}, true, nil
				})
				if i%97 == 0 {
					// replay into the live cache mid-hammer: putReplay
					// must hold the same invariant
					e.WarmFromJournal(context.Background())
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	st := e.Stats().Cache
	if st.Misses+st.Replayed < int64(st.Entries)+st.Evictions {
		t.Fatalf("final stats violate invariant: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("hammer never evicted (cache bound too large to exercise the race): %+v", st)
	}
}

// TestWarmFromJournalNil: warming without a journal is a clean no-op.
func TestWarmFromJournalNil(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	rs, err := e.WarmFromJournal(context.Background())
	if err != nil || rs.Records != 0 {
		t.Fatalf("nil journal warm: %+v, %v", rs, err)
	}
}
