// Package engine is the concurrent analysis engine behind the serving
// and batch paths: it turns the sequential GIVE-N-TAKE pipeline into
// schedulable tasks and runs the independent halves of each request in
// parallel.
//
// The task decomposition follows the data dependences of the pipeline
// (comm.Build documents why the halves are independent):
//
//	cfg-build ──┬── READ/BEFORE solve ───── verify READ ──┬── merge
//	            └── reverse + WRITE solve ─ verify WRITE ─┘
//
// Three mechanisms make the engine production-shaped:
//
//   - a bounded worker pool with panic isolation: leaf tasks (solves,
//     verifications) run on a fixed set of workers, a panicking task is
//     returned as a structured *PanicError, and per-task bit-vector
//     slabs are carved from leased bitset.Arena buffers so steady-state
//     allocation stays flat across requests;
//
//   - a content-addressed result cache: rendered response bytes keyed
//     by SHA-256 of source + canonicalized options (CacheKey), bounded
//     in bytes with LRU eviction, with single-flight deduplication so a
//     thundering herd of identical requests costs one analysis;
//
//   - a batch path: AnalyzeBatch and Map fan independent programs out
//     over the pool, so corpus throughput scales with cores instead of
//     being pinned to one sequential pipeline.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"givetake/internal/bitset"
	"givetake/internal/check"
	"givetake/internal/comm"
	"givetake/internal/frontend"
	"givetake/internal/ir"
	"givetake/internal/journal"
	"givetake/internal/obs"
)

// DefaultCacheBytes bounds the result cache when Config.CacheBytes is
// zero.
const DefaultCacheBytes int64 = 32 << 20

// Config parameterizes an Engine.
type Config struct {
	// Workers is the size of the leaf-task pool and the fan-out bound
	// of Map/AnalyzeBatch; zero means GOMAXPROCS.
	Workers int
	// CacheBytes bounds the result cache; zero means DefaultCacheBytes,
	// negative disables caching (single-flight still dedups).
	CacheBytes int64
	// Collector receives engine-level counters (cache hit/miss/evict,
	// pool tasks/panics); nil records nothing.
	Collector obs.Collector
	// Journal, when non-nil, makes cache fills durable: every storable
	// result Do computes is appended for group commit, and
	// WarmFromJournal replays the verified records into the cache at
	// startup. The engine never flushes or closes the journal — its
	// lifecycle (drain on shutdown, abort on crash) belongs to the
	// owner.
	Journal *journal.Journal
}

// Engine schedules analysis pipelines over a worker pool and serves
// repeated requests from a content-addressed cache. Create with New;
// an Engine is safe for concurrent use and runs until Close.
type Engine struct {
	cfg    Config
	tasks  chan func()
	wg     sync.WaitGroup
	arenas sync.Pool

	mu      sync.Mutex
	flights map[string]*flight
	cache   *cache

	tasksRun   atomic.Int64
	taskPanics atomic.Int64
	running    atomic.Int64
	admitWon   atomic.Int64
	admitShed  atomic.Int64
	closed     atomic.Bool
}

// New builds an Engine and starts its workers.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	e := &Engine{
		cfg:     cfg,
		tasks:   make(chan func()),
		flights: map[string]*flight{},
		cache:   newCache(cfg.CacheBytes),
	}
	e.arenas.New = func() any { return new(bitset.Arena) }
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Close stops the workers after draining queued tasks. Only useful in
// tests; a serving engine lives for the process.
func (e *Engine) Close() {
	if e.closed.CompareAndSwap(false, true) {
		close(e.tasks)
		e.wg.Wait()
	}
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

func (e *Engine) worker() {
	defer e.wg.Done()
	for fn := range e.tasks {
		fn()
	}
}

// PanicError is a leaf-task panic converted to an error at the pool
// boundary, so one poisoned request degrades instead of killing the
// process. The serving layer maps it to a "panic" ladder outcome.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string { return fmt.Sprintf("recovered panic: %v", p.Value) }

// run executes fn on the pool and waits for it, capturing panics.
func (e *Engine) run(fn func() error) error {
	done := make(chan error, 1)
	e.tasks <- func() {
		e.running.Add(1)
		defer e.running.Add(-1)
		defer func() {
			if r := recover(); r != nil {
				e.taskPanics.Add(1)
				obs.Count(e.cfg.Collector, obs.CounterPoolPanic, 1)
				done <- &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		e.tasksRun.Add(1)
		obs.Count(e.cfg.Collector, obs.CounterPoolTask, 1)
		done <- fn()
	}
	return <-done
}

// Busy reports how many pool tasks are executing right now — the
// occupancy the gnt_engine_pool_busy gauge samples at scrape time.
func (e *Engine) Busy() int64 { return e.running.Load() }

// parallel runs every fn as a pool task, waits for all, and returns the
// first error in argument order (errors never hide behind a later nil).
func (e *Engine) parallel(fns ...func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for i, fn := range fns {
		i, fn := i, fn
		go func() {
			defer wg.Done()
			errs[i] = e.run(fn)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Job is one analysis to schedule.
type Job struct {
	// Prog is the parsed, checked program.
	Prog *ir.Program
	// Opts tunes the placement analysis (rung 2 of the serve ladder
	// sets SuppressHoist).
	Opts comm.Opts
	// Collector receives the pipeline's stage spans; nil records
	// nothing. Concurrent stages may interleave their spans.
	Collector obs.Collector
	// PostSolve, when non-nil, runs on the calling goroutine after both
	// solves join and before verification — the hook the chaos harness
	// uses to corrupt solutions. A panic inside it propagates to the
	// caller (after the job's arenas are released).
	PostSolve func(*comm.Analysis)
}

// Result is one completed analysis: the solved placements and their
// merged static verification. Its solutions alias arena memory leased
// from the engine — call Release when done with Analysis (typically
// after rendering a response) to return the slabs; using Analysis
// after Release is a data race with the next request.
type Result struct {
	Analysis *comm.Analysis
	Check    *check.Result

	eng      *Engine
	arenas   []*bitset.Arena
	released bool
}

// Release returns the result's arenas to the engine pool. Idempotent;
// nil-safe.
func (r *Result) Release() {
	if r == nil || r.released || r.eng == nil {
		return
	}
	r.released = true
	for _, ar := range r.arenas {
		ar.Reset()
		r.eng.arenas.Put(ar)
	}
	r.arenas = nil
}

// Analyze runs one pipeline with its independent halves in parallel:
// after the sequential front half (comm.Build), the READ solve and the
// reversed-graph WRITE solve run as concurrent pool tasks, then the
// static verification of each solved problem runs as concurrent pool
// tasks, and the results merge with the linter's findings. The merged
// Check result is ordering-identical to the sequential
// comm.CheckPlacementCtx (check.Merge sorts).
func (e *Engine) Analyze(ctx context.Context, job Job) (res *Result, err error) {
	col := job.Collector
	end := obs.Begin(col, obs.SpanEngineAnalyze)
	defer func() {
		if err != nil {
			res.Release()
			res = nil
		}
		end()
	}()

	a, aerr := comm.Build(ctx, job.Prog, col, job.Opts)
	if aerr != nil {
		return nil, aerr
	}
	res = &Result{
		Analysis: a,
		eng:      e,
		arenas:   []*bitset.Arena{e.arenas.Get().(*bitset.Arena), e.arenas.Get().(*bitset.Arena)},
	}
	defer func() {
		// PostSolve (and nothing else here) may panic through us; don't
		// leak the leased arenas when it does
		if r := recover(); r != nil {
			res.Release()
			res = nil
			panic(r)
		}
	}()
	if err := e.parallel(
		func() error { return a.SolveRead(ctx, col, res.arenas[0]) },
		func() error { return a.SolveWrite(ctx, col, res.arenas[1]) },
	); err != nil {
		return res, err // the deferred cleanup releases and nils res
	}
	if job.PostSolve != nil {
		job.PostSolve(a)
	}

	vend := obs.Begin(col, obs.SpanEngineVerify)
	probs := a.Problems()
	partial := make([]*check.Result, len(probs))
	fns := make([]func() error, len(probs))
	for i, p := range probs {
		i, p := i, p
		fns[i] = func() error {
			r, err := check.VerifyCtx(ctx, p)
			partial[i] = r
			return err
		}
	}
	if err := e.parallel(fns...); err != nil {
		vend()
		return res, err // the deferred cleanup releases and nils res
	}
	cr := check.Merge(partial...)
	cr.Diagnostics = append(cr.Diagnostics, a.Lints(probs)...)
	cr.Sort()
	res.Check = cr
	vend("errors", len(cr.Errors()), "warnings", len(cr.Warnings()))
	return res, nil
}

// Map runs f for every index in [0, n) with fan-out bounded by the
// worker count. Bodies run on dedicated goroutines — not pool workers —
// so they may themselves schedule pool tasks (Analyze) without
// deadlocking the pool. Map returns when every body has.
func (e *Engine) Map(ctx context.Context, n int, f func(ctx context.Context, i int)) {
	sem := make(chan struct{}, e.cfg.Workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(ctx, i)
		}(i)
	}
	wg.Wait()
}

// BatchItem is one program of a batch.
type BatchItem struct {
	Source string
	Opts   comm.Opts
}

// BatchResult pairs one batch item with its outcome. Res carries leased
// arenas; the caller must Release each non-nil Res.
type BatchResult struct {
	Res *Result
	Err error
}

// AnalyzeBatch parses and analyzes the items concurrently (fan-out
// bounded by the worker count) and returns outcomes in item order. Each
// item gets the full parallel pipeline including static verification;
// per-item failures land in their slot instead of failing the batch.
func (e *Engine) AnalyzeBatch(ctx context.Context, items []BatchItem, col obs.Collector) []BatchResult {
	out := make([]BatchResult, len(items))
	e.Map(ctx, len(items), func(ctx context.Context, i int) {
		prog, err := frontend.Parse(items[i].Source)
		if err != nil {
			out[i].Err = err
			return
		}
		out[i].Res, out[i].Err = e.Analyze(ctx, Job{Prog: prog, Opts: items[i].Opts, Collector: col})
	})
	return out
}

// PoolStats is a point-in-time snapshot of the worker pool and the
// admission accounting the serving layer reports into it.
type PoolStats struct {
	Workers       int   `json:"workers"`
	Busy          int64 `json:"busy"`
	Tasks         int64 `json:"tasks"`
	Panics        int64 `json:"panics"`
	AdmissionWon  int64 `json:"admission_won"`
	AdmissionShed int64 `json:"admission_shed"`
}

// Stats is the engine's observable state, rendered by /healthz.
type Stats struct {
	Pool  PoolStats  `json:"pool"`
	Cache CacheStats `json:"cache"`
}

// Stats snapshots the pool and cache counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Pool: PoolStats{
			Workers: e.cfg.Workers,
			Busy:    e.running.Load(),
			Tasks:   e.tasksRun.Load(),
			Panics:  e.taskPanics.Load(),

			AdmissionWon:  e.admitWon.Load(),
			AdmissionShed: e.admitShed.Load(),
		},
		Cache: e.cache.snapshot(),
	}
}

// NoteAdmission records one admission-queue outcome: won (a request got
// an analysis slot) or shed (it timed out of the queue). The serving
// layer calls this so slot accounting lives with the pool stats it
// gates.
func (e *Engine) NoteAdmission(won bool) {
	if won {
		e.admitWon.Add(1)
		obs.Count(e.cfg.Collector, obs.CounterAdmitWon, 1)
	} else {
		e.admitShed.Add(1)
		obs.Count(e.cfg.Collector, obs.CounterAdmitShed, 1)
	}
}
