// Package engine is the concurrent analysis engine behind the serving
// and batch paths: it turns the sequential GIVE-N-TAKE pipeline into
// schedulable tasks and runs the independent halves of each request in
// parallel.
//
// The task decomposition follows the data dependences of the pipeline
// (comm.Build documents why the halves are independent):
//
//	cfg-build ──┬── READ/BEFORE solve ───── verify READ ──┬── merge
//	            └── reverse + WRITE solve ─ verify WRITE ─┘
//
// Three mechanisms make the engine production-shaped:
//
//   - a bounded worker pool with panic isolation: leaf tasks (solves,
//     verifications) run on a fixed set of workers, a panicking task is
//     returned as a structured *PanicError, and per-task bit-vector
//     slabs are carved from leased bitset.Arena buffers so steady-state
//     allocation stays flat across requests;
//
//   - a content-addressed result cache: rendered response bytes keyed
//     by SHA-256 of source + canonicalized options (CacheKey), bounded
//     in bytes with LRU eviction, with single-flight deduplication so a
//     thundering herd of identical requests costs one analysis;
//
//   - a batch path: AnalyzeBatch and Map fan independent programs out
//     over the pool, so corpus throughput scales with cores instead of
//     being pinned to one sequential pipeline.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"givetake/internal/bitset"
	"givetake/internal/check"
	"givetake/internal/comm"
	"givetake/internal/ir"
	"givetake/internal/journal"
	"givetake/internal/obs"
)

// DefaultCacheBytes bounds the result cache when Config.CacheBytes is
// zero.
const DefaultCacheBytes int64 = 32 << 20

// Config parameterizes an Engine.
type Config struct {
	// Workers is the size of the leaf-task pool and the fan-out bound
	// of Map/AnalyzeBatch; zero means GOMAXPROCS.
	Workers int
	// StageWorkers sets the per-stage worker counts of the stage
	// pipeline (pipeline.go); zero fields default to a split of
	// Workers.
	StageWorkers StageWorkers
	// StageQueue bounds each inter-stage queue of the pipeline; zero
	// means max(4, 2*Workers).
	StageQueue int
	// CacheBytes bounds the result cache; zero means DefaultCacheBytes,
	// negative disables caching (single-flight still dedups).
	CacheBytes int64
	// Collector receives engine-level counters (cache hit/miss/evict,
	// pool tasks/panics); nil records nothing.
	Collector obs.Collector
	// Journal, when non-nil, makes cache fills durable: every storable
	// result Do computes is appended for group commit, and
	// WarmFromJournal replays the verified records into the cache at
	// startup. The engine never flushes or closes the journal — its
	// lifecycle (drain on shutdown, abort on crash) belongs to the
	// owner.
	Journal *journal.Journal
}

// Engine schedules analysis pipelines over a worker pool and serves
// repeated requests from a content-addressed cache. Create with New;
// an Engine is safe for concurrent use and runs until Close.
type Engine struct {
	cfg    Config
	tasks  chan func()
	wg     sync.WaitGroup
	arenas sync.Pool
	pipe   *pipeline

	mu      sync.Mutex
	flights map[string]*flight
	cache   *cache

	tasksRun   atomic.Int64
	taskPanics atomic.Int64
	running    atomic.Int64
	admitWon   atomic.Int64
	admitShed  atomic.Int64
	closed     atomic.Bool
}

// New builds an Engine and starts its workers.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	e := &Engine{
		cfg:     cfg,
		tasks:   make(chan func()),
		flights: map[string]*flight{},
		cache:   newCache(cfg.CacheBytes),
	}
	e.arenas.New = func() any { return new(bitset.Arena) }
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	queue := cfg.StageQueue
	if queue <= 0 {
		queue = 2 * cfg.Workers
		if queue < 4 {
			queue = 4
		}
	}
	e.pipe = newPipeline(e, cfg.StageWorkers.withDefaults(cfg.Workers), queue)
	return e
}

// Close stops the pool workers and the stage pipeline after draining
// queued tasks. Only useful in tests; a serving engine lives for the
// process.
func (e *Engine) Close() {
	if e.closed.CompareAndSwap(false, true) {
		close(e.tasks)
		e.wg.Wait()
		e.pipe.close()
	}
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

func (e *Engine) worker() {
	defer e.wg.Done()
	for fn := range e.tasks {
		fn()
	}
}

// PanicError is a leaf-task panic converted to an error at the pool
// boundary, so one poisoned request degrades instead of killing the
// process. The serving layer maps it to a "panic" ladder outcome.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string { return fmt.Sprintf("recovered panic: %v", p.Value) }

// run executes fn on the pool and waits for it, capturing panics. A
// canceled ctx sheds the task before it ever occupies a worker: an
// already-dead caller returns immediately, and a caller that dies while
// its task is still queued abandons the enqueue instead of burning a
// pool slot on doomed work. Once a worker has picked the task up it
// runs to completion (the bodies poll ctx themselves).
func (e *Engine) run(ctx context.Context, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan error, 1)
	task := func() {
		e.running.Add(1)
		defer e.running.Add(-1)
		defer func() {
			if r := recover(); r != nil {
				e.taskPanics.Add(1)
				obs.Count(e.cfg.Collector, obs.CounterPoolPanic, 1)
				done <- &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		e.tasksRun.Add(1)
		obs.Count(e.cfg.Collector, obs.CounterPoolTask, 1)
		done <- fn()
	}
	select {
	case e.tasks <- task:
	case <-ctx.Done():
		return ctx.Err()
	}
	return <-done
}

// Busy reports how many pool tasks are executing right now — the
// occupancy the gnt_engine_pool_busy gauge samples at scrape time.
func (e *Engine) Busy() int64 { return e.running.Load() }

// parallel runs every fn as a pool task, waits for all, and returns the
// first error in argument order (errors never hide behind a later nil).
func (e *Engine) parallel(ctx context.Context, fns ...func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for i, fn := range fns {
		i, fn := i, fn
		go func() {
			defer wg.Done()
			errs[i] = e.run(ctx, fn)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Job is one analysis to schedule.
type Job struct {
	// Prog is the parsed, checked program.
	Prog *ir.Program
	// Opts tunes the placement analysis (rung 2 of the serve ladder
	// sets SuppressHoist).
	Opts comm.Opts
	// Collector receives the pipeline's stage spans; nil records
	// nothing. Concurrent stages may interleave their spans.
	Collector obs.Collector
	// PostSolve, when non-nil, runs on the calling goroutine after both
	// solves join and before verification — the hook the chaos harness
	// uses to corrupt solutions. A panic inside it propagates to the
	// caller (after the job's arenas are released).
	PostSolve func(*comm.Analysis)
}

// Result is one completed analysis: the solved placements and their
// merged static verification. Its solutions alias arena memory leased
// from the engine — call Release when done with Analysis (typically
// after rendering a response) to return the slabs; using Analysis
// after Release is a data race with the next request.
type Result struct {
	Analysis *comm.Analysis
	Check    *check.Result

	eng      *Engine
	arenas   []*bitset.Arena
	released bool
}

// Release returns the result's arenas to the engine pool. Idempotent;
// nil-safe.
func (r *Result) Release() {
	if r == nil || r.released || r.eng == nil {
		return
	}
	r.released = true
	for _, ar := range r.arenas {
		ar.Reset()
		r.eng.arenas.Put(ar)
	}
	r.arenas = nil
}

// Analyze runs one program through the analysis pipeline and returns
// its solved placements with their merged static verification. The
// merged Check result is ordering-identical to the sequential
// comm.CheckPlacementCtx (check.Merge sorts).
//
// Jobs normally travel the stage pipeline (pipeline.go), entering at
// cfg-build since the program is already parsed: concurrent Analyze
// calls overlap stage-wise, and the READ/WRITE solve halves still run
// concurrently within the solve stage. A job with a PostSolve hook
// takes the pool path instead (analyzePool) — the hook's contract is
// that it runs on the calling goroutine and its panic propagates to
// the caller, which a detached stage worker cannot honor.
func (e *Engine) Analyze(ctx context.Context, job Job) (*Result, error) {
	if job.PostSolve != nil {
		return e.analyzePool(ctx, job)
	}
	t := &pipeTask{
		ctx:  ctx,
		col:  job.Collector,
		prog: job.Prog,
		opts: job.Opts,
		done: make(chan struct{}),
	}
	t.endAnalyze = obs.Begin(job.Collector, obs.SpanEngineAnalyze)
	if !e.pipe.submit(stageCFG, t) {
		t.endAnalyze()
		return nil, ctx.Err()
	}
	<-t.done
	return t.res, t.err
}

// analyzePool is the worker-pool analysis path: the front half runs on
// the calling goroutine (comm.Build), the solve halves and the
// verifications fan out as pool tasks, and the PostSolve hook runs
// between them on the calling goroutine. The serve ladder's chaos
// harness depends on this shape.
func (e *Engine) analyzePool(ctx context.Context, job Job) (res *Result, err error) {
	col := job.Collector
	end := obs.Begin(col, obs.SpanEngineAnalyze)
	defer func() {
		if err != nil {
			res.Release()
			res = nil
		}
		end()
	}()

	a, aerr := comm.Build(ctx, job.Prog, col, job.Opts)
	if aerr != nil {
		return nil, aerr
	}
	res = &Result{
		Analysis: a,
		eng:      e,
		arenas:   []*bitset.Arena{e.arenas.Get().(*bitset.Arena), e.arenas.Get().(*bitset.Arena)},
	}
	defer func() {
		// PostSolve (and nothing else here) may panic through us; don't
		// leak the leased arenas when it does
		if r := recover(); r != nil {
			res.Release()
			res = nil
			panic(r)
		}
	}()
	if err := e.parallel(ctx,
		func() error { return a.SolveRead(ctx, col, res.arenas[0]) },
		func() error { return a.SolveWrite(ctx, col, res.arenas[1]) },
	); err != nil {
		return res, err // the deferred cleanup releases and nils res
	}
	if job.PostSolve != nil {
		job.PostSolve(a)
	}

	vend := obs.Begin(col, obs.SpanEngineVerify)
	probs := a.Problems()
	partial := make([]*check.Result, len(probs))
	fns := make([]func() error, len(probs))
	for i, p := range probs {
		i, p := i, p
		fns[i] = func() error {
			r, err := check.VerifyCtx(ctx, p)
			partial[i] = r
			return err
		}
	}
	if err := e.parallel(ctx, fns...); err != nil {
		vend()
		return res, err // the deferred cleanup releases and nils res
	}
	cr := check.Merge(partial...)
	cr.Diagnostics = append(cr.Diagnostics, a.Lints(probs)...)
	cr.Sort()
	res.Check = cr
	vend("errors", len(cr.Errors()), "warnings", len(cr.Warnings()))
	return res, nil
}

// Map runs f for every index in [0, n) with fan-out bounded by the
// worker count, in index-launch order. Bodies run on dedicated
// goroutines — not pool workers — so they may themselves schedule pool
// tasks (Analyze) without deadlocking the pool. Cancellation sheds
// before each launch: once ctx is observed done, no further body
// starts (not even one already holding a semaphore slot), and Map
// returns after every launched body has finished. The return value is
// how many bodies launched — indices [launched, n) never ran, and the
// caller owns saying so in its per-item results (AnalyzeBatch and
// serve's /batch record ctx.Err() in the trailing slots).
func (e *Engine) Map(ctx context.Context, n int, f func(ctx context.Context, i int)) int {
	sem := make(chan struct{}, e.cfg.Workers)
	var wg sync.WaitGroup
	launched := 0
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
		case sem <- struct{}{}:
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		launched++
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(ctx, i)
		}(i)
	}
	wg.Wait()
	return launched
}

// BatchItem is one program of a batch.
type BatchItem struct {
	Source string
	Opts   comm.Opts
}

// BatchResult pairs one batch item with its outcome. Res carries leased
// arenas; the caller must Release each non-nil Res.
type BatchResult struct {
	Res *Result
	Err error
}

// AnalyzeBatch streams the items through the stage pipeline and
// returns outcomes in item order. Items enter at the parse stage and
// flow stage-wise with no barrier — item A can be solving while item B
// is still in cfg-build — so corpus throughput tracks the slowest
// stage's service rate instead of the slowest item's end-to-end chain.
// Each item still gets the full analysis including static
// verification; per-item failures land in their slot instead of
// failing the batch. Cancellation sheds: items not yet submitted when
// ctx dies never enter the pipeline (no parse runs for them) and their
// slots carry ctx.Err(); items already in flight shed at their next
// stage boundary with the same error.
func (e *Engine) AnalyzeBatch(ctx context.Context, items []BatchItem, col obs.Collector) []BatchResult {
	out := make([]BatchResult, len(items))
	tasks := make([]*pipeTask, len(items))
	submitted := 0
	for i := range items {
		t := &pipeTask{
			ctx:  ctx,
			col:  col,
			src:  items[i].Source,
			opts: items[i].Opts,
			done: make(chan struct{}),
		}
		t.endAnalyze = obs.Begin(col, obs.SpanEngineAnalyze)
		if !e.pipe.submit(stageParse, t) {
			t.endAnalyze()
			break
		}
		tasks[i] = t
		submitted++
	}
	for i := 0; i < submitted; i++ {
		<-tasks[i].done
		out[i] = BatchResult{Res: tasks[i].res, Err: tasks[i].err}
	}
	for i := submitted; i < len(items); i++ {
		out[i] = BatchResult{Err: ctx.Err()}
	}
	return out
}

// PoolStats is a point-in-time snapshot of the worker pool and the
// admission accounting the serving layer reports into it.
type PoolStats struct {
	Workers       int   `json:"workers"`
	Busy          int64 `json:"busy"`
	Tasks         int64 `json:"tasks"`
	Panics        int64 `json:"panics"`
	AdmissionWon  int64 `json:"admission_won"`
	AdmissionShed int64 `json:"admission_shed"`
}

// Stats is the engine's observable state, rendered by /healthz.
type Stats struct {
	Pool     PoolStats    `json:"pool"`
	Cache    CacheStats   `json:"cache"`
	Pipeline []StageStats `json:"pipeline"`
	// PipelineShed counts tasks that left the stage pipeline because
	// their context died in-flight.
	PipelineShed int64 `json:"pipeline_shed"`
}

// Stats snapshots the pool, cache, and pipeline counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Pipeline:     e.PipelineStats(),
		PipelineShed: e.pipe.shed.Load(),
		Pool: PoolStats{
			Workers: e.cfg.Workers,
			Busy:    e.running.Load(),
			Tasks:   e.tasksRun.Load(),
			Panics:  e.taskPanics.Load(),

			AdmissionWon:  e.admitWon.Load(),
			AdmissionShed: e.admitShed.Load(),
		},
		Cache: e.cache.snapshot(),
	}
}

// NoteAdmission records one admission-queue outcome: won (a request got
// an analysis slot) or shed (it timed out of the queue). The serving
// layer calls this so slot accounting lives with the pool stats it
// gates.
func (e *Engine) NoteAdmission(won bool) {
	if won {
		e.admitWon.Add(1)
		obs.Count(e.cfg.Collector, obs.CounterAdmitWon, 1)
	} else {
		e.admitShed.Add(1)
		obs.Count(e.cfg.Collector, obs.CounterAdmitShed, 1)
	}
}
