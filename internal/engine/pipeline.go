// Stage-pipelined batch path: each program flows through the pipeline's
// obs-named stages (parse → cfg-build → interval-reduce →
// section-universe → solve → check → render) as an independent task,
// stages connected by bounded queues, each stage served by its own
// worker count. There is NO barrier between stages — program A can be
// in the solve stage while program B is still in cfg-build — so corpus
// throughput is set by the slowest stage's service rate, not by the
// slowest program's end-to-end chain. The READ and WRITE solve halves
// stay concurrent within a program (the solve stage runs them as two
// goroutines, exactly like the pool path did).
//
// Backpressure is the bounded queues themselves: a stage that cannot
// hand its task downstream blocks on the send (or sheds, if the task's
// own context dies while waiting). Nothing is dropped and nothing is
// unbounded; submitters feel the bottleneck stage's rate directly.
package engine

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"givetake/internal/bitset"
	"givetake/internal/check"
	"givetake/internal/comm"
	"givetake/internal/frontend"
	"givetake/internal/ir"
	"givetake/internal/obs"
)

// StageWorkers fixes the worker count of each pipeline stage. Zero
// fields default to a split of Config.Workers: the solver and checker
// stages (the hot ones on real corpora) get the full worker count
// each, the light front-half and render stages half each, all floored
// at one — oversubscription is deliberate, since stage workers are
// goroutines gated by GOMAXPROCS, and a stage blocked on backpressure
// costs only a goroutine; starving the bottleneck stage, by contrast,
// caps the whole pipeline's service rate.
type StageWorkers struct {
	Parse           int
	CFGBuild        int
	IntervalReduce  int
	SectionUniverse int
	Solve           int
	Check           int
	Render          int
}

func (w StageWorkers) withDefaults(workers int) StageWorkers {
	light := workers / 2
	if light < 1 {
		light = 1
	}
	heavy := workers
	if heavy < 1 {
		heavy = 1
	}
	def := func(v, d int) int {
		if v > 0 {
			return v
		}
		return d
	}
	return StageWorkers{
		Parse:           def(w.Parse, light),
		CFGBuild:        def(w.CFGBuild, light),
		IntervalReduce:  def(w.IntervalReduce, light),
		SectionUniverse: def(w.SectionUniverse, light),
		Solve:           def(w.Solve, heavy),
		Check:           def(w.Check, heavy),
		Render:          def(w.Render, light),
	}
}

// Stage indices, in flow order.
const (
	stageParse = iota
	stageCFG
	stageIntervals
	stageUniverse
	stageSolve
	stageCheck
	stageRender
	numStages
)

// pipeTask is one program traveling the pipeline. Exactly one stage
// owns it at a time (queues hand off ownership), so its fields need no
// locking; done is closed once — by the render stage, or early by
// whichever stage failed or shed it.
type pipeTask struct {
	ctx  context.Context
	col  obs.Collector
	src  string      // parse-stage input (batch path)
	prog *ir.Program // cfg-stage input (pre-parsed path)
	opts comm.Opts

	res        *Result
	err        error
	endAnalyze obs.EndFunc
	done       chan struct{}
}

// pstage is one stage: its bounded input queue, worker budget, and
// occupancy/throughput accounting (sampled by PipelineStats and the
// gnt_pipeline_* gauges).
type pstage struct {
	name    string // stats/gauge label
	counter string // declared obs counter, bumped once per item serviced
	workers int
	in      chan *pipeTask

	busy   atomic.Int64
	items  atomic.Int64
	busyNS atomic.Int64
}

// pipeline owns the stages. Created once per Engine in New; torn down
// by Engine.Close, which closes the parse queue and lets the close
// cascade stage by stage as each one's workers drain and exit.
type pipeline struct {
	eng    *Engine
	stages [numStages]*pstage
	done   sync.WaitGroup
	shed   atomic.Int64

	// delay, when non-nil, runs at the start of every stage body — the
	// test hook the stage-imbalance tests use to make one stage slow.
	delay func(stage string)
}

func newPipeline(e *Engine, sw StageWorkers, queue int) *pipeline {
	p := &pipeline{eng: e}
	defs := [numStages]struct {
		name    string
		counter string
		workers int
	}{
		{obs.SpanParse, obs.CounterPipelineParse, sw.Parse},
		{obs.SpanCFGBuild, obs.CounterPipelineCFGBuild, sw.CFGBuild},
		{obs.SpanIntervalReduce, obs.CounterPipelineIntervalReduce, sw.IntervalReduce},
		{obs.SpanSectionUniverse, obs.CounterPipelineSectionUniverse, sw.SectionUniverse},
		{"solve", obs.CounterPipelineSolve, sw.Solve},
		{obs.SpanCheck, obs.CounterPipelineCheck, sw.Check},
		{"render", obs.CounterPipelineRender, sw.Render},
	}
	for i, d := range defs {
		p.stages[i] = &pstage{
			name:    d.name,
			counter: d.counter,
			workers: d.workers,
			in:      make(chan *pipeTask, queue),
		}
	}
	p.done.Add(numStages)
	for i := range p.stages {
		i, st := i, p.stages[i]
		var wg sync.WaitGroup
		wg.Add(st.workers)
		for w := 0; w < st.workers; w++ {
			go func() {
				defer wg.Done()
				p.work(i, st)
			}()
		}
		go func() {
			wg.Wait()
			if i+1 < numStages {
				close(p.stages[i+1].in)
			}
			p.done.Done()
		}()
	}
	return p
}

// submit enqueues t at stage idx, honoring the task's context; false
// means the task never entered the pipeline (its ctx was already dead,
// or died while waiting for queue space).
func (p *pipeline) submit(idx int, t *pipeTask) bool {
	if t.ctx.Err() != nil {
		return false
	}
	select {
	case p.stages[idx].in <- t:
		return true
	case <-t.ctx.Done():
		return false
	}
}

// noteShed accounts one task leaving the pipeline because its context
// died while it was queued or waiting on a downstream queue.
func (p *pipeline) noteShed() {
	p.shed.Add(1)
	obs.Count(p.eng.cfg.Collector, obs.CounterPipelineShed, 1)
}

// work is one stage worker: drain the stage's queue until it closes.
// Every received task is polled for cancellation before any work runs,
// so a dead request sheds here instead of occupying the stage; live
// tasks run the stage body and move downstream, blocking on the next
// queue (backpressure) unless their context dies while they wait.
func (p *pipeline) work(idx int, st *pstage) {
	for t := range st.in {
		if t.err == nil {
			if err := t.ctx.Err(); err != nil {
				t.err = err
				p.noteShed()
			}
		}
		if t.err != nil {
			p.complete(t)
			continue
		}
		start := time.Now()
		st.busy.Add(1)
		p.runStage(idx, t)
		st.busy.Add(-1)
		st.busyNS.Add(time.Since(start).Nanoseconds())
		st.items.Add(1)
		obs.Count(p.eng.cfg.Collector, st.counter, 1)
		if t.err != nil || idx == stageRender {
			p.complete(t)
			continue
		}
		select {
		case p.stages[idx+1].in <- t:
		case <-t.ctx.Done():
			t.err = t.ctx.Err()
			p.noteShed()
			p.complete(t)
		}
	}
}

// complete finishes a task: a failed task releases its leased arenas
// and surfaces only its error (the same contract as Analyze), the
// engine.analyze span closes, and the submitter wakes.
func (p *pipeline) complete(t *pipeTask) {
	if t.err != nil && t.res != nil {
		t.res.Release()
		t.res = nil
	}
	if t.endAnalyze != nil {
		t.endAnalyze()
	}
	close(t.done)
}

// recoverTo converts a stage-body panic into a *PanicError on the
// task, mirroring the pool's isolation boundary: one poisoned program
// degrades, the stage worker survives.
func (p *pipeline) recoverTo(dst *error) {
	if r := recover(); r != nil {
		p.eng.taskPanics.Add(1)
		obs.Count(p.eng.cfg.Collector, obs.CounterPoolPanic, 1)
		*dst = &PanicError{Value: r, Stack: debug.Stack()}
	}
}

// runStage executes stage idx's body on t, leaving the outcome in
// t.err / t.res / t.prog.
func (p *pipeline) runStage(idx int, t *pipeTask) {
	defer p.recoverTo(&t.err)
	if p.delay != nil {
		p.delay(p.stages[idx].name)
	}
	switch idx {
	case stageParse:
		end := obs.Begin(t.col, obs.SpanParse)
		prog, err := frontend.Parse(t.src)
		end()
		if err != nil {
			t.err = err
			return
		}
		t.prog = prog
	case stageCFG:
		a, err := comm.StageCFG(t.ctx, t.prog, t.col)
		if err != nil {
			t.err = err
			return
		}
		t.res = &Result{Analysis: a, eng: p.eng}
	case stageIntervals:
		t.err = t.res.Analysis.StageIntervals(t.ctx, t.col)
	case stageUniverse:
		if err := t.res.Analysis.StageUniverse(t.ctx, t.col); err != nil {
			t.err = err
			return
		}
		t.res.Analysis.ApplyOpts(t.opts)
	case stageSolve:
		p.runSolve(t)
	case stageCheck:
		p.runCheck(t)
	case stageRender:
		// Delivery. The engine returns structured results, so there is
		// no byte rendering to do here; the stage exists so a future
		// renderer (annotated source, response bodies) has its slot in
		// the flow, and so completion accounting is a stage like any
		// other.
	}
}

// runSolve leases the task's arenas and runs the READ and WRITE solve
// halves concurrently — the same decomposition the pool path used,
// preserved inside one stage so the halves' independence (comm.Build
// documents it) keeps paying off per program. Error precedence matches
// the pool path: a READ failure wins over a WRITE failure.
func (p *pipeline) runSolve(t *pipeTask) {
	a := t.res.Analysis
	t.res.arenas = []*bitset.Arena{
		p.eng.arenas.Get().(*bitset.Arena),
		p.eng.arenas.Get().(*bitset.Arena),
	}
	writeErr := make(chan error, 1)
	go func() {
		var err error
		defer func() { writeErr <- err }()
		defer p.recoverTo(&err)
		err = a.SolveWrite(t.ctx, t.col, t.res.arenas[1])
	}()
	var readErr error
	func() {
		defer p.recoverTo(&readErr)
		readErr = a.SolveRead(t.ctx, t.col, t.res.arenas[0])
	}()
	werr := <-writeErr
	if readErr != nil {
		t.err = readErr
		return
	}
	t.err = werr
}

// runCheck statically verifies each solved problem concurrently and
// merges the verdicts with the linter's findings — byte-identical to
// the pool path's verification stage.
func (p *pipeline) runCheck(t *pipeTask) {
	a := t.res.Analysis
	vend := obs.Begin(t.col, obs.SpanEngineVerify)
	probs := a.Problems()
	partial := make([]*check.Result, len(probs))
	errs := make([]error, len(probs))
	var wg sync.WaitGroup
	wg.Add(len(probs))
	for i, pr := range probs {
		i, pr := i, pr
		go func() {
			defer wg.Done()
			defer p.recoverTo(&errs[i])
			partial[i], errs[i] = check.VerifyCtx(t.ctx, pr)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			vend()
			t.err = err
			return
		}
	}
	cr := check.Merge(partial...)
	cr.Diagnostics = append(cr.Diagnostics, a.Lints(probs)...)
	cr.Sort()
	t.res.Check = cr
	vend("errors", len(cr.Errors()), "warnings", len(cr.Warnings()))
}

// close begins teardown: no further submissions may race it. The parse
// queue closes here; each stage's close cascades to the next as its
// workers drain and exit, and done.Wait returns once the render stage
// has flushed.
func (p *pipeline) close() {
	close(p.stages[stageParse].in)
	p.done.Wait()
}

// StageStats is one pipeline stage's point-in-time accounting: queue
// depth and busy workers are live occupancy (what the
// gnt_pipeline_queue_depth and gnt_pipeline_occupancy gauges sample at
// scrape time), items and busy time are cumulative throughput — their
// ratio per worker is the stage's measured service rate, which is what
// gntbench's pipeline sweep holds corpus throughput against.
type StageStats struct {
	Stage      string  `json:"stage"`
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	Busy       int64   `json:"busy"`
	Items      int64   `json:"items"`
	BusyMS     float64 `json:"busy_ms"`
}

// PipelineStats snapshots every stage in flow order.
func (e *Engine) PipelineStats() []StageStats {
	out := make([]StageStats, 0, numStages)
	for _, st := range e.pipe.stages {
		out = append(out, StageStats{
			Stage:      st.name,
			Workers:    st.workers,
			QueueDepth: len(st.in),
			Busy:       st.busy.Load(),
			Items:      st.items.Load(),
			BusyMS:     float64(st.busyNS.Load()) / 1e6,
		})
	}
	return out
}

// PipelineShed reports how many tasks left the pipeline because their
// context died in-flight.
func (e *Engine) PipelineShed() int64 { return e.pipe.shed.Load() }
