package core

import (
	"testing"
	"testing/quick"

	"givetake/internal/interval"
)

// The §5.4 shifting pass: production moves off synthetic pads when every
// parallel path agrees, and stays put (for block materialization) when a
// sibling path must not produce.

// TestShiftDownMerge: both branch arms jump to one label and the item is
// consumed only at the join — production lands on the two pads and must
// merge down into the anchor node.
func TestShiftDownMerge(t *testing.T) {
	sc := newScenario(t, `
do i = 1, n
    y(i) = 0
    if test(i) goto 9
enddo
9 s = x(1)
`)
	// steal inside the loop so production cannot hoist above it, forcing
	// placement on the two loop-exit edges (both pads)
	sc.steal("y(i) = 0")
	sc.take("s = x(1)")
	s := sc.solveVerified()

	before := s.SyntheticResidue(Eager)
	if before == 0 {
		t.Skip("placement did not use pads; scenario no longer exercises shifting")
	}
	moved := s.ShiftOffSynthetic()
	if moved == 0 {
		t.Fatalf("expected down-merge of pad production (residue %d)", before)
	}
	if after := s.SyntheticResidue(Eager); after >= before {
		t.Fatalf("synthetic residue %d -> %d, want reduction", before, after)
	}
	// correctness is untouched: the oracle reads only RES
	if vs := Verify(s, sc.init, VerifyConfig{CheckSafety: true}); len(vs) > 0 {
		t.Fatalf("shifted placement broke correctness: %v", vs[0])
	}
}

// TestShiftRespectsConflicts: the Figure 3 situation — a one-armed IF
// whose synthetic else must produce while the then side must not. The
// production may not move.
func TestShiftRespectsConflicts(t *testing.T) {
	sc := newScenario(t, `
if c then
    y(1) = 0
endif
s = x(1)
`)
	sc.steal("y(1) = 0")
	sc.take("s = x(1)")
	s := sc.solveVerified()

	// production sits on the synthetic else (the then side steals) or at
	// the consumer after a steal — find the pad residue
	if s.SyntheticResidue(Eager) == 0 {
		t.Skip("no pad production in this build of the scenario")
	}
	s.ShiftOffSynthetic()
	if vs := Verify(s, sc.init, VerifyConfig{CheckSafety: true}); len(vs) > 0 {
		t.Fatalf("shift broke the placement: %v", vs[0])
	}
}

// TestShiftPreservesCorrectnessRandom: on random problems, shifting never
// breaks the correctness criteria and never increases pad residue.
func TestShiftPreservesCorrectnessRandom(t *testing.T) {
	f := func(seed int64) bool {
		g, init, u := randomProblem(t, seed, false)
		s := MustSolve(g, u, init)
		before := s.SyntheticResidue(Eager) + s.SyntheticResidue(Lazy)
		s.ShiftOffSynthetic()
		after := s.SyntheticResidue(Eager) + s.SyntheticResidue(Lazy)
		if after > before {
			t.Logf("seed %d: residue grew %d -> %d", seed, before, after)
			return false
		}
		if vs := Verify(s, init, VerifyConfig{CheckSafety: true, MaxPaths: 800}); len(vs) > 0 {
			t.Logf("seed %d: %v", seed, vs[0])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestShiftIdempotent: a second run moves nothing.
func TestShiftIdempotent(t *testing.T) {
	g, init, u := randomProblem(t, 7, false)
	s := MustSolve(g, u, init)
	s.ShiftOffSynthetic()
	if moved := s.ShiftOffSynthetic(); moved != 0 {
		t.Fatalf("second shift moved %d productions", moved)
	}
}

// TestShiftOnReversedGraphs: the pass applies to AFTER problems too.
func TestShiftOnReversedGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g, init, u := randomProblem(t, seed, false)
		rev, err := interval.Reverse(g)
		if err != nil {
			return false
		}
		s := MustSolve(rev, u, init)
		s.ShiftOffSynthetic()
		vs := Verify(s, init, VerifyConfig{MaxPaths: 600})
		for _, v := range vs {
			if v.Criterion != "O1" {
				t.Logf("seed %d: %v", seed, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRegressionShiftLatchPad pins the randomized seed where down-merge
// moved per-iteration production from a latch pad (cycle edge) into a
// header's RES_in — which executes once per loop entry, not once per
// iteration — breaking balance. The merge rules now require FORWARD/JUMP
// edges.
func TestRegressionShiftLatchPad(t *testing.T) {
	g, init, u := randomProblem(t, 6006593081627261225, false)
	s := MustSolve(g, u, init)
	s.ShiftOffSynthetic()
	if vs := Verify(s, init, VerifyConfig{CheckSafety: true, MaxPaths: 800}); len(vs) > 0 {
		t.Fatalf("shift broke the placement: %v", vs[0])
	}
}
