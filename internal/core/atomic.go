package core

import (
	"givetake/internal/bitset"
	"givetake/internal/interval"
)

// Atomic returns the degenerate fallback placement that produces every
// item exactly at its consumption point, in both schedules: for each
// node n, RES_in(n) = TAKE_init(n) for EAGER and LAZY alike, and no
// production anywhere else. This is the paper's always-correct floor
// (§2, §3.1): production at the consumption point is trivially balanced
// — each region opens and closes at the same program point, so C1 can
// never break — every consumer is satisfied by its own transfer (C3),
// and nothing produced outlives its node (C2). It is also maximally
// pessimal (no vectorization, no latency hiding, no redundancy
// elimination), which is why it is a degradation target and not a
// result.
//
// The second return value is the initial-variable set the placement is
// correct against: atomic transfers are consumed immediately and the
// runtime retains no local copy, so every consumed item is invalidated
// at its own node (STEAL_init ∪= TAKE_init) and free production is
// dropped (GIVE_init = ∅ — a local copy that is never reused provides
// nothing). Verifying the returned Solution against the returned Init
// with check.Verify yields no criterion errors for any graph; O1 in
// particular cannot fire because availability never survives a node.
//
// Atomic performs no dataflow solving at all — O(N) set copies — so it
// cannot hit the one-pass invariant, cannot meaningfully time out, and
// never fails; it is the bottom rung of the serve degradation ladder.
func Atomic(g *interval.Graph, universe int, init *Init) (*Solution, *Init) {
	n := len(g.Nodes)
	s := &Solution{Graph: g, Universe: universe}
	s.Stats.Nodes = n
	s.Stats.Universe = universe
	s.Stats.Words = (universe + 63) / 64
	s.Stats.MaxLevel, s.Stats.NodesPerLevel = g.LevelStats()
	alloc := func() []*bitset.Set {
		return bitset.NewSlice(n, universe)
	}
	s.Steal, s.Give, s.Block = alloc(), alloc(), alloc()
	s.TakenOut, s.Take, s.TakenIn = alloc(), alloc(), alloc()
	s.BlockLoc, s.TakeLoc = alloc(), alloc()
	s.GiveLoc, s.StealLoc = alloc(), alloc()
	for _, p := range []*Placement{&s.Eager, &s.Lazy} {
		p.GivenIn, p.Given, p.GivenOut = alloc(), alloc(), alloc()
		p.ResIn, p.ResOut = alloc(), alloc()
	}

	fb := NewInit(n)
	for id := 0; id < n; id++ {
		if t := at(init.Take, id); t != nil {
			fb.Take[id] = t.Clone()
			s.Take[id].UnionWith(t)
			s.Eager.ResIn[id].UnionWith(t)
			s.Lazy.ResIn[id].UnionWith(t)
			s.Eager.Given[id].UnionWith(t)
			s.Lazy.Given[id].UnionWith(t)
		}
		// the node-local invalidation set: everything the original
		// problem steals here, plus everything consumed or given here
		st := bitset.New(universe)
		if v := at(init.Steal, id); v != nil {
			st.UnionWith(v)
		}
		if v := at(init.Take, id); v != nil {
			st.UnionWith(v)
		}
		if v := at(init.Give, id); v != nil {
			st.UnionWith(v)
		}
		if !st.IsEmpty() {
			fb.Steal[id] = st
			s.Steal[id].UnionWith(st)
		}
	}
	return s, fb
}

// at indexes an Init slice defensively (nil slice or entry = empty).
func at(v []*bitset.Set, id int) *bitset.Set {
	if v == nil || id >= len(v) || v[id] == nil {
		return nil
	}
	return v[id]
}
