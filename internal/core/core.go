// Package core implements the GIVE-N-TAKE balanced code placement
// framework of von Hanxleden and Kennedy (PLDI '94): given per-node
// consumption (TAKE_init), destruction (STEAL_init), and free production
// (GIVE_init) over a finite item universe, it computes where production
// must be placed so that
//
//	(C1) balance:     the EAGER and LAZY solutions match — along every
//	                  path each production is started and stopped once;
//	(C2) safety:      everything produced is consumed (zero-trip loops
//	                  excepted, unless hoisting is suppressed);
//	(C3) sufficiency: every consumer is preceded by a production on all
//	                  incoming paths with no destruction in between;
//
// while producing as little and as rarely as possible (O1–O3'). The
// solver evaluates the fifteen dataflow equations of the paper's
// Figure 13 exactly once per node over a Tarjan interval flow graph,
// following the pass structure of Figure 15, for a total of O(E)
// bit-vector steps.
//
// BEFORE problems (production precedes consumption, e.g. READ messages,
// prefetches, classical PRE) run on the interval graph as built; AFTER
// problems (production follows consumption, e.g. WRITE-backs) run on the
// interval.Reverse view, with entry/exit meanings swapped.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"givetake/internal/bitset"
	"givetake/internal/interval"
	"givetake/internal/obs"
)

// ErrInvariant is the sentinel for a broken one-pass O(E) invariant:
// some equation group was about to be evaluated a second time at a
// node. Detect it with errors.Is(err, ErrInvariant); the concrete
// error is an *InvariantError naming the group and node.
var ErrInvariant = errors.New("core: one-pass O(E) invariant broken")

// InvariantError reports which equation group was re-evaluated where.
// It is returned (never panicked) by Solve and SolveCtx.
type InvariantError struct {
	Group string // equation group name, e.g. "Eqs.1-8"
	Node  int    // interval node ID
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("core: %s re-evaluated at node %d (one-pass O(E) invariant broken)", e.Group, e.Node)
}

// Is makes errors.Is(err, ErrInvariant) succeed for InvariantError.
func (e *InvariantError) Is(target error) bool { return target == ErrInvariant }

// Mode selects the production schedule of a solution.
type Mode int

const (
	// Eager places production as early as possible — for a BEFORE
	// problem, the send side of a communication (criterion O3).
	Eager Mode = iota
	// Lazy places production as late as possible — for a BEFORE problem,
	// the receive side (criterion O3').
	Lazy
)

func (m Mode) String() string {
	if m == Eager {
		return "eager"
	}
	return "lazy"
}

// Init supplies the initial dataflow variables (paper §4.1), indexed by
// interval node ID. Nil slices and nil entries mean the empty set.
type Init struct {
	// Take holds TAKE_init(n): the consumers at n.
	Take []*bitset.Set
	// Steal holds STEAL_init(n): items whose production is voided at n.
	Steal []*bitset.Set
	// Give holds GIVE_init(n): items produced at n "for free" as a side
	// effect (they satisfy later consumers without generated code).
	Give []*bitset.Set
}

// NewInit returns an Init with empty sets for a graph of n nodes.
func NewInit(n int) *Init {
	return &Init{
		Take:  make([]*bitset.Set, n),
		Steal: make([]*bitset.Set, n),
		Give:  make([]*bitset.Set, n),
	}
}

// add unions items into slot i of dst, allocating on demand.
func (in *Init) add(dst []*bitset.Set, i, universe int, items *bitset.Set) {
	if dst[i] == nil {
		dst[i] = bitset.New(universe)
	}
	dst[i].UnionWith(items)
}

// AddTake unions items into TAKE_init(n).
func (in *Init) AddTake(n *interval.Node, universe int, items *bitset.Set) {
	in.add(in.Take, n.ID, universe, items)
}

// AddSteal unions items into STEAL_init(n).
func (in *Init) AddSteal(n *interval.Node, universe int, items *bitset.Set) {
	in.add(in.Steal, n.ID, universe, items)
}

// AddGive unions items into GIVE_init(n).
func (in *Init) AddGive(n *interval.Node, universe int, items *bitset.Set) {
	in.add(in.Give, n.ID, universe, items)
}

// Placement holds the §4.4–4.5 variables of one mode.
type Placement struct {
	GivenIn  []*bitset.Set // GIVEN_in(n), availability at node entry
	Given    []*bitset.Set // GIVEN(n), availability at the node itself
	GivenOut []*bitset.Set // GIVEN_out(n), availability at node exit
	ResIn    []*bitset.Set // RES_in(n), production generated at node entry
	ResOut   []*bitset.Set // RES_out(n), production generated at node exit
}

// Solution carries every dataflow variable of a solved problem. The
// variables shared between modes (§4.2–4.3, sets S1 and S2) appear once;
// the placement variables (§4.4–4.5) appear per mode.
type Solution struct {
	Graph    *interval.Graph
	Universe int

	// S1 variables (Eqs. 1–8), indexed by node ID.
	Steal, Give, Block      []*bitset.Set
	TakenOut, Take, TakenIn []*bitset.Set
	BlockLoc, TakeLoc       []*bitset.Set
	// S2 variables (Eqs. 9–10).
	GiveLoc, StealLoc []*bitset.Set

	// Eager and Lazy placements (Eqs. 11–15).
	Eager, Lazy Placement

	// EquationEvals counts individual equation evaluations, for the
	// O(E) complexity experiment.
	EquationEvals int

	// Stats carries the solver work counters (equation evaluations,
	// bitvector set/word operations, interval levels); see Counters.
	Stats obs.SolverCounters

	// evals tracks, per equation group and node, how often that group
	// was evaluated. The paper's Figure 15 pass structure evaluates
	// every group exactly once per node; enter panics on the second
	// visit, making any regression of the one-pass O(E) property loud.
	evals [grpCount][]uint8
}

// Equation groups of the Figure 15 pass structure. Eqs. 11–15 run once
// per schedule, so EAGER and LAZY count as separate groups.
const (
	grpS1      = iota // Eqs. 1–8
	grpS2             // Eqs. 9–10
	grpS3Eager        // Eqs. 11–13, EAGER
	grpS3Lazy         // Eqs. 11–13, LAZY
	grpS4Eager        // Eqs. 14–15, EAGER
	grpS4Lazy         // Eqs. 14–15, LAZY
	grpCount
)

var grpName = [grpCount]string{"Eqs.1-8", "Eqs.9-10", "Eqs.11-13/eager", "Eqs.11-13/lazy", "Eqs.14-15/eager", "Eqs.14-15/lazy"}
var grpEqs = [grpCount]int{8, 2, 3, 3, 2, 2}

// enter records one evaluation of equation group grp at node id and
// fails loudly if the group was already evaluated there — the solver's
// O(E) bound rests on every equation being evaluated exactly once per
// node, and a silent re-evaluation would invalidate every complexity
// number the observability layer reports. The panic value is an
// *InvariantError; SolveCtx recovers it at the API boundary, so no
// caller of the exported entry points ever sees the panic itself.
func (s *Solution) enter(grp, id int) {
	if s.evals[grp][id]++; s.evals[grp][id] > 1 {
		panic(&InvariantError{Group: grpName[grp], Node: id})
	}
	s.EquationEvals += grpEqs[grp]
	s.Stats.EquationEvals += int64(grpEqs[grp])
}

// Counters returns the solver work counters labeled with the problem
// name (e.g. "READ", "WRITE").
func (s *Solution) Counters(problem string) obs.SolverCounters {
	c := s.Stats
	c.Problem = problem
	return c
}

// Place returns the placement of the given mode.
func (s *Solution) Place(m Mode) *Placement {
	if m == Eager {
		return &s.Eager
	}
	return &s.Lazy
}

// Solve runs the GiveNTake algorithm (paper Fig. 15) on g. Each equation
// is evaluated exactly once per node, so the work is O(E) bit-vector
// operations. Init slices must be indexed by node ID; missing entries
// are empty sets. Zero-trip hoisting is suppressed for nodes whose
// NoHoist flag is set (§4.1, §5.3). A broken one-pass invariant is
// returned as *InvariantError (errors.Is ErrInvariant), never panicked.
func Solve(g *interval.Graph, universe int, init *Init) (*Solution, error) {
	return SolveCtx(context.Background(), g, universe, init)
}

// MustSolve is Solve for callers with a known-good graph (tests,
// benchmarks, generated inputs): it panics on any error instead of
// returning it.
func MustSolve(g *interval.Graph, universe int, init *Init) *Solution {
	s, err := Solve(g, universe, init)
	if err != nil {
		panic(err)
	}
	return s
}

// SolveCtx is Solve with cooperative cancellation: between interval
// nodes — the granularity at which every dataflow variable is still
// consistent — the solver polls ctx and abandons the solve with
// ctx.Err(). The check is a single channel poll per node, so an
// uncancelable context costs nothing measurable.
func SolveCtx(ctx context.Context, g *interval.Graph, universe int, init *Init) (*Solution, error) {
	return SolveIn(ctx, g, universe, init, nil)
}

// SolveIn is SolveCtx with slab reuse: when ar is non-nil every
// per-node set slab is carved from it instead of freshly allocated,
// so a worker that leases one arena per solve keeps its steady-state
// allocation flat across requests. The returned Solution aliases the
// arena's buffer and must not be used after the arena is Reset.
func SolveIn(ctx context.Context, g *interval.Graph, universe int, init *Init, ar *bitset.Arena) (sol *Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			inv, ok := r.(*InvariantError)
			if !ok {
				panic(r) // not ours; re-raise
			}
			sol, err = nil, inv
		}
	}()
	done := ctx.Done()
	canceled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	n := len(g.Nodes)
	s := &Solution{Graph: g, Universe: universe}
	s.Stats.Nodes = n
	s.Stats.Universe = universe
	s.Stats.Words = (universe + 63) / 64
	s.Stats.MaxLevel, s.Stats.NodesPerLevel = g.LevelStats()
	for grp := range s.evals {
		s.evals[grp] = make([]uint8, n)
	}
	// one slab per variable keeps the per-node sets contiguous and the
	// allocation count independent of graph size; an arena additionally
	// reuses the words across solves
	alloc := func() []*bitset.Set {
		return ar.NewSlice(n, universe)
	}
	s.Steal, s.Give, s.Block = alloc(), alloc(), alloc()
	s.TakenOut, s.Take, s.TakenIn = alloc(), alloc(), alloc()
	s.BlockLoc, s.TakeLoc = alloc(), alloc()
	s.GiveLoc, s.StealLoc = alloc(), alloc()
	for _, p := range []*Placement{&s.Eager, &s.Lazy} {
		p.GivenIn, p.Given, p.GivenOut = alloc(), alloc(), alloc()
		p.ResIn, p.ResOut = alloc(), alloc()
	}

	initSet := func(v []*bitset.Set, id int) *bitset.Set {
		if v == nil || v[id] == nil {
			return nil
		}
		return v[id]
	}

	// ----- Pass 1: S1 (Eqs. 1–8) in REVERSEPREORDER, with S2 (Eqs. 9–10)
	// for each header's children, in FORWARD order, evaluated first
	// (Fig. 15). ROOT is processed implicitly at the end: its S1
	// variables are never read, but its children still need S2.
	pre := g.Preorder
	for i := len(pre) - 1; i >= 0; i-- {
		if canceled() {
			return nil, ctx.Err()
		}
		nd := pre[i]
		if nd.IsHeader {
			for _, c := range nd.Children {
				s.eq9_10(c)
			}
		}
		s.eq1_8(nd, init, initSet)
	}
	for _, c := range g.Root.Children {
		s.eq9_10(c)
	}

	// ----- Pass 2: S3 (Eqs. 11–13) in PREORDER, per mode.
	for _, nd := range pre {
		if canceled() {
			return nil, ctx.Err()
		}
		s.eq11_13(nd, Eager)
		s.eq11_13(nd, Lazy)
	}

	// ----- Pass 3: S4 (Eqs. 14–15), any order.
	for _, nd := range pre {
		if canceled() {
			return nil, ctx.Err()
		}
		s.eq14_15(nd, Eager)
		s.eq14_15(nd, Lazy)
	}
	s.finishStats()
	return s, nil
}

// finishStats derives the aggregate counters after the passes: total
// word operations and the per-equation-per-node evaluation bounds that
// witness the one-pass property empirically.
func (s *Solution) finishStats() {
	s.Stats.WordOps = s.Stats.SetOps * int64(s.Stats.Words)
	min, max := -1, 0
	for grp := range s.evals {
		for _, c := range s.evals[grp] {
			if min < 0 || int(c) < min {
				min = int(c)
			}
			if int(c) > max {
				max = int(c)
			}
		}
	}
	if min < 0 {
		min = 0 // empty graph
	}
	s.Stats.EvalsPerEqMin, s.Stats.EvalsPerEqMax = min, max
}

// eq1_8 evaluates the consumption-propagation set S1 at node n.
func (s *Solution) eq1_8(n *interval.Node, init *Init, initSet func([]*bitset.Set, int) *bitset.Set) {
	id := n.ID
	s.enter(grpS1, id)
	ops := 0

	// Eq. 1: STEAL(n) = STEAL_init(n) ∪ STEAL_loc(LASTCHILD(n))
	if v := initSet(init.Steal, id); v != nil {
		s.Steal[id].UnionWith(v)
		ops++
	}
	if n.LastChild != nil {
		s.Steal[id].UnionWith(s.StealLoc[n.LastChild.ID])
		ops++
	}

	// NoHoist (§4.1, §5.3): suppressing the zero-trip hoist by dropping
	// Eq. 5's loop terms alone is unbalanced — the eager schedule would
	// keep availability across the loop while the lazy schedule can lose
	// it at an in-loop merge and stop a production it never started. The
	// paper's STEAL_init option is the balanced one: a NoHoist loop
	// steals everything its body may consume (the TAKE_loc summary of
	// its entry successors), so availability of those items dies at the
	// loop for both schedules and production is re-placed after it.
	if n.NoHoist {
		for _, e := range n.Out {
			if e.Type == interval.Entry {
				s.Steal[id].UnionWith(s.TakeLoc[e.To.ID])
				ops++
			}
		}
	}

	// Eq. 2: GIVE(n) = GIVE_init(n) ∪ GIVE_loc(LASTCHILD(n))
	if v := initSet(init.Give, id); v != nil {
		s.Give[id].UnionWith(v)
		ops++
	}
	if n.LastChild != nil {
		s.Give[id].UnionWith(s.GiveLoc[n.LastChild.ID])
		ops++
	}

	// Eq. 3: BLOCK(n) = STEAL(n) ∪ GIVE(n) ∪ ⋃_{s∈SUCCS^E} BLOCK_loc(s)
	s.Block[id].UnionWith(s.Steal[id])
	s.Block[id].UnionWith(s.Give[id])
	ops += 2
	for _, e := range n.Out {
		if e.Type == interval.Entry {
			s.Block[id].UnionWith(s.BlockLoc[e.To.ID])
			ops++
		}
	}

	// Eq. 4: TAKEN_out(n) = ⋂_{s∈SUCCS^FJS} TAKEN_in(s); empty ⇒ ⊥
	first := true
	for _, e := range n.Out {
		if !interval.FJS.Has(e.Type) {
			continue
		}
		if first {
			s.TakenOut[id].Copy(s.TakenIn[e.To.ID])
			first = false
		} else {
			s.TakenOut[id].IntersectWith(s.TakenIn[e.To.ID])
		}
		ops++
	}

	// Eq. 5: TAKE(n) = TAKE_init(n)
	//                ∪ (⋃_{s∈SUCCS^E} TAKEN_in(s) − STEAL(n))
	//                ∪ ((TAKEN_out(n) ∩ ⋃_{s∈SUCCS^E} TAKE_loc(s)) − BLOCK(n))
	// The second term hoists consumption that is guaranteed inside the
	// loop to the header — the zero-trip hoist; the third term hoists
	// consumption that *may* happen inside if it is guaranteed after the
	// loop anyway. NoHoist headers skip both (§4.1, §5.3).
	take := s.Take[id]
	if v := initSet(init.Take, id); v != nil {
		take.UnionWith(v)
		ops++
	}
	if !n.NoHoist {
		guaranteed := bitset.New(s.Universe)
		may := bitset.New(s.Universe)
		hasEntry := false
		for _, e := range n.Out {
			if e.Type == interval.Entry {
				hasEntry = true
				guaranteed.UnionWith(s.TakenIn[e.To.ID])
				may.UnionWith(s.TakeLoc[e.To.ID])
				ops += 2
			}
		}
		if hasEntry {
			guaranteed.SubtractWith(s.Steal[id])
			take.UnionWith(guaranteed)
			may.IntersectWith(s.TakenOut[id])
			may.SubtractWith(s.Block[id])
			take.UnionWith(may)
			ops += 5
		}
	}

	// Eq. 6: TAKEN_in(n) = TAKE(n) ∪ (TAKEN_out(n) − BLOCK(n))
	s.TakenIn[id].Copy(s.TakenOut[id])
	s.TakenIn[id].SubtractWith(s.Block[id])
	s.TakenIn[id].UnionWith(take)
	ops += 3

	// Eq. 7: BLOCK_loc(n) = (BLOCK(n) ∪ ⋃_{s∈SUCCS^F} BLOCK_loc(s)) − TAKE(n)
	s.BlockLoc[id].Copy(s.Block[id])
	for _, e := range n.Out {
		if e.Type == interval.Forward {
			s.BlockLoc[id].UnionWith(s.BlockLoc[e.To.ID])
			ops++
		}
	}
	s.BlockLoc[id].SubtractWith(take)
	ops += 2

	// Eq. 8: TAKE_loc(n) = TAKE(n) ∪ (⋃_{s∈SUCCS^EF} TAKE_loc(s) − BLOCK(n))
	acc := bitset.New(s.Universe)
	for _, e := range n.Out {
		if interval.EF.Has(e.Type) {
			acc.UnionWith(s.TakeLoc[e.To.ID])
			ops++
		}
	}
	acc.SubtractWith(s.Block[id])
	acc.UnionWith(take)
	s.TakeLoc[id].Copy(acc)
	ops += 3
	s.Stats.SetOps += int64(ops)
}

// eq9_10 evaluates the interval-summary set S2 at node n. On reversed
// graphs, Jump predecessors point into the interval from outside (the
// §5.3 irreducibility case); their summaries are not available yet in
// pass order, so they are treated conservatively: they contribute ⊥ to
// the GIVE_loc intersection and ⊤ to STEAL_loc.
func (s *Solution) eq9_10(n *interval.Node) {
	id := n.ID
	s.enter(grpS2, id)
	ops := 0
	invertedJump := func(e interval.Edge) bool {
		return e.Type == interval.Jump && e.From.Level < e.To.Level
	}

	// Eq. 9: GIVE_loc(n) = (GIVE(n) ∪ TAKE(n) ∪ ⋂_{p∈PREDS^FJ} GIVE_loc(p)) − STEAL(n)
	meet := (*bitset.Set)(nil)
	bottomed := false
	for _, e := range n.In {
		if !interval.FJ.Has(e.Type) {
			continue
		}
		if invertedJump(e) {
			bottomed = true // unknown predecessor summary ⇒ assume ⊥
			continue
		}
		if meet == nil {
			meet = s.GiveLoc[e.From.ID].Clone()
		} else {
			meet.IntersectWith(s.GiveLoc[e.From.ID])
		}
		ops++
	}
	gl := s.GiveLoc[id]
	gl.UnionWith(s.Give[id])
	gl.UnionWith(s.Take[id])
	ops += 2
	if meet != nil && !bottomed {
		gl.UnionWith(meet)
		ops++
	}
	gl.SubtractWith(s.Steal[id])
	ops++

	// Eq. 10: STEAL_loc(n) = STEAL(n)
	//                      ∪ ⋃_{p∈PREDS^FJ} (STEAL_loc(p) − GIVE_loc(p))
	//                      ∪ ⋃_{p∈PREDS^S} STEAL_loc(p)
	sl := s.StealLoc[id]
	sl.UnionWith(s.Steal[id])
	ops++
	for _, e := range n.In {
		switch {
		case interval.FJ.Has(e.Type):
			if invertedJump(e) {
				sl.Fill() // unknown predecessor summary ⇒ assume ⊤
				ops++
				continue
			}
			d := s.StealLoc[e.From.ID].Clone()
			d.SubtractWith(s.GiveLoc[e.From.ID])
			sl.UnionWith(d)
			ops += 3
		case e.Type == interval.Synthetic:
			// p is the header of an interval enclosing the source of a
			// jump; the interval may be left half-done, so resupplies
			// (GIVE_loc) cannot be trusted and are not subtracted.
			sl.UnionWith(s.StealLoc[e.From.ID])
			ops++
		}
	}
	s.Stats.SetOps += int64(ops)
}

// eq11_13 evaluates the production-placing set S3 at node n for mode m.
func (s *Solution) eq11_13(n *interval.Node, m Mode) {
	id := n.ID
	if m == Eager {
		s.enter(grpS3Eager, id)
	} else {
		s.enter(grpS3Lazy, id)
	}
	ops := 0
	p := s.Place(m)

	// Eq. 11: GIVEN_in(n) = (GIVEN(HEADER(n)) − STEAL(HEADER(n)))
	//                     ∪ ⋂_{p∈PREDS^FJ} GIVEN_out(p)
	//                     ∪ (TAKEN_in(n) ∩ ⋃_{q∈PREDS^FJ} GIVEN_out(q))
	//
	// The paper's Figure 13 states the first term as GIVEN(HEADER(n))
	// alone, but that is not iteration-invariant: availability
	// established before the loop can be destroyed by one iteration and
	// then wrongly inherited by the next (steal on one body path,
	// consumer on another — the consumer starves with no production
	// anywhere; our path oracle finds such counterexamples). Subtracting
	// the header's STEAL — the body's may-steal summary (Eq. 1) —
	// restores soundness; the remaining GIVEN(h) components are already
	// steal-filtered, and all §4 worked-example values are unchanged.
	gin := p.GivenIn[id]
	if h := n.EntryHeader; h != nil {
		inherit := p.Given[h.ID].Clone()
		inherit.SubtractWith(s.Steal[h.ID])
		gin.UnionWith(inherit)
		ops += 3
	}
	var meet, join *bitset.Set
	for _, e := range n.In {
		if !interval.FJ.Has(e.Type) {
			continue
		}
		out := p.GivenOut[e.From.ID]
		if meet == nil {
			meet = out.Clone()
			join = out.Clone()
		} else {
			meet.IntersectWith(out)
			join.UnionWith(out)
		}
		ops += 2
	}
	if meet != nil {
		gin.UnionWith(meet)
		join.IntersectWith(s.TakenIn[id])
		gin.UnionWith(join)
		ops += 3
	}

	// Eq. 12: GIVEN(n) = GIVEN_in(n) ∪ TAKEN_in(n)   (EAGER)
	//                  = GIVEN_in(n) ∪ TAKE(n)       (LAZY)
	p.Given[id].Copy(gin)
	if m == Eager {
		p.Given[id].UnionWith(s.TakenIn[id])
	} else {
		p.Given[id].UnionWith(s.Take[id])
	}
	ops += 2

	// Eq. 13: GIVEN_out(n) = (GIVE(n) ∪ GIVEN(n)) − STEAL(n)
	p.GivenOut[id].Copy(p.Given[id])
	p.GivenOut[id].UnionWith(s.Give[id])
	p.GivenOut[id].SubtractWith(s.Steal[id])
	ops += 3
	s.Stats.SetOps += int64(ops)
}

// eq14_15 evaluates the result set S4 at node n for mode m.
func (s *Solution) eq14_15(n *interval.Node, m Mode) {
	id := n.ID
	if m == Eager {
		s.enter(grpS4Eager, id)
	} else {
		s.enter(grpS4Lazy, id)
	}
	ops := 0
	p := s.Place(m)

	// Eq. 14: RES_in(n) = GIVEN(n) − GIVEN_in(n)
	p.ResIn[id].Copy(p.Given[id])
	p.ResIn[id].SubtractWith(p.GivenIn[id])
	ops += 2

	// Eq. 15: RES_out(n) = ⋃_{s∈SUCCS^FJ} GIVEN_in(s) − GIVEN_out(n)
	for _, e := range n.Out {
		if interval.FJ.Has(e.Type) {
			p.ResOut[id].UnionWith(p.GivenIn[e.To.ID])
			ops++
		}
	}
	p.ResOut[id].SubtractWith(p.GivenOut[id])
	ops++
	s.Stats.SetOps += int64(ops)
}

// Dump renders every dataflow variable for debugging, using name(i) for
// item names.
func (s *Solution) Dump(name func(int) string) string {
	var sb strings.Builder
	row := func(label string, v []*bitset.Set) {
		fmt.Fprintf(&sb, "%-14s", label)
		for _, n := range s.Graph.Preorder {
			fmt.Fprintf(&sb, " %d:%s", n.Pre+1, v[n.ID].StringWith(name))
		}
		sb.WriteByte('\n')
	}
	row("STEAL", s.Steal)
	row("GIVE", s.Give)
	row("BLOCK", s.Block)
	row("TAKEN_out", s.TakenOut)
	row("TAKE", s.Take)
	row("TAKEN_in", s.TakenIn)
	row("BLOCK_loc", s.BlockLoc)
	row("TAKE_loc", s.TakeLoc)
	row("GIVE_loc", s.GiveLoc)
	row("STEAL_loc", s.StealLoc)
	for _, m := range []Mode{Eager, Lazy} {
		p := s.Place(m)
		row("GIVEN_in/"+m.String(), p.GivenIn)
		row("GIVEN/"+m.String(), p.Given)
		row("GIVEN_out/"+m.String(), p.GivenOut)
		row("RES_in/"+m.String(), p.ResIn)
		row("RES_out/"+m.String(), p.ResOut)
	}
	return sb.String()
}
