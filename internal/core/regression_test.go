package core

import (
	"testing"

	"givetake/internal/interval"
)

// Regression tests for the Eq. 11 soundness fix: a first child must
// inherit GIVEN(HEADER) − STEAL(HEADER), not GIVEN(HEADER) alone (see
// the comment in eq11_13). Both tests fail with the unfixed equation.

// TestRegressionIterationSteal is the minimal forward-direction
// counterexample: x is available before the loop (produced for the first
// consumer); one body path steals it, the other consumes it. With the
// literal paper equation the in-loop consumer inherits pre-loop
// availability across iterations and starves after a steal iteration.
func TestRegressionIterationSteal(t *testing.T) {
	sc := newScenario(t, `
s = x(1)
do i = 1, n
    if c then
        y(1) = 0
    else
        t = x(1)
    endif
enddo
`)
	sc.take("s = x(1)")
	sc.steal("y(1) = 0")
	sc.take("t = x(1)")
	s := sc.solveVerified() // C3 must hold on the steal-then-consume path
	// and production for the in-loop consumer must sit inside the loop
	// (it cannot be hoisted past the conditional steal)
	n := sc.g.NodeFor(sc.node("t = x(1)").Block)
	if !s.Eager.ResIn[n.ID].Has(0) {
		t.Fatalf("eager production missing at the in-loop consumer:\n%s",
			s.Dump(func(int) string { return "x" }))
	}
}

// TestRegressionAfterSeed pins the randomized AFTER-problem seed that
// originally exposed the gap (reversed graph, steal on one loop path,
// consumer in a nested loop on the other).
func TestRegressionAfterSeed(t *testing.T) {
	seed := int64(8932946771082343255)
	g, init, u := randomProblem(t, seed, false)
	rev, err := interval.Reverse(g)
	if err != nil {
		t.Fatal(err)
	}
	s := MustSolve(rev, u, init)
	if vs := Verify(s, init, VerifyConfig{CheckSafety: true, MaxPaths: 1500}); len(vs) > 0 {
		t.Fatalf("%d violations, first: %v", len(vs), vs[0])
	}
}
