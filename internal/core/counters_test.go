package core

import (
	"strings"
	"testing"

	"givetake/internal/bitset"
)

// The solver counters are the empirical witness of the §5.2 complexity
// claim: 20 equation evaluations per node (Eqs. 1–10 once, Eqs. 11–15
// once per schedule), each exactly once, and WordOps = SetOps × Words.
func TestSolverCounters(t *testing.T) {
	sc := newScenario(t, `
do i = 1, n
    if test then
        x = a
    endif
enddo
y = a
`)
	sc.take("x = a")
	sc.take("y = a")
	s := sc.solve()

	c := s.Counters("TEST")
	if c.Problem != "TEST" {
		t.Errorf("problem label = %q", c.Problem)
	}
	if c.Nodes != len(sc.g.Nodes) {
		t.Errorf("Nodes = %d, want %d", c.Nodes, len(sc.g.Nodes))
	}
	if c.Universe != 1 || c.Words != 1 {
		t.Errorf("Universe/Words = %d/%d, want 1/1", c.Universe, c.Words)
	}
	if err := c.OnePass(); err != nil {
		t.Error(err)
	}
	if want := int64(20 * c.Nodes); c.EquationEvals != want {
		t.Errorf("EquationEvals = %d, want %d", c.EquationEvals, want)
	}
	if int(c.EquationEvals) != s.EquationEvals {
		t.Errorf("Stats.EquationEvals %d diverges from Solution.EquationEvals %d",
			c.EquationEvals, s.EquationEvals)
	}
	if c.SetOps <= 0 || c.WordOps != c.SetOps*int64(c.Words) {
		t.Errorf("SetOps=%d WordOps=%d Words=%d", c.SetOps, c.WordOps, c.Words)
	}
	if c.MaxLevel < 2 {
		t.Errorf("MaxLevel = %d, want ≥ 2 (the loop nests)", c.MaxLevel)
	}
	total := 0
	for _, n := range c.NodesPerLevel {
		total += n
	}
	if total != c.Nodes {
		t.Errorf("NodesPerLevel sums to %d, want %d", total, c.Nodes)
	}
}

// A second evaluation of an equation group at a node would silently
// void the O(E) bound; the solver must fail loudly instead.
func TestDoubleEvaluationPanics(t *testing.T) {
	sc := newScenario(t, "x = a\n")
	s := sc.solve()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("re-evaluation did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "re-evaluated") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	// re-run one equation group on an already-solved instance
	s.eq1_8(sc.g.Preorder[0], sc.init, func(v []*bitset.Set, id int) *bitset.Set { return nil })
}
