package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"givetake/internal/bitset"
)

// The solver counters are the empirical witness of the §5.2 complexity
// claim: 20 equation evaluations per node (Eqs. 1–10 once, Eqs. 11–15
// once per schedule), each exactly once, and WordOps = SetOps × Words.
func TestSolverCounters(t *testing.T) {
	sc := newScenario(t, `
do i = 1, n
    if test then
        x = a
    endif
enddo
y = a
`)
	sc.take("x = a")
	sc.take("y = a")
	s := sc.solve()

	c := s.Counters("TEST")
	if c.Problem != "TEST" {
		t.Errorf("problem label = %q", c.Problem)
	}
	if c.Nodes != len(sc.g.Nodes) {
		t.Errorf("Nodes = %d, want %d", c.Nodes, len(sc.g.Nodes))
	}
	if c.Universe != 1 || c.Words != 1 {
		t.Errorf("Universe/Words = %d/%d, want 1/1", c.Universe, c.Words)
	}
	if err := c.OnePass(); err != nil {
		t.Error(err)
	}
	if want := int64(20 * c.Nodes); c.EquationEvals != want {
		t.Errorf("EquationEvals = %d, want %d", c.EquationEvals, want)
	}
	if int(c.EquationEvals) != s.EquationEvals {
		t.Errorf("Stats.EquationEvals %d diverges from Solution.EquationEvals %d",
			c.EquationEvals, s.EquationEvals)
	}
	if c.SetOps <= 0 || c.WordOps != c.SetOps*int64(c.Words) {
		t.Errorf("SetOps=%d WordOps=%d Words=%d", c.SetOps, c.WordOps, c.Words)
	}
	if c.MaxLevel < 2 {
		t.Errorf("MaxLevel = %d, want ≥ 2 (the loop nests)", c.MaxLevel)
	}
	total := 0
	for _, n := range c.NodesPerLevel {
		total += n
	}
	if total != c.Nodes {
		t.Errorf("NodesPerLevel sums to %d, want %d", total, c.Nodes)
	}
}

// A second evaluation of an equation group at a node would silently
// void the O(E) bound; the equation layer must fail loudly. The panic
// value is the typed *InvariantError that SolveCtx recovers, so API
// users only ever see it as an error.
func TestDoubleEvaluationPanics(t *testing.T) {
	sc := newScenario(t, "x = a\n")
	s := sc.solve()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("re-evaluation did not panic")
		}
		inv, ok := r.(*InvariantError)
		if !ok || !strings.Contains(inv.Error(), "re-evaluated") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if !errors.Is(inv, ErrInvariant) {
			t.Fatal("InvariantError does not match ErrInvariant")
		}
	}()
	// re-run one equation group on an already-solved instance
	s.eq1_8(sc.g.Preorder[0], sc.init, func(v []*bitset.Set, id int) *bitset.Set { return nil })
}

// SolveCtx converts the invariant panic into a returned error at the
// API boundary: no caller of the exported entry points sees a panic.
func TestSolveReturnsErrInvariant(t *testing.T) {
	sc := newScenario(t, "x = a\n")
	s := sc.solve()
	// Corrupt the evaluation ledger so the next solve on the same
	// Solution would double-evaluate; easiest is to re-drive one group
	// through a wrapper that recovers like SolveCtx does.
	_, err := func() (sol *Solution, err error) {
		defer func() {
			if r := recover(); r != nil {
				if inv, ok := r.(*InvariantError); ok {
					err = inv
					return
				}
				panic(r)
			}
		}()
		s.eq1_8(sc.g.Preorder[0], sc.init, func(v []*bitset.Set, id int) *bitset.Set { return nil })
		return s, nil
	}()
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("err = %v, want ErrInvariant", err)
	}
	var inv *InvariantError
	if !errors.As(err, &inv) || inv.Node != sc.g.Preorder[0].ID {
		t.Fatalf("err = %#v, want *InvariantError at node %d", err, sc.g.Preorder[0].ID)
	}
}

// A canceled context abandons the solve between nodes with ctx.Err().
func TestSolveCtxCanceled(t *testing.T) {
	sc := newScenario(t, "do i = 1, n\n x(i) = a\nenddo\n")
	sc.take("x(i) = a")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := SolveCtx(ctx, sc.g, sc.u, sc.init)
	if s != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCtx on canceled ctx = (%v, %v), want (nil, context.Canceled)", s, err)
	}
}
