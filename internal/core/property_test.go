package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/interval"
	"givetake/internal/progen"
)

// The property tests drive the solver with randomly generated structured
// programs and randomly scattered TAKE/STEAL/GIVE sets, then check the
// placement with the path oracle of verify.go. This is the strongest
// evidence that the fifteen equations implement the §3.2 criteria: the
// oracle shares no code or concepts with the equations.

// randomProblem builds a random interval graph plus random init sets.
func randomProblem(t testing.TB, seed int64, arrays bool) (*interval.Graph, *Init, int) {
	r := rand.New(rand.NewSource(seed))
	prog := progen.Generate(seed, progen.Config{
		Stmts:    10 + r.Intn(25),
		MaxDepth: 3,
		Arrays:   arrays,
	})
	c, err := cfg.Build(prog)
	if err != nil {
		t.Fatalf("seed %d: cfg: %v", seed, err)
	}
	g, err := interval.FromCFG(c)
	if err != nil {
		t.Fatalf("seed %d: interval: %v", seed, err)
	}
	const universe = 3
	init := NewInit(len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Block.Kind != cfg.KStmt {
			continue // scatter effects over real statements only
		}
		for item := 0; item < universe; item++ {
			switch r.Intn(10) {
			case 0:
				init.AddTake(n, universe, bitset.Of(universe, item))
			case 1:
				init.AddSteal(n, universe, bitset.Of(universe, item))
			case 2:
				init.AddGive(n, universe, bitset.Of(universe, item))
			}
		}
	}
	return g, init, universe
}

func filterViolations(vs []Violation, drop ...string) []Violation {
	var out []Violation
	for _, v := range vs {
		skip := false
		for _, d := range drop {
			if v.Criterion == d {
				skip = true
			}
		}
		if !skip {
			out = append(out, v)
		}
	}
	return out
}

// TestPropertyBeforeProblems: on random BEFORE problems the correctness
// criteria C1/C2/C3 must hold on every bounded path. (O1 is judged by
// the placement-site unit tests instead; see VerifyConfig.CheckO1.)
func TestPropertyBeforeProblems(t *testing.T) {
	f := func(seed int64) bool {
		g, init, u := randomProblem(t, seed, false)
		s := MustSolve(g, u, init)
		vs := Verify(s, init, VerifyConfig{CheckSafety: true, MaxPaths: 1500})
		if len(vs) > 0 {
			t.Logf("seed %d: %d violations, first: %v", seed, len(vs), vs[0])
			t.Logf("graph:\n%s", g)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAfterProblems: random AFTER problems (reversed graphs);
// the correctness criteria must hold unconditionally.
func TestPropertyAfterProblems(t *testing.T) {
	f := func(seed int64) bool {
		g, init, u := randomProblem(t, seed, false)
		rev, err := interval.Reverse(g)
		if err != nil {
			t.Logf("seed %d: reverse: %v", seed, err)
			return false
		}
		s := MustSolve(rev, u, init)
		vs := Verify(s, init, VerifyConfig{CheckSafety: true, MaxPaths: 1500})
		if len(vs) > 0 {
			t.Logf("seed %d: %d violations, first: %v", seed, len(vs), vs[0])
			t.Logf("reversed graph:\n%s", rev)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNoHoistSafety: with hoisting suppressed everywhere, the
// solution must be safe even on zero-trip paths (the classical
// conservative placement), at the cost of optimality.
func TestPropertyNoHoistSafety(t *testing.T) {
	f := func(seed int64) bool {
		g, init, u := randomProblem(t, seed, false)
		for _, n := range g.Nodes {
			n.NoHoist = true
		}
		s := MustSolve(g, u, init)
		// With no hoisting, C2 must hold even counting zero-trip paths:
		// nothing was moved above a loop that might not run. The verifier
		// only checks C2 on all-trips≥1 paths, so additionally assert no
		// header-entry production for items only consumed inside.
		vs := filterViolations(Verify(s, init, VerifyConfig{CheckSafety: true, MaxPaths: 1500}), "O1")
		if len(vs) > 0 {
			t.Logf("seed %d: %v", seed, vs[0])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySolveDeterministic: same inputs, same outputs.
func TestPropertySolveDeterministic(t *testing.T) {
	g, init, u := randomProblem(t, 42, false)
	a := MustSolve(g, u, init)
	b := MustSolve(g, u, init)
	for _, n := range g.Nodes {
		for _, m := range []Mode{Eager, Lazy} {
			if !a.Place(m).ResIn[n.ID].Equal(b.Place(m).ResIn[n.ID]) ||
				!a.Place(m).ResOut[n.ID].Equal(b.Place(m).ResOut[n.ID]) {
				t.Fatalf("non-deterministic result at %v", n)
			}
		}
	}
}

// TestPropertyEagerDominatesLazy: whatever the lazy schedule has made
// available, the eager schedule has too (eagerness only moves production
// earlier). Formally GIVEN^lazy ⊆ GIVEN^eager at every node.
func TestPropertyEagerDominatesLazy(t *testing.T) {
	f := func(seed int64) bool {
		g, init, u := randomProblem(t, seed, false)
		s := MustSolve(g, u, init)
		for _, n := range g.Nodes {
			if !s.Eager.Given[n.ID].ContainsAll(s.Lazy.Given[n.ID]) {
				t.Logf("seed %d: GIVEN^lazy ⊄ GIVEN^eager at %v", seed, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEquationEvalsLinear: the eval counter grows exactly with
// node count, never with iteration (fixed-point-free evaluation).
func TestPropertyEquationEvalsLinear(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		g, init, u := randomProblem(t, seed, false)
		s := MustSolve(g, u, init)
		if s.EquationEvals != 20*len(g.Nodes) {
			t.Fatalf("seed %d: evals = %d, want %d", seed, s.EquationEvals, 20*len(g.Nodes))
		}
	}
}
