package core

import (
	"fmt"

	"givetake/internal/bitset"
	"givetake/internal/interval"
)

// This file turns the paper's correctness criteria (§3.2) into executable
// path predicates. Paths of the interval flow graph are enumerated with
// bounded loop trip counts, the producer/consumer state machine of each
// item is simulated, and violations of
//
//	C1 (balance):     every EAGER production is matched by exactly one
//	                  LAZY production before the next EAGER one, and no
//	                  production is left open at path end;
//	C2 (safety):      every generated production is consumed before being
//	                  stolen or the path ending (checked on paths where
//	                  every loop runs at least once, since GIVE-N-TAKE
//	                  deliberately hoists out of zero-trip loops);
//	C3 (sufficiency): every consumer sees its item available — produced
//	                  or given on this path, not stolen since;
//	O1 (no re-production): production never targets an item that is
//	                  still available
//
// are reported. The verifier is the oracle behind the property tests: it
// knows nothing about the fifteen equations, only about what a correct
// placement must look like operationally.

// Violation describes one criterion failure on one path.
type Violation struct {
	Criterion string // "C1", "C2", "C3", "O1"
	Mode      Mode
	Item      int
	Node      *interval.Node // where the failure manifested
	Detail    string
	Path      []*interval.Node
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%v: item %d at %v: %s", v.Criterion, v.Mode, v.Item, v.Node, v.Detail)
}

// VerifyConfig bounds path enumeration.
type VerifyConfig struct {
	// Trips are the loop trip counts tried at each loop entry
	// (default {0, 1, 2}).
	Trips []int
	// MaxPaths caps the number of complete paths examined (default 4096).
	MaxPaths int
	// MaxLen caps the length of a single path (default 10000 events).
	MaxLen int
	// CheckSafety enables C2 checking; it is checked only on paths whose
	// every loop runs at least once, because hoisting out of zero-trip
	// loops deliberately trades safety for motion (paper §2).
	CheckSafety bool
	// CheckO1 enables the no-re-production check. O1 is not a pure path
	// property — at merge points the framework's availability knowledge
	// is the meet over all joining paths, so production that looks
	// redundant along one path can be required for another (exactly as
	// in classical PRE). The check is therefore exact only on acyclic,
	// fully-consuming scenarios and is opt-in; the paper itself treats
	// the optimality criteria as guidelines (§3.2).
	CheckO1 bool
}

func (c *VerifyConfig) fill() {
	if len(c.Trips) == 0 {
		c.Trips = []int{0, 1, 2}
	}
	if c.MaxPaths == 0 {
		c.MaxPaths = 4096
	}
	if c.MaxLen == 0 {
		c.MaxLen = 10000
	}
}

// Verify checks the solution against init on every enumerated path and
// returns all violations found (nil means all checked paths are clean).
func Verify(s *Solution, init *Init, cfg VerifyConfig) []Violation {
	cfg.fill()
	v := &verifier{s: s, init: init, cfg: cfg}
	v.walk()
	return v.violations
}

type verifier struct {
	s          *Solution
	init       *Init
	cfg        VerifyConfig
	violations []Violation
	paths      int

	path []*interval.Node

	// per-mode item state, see reset()
	open    [2]*bitset.Set // C1: eager production started, not stopped
	avail   [2]*bitset.Set // C3: available (produced/given, not stolen)
	pending [2]*bitset.Set // C2: produced, not consumed yet
	// availO1 tracks availability as the *framework* can know it: like
	// avail, but reset to the loop-entry state at every back edge, since
	// interval analysis does not propagate GIVEN around cycle edges. O1
	// (no re-production) is judged against this set; re-production of an
	// item the framework cannot know to be available is not a violation
	// (the paper's optimality criteria are explicit guidelines, §3.2).
	availO1   [2]*bitset.Set
	availFrom [2][]int // O1: node that made each item available (-1: a GIVE)
	zeroTrips bool     // some loop on this path ran zero times
}

func (v *verifier) reset() {
	u := v.s.Universe
	for m := 0; m < 2; m++ {
		v.open[m] = bitset.New(u)
		v.avail[m] = bitset.New(u)
		v.pending[m] = bitset.New(u)
		v.availO1[m] = bitset.New(u)
		v.availFrom[m] = make([]int, u)
	}
	v.zeroTrips = false
	v.path = v.path[:0]
}

func (v *verifier) violate(crit string, m Mode, item int, n *interval.Node, detail string) {
	if len(v.violations) < 100 {
		v.violations = append(v.violations, Violation{
			Criterion: crit, Mode: m, Item: item, Node: n, Detail: detail,
			Path: append([]*interval.Node(nil), v.path...),
		})
	}
}

// entryNode returns the node with no CEFJ predecessors (the program
// entry in this graph's orientation).
func (v *verifier) entryNode() *interval.Node {
	for _, n := range v.s.Graph.Preorder {
		if n.CountPreds(interval.CEFJ) == 0 {
			return n
		}
	}
	return nil
}

func (v *verifier) walk() {
	start := v.entryNode()
	if start == nil {
		return
	}
	v.reset()
	v.step(start, true, nil)
}

type loopFrame struct {
	header *interval.Node
	left   int            // iterations still to run
	entry  [2]*bitset.Set // availO1 snapshot at loop entry
}

// snapshot/restore of simulation state for backtracking.
type simState struct {
	open, avail, pending, availO1 [2]*bitset.Set
	availFrom                     [2][]int
	zeroTrips                     bool
	pathLen                       int
}

func (v *verifier) save() simState {
	st := simState{zeroTrips: v.zeroTrips, pathLen: len(v.path)}
	for m := 0; m < 2; m++ {
		st.open[m] = v.open[m].Clone()
		st.avail[m] = v.avail[m].Clone()
		st.pending[m] = v.pending[m].Clone()
		st.availO1[m] = v.availO1[m].Clone()
		st.availFrom[m] = append([]int(nil), v.availFrom[m]...)
	}
	return st
}

func (v *verifier) restore(st simState) {
	v.zeroTrips = st.zeroTrips
	v.path = v.path[:st.pathLen]
	for m := 0; m < 2; m++ {
		v.open[m] = st.open[m]
		v.avail[m] = st.avail[m]
		v.pending[m] = st.pending[m]
		v.availO1[m] = st.availO1[m]
		v.availFrom[m] = st.availFrom[m]
	}
}

// step simulates node n (arriving from outside the loop if fromOutside)
// and recurses over successors. loops is the active loop stack.
func (v *verifier) step(n *interval.Node, fromOutside bool, loops []loopFrame) {
	if v.paths >= v.cfg.MaxPaths || len(v.path) >= v.cfg.MaxLen {
		return
	}
	v.path = append(v.path, n)

	// --- events at n ---
	// RES_in executes only when the node is entered from outside its
	// loop: production at a header's entry materializes before the DO
	// statement (cf. Fig. 14), not once per iteration. A header's own
	// init events model the DO statement itself (bound evaluation),
	// which Fortran performs once at loop entry, so they follow the same
	// rule. Within a node, reads precede writes: TAKE fires before GIVE
	// and STEAL (x(i) = x(i)+1 consumes the old value first), and a
	// simultaneous GIVE/STEAL of one item resolves to stolen, matching
	// Eq. 13's (GIVE ∪ GIVEN) − STEAL.
	if fromOutside {
		v.produce(n)
	}
	if !n.IsHeader || fromOutside {
		v.take(n)
		v.give(n)
		v.steal(n)
	}

	// --- choose successors ---
	if n.IsHeader {
		if fromOutside || len(loops) == 0 || loops[len(loops)-1].header != n {
			// Entering the loop construct (or reaching the header after a
			// jump into the loop, which happens on reversed graphs — the
			// frame stack then carries no entry for it): choose a trip
			// count afresh.
			for _, t := range v.cfg.Trips {
				st := v.save()
				if t == 0 {
					v.zeroTrips = v.zeroTrips || fromOutside
					// The framework treats a skipped loop's GIVEs as
					// vacuously satisfied (paper §2: zero trips mean the
					// produced section is empty), so availability summaries
					// still apply. GIVE(h) − STEAL(h) aggregates exactly
					// the loop's surviving free production (Eqs. 1–2).
					skipped := bitset.Subtract(v.s.Give[n.ID], v.s.Steal[n.ID])
					for m := Eager; m <= Lazy; m++ {
						v.avail[m].UnionWith(skipped)
						v.availO1[m].UnionWith(skipped)
						skipped.ForEach(func(i int) { v.availFrom[m][i] = -1 })
					}
					v.exitLoop(n, loops)
				} else {
					fr := loopFrame{header: n, left: t - 1}
					fr.entry[0] = v.availO1[0].Clone()
					fr.entry[1] = v.availO1[1].Clone()
					v.enterBody(n, append(loops, fr))
				}
				v.restore(st)
			}
			return
		}
		// Arrived via the cycle edge: the framework's availability
		// knowledge at each iteration start is what held at loop entry.
		fr := loops[len(loops)-1]
		for m := 0; m < 2; m++ {
			if fr.entry[m] != nil {
				v.availO1[m].IntersectWith(fr.entry[m])
			}
		}
		if fr.left > 0 {
			nf := fr
			nf.left--
			frames := append(append([]loopFrame(nil), loops[:len(loops)-1]...), nf)
			v.enterBody(n, frames)
		} else {
			v.exitLoop(n, loops[:len(loops)-1])
		}
		return
	}

	// Non-header: follow each CEFJ successor.
	succs := n.Succs(interval.CEFJ, nil)
	if len(succs) == 0 {
		v.finishPath(n)
		return
	}
	for _, e := range n.Out {
		switch e.Type {
		case interval.Cycle:
			st := v.save()
			v.produceExit(n, e.To)
			v.step(e.To, false, loops)
			v.restore(st)
		case interval.Forward:
			st := v.save()
			v.produceExit(n, e.To)
			v.step(e.To, true, loops)
			v.restore(st)
		case interval.Jump:
			// leaving one or more loops: pop the frames of every loop the
			// target is outside of
			st := v.save()
			v.produceExit(n, e.To)
			frames := loops
			for len(frames) > 0 && !interval.InInterval(e.To, frames[len(frames)-1].header) && e.To != frames[len(frames)-1].header {
				frames = frames[:len(frames)-1]
			}
			v.step(e.To, true, frames)
			v.restore(st)
		}
	}
}

func (v *verifier) enterBody(h *interval.Node, loops []loopFrame) {
	for _, e := range h.Out {
		if e.Type == interval.Entry {
			st := v.save()
			v.step(e.To, true, loops)
			v.restore(st)
			return // unique entry edge
		}
	}
	// loop with no entry edge: treat as exit
	v.exitLoop(h, loops[:len(loops)-1])
}

func (v *verifier) exitLoop(h *interval.Node, loops []loopFrame) {
	// RES_out of the header executes when the loop construct is left.
	exited := false
	for _, e := range h.Out {
		if e.Type == interval.Forward || e.Type == interval.Jump {
			st := v.save()
			v.produceExit(h, e.To)
			v.step(e.To, true, loops)
			v.restore(st)
			exited = true
		}
	}
	if !exited {
		v.finishPath(h)
	}
}

func (v *verifier) finishPath(last *interval.Node) {
	v.paths++
	for m := Eager; m <= Lazy; m++ {
		v.open[m].ForEach(func(i int) {
			v.violate("C1", m, i, last, "production still open at program exit")
		})
		if v.cfg.CheckSafety && !v.zeroTrips {
			v.pending[m].ForEach(func(i int) {
				v.violate("C2", m, i, last, "production never consumed")
			})
		}
	}
}

// produce handles RES_in events for both modes.
func (v *verifier) produce(n *interval.Node) {
	for m := Eager; m <= Lazy; m++ {
		res := v.s.Place(m).ResIn[n.ID]
		v.applyProduction(m, n, res)
	}
	// C1 balance: eager opens, lazy closes.
	v.s.Eager.ResIn[n.ID].ForEach(func(i int) {
		if v.open[Eager].Has(i) {
			v.violate("C1", Eager, i, n, "production started twice without a stop")
		}
		v.open[Eager].Add(i)
	})
	v.s.Lazy.ResIn[n.ID].ForEach(func(i int) {
		if !v.open[Eager].Has(i) {
			v.violate("C1", Lazy, i, n, "production stopped without a start")
		}
		v.open[Eager].Remove(i)
	})
}

// produceExit handles RES_out events of node n when taking the edge to
// succ (RES_out is production on the exit side).
func (v *verifier) produceExit(n, succ *interval.Node) {
	for m := Eager; m <= Lazy; m++ {
		res := v.s.Place(m).ResOut[n.ID]
		v.applyProduction(m, n, res)
	}
	v.s.Eager.ResOut[n.ID].ForEach(func(i int) {
		if v.open[Eager].Has(i) {
			v.violate("C1", Eager, i, n, "production started twice without a stop (exit)")
		}
		v.open[Eager].Add(i)
	})
	v.s.Lazy.ResOut[n.ID].ForEach(func(i int) {
		if !v.open[Eager].Has(i) {
			v.violate("C1", Lazy, i, n, "production stopped without a start (exit)")
		}
		v.open[Eager].Remove(i)
	})
}

func (v *verifier) applyProduction(m Mode, n *interval.Node, res *bitset.Set) {
	res.ForEach(func(i int) {
		if v.cfg.CheckO1 && v.availO1[m].Has(i) && v.availFrom[m][i] != n.ID {
			v.violate("O1", m, i, n, "item produced while still available")
		}
		v.avail[m].Add(i)
		v.availO1[m].Add(i)
		v.availFrom[m][i] = n.ID
		v.pending[m].Add(i)
	})
}

func (v *verifier) give(n *interval.Node) {
	if v.init.Give == nil || v.init.Give[n.ID] == nil {
		return
	}
	for m := Eager; m <= Lazy; m++ {
		v.avail[m].UnionWith(v.init.Give[n.ID])
		v.availO1[m].UnionWith(v.init.Give[n.ID])
		v.init.Give[n.ID].ForEach(func(i int) { v.availFrom[m][i] = -1 })
	}
}

func (v *verifier) take(n *interval.Node) {
	if v.init.Take == nil || v.init.Take[n.ID] == nil {
		return
	}
	v.init.Take[n.ID].ForEach(func(i int) {
		for m := Eager; m <= Lazy; m++ {
			if !v.avail[m].Has(i) {
				v.violate("C3", m, i, n, "consumer without available production")
			}
			v.pending[m].Remove(i)
		}
	})
}

func (v *verifier) steal(n *interval.Node) {
	if v.init.Steal == nil || v.init.Steal[n.ID] == nil {
		return
	}
	st := v.init.Steal[n.ID]
	for m := Eager; m <= Lazy; m++ {
		if v.cfg.CheckSafety && !v.zeroTrips {
			stolen := bitset.Intersect(v.pending[m], st)
			stolen.ForEach(func(i int) {
				v.violate("C2", m, i, n, "production stolen before being consumed")
			})
		}
		v.avail[m].SubtractWith(st)
		v.availO1[m].SubtractWith(st)
		v.pending[m].SubtractWith(st)
	}
}
