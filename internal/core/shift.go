package core

import (
	"givetake/internal/interval"
)

// ShiftOffSynthetic implements the paper's §5.4 post-processing: code
// placed at synthetic nodes needs new basic blocks at code generation
// time (a new else branch, a landing pad), so a backward pass checks
// whether each such production can move to a neighboring non-synthetic
// node without conflicts — in the spirit of Dhamdhere's edge placement
// [Dha88a] — and performs the movement on the RES sets.
//
// Two conflict-free movements exist, applied per mode until nothing
// changes:
//
//   - down-merge: when every real predecessor edge of a node b is a
//     synthetic pad producing item x, the production moves to b's entry
//     (every path into b produced x anyway, so path counts — and with
//     them balance — are preserved);
//   - up-merge: when every successor edge of a node a leads to a
//     synthetic pad producing x, the production hoists to a's exit.
//
// Productions that cannot move (like Figure 3's synthetic else branch,
// whose sibling path must not produce) stay, and the caller materializes
// the block. The GIVEN sets are not updated — after shifting, a Solution
// is placement data for code generation; Verify still applies since the
// oracle reads only the RES sets.
//
// The return value counts (node, item, mode) movements performed.
func (s *Solution) ShiftOffSynthetic() int {
	moved := 0
	for _, m := range []Mode{Eager, Lazy} {
		p := s.Place(m)
		for changed := true; changed; {
			changed = false
			// backward over the preorder, as in the paper
			for i := len(s.Graph.Preorder) - 1; i >= 0; i-- {
				n := s.Graph.Preorder[i]
				if n.Block != nil && n.Block.Synthetic() {
					continue
				}
				if c := s.downMerge(p, n); c > 0 {
					moved += c
					changed = true
				}
				if c := s.upMerge(p, n); c > 0 {
					moved += c
					changed = true
				}
			}
		}
	}
	return moved
}

// downMerge moves production common to all synthetic predecessors of n
// into RES_in(n). Only FORWARD/JUMP predecessor edges qualify: a pad on
// a CYCLE edge executes once per iteration while RES_in of the header it
// feeds executes once per loop entry, and an ENTRY-edge target's RES_in
// has before-the-loop placement semantics — merging across either would
// change execution counts and break balance.
func (s *Solution) downMerge(p *Placement, n *interval.Node) int {
	var pads []*interval.Node
	for _, e := range n.In {
		if !interval.CEFJ.Has(e.Type) {
			continue
		}
		if !interval.FJ.Has(e.Type) {
			return 0 // cycle or entry edge: placement semantics differ
		}
		if e.From.Block == nil || !e.From.Block.Synthetic() {
			return 0 // a real predecessor: moving down would add production to its path
		}
		pads = append(pads, e.From)
	}
	if len(pads) == 0 {
		return 0
	}
	common := p.ResIn[pads[0].ID].Clone()
	for _, pad := range pads[1:] {
		common.IntersectWith(p.ResIn[pad.ID])
	}
	if common.IsEmpty() {
		return 0
	}
	for _, pad := range pads {
		p.ResIn[pad.ID].SubtractWith(common)
	}
	p.ResIn[n.ID].UnionWith(common)
	return common.Count() * len(pads)
}

// upMerge hoists production common to all synthetic successors of n into
// RES_out(n).
func (s *Solution) upMerge(p *Placement, n *interval.Node) int {
	var pads []*interval.Node
	for _, e := range n.Out {
		if !interval.CEFJ.Has(e.Type) {
			continue
		}
		if !interval.FJ.Has(e.Type) {
			return 0 // entry/cycle successor: per-iteration vs per-entry mismatch
		}
		if e.To.Block == nil || !e.To.Block.Synthetic() {
			return 0
		}
		pads = append(pads, e.To)
	}
	if len(pads) < 2 {
		return 0 // single-pad chains are handled by downMerge at the pad's sink
	}
	common := p.ResIn[pads[0].ID].Clone()
	for _, pad := range pads[1:] {
		common.IntersectWith(p.ResIn[pad.ID])
	}
	// only hoist production the pads exclusively own: a pad with other
	// predecessors cannot happen (pads are edge splits), so ownership is
	// guaranteed
	if common.IsEmpty() {
		return 0
	}
	for _, pad := range pads {
		p.ResIn[pad.ID].SubtractWith(common)
	}
	p.ResOut[n.ID].UnionWith(common)
	return common.Count() * len(pads)
}

// SyntheticResidue reports how many productions remain on synthetic
// nodes (per mode), i.e. how many new basic blocks code generation still
// needs.
func (s *Solution) SyntheticResidue(m Mode) int {
	p := s.Place(m)
	total := 0
	for _, n := range s.Graph.Nodes {
		if n.Block != nil && n.Block.Synthetic() {
			total += p.ResIn[n.ID].Count() + p.ResOut[n.ID].Count()
		}
	}
	return total
}
