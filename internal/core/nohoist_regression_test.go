package core

import (
	"testing"

	"givetake/internal/bitset"
)

// TestRegressionNoHoistBalance pins the randomized seed that exposed a
// balance break in the term-dropping implementation of NoHoist: with
// hoisting suppressed only via Eq. 5, an item consumed conditionally
// inside the loop and unconditionally after it got one eager production
// but two lazy ones on the path through both consumers. The STEAL-based
// NoHoist (see eq1_8) restores C1.
func TestRegressionNoHoistBalance(t *testing.T) {
	seed := int64(-1825419746314462845)
	g, init, u := randomProblem(t, seed, false)
	for _, n := range g.Nodes {
		n.NoHoist = true
	}
	s := MustSolve(g, u, init)
	vs := filterViolations(Verify(s, init, VerifyConfig{CheckSafety: true, MaxPaths: 1500}), "O1")
	for i, v := range vs {
		if i > 1 {
			break
		}
		t.Logf("violation: %v", v)
		for _, n := range v.Path {
			t.Logf("  pre=%d %v take=%v steal=%v give=%v RinE=%v RinL=%v RoutE=%v RoutL=%v",
				n.Pre+1, n,
				setStr(init.Take, n.ID), setStr(init.Steal, n.ID), setStr(init.Give, n.ID),
				s.Eager.ResIn[n.ID], s.Lazy.ResIn[n.ID], s.Eager.ResOut[n.ID], s.Lazy.ResOut[n.ID])
		}
	}
	if len(vs) > 0 {
		t.Logf("graph:\n%s", g)
		t.Fail()
	}
}

func setStr(v []*bitset.Set, id int) string {
	if v == nil || v[id] == nil {
		return "{}"
	}
	return v[id].String()
}
