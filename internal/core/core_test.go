package core

import (
	"strings"
	"testing"

	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/frontend"
	"givetake/internal/interval"
)

// scenario is a small test harness: a program, an item universe of size
// one (item 0, "x"), and init sets attached to statements located by a
// substring of their printed form.
type scenario struct {
	t    *testing.T
	g    *interval.Graph
	init *Init
	u    int
}

func newScenario(t *testing.T, src string) *scenario {
	t.Helper()
	prog, err := frontend.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfg.Build(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	g, err := interval.FromCFG(c)
	if err != nil {
		t.Fatalf("interval: %v", err)
	}
	return &scenario{t: t, g: g, init: NewInit(len(g.Nodes)), u: 1}
}

// node returns the unique node whose printed block description contains
// substr.
func (sc *scenario) node(substr string) *interval.Node {
	sc.t.Helper()
	var found *interval.Node
	for _, n := range sc.g.Nodes {
		if strings.Contains(n.Block.String(), substr) {
			if found != nil {
				sc.t.Fatalf("node %q is ambiguous (%v and %v)", substr, found, n)
			}
			found = n
		}
	}
	if found == nil {
		sc.t.Fatalf("no node matching %q in:\n%s", substr, sc.g)
	}
	return found
}

func (sc *scenario) one() *bitset.Set { return bitset.Of(sc.u, 0) }

func (sc *scenario) take(substr string)  { sc.init.AddTake(sc.node(substr), sc.u, sc.one()) }
func (sc *scenario) steal(substr string) { sc.init.AddSteal(sc.node(substr), sc.u, sc.one()) }
func (sc *scenario) give(substr string)  { sc.init.AddGive(sc.node(substr), sc.u, sc.one()) }

func (sc *scenario) solve() *Solution { return MustSolve(sc.g, sc.u, sc.init) }

// solveVerified solves and checks C1/C3/O1 (and C2 on ≥1-trip paths) on
// all bounded paths.
func (sc *scenario) solveVerified() *Solution {
	sc.t.Helper()
	s := sc.solve()
	if vs := Verify(s, sc.init, VerifyConfig{CheckSafety: true}); len(vs) > 0 {
		for _, v := range vs {
			sc.t.Errorf("violation: %v", v)
		}
		sc.t.Fatalf("placement failed verification;\n%s", sc.g)
	}
	return s
}

// resNodes returns the descriptions of nodes with nonempty RES_in or
// RES_out in the given mode.
func resNodes(s *Solution, m Mode) (in, out []string) {
	p := s.Place(m)
	for _, n := range s.Graph.Preorder {
		if !p.ResIn[n.ID].IsEmpty() {
			in = append(in, n.Block.String())
		}
		if !p.ResOut[n.ID].IsEmpty() {
			out = append(out, n.Block.String())
		}
	}
	return
}

func (sc *scenario) expectResIn(s *Solution, m Mode, substrs ...string) {
	sc.t.Helper()
	in, _ := resNodes(s, m)
	if len(in) != len(substrs) {
		sc.t.Fatalf("%v RES_in at %v, want %d sites %v", m, in, len(substrs), substrs)
	}
	for i, sub := range substrs {
		if !strings.Contains(in[i], sub) {
			sc.t.Errorf("%v RES_in[%d] = %q, want containing %q", m, i, in[i], sub)
		}
	}
}

// --- Figure 5 / criterion C2 (safety): a consumer that exists only on
// one branch must not trigger production on the other.
func TestSafetyProductionStaysInBranch(t *testing.T) {
	sc := newScenario(t, `
if c then
    s = x(1)
endif
r = 2
`)
	sc.take("s = x(1)")
	s := sc.solveVerified()
	// Production must sit on the then side (at the consumer), not at
	// entry and not on the synthetic else.
	sc.expectResIn(s, Eager, "s = x(1)")
	sc.expectResIn(s, Lazy, "s = x(1)")
}

// --- Figure 6 / criterion C3 (sufficiency): a consumer reached by two
// paths needs production on both (here: hoisted above the branch).
func TestSufficiencyBothPaths(t *testing.T) {
	sc := newScenario(t, `
if c then
    a = 1
else
    b = 2
endif
s = x(1)
`)
	sc.take("s = x(1)")
	s := sc.solveVerified()
	// One producer before the consumer suffices; eagerness pulls it to
	// the program entry.
	sc.expectResIn(s, Eager, "entry")
	sc.expectResIn(s, Lazy, "s = x(1)")
}

// --- Figure 7 / criterion O1: consecutive consumers share one production.
func TestNoReproduction(t *testing.T) {
	sc := newScenario(t, `
s = x(1)
t = x(2)
r = x(3)
`)
	sc.take("s = x(1)")
	sc.take("t = x(2)")
	sc.take("r = x(3)")
	s := sc.solveVerified()
	sc.expectResIn(s, Eager, "entry")
	sc.expectResIn(s, Lazy, "s = x(1)") // latest point still before all consumers
}

// --- Figure 8 / criterion O2: consumers on both branches and beyond get
// one hoisted producer, not three.
func TestFewProducers(t *testing.T) {
	sc := newScenario(t, `
if c then
    s = x(1)
else
    t = x(2)
endif
r = x(3)
`)
	sc.take("s = x(1)")
	sc.take("t = x(2)")
	sc.take("r = x(3)")
	s := sc.solveVerified()
	sc.expectResIn(s, Eager, "entry")
	if in, _ := resNodes(s, Lazy); len(in) != 2 {
		t.Fatalf("lazy RES_in sites = %v, want one per branch", in)
	}
}

// --- Figures 9/10 / criteria O3, O3': eager production as early as
// possible, lazy as late as possible.
func TestEagerEarlyLazyLate(t *testing.T) {
	sc := newScenario(t, `
a = 1
b = 2
s = x(1)
`)
	sc.take("s = x(1)")
	s := sc.solveVerified()
	sc.expectResIn(s, Eager, "entry")
	sc.expectResIn(s, Lazy, "s = x(1)")
}

// --- Figure 4 / criterion C1 (balance) exercised by the verifier on a
// shape where one branch's production region closes earlier than the
// other's (the §3.3 discussion of Figure 3's else branch).
func TestBalanceAcrossBranches(t *testing.T) {
	sc := newScenario(t, `
if c then
    a = 1
    s = x(1)
else
    b = 2
endif
r = x(2)
`)
	sc.take("s = x(1)")
	sc.take("r = x(2)")
	// solveVerified asserts C1 on every path, which is the point.
	s := sc.solveVerified()
	sc.expectResIn(s, Eager, "entry")
}

// --- Zero-trip loop hoisting (paper §1, §2): consumption inside a DO
// loop hoists production above the loop even though the loop may run
// zero times.
func TestZeroTripHoist(t *testing.T) {
	sc := newScenario(t, `
a = 1
do i = 1, n
    s = x(i)
enddo
`)
	sc.take("s = x(i)")
	s := sc.solveVerified()
	sc.expectResIn(s, Eager, "entry")
	// The lazy producer lands at the loop construct (header entry =
	// immediately before the DO), not inside the body.
	sc.expectResIn(s, Lazy, "header")
}

// --- NoHoist pins production inside the loop (§4.1).
func TestNoHoistKeepsProductionInside(t *testing.T) {
	sc := newScenario(t, `
a = 1
do i = 1, n
    s = x(i)
enddo
`)
	sc.take("s = x(i)")
	sc.node("header").NoHoist = true
	s := sc.solve()
	// With hoisting suppressed, production sits at the consumer inside
	// the loop; safety now holds even on zero-trip paths.
	sc.expectResIn(s, Eager, "s = x(i)")
	sc.expectResIn(s, Lazy, "s = x(i)")
	if vs := Verify(s, sc.init, VerifyConfig{CheckSafety: true, Trips: []int{0, 1, 2}}); len(vs) > 0 {
		t.Fatalf("violations: %v", vs)
	}
}

// --- Loop-invariant motion: a loop-invariant consumer inside a loop is
// produced once outside, not once per iteration (message vectorization).
func TestLoopInvariantMotion(t *testing.T) {
	sc := newScenario(t, `
do i = 1, n
    s = x(5)
    t = x(5)
enddo
`)
	sc.take("s = x(5)")
	sc.take("t = x(5)")
	s := sc.solveVerified()
	sc.expectResIn(s, Eager, "entry")
	sc.expectResIn(s, Lazy, "header")
}

// --- STEAL inside a loop forces per-iteration re-production.
func TestStealForcesReproduction(t *testing.T) {
	sc := newScenario(t, `
do i = 1, n
    y(i) = 0
    s = x(i)
enddo
`)
	sc.steal("y(i) = 0")
	sc.take("s = x(i)")
	s := sc.solveVerified()
	// Production cannot be hoisted past the steal: it must sit between
	// the steal and the consumer, inside the loop.
	sc.expectResIn(s, Eager, "s = x(i)")
	sc.expectResIn(s, Lazy, "s = x(i)")
}

// --- GIVE side effects (§3.1): a free production satisfies the consumer
// with no generated code at all.
func TestGiveComesForFree(t *testing.T) {
	sc := newScenario(t, `
y(1) = 7
s = x(1)
`)
	sc.give("y(1) = 7")
	sc.take("s = x(1)")
	s := sc.solveVerified()
	for _, m := range []Mode{Eager, Lazy} {
		if in, out := resNodes(s, m); len(in)+len(out) != 0 {
			t.Fatalf("%v production generated despite GIVE: in=%v out=%v", m, in, out)
		}
	}
}

// --- GIVE on one branch only: the other branch still needs production,
// and balance must hold at the merge (the Figure 3 discussion in §3.3).
func TestGiveOnOneBranch(t *testing.T) {
	sc := newScenario(t, `
if c then
    y(1) = 7
else
    b = 2
endif
s = x(1)
`)
	sc.give("y(1) = 7")
	sc.take("s = x(1)")
	s := sc.solveVerified()
	// Production must appear on the else side only.
	in, _ := resNodes(s, Eager)
	if len(in) != 1 {
		t.Fatalf("eager RES_in sites = %v, want exactly one (the else side)", in)
	}
	if strings.Contains(in[0], "y(1)") {
		t.Fatalf("production placed on the giving branch: %v", in)
	}
}

// --- AFTER problem: a definition of non-owned data must be written back
// after it happens; production follows consumption.
func TestAfterProblemBasic(t *testing.T) {
	sc := newScenario(t, `
a = 1
x(1) = 5
b = 2
`)
	sc.take("x(1) = 5") // the def consumes (needs a later write-back)
	rev, err := interval.Reverse(sc.g)
	if err != nil {
		t.Fatal(err)
	}
	s := MustSolve(rev, sc.u, sc.init)
	if vs := Verify(s, sc.init, VerifyConfig{CheckSafety: true}); len(vs) > 0 {
		t.Fatalf("violations: %v", vs)
	}
	// In reversed orientation the "entry" is the original exit: the
	// eager producer (WRITE_Recv as early as... = as late as possible in
	// original time? no — eager on the reversed graph is earliest in
	// reversed time, i.e. latest in original time).
	p := s.Place(Eager)
	exitNode := rev.NodeFor(sc.node("exit").Block)
	if !p.ResIn[exitNode.ID].Has(0) {
		t.Fatalf("eager AFTER production should land at original exit; dump:\n%s",
			s.Dump(func(i int) string { return "x" }))
	}
	lazyNode := rev.NodeFor(sc.node("x(1) = 5").Block)
	if !s.Place(Lazy).ResIn[lazyNode.ID].Has(0) {
		t.Fatalf("lazy AFTER production should sit right after the def; dump:\n%s",
			s.Dump(func(i int) string { return "x" }))
	}
}

// --- AFTER problem with a DO loop: write-back of a def inside a loop is
// sunk below the loop (vectorized), mirroring the BEFORE hoist.
func TestAfterProblemLoopSink(t *testing.T) {
	sc := newScenario(t, `
do i = 1, n
    x(i) = 5
enddo
b = 2
`)
	sc.take("x(i) = 5")
	rev, err := interval.Reverse(sc.g)
	if err != nil {
		t.Fatal(err)
	}
	s := MustSolve(rev, sc.u, sc.init)
	if vs := Verify(s, sc.init, VerifyConfig{CheckSafety: true}); len(vs) > 0 {
		t.Fatalf("violations: %v", vs)
	}
	// Lazy in reversed time = earliest in original time = right at the
	// loop construct's reversed entry... assert instead the stronger
	// user-visible property: no production inside the loop body.
	for _, m := range []Mode{Eager, Lazy} {
		p := s.Place(m)
		body := rev.NodeFor(sc.node("x(i) = 5").Block)
		if p.ResIn[body.ID].Has(0) || p.ResOut[body.ID].Has(0) {
			t.Fatalf("%v AFTER production not sunk out of loop; dump:\n%s", m,
				s.Dump(func(i int) string { return "x" }))
		}
	}
}

// --- Figure 16 / §5.3: an AFTER problem on a program with a jump out of
// a loop. The reversed graph has a jump into the loop; production must
// not be hoisted into the loop header (which would be unsafe on the
// bypassing path).
func TestAfterProblemJumpGuard(t *testing.T) {
	sc := newScenario(t, `
do i = 1, n
    x(i) = 5
    if test(i) goto 9
enddo
9 b = 2
`)
	sc.take("x(i) = 5")
	rev, err := interval.Reverse(sc.g)
	if err != nil {
		t.Fatal(err)
	}
	// the loop header must carry the §5.3 guard
	hdr := rev.NodeFor(sc.node("header").Block)
	if !hdr.NoHoist {
		t.Fatal("reversed loop with jump edge should be NoHoist")
	}
	s := MustSolve(rev, sc.u, sc.init)
	// Correctness (C1 balance, C3 sufficiency) must hold. Optimality O1
	// may not: the paper itself notes its §5.3 treatment "prevents unsafe
	// code generation [but] may miss some otherwise legal optimizations",
	// and the re-entrant jump path indeed sees a redundant production.
	for _, v := range Verify(s, sc.init, VerifyConfig{}) {
		if v.Criterion != "O1" {
			t.Errorf("violation: %v", v)
		}
	}
}

// --- Verifier self-test: a deliberately broken placement must be caught.
func TestVerifierCatchesInsufficiency(t *testing.T) {
	sc := newScenario(t, `
a = 1
s = x(1)
`)
	sc.take("s = x(1)")
	s := sc.solve()
	// sabotage: erase all production
	for _, m := range []Mode{Eager, Lazy} {
		p := s.Place(m)
		for _, set := range p.ResIn {
			set.Clear()
		}
		for _, set := range p.ResOut {
			set.Clear()
		}
	}
	vs := Verify(s, sc.init, VerifyConfig{})
	foundC3 := false
	for _, v := range vs {
		if v.Criterion == "C3" {
			foundC3 = true
		}
	}
	if !foundC3 {
		t.Fatalf("verifier missed missing production: %v", vs)
	}
}

func TestVerifierCatchesImbalance(t *testing.T) {
	sc := newScenario(t, `
a = 1
s = x(1)
`)
	sc.take("s = x(1)")
	s := sc.solve()
	// sabotage: add a second eager production right before the consumer
	n := sc.g.NodeFor(sc.node("s = x(1)").Block)
	s.Eager.ResIn[n.ID].Add(0)
	vs := Verify(s, sc.init, VerifyConfig{})
	found := false
	for _, v := range vs {
		if v.Criterion == "C1" || v.Criterion == "O1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("verifier missed double production: %v", vs)
	}
}

// --- The full Figure 1 READ placement: one vectorized producer, hoisted
// to the top, receives on both branches (Figure 2 right).
func TestFig1ReadPlacement(t *testing.T) {
	sc := newScenario(t, `
do i = 1, n
    y(i) = ...
enddo
if test then
    do j = 1, n
        z(j) = ...
    enddo
    do k = 1, n
        ... = x(a(k))
    enddo
else
    do l = 1, n
        ... = x(a(l))
    enddo
endif
`)
	// x(a(k)) and x(a(l)) are the same value-numbered item.
	sc.take("x(a(k))")
	sc.take("x(a(l))")
	s := sc.solveVerified()
	// Eager: exactly one send, at program entry (hoisted above the
	// i-loop for latency hiding).
	sc.expectResIn(s, Eager, "entry")
	// Lazy: one receive per branch, before the k-loop and before the
	// l-loop.
	in, _ := resNodes(s, Lazy)
	if len(in) != 2 {
		t.Fatalf("lazy RES_in sites = %v, want 2 (one per branch)", in)
	}
}

func TestDumpRendersAllVariables(t *testing.T) {
	sc := newScenario(t, "a = 1\ns = x(1)")
	sc.take("s = x(1)")
	s := sc.solve()
	dump := s.Dump(func(int) string { return "x" })
	for _, want := range []string{"STEAL", "TAKEN_out", "GIVE_loc", "GIVEN_in/eager",
		"RES_in/lazy", "RES_out/eager", "BLOCK_loc"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestModeString(t *testing.T) {
	if Eager.String() != "eager" || Lazy.String() != "lazy" {
		t.Fatal("mode strings")
	}
}

func TestViolationString(t *testing.T) {
	sc := newScenario(t, "s = x(1)")
	sc.take("s = x(1)")
	s := sc.solve()
	for _, m := range []Mode{Eager, Lazy} {
		for _, set := range s.Place(m).ResIn {
			set.Clear()
		}
	}
	vs := Verify(s, sc.init, VerifyConfig{})
	if len(vs) == 0 {
		t.Fatal("expected violations")
	}
	if str := vs[0].String(); !strings.Contains(str, "C3") {
		t.Fatalf("violation string %q", str)
	}
	if len(vs[0].Path) == 0 {
		t.Fatal("violation should carry its path")
	}
}
