package core

import (
	"testing"

	"givetake/internal/bitset"
	"givetake/internal/cfg"
	"givetake/internal/frontend"
	"givetake/internal/interval"
)

// This file reproduces the paper's worked example: the READ problem on
// the code of Figure 11 over the flow graph of Figure 12, with the
// dataflow variable values listed throughout §4. The universe is
// {x_k, y_a, y_b} for the references x(k+10), y(a(i)), y(b(k)).
const (
	xk = iota // x(k+10)
	ya        // y(a(i))
	yb        // y(b(k))
	universeSize
)

var itemName = map[int]string{xk: "x_k", ya: "y_a", yb: "y_b"}

const fig11Src = `
do i = 1, n
    y(a(i)) = ...
    if test(i) goto 77
enddo
do j = 1, n
    ... = ...
enddo
77 do k = 1, n
    ... = x(k+10) + y(b(k))
enddo
`

// fig12 builds the interval graph and a map from the paper's node
// numbers (1–14, Figure 12) to nodes, identified structurally so the
// test does not depend on preorder tie-breaking (our preorder swaps the
// paper's nodes 9 and 10, which the partial orders leave unordered).
func fig12(t *testing.T) (*interval.Graph, map[int]*interval.Node) {
	t.Helper()
	prog, err := frontend.Parse(fig11Src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cfg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	g, err := interval.FromCFG(c)
	if err != nil {
		t.Fatal(err)
	}
	m := map[int]*interval.Node{}
	var iHdr, jHdr, kHdr, branch *interval.Node
	for _, n := range g.Nodes {
		if n.Block.Kind == cfg.KHeader {
			switch n.Block.Loop.Var {
			case "i":
				iHdr = n
			case "j":
				jHdr = n
			case "k":
				kHdr = n
			}
		}
		if n.Block.Kind == cfg.KBranch {
			branch = n
		}
	}
	if iHdr == nil || jHdr == nil || kHdr == nil || branch == nil {
		t.Fatalf("could not identify loop headers/branch:\n%s", g)
	}
	for _, n := range g.Nodes {
		switch {
		case n.Block.Kind == cfg.KEntry:
			m[1] = n
		case n == iHdr:
			m[2] = n
		case n.Block.Kind == cfg.KStmt && n.Parent == iHdr:
			m[3] = n
		case n == branch:
			m[4] = n
		case n.Block.Kind == cfg.KJoin:
			m[5] = n
		case n.Block.Kind == cfg.KPad && n.In[0].From == iHdr:
			m[6] = n
		case n == jHdr:
			m[7] = n
		case n.Parent == jHdr:
			m[8] = n
		case n.Block.Kind == cfg.KPad && n.In[0].From == jHdr:
			m[9] = n
		case n.Block.Kind == cfg.KPad:
			m[10] = n // the jump landing pad (pred = branch)
		case n.Block.Kind == cfg.KAnchor:
			m[11] = n
		case n == kHdr:
			m[12] = n
		case n.Parent == kHdr:
			m[13] = n
		case n.Block.Kind == cfg.KExit:
			m[14] = n
		}
	}
	if len(m) != 14 {
		t.Fatalf("identified %d of 14 paper nodes:\n%s", len(m), g)
	}
	// sanity: the jump landing pad's predecessor is the branch
	if m[10].In[0].From != m[4] {
		t.Fatalf("node 10 should be the jump landing pad")
	}
	return g, m
}

// fig12Init builds the READ-problem initial sets of §4.1:
// STEAL_init(3) = {y_b}, GIVE_init(3) = {y_a}, TAKE_init(13) = {x_k,y_b}.
func fig12Init(g *interval.Graph, m map[int]*interval.Node) *Init {
	init := NewInit(len(g.Nodes))
	init.AddSteal(m[3], universeSize, bitset.Of(universeSize, yb))
	init.AddGive(m[3], universeSize, bitset.Of(universeSize, ya))
	init.AddTake(m[13], universeSize, bitset.Of(universeSize, xk, yb))
	return init
}

// expectation: item ∈ variable exactly at the listed paper nodes.
type expectation struct {
	name  string
	v     func(s *Solution) []*bitset.Set
	item  int
	nodes []int
}

func checkExact(t *testing.T, s *Solution, m map[int]*interval.Node, e expectation) {
	t.Helper()
	want := map[int]bool{}
	for _, n := range e.nodes {
		want[n] = true
	}
	vs := e.v(s)
	for num := 1; num <= 14; num++ {
		got := vs[m[num].ID].Has(e.item)
		if got != want[num] {
			t.Errorf("%s: %s at node %d = %v, want %v", e.name, itemName[e.item], num, got, want[num])
		}
	}
}

func seq(lo, hi int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

func cat(lists ...[]int) []int {
	var out []int
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// TestFig12GoldenValues checks every §4 example value against the solver.
func TestFig12GoldenValues(t *testing.T) {
	g, m := fig12(t)
	s := MustSolve(g, universeSize, fig12Init(g, m))

	steal := func(s *Solution) []*bitset.Set { return s.Steal }
	block := func(s *Solution) []*bitset.Set { return s.Block }
	takenOut := func(s *Solution) []*bitset.Set { return s.TakenOut }
	take := func(s *Solution) []*bitset.Set { return s.Take }
	takenIn := func(s *Solution) []*bitset.Set { return s.TakenIn }
	blockLoc := func(s *Solution) []*bitset.Set { return s.BlockLoc }
	takeLoc := func(s *Solution) []*bitset.Set { return s.TakeLoc }
	stealLoc := func(s *Solution) []*bitset.Set { return s.StealLoc }
	givenInE := func(s *Solution) []*bitset.Set { return s.Eager.GivenIn }
	givenE := func(s *Solution) []*bitset.Set { return s.Eager.Given }
	givenOutE := func(s *Solution) []*bitset.Set { return s.Eager.GivenOut }
	givenInL := func(s *Solution) []*bitset.Set { return s.Lazy.GivenIn }
	givenL := func(s *Solution) []*bitset.Set { return s.Lazy.Given }
	givenOutL := func(s *Solution) []*bitset.Set { return s.Lazy.GivenOut }
	resInE := func(s *Solution) []*bitset.Set { return s.Eager.ResIn }
	resInL := func(s *Solution) []*bitset.Set { return s.Lazy.ResIn }

	exps := []expectation{
		// §4.2, propagating consumption
		{"STEAL", steal, yb, []int{2, 3}},
		{"STEAL", steal, xk, nil},
		{"STEAL", steal, ya, nil},
		// The paper lists y_a, y_b ∈ BLOCK({2,3}); Eq. 3 additionally puts
		// x_k and y_b into BLOCK(12), because GIVE(12) inherits
		// GIVE_loc(LASTCHILD(12)) = TAKE(13) — consumption counts as
		// production for blocking purposes (§4.3).
		{"BLOCK", block, ya, []int{2, 3}},
		{"BLOCK", block, yb, []int{2, 3, 12}},
		{"BLOCK", block, xk, []int{12}},
		{"TAKEN_out", takenOut, xk, cat([]int{1, 2, 6, 7}, seq(9, 11))},
		{"TAKEN_out", takenOut, yb, cat([]int{2, 6, 7}, seq(9, 11))},
		{"TAKE", take, xk, []int{12, 13}},
		{"TAKE", take, yb, []int{12, 13}},
		{"TAKE", take, ya, nil},
		{"TAKEN_in", takenIn, xk, cat([]int{1, 2, 6, 7}, seq(9, 13))},
		{"TAKEN_in", takenIn, yb, cat([]int{6, 7}, seq(9, 13))},
		{"BLOCK_loc", blockLoc, ya, seq(1, 3)},
		{"BLOCK_loc", blockLoc, yb, seq(1, 3)},
		{"TAKE_loc", takeLoc, xk, cat([]int{1, 2, 6, 7}, seq(9, 13))},
		{"TAKE_loc", takeLoc, yb, cat([]int{6, 7}, seq(9, 13))},
		// §4.3, blocking consumption
		// The paper's list also names node 14, but that contradicts its
		// own Eq. 10: y_b ∈ GIVE_loc(12) (TAKE(12) resupplies it), so the
		// subtraction drops y_b on the way to 14. We follow the equation.
		{"STEAL_loc", stealLoc, yb, cat(seq(2, 7), seq(9, 12))},
		// §4.4, placing production (eager)
		{"GIVEN_in/e", givenInE, xk, seq(2, 14)},
		{"GIVEN_in/e", givenInE, ya, seq(4, 14)},
		{"GIVEN_in/e", givenInE, yb, cat(seq(7, 9), seq(11, 14))},
		{"GIVEN/e", givenE, xk, seq(1, 14)},
		{"GIVEN/e", givenE, ya, seq(4, 14)},
		{"GIVEN/e", givenE, yb, seq(6, 14)},
		{"GIVEN_out/e", givenOutE, xk, seq(1, 14)},
		{"GIVEN_out/e", givenOutE, ya, seq(2, 14)},
		{"GIVEN_out/e", givenOutE, yb, seq(6, 14)},
		// §4.4, placing production (lazy)
		{"GIVEN_in/l", givenInL, xk, []int{13, 14}},
		{"GIVEN_in/l", givenInL, ya, seq(4, 14)},
		{"GIVEN_in/l", givenInL, yb, []int{13, 14}},
		{"GIVEN/l", givenL, xk, seq(12, 14)},
		{"GIVEN/l", givenL, ya, seq(4, 14)},
		{"GIVEN/l", givenL, yb, seq(12, 14)},
		{"GIVEN_out/l", givenOutL, xk, seq(12, 14)},
		{"GIVEN_out/l", givenOutL, ya, seq(2, 14)},
		{"GIVEN_out/l", givenOutL, yb, seq(12, 14)},
		// §4.5, results: the READ_Send's and READ_Recv's of Figure 14
		{"RES_in/e", resInE, xk, []int{1}},
		{"RES_in/e", resInE, yb, []int{6, 10}},
		{"RES_in/e", resInE, ya, nil},
		{"RES_in/l", resInL, xk, []int{12}},
		{"RES_in/l", resInL, yb, []int{12}},
		{"RES_in/l", resInL, ya, nil},
	}
	for _, e := range exps {
		checkExact(t, s, m, e)
	}

	// §4.2 GIVE values implied by the text: node 3 gives y_a (GIVE_init),
	// node 2 inherits it through GIVE_loc(LASTCHILD(2)).
	for _, num := range []int{2, 3} {
		if !s.Give[m[num].ID].Has(ya) {
			t.Errorf("GIVE: y_a missing at node %d", num)
		}
	}

	// §4.3 GIVE_loc: the paper lists y_a at {2..7, 9..11} and x_k,y_b at
	// {12..14}. We check those memberships positively (the equations also
	// propagate y_a into 12 and 14 via the Eq. 9 meet over node 11, which
	// the paper's list omits; both are harmless availability facts).
	for _, num := range cat(seq(2, 7), seq(9, 11)) {
		if !s.GiveLoc[m[num].ID].Has(ya) {
			t.Errorf("GIVE_loc: y_a missing at node %d", num)
		}
	}
	for _, num := range seq(12, 14) {
		if !s.GiveLoc[m[num].ID].Has(xk) || !s.GiveLoc[m[num].ID].Has(yb) {
			t.Errorf("GIVE_loc: x_k/y_b missing at node %d", num)
		}
	}
	if s.GiveLoc[m[1].ID].Has(ya) {
		t.Errorf("GIVE_loc: y_a should not reach node 1")
	}

	// §4.5: "there is no production needed on exit" — RES_out empty
	// everywhere, both modes.
	for num := 1; num <= 14; num++ {
		for _, mode := range []Mode{Eager, Lazy} {
			if !s.Place(mode).ResOut[m[num].ID].IsEmpty() {
				t.Errorf("RES_out/%v at node %d = %v, want empty", mode,
					num, s.Place(mode).ResOut[m[num].ID].StringWith(func(i int) string { return itemName[i] }))
			}
		}
	}
}

// TestFig12EquationEvalsLinear confirms each equation runs once per node:
// the 10 mode-independent equations once, the 5 placement equations once
// per mode, i.e. 20 evaluations per node.
func TestFig12EquationEvalsLinear(t *testing.T) {
	g, m := fig12(t)
	s := MustSolve(g, universeSize, fig12Init(g, m))
	want := 20 * len(g.Nodes)
	if s.EquationEvals != want {
		t.Fatalf("equation evaluations = %d, want %d", s.EquationEvals, want)
	}
}
