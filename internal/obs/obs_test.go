package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// A nil collector must be safe to drive: Begin returns a callable
// no-op and Count does nothing, so instrumented code needs no guards.
func TestNilCollector(t *testing.T) {
	end := Begin(nil, "phase", "k", 1)
	end("done", true)
	end() // double end on the no-op too
	Count(nil, "counter", 5)
}

func TestRecorderSpans(t *testing.T) {
	r := NewRecorder(Config{})
	outer := Begin(r, "outer", "size", 3)
	inner := Begin(r, "inner")
	inner("items", 7)
	outer()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "outer" || spans[0].Depth != 0 {
		t.Errorf("outer span: %+v", spans[0])
	}
	if spans[1].Name != "inner" || spans[1].Depth != 1 {
		t.Errorf("inner span should nest at depth 1: %+v", spans[1])
	}
	for _, sp := range spans {
		if sp.Dur < 0 {
			t.Errorf("span %s still open", sp.Name)
		}
	}
	// begin args and end args are both kept, in order
	if len(spans[0].Args) != 1 || spans[0].Args[0].Key != "size" {
		t.Errorf("outer args: %+v", spans[0].Args)
	}
	if len(spans[1].Args) != 1 || spans[1].Args[0].Key != "items" {
		t.Errorf("inner args: %+v", spans[1].Args)
	}
}

func TestRecorderDoubleEndIsNoOp(t *testing.T) {
	r := NewRecorder(Config{})
	end := Begin(r, "phase")
	end("first", 1)
	end("second", 2)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if len(spans[0].Args) != 1 || spans[0].Args[0].Key != "first" {
		t.Errorf("second End must not attach args: %+v", spans[0].Args)
	}
}

func TestRecorderCounters(t *testing.T) {
	r := NewRecorder(Config{})
	Count(r, "msgs", 3)
	Count(r, "msgs", 2)
	Count(r, "vol", 10)
	c := r.Counters()
	if c["msgs"] != 5 || c["vol"] != 10 {
		t.Errorf("counters = %v", c)
	}
}

func TestWriteTrace(t *testing.T) {
	r := NewRecorder(Config{})
	end := Begin(r, "solve", "nodes", 17)
	end()
	Count(r, "eq-evals", 340)
	open := Begin(r, "never-closed")
	_ = open

	var sb strings.Builder
	if err := r.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &tf); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, sb.String())
	}
	var haveSolve, haveCounter bool
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Name == "solve" && ev.Ph == "X":
			haveSolve = true
			if ev.Dur <= 0 {
				t.Error("solve span needs positive dur")
			}
			if ev.Args["nodes"] != float64(17) {
				t.Errorf("solve args = %v", ev.Args)
			}
		case ev.Name == "eq-evals" && ev.Ph == "C":
			haveCounter = true
			if ev.Args["value"] != float64(340) {
				t.Errorf("counter args = %v", ev.Args)
			}
		case ev.Name == "never-closed":
			t.Error("open spans must not be emitted")
		}
	}
	if !haveSolve || !haveCounter {
		t.Errorf("trace missing events (solve=%v counter=%v):\n%s", haveSolve, haveCounter, sb.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 4, 515, -7} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	// 0 and -7 land in bucket 0; 1 in bucket 1; 2,3 in bucket 2; 4 in
	// bucket 3; 515 in bucket 10 ([512,1024))
	want := []int64{2, 1, 2, 1, 0, 0, 0, 0, 0, 0, 1}
	if len(h.Counts) != len(want) {
		t.Fatalf("buckets = %v", h.Counts)
	}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d (%s) = %d, want %d", i, BucketLabel(i), h.Counts[i], w)
		}
	}
	if BucketLabel(10) != "[512,1024)" {
		t.Errorf("BucketLabel(10) = %s", BucketLabel(10))
	}
}

func TestOnePass(t *testing.T) {
	good := SolverCounters{Problem: "READ", EvalsPerEqMin: 1, EvalsPerEqMax: 1}
	if err := good.OnePass(); err != nil {
		t.Error(err)
	}
	bad := SolverCounters{Problem: "READ", EvalsPerEqMin: 1, EvalsPerEqMax: 2}
	if err := bad.OnePass(); err == nil {
		t.Error("re-evaluation must fail OnePass")
	}
}

func TestReportWriteText(t *testing.T) {
	rep := &Report{
		Program: "fig1.f",
		Phases:  []PhaseStats{{Name: "parse", WallNS: 1500}},
		Solver: []SolverCounters{{
			Problem: "READ", Nodes: 17, Universe: 1, Words: 1, MaxLevel: 2,
			EquationEvals: 340, EvalsPerEqMin: 1, EvalsPerEqMax: 1,
			SetOps: 835, WordOps: 835,
		}},
		Runtime: []RuntimeStats{{
			Name: "gnt-split", Steps: 100, Messages: 1, Volume: 256,
			SplitPairs: 1, OverlapTotal: 515, OverlapMin: 515, OverlapMax: 515,
			Cost: map[string]CostStats{"high-latency": {Total: 1770}},
		}},
		Counters: map[string]int64{"x": 1},
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig1.f", "parse", "1.5µs", "READ", "340", "gnt-split", "515", "high-latency", "x = 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	if (RuntimeStats{SplitPairs: 0}).MeanOverlap() != -1 {
		t.Error("MeanOverlap without pairs should be -1")
	}
}
