package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Config selects what a Recorder captures.
type Config struct {
	// Mem captures allocation deltas (runtime.MemStats TotalAlloc and
	// Mallocs) at span boundaries. ReadMemStats costs microseconds per
	// call, which is negligible at phase granularity but worth an
	// explicit opt-in.
	Mem bool
}

// Arg is one span annotation, kept in attachment order so text output
// is stable.
type Arg struct {
	Key   string
	Value any
}

// Span is one recorded phase: a named [start, start+dur) interval with
// nesting depth, annotations, and (optionally) allocation deltas.
type Span struct {
	Name  string
	Depth int           // nesting depth at open time (0 = top level)
	Start time.Duration // offset from the recorder's epoch
	Dur   time.Duration // -1 while still open
	Args  []Arg

	// Allocation deltas across the span (nested spans included);
	// captured only when Config.Mem is set.
	AllocBytes   int64
	AllocObjects int64
}

// Recorder is the standard Collector: it accumulates spans and
// counters in memory and renders them as a Chrome trace-event JSON
// profile (WriteTrace) or as Report sections (Phases, Counters).
type Recorder struct {
	cfg   Config
	epoch time.Time

	mu       sync.Mutex
	spans    []Span // in open order
	open     []int  // stack of indices into spans
	counters map[string]int64
	order    []string // counter names in first-touch order
}

// NewRecorder returns an empty recorder whose epoch is now.
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{cfg: cfg, epoch: time.Now(), counters: map[string]int64{}}
}

// BeginSpan implements Collector.
func (r *Recorder) BeginSpan(name string, kv ...any) EndFunc {
	r.mu.Lock()
	idx := len(r.spans)
	sp := Span{Name: name, Depth: len(r.open), Start: time.Since(r.epoch), Dur: -1, Args: kvArgs(kv)}
	if r.cfg.Mem {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		// stash the baseline in the delta fields; End subtracts
		sp.AllocBytes = int64(ms.TotalAlloc)
		sp.AllocObjects = int64(ms.Mallocs)
	}
	r.spans = append(r.spans, sp)
	r.open = append(r.open, idx)
	r.mu.Unlock()
	return func(kv ...any) {
		r.mu.Lock()
		defer r.mu.Unlock()
		sp := &r.spans[idx]
		if sp.Dur >= 0 {
			return // already closed; double End is a no-op
		}
		sp.Dur = time.Since(r.epoch) - sp.Start
		sp.Args = append(sp.Args, kvArgs(kv)...)
		if r.cfg.Mem {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			sp.AllocBytes = int64(ms.TotalAlloc) - sp.AllocBytes
			sp.AllocObjects = int64(ms.Mallocs) - sp.AllocObjects
		}
		// pop the innermost matching open entry
		for i := len(r.open) - 1; i >= 0; i-- {
			if r.open[i] == idx {
				r.open = append(r.open[:i], r.open[i+1:]...)
				break
			}
		}
	}
}

// Count implements Collector.
func (r *Recorder) Count(name string, delta int64) {
	r.mu.Lock()
	if _, ok := r.counters[name]; !ok {
		r.order = append(r.order, name)
	}
	r.counters[name] += delta
	r.mu.Unlock()
}

// kvArgs folds alternating key/value pairs into Args; a trailing key
// without a value gets nil.
func kvArgs(kv []any) []Arg {
	if len(kv) == 0 {
		return nil
	}
	args := make([]Arg, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = fmt.Sprint(kv[i])
		}
		var v any
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		args = append(args, Arg{Key: k, Value: v})
	}
	return args
}

// Spans returns the recorded spans in open order. Open spans have
// Dur == -1.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Counters returns the accumulated counters (a copy).
func (r *Recorder) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Phases flattens the recorded spans into Report rows, preserving open
// order and nesting depth. Still-open spans are reported with zero
// wall time.
func (r *Recorder) Phases() []PhaseStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PhaseStats, 0, len(r.spans))
	for _, sp := range r.spans {
		p := PhaseStats{Name: sp.Name, Depth: sp.Depth}
		if sp.Dur >= 0 {
			p.WallNS = sp.Dur.Nanoseconds()
			if r.cfg.Mem {
				p.AllocBytes = sp.AllocBytes
				p.AllocObjects = sp.AllocObjects
			}
		}
		out = append(out, p)
	}
	return out
}

// Chrome trace-event JSON (the "JSON Array Format" both Perfetto and
// chrome://tracing load): one complete event ("ph":"X") per closed
// span, one counter event ("ph":"C") per counter at the end of the
// trace, plus process/thread name metadata.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders the recording as Chrome trace-event JSON.
func (r *Recorder) WriteTrace(w io.Writer) error {
	r.mu.Lock()
	spans := make([]Span, len(r.spans))
	copy(spans, r.spans)
	counters := make(map[string]int64, len(r.counters))
	order := append([]string(nil), r.order...)
	for k, v := range r.counters {
		counters[k] = v
	}
	r.mu.Unlock()

	tf := traceFile{DisplayTimeUnit: "ms"}
	tf.TraceEvents = append(tf.TraceEvents,
		traceEvent{Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]any{"name": "gnt"}},
		traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]any{"name": "pipeline"}})
	end := time.Duration(0)
	for _, sp := range spans {
		if sp.Dur < 0 {
			continue // open span: not representable as a complete event
		}
		ev := traceEvent{
			Name: sp.Name, Cat: "phase", Ph: "X",
			Ts:  float64(sp.Start.Nanoseconds()) / 1e3,
			Dur: float64(sp.Dur.Nanoseconds()) / 1e3,
			Pid: 1, Tid: 1,
		}
		if ev.Dur <= 0 {
			ev.Dur = 0.001 // zero-duration X events confuse viewers
		}
		if len(sp.Args) > 0 || sp.AllocBytes != 0 || sp.AllocObjects != 0 {
			ev.Args = map[string]any{}
			for _, a := range sp.Args {
				ev.Args[a.Key] = a.Value
			}
			if r.cfg.Mem {
				ev.Args["alloc_bytes"] = sp.AllocBytes
				ev.Args["alloc_objects"] = sp.AllocObjects
			}
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
		if e := sp.Start + sp.Dur; e > end {
			end = e
		}
	}
	ts := float64(end.Nanoseconds()) / 1e3
	for _, name := range order {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: name, Cat: "counter", Ph: "C", Ts: ts, Pid: 1, Tid: 1,
			Args: map[string]any{"value": counters[name]},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}
