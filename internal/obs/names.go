package obs

// Canonical span and counter names of the concurrent analysis engine
// (internal/engine). They live here, next to the pipeline's own span
// names, so every consumer of a Report or trace matches on one
// vocabulary instead of scattered string literals.
const (
	// SpanEngineAnalyze wraps one engine-scheduled analysis: build →
	// {solve-read ∥ solve-write} → {check ∥ check} → merge. The comm
	// stage spans (cfg-build, solve-read, ...) nest inside it.
	SpanEngineAnalyze = "engine.analyze"
	// SpanEngineVerify wraps the parallel static-verification stage of
	// one engine-scheduled analysis.
	SpanEngineVerify = "engine.verify"

	// CounterCacheHit counts result-cache hits (a stored byte-identical
	// response was returned without any analysis work).
	CounterCacheHit = "engine.cache.hit"
	// CounterCacheMiss counts result-cache misses (the request led its
	// single-flight group and computed the result).
	CounterCacheMiss = "engine.cache.miss"
	// CounterCacheFollow counts single-flight followers (the request
	// waited on an identical in-flight computation and shared its
	// bytes).
	CounterCacheFollow = "engine.cache.follow"
	// CounterCacheEvict counts LRU evictions forced by the cache's byte
	// bound.
	CounterCacheEvict = "engine.cache.evict"
	// CounterPoolTask counts tasks executed by the engine's worker
	// pool.
	CounterPoolTask = "engine.pool.task"
	// CounterPoolPanic counts tasks that panicked and were converted to
	// structured errors by the pool's isolation boundary.
	CounterPoolPanic = "engine.pool.panic"
	// CounterAdmitWon / CounterAdmitShed count admission-queue outcomes
	// reported by the serving layer: requests that won an analysis slot
	// versus requests shed on queue timeout.
	CounterAdmitWon  = "engine.admission.won"
	CounterAdmitShed = "engine.admission.shed"
)

// Canonical span and counter names of the durable result journal
// (internal/journal) and its replay path.
const (
	// SpanJournalFlush wraps one group commit: encode the pending
	// batch, append it to the current segment, fsync (seal).
	SpanJournalFlush = "journal.flush"
	// SpanJournalReplay wraps one startup replay pass over the
	// journal's segments.
	SpanJournalReplay = "journal.replay"

	// CounterJournalAppend counts records enqueued for group commit.
	CounterJournalAppend = "journal.append"
	// CounterJournalSealed counts batches sealed (Merkle root written,
	// fsync'd); CounterJournalSealedRecords counts the records inside
	// them.
	CounterJournalSealed        = "journal.sealed"
	CounterJournalSealedRecords = "journal.sealed.records"
	// CounterJournalReplayed counts records verified and delivered by
	// replay.
	CounterJournalReplayed = "journal.replayed"
	// CounterJournalCorruptBatch / CounterJournalCorruptRecord count
	// batches dropped whole at replay (header corruption, record CRC
	// failure, Merkle root mismatch) and the records lost inside them.
	CounterJournalCorruptBatch  = "journal.corrupt.batch"
	CounterJournalCorruptRecord = "journal.corrupt.record"
	// CounterJournalTornTail counts segments that ended mid-batch — the
	// expected shape of a crash between a write and its fsync.
	CounterJournalTornTail = "journal.torn_tail"
)
