package obs

// Canonical span names of the sequential analysis pipeline. Every
// stage span emitted anywhere in the repository must be declared here
// (or carry one of the declared prefixes below); the name-drift test
// in names_drift_test.go enforces it, and the telemetry layer keys its
// per-stage latency histograms on exactly this vocabulary.
const (
	// SpanParse wraps the mini-Fortran frontend.
	SpanParse = "parse"
	// SpanCFGBuild wraps control-flow-graph construction.
	SpanCFGBuild = "cfg-build"
	// SpanIntervalReduce wraps the interval (loop-forest) reduction.
	SpanIntervalReduce = "interval-reduce"
	// SpanSectionUniverse wraps array-section universe collection.
	SpanSectionUniverse = "section-universe"
	// SpanSolveRead / SpanSolveWrite wrap the two dataflow solves;
	// SpanReverseGraph wraps the graph reversal the WRITE solve needs.
	SpanSolveRead    = "solve-read"
	SpanSolveWrite   = "solve-write"
	SpanReverseGraph = "reverse-graph"
	// SpanAtomicFallback wraps the ladder's rung-3 placement.
	SpanAtomicFallback = "atomic-fallback"
	// SpanCheck wraps the static placement verification.
	SpanCheck = "check"
	// SpanExecute wraps one interpreter run (the default when
	// interp.Config.SpanName is empty).
	SpanExecute = "execute"

	// SpanPrefixPlacement / SpanPrefixExecute are the declared dynamic
	// prefixes: "placement:<variant>" annotation spans and
	// "execute:<variant>" interpreter spans.
	SpanPrefixPlacement = "placement:"
	SpanPrefixExecute   = "execute:"
)

// Canonical span and counter names of the concurrent analysis engine
// (internal/engine). They live here, next to the pipeline's own span
// names, so every consumer of a Report or trace matches on one
// vocabulary instead of scattered string literals.
const (
	// SpanEngineAnalyze wraps one engine-scheduled analysis: build →
	// {solve-read ∥ solve-write} → {check ∥ check} → merge. The comm
	// stage spans (cfg-build, solve-read, ...) nest inside it.
	SpanEngineAnalyze = "engine.analyze"
	// SpanEngineVerify wraps the parallel static-verification stage of
	// one engine-scheduled analysis.
	SpanEngineVerify = "engine.verify"

	// CounterCacheHit counts result-cache hits (a stored byte-identical
	// response was returned without any analysis work).
	CounterCacheHit = "engine.cache.hit"
	// CounterCacheMiss counts result-cache misses (the request led its
	// single-flight group and computed the result).
	CounterCacheMiss = "engine.cache.miss"
	// CounterCacheFollow counts single-flight followers (the request
	// waited on an identical in-flight computation and shared its
	// bytes).
	CounterCacheFollow = "engine.cache.follow"
	// CounterCacheEvict counts LRU evictions forced by the cache's byte
	// bound.
	CounterCacheEvict = "engine.cache.evict"
	// CounterPoolTask counts tasks executed by the engine's worker
	// pool.
	CounterPoolTask = "engine.pool.task"
	// CounterPoolPanic counts tasks that panicked and were converted to
	// structured errors by the pool's isolation boundary.
	CounterPoolPanic = "engine.pool.panic"
	// CounterAdmitWon / CounterAdmitShed count admission-queue outcomes
	// reported by the serving layer: requests that won an analysis slot
	// versus requests shed on queue timeout.
	CounterAdmitWon  = "engine.admission.won"
	CounterAdmitShed = "engine.admission.shed"
)

// Canonical counter names of the stage-pipelined batch path
// (internal/engine/pipeline.go). One counter per stage, bumped once per
// program the stage services, so corpus progress is observable stage by
// stage; the telemetry bridge folds them into the
// gnt_pipeline_items_total family under a stage label.
const (
	CounterPipelineParse           = "pipeline.stage.parse"
	CounterPipelineCFGBuild        = "pipeline.stage.cfg-build"
	CounterPipelineIntervalReduce  = "pipeline.stage.interval-reduce"
	CounterPipelineSectionUniverse = "pipeline.stage.section-universe"
	CounterPipelineSolve           = "pipeline.stage.solve"
	CounterPipelineCheck           = "pipeline.stage.check"
	CounterPipelineRender          = "pipeline.stage.render"
	// CounterPipelineShed counts tasks that left the pipeline without
	// completing their stages: their request context died while they
	// were queued (or while they waited for downstream queue space).
	CounterPipelineShed = "pipeline.shed"
)

// Canonical span and counter names of the durable result journal
// (internal/journal) and its replay path.
const (
	// SpanJournalFlush wraps one group commit: encode the pending
	// batch, append it to the current segment, fsync (seal).
	SpanJournalFlush = "journal.flush"
	// SpanJournalReplay wraps one startup replay pass over the
	// journal's segments.
	SpanJournalReplay = "journal.replay"

	// CounterJournalAppend counts records enqueued for group commit.
	CounterJournalAppend = "journal.append"
	// CounterJournalSealed counts batches sealed (Merkle root written,
	// fsync'd); CounterJournalSealedRecords counts the records inside
	// them.
	CounterJournalSealed        = "journal.sealed"
	CounterJournalSealedRecords = "journal.sealed.records"
	// CounterJournalReplayed counts records verified and delivered by
	// replay.
	CounterJournalReplayed = "journal.replayed"
	// CounterJournalCorruptBatch / CounterJournalCorruptRecord count
	// batches dropped whole at replay (header corruption, record CRC
	// failure, Merkle root mismatch) and the records lost inside them.
	CounterJournalCorruptBatch  = "journal.corrupt.batch"
	CounterJournalCorruptRecord = "journal.corrupt.record"
	// CounterJournalTornTail counts segments that ended mid-batch — the
	// expected shape of a crash between a write and its fsync.
	CounterJournalTornTail = "journal.torn_tail"
)

// Canonical time-series metric names exported on /metrics by
// internal/telemetry, in Prometheus exposition naming style. The
// telemetry registry refuses to create a metric family whose name is
// not declared here, so the scrape vocabulary cannot drift from this
// file.
const (
	// MetricRequestsTotal counts HTTP requests by (route, status).
	MetricRequestsTotal = "gnt_http_requests_total"
	// MetricRequestDuration is the request-latency histogram by
	// (route, rung, cache, status).
	MetricRequestDuration = "gnt_http_request_duration_seconds"
	// MetricInFlight gauges requests currently holding analysis slots.
	MetricInFlight = "gnt_http_in_flight_requests"
	// MetricReady gauges startup-replay readiness (0 warming, 1 ready).
	MetricReady = "gnt_ready"

	// MetricAdmissionTotal counts admission outcomes by
	// (outcome: won|shed); MetricAdmissionWait is the queue-wait
	// histogram by the same label.
	MetricAdmissionTotal = "gnt_admission_total"
	MetricAdmissionWait  = "gnt_admission_queue_wait_seconds"

	// MetricLadderAttempts counts degradation-ladder attempts by
	// (rung, outcome).
	MetricLadderAttempts = "gnt_ladder_attempts_total"

	// MetricStageDuration is the per-pipeline-stage wall-time histogram
	// by (stage), bridged from the span vocabulary above.
	MetricStageDuration = "gnt_stage_duration_seconds"

	// Engine pool and result cache.
	MetricPoolTasks    = "gnt_engine_pool_tasks_total"
	MetricPoolPanics   = "gnt_engine_pool_panics_total"
	MetricPoolBusy     = "gnt_engine_pool_busy"
	MetricPoolWorkers  = "gnt_engine_pool_workers"
	MetricCacheEvents  = "gnt_engine_cache_events_total" // by (event: hit|miss|follow|evict)
	MetricCacheEntries = "gnt_engine_cache_entries"
	MetricCacheBytes   = "gnt_engine_cache_bytes"

	// Durable journal.
	MetricJournalAppended      = "gnt_journal_appended_total"
	MetricJournalSealedBatches = "gnt_journal_sealed_batches_total"
	MetricJournalSealedRecords = "gnt_journal_sealed_records_total"
	MetricJournalReplayed      = "gnt_journal_replayed_records_total"
	MetricJournalCorrupt       = "gnt_journal_corrupt_total" // by (kind: batch|record)
	MetricJournalTornTails     = "gnt_journal_torn_tails_total"
	MetricJournalPending       = "gnt_journal_pending_records"

	// Stage-pipelined batch path. MetricPipelineItems counts programs
	// serviced per stage by (stage); MetricPipelineShed counts tasks
	// whose context died inside the pipeline. The queue-depth and
	// occupancy gauges are sampled live at scrape time by (stage), and
	// MetricPipelineWorkers exposes the per-stage worker budget so
	// occupancy is readable as a utilization ratio.
	MetricPipelineItems      = "gnt_pipeline_items_total"
	MetricPipelineShed       = "gnt_pipeline_shed_total"
	MetricPipelineQueueDepth = "gnt_pipeline_queue_depth"
	MetricPipelineOccupancy  = "gnt_pipeline_occupancy"
	MetricPipelineWorkers    = "gnt_pipeline_stage_workers"

	// MetricObsCounter is the catch-all family for declared obs
	// counters with no dedicated metric mapping, labeled by (name).
	MetricObsCounter = "gnt_obs_counter_total"

	// Cluster router (internal/cluster). The router fronts N serve
	// nodes; its families account for every forwarded attempt, every
	// failover down a key's replica set, and every hedged request, so
	// the failover soak's availability claim is checkable from /metrics
	// alone.

	// MetricRouteRequests counts routed requests by (route, status);
	// MetricRouteDuration is the end-to-end router latency histogram by
	// the same labels.
	MetricRouteRequests = "gnt_route_requests_total"
	MetricRouteDuration = "gnt_route_request_duration_seconds"
	// MetricRouteAttempts counts individual forwarded attempts by
	// (node, outcome: ok|shed|connect|timeout|status-5xx).
	MetricRouteAttempts = "gnt_route_attempts_total"
	// MetricRouteFailovers counts descents down a replica set by
	// (reason: connect|timeout|status-5xx|shed).
	MetricRouteFailovers = "gnt_route_failovers_total"
	// MetricRouteHedges counts hedged second requests by
	// (outcome: launched|won|lost).
	MetricRouteHedges = "gnt_route_hedges_total"
	// MetricRouteProbes counts health-probe outcomes by
	// (node, result: ok|fail|draining|warming).
	MetricRouteProbes = "gnt_route_probes_total"
	// MetricRouteNodeState gauges each node's breaker state by (node):
	// 0 open, 1 half-open, 2 closed; minus 0.5 while the node reports
	// draining or warming (politely unavailable).
	MetricRouteNodeState = "gnt_route_node_state"
	// MetricRouteHedgeDelay gauges the current hedge trigger delay in
	// seconds (rolling p99 of successful attempts, clamped).
	MetricRouteHedgeDelay = "gnt_route_hedge_delay_seconds"
)

// Spans returns the declared exact span names.
func Spans() []string {
	return []string{
		SpanParse, SpanCFGBuild, SpanIntervalReduce, SpanSectionUniverse,
		SpanSolveRead, SpanSolveWrite, SpanReverseGraph, SpanAtomicFallback,
		SpanCheck, SpanExecute,
		SpanEngineAnalyze, SpanEngineVerify,
		SpanJournalFlush, SpanJournalReplay,
	}
}

// SpanPrefixes returns the declared dynamic span-name prefixes.
func SpanPrefixes() []string {
	return []string{SpanPrefixPlacement, SpanPrefixExecute}
}

// Counters returns the declared counter names.
func Counters() []string {
	return []string{
		CounterCacheHit, CounterCacheMiss, CounterCacheFollow, CounterCacheEvict,
		CounterPoolTask, CounterPoolPanic, CounterAdmitWon, CounterAdmitShed,
		CounterJournalAppend, CounterJournalSealed, CounterJournalSealedRecords,
		CounterJournalReplayed, CounterJournalCorruptBatch,
		CounterJournalCorruptRecord, CounterJournalTornTail,
		CounterPipelineParse, CounterPipelineCFGBuild,
		CounterPipelineIntervalReduce, CounterPipelineSectionUniverse,
		CounterPipelineSolve, CounterPipelineCheck, CounterPipelineRender,
		CounterPipelineShed,
	}
}

// Metrics returns the declared /metrics family names.
func Metrics() []string {
	return []string{
		MetricRequestsTotal, MetricRequestDuration, MetricInFlight, MetricReady,
		MetricAdmissionTotal, MetricAdmissionWait, MetricLadderAttempts,
		MetricStageDuration,
		MetricPoolTasks, MetricPoolPanics, MetricPoolBusy, MetricPoolWorkers,
		MetricCacheEvents, MetricCacheEntries, MetricCacheBytes,
		MetricJournalAppended, MetricJournalSealedBatches, MetricJournalSealedRecords,
		MetricJournalReplayed, MetricJournalCorrupt, MetricJournalTornTails,
		MetricJournalPending,
		MetricPipelineItems, MetricPipelineShed, MetricPipelineQueueDepth,
		MetricPipelineOccupancy, MetricPipelineWorkers,
		MetricObsCounter,
		MetricRouteRequests, MetricRouteDuration, MetricRouteAttempts,
		MetricRouteFailovers, MetricRouteHedges, MetricRouteProbes,
		MetricRouteNodeState, MetricRouteHedgeDelay,
	}
}

// KnownSpan reports whether name is a declared span name or carries a
// declared dynamic prefix.
func KnownSpan(name string) bool {
	for _, s := range Spans() {
		if name == s {
			return true
		}
	}
	for _, p := range SpanPrefixes() {
		if len(name) >= len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

// KnownCounter reports whether name is a declared counter name.
func KnownCounter(name string) bool {
	for _, c := range Counters() {
		if name == c {
			return true
		}
	}
	return false
}

// KnownMetric reports whether name is a declared metric family name.
func KnownMetric(name string) bool {
	for _, m := range Metrics() {
		if name == m {
			return true
		}
	}
	return false
}
