package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"text/tabwriter"
)

// PhaseStats is one pipeline phase in a Report: wall time plus
// allocation deltas when the recorder captured them.
type PhaseStats struct {
	Name         string `json:"name"`
	Depth        int    `json:"depth,omitempty"`
	WallNS       int64  `json:"wall_ns"`
	AllocBytes   int64  `json:"alloc_bytes,omitempty"`
	AllocObjects int64  `json:"alloc_objects,omitempty"`
}

// SolverCounters is the work profile of one GIVE-N-TAKE solve,
// maintained by internal/core. It is the empirical side of the paper's
// §5.2 complexity claim: EquationEvals must equal one evaluation of
// each of the fifteen equations per node per schedule (20 per node:
// Eqs. 1–10 once, Eqs. 11–15 once per EAGER/LAZY mode), so
// EvalsPerEqMin and EvalsPerEqMax are both exactly 1 after a complete
// solve, and total bitvector work is SetOps · Words = WordOps ∈ O(E).
type SolverCounters struct {
	Problem  string `json:"problem"`
	Nodes    int    `json:"nodes"`
	Universe int    `json:"universe"`
	// Words is the length of one bitvector in 64-bit words.
	Words int `json:"words"`
	// MaxLevel is the deepest interval nesting level (1 = no loops);
	// NodesPerLevel[l] counts nodes at level l.
	MaxLevel      int   `json:"max_level"`
	NodesPerLevel []int `json:"nodes_per_level,omitempty"`
	// EquationEvals totals individual equation evaluations.
	EquationEvals int64 `json:"equation_evals"`
	// EvalsPerEqMin/Max bound, over all (node, equation, mode) triples,
	// how often that equation was evaluated there — both 1 for the
	// paper's one-pass algorithm.
	EvalsPerEqMin int `json:"evals_per_eq_min"`
	EvalsPerEqMax int `json:"evals_per_eq_max"`
	// SetOps counts bitvector set operations (union, intersect,
	// subtract, copy, fill); WordOps = SetOps × Words.
	SetOps  int64 `json:"set_ops"`
	WordOps int64 `json:"word_ops"`
}

// OnePass reports whether the counters witness the one-evaluation-per-
// equation-per-node property; the error names the offending bound.
func (c SolverCounters) OnePass() error {
	if c.EvalsPerEqMin != 1 || c.EvalsPerEqMax != 1 {
		return fmt.Errorf("obs: %s solve evaluated equations between %d and %d times per node, want exactly 1",
			c.Problem, c.EvalsPerEqMin, c.EvalsPerEqMax)
	}
	return nil
}

// CostStats is a machine cost-model evaluation in Report form.
type CostStats struct {
	Compute  float64 `json:"compute"`
	Wait     float64 `json:"wait"`
	Retrans  float64 `json:"retrans,omitempty"`
	Total    float64 `json:"total"`
	Messages int64   `json:"messages"`
	Volume   int64   `json:"volume"`
	Retries  int64   `json:"retries,omitempty"`
	Degraded int64   `json:"degraded,omitempty"`
}

// RuntimeStats is the dynamic profile of one executed placement
// variant: message and volume totals, the Send→Recv overlap-distance
// distribution that quantifies latency hiding on the executed graph,
// and fault-recovery counters when the run used the unreliable
// transport.
type RuntimeStats struct {
	Name     string `json:"name"`
	Steps    int64  `json:"steps"`
	Messages int64  `json:"messages"`
	Volume   int64  `json:"volume"`

	// Split-pair overlap: distances are Recv.Step − Send.Step in
	// interpreter steps. OverlapMin is -1 when the trace has no split
	// pairs (the atomic and naive variants).
	SplitPairs   int64      `json:"split_pairs"`
	OverlapTotal int64      `json:"overlap_total"`
	OverlapMin   int64      `json:"overlap_min"`
	OverlapMax   int64      `json:"overlap_max"`
	OverlapHist  *Histogram `json:"overlap_hist,omitempty"`

	// C1 observability: both zero for balanced placements.
	UnmatchedSends int64 `json:"unmatched_sends"`
	UnmatchedRecvs int64 `json:"unmatched_recvs"`

	// Fault recovery, all zero on a reliable run.
	Retries    int64            `json:"retries,omitempty"`
	Suppressed int64            `json:"suppressed,omitempty"`
	StallSteps int64            `json:"stall_steps,omitempty"`
	Degraded   int64            `json:"degraded,omitempty"`
	Faults     map[string]int64 `json:"faults,omitempty"`

	// Cost holds machine cost-model evaluations keyed by model name.
	Cost map[string]CostStats `json:"cost,omitempty"`
}

// MeanOverlap is the average Send→Recv distance, or -1 without pairs.
func (r RuntimeStats) MeanOverlap() float64 {
	if r.SplitPairs == 0 {
		return -1
	}
	return float64(r.OverlapTotal) / float64(r.SplitPairs)
}

// Histogram is a power-of-two bucketed distribution of non-negative
// integer samples: bucket 0 holds value 0, bucket i ≥ 1 holds values
// in [2^(i-1), 2^i).
type Histogram struct {
	Counts []int64 `json:"counts"`
}

// Add records one sample; negative samples clamp to bucket 0.
func (h *Histogram) Add(v int64) {
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	for len(h.Counts) <= b {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[b]++
}

// Total is the number of recorded samples.
func (h *Histogram) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BucketLabel names bucket i: "0", "[1,2)", "[2,4)", ...
func BucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	return fmt.Sprintf("[%d,%d)", int64(1)<<(i-1), int64(1)<<i)
}

func (h *Histogram) String() string {
	if h == nil || len(h.Counts) == 0 {
		return "(empty)"
	}
	parts := make([]string, 0, len(h.Counts))
	for i, c := range h.Counts {
		parts = append(parts, fmt.Sprintf("%s:%d", BucketLabel(i), c))
	}
	return strings.Join(parts, " ")
}

// Report is the aggregated observability output of one pipeline run,
// rendered by `gnt -mode stats` as text or JSON. Sections are omitted
// from JSON when empty, so partial reports (analysis without
// execution) stay compact.
type Report struct {
	Program  string                     `json:"program,omitempty"`
	Phases   []PhaseStats               `json:"phases,omitempty"`
	Solver   []SolverCounters           `json:"solver,omitempty"`
	Runtime  []RuntimeStats             `json:"runtime,omitempty"`
	Counters map[string]int64           `json:"counters,omitempty"`
	Extra    map[string]json.RawMessage `json:"extra,omitempty"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteText renders the report as aligned, human-readable sections.
func (r *Report) WriteText(w io.Writer) error {
	if r.Program != "" {
		fmt.Fprintf(w, "program: %s\n", r.Program)
	}
	if len(r.Phases) > 0 {
		fmt.Fprintln(w, "\nphases:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  phase\twall\tallocs\tbytes")
		for _, p := range r.Phases {
			indent := strings.Repeat("  ", p.Depth)
			fmt.Fprintf(tw, "  %s%s\t%s\t%d\t%d\n",
				indent, p.Name, fmtNS(p.WallNS), p.AllocObjects, p.AllocBytes)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if len(r.Solver) > 0 {
		fmt.Fprintln(w, "\nsolver:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  problem\tnodes\tlevels\tuniverse\twords\teq-evals\tevals/eq/node\tset-ops\tword-ops")
		for _, s := range r.Solver {
			perEq := fmt.Sprintf("%d", s.EvalsPerEqMax)
			if s.EvalsPerEqMin != s.EvalsPerEqMax {
				perEq = fmt.Sprintf("%d..%d", s.EvalsPerEqMin, s.EvalsPerEqMax)
			}
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%d\n",
				s.Problem, s.Nodes, s.MaxLevel, s.Universe, s.Words,
				s.EquationEvals, perEq, s.SetOps, s.WordOps)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if len(r.Runtime) > 0 {
		fmt.Fprintln(w, "\nruntime:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  placement\tsteps\tmsgs\tvolume\tpairs\toverlap(min/mean/max)\tstall\tretries\tdegraded\tunmatched")
		for _, rt := range r.Runtime {
			overlap := "-"
			if rt.SplitPairs > 0 {
				overlap = fmt.Sprintf("%d/%.1f/%d", rt.OverlapMin, rt.MeanOverlap(), rt.OverlapMax)
			}
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d/%d\n",
				rt.Name, rt.Steps, rt.Messages, rt.Volume, rt.SplitPairs, overlap,
				rt.StallSteps, rt.Retries, rt.Degraded, rt.UnmatchedSends, rt.UnmatchedRecvs)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		header := false
		for _, rt := range r.Runtime {
			models := make([]string, 0, len(rt.Cost))
			for m := range rt.Cost {
				models = append(models, m)
			}
			sort.Strings(models)
			for _, m := range models {
				if !header {
					fmt.Fprintln(tw, "  placement\tmodel\tcompute\twait\tretrans\ttotal")
					header = true
				}
				c := rt.Cost[m]
				fmt.Fprintf(tw, "  %s\t%s\t%.0f\t%.0f\t%.0f\t%.0f\n",
					rt.Name, m, c.Compute, c.Wait, c.Retrans, c.Total)
			}
		}
		if header {
			fmt.Fprintln(w, "\ncost models:")
			if err := tw.Flush(); err != nil {
				return err
			}
		}
		for _, rt := range r.Runtime {
			if rt.OverlapHist != nil && rt.OverlapHist.Total() > 0 {
				fmt.Fprintf(w, "\noverlap histogram (%s): %s\n", rt.Name, rt.OverlapHist)
			}
		}
	}
	if len(r.Counters) > 0 {
		fmt.Fprintln(w, "\ncounters:")
		names := make([]string, 0, len(r.Counters))
		for k := range r.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(w, "  %s = %d\n", k, r.Counters[k])
		}
	}
	if len(r.Extra) > 0 {
		names := make([]string, 0, len(r.Extra))
		for k := range r.Extra {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(w, "\n%s: %s\n", k, r.Extra[k])
		}
	}
	return nil
}

// fmtNS renders a nanosecond duration with a human unit.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
