package obs_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"givetake/internal/lint"
	"givetake/internal/obs"
)

// TestNoUndeclaredSpanOrCounterNames runs the obsnames analyzer over
// the whole repository and asserts it comes back clean: every span or
// counter name reaching obs.Begin, obs.Count, or a Collector method is
// declared in names.go. This used to be a hand-rolled AST walk over
// string literals; the type-aware analyzer it delegates to now also
// resolves aliased imports, named constants, and dynamic
// prefix+variant names, so an ad-hoc name cannot hide behind any of
// those. (The test lives in obs_test to avoid the obs → lint → obs
// import cycle.)
func TestNoUndeclaredSpanOrCounterNames(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	root := filepath.Clean(filepath.Join(filepath.Dir(self), "..", ".."))

	findings, err := lint.Run(lint.Config{
		Dir:       root,
		Analyzers: []*lint.Analyzer{lint.ObsNames},
	}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
}

// TestDeclaredNamesSelfConsistent pins the vocabulary's own shape:
// no duplicates across spans, prefixes, and counters, and every
// declared name is non-empty.
func TestDeclaredNamesSelfConsistent(t *testing.T) {
	seen := map[string]string{}
	note := func(group string, names []string) {
		for _, n := range names {
			if n == "" {
				t.Errorf("%s: empty declared name", group)
			}
			if prev, dup := seen[n]; dup {
				t.Errorf("name %q declared in both %s and %s", n, prev, group)
			}
			seen[n] = group
		}
	}
	note("spans", obs.Spans())
	note("span-prefixes", obs.SpanPrefixes())
	note("counters", obs.Counters())
	note("metrics", obs.Metrics())

	for _, s := range obs.Spans() {
		if !obs.KnownSpan(s) {
			t.Errorf("declared span %q not known", s)
		}
	}
	for _, c := range obs.Counters() {
		if !obs.KnownCounter(c) {
			t.Errorf("declared counter %q not known", c)
		}
	}
	if obs.KnownSpan("never-declared") || obs.KnownCounter("never-declared") || obs.KnownMetric("never-declared") {
		t.Error("unknown name reported as known")
	}
	if !obs.KnownSpan(obs.SpanPrefixExecute + "variant") {
		t.Error("declared prefix does not admit its dynamic names")
	}
}
