package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestNoUndeclaredSpanOrCounterNames walks every non-test Go file in
// the repository and asserts that any span or counter name passed as a
// string literal to obs.Begin, obs.Count, or a BeginSpan method is
// declared in names.go. Emission sites that use the declared constants
// are correct by construction; this test exists so a new call site
// cannot mint an ad-hoc name that the telemetry layer and trace
// consumers would silently miss.
func TestNoUndeclaredSpanOrCounterNames(t *testing.T) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	root := filepath.Clean(filepath.Join(filepath.Dir(self), "..", ".."))

	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var nameArg ast.Expr
			var check func(string) bool
			var kind string
			switch {
			case isPkgCall(sel, "obs", "Begin") && len(call.Args) >= 2:
				nameArg, check, kind = call.Args[1], KnownSpan, "span"
			case isPkgCall(sel, "obs", "Count") && len(call.Args) >= 2:
				nameArg, check, kind = call.Args[1], KnownCounter, "counter"
			case sel.Sel.Name == "BeginSpan" && len(call.Args) >= 1:
				nameArg, check, kind = call.Args[0], KnownSpan, "span"
			default:
				return true
			}
			lit, ok := nameArg.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // a constant or expression; constants are declared here
			}
			name, uerr := strconv.Unquote(lit.Value)
			if uerr != nil {
				return true
			}
			if !check(name) {
				t.Errorf("%s: %s name %q is not declared in internal/obs/names.go",
					fset.Position(lit.Pos()), kind, name)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func isPkgCall(sel *ast.SelectorExpr, pkg, fn string) bool {
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg && sel.Sel.Name == fn
}

// TestDeclaredNamesSelfConsistent pins the vocabulary's own shape:
// no duplicates across spans, prefixes, and counters, and every
// declared name is non-empty.
func TestDeclaredNamesSelfConsistent(t *testing.T) {
	seen := map[string]string{}
	note := func(group string, names []string) {
		for _, n := range names {
			if n == "" {
				t.Errorf("%s: empty declared name", group)
			}
			if prev, dup := seen[n]; dup {
				t.Errorf("name %q declared in both %s and %s", n, prev, group)
			}
			seen[n] = group
		}
	}
	note("spans", Spans())
	note("span-prefixes", SpanPrefixes())
	note("counters", Counters())
	note("metrics", Metrics())

	for _, s := range Spans() {
		if !KnownSpan(s) {
			t.Errorf("declared span %q not known", s)
		}
	}
	for _, c := range Counters() {
		if !KnownCounter(c) {
			t.Errorf("declared counter %q not known", c)
		}
	}
	if KnownSpan("never-declared") || KnownCounter("never-declared") || KnownMetric("never-declared") {
		t.Error("unknown name reported as known")
	}
	if !KnownSpan(SpanPrefixExecute + "variant") {
		t.Error("declared prefix does not admit its dynamic names")
	}
}
