// Package obs is the zero-dependency observability layer of the
// GIVE-N-TAKE pipeline: phase spans with wall-time and allocation
// deltas, named counters, solver work counters, and runtime metrics,
// exportable as a Chrome trace-event JSON profile (loadable in
// Perfetto / chrome://tracing) or aggregated into a structured Report.
//
// The design follows two rules:
//
//  1. The default is off. Every instrumentation point in the pipeline
//     holds a Collector interface value that is nil unless the caller
//     asked for observability; the nil-tolerant package helpers (Begin,
//     Count) make a disabled pipeline pay exactly one pointer compare
//     per phase boundary and nothing per statement, equation, or
//     message, so cost-model results are bit-identical with and
//     without the layer compiled in.
//
//  2. Events are coarse. Spans wrap pipeline phases (parse, CFG build,
//     interval reduction, each dataflow solve, execution), never inner
//     loops; per-equation and per-message detail is carried by cheap
//     integer counters that the solver and interpreter maintain anyway
//     and hand over wholesale (SolverCounters, RuntimeStats).
package obs

// Collector is the sink for pipeline observability events.
// Implementations must tolerate being called from a single goroutine
// at a time; the pipeline is sequential. A nil Collector is the
// universal "off switch": call sites go through Begin/Count below,
// which short-circuit on nil.
type Collector interface {
	// BeginSpan opens a named span and returns the function that closes
	// it. Key/value pairs (alternating string key, any value) annotate
	// the span; more pairs may be passed to the returned EndFunc, which
	// is useful for results only known at the end (node counts, steps).
	BeginSpan(name string, kv ...any) EndFunc
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
}

// EndFunc closes a span, attaching any final key/value pairs.
type EndFunc func(kv ...any)

// endNop is the shared no-op EndFunc returned for nil collectors.
var endNop EndFunc = func(...any) {}

// Begin opens a span on c, tolerating a nil collector.
func Begin(c Collector, name string, kv ...any) EndFunc {
	if c == nil {
		return endNop
	}
	return c.BeginSpan(name, kv...)
}

// Count adds delta to counter name on c, tolerating a nil collector.
func Count(c Collector, name string, delta int64) {
	if c != nil {
		c.Count(name, delta)
	}
}

// Tee fans events out to several collectors: every span and counter is
// delivered to each non-nil collector in argument order. Nil entries
// are dropped; zero survivors collapse to nil (the universal off
// switch) and one survivor is returned unwrapped, so the common cases
// pay nothing for the fan-out. The serving layer uses this to feed one
// request's spans to both its per-request recorder and the process-wide
// telemetry bridge.
func Tee(cols ...Collector) Collector {
	live := make(tee, 0, len(cols))
	for _, c := range cols {
		if c != nil {
			live = append(live, c)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type tee []Collector

// BeginSpan implements Collector: it opens the span on every branch
// and returns an EndFunc closing them all.
func (t tee) BeginSpan(name string, kv ...any) EndFunc {
	ends := make([]EndFunc, len(t))
	for i, c := range t {
		ends[i] = c.BeginSpan(name, kv...)
	}
	return func(kv ...any) {
		for _, end := range ends {
			end(kv...)
		}
	}
}

// Count implements Collector.
func (t tee) Count(name string, delta int64) {
	for _, c := range t {
		c.Count(name, delta)
	}
}
