// Package bitset provides dense bit-vector sets used as the dataflow
// lattice of the GIVE-N-TAKE framework.
//
// The framework's meet semilattice L is a powerset lattice over a finite
// universe of items (value-numbered array sections, expressions, ...).
// All GIVE-N-TAKE equations (Fig. 13 of the paper) are unions,
// intersections and differences over this lattice, so a packed bit vector
// with word-at-a-time operations keeps the per-equation cost at
// O(universe/64), matching the "bit vectors of a certain length" cost
// model of paper §5.2.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the universe [0, Len()).
// The zero value is not usable; create Sets with New.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over a universe of n items.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewFull returns a set containing every item of an n-item universe (the
// lattice top element).
func NewFull(n int) *Set {
	s := New(n)
	s.Fill()
	return s
}

// Of returns a set over an n-item universe containing the given items.
func Of(n int, items ...int) *Set {
	s := New(n)
	for _, it := range items {
		s.Add(it)
	}
	return s
}

// Len returns the universe size.
func (s *Set) Len() int { return s.n }

// Add inserts item i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (i % wordBits)
}

// Remove deletes item i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (i % wordBits)
}

// Has reports whether item i is in the set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: item %d out of universe [0,%d)", i, s.n))
	}
}

// Clear removes all items.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds all items of the universe.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits beyond the universe in the last word.
func (s *Set) trim() {
	if r := s.n % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << r) - 1
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of t. The universes must match.
func (s *Set) Copy(t *Set) {
	s.compat(t)
	copy(s.words, t.words)
}

func (s *Set) compat(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.n, t.n))
	}
}

// UnionWith adds every item of t to s (s ∪= t).
func (s *Set) UnionWith(t *Set) {
	s.compat(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith keeps only items also in t (s ∩= t).
func (s *Set) IntersectWith(t *Set) {
	s.compat(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// SubtractWith removes every item of t from s (s −= t).
func (s *Set) SubtractWith(t *Set) {
	s.compat(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Union returns a new set s ∪ t.
func Union(s, t *Set) *Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Intersect returns a new set s ∩ t.
func Intersect(s, t *Set) *Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Subtract returns a new set s − t.
func Subtract(s, t *Set) *Set {
	c := s.Clone()
	c.SubtractWith(t)
	return c
}

// Equal reports whether s and t contain exactly the same items.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// IsEmpty reports whether the set has no items.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ContainsAll reports whether every item of t is in s (t ⊆ s).
func (s *Set) ContainsAll(t *Set) bool {
	s.compat(t)
	for i, w := range t.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one item.
func (s *Set) Intersects(t *Set) bool {
	s.compat(t)
	for i, w := range t.words {
		if w&s.words[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of items in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls f for every item in the set, in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Items returns the members of the set in increasing order.
func (s *Set) Items() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// StringWith renders the set using name(i) for each member, e.g. "{x_k, y_b}".
func (s *Set) StringWith(name func(i int) string) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(name(i))
	})
	b.WriteByte('}')
	return b.String()
}

// NewSlice returns count empty sets over an n-item universe whose words
// share one contiguous backing array. Dataflow solvers allocate many
// same-sized sets per node; a single slab keeps them cache-adjacent and
// reduces allocator traffic from O(count) to O(1).
func NewSlice(count, n int) []*Set {
	if count < 0 || n < 0 {
		panic("bitset: negative slab dimensions")
	}
	words := (n + wordBits - 1) / wordBits
	backing := make([]uint64, count*words)
	sets := make([]*Set, count)
	hdrs := make([]Set, count)
	for i := range sets {
		hdrs[i] = Set{n: n, words: backing[i*words : (i+1)*words : (i+1)*words]}
		sets[i] = &hdrs[i]
	}
	return sets
}
