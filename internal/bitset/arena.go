package bitset

// Arena carves same-shaped Set slabs out of one reusable word buffer.
// A dataflow solve allocates a fixed number of per-node slabs whose
// total size depends only on (nodes, universe); leasing an Arena per
// solve and calling Reset between solves makes the steady-state word
// allocation of a long-running analysis service flat — the buffer is
// reused, only growing when a larger program arrives.
//
// An Arena is not safe for concurrent use; give each concurrent solve
// its own. Every Set carved from an Arena aliases its buffer: after
// Reset, all previously returned Sets are invalid and must no longer
// be referenced (the engine enforces this with an explicit Release on
// its results).
type Arena struct {
	buf []uint64
	off int
	// spill counts words served by fresh allocations because buf was
	// exhausted this cycle; Reset grows buf by it so the next cycle of
	// the same shape fits entirely.
	spill int
}

// NewSlice is bitset.NewSlice backed by the arena: count empty sets
// over an n-item universe, contiguous in the arena's buffer. A nil
// arena falls back to a plain allocation.
func (a *Arena) NewSlice(count, n int) []*Set {
	if a == nil {
		return NewSlice(count, n)
	}
	if count < 0 || n < 0 {
		panic("bitset: negative slab dimensions")
	}
	words := (n + wordBits - 1) / wordBits
	need := count * words
	var backing []uint64
	if a.off+need <= len(a.buf) {
		backing = a.buf[a.off : a.off+need : a.off+need]
		clear(backing) // previous cycles left stale bits behind
		a.off += need
	} else {
		backing = make([]uint64, need)
		a.spill += need
	}
	sets := make([]*Set, count)
	hdrs := make([]Set, count)
	for i := range sets {
		hdrs[i] = Set{n: n, words: backing[i*words : (i+1)*words : (i+1)*words]}
		sets[i] = &hdrs[i]
	}
	return sets
}

// Reset recycles the arena for the next solve, growing the buffer when
// the last cycle spilled past it. All Sets carved since the previous
// Reset become invalid.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	if a.spill > 0 {
		a.buf = make([]uint64, len(a.buf)+a.spill)
		a.spill = 0
	}
	a.off = 0
}

// Footprint reports the arena's current buffer size in words, for
// pool-sizing diagnostics.
func (a *Arena) Footprint() int {
	if a == nil {
		return 0
	}
	return len(a.buf) + a.spill
}
