package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicAddRemoveHas(t *testing.T) {
	s := New(130)
	if !s.IsEmpty() {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) = false after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Has(64) after Remove")
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
}

func TestOfAndItems(t *testing.T) {
	s := Of(100, 3, 1, 99, 50)
	want := []int{1, 3, 50, 99}
	if got := s.Items(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Items = %v, want %v", got, want)
	}
}

func TestFullAndTrim(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := NewFull(n)
		if s.Count() != n {
			t.Fatalf("NewFull(%d).Count = %d", n, s.Count())
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Add")
		}
	}()
	New(10).Add(10)
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on universe mismatch")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestSetAlgebra(t *testing.T) {
	a := Of(70, 1, 2, 3, 65)
	b := Of(70, 2, 3, 4, 66)

	if got := Union(a, b).Items(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 65, 66}) {
		t.Errorf("Union = %v", got)
	}
	if got := Intersect(a, b).Items(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Subtract(a, b).Items(); !reflect.DeepEqual(got, []int{1, 65}) {
		t.Errorf("Subtract = %v", got)
	}
}

func TestContainsAllIntersects(t *testing.T) {
	a := Of(70, 1, 2, 3)
	b := Of(70, 2, 3)
	c := Of(70, 4)
	if !a.ContainsAll(b) {
		t.Error("a should contain all of b")
	}
	if b.ContainsAll(a) {
		t.Error("b should not contain all of a")
	}
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
	if !a.ContainsAll(New(70)) {
		t.Error("every set contains the empty set")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(10, 1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Fatal("Clone aliases storage")
	}
}

func TestCopy(t *testing.T) {
	a := Of(10, 1, 2)
	b := Of(10, 5)
	b.Copy(a)
	if !b.Equal(a) {
		t.Fatal("Copy did not replicate")
	}
}

func TestString(t *testing.T) {
	s := Of(10, 1, 5)
	if got := s.String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	if got := s.StringWith(func(i int) string { return names[i] }); got != "{b, f}" {
		t.Fatalf("StringWith = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// randomSet builds a set plus its reference map representation.
func randomSet(r *rand.Rand, n int) (*Set, map[int]bool) {
	s := New(n)
	m := map[int]bool{}
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(i)
			m[i] = true
		}
	}
	return s, m
}

// TestQuickAgainstMapModel cross-checks the word-level algebra against a
// map-based model, via testing/quick seeds.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, ma := randomSet(r, n)
		b, mb := randomSet(r, n)

		u := Union(a, b)
		in := Intersect(a, b)
		d := Subtract(a, b)
		for i := 0; i < n; i++ {
			if u.Has(i) != (ma[i] || mb[i]) {
				return false
			}
			if in.Has(i) != (ma[i] && mb[i]) {
				return false
			}
			if d.Has(i) != (ma[i] && !mb[i]) {
				return false
			}
		}
		return u.Count() >= a.Count() && in.Count() <= a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLatticeLaws checks the semilattice identities the GIVE-N-TAKE
// equations rely on (idempotence, absorption, De Morgan-ish difference).
func TestQuickLatticeLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(150)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		c, _ := randomSet(r, n)

		// idempotence
		if !Union(a, a).Equal(a) || !Intersect(a, a).Equal(a) {
			return false
		}
		// commutativity
		if !Union(a, b).Equal(Union(b, a)) || !Intersect(a, b).Equal(Intersect(b, a)) {
			return false
		}
		// associativity
		if !Union(Union(a, b), c).Equal(Union(a, Union(b, c))) {
			return false
		}
		// absorption
		if !Union(a, Intersect(a, b)).Equal(a) {
			return false
		}
		// a − b = a ∩ ¬b  ⇒  (a−b) ∪ (a∩b) = a
		if !Union(Subtract(a, b), Intersect(a, b)).Equal(a) {
			return false
		}
		// difference distributes: (a∪b) − c = (a−c) ∪ (b−c)
		if !Subtract(Union(a, b), c).Equal(Union(Subtract(a, c), Subtract(b, c))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionWith1024(b *testing.B) {
	x := NewFull(1024)
	y := NewFull(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}
