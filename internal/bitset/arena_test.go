package bitset

import "testing"

func TestArenaCarveAndReset(t *testing.T) {
	var a Arena
	s1 := a.NewSlice(3, 130)
	for _, s := range s1 {
		if s.Len() != 130 || s.Count() != 0 {
			t.Fatalf("carved set not empty: %v", s)
		}
	}
	s1[0].Add(5)
	s1[2].Add(129)

	// first cycle spilled (buffer started empty); Reset grows it
	if a.Footprint() == 0 {
		t.Fatal("arena should have recorded demand")
	}
	a.Reset()
	before := a.Footprint()

	// same-shape second cycle: no spill, stale bits cleared
	s2 := a.NewSlice(3, 130)
	if a.Footprint() != before {
		t.Fatalf("same-shape cycle grew arena: %d -> %d", before, a.Footprint())
	}
	for i, s := range s2 {
		if s.Count() != 0 {
			t.Fatalf("slab %d not cleared after Reset: %v", i, s)
		}
	}

	// larger cycle spills, then fits after the next Reset
	a.Reset()
	a.NewSlice(10, 1000)
	a.Reset()
	grown := a.Footprint()
	a.NewSlice(10, 1000)
	a.Reset()
	if a.Footprint() != grown {
		t.Fatalf("repeated same-shape cycle should not grow: %d -> %d", grown, a.Footprint())
	}
}

func TestArenaNilFallsBack(t *testing.T) {
	var a *Arena
	sets := a.NewSlice(2, 64)
	if len(sets) != 2 || sets[0].Len() != 64 {
		t.Fatalf("nil arena fallback broken: %v", sets)
	}
	a.Reset() // must not panic
	if a.Footprint() != 0 {
		t.Fatal("nil arena has no footprint")
	}
}
